package bvq

// Cross-module integration tests: whole pipelines (text → parse → evaluate
// through several engines → certificates), semantic preservation of the
// transformations, and robustness of the parser against garbage input.

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/logic"
	"repro/internal/workload"
)

// randFO3 builds a random FO formula over x, y, z and relations E/2, P/1.
func randFO3(r *rand.Rand, depth int) logic.Formula {
	vars := []logic.Var{"x", "y", "z"}
	v := func() logic.Var { return vars[r.Intn(len(vars))] }
	if depth == 0 || r.Intn(5) == 0 {
		switch r.Intn(4) {
		case 0:
			return logic.R("E", v(), v())
		case 1:
			return logic.R("P", v())
		case 2:
			return logic.Equal(v(), v())
		default:
			return logic.Truth{Value: r.Intn(2) == 0}
		}
	}
	sub := func() logic.Formula { return randFO3(r, depth-1) }
	switch r.Intn(7) {
	case 0:
		return logic.Not{F: sub()}
	case 1, 2:
		return logic.Binary{Op: logic.BinOp(r.Intn(4)), L: sub(), R: sub()}
	default:
		return logic.Quant{Kind: logic.QuantKind(r.Intn(2)), V: v(), F: sub()}
	}
}

func TestPipelineTextToAnswerAllEngines(t *testing.T) {
	r := rand.New(rand.NewSource(271))
	for trial := 0; trial < 40; trial++ {
		db := workload.RandomGraph(int64(trial), 2+r.Intn(4), 3)
		f := randFO3(r, 3)
		head := logic.SortedVars(logic.FreeVars(f))
		q, err := logic.NewQuery(head, f)
		if err != nil {
			t.Fatal(err)
		}
		// Through the text round trip.
		reparsed, err := ParseQuery(q.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", q.String(), err)
		}
		var answers []*Relation
		for _, e := range []Engine{EngineBottomUp, EngineNaive, EngineAlgebra, EngineMonotone} {
			ans, err := Eval(reparsed, db, e)
			if err != nil {
				t.Fatalf("%v on %s: %v", e, q, err)
			}
			answers = append(answers, ans)
		}
		for i := 1; i < len(answers); i++ {
			if !answers[0].Equal(answers[i]) {
				t.Fatalf("engine disagreement on %s:\n%v\nvs\n%v", q, answers[0], answers[i])
			}
		}
	}
}

func TestNNFPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(733))
	for trial := 0; trial < 50; trial++ {
		db := workload.RandomGraph(int64(trial)+1000, 2+r.Intn(3), 3)
		f := randFO3(r, 3)
		head := logic.SortedVars(logic.FreeVars(f))
		q := logic.MustQuery(head, f)
		nnf, err := logic.NNF(f)
		if err != nil {
			t.Fatal(err)
		}
		qn := logic.MustQuery(head, nnf)
		a, err := eval.BottomUp(q, db)
		if err != nil {
			t.Fatal(err)
		}
		b, err := eval.BottomUp(qn, db)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("NNF changed semantics of %s:\n%s\n%v vs %v", f, nnf, a, b)
		}
	}
}

func TestCertificatePipelineOnFixpointFamilies(t *testing.T) {
	// reach-from-P under lfp, with and without negation on top (co-NP
	// side), against three graph families.
	reach := "[lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)"
	for _, src := range []string{
		"(u). " + reach,
		"(u). !" + reach,
	} {
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, db := range []*Database{
			workload.LineGraph(6),
			workload.CycleGraph(5),
			workload.RandomGraph(9, 5, 3),
		} {
			want, err := Eval(q, db, EngineBottomUp)
			if err != nil {
				t.Fatal(err)
			}
			cert, proved, err := FindCertificate(q, db)
			if err != nil {
				t.Fatalf("FindCertificate(%s): %v", src, err)
			}
			if !proved.Equal(want) {
				t.Fatalf("prover differs on %s: %v vs %v", src, proved, want)
			}
			verified, err := VerifyCertificate(q, db, cert)
			if err != nil {
				t.Fatal(err)
			}
			if !verified.Equal(want) {
				t.Fatalf("verifier differs on %s", src)
			}
		}
	}
}

func TestParserNeverPanicsOnGarbage(t *testing.T) {
	tokens := []string{
		"exists", "forall", "lfp", "gfp", "pfp", "ifp", "exists2", "true", "false",
		"E", "P", "x", "y", "(", ")", "[", "]", ".", ",", "&", "|", "!", "->",
		"<->", "=", "/", "2", "S",
	}
	r := rand.New(rand.NewSource(4096))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(12)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(tokens[r.Intn(len(tokens))])
			sb.WriteByte(' ')
		}
		// Must not panic; errors are expected and fine.
		_, _ = ParseFormula(sb.String())
		_, _ = ParseQuery(sb.String())
	}
}

func TestDatabaseParserNeverPanicsOnGarbage(t *testing.T) {
	r := rand.New(rand.NewSource(8192))
	pieces := []string{"domain", "=", "{", "}", "(", ")", ",", "E", "/", "1", "2", "-3", "x", "\n"}
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(16)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteString(pieces[r.Intn(len(pieces))])
		}
		_, _ = ParseDatabase(sb.String())
	}
}

func TestWidthEnforcementAcrossEngines(t *testing.T) {
	db := workload.LineGraph(4)
	q, err := ParseQuery("(x). exists y. exists z. E(x, y) & E(y, z)")
	if err != nil {
		t.Fatal(err)
	}
	if w := Width(q); w != 3 {
		t.Fatalf("width = %d", w)
	}
	if _, _, err := EvalStats(q, db, EngineBottomUp, &Options{MaxWidth: 2}); err == nil {
		t.Fatal("k=2 accepted a width-3 query")
	}
	if _, _, err := EvalStats(q, db, EngineBottomUp, &Options{MaxWidth: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestMixedFixpointQueryEndToEnd(t *testing.T) {
	// An FP² query with a closed ν inside a µ, parsed from text, across
	// BottomUp / Monotone / Naive plus certificates.
	src := "(u). [lfp S(x). P(x) | ([gfp T(x). (exists y. E(x, y) & (exists x. x = y & T(x)))](x) & (exists z. E(z, x) & (exists x. x = z & S(x))))](u)"
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 8; seed++ {
		db := workload.RandomGraph(seed, 4, 2)
		bu, err := Eval(q, db, EngineBottomUp)
		if err != nil {
			t.Fatal(err)
		}
		nv, err := Eval(q, db, EngineNaive)
		if err != nil {
			t.Fatal(err)
		}
		mo, err := Eval(q, db, EngineMonotone)
		if err != nil {
			t.Fatal(err)
		}
		if !bu.Equal(nv) || !bu.Equal(mo) {
			t.Fatalf("engines disagree on seed %d: %v / %v / %v", seed, bu, nv, mo)
		}
		cert, _, err := FindCertificate(q, db)
		if err != nil {
			t.Fatal(err)
		}
		ver, err := VerifyCertificate(q, db, cert)
		if err != nil {
			t.Fatal(err)
		}
		if !ver.Equal(bu) {
			t.Fatalf("certificate pipeline differs on seed %d", seed)
		}
	}
}
