package datalog

import (
	"testing"

	"repro/internal/database"
	"repro/internal/relation"
)

func TestStratifiedUnreachable(t *testing.T) {
	// Unreachable(x) ← Node(x), ¬Reach(x): classic two-stratum program.
	db := func() *database.Database {
		b := database.NewBuilder().Relation("E", 2).Relation("Node", 1).Relation("Src", 1)
		for i := 0; i < 6; i++ {
			b.Domain(i)
			b.Add("Node", i)
		}
		b.Add("E", 0, 1).Add("E", 1, 2).Add("E", 4, 5)
		b.Add("Src", 0)
		return b.MustBuild()
	}()
	p := &Program{Rules: []Rule{
		{Head: A("Reach", V("x")), Body: []Atom{A("Src", V("x"))}},
		{Head: A("Reach", V("y")), Body: []Atom{A("Reach", V("x")), A("E", V("x"), V("y"))}},
		{Head: A("Unreach", V("x")), Body: []Atom{A("Node", V("x"))}, NegBody: []Atom{A("Reach", V("x"))}},
	}}
	idb, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	wantReach := relation.SetOf(1, relation.Tuple{0}, relation.Tuple{1}, relation.Tuple{2})
	if !idb["Reach"].Equal(wantReach) {
		t.Fatalf("Reach = %v", idb["Reach"])
	}
	wantUn := relation.SetOf(1, relation.Tuple{3}, relation.Tuple{4}, relation.Tuple{5})
	if !idb["Unreach"].Equal(wantUn) {
		t.Fatalf("Unreach = %v", idb["Unreach"])
	}
}

func TestStrataAssignment(t *testing.T) {
	p := &Program{Rules: []Rule{
		{Head: A("A", V("x")), Body: []Atom{A("E", V("x"), V("x"))}},
		{Head: A("B", V("x")), Body: []Atom{A("A", V("x"))}, NegBody: []Atom{A("A", V("x"))}},
		{Head: A("C", V("x")), Body: []Atom{A("B", V("x"))}, NegBody: []Atom{A("B", V("x"))}},
	}}
	s, err := p.strata()
	if err != nil {
		t.Fatal(err)
	}
	if s["A"] != 0 || s["B"] != 1 || s["C"] != 2 {
		t.Fatalf("strata = %v", s)
	}
}

func TestRecursionThroughNegationRejected(t *testing.T) {
	// Win(x) ← Move(x,y), ¬Win(y): the game program is not stratified.
	p := &Program{Rules: []Rule{
		{Head: A("Win", V("x")), Body: []Atom{A("Move", V("x"), V("y"))},
			NegBody: []Atom{A("Win", V("y"))}},
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("win-move program accepted despite recursion through negation")
	}
}

func TestUnsafeNegationRejected(t *testing.T) {
	// ¬Q(y) with y not bound positively.
	p := &Program{Rules: []Rule{
		{Head: A("P", V("x")), Body: []Atom{A("E", V("x"), V("x"))},
			NegBody: []Atom{A("Q", V("y"))}},
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("unsafe negation accepted")
	}
}

func TestNegationOverEDB(t *testing.T) {
	// Complement of an EDB relation restricted to the active domain.
	b := database.NewBuilder().Relation("Node", 1).Relation("Mark", 1)
	for i := 0; i < 4; i++ {
		b.Domain(i)
		b.Add("Node", i)
	}
	b.Add("Mark", 1).Add("Mark", 3)
	db := b.MustBuild()
	p := &Program{Rules: []Rule{
		{Head: A("Unmarked", V("x")), Body: []Atom{A("Node", V("x"))}, NegBody: []Atom{A("Mark", V("x"))}},
	}}
	idb, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !idb["Unmarked"].Equal(relation.SetOf(1, relation.Tuple{0}, relation.Tuple{2})) {
		t.Fatalf("Unmarked = %v", idb["Unmarked"])
	}
}

func TestThreeStrataPipeline(t *testing.T) {
	// Reach → Unreach (¬Reach) → Mixed pairs (Unreach × ¬Unreach).
	b := database.NewBuilder().Relation("E", 2).Relation("Node", 1).Relation("Src", 1)
	for i := 0; i < 4; i++ {
		b.Domain(i)
		b.Add("Node", i)
	}
	b.Add("E", 0, 1).Add("Src", 0)
	db := b.MustBuild()
	p := &Program{Rules: []Rule{
		{Head: A("Reach", V("x")), Body: []Atom{A("Src", V("x"))}},
		{Head: A("Reach", V("y")), Body: []Atom{A("Reach", V("x")), A("E", V("x"), V("y"))}},
		{Head: A("Unreach", V("x")), Body: []Atom{A("Node", V("x"))}, NegBody: []Atom{A("Reach", V("x"))}},
		{Head: A("Pair", V("x"), V("y")),
			Body:    []Atom{A("Unreach", V("x")), A("Node", V("y"))},
			NegBody: []Atom{A("Unreach", V("y"))}},
	}}
	idb, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	// Unreach = {2,3}; reach = {0,1}; pairs = {2,3} × {0,1}.
	if idb["Pair"].Len() != 4 {
		t.Fatalf("Pair = %v", idb["Pair"])
	}
	if !idb["Pair"].Contains(relation.Tuple{2, 0}) || idb["Pair"].Contains(relation.Tuple{2, 2}) {
		t.Fatalf("Pair wrong: %v", idb["Pair"])
	}
}
