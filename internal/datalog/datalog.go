// Package datalog is a positive-Datalog engine with semi-naive evaluation.
// It serves as an independent baseline for the fixpoint queries in this
// repository: Proposition 3.2's Path Systems program
//
//	P(x) ← S(x)
//	P(x) ← Q(x,y,z), P(y), P(z)
//
// is a two-rule Datalog program, and graph reachability is the one-rule
// program behind the §2.2 path queries.
package datalog

import (
	"fmt"

	"repro/internal/database"
	"repro/internal/relation"
)

// Term is a variable or a constant.
type Term struct {
	Var   string
	Const int
	IsVar bool
}

// V builds a variable term, C a constant term.
func V(name string) Term { return Term{Var: name, IsVar: true} }

// C builds a constant term (a domain index).
func C(v int) Term { return Term{Const: v} }

// Atom is Pred(t₁, …, t_m).
type Atom struct {
	Pred string
	Args []Term
}

// A builds an atom.
func A(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// Rule is Head ← Body₁, …, Body_m, ¬NegBody₁, …, ¬NegBody_j. Negated
// literals are safe (their variables must occur in the positive body) and
// the program must be stratified: no recursion through negation.
type Rule struct {
	Head    Atom
	Body    []Atom
	NegBody []Atom
}

// Program is a set of rules.
type Program struct {
	Rules []Rule
}

// Validate checks range restriction (every head variable occurs in the
// positive body), safety of negation (every variable of a negated literal
// occurs in the positive body), and consistent predicate arities.
func (p *Program) Validate() error {
	arity := make(map[string]int)
	check := func(a Atom) error {
		if prev, ok := arity[a.Pred]; ok && prev != len(a.Args) {
			return fmt.Errorf("datalog: %s used with arities %d and %d", a.Pred, prev, len(a.Args))
		}
		arity[a.Pred] = len(a.Args)
		return nil
	}
	for _, r := range p.Rules {
		if err := check(r.Head); err != nil {
			return err
		}
		bodyVars := make(map[string]bool)
		for _, b := range r.Body {
			if err := check(b); err != nil {
				return err
			}
			for _, t := range b.Args {
				if t.IsVar {
					bodyVars[t.Var] = true
				}
			}
		}
		for _, t := range r.Head.Args {
			if t.IsVar && !bodyVars[t.Var] {
				return fmt.Errorf("datalog: head variable %s not range-restricted in rule for %s", t.Var, r.Head.Pred)
			}
		}
		for _, nb := range r.NegBody {
			if err := check(nb); err != nil {
				return err
			}
			for _, t := range nb.Args {
				if t.IsVar && !bodyVars[t.Var] {
					return fmt.Errorf("datalog: variable %s of negated literal %s not bound positively", t.Var, nb.Pred)
				}
			}
		}
	}
	if _, err := p.strata(); err != nil {
		return err
	}
	return nil
}

// strata assigns each head predicate a stratum: a rule's head must sit at
// least as high as its positive IDB dependencies and strictly higher than
// its negated IDB dependencies. Programs with recursion through negation
// are rejected.
func (p *Program) strata() (map[string]int, error) {
	heads := make(map[string]bool)
	for _, r := range p.Rules {
		heads[r.Head.Pred] = true
	}
	s := make(map[string]int, len(heads))
	for h := range heads {
		s[h] = 0
	}
	// Bellman-Ford style relaxation; more than |heads| rounds of change
	// means a negative cycle (recursion through negation).
	for round := 0; ; round++ {
		changed := false
		for _, r := range p.Rules {
			h := r.Head.Pred
			for _, b := range r.Body {
				if heads[b.Pred] && s[b.Pred] > s[h] {
					s[h] = s[b.Pred]
					changed = true
				}
			}
			for _, nb := range r.NegBody {
				if heads[nb.Pred] && s[nb.Pred]+1 > s[h] {
					s[h] = s[nb.Pred] + 1
					changed = true
				}
			}
		}
		if !changed {
			return s, nil
		}
		if round > len(heads)+1 {
			return nil, fmt.Errorf("datalog: program is not stratified (recursion through negation)")
		}
	}
}

// Eval computes the (stratified, perfect) model of the program over the
// database's EDB relations. Rules are grouped by the stratum of their head;
// each stratum runs semi-naive iteration (each round only joins against the
// tuples newly derived in the previous round), with negated literals
// reading the finalized relations of strictly lower strata. It returns the
// IDB relations (head predicates), over domain indices.
func (p *Program) Eval(db *database.Database) (map[string]*relation.Set, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	strata, err := p.strata()
	if err != nil {
		return nil, err
	}
	idb := make(map[string]*relation.Set)
	for _, r := range p.Rules {
		if db.HasRelation(r.Head.Pred) {
			return nil, fmt.Errorf("datalog: head predicate %s is an EDB relation", r.Head.Pred)
		}
		if _, ok := idb[r.Head.Pred]; !ok {
			idb[r.Head.Pred] = relation.NewSet(len(r.Head.Args))
		}
	}
	lookup := func(pred string) (*relation.Set, error) {
		if s, ok := idb[pred]; ok {
			return s, nil
		}
		return db.Rel(pred)
	}
	maxStratum := 0
	for _, s := range strata {
		if s > maxStratum {
			maxStratum = s
		}
	}
	for s := 0; s <= maxStratum; s++ {
		var rules []Rule
		for _, r := range p.Rules {
			if strata[r.Head.Pred] == s {
				rules = append(rules, r)
			}
		}
		if err := p.evalStratum(rules, lookup, idb); err != nil {
			return nil, err
		}
	}
	return idb, nil
}

// evalStratum runs semi-naive iteration over one stratum's rules.
func (p *Program) evalStratum(rules []Rule, lookup func(string) (*relation.Set, error), idb map[string]*relation.Set) error {
	delta := make(map[string]*relation.Set)
	for pred := range idb {
		delta[pred] = relation.NewSet(idb[pred].Arity())
	}
	// First round: evaluate every rule against full relations. join adds a
	// head tuple to delta only when it is new, so deltas are exact.
	for _, r := range rules {
		if err := p.join(r, lookup, -1, nil, idb, delta); err != nil {
			return err
		}
	}
	// Semi-naive rounds: re-fire each rule once per IDB body literal, with
	// that literal restricted to the previous round's delta.
	for {
		anyNew := false
		for _, d := range delta {
			if d.Len() > 0 {
				anyNew = true
			}
		}
		if !anyNew {
			return nil
		}
		nextDelta := make(map[string]*relation.Set)
		for pred := range idb {
			nextDelta[pred] = relation.NewSet(idb[pred].Arity())
		}
		for _, r := range rules {
			for bi, b := range r.Body {
				if _, ok := idb[b.Pred]; !ok {
					continue
				}
				if delta[b.Pred].Len() == 0 {
					continue
				}
				if err := p.join(r, lookup, bi, delta[b.Pred], idb, nextDelta); err != nil {
					return err
				}
			}
		}
		delta = nextDelta
	}
}

// join enumerates satisfying bindings of the rule body left to right.
func (p *Program) join(r Rule, lookup func(string) (*relation.Set, error), deltaIdx int, deltaSet *relation.Set, idb, delta map[string]*relation.Set) error {
	env := make(map[string]int)
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(r.Body) {
			// Negated literals: ground and test against the (lower-stratum
			// or EDB) relations, which are final at this point.
			for _, nb := range r.NegBody {
				rel, err := lookup(nb.Pred)
				if err != nil {
					return err
				}
				ground := make(relation.Tuple, len(nb.Args))
				for j, t := range nb.Args {
					if t.IsVar {
						ground[j] = env[t.Var]
					} else {
						ground[j] = t.Const
					}
				}
				if rel.Contains(ground) {
					return nil
				}
			}
			head := make(relation.Tuple, len(r.Head.Args))
			for j, t := range r.Head.Args {
				if t.IsVar {
					head[j] = env[t.Var]
				} else {
					head[j] = t.Const
				}
			}
			if !idb[r.Head.Pred].Contains(head) {
				idb[r.Head.Pred].Add(head)
				delta[r.Head.Pred].Add(head)
			}
			return nil
		}
		b := r.Body[i]
		var rel *relation.Set
		if i == deltaIdx {
			rel = deltaSet
		} else {
			var err error
			rel, err = lookup(b.Pred)
			if err != nil {
				return err
			}
		}
		if rel.Arity() != len(b.Args) {
			return fmt.Errorf("datalog: %s arity mismatch", b.Pred)
		}
		var ferr error
		rel.ForEach(func(t relation.Tuple) {
			if ferr != nil {
				return
			}
			// Match the literal against t under the current bindings.
			bound := make([]string, 0, len(b.Args))
			ok := true
			for j, a := range b.Args {
				if !a.IsVar {
					if t[j] != a.Const {
						ok = false
						break
					}
					continue
				}
				if v, has := env[a.Var]; has {
					if v != t[j] {
						ok = false
						break
					}
					continue
				}
				env[a.Var] = t[j]
				bound = append(bound, a.Var)
			}
			if ok {
				ferr = rec(i + 1)
			}
			for _, v := range bound {
				delete(env, v)
			}
		})
		return ferr
	}
	return rec(0)
}
