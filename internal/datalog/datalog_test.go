package datalog

import (
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/pathsys"
	"repro/internal/relation"
)

func lineDB(t testing.TB, n int) *database.Database {
	t.Helper()
	b := database.NewBuilder().Relation("E", 2)
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	for i := 0; i+1 < n; i++ {
		b.Add("E", i, i+1)
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func reachProgram() *Program {
	return &Program{Rules: []Rule{
		{Head: A("Reach", V("x"), V("y")), Body: []Atom{A("E", V("x"), V("y"))}},
		{Head: A("Reach", V("x"), V("y")), Body: []Atom{A("E", V("x"), V("z")), A("Reach", V("z"), V("y"))}},
	}}
}

func TestTransitiveClosure(t *testing.T) {
	db := lineDB(t, 6)
	idb, err := reachProgram().Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	reach := idb["Reach"]
	want := relation.NewSet(2)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			want.Add(relation.Tuple{i, j})
		}
	}
	if !reach.Equal(want) {
		t.Fatalf("Reach = %v, want %v", reach, want)
	}
}

func TestValidation(t *testing.T) {
	bad := []*Program{
		// Head variable not in body.
		{Rules: []Rule{{Head: A("P", V("x")), Body: []Atom{A("E", V("y"), V("y"))}}}},
		// Arity conflict.
		{Rules: []Rule{
			{Head: A("P", V("x")), Body: []Atom{A("E", V("x"), V("x"))}},
			{Head: A("P", V("x"), V("x")), Body: []Atom{A("E", V("x"), V("x"))}},
		}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid program accepted: %+v", p)
		}
	}
}

func TestHeadCannotBeEDB(t *testing.T) {
	db := lineDB(t, 3)
	p := &Program{Rules: []Rule{{Head: A("E", V("x"), V("y")), Body: []Atom{A("E", V("x"), V("y"))}}}}
	if _, err := p.Eval(db); err == nil {
		t.Fatal("EDB head accepted")
	}
}

func TestConstantsInRules(t *testing.T) {
	db := lineDB(t, 4)
	// P(x) ← E(0, x): successors of node 0.
	p := &Program{Rules: []Rule{{Head: A("P", V("x")), Body: []Atom{A("E", C(0), V("x"))}}}}
	idb, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !idb["P"].Equal(relation.SetOf(1, relation.Tuple{1})) {
		t.Fatalf("P = %v", idb["P"])
	}
}

func TestPathSystemsProgramAgreesWithSolver(t *testing.T) {
	// The Proposition 3.2 Datalog program against the worklist solver.
	prog := &Program{Rules: []Rule{
		{Head: A("Path", V("x")), Body: []Atom{A("S", V("x"))}},
		{Head: A("Path", V("x")), Body: []Atom{
			A("Q", V("x"), V("y"), V("z")), A("Path", V("y")), A("Path", V("z"))}},
	}}
	r := rand.New(rand.NewSource(83))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(6)
		in := pathsys.Random(r, n, r.Intn(3*n))
		db, err := in.ToDatabase()
		if err != nil {
			t.Fatal(err)
		}
		idb, err := prog.Eval(db)
		if err != nil {
			t.Fatal(err)
		}
		reach := in.Reachable()
		for v := 0; v < n; v++ {
			if reach[v] != idb["Path"].Contains(relation.Tuple{v}) {
				t.Fatalf("datalog and worklist disagree at %d on %+v", v, in)
			}
		}
	}
}

func TestSemiNaiveTerminatesOnCycles(t *testing.T) {
	b := database.NewBuilder().Relation("E", 2)
	b.Add("E", 0, 1).Add("E", 1, 2).Add("E", 2, 0)
	db := b.MustBuild()
	idb, err := reachProgram().Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if idb["Reach"].Len() != 9 {
		t.Fatalf("Reach on 3-cycle has %d tuples, want 9", idb["Reach"].Len())
	}
}

func TestMutualRecursion(t *testing.T) {
	// Even/Odd distance from node 0 along a line.
	db := lineDB(t, 5)
	p := &Program{Rules: []Rule{
		{Head: A("Even", V("x")), Body: []Atom{A("Zero", V("x"))}},
		{Head: A("Odd", V("y")), Body: []Atom{A("Even", V("x")), A("E", V("x"), V("y"))}},
		{Head: A("Even", V("y")), Body: []Atom{A("Odd", V("x")), A("E", V("x"), V("y"))}},
	}}
	b := database.NewBuilder().Relation("E", 2).Relation("Zero", 1)
	for i := 0; i < 5; i++ {
		b.Domain(i)
	}
	for i := 0; i+1 < 5; i++ {
		b.Add("E", i, i+1)
	}
	b.Add("Zero", 0)
	db = b.MustBuild()
	idb, err := p.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	if !idb["Even"].Equal(relation.SetOf(1, relation.Tuple{0}, relation.Tuple{2}, relation.Tuple{4})) {
		t.Fatalf("Even = %v", idb["Even"])
	}
	if !idb["Odd"].Equal(relation.SetOf(1, relation.Tuple{1}, relation.Tuple{3})) {
		t.Fatalf("Odd = %v", idb["Odd"])
	}
}
