// Package trace is the query-lifecycle observability layer of bvqd: a
// hierarchical span model describing where one request's time went —
// admission wait, cache lookup, compile, evaluation, per-binder fixpoint
// work, answer extraction or stream drain — plus the flight recorder
// (recorder.go) that keeps the last N finished traces in memory for
// GET /debug/traces.
//
// The paper's evaluation cost is structured (per-binder fixpoint stages
// over a plan DAG), and the constant-delay line of work splits cost into
// preprocessing vs. per-tuple delay; a trace exposes exactly those seams
// per request instead of one flat latency number.
//
// Design constraints, in order:
//
//   - Zero cost when disabled. Every method is nil-receiver safe: a nil
//     *Trace starts nil *Spans, and a nil *Span drops every call without
//     allocating, so untraced requests pay one pointer compare per
//     instrumentation point and nothing else.
//
//   - Safe under concurrency. The compiled engine's parallel wave scheduler
//     and the PFP parameter sweep fire stage events from several goroutines
//     at once; all span mutation is serialized on the owning Trace's mutex.
//
//   - Closed means closed. After Trace.Close, span starts, ends, stage
//     events and annotations are dropped — a late goroutine cannot mutate a
//     trace the flight recorder has already published.
//
// Trace IDs follow the W3C trace-context format (32 lowercase hex chars)
// so a future bvqrouter can stitch fleet-wide traces: ParseTraceparent and
// FormatTraceparent read and write the `traceparent` header, and NewTraceID
// generates fresh IDs.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"repro/internal/eval"
)

// Span names used by the bvqd request lifecycle. The stage-latency
// histogram families (bvqd_stage_seconds{stage}) use these as label values,
// and OPERATIONS.md documents them under /debug/traces.
const (
	SpanRequest     = "request"
	SpanAdmission   = "admission_wait"
	SpanCacheLookup = "cache_lookup"
	SpanCompile     = "compile"
	SpanEval        = "eval"
	SpanFixpoint    = "fixpoint"
	SpanExtract     = "extract"
	SpanStreamDrain = "stream_drain"
)

// Trace is one request's span tree. Construct with New; a nil *Trace is the
// disabled form — every derived *Span is nil and every call is a no-op.
type Trace struct {
	mu     sync.Mutex
	id     string
	start  time.Time
	spans  []*Span // spans[0] is the root; append order = start order
	closed bool
	end    time.Time
	keep   string // non-empty: why the flight recorder must retain this trace
}

// Span is one timed section of a trace. Spans are created by Trace.Root and
// Span.Start and mutated only through methods, all of which lock the owning
// trace. A nil *Span drops every call.
type Span struct {
	t      *Trace
	id     int
	parent int // -1 for the root
	name   string
	start  time.Time
	ended  bool
	dur    time.Duration
	attrs  []Attr

	// Fixpoint aggregation (spans created by the Stages adapter): one span
	// per (engine, fixpoint, op) under the eval span, folding every stage
	// event — including the parallel PFP sweep's — into counters. dur is
	// busy time (summed stage Elapsed), not wall time: concurrent sweep
	// workers overlap, so wall time is not well defined per fixpoint.
	stages      int64
	tuples      int // last reported stage size
	deltaTuples int64
	fixKids     map[string]*Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// New returns a live trace with the given W3C trace ID and a started root
// span named SpanRequest.
func New(id string, start time.Time) *Trace {
	t := &Trace{id: id, start: start}
	t.spans = []*Span{{t: t, id: 0, parent: -1, name: SpanRequest, start: start}}
	return t
}

// ID returns the trace ID ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the request span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.spans[0]
}

// Keep marks the trace as must-retain with a reason (slow, error, shed);
// the flight recorder moves kept traces to the always-keep buffer instead
// of the ring. The first reason wins.
func (t *Trace) Keep(reason string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.keep == "" {
		t.keep = reason
	}
	t.mu.Unlock()
}

// Close finishes the trace: the root span and every still-open child end at
// now, and all further mutation — span starts, ends, annotations, stage
// events — is dropped. Close is idempotent.
func (t *Trace) Close(now time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	t.end = now
	for _, s := range t.spans {
		if !s.ended {
			s.ended = true
			s.dur = now.Sub(s.start)
		}
	}
}

// Start begins a child span under s. Returns nil (a no-op span) when s is
// nil or the trace is closed.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	kid := &Span{t: t, id: len(t.spans), parent: s.id, name: name, start: time.Now()}
	t.spans = append(t.spans, kid)
	return kid
}

// End finishes the span. Ending twice, or after the trace closed, is a
// no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || s.ended {
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
}

// Annotate attaches a key/value pair to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// Duration returns the span's duration so far: its final duration once
// ended, the running duration otherwise. Zero for a nil span.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// stageEvent folds one fixpoint stage into the per-(engine, fixpoint, op)
// child span of s, creating it on first use. Runs under the trace mutex —
// cheap enough for the stage-boundary contract of eval.Options.Tracer.
func (s *Span) stageEvent(ev eval.TraceEvent) {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	key := ev.Engine + "|" + ev.Fixpoint + "|" + ev.Op
	fs, ok := s.fixKids[key]
	if !ok {
		fs = &Span{t: t, id: len(t.spans), parent: s.id, name: SpanFixpoint, start: time.Now()}
		fs.attrs = []Attr{
			{Key: "engine", Value: ev.Engine},
			{Key: "fixpoint", Value: ev.Fixpoint},
			{Key: "op", Value: ev.Op},
		}
		fs.ended = true // dur is maintained as busy time below
		t.spans = append(t.spans, fs)
		if s.fixKids == nil {
			s.fixKids = make(map[string]*Span)
		}
		s.fixKids[key] = fs
	}
	fs.stages++
	fs.tuples = ev.Tuples
	if d := ev.Delta; d >= 0 {
		fs.deltaTuples += int64(d)
	} else {
		fs.deltaTuples -= int64(d)
	}
	fs.dur += ev.Elapsed
}

// Stages returns an eval.Tracer that folds per-stage events into
// per-fixpoint child spans of span. The tracer is safe for concurrent use
// (the parallel PFP sweep and the wave scheduler fire it from several
// workers). A nil span returns a nil tracer, which eval treats as tracing
// disabled — the zero-cost path.
func Stages(span *Span) eval.Tracer {
	if span == nil {
		return nil
	}
	return span.stageEvent
}

// SpanView is the immutable JSON form of one span, snapshotted by
// Trace.View. StartUS is the offset from the trace start in microseconds.
type SpanView struct {
	ID      int     `json:"id"`
	Parent  int     `json:"parent"`
	Name    string  `json:"name"`
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	Attrs   []Attr  `json:"attrs,omitempty"`
	// Fixpoint spans only: stage count, final stage size, summed |Δ|.
	Stages      int64 `json:"stages,omitempty"`
	Tuples      int   `json:"tuples,omitempty"`
	DeltaTuples int64 `json:"delta_tuples,omitempty"`
}

// View is the immutable JSON form of a whole trace.
type View struct {
	TraceID string     `json:"trace_id"`
	Start   time.Time  `json:"start"`
	DurMS   float64    `json:"dur_ms"`
	Kept    string     `json:"kept,omitempty"`
	Spans   []SpanView `json:"spans"`
}

// View snapshots the trace. Open spans report their running duration;
// callers normally View only closed traces (the flight recorder does).
func (t *Trace) View() View {
	if t == nil {
		return View{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	v := View{
		TraceID: t.id,
		Start:   t.start,
		Kept:    t.keep,
		Spans:   make([]SpanView, len(t.spans)),
	}
	end := t.end
	if !t.closed {
		end = time.Now()
	}
	v.DurMS = float64(end.Sub(t.start).Microseconds()) / 1000
	for i, s := range t.spans {
		dur := s.dur
		if !s.ended {
			dur = end.Sub(s.start)
		}
		v.Spans[i] = SpanView{
			ID:          s.id,
			Parent:      s.parent,
			Name:        s.name,
			StartUS:     float64(s.start.Sub(t.start).Nanoseconds()) / 1000,
			DurUS:       float64(dur.Nanoseconds()) / 1000,
			Attrs:       append([]Attr(nil), s.attrs...),
			Stages:      s.stages,
			Tuples:      s.tuples,
			DeltaTuples: s.deltaTuples,
		}
	}
	return v
}

// NewTraceID returns a fresh W3C trace ID: 16 random bytes, lowercase hex.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// time-derived ID rather than panicking in a serving path.
		now := time.Now().UnixNano()
		for i := 0; i < 8; i++ {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh W3C parent/span ID: 8 random bytes, hex.
func NewSpanID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		now := time.Now().UnixNano()
		for i := 0; i < 8; i++ {
			b[i] = byte(now >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// ParseTraceparent extracts the trace ID and parent span ID from a W3C
// `traceparent` header value (version 00: "00-<32 hex>-<16 hex>-<2 hex>").
// ok is false for anything malformed, including the all-zero trace ID the
// spec forbids.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	if h[0] != '0' || h[1] != '0' {
		return "", "", false // only version 00 is understood
	}
	traceID, parentID = h[3:35], h[36:52]
	zeroTrace := true
	for _, part := range []string{traceID, parentID, h[53:]} {
		for i := 0; i < len(part); i++ {
			c := part[i]
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				return "", "", false
			}
		}
	}
	for i := 0; i < len(traceID); i++ {
		if traceID[i] != '0' {
			zeroTrace = false
			break
		}
	}
	if zeroTrace {
		return "", "", false
	}
	return traceID, parentID, true
}

// FormatTraceparent renders a version-00 sampled traceparent header value.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}
