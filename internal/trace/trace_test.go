package trace_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/trace"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *trace.Trace
	if tr.ID() != "" {
		t.Fatal("nil trace has an ID")
	}
	root := tr.Root()
	if root != nil {
		t.Fatal("nil trace has a root span")
	}
	// Every derived call must be a silent no-op.
	kid := root.Start("child")
	if kid != nil {
		t.Fatal("nil span started a child")
	}
	kid.Annotate("k", "v")
	kid.End()
	if d := kid.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	if tracer := trace.Stages(root); tracer != nil {
		t.Fatal("Stages(nil) != nil — eval would pay the tracing cost")
	}
	tr.Keep("slow")
	tr.Close(time.Now())
	if v := tr.View(); v.TraceID != "" || len(v.Spans) != 0 {
		t.Fatalf("nil trace view = %+v", v)
	}
}

func TestCloseDropsLateMutation(t *testing.T) {
	tr := trace.New(trace.NewTraceID(), time.Now())
	root := tr.Root()
	ev := root.Start(trace.SpanEval)
	tracer := trace.Stages(ev)
	tr.Close(time.Now())

	// Everything after Close must be dropped: no new spans, no stage
	// events, no annotations.
	before := len(tr.View().Spans)
	if s := root.Start("late"); s != nil {
		t.Fatal("Start after Close returned a live span")
	}
	tracer(eval.TraceEvent{Engine: "compiled", Fixpoint: "T", Op: "lfp", Stage: 1, Tuples: 3, Delta: 3})
	root.Annotate("late", "x")
	v := tr.View()
	if len(v.Spans) != before {
		t.Fatalf("spans grew after Close: %d -> %d", before, len(v.Spans))
	}
	for _, s := range v.Spans {
		if s.Stages != 0 {
			t.Fatalf("stage event recorded after Close: %+v", s)
		}
		for _, a := range s.Attrs {
			if a.Key == "late" {
				t.Fatal("annotation recorded after Close")
			}
		}
	}
	// Idempotent close must not move the end time.
	dur := v.DurMS
	time.Sleep(2 * time.Millisecond)
	tr.Close(time.Now())
	if got := tr.View().DurMS; got != dur {
		t.Fatalf("second Close moved DurMS %v -> %v", dur, got)
	}
}

// pfpDB builds a small digraph whose PFP parameter sweep gives the parallel
// workers real work.
func pfpDB(t *testing.T, n int) *database.Database {
	t.Helper()
	b := database.NewBuilder().Relation("E", 2)
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	for i := 0; i < n; i++ {
		b.Add("E", i, (i+1)%n)
		b.Add("E", i, (i*3+1)%n)
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestSpanTreeUnderParallelEval drives the compiled engine's parallel paths
// (the wave scheduler and the PFP parameter sweep) with a live tracer and
// asserts the finished span tree is well formed. Run under -race this is the
// concurrency regression test for the span model.
func TestSpanTreeUnderParallelEval(t *testing.T) {
	db := pfpDB(t, 24)
	queries := map[string]logic.Query{
		"lfp-tc": logic.MustQuery([]logic.Var{"x", "y"},
			logic.Lfp("T", []logic.Var{"x", "y"},
				logic.Or(logic.R("E", "x", "y"),
					logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("T", "z", "y")), "z")),
				"x", "y")),
		"pfp": logic.MustQuery([]logic.Var{"x", "y"},
			logic.Pfp("S", []logic.Var{"x"},
				logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("S", "z")), "z"),
				"y")),
	}
	for name, q := range queries {
		t.Run(name, func(t *testing.T) {
			p, err := plan.Compile(q)
			if err != nil {
				t.Fatal(err)
			}
			tr := trace.New(trace.NewTraceID(), time.Now())
			ev := tr.Root().Start(trace.SpanEval)
			opts := &eval.Options{Parallelism: 4, Tracer: trace.Stages(ev)}
			if _, _, err := eval.EvalPlanContext(context.Background(), p, db, opts); err != nil {
				t.Fatal(err)
			}
			ev.End()
			tr.Close(time.Now())
			v := tr.View()
			if len(v.Spans) < 3 { // request, eval, >=1 fixpoint
				t.Fatalf("got %d spans, want request+eval+fixpoint at least:\n%+v", len(v.Spans), v)
			}
			sawFix := false
			for i, s := range v.Spans {
				if s.ID != i {
					t.Fatalf("span %d has ID %d", i, s.ID)
				}
				if i == 0 {
					if s.Parent != -1 || s.Name != trace.SpanRequest {
						t.Fatalf("root = %+v", s)
					}
					continue
				}
				if s.Parent < 0 || s.Parent >= i {
					t.Fatalf("span %d parent %d breaks start-order topology", i, s.Parent)
				}
				if s.DurUS < 0 || s.StartUS < 0 {
					t.Fatalf("negative timing: %+v", s)
				}
				if s.Name == trace.SpanFixpoint {
					sawFix = true
					if s.Stages <= 0 {
						t.Fatalf("fixpoint span with no stages: %+v", s)
					}
					var engine string
					for _, a := range s.Attrs {
						if a.Key == "engine" {
							engine = a.Value
						}
					}
					if engine != "compiled" {
						t.Fatalf("fixpoint engine = %q: %+v", engine, s)
					}
				}
			}
			if !sawFix {
				t.Fatalf("no fixpoint span recorded:\n%+v", v.Spans)
			}
		})
	}
}

// TestStageEventsConcurrent hammers one tracer from many goroutines while
// the trace closes midway — the recorder-publish race the package guards
// against. Only meaningful under -race.
func TestStageEventsConcurrent(t *testing.T) {
	tr := trace.New(trace.NewTraceID(), time.Now())
	ev := tr.Root().Start(trace.SpanEval)
	tracer := trace.Stages(ev)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tracer(eval.TraceEvent{Engine: "compiled", Fixpoint: "T", Op: "lfp",
					Stage: i, Tuples: i, Delta: 1, Binder: 0})
			}
		}(g)
	}
	wg.Wait()
	tr.Close(time.Now())
	v := tr.View()
	var total int64
	for _, s := range v.Spans {
		total += s.Stages
	}
	if total != 8*500 {
		t.Fatalf("stages = %d, want %d", total, 8*500)
	}
}

func TestRecorderRingAndKeep(t *testing.T) {
	r := trace.NewRecorder(3, 2)
	mk := func(id string, keep string) *trace.Trace {
		tr := trace.New(id, time.Now())
		if keep != "" {
			tr.Keep(keep)
		}
		tr.Close(time.Now())
		return tr
	}
	for _, id := range []string{"a", "b", "c", "d"} {
		r.Record(mk(strings.Repeat(id, 32), ""))
	}
	views := r.Traces()
	if len(views) != 3 {
		t.Fatalf("ring retained %d, want 3", len(views))
	}
	if views[0].TraceID != strings.Repeat("d", 32) {
		t.Fatalf("newest first broken: %s", views[0].TraceID)
	}
	if _, ok := r.Get(strings.Repeat("a", 32)); ok {
		t.Fatal("evicted trace still retrievable")
	}
	// Kept traces survive ring churn and evict FIFO at their own capacity.
	r.Record(mk(strings.Repeat("e", 32), "slow"))
	r.Record(mk(strings.Repeat("f", 32), "error"))
	r.Record(mk(strings.Repeat("g", 32), "shed"))
	for _, id := range []string{"h", "i", "j", "k"} {
		r.Record(mk(strings.Repeat(id, 32), ""))
	}
	if _, ok := r.Get(strings.Repeat("e", 32)); ok {
		t.Fatal("keep buffer did not evict FIFO at capacity")
	}
	v, ok := r.Get(strings.Repeat("g", 32))
	if !ok || v.Kept != "shed" {
		t.Fatalf("kept trace lost: ok=%v view=%+v", ok, v)
	}
	ring, keep := r.Len()
	if ring != 3 || keep != 2 {
		t.Fatalf("Len = (%d, %d), want (3, 2)", ring, keep)
	}
	if r.Recorded() != 11 || r.Kept() != 3 {
		t.Fatalf("counters = (%d, %d), want (11, 3)", r.Recorded(), r.Kept())
	}
	// Nil recorder: all no-ops.
	var nilR *trace.Recorder
	nilR.Record(mk(strings.Repeat("z", 32), ""))
	if nilR.Traces() != nil || nilR.Recorded() != 0 {
		t.Fatal("nil recorder retained something")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	id, span := trace.NewTraceID(), trace.NewSpanID()
	if len(id) != 32 || len(span) != 16 {
		t.Fatalf("id lengths = %d/%d, want 32/16", len(id), len(span))
	}
	h := trace.FormatTraceparent(id, span)
	gotID, gotSpan, ok := trace.ParseTraceparent(h)
	if !ok || gotID != id || gotSpan != span {
		t.Fatalf("round trip failed: %q -> %q %q %v", h, gotID, gotSpan, ok)
	}
	bad := []string{
		"",
		"00-short-short-01",
		"ff-" + id + "-" + span + "-01", // unknown version
		"00-" + strings.Repeat("0", 32) + "-" + span + "-01", // zero trace id
		"00-" + strings.ToUpper(id) + "-" + span + "-01",     // uppercase hex
		h[:54],
	}
	for _, b := range bad {
		if _, _, ok := trace.ParseTraceparent(b); ok {
			t.Fatalf("ParseTraceparent(%q) accepted malformed input", b)
		}
	}
}
