package trace

import (
	"sync"
	"sync/atomic"
)

// Recorder is the in-memory flight recorder: a ring buffer of the last N
// finished traces, plus a bounded always-keep buffer for traces marked Keep
// (slow, error and shed requests) so one burst of healthy traffic cannot
// evict the trace that explains an incident. Served by bvqd at
// GET /debug/traces.
//
// Traces are recorded by value of reference — the recorder never copies
// span data until a /debug/traces request snapshots it with View, so
// recording is O(1) per request.
type Recorder struct {
	mu      sync.Mutex
	ring    []*Trace // circular, nil until warm
	next    int
	keep    []*Trace // FIFO, oldest evicted at capacity
	keepMax int

	recorded atomic.Int64
	kept     atomic.Int64
}

// NewRecorder returns a recorder retaining the last ringSize finished
// traces plus up to keepSize must-keep traces. Sizes are clamped to at
// least 1.
func NewRecorder(ringSize, keepSize int) *Recorder {
	if ringSize < 1 {
		ringSize = 1
	}
	if keepSize < 1 {
		keepSize = 1
	}
	return &Recorder{ring: make([]*Trace, ringSize), keepMax: keepSize}
}

// Record files a finished trace: into the always-keep buffer when the trace
// was marked Keep, into the ring otherwise. Nil recorders and nil traces
// are no-ops.
func (r *Recorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.recorded.Add(1)
	t.mu.Lock()
	keep := t.keep != ""
	t.mu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if keep {
		r.kept.Add(1)
		if len(r.keep) >= r.keepMax {
			copy(r.keep, r.keep[1:])
			r.keep = r.keep[:len(r.keep)-1]
		}
		r.keep = append(r.keep, t)
		return
	}
	r.ring[r.next] = t
	r.next = (r.next + 1) % len(r.ring)
}

// Traces snapshots every retained trace, newest first, kept traces after
// ring traces. The snapshot is deep (View copies), so callers may hold it
// across later recording.
func (r *Recorder) Traces() []View {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	live := make([]*Trace, 0, len(r.ring)+len(r.keep))
	for i := 1; i <= len(r.ring); i++ {
		// Walk the ring newest-first: next-1 is the most recent write.
		if t := r.ring[(r.next-i+len(r.ring))%len(r.ring)]; t != nil {
			live = append(live, t)
		}
	}
	for i := len(r.keep) - 1; i >= 0; i-- {
		live = append(live, r.keep[i])
	}
	r.mu.Unlock()
	out := make([]View, len(live))
	for i, t := range live {
		out[i] = t.View()
	}
	return out
}

// Get returns the retained trace with the given ID.
func (r *Recorder) Get(id string) (View, bool) {
	if r == nil {
		return View{}, false
	}
	r.mu.Lock()
	var found *Trace
	for _, t := range r.ring {
		if t != nil && t.id == id {
			found = t
			break
		}
	}
	if found == nil {
		for _, t := range r.keep {
			if t.id == id {
				found = t
				break
			}
		}
	}
	r.mu.Unlock()
	if found == nil {
		return View{}, false
	}
	return found.View(), true
}

// Len reports the current ring and keep occupancy.
func (r *Recorder) Len() (ring, keep int) {
	if r == nil {
		return 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.ring {
		if t != nil {
			ring++
		}
	}
	return ring, len(r.keep)
}

// Recorded returns the cumulative count of traces filed with Record.
func (r *Recorder) Recorded() int64 {
	if r == nil {
		return 0
	}
	return r.recorded.Load()
}

// Kept returns the cumulative count of traces filed into the keep buffer.
func (r *Recorder) Kept() int64 {
	if r == nil {
		return 0
	}
	return r.kept.Load()
}
