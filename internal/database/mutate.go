// Tuple-level mutation. A Database value is immutable — every evaluator,
// fingerprint and cache key relies on that — so mutation is expressed as
// Apply: it returns a NEW snapshot sharing every unchanged relation with its
// parent (copy-on-write at relation granularity), plus the effective Delta
// that separates the two. Holders of the old snapshot are unaffected:
// in-flight queries keep evaluating against byte-identical data, which is
// the MVCC discipline the bvqd daemon serves updates under.
//
// Snapshots form a lineage: Version counts effective updates since Build,
// and the fingerprint of a mutated snapshot is a hash chain over
// (parent fingerprint, new version, canonical delta encoding). Two
// snapshots with equal fingerprints have equal content — the soundness
// direction result caching needs — while the chain keeps fingerprint
// maintenance O(|delta|) instead of O(|data|) per update.
//
// The domain is fixed for the lifetime of a lineage: updates may only
// mention values already in the domain. Growing the domain would renumber
// domain indices and silently invalidate every cached dense encoding, so it
// is rejected rather than supported badly.
package database

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"

	"repro/internal/relation"
)

// Update is one relation's tuple-level change in an Apply call. Tuples are
// given in raw domain values (the Builder.Add convention). Within one Apply,
// deletes are applied before inserts, so a tuple appearing in both lists
// ends up present.
type Update struct {
	// Relation names a declared relation of the database.
	Relation string
	// Insert lists tuples to add; Delete lists tuples to remove. Both may
	// mention tuples that are already present / absent — those are no-ops.
	Insert []relation.Tuple
	Delete []relation.Tuple
}

// RelDelta is one relation's effective change: the tuples actually added and
// actually removed, in domain-index space (the evaluators' coordinate
// system), each sorted in canonical tuple order.
type RelDelta struct {
	Ins []relation.Tuple
	Del []relation.Tuple
}

// Delta describes the effective difference between a parent snapshot and the
// snapshot Apply returned. Relations with no effective change do not appear.
type Delta struct {
	// FromVersion and Version are the parent's and the new snapshot's
	// versions. Equal when the update was an effective no-op.
	FromVersion uint64
	Version     uint64
	// Rels maps relation name → effective change, in domain-index space.
	Rels map[string]RelDelta
}

// Empty reports whether the update changed nothing.
func (d *Delta) Empty() bool { return len(d.Rels) == 0 }

// Relations returns the names of effectively changed relations, sorted.
func (d *Delta) Relations() []string {
	out := make([]string, 0, len(d.Rels))
	for name := range d.Rels {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// InsertOnly reports whether the delta removes nothing.
func (d *Delta) InsertOnly() bool {
	for _, rd := range d.Rels {
		if len(rd.Del) > 0 {
			return false
		}
	}
	return true
}

// Counts returns the total number of effectively inserted and deleted tuples.
func (d *Delta) Counts() (ins, del int) {
	for _, rd := range d.Rels {
		ins += len(rd.Ins)
		del += len(rd.Del)
	}
	return ins, del
}

// Version returns the number of effective updates between Build and this
// snapshot (0 for a freshly built database).
func (db *Database) Version() uint64 { return db.version }

// Apply returns a new snapshot with the updates applied, plus the effective
// delta separating it from db. The receiver is never modified. Unchanged
// relations are shared between the snapshots, so Apply is O(|changed
// relations| + |delta|), not O(|data|).
//
// Tuples are raw domain values; every value must already be in the domain
// (domains are fixed per lineage — see the package comment). An update that
// changes nothing effectively returns the receiver itself with an empty
// delta and no version bump.
func (db *Database) Apply(ups []Update) (*Database, *Delta, error) {
	// Accumulate deduplicated per-relation insert/delete sets in index space.
	insSets := make(map[string]*relation.Set)
	delSets := make(map[string]*relation.Set)
	for _, up := range ups {
		a, ok := db.arity[up.Relation]
		if !ok {
			return nil, nil, fmt.Errorf("database: update: unknown relation %q", up.Relation)
		}
		norm := func(t relation.Tuple, verb string) (relation.Tuple, error) {
			if len(t) != a {
				return nil, fmt.Errorf("database: update: relation %s has arity %d, cannot %s %d-tuple %v",
					up.Relation, a, verb, len(t), t)
			}
			nt := make(relation.Tuple, len(t))
			for i, v := range t {
				x, ok := db.idx[v]
				if !ok {
					return nil, fmt.Errorf("database: update: relation %s %s tuple %v: value %d is not in the domain (domains are fixed per database)",
						up.Relation, verb, t, v)
				}
				nt[i] = x
			}
			return nt, nil
		}
		for _, t := range up.Delete {
			nt, err := norm(t, "delete")
			if err != nil {
				return nil, nil, err
			}
			if delSets[up.Relation] == nil {
				delSets[up.Relation] = relation.NewSet(a)
			}
			delSets[up.Relation].Add(nt)
		}
		for _, t := range up.Insert {
			nt, err := norm(t, "insert")
			if err != nil {
				return nil, nil, err
			}
			if insSets[up.Relation] == nil {
				insSets[up.Relation] = relation.NewSet(a)
			}
			insSets[up.Relation].Add(nt)
		}
	}

	// Effective delta: inserts that are genuinely new, deletes that hit an
	// existing tuple and are not re-inserted in the same call (deletes apply
	// first, so insert wins on overlap).
	delta := &Delta{FromVersion: db.version, Version: db.version, Rels: make(map[string]RelDelta)}
	names := make(map[string]bool, len(insSets)+len(delSets))
	for name := range insSets {
		names[name] = true
	}
	for name := range delSets {
		names[name] = true
	}
	for name := range names {
		cur := db.rels[name]
		var rd RelDelta
		if ins := insSets[name]; ins != nil {
			ins.ForEach(func(t relation.Tuple) {
				if !cur.Contains(t) {
					rd.Ins = append(rd.Ins, t)
				}
			})
		}
		if del := delSets[name]; del != nil {
			ins := insSets[name]
			del.ForEach(func(t relation.Tuple) {
				if ins != nil && ins.Contains(t) {
					return
				}
				if cur.Contains(t) {
					rd.Del = append(rd.Del, t)
				}
			})
		}
		if len(rd.Ins) == 0 && len(rd.Del) == 0 {
			continue
		}
		relation.SortTuples(rd.Ins)
		relation.SortTuples(rd.Del)
		delta.Rels[name] = rd
	}
	if delta.Empty() {
		return db, delta, nil
	}

	// Copy-on-write snapshot: new relation map, changed relations replaced,
	// everything else (domain, index, signature, unchanged relations) shared.
	next := &Database{
		domain:  db.domain,
		idx:     db.idx,
		names:   db.names,
		arity:   db.arity,
		rels:    make(map[string]*relation.Set, len(db.rels)),
		version: db.version + 1,
	}
	for name, r := range db.rels {
		next.rels[name] = r
	}
	for name, rd := range delta.Rels {
		next.rels[name] = db.rels[name].ApplyDelta(rd.Ins, rd.Del)
	}
	delta.Version = next.version
	next.fp = lineageFingerprint(db.Fingerprint(), next.version, delta)
	next.fpKnown = true
	return next, delta, nil
}

// lineageFingerprint chains the parent fingerprint with the canonical delta
// encoding. Equal fingerprints still imply equal content (same base, same
// update history ⇒ same data); distinct histories reaching the same content
// get distinct fingerprints, which costs only a potential cache miss.
func lineageFingerprint(parent uint64, version uint64, d *Delta) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%016x|%d", parent, version)
	for _, name := range d.Relations() {
		rd := d.Rels[name]
		fmt.Fprintf(h, "|%s", name)
		for _, t := range rd.Ins {
			io.WriteString(h, "+"+t.String())
		}
		for _, t := range rd.Del {
			io.WriteString(h, "-"+t.String())
		}
	}
	return h.Sum64()
}
