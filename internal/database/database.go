// Package database implements the paper's notion of a relational database:
// B = (D; R₁, …, R_ℓ) where the domain D ⊆ ℕ is a finite set of natural
// numbers and each Rᵢ ⊆ D^{aᵢ} (§2.1 of Vardi, PODS 1995).
//
// Internally all relations are normalized over domain indices 0..n−1 (with
// the domain kept sorted), which is what the evaluators consume; the original
// natural-number values remain available for presentation. The package also
// provides the paper's "standard encoding" of a database as a string of
// binary numerals, which makes the input length — the yardstick of data and
// combined complexity — a concrete, measurable quantity.
package database

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// Database is a relational database over a finite domain. A Database value
// is immutable — evaluators, fingerprints and caches all rely on that — and
// mutation is snapshot-based: Apply returns a new version sharing unchanged
// relations with its parent (see mutate.go).
type Database struct {
	domain []int          // sorted distinct natural numbers
	idx    map[int]int    // value → index in domain
	names  []string       // relation names in declaration order
	arity  map[string]int // relation name → arity
	rels   map[string]*relation.Set

	// Snapshot lineage (mutate.go): version counts effective Apply steps
	// since Build; fp is the precomputed chained fingerprint of a mutated
	// snapshot (fpKnown marks it valid — built databases hash their encoding
	// on demand instead).
	version uint64
	fp      uint64
	fpKnown bool
}

// Builder assembles a Database. Tuples are given in raw domain values; the
// domain is the union of everything mentioned plus explicit additions.
type Builder struct {
	domain map[int]bool
	names  []string
	arity  map[string]int
	tuples map[string][]relation.Tuple
	err    error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		domain: make(map[int]bool),
		arity:  make(map[string]int),
		tuples: make(map[string][]relation.Tuple),
	}
}

// Domain adds elements to the domain (beyond those appearing in tuples).
func (b *Builder) Domain(values ...int) *Builder {
	for _, v := range values {
		if v < 0 {
			b.fail(fmt.Errorf("database: domain element %d is not a natural number", v))
			return b
		}
		b.domain[v] = true
	}
	return b
}

// Relation declares a relation with the given name and arity. Declaring the
// same name twice with different arities is an error.
func (b *Builder) Relation(name string, arity int) *Builder {
	if name == "" {
		b.fail(fmt.Errorf("database: empty relation name"))
		return b
	}
	if arity < 0 {
		b.fail(fmt.Errorf("database: relation %s has negative arity %d", name, arity))
		return b
	}
	if a, ok := b.arity[name]; ok {
		if a != arity {
			b.fail(fmt.Errorf("database: relation %s redeclared with arity %d (was %d)", name, arity, a))
		}
		return b
	}
	b.arity[name] = arity
	b.names = append(b.names, name)
	return b
}

// Add inserts a tuple into a declared relation.
func (b *Builder) Add(name string, values ...int) *Builder {
	a, ok := b.arity[name]
	if !ok {
		b.fail(fmt.Errorf("database: adding tuple to undeclared relation %s", name))
		return b
	}
	if len(values) != a {
		b.fail(fmt.Errorf("database: relation %s has arity %d, got tuple of length %d", name, a, len(values)))
		return b
	}
	for _, v := range values {
		if v < 0 {
			b.fail(fmt.Errorf("database: tuple component %d is not a natural number", v))
			return b
		}
		b.domain[v] = true
	}
	t := make(relation.Tuple, len(values))
	copy(t, values)
	b.tuples[name] = append(b.tuples[name], t)
	return b
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Build finalizes the database.
func (b *Builder) Build() (*Database, error) {
	if b.err != nil {
		return nil, b.err
	}
	dom := make([]int, 0, len(b.domain))
	for v := range b.domain {
		dom = append(dom, v)
	}
	sort.Ints(dom)
	db := &Database{
		domain: dom,
		idx:    make(map[int]int, len(dom)),
		names:  append([]string(nil), b.names...),
		arity:  make(map[string]int, len(b.arity)),
		rels:   make(map[string]*relation.Set, len(b.arity)),
	}
	for i, v := range dom {
		db.idx[v] = i
	}
	for name, a := range b.arity {
		db.arity[name] = a
		set := relation.NewSet(a)
		for _, t := range b.tuples[name] {
			nt := make(relation.Tuple, len(t))
			for i, v := range t {
				nt[i] = db.idx[v]
			}
			set.Add(nt)
		}
		db.rels[name] = set
	}
	return db, nil
}

// MustBuild is Build that panics on error, for statically valid literals.
func (b *Builder) MustBuild() *Database {
	db, err := b.Build()
	if err != nil {
		panic(err)
	}
	return db
}

// Size returns n, the number of domain elements.
func (db *Database) Size() int { return len(db.domain) }

// DomainValues returns the sorted domain as natural numbers.
func (db *Database) DomainValues() []int { return append([]int(nil), db.domain...) }

// Value maps a domain index to its natural-number value.
func (db *Database) Value(i int) int { return db.domain[i] }

// Index maps a natural-number value to its domain index; ok is false if the
// value is not in the domain.
func (db *Database) Index(v int) (int, bool) {
	i, ok := db.idx[v]
	return i, ok
}

// Names returns the relation names in declaration order.
func (db *Database) Names() []string { return append([]string(nil), db.names...) }

// HasRelation reports whether the database declares the named relation.
func (db *Database) HasRelation(name string) bool {
	_, ok := db.arity[name]
	return ok
}

// Arity returns the arity of the named relation, or an error if undeclared.
func (db *Database) Arity(name string) (int, error) {
	a, ok := db.arity[name]
	if !ok {
		return 0, fmt.Errorf("database: no relation %s", name)
	}
	return a, nil
}

// Rel returns the named relation over domain indices 0..n−1. The returned
// set must not be mutated.
func (db *Database) Rel(name string) (*relation.Set, error) {
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("database: no relation %s", name)
	}
	return r, nil
}

// RelValues returns the named relation with tuples in raw domain values.
func (db *Database) RelValues(name string) (*relation.Set, error) {
	r, err := db.Rel(name)
	if err != nil {
		return nil, err
	}
	out := relation.NewSet(r.Arity())
	r.ForEach(func(t relation.Tuple) {
		vt := make(relation.Tuple, len(t))
		for i, x := range t {
			vt[i] = db.domain[x]
		}
		out.Add(vt)
	})
	return out, nil
}

// Nontrivial reports whether the database has at least two domain elements
// and a nonempty relation of positive arity that differs from Dᵏ — the
// hypothesis under which the paper's expression-complexity lower bounds hold
// (footnote 4).
func (db *Database) Nontrivial() bool {
	if len(db.domain) < 2 {
		return false
	}
	for name, r := range db.rels {
		k := db.arity[name]
		if k < 1 || r.Len() == 0 {
			continue
		}
		full := 1
		for i := 0; i < k; i++ {
			full *= len(db.domain)
		}
		if r.Len() != full {
			return true
		}
	}
	return false
}

// String renders the database in the readable text format accepted by Parse.
func (db *Database) String() string {
	var sb strings.Builder
	sb.WriteString("domain = {")
	for i, v := range db.domain {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d", v)
	}
	sb.WriteString("}\n")
	for _, name := range db.names {
		rel, _ := db.RelValues(name)
		fmt.Fprintf(&sb, "%s/%d = {", name, db.arity[name])
		for i, t := range rel.Tuples() {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(t.String())
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}
