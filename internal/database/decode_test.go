package database

import (
	"testing"

	"repro/internal/relation"
)

func TestDecodeEncodedRoundTrip(t *testing.T) {
	db, err := NewBuilder().
		Relation("E", 2).Add("E", 3, 5).Add("E", 5, 7).
		Relation("P", 1).Add("P", 3).
		Domain(0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	enc := db.Encode()
	back, err := DecodeEncoded(enc, RelDecl{Name: "E", Arity: 2}, RelDecl{Name: "P", Arity: 1})
	if err != nil {
		t.Fatalf("DecodeEncoded(%q): %v", enc, err)
	}
	if back.String() != db.String() {
		t.Fatalf("round trip changed database:\n%s\nvs\n%s", db, back)
	}
	if back.Encode() != enc {
		t.Fatalf("re-encoding differs: %q vs %q", back.Encode(), enc)
	}
}

func TestDecodeEncodedGeneratedNames(t *testing.T) {
	back, err := DecodeEncoded("({11,101,111},{<11,101>,<101,111>})")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := back.RelValues("R1")
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(relation.SetOf(2, relation.Tuple{3, 5}, relation.Tuple{5, 7})) {
		t.Fatalf("R1 = %v", r1)
	}
	if back.Size() != 3 {
		t.Fatalf("domain size = %d", back.Size())
	}
}

func TestDecodeEncodedEmptyRelation(t *testing.T) {
	back, err := DecodeEncoded("({0,1},{})", RelDecl{Name: "T", Arity: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := back.Rel("T")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Arity() != 1 {
		t.Fatalf("T = %v arity %d", tr, tr.Arity())
	}
}

func TestDecodeEncodedErrors(t *testing.T) {
	bad := []string{
		"",
		"{11}",
		"({11}",
		"({11},{<11>)",
		"({2},{})",          // '2' is not binary
		"({11},{<x>})",      // bad numeral
		"({11},{<11> <1>})", // missing comma
		"({11},junk)",
	}
	for _, s := range bad {
		if _, err := DecodeEncoded(s); err == nil {
			t.Errorf("DecodeEncoded(%q) succeeded", s)
		}
	}
	// Declaration count mismatch.
	if _, err := DecodeEncoded("({1},{})", RelDecl{"A", 1}, RelDecl{"B", 1}); err == nil {
		t.Error("declaration count mismatch accepted")
	}
}
