package database

import (
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"
)

// Encode renders the database in the paper's "standard encoding" (§2.1):
// domain elements and tuple components as binary numerals, e.g. the database
// ({3,5,7}; {⟨3,5⟩, ⟨5,7⟩}) encodes as
//
//	({11,101,111},{<11,101>,<101,111>})
//
// Relations appear positionally in declaration order. The encoding's length
// is the "length of the data" against which data and combined complexity are
// measured.
func (db *Database) Encode() string {
	var sb strings.Builder
	sb.WriteByte('(')
	sb.WriteByte('{')
	for i, v := range db.domain {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.FormatInt(int64(v), 2))
	}
	sb.WriteByte('}')
	for _, name := range db.names {
		sb.WriteByte(',')
		sb.WriteByte('{')
		rel, _ := db.RelValues(name)
		for i, t := range rel.Tuples() {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteByte('<')
			for j, v := range t {
				if j > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(strconv.FormatInt(int64(v), 2))
			}
			sb.WriteByte('>')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(')')
	return sb.String()
}

// EncodedLen returns the length of the standard encoding.
func (db *Database) EncodedLen() int { return len(db.Encode()) }

// Fingerprint returns a stable 64-bit content hash of the database: relation
// names and arities (the signature, which the positional standard encoding
// omits) followed by the standard encoding itself. Database values are
// immutable, so the fingerprint identifies the content for the lifetime of
// the value; the bvqd result cache keys on it. Mutated snapshots carry a
// precomputed lineage fingerprint instead (see mutate.go) — equal
// fingerprints imply equal content either way.
func (db *Database) Fingerprint() uint64 {
	if db.fpKnown {
		return db.fp
	}
	h := fnv.New64a()
	for _, name := range db.names {
		a, _ := db.Arity(name)
		fmt.Fprintf(h, "%s/%d;", name, a)
	}
	io.WriteString(h, db.Encode())
	return h.Sum64()
}

// RelDecl names one positional relation of a standard encoding.
type RelDecl struct {
	Name  string
	Arity int
}

// DecodeEncoded parses the paper's standard encoding (see Encode). The
// encoding is positional and carries no relation names or arities, so the
// caller may supply declarations; with none, relations are named R1, R2, …
// and arities are inferred from the first tuple (an empty relation without
// a declaration decodes with arity 0).
func DecodeEncoded(s string, decls ...RelDecl) (*Database, error) {
	if len(s) < 2 || s[0] != '(' || s[len(s)-1] != ')' {
		return nil, fmt.Errorf("database: encoding must be parenthesized")
	}
	groups, err := splitEncodedGroups(s[1 : len(s)-1])
	if err != nil {
		return nil, err
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("database: encoding has no domain group")
	}
	if len(decls) > 0 && len(decls) != len(groups)-1 {
		return nil, fmt.Errorf("database: %d declarations for %d relations", len(decls), len(groups)-1)
	}
	b := NewBuilder()
	// Domain group: comma-separated binary numerals.
	if groups[0] != "" {
		for _, f := range strings.Split(groups[0], ",") {
			v, err := strconv.ParseInt(f, 2, 64)
			if err != nil {
				return nil, fmt.Errorf("database: bad domain numeral %q", f)
			}
			b.Domain(int(v))
		}
	}
	for gi, g := range groups[1:] {
		decl := RelDecl{Name: fmt.Sprintf("R%d", gi+1), Arity: -1}
		if len(decls) > 0 {
			decl = decls[gi]
		}
		tuples, err := splitEncodedTuples(g)
		if err != nil {
			return nil, err
		}
		arity := decl.Arity
		if arity < 0 {
			arity = 0
			if len(tuples) > 0 {
				arity = len(tuples[0])
			}
		}
		b.Relation(decl.Name, arity)
		for _, t := range tuples {
			vals := make([]int, len(t))
			for i, f := range t {
				v, err := strconv.ParseInt(f, 2, 64)
				if err != nil {
					return nil, fmt.Errorf("database: bad tuple numeral %q", f)
				}
				vals[i] = int(v)
			}
			b.Add(decl.Name, vals...)
		}
	}
	return b.Build()
}

// splitEncodedGroups splits "{...},{...},{...}" at top-level commas.
func splitEncodedGroups(s string) ([]string, error) {
	var out []string
	i := 0
	for i < len(s) {
		if s[i] != '{' {
			return nil, fmt.Errorf("database: expected '{' at offset %d of encoding body", i)
		}
		j := strings.IndexByte(s[i:], '}')
		if j < 0 {
			return nil, fmt.Errorf("database: unclosed group in encoding")
		}
		out = append(out, s[i+1:i+j])
		i += j + 1
		if i < len(s) {
			if s[i] != ',' {
				return nil, fmt.Errorf("database: expected ',' between groups at offset %d", i)
			}
			i++
		}
	}
	return out, nil
}

// splitEncodedTuples splits "<11,101>,<101,111>" into numeral lists.
func splitEncodedTuples(g string) ([][]string, error) {
	var out [][]string
	i := 0
	for i < len(g) {
		switch g[i] {
		case ',':
			i++
		case '<':
			j := strings.IndexByte(g[i:], '>')
			if j < 0 {
				return nil, fmt.Errorf("database: unclosed tuple in encoding")
			}
			body := g[i+1 : i+j]
			if body == "" {
				out = append(out, nil)
			} else {
				out = append(out, strings.Split(body, ","))
			}
			i += j + 1
		default:
			return nil, fmt.Errorf("database: unexpected character %q in relation group", g[i])
		}
	}
	return out, nil
}

// Parse reads the readable text format produced by Database.String:
//
//	domain = {3, 5, 7}
//	E/2 = {(3, 5), (5, 7)}
//	P/1 = {(3)}
//
// Blank lines and lines starting with '#' are ignored. The domain line is
// optional; the domain is always extended with every value mentioned in a
// tuple.
func Parse(text string) (*Database, error) {
	b := NewBuilder()
	for lineno, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("database: line %d: missing '='", lineno+1)
		}
		head := strings.TrimSpace(line[:eq])
		body := strings.TrimSpace(line[eq+1:])
		if !strings.HasPrefix(body, "{") || !strings.HasSuffix(body, "}") {
			return nil, fmt.Errorf("database: line %d: body must be {...}", lineno+1)
		}
		body = strings.TrimSpace(body[1 : len(body)-1])
		if head == "domain" {
			if body == "" {
				continue
			}
			for _, f := range strings.Split(body, ",") {
				v, err := strconv.Atoi(strings.TrimSpace(f))
				if err != nil {
					return nil, fmt.Errorf("database: line %d: bad domain element %q", lineno+1, f)
				}
				b.Domain(v)
			}
			continue
		}
		slash := strings.Index(head, "/")
		if slash < 0 {
			return nil, fmt.Errorf("database: line %d: relation head %q must be name/arity", lineno+1, head)
		}
		name := strings.TrimSpace(head[:slash])
		arity, err := strconv.Atoi(strings.TrimSpace(head[slash+1:]))
		if err != nil {
			return nil, fmt.Errorf("database: line %d: bad arity in %q", lineno+1, head)
		}
		b.Relation(name, arity)
		if body == "" {
			continue
		}
		tuples, err := splitTuples(body)
		if err != nil {
			return nil, fmt.Errorf("database: line %d: %v", lineno+1, err)
		}
		for _, ts := range tuples {
			var vals []int
			if ts != "" {
				for _, f := range strings.Split(ts, ",") {
					v, err := strconv.Atoi(strings.TrimSpace(f))
					if err != nil {
						return nil, fmt.Errorf("database: line %d: bad tuple component %q", lineno+1, f)
					}
					vals = append(vals, v)
				}
			}
			b.Add(name, vals...)
		}
	}
	return b.Build()
}

// splitTuples splits "(1, 2), (3, 4)" into ["1, 2", "3, 4"].
func splitTuples(body string) ([]string, error) {
	var out []string
	for i := 0; i < len(body); {
		switch body[i] {
		case ' ', ',', '\t':
			i++
		case '(':
			j := strings.IndexByte(body[i:], ')')
			if j < 0 {
				return nil, fmt.Errorf("unclosed tuple")
			}
			out = append(out, strings.TrimSpace(body[i+1:i+j]))
			i += j + 1
		default:
			return nil, fmt.Errorf("unexpected character %q in tuple list", body[i])
		}
	}
	return out, nil
}
