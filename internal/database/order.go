package database

import (
	"fmt"

	"repro/internal/relation"
)

// Order relation names added by WithOrder.
const (
	OrderLess  = "Less"
	OrderSucc  = "Succ"
	OrderFirst = "First"
	OrderLast  = "Last"
)

// WithOrder returns a copy of the database extended with a linear order on
// the domain (in increasing raw-value order): Less/2 (strict), Succ/2
// (successor), First/1 and Last/1.
//
// Ordered databases matter to the paper's context: over them, FP expresses
// exactly the PTIME queries and PFP exactly the PSPACE queries
// (Immerman 1986, Vardi 1982, Abiteboul–Vianu 1989) — order is what lets
// fixpoint queries count, as the parity example in the tests shows.
func (db *Database) WithOrder() (*Database, error) {
	for _, name := range []string{OrderLess, OrderSucc, OrderFirst, OrderLast} {
		if db.HasRelation(name) {
			return nil, fmt.Errorf("database: relation %s already exists", name)
		}
	}
	b := NewBuilder()
	for _, v := range db.domain {
		b.Domain(v)
	}
	for _, name := range db.names {
		a := db.arity[name]
		b.Relation(name, a)
		rel, err := db.RelValues(name)
		if err != nil {
			return nil, err
		}
		rel.ForEach(func(t relation.Tuple) { b.Add(name, t...) })
	}
	b.Relation(OrderLess, 2).Relation(OrderSucc, 2).Relation(OrderFirst, 1).Relation(OrderLast, 1)
	n := len(db.domain)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.Add(OrderLess, db.domain[i], db.domain[j])
		}
		if i+1 < n {
			b.Add(OrderSucc, db.domain[i], db.domain[i+1])
		}
	}
	if n > 0 {
		b.Add(OrderFirst, db.domain[0])
		b.Add(OrderLast, db.domain[n-1])
	}
	return b.Build()
}
