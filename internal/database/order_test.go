package database

import (
	"testing"

	"repro/internal/relation"
)

func TestWithOrderRelations(t *testing.T) {
	db, err := NewBuilder().
		Relation("E", 2).Add("E", 3, 7).Add("E", 7, 9).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	odb, err := db.WithOrder()
	if err != nil {
		t.Fatal(err)
	}
	// Original relations survive.
	e, err := odb.RelValues("E")
	if err != nil {
		t.Fatal(err)
	}
	if !e.Contains(relation.Tuple{3, 7}) {
		t.Fatalf("E lost: %v", e)
	}
	less, err := odb.RelValues(OrderLess)
	if err != nil {
		t.Fatal(err)
	}
	if less.Len() != 3 { // pairs over {3,7,9}
		t.Fatalf("Less = %v", less)
	}
	if !less.Contains(relation.Tuple{3, 9}) || less.Contains(relation.Tuple{9, 3}) {
		t.Fatalf("Less wrong: %v", less)
	}
	succ, err := odb.RelValues(OrderSucc)
	if err != nil {
		t.Fatal(err)
	}
	if !succ.Equal(relation.SetOf(2, relation.Tuple{3, 7}, relation.Tuple{7, 9})) {
		t.Fatalf("Succ = %v", succ)
	}
	first, _ := odb.RelValues(OrderFirst)
	last, _ := odb.RelValues(OrderLast)
	if !first.Contains(relation.Tuple{3}) || !last.Contains(relation.Tuple{9}) {
		t.Fatalf("First/Last wrong: %v %v", first, last)
	}
}

func TestWithOrderNameClash(t *testing.T) {
	db, err := NewBuilder().Relation("Less", 2).Add("Less", 0, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.WithOrder(); err == nil {
		t.Fatal("name clash accepted")
	}
}

func TestWithOrderSingleton(t *testing.T) {
	db, err := NewBuilder().Domain(5).Build()
	if err != nil {
		t.Fatal(err)
	}
	odb, err := db.WithOrder()
	if err != nil {
		t.Fatal(err)
	}
	first, _ := odb.RelValues(OrderFirst)
	last, _ := odb.RelValues(OrderLast)
	if first.Len() != 1 || last.Len() != 1 {
		t.Fatal("First/Last missing on singleton")
	}
	less, _ := odb.Rel(OrderLess)
	if less.Len() != 0 {
		t.Fatal("Less nonempty on singleton")
	}
}
