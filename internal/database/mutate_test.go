package database

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func twoRelDB(t *testing.T) *Database {
	t.Helper()
	db, err := NewBuilder().
		Relation("E", 2).Relation("P", 1).
		Add("E", 0, 1).Add("E", 1, 2).Add("P", 0).
		Domain(3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestApplySnapshot(t *testing.T) {
	db := twoRelDB(t)
	baseText := db.String()
	baseEnc := db.Encode()
	baseFP := db.Fingerprint()

	next, delta, err := db.Apply([]Update{
		{Relation: "E", Insert: []relation.Tuple{{2, 3}}, Delete: []relation.Tuple{{0, 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if db.String() != baseText || db.Encode() != baseEnc || db.Fingerprint() != baseFP {
		t.Fatalf("parent snapshot changed under Apply")
	}
	if db.Version() != 0 || next.Version() != 1 {
		t.Fatalf("versions = %d → %d, want 0 → 1", db.Version(), next.Version())
	}
	if next.Fingerprint() == baseFP {
		t.Fatalf("fingerprint did not change across an effective update")
	}
	e, err := next.RelValues("E")
	if err != nil {
		t.Fatal(err)
	}
	if e.Contains(relation.Tuple{0, 1}) || !e.Contains(relation.Tuple{2, 3}) || !e.Contains(relation.Tuple{1, 2}) {
		t.Fatalf("unexpected E after update: %v", e)
	}

	// The untouched relation is shared between snapshots, not copied.
	p0, _ := db.Rel("P")
	p1, _ := next.Rel("P")
	if p0 != p1 {
		t.Fatalf("unchanged relation was copied instead of shared")
	}

	// Effective delta in index space, sorted.
	rd, ok := delta.Rels["E"]
	if !ok || len(delta.Rels) != 1 {
		t.Fatalf("delta relations = %v, want {E}", delta.Relations())
	}
	i2, _ := db.Index(2)
	i3, _ := db.Index(3)
	if len(rd.Ins) != 1 || !rd.Ins[0].Equal(relation.Tuple{i2, i3}) {
		t.Fatalf("delta ins = %v", rd.Ins)
	}
	if len(rd.Del) != 1 {
		t.Fatalf("delta del = %v", rd.Del)
	}
	if delta.InsertOnly() {
		t.Fatalf("delta with a delete reported InsertOnly")
	}
	if ins, del := delta.Counts(); ins != 1 || del != 1 {
		t.Fatalf("Counts = %d,%d", ins, del)
	}
}

func TestApplyEffectiveNoop(t *testing.T) {
	db := twoRelDB(t)
	next, delta, err := db.Apply([]Update{
		{Relation: "E", Insert: []relation.Tuple{{0, 1}}, Delete: []relation.Tuple{{2, 0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Empty() {
		t.Fatalf("expected empty delta, got %v", delta.Relations())
	}
	if next != db {
		t.Fatalf("no-op update did not return the receiver")
	}
	if next.Version() != 0 {
		t.Fatalf("no-op update bumped the version to %d", next.Version())
	}
}

func TestApplyDeleteThenInsertWins(t *testing.T) {
	db := twoRelDB(t)
	// Absent tuple in both lists: delete applies first, insert wins.
	next, delta, err := db.Apply([]Update{
		{Relation: "E", Insert: []relation.Tuple{{3, 3}}, Delete: []relation.Tuple{{3, 3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, _ := next.RelValues("E")
	if !e.Contains(relation.Tuple{3, 3}) {
		t.Fatalf("insert did not win over delete of the same tuple")
	}
	if rd := delta.Rels["E"]; len(rd.Ins) != 1 || len(rd.Del) != 0 {
		t.Fatalf("delta = +%v -%v, want one insert", rd.Ins, rd.Del)
	}
	// Present tuple in both lists: net no-op.
	same, delta2, err := db.Apply([]Update{
		{Relation: "E", Insert: []relation.Tuple{{0, 1}}, Delete: []relation.Tuple{{0, 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !delta2.Empty() || same != db {
		t.Fatalf("present tuple in both lists should be a no-op")
	}
}

func TestApplyErrors(t *testing.T) {
	db := twoRelDB(t)
	cases := []struct {
		name string
		ups  []Update
		want string
	}{
		{"unknown relation", []Update{{Relation: "Q", Insert: []relation.Tuple{{0}}}}, "unknown relation"},
		{"arity", []Update{{Relation: "E", Insert: []relation.Tuple{{0}}}}, "arity"},
		{"domain", []Update{{Relation: "E", Insert: []relation.Tuple{{0, 9}}}}, "not in the domain"},
		{"domain delete", []Update{{Relation: "P", Delete: []relation.Tuple{{17}}}}, "not in the domain"},
	}
	for _, tc := range cases {
		_, _, err := db.Apply(tc.ups)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestApplyFingerprintLineage(t *testing.T) {
	db := twoRelDB(t)
	u := []Update{{Relation: "E", Insert: []relation.Tuple{{2, 3}, {3, 0}}}}
	a1, _, err := db.Apply(u)
	if err != nil {
		t.Fatal(err)
	}
	// Same update listed in a different order: same canonical delta, same
	// lineage fingerprint.
	a2, _, err := db.Apply([]Update{
		{Relation: "E", Insert: []relation.Tuple{{3, 0}}},
		{Relation: "E", Insert: []relation.Tuple{{2, 3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a1.Fingerprint() != a2.Fingerprint() {
		t.Fatalf("equivalent updates produced distinct fingerprints")
	}
	// Chained updates keep changing the fingerprint.
	b, _, err := a1.Apply([]Update{{Relation: "P", Insert: []relation.Tuple{{1}}}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Fingerprint() == a1.Fingerprint() || b.Version() != 2 {
		t.Fatalf("chained update: fp %x vs %x, version %d", b.Fingerprint(), a1.Fingerprint(), b.Version())
	}
}
