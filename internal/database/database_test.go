package database

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func paperDB(t *testing.T) *Database {
	t.Helper()
	db, err := NewBuilder().
		Relation("E", 2).
		Add("E", 3, 5).
		Add("E", 5, 7).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBuildNormalizes(t *testing.T) {
	db := paperDB(t)
	if db.Size() != 3 {
		t.Fatalf("Size = %d, want 3", db.Size())
	}
	want := []int{3, 5, 7}
	for i, v := range db.DomainValues() {
		if v != want[i] {
			t.Fatalf("domain = %v", db.DomainValues())
		}
	}
	e, err := db.Rel("E")
	if err != nil {
		t.Fatal(err)
	}
	// 3→0, 5→1, 7→2
	if !e.Equal(relation.SetOf(2, relation.Tuple{0, 1}, relation.Tuple{1, 2})) {
		t.Fatalf("normalized E = %v", e)
	}
	ev, err := db.RelValues("E")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Equal(relation.SetOf(2, relation.Tuple{3, 5}, relation.Tuple{5, 7})) {
		t.Fatalf("raw E = %v", ev)
	}
	if i, ok := db.Index(5); !ok || i != 1 {
		t.Fatalf("Index(5) = %d,%v", i, ok)
	}
	if _, ok := db.Index(4); ok {
		t.Fatal("Index(4) should not exist")
	}
	if db.Value(2) != 7 {
		t.Fatal("Value(2) != 7")
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		b    *Builder
	}{
		{"negative domain", NewBuilder().Domain(-1)},
		{"empty name", NewBuilder().Relation("", 1)},
		{"negative arity", NewBuilder().Relation("R", -1)},
		{"redeclare", NewBuilder().Relation("R", 1).Relation("R", 2)},
		{"undeclared add", NewBuilder().Add("R", 1)},
		{"arity mismatch", NewBuilder().Relation("R", 2).Add("R", 1)},
		{"negative value", NewBuilder().Relation("R", 1).Add("R", -3)},
	}
	for _, c := range cases {
		if _, err := c.b.Build(); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestRedeclareSameArityOK(t *testing.T) {
	db, err := NewBuilder().Relation("R", 1).Relation("R", 1).Add("R", 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Names()) != 1 {
		t.Fatalf("Names = %v", db.Names())
	}
}

func TestPaperEncoding(t *testing.T) {
	db := paperDB(t)
	// §2.1: ({3,5,7}; {⟨3,5⟩,⟨5,7⟩}) encodes with binary numerals.
	got := db.Encode()
	want := "({11,101,111},{<11,101>,<101,111>})"
	if got != want {
		t.Fatalf("Encode = %q, want %q", got, want)
	}
	if db.EncodedLen() != len(want) {
		t.Fatal("EncodedLen mismatch")
	}
}

func TestParseRoundTrip(t *testing.T) {
	db, err := NewBuilder().
		Domain(0, 9).
		Relation("E", 2).Add("E", 1, 2).Add("E", 2, 3).
		Relation("P", 1).Add("P", 1).
		Relation("Z", 0).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(db.String())
	if err != nil {
		t.Fatalf("Parse(%q): %v", db.String(), err)
	}
	if back.String() != db.String() {
		t.Fatalf("round trip:\n%s\nvs\n%s", db.String(), back.String())
	}
}

func TestParseFormats(t *testing.T) {
	text := `
# a comment
domain = {0, 1, 4}
E/2 = {(0, 1), (1, 4)}
T/1 = {}
`
	db, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != 3 {
		t.Fatalf("Size = %d", db.Size())
	}
	tr, _ := db.Rel("T")
	if tr.Len() != 0 {
		t.Fatal("T should be empty")
	}
	e, _ := db.RelValues("E")
	if !e.Contains(relation.Tuple{1, 4}) {
		t.Fatalf("E = %v", e)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"E/2",                   // no '='
		"E/2 = (0,1)",           // not braced
		"E = {(0,1)}",           // no arity
		"E/x = {(0,1)}",         // bad arity
		"E/2 = {(0,1}",          // unclosed tuple
		"E/2 = {(0,y)}",         // bad component
		"domain = {a}",          // bad domain element
		"E/2 = {(0,1) junk}",    // trailing garbage
		"E/2 = {(0, 1, 2)}",     // arity mismatch inside tuples
		"E/2 = {(0,1)}\nE/3={}", // redeclared
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded", text)
		}
	}
}

func TestNontrivial(t *testing.T) {
	if paperDB(t).Nontrivial() != true {
		t.Fatal("paper database should be nontrivial")
	}
	one, _ := NewBuilder().Domain(0).Relation("P", 1).Add("P", 0).Build()
	if one.Nontrivial() {
		t.Fatal("single-element database should be trivial")
	}
	full, _ := NewBuilder().Domain(0, 1).Relation("P", 1).Add("P", 0).Add("P", 1).Build()
	if full.Nontrivial() {
		t.Fatal("database whose only relation is D^k should be trivial")
	}
}

func TestStringFormat(t *testing.T) {
	db := paperDB(t)
	s := db.String()
	if !strings.Contains(s, "domain = {3, 5, 7}") || !strings.Contains(s, "E/2 = {(3, 5), (5, 7)}") {
		t.Fatalf("String = %q", s)
	}
}
