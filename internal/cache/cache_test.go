package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/database"
	"repro/internal/eval"
)

func TestLRUBasics(t *testing.T) {
	l := NewLRU[int](2)
	if _, ok := l.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	l.Put("a", 1)
	l.Put("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	// "a" is now most recent; inserting "c" must evict "b".
	l.Put("c", 3)
	if _, ok := l.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := l.Get("a"); !ok {
		t.Fatal("a evicted out of LRU order")
	}
	hits, misses, evictions := l.Counters()
	if hits != 2 || misses != 2 || evictions != 1 {
		t.Fatalf("counters = %d/%d/%d", hits, misses, evictions)
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestLRUPutRefreshes(t *testing.T) {
	l := NewLRU[int](2)
	l.Put("a", 1)
	l.Put("b", 2)
	l.Put("a", 10) // refresh, not insert
	l.Put("c", 3)  // must evict b, not a
	if v, ok := l.Get("a"); !ok || v != 10 {
		t.Fatalf("a = %d, %v", v, ok)
	}
	if _, ok := l.Get("b"); ok {
		t.Fatal("b survived")
	}
}

func TestLRUZeroCapacityDisables(t *testing.T) {
	l := NewLRU[int](0)
	l.Put("a", 1)
	if _, ok := l.Get("a"); ok {
		t.Fatal("disabled cache returned a value")
	}
	if l.Len() != 0 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestPlanCacheSkipsReparse(t *testing.T) {
	pc := NewPlanCache(8)
	const text = "(x, y). exists z. E(x, z) & E(z, y)"
	p1, cached, err := pc.Load(text)
	if err != nil || cached {
		t.Fatalf("first load: cached=%v err=%v", cached, err)
	}
	if p1.Width != 3 {
		t.Fatalf("width = %d", p1.Width)
	}
	p2, cached, err := pc.Load(text)
	if err != nil || !cached {
		t.Fatalf("second load: cached=%v err=%v", cached, err)
	}
	if fmt.Sprint(p2.Query.Body) != fmt.Sprint(p1.Query.Body) {
		t.Fatal("cached plan differs")
	}
	hits, misses, _ := pc.Counters()
	if hits != 1 || misses != 1 {
		t.Fatalf("counters = %d/%d", hits, misses)
	}
	// Parse errors are not cached.
	if _, _, err := pc.Load("(x). Nope("); err == nil {
		t.Fatal("bad query parsed")
	}
	if pc.Len() != 1 {
		t.Fatalf("len = %d", pc.Len())
	}
}

func TestResultKeyDistinguishesAnswersOnly(t *testing.T) {
	db1 := database.NewBuilder().Domain(0, 1).Relation("E", 2).Add("E", 0, 1).MustBuild()
	db2 := database.NewBuilder().Domain(0, 1).Relation("E", 2).Add("E", 1, 0).MustBuild()
	const q = "(x). exists y. E(x, y)"
	k1 := ResultKey(db1.Fingerprint(), "bottomup", nil, q)
	if k2 := ResultKey(db2.Fingerprint(), "bottomup", nil, q); k1 == k2 {
		t.Fatal("different databases share a key")
	}
	if k2 := ResultKey(db1.Fingerprint(), "naive", nil, q); k1 == k2 {
		t.Fatal("different engines share a key")
	}
	if k2 := ResultKey(db1.Fingerprint(), "bottomup", &eval.Options{MaxWidth: 2}, q); k1 == k2 {
		t.Fatal("different width bounds share a key")
	}
	// Parallelism does not affect answers; it must share the key.
	if k2 := ResultKey(db1.Fingerprint(), "bottomup", &eval.Options{Parallelism: 8}, q); k1 != k2 {
		t.Fatal("parallelism split the key")
	}
}

func TestFingerprintStableAndContentSensitive(t *testing.T) {
	build := func() *database.Database {
		return database.NewBuilder().Domain(3, 5, 7).Relation("E", 2).Add("E", 3, 5).Add("E", 5, 7).MustBuild()
	}
	if build().Fingerprint() != build().Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	other := database.NewBuilder().Domain(3, 5, 7).Relation("E", 2).Add("E", 3, 5).MustBuild()
	if build().Fingerprint() == other.Fingerprint() {
		t.Fatal("fingerprint insensitive to tuples")
	}
	renamed := database.NewBuilder().Domain(3, 5, 7).Relation("F", 2).Add("F", 3, 5).Add("F", 5, 7).MustBuild()
	if build().Fingerprint() == renamed.Fingerprint() {
		t.Fatal("fingerprint insensitive to relation names")
	}
}

func TestFlightCoalesces(t *testing.T) {
	f := NewFlight[int]()
	const workers = 16
	var calls atomic.Int64
	var leaders atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := f.Do(context.Background(), "k", func() (int, error) {
				calls.Add(1)
				<-release // hold the call open so everyone piles up
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
			if !shared {
				leaders.Add(1)
			}
		}()
	}
	// Wait until the leader is inside fn, then let everyone observe it.
	for f.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times", got)
	}
	if got := leaders.Load(); got != 1 {
		t.Fatalf("%d leaders", got)
	}
	if f.InFlight() != 0 {
		t.Fatalf("in-flight = %d after drain", f.InFlight())
	}
}

func TestFlightFollowerHonorsContext(t *testing.T) {
	f := NewFlight[int]()
	block := make(chan struct{})
	go f.Do(context.Background(), "k", func() (int, error) {
		<-block
		return 1, nil
	})
	for f.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, shared, err := f.Do(ctx, "k", func() (int, error) { return 2, nil })
	if !shared || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("follower: shared=%v err=%v", shared, err)
	}
	close(block)
}

func TestFlightDistinctKeysRunConcurrently(t *testing.T) {
	f := NewFlight[string]()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		key := fmt.Sprintf("k%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := f.Do(context.Background(), key, func() (string, error) {
				return key, nil
			})
			if err != nil || shared || v != key {
				t.Errorf("key %s: v=%q shared=%v err=%v", key, v, shared, err)
			}
		}()
	}
	wg.Wait()
}
