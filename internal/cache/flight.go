package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrPanicked is wrapped into the error that Do returns — to the leader and
// every follower alike — when the leader's fn panics. The panic value is
// captured in the message; test with errors.Is(err, ErrPanicked).
var ErrPanicked = errors.New("cache: single-flight leader panicked")

// Flight deduplicates concurrent calls by key: while one caller (the
// leader) runs fn, every other caller with the same key blocks and then
// shares the leader's result. This is the single-flight pattern of
// golang.org/x/sync/singleflight, re-implemented on the stdlib with one
// addition: waiters can abandon the wait when their context fires, while
// the leader runs on.
//
// The leader's own context governs the shared computation — a follower with
// a longer deadline than the leader inherits the leader's outcome, including
// a deadline error. Callers who cannot accept that should use distinct keys.
type Flight[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewFlight returns an empty single-flight group.
func NewFlight[V any]() *Flight[V] {
	return &Flight[V]{calls: make(map[string]*flightCall[V])}
}

// Do runs fn under key, coalescing concurrent duplicates. It returns the
// result, whether it was shared from another caller's execution (true for
// followers, false for the leader), and the error. A follower whose ctx
// fires before the leader finishes returns ctx.Err() without waiting
// further; the leader ignores ctx here — fn is expected to honor it.
//
// A panic in fn does not propagate: it is recovered and converted into an
// ErrPanicked-wrapped error delivered to the leader and all followers, and
// the in-flight entry is removed either way, so the key is immediately
// reusable and no follower is stranded.
func (f *Flight[V]) Do(ctx context.Context, key string, fn func() (V, error)) (val V, shared bool, err error) {
	f.mu.Lock()
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			var zero V
			return zero, true, ctx.Err()
		}
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	func() {
		// The defer runs even when fn panics: record the panic as the call's
		// error, then unconditionally unregister the key and release the
		// followers. Ordering matters — c.err must be set before close(done).
		defer func() {
			if p := recover(); p != nil {
				var zero V
				c.val, c.err = zero, fmt.Errorf("%w: %v", ErrPanicked, p)
			}
			f.mu.Lock()
			delete(f.calls, key)
			f.mu.Unlock()
			close(c.done)
		}()
		c.val, c.err = fn()
	}()
	return c.val, false, c.err
}

// InFlight returns the number of keys currently being computed.
func (f *Flight[V]) InFlight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}
