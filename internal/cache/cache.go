// Package cache provides the serving-layer caches of the bvqd daemon:
//
//   - LRU — a mutex-guarded least-recently-used map with hit/miss/eviction
//     counters, the substrate for both caches below;
//   - PlanCache — parsed, width-computed query ASTs keyed by query text, so
//     a repeated query never pays parse+width cost twice (the "amortize
//     preprocessing" discipline of the constant-delay line of work);
//   - ResultCache — evaluation answers keyed by (database fingerprint,
//     engine, options, query text); sound because database snapshots are
//     immutable values (tuple updates create new snapshots with new
//     fingerprints — database.Apply) and every engine is deterministic;
//   - Index — churn tracking: which live results depend on which relations,
//     so an update carries, maintains or invalidates entries instead of
//     flushing the cache (churn.go);
//   - Flight — single-flight deduplication, so concurrent identical
//     requests share one evaluation instead of racing n copies.
//
// Everything here is stdlib-only and safe for concurrent use.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// LRU is a fixed-capacity least-recently-used cache with string keys. The
// zero value is not usable; construct with NewLRU. A capacity of zero
// disables the cache: Get always misses and Put is a no-op, which lets
// callers turn caching off without branching.
type LRU[V any] struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	hits, misses, evictions atomic.Int64
}

type lruEntry[V any] struct {
	key string
	val V
}

// NewLRU returns an LRU holding at most max entries (0 disables caching).
func NewLRU[V any](max int) *LRU[V] {
	return &LRU[V]{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value for key, marking it most recently used.
func (l *LRU[V]) Get(key string) (V, bool) {
	var zero V
	if l.max <= 0 {
		l.misses.Add(1)
		return zero, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		l.misses.Add(1)
		return zero, false
	}
	l.ll.MoveToFront(el)
	l.hits.Add(1)
	return el.Value.(*lruEntry[V]).val, true
}

// Put inserts or refreshes key, evicting the least recently used entry when
// the cache is full.
func (l *LRU[V]) Put(key string, val V) {
	if l.max <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		l.ll.MoveToFront(el)
		return
	}
	l.items[key] = l.ll.PushFront(&lruEntry[V]{key: key, val: val})
	if l.ll.Len() > l.max {
		oldest := l.ll.Back()
		l.ll.Remove(oldest)
		delete(l.items, oldest.Value.(*lruEntry[V]).key)
		l.evictions.Add(1)
	}
}

// Remove deletes key from the cache, reporting whether it was present.
// Removals are not evictions: the entry is being invalidated or rekeyed by
// the caller, not displaced by capacity pressure.
func (l *LRU[V]) Remove(key string) bool {
	if l.max <= 0 {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		return false
	}
	l.ll.Remove(el)
	delete(l.items, key)
	return true
}

// Len returns the current number of entries.
func (l *LRU[V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}

// Counters returns cumulative hit, miss and eviction counts.
func (l *LRU[V]) Counters() (hits, misses, evictions int64) {
	return l.hits.Load(), l.misses.Load(), l.evictions.Load()
}
