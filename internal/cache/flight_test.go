package cache

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFlightLeaderPanicReleasesFollowers is the regression test for the
// stranded-follower bug: before the recover in Do, a panicking leader left
// the in-flight entry registered and its done channel open, so every
// coalesced follower blocked forever and the key was poisoned. Now the panic
// must surface as an ErrPanicked error to the leader and all followers, the
// in-flight table must drain, and a later Do on the same key must run fresh.
func TestFlightLeaderPanicReleasesFollowers(t *testing.T) {
	f := NewFlight[int]()
	const followers = 8
	release := make(chan struct{})
	var wg sync.WaitGroup
	leaderErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, shared, err := f.Do(context.Background(), "k", func() (int, error) {
			<-release
			panic("evaluator exploded")
		})
		if shared {
			t.Error("leader reported shared")
		}
		leaderErr <- err
	}()
	for f.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	// Followers pile onto the leader's in-flight entry. A straggler that
	// arrives after the leader drained becomes a fresh leader instead; its
	// fn panics too, so every goroutine must see ErrPanicked either way —
	// and before the recover existed, any coalesced follower hung forever,
	// failing this test by timeout.
	errs := make(chan error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := f.Do(context.Background(), "k", func() (int, error) {
				panic("evaluator exploded")
			})
			errs <- err
		}()
	}
	time.Sleep(20 * time.Millisecond) // let followers reach the wait
	close(release)
	wg.Wait()

	err := <-leaderErr
	if !errors.Is(err, ErrPanicked) {
		t.Fatalf("leader err = %v, want ErrPanicked", err)
	}
	if !strings.Contains(err.Error(), "evaluator exploded") {
		t.Fatalf("leader err %q does not carry the panic value", err)
	}
	for i := 0; i < followers; i++ {
		if err := <-errs; !errors.Is(err, ErrPanicked) {
			t.Fatalf("follower err = %v, want ErrPanicked", err)
		}
	}
	if n := f.InFlight(); n != 0 {
		t.Fatalf("in-flight = %d after panic drain", n)
	}

	// The key must not be poisoned: a fresh Do runs fn and succeeds.
	v, shared, err := f.Do(context.Background(), "k", func() (int, error) { return 7, nil })
	if err != nil || shared || v != 7 {
		t.Fatalf("post-panic Do = %d, shared=%v, err=%v", v, shared, err)
	}
}

// TestFlightPanicErrorNotShared checks that a panic under one key leaves
// other keys untouched and that repeated panics keep converting cleanly.
func TestFlightPanicRepeatable(t *testing.T) {
	f := NewFlight[int]()
	for i := 0; i < 3; i++ {
		_, _, err := f.Do(context.Background(), "boom", func() (int, error) { panic(i) })
		if !errors.Is(err, ErrPanicked) {
			t.Fatalf("round %d: err = %v, want ErrPanicked", i, err)
		}
	}
	v, _, err := f.Do(context.Background(), "ok", func() (int, error) { return 1, nil })
	if err != nil || v != 1 {
		t.Fatalf("other key after panics: v=%d err=%v", v, err)
	}
	if f.InFlight() != 0 {
		t.Fatalf("in-flight = %d", f.InFlight())
	}
}
