package cache

import (
	"fmt"
	"sync"
	"testing"
)

func tracked(key string) *Tracked {
	return &Tracked{Key: key, Engine: "bottomup", Query: "(x). P(x)"}
}

func TestIndexRegisterTakeRoundTrip(t *testing.T) {
	ix := NewIndex(0)
	ix.Advance("db", 1)
	if !ix.Register("db", 1, tracked("a")) {
		t.Fatal("current-generation registration rejected")
	}
	if got := ix.Len("db"); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
	out := ix.Take("db")
	if len(out) != 1 || out[0].Key != "a" {
		t.Fatalf("Take = %v", out)
	}
	if got := ix.Len("db"); got != 0 {
		t.Fatalf("Len after Take = %d, want 0", got)
	}
}

func TestIndexBoundDropsArbitraryEntry(t *testing.T) {
	ix := NewIndex(2)
	ix.Advance("db", 1)
	for i := 0; i < 5; i++ {
		ix.Register("db", 1, tracked(fmt.Sprintf("k%d", i)))
	}
	if got := ix.Len("db"); got != 2 {
		t.Fatalf("Len = %d, want bound 2", got)
	}
}

// TestIndexStaleRegistrationAcrossTwoUpdates is the 3-version interleaving
// regression: an evaluation that started against version v0 finishes after
// TWO consecutive updates (v0 → v1 → v2) and tries to register its result.
// The index, advanced to v2's fingerprint, must reject the v0 registration —
// otherwise the NEXT update would carry or maintain an entry whose baseline
// silently missed both deltas.
func TestIndexStaleRegistrationAcrossTwoUpdates(t *testing.T) {
	const (
		fp0 uint64 = 0xa0
		fp1 uint64 = 0xa1
		fp2 uint64 = 0xa2
	)
	ix := NewIndex(0)
	ix.Advance("db", fp0)

	// A result evaluated and registered at v0 is tracked.
	if !ix.Register("db", fp0, tracked("k@v0")) {
		t.Fatal("v0 registration at v0 rejected")
	}

	// A slow evaluation also starts at v0 (it will finish after v2).
	// Update 1: triage = Rotate (atomic take + generation bump), then
	// re-register survivors at v1.
	got := ix.Rotate("db", fp1)
	if len(got) != 1 {
		t.Fatalf("update 1 took %d entries, want 1", len(got))
	}
	got[0].Key = "k@v1"
	if !ix.Register("db", fp1, got[0]) {
		t.Fatal("carried v1 registration rejected")
	}

	// Update 2: same dance to v2.
	got = ix.Rotate("db", fp2)
	got[0].Key = "k@v2"
	if !ix.Register("db", fp2, got[0]) {
		t.Fatal("carried v2 registration rejected")
	}

	// The slow v0 evaluation finishes now — two generations behind.
	if ix.Register("db", fp0, tracked("slow@v0")) {
		t.Fatal("stale v0 registration accepted after two updates")
	}
	// A merely one-generation-stale registration (racing only update 2)
	// must be rejected too.
	if ix.Register("db", fp1, tracked("slow@v1")) {
		t.Fatal("stale v1 registration accepted after update 2")
	}

	// Only the carried entry survives, under its v2 key.
	out := ix.Take("db")
	if len(out) != 1 || out[0].Key != "k@v2" {
		t.Fatalf("final index contents = %+v, want single k@v2", out)
	}
}

// TestIndexStaleRegistrationRace hammers the guard under the race detector:
// many evaluator goroutines registering against every generation they might
// have started from, interleaved with two updates advancing v0 → v1 → v2.
// At the end, no entry minted against a superseded fingerprint may remain.
func TestIndexStaleRegistrationRace(t *testing.T) {
	const (
		fp0 uint64 = 0xb0
		fp1 uint64 = 0xb1
		fp2 uint64 = 0xb2
	)
	ix := NewIndex(0)
	ix.Advance("db", fp0)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				for _, fp := range []uint64{fp0, fp1, fp2} {
					ix.Register("db", fp, tracked(fmt.Sprintf("g%d-i%d@%x", g, i, fp)))
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		ix.Rotate("db", fp1)
		ix.Rotate("db", fp2)
	}()
	close(start)
	wg.Wait()

	// After both updates only fp2-minted entries may remain: every key
	// records the fingerprint it was registered under.
	for _, tr := range ix.Take("db") {
		if want := fmt.Sprintf("@%x", fp2); len(tr.Key) < len(want) || tr.Key[len(tr.Key)-len(want):] != want {
			t.Fatalf("stale entry survived the updates: %q", tr.Key)
		}
	}
}
