package cache

import (
	"sync"

	"repro/internal/eval"
	"repro/internal/plan"
)

// Churn-aware result tracking. Result-cache keys embed a database
// fingerprint, so a tuple-level update (database.Apply) silently orphans
// every key minted against the old snapshot. The Index below records, per
// served database, which live cache entries depend on which relations, so
// the update path can triage instead of flushing:
//
//   - a result whose dependency footprint is disjoint from the delta is
//     *carried*: rekeyed to the new fingerprint unchanged;
//   - a result with maintenance state whose plan admits the delta
//     (eval.CanMaintain) is *maintained*: re-derived by delta-restart and
//     stored under the new key;
//   - everything else is *invalidated*: removed, to be recomputed on demand.
//
// The plan cache needs none of this — it is keyed by query text alone and
// survives every update untouched.

// Tracked is one live result-cache entry's churn metadata. Key is the entry's
// current cache key; Engine/Opts/Query are the key's non-fingerprint
// components, kept so the entry can be rekeyed against a new snapshot.
type Tracked struct {
	Key    string
	Engine string
	Query  string
	// Opts holds the answer-affecting options that went into Key. It must
	// not alias a request's live Options (tracers do not belong in an index).
	Opts *eval.Options
	// Footprint lists the database relations the result depends on, sorted.
	// nil means the dependency set is unknown (the query was evaluated by an
	// engine without a compiled plan): every delta is assumed to overlap.
	Footprint []string
	// Plan and State, when both non-nil, enable delta-restart maintenance:
	// Plan is the compiled plan and State the eval.MaintState captured by the
	// run that produced the cached answer.
	Plan  *plan.Plan
	State *eval.MaintState
}

// Overlaps reports whether the entry's footprint intersects the (sorted)
// changed-relation list. An unknown footprint overlaps everything.
func (t *Tracked) Overlaps(changed []string) bool {
	if t.Footprint == nil {
		return true
	}
	i, j := 0, 0
	for i < len(t.Footprint) && j < len(changed) {
		switch {
		case t.Footprint[i] == changed[j]:
			return true
		case t.Footprint[i] < changed[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Index tracks live result-cache entries per database name. All methods are
// safe for concurrent use; the update path additionally serializes Take +
// re-Register per database under the server's snapshot lock, so one update's
// triage never interleaves with another's.
//
// The index is generation-aware: Advance pins the fingerprint of the
// snapshot currently being served, and Register drops any entry minted
// against a different fingerprint. This is the stale-result guard for an
// evaluation racing updates — including TWO consecutive updates, where the
// eval's baseline is two generations behind by the time it tries to
// register. Without the guard such an entry would sit in the index and the
// NEXT update would carry or maintain it from a baseline that silently
// missed a delta. The server's update path duplicates this check under its
// snapshot lock; the index enforces it regardless of caller discipline.
type Index struct {
	mu sync.Mutex
	// max bounds the tracked entries per database; 0 means unbounded.
	max int
	m   map[string]map[string]*Tracked
	// gen is the fingerprint of each database's current snapshot, set by
	// Advance. Registrations against any other fingerprint are rejected.
	gen map[string]uint64
}

// NewIndex returns an index tracking at most max entries per database
// (0 = unbounded). The bound matters because tracked entries can outlive
// their cache line (LRU eviction does not notify the index); stale entries
// are pruned at each update, but a database that is never updated should not
// accumulate tracking beyond its cache's capacity.
func NewIndex(max int) *Index {
	return &Index{
		max: max,
		m:   make(map[string]map[string]*Tracked),
		gen: make(map[string]uint64),
	}
}

// Advance declares fp the current snapshot fingerprint for db. From here on,
// Register calls carrying any other fingerprint are stale and are dropped.
// The update path calls it after Take and before re-registering survivors,
// all inside one critical section of the caller's snapshot lock, so no
// registration can slip in between against the outgoing generation.
func (ix *Index) Advance(db string, fp uint64) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.gen[db] = fp
}

// Register records (or replaces) the entry under its Key, provided fp still
// is db's current generation; it reports whether the entry was accepted. A
// mismatch means the snapshot moved on while the result was computed — the
// entry is stale and is dropped. When the per-database bound is hit, an
// arbitrary existing entry is dropped — losing tracking only costs a
// maintenance opportunity, never correctness.
func (ix *Index) Register(db string, fp uint64, t *Tracked) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if cur, known := ix.gen[db]; known && cur != fp {
		return false
	}
	entries := ix.m[db]
	if entries == nil {
		entries = make(map[string]*Tracked)
		ix.m[db] = entries
	}
	if _, replacing := entries[t.Key]; !replacing && ix.max > 0 && len(entries) >= ix.max {
		for k := range entries {
			delete(entries, k)
			break
		}
	}
	entries[t.Key] = t
	return true
}

// Take removes and returns every tracked entry for db. The update path calls
// it at the start of a triage and re-registers the survivors under their new
// keys.
func (ix *Index) Take(db string) []*Tracked {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.takeLocked(db)
}

// Rotate atomically takes every tracked entry for db AND advances its
// generation to fp, in one critical section. The atomicity matters: with a
// separate Take-then-Advance, a registration against the outgoing
// fingerprint could slip into the gap, survive the purge, and be triaged by
// the next update from a baseline that missed this one's delta. The update
// path calls Rotate at the start of a triage and re-registers the survivors
// under their new keys (which Register accepts, fp now being current).
func (ix *Index) Rotate(db string, fp uint64) []*Tracked {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.gen[db] = fp
	return ix.takeLocked(db)
}

func (ix *Index) takeLocked(db string) []*Tracked {
	entries := ix.m[db]
	if len(entries) == 0 {
		return nil
	}
	out := make([]*Tracked, 0, len(entries))
	for _, t := range entries {
		out = append(out, t)
	}
	delete(ix.m, db)
	return out
}

// Len returns the number of tracked entries for db.
func (ix *Index) Len(db string) int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.m[db])
}

// Remove deletes one tracked entry by key.
func (ix *Index) Remove(db, key string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if entries := ix.m[db]; entries != nil {
		delete(entries, key)
	}
}

// Remove deletes the result stored under key, reporting whether it existed.
func (c *ResultCache) Remove(key string) bool { return c.lru.Remove(key) }
