package cache

import (
	"fmt"

	"repro/internal/eval"
	"repro/internal/logic"
	"repro/internal/parser"
	"repro/internal/plan"
	"repro/internal/relation"
)

// Plan is a parsed query with its width precomputed — everything the server
// needs before dispatching to an engine. Plans are immutable and shared
// between requests.
type Plan struct {
	Query logic.Query
	Width int
	// Prepared is the compiled DAG plan for the query, built once per cache
	// entry and reused by every request running the compiled engine (the
	// plan is immutable; all evaluation state is per-run). It is nil when the
	// query lies outside the compilable fragment — the compiled engine then
	// recompiles per request and surfaces the real error.
	Prepared *plan.Plan
}

// PlanCache memoizes parse + width computation, keyed by the exact query
// text. A hit skips the parser entirely.
type PlanCache struct {
	lru *LRU[Plan]
}

// NewPlanCache returns a plan cache holding at most max plans.
func NewPlanCache(max int) *PlanCache { return &PlanCache{lru: NewLRU[Plan](max)} }

// Load returns the plan for text, parsing and caching on a miss. The second
// result reports whether the plan came from the cache. Parse errors are not
// cached: a failing query re-parses on every attempt, which keeps the cache
// free of negative entries at the cost of re-tokenizing garbage.
func (c *PlanCache) Load(text string) (Plan, bool, error) {
	if p, ok := c.lru.Get(text); ok {
		return p, true, nil
	}
	q, err := parser.ParseQuery(text)
	if err != nil {
		return Plan{}, false, err
	}
	p := Plan{Query: q, Width: q.Width()}
	if compiled, err := plan.Compile(q); err == nil {
		p.Prepared = compiled
	}
	c.lru.Put(text, p)
	return p, false, nil
}

// Len returns the number of cached plans.
func (c *PlanCache) Len() int { return c.lru.Len() }

// Counters returns cumulative hit, miss and eviction counts.
func (c *PlanCache) Counters() (hits, misses, evictions int64) { return c.lru.Counters() }

// Result is a finished evaluation: the (immutable, shared) answer relation
// and the work statistics of the run that produced it.
type Result struct {
	Answer *relation.Set
	Stats  *eval.Stats // nil for engines that do not report statistics
}

// ResultCache memoizes evaluation results keyed by ResultKey. Soundness
// rests on two invariants: database snapshots are immutable values — a tuple
// update produces a new snapshot with a new fingerprint (database.Apply), so
// the fingerprint pins the content — and every engine is deterministic (so
// the first answer is the only answer). Cached Answer sets must be treated as
// read-only by all consumers.
type ResultCache struct {
	lru *LRU[Result]
}

// NewResultCache returns a result cache holding at most max results.
func NewResultCache(max int) *ResultCache { return &ResultCache{lru: NewLRU[Result](max)} }

// Get returns the cached result for key.
func (c *ResultCache) Get(key string) (Result, bool) { return c.lru.Get(key) }

// Put stores a result under key.
func (c *ResultCache) Put(key string, r Result) { c.lru.Put(key, r) }

// Len returns the number of cached results.
func (c *ResultCache) Len() int { return c.lru.Len() }

// Counters returns cumulative hit, miss and eviction counts.
func (c *ResultCache) Counters() (hits, misses, evictions int64) { return c.lru.Counters() }

// ResultKey builds the canonical result-cache key from everything that can
// change an answer: the database content (fingerprint), the engine, the
// answer-affecting options, and the query text. Options.Parallelism is
// deliberately excluded — the parallel PFP sweep's merge is deterministic,
// so requests differing only in worker count share one cache line. The
// relation backend IS included even though backends agree on answers: the
// cached Stats describe one run's representation choices, and serving a
// dense run's statistics to a backend=sparse request would misreport.
func ResultKey(fingerprint uint64, engine string, opts *eval.Options, queryText string) string {
	var maxWidth, budget, sparseBudget int
	var cycle eval.CycleMode
	var backend eval.Backend
	if opts != nil {
		maxWidth, budget, cycle = opts.MaxWidth, opts.PFPBudget, opts.PFPCycle
		backend, sparseBudget = opts.Backend, opts.SparseBudget
	}
	return fmt.Sprintf("%016x|%s|%d|%d|%d|%s|%d|%s",
		fingerprint, engine, maxWidth, budget, cycle, backend, sparseBudget, queryText)
}
