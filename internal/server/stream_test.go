package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/database"
)

// postStream posts a streamed /query and splits the NDJSON response into
// header, tuple rows and trailer. It fails the test on malformed framing.
func postStream(t testing.TB, ts *httptest.Server, req QueryRequest) (StreamHeader, [][]int, StreamTrailer) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q, want application/x-ndjson", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("no header line")
	}
	var hdr StreamHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("decoding header %q: %v", sc.Text(), err)
	}
	var rows [][]int
	var trailer StreamTrailer
	sawTrailer := false
	for sc.Scan() {
		line := sc.Bytes()
		if sawTrailer {
			t.Fatalf("line after trailer: %q", line)
		}
		if bytes.Contains(line, []byte(`"trailer":true`)) {
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatalf("decoding trailer %q: %v", line, err)
			}
			sawTrailer = true
			continue
		}
		var row []int
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatalf("decoding row %q: %v", line, err)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawTrailer {
		t.Fatal("stream ended without a trailer")
	}
	return hdr, rows, trailer
}

// TestStreamMatchesJSON is the wire-level differential: the streamed rows of
// a query are exactly the JSON response's answer, for every engine that the
// served query admits, with matching full counts in the trailer.
func TestStreamMatchesJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, engine := range []string{"bottomup", "naive", "algebra", "monotone", "compiled"} {
		code, want, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop, Engine: engine, NoCache: true})
		if code != http.StatusOK {
			t.Fatalf("%s: JSON status %d", engine, code)
		}
		hdr, rows, trailer := postStream(t, ts, QueryRequest{
			Database: "graph", Query: twoHop, Engine: engine, Stream: true, NoCache: true})
		if hdr.Arity != 2 || hdr.Width != 3 {
			t.Fatalf("%s: header %+v", engine, hdr)
		}
		if len(rows) != len(want.Answer) {
			t.Fatalf("%s: %d rows streamed, JSON answer has %d", engine, len(rows), len(want.Answer))
		}
		for i := range rows {
			if len(rows[i]) != len(want.Answer[i]) {
				t.Fatalf("%s: row %d arity mismatch", engine, i)
			}
			for j := range rows[i] {
				if rows[i][j] != want.Answer[i][j] {
					t.Fatalf("%s: row %d = %v, want %v", engine, i, rows[i], want.Answer[i])
				}
			}
		}
		if trailer.Count == nil || *trailer.Count != want.Count {
			t.Fatalf("%s: trailer count %v, want %d", engine, trailer.Count, want.Count)
		}
		if trailer.Streamed != int64(len(rows)) {
			t.Fatalf("%s: trailer streamed %d, want %d", engine, trailer.Streamed, len(rows))
		}
	}
}

// TestStreamLimitOffset pins the windowing semantics: the streamed rows are
// the window, skipped/streamed are metered, and on counting routes the
// trailer still reports the full cardinality (the satellite-a guarantee).
func TestStreamLimitOffset(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, full, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop, Engine: "compiled", NoCache: true})
	hdr, rows, trailer := postStream(t, ts, QueryRequest{
		Database: "graph", Query: twoHop, Engine: "compiled", Backend: "dense",
		Stream: true, NoCache: true, Limit: 1, Offset: 1})
	if len(rows) != 1 {
		t.Fatalf("windowed stream returned %d rows, want 1", len(rows))
	}
	if rows[0][0] != full.Answer[1][0] || rows[0][1] != full.Answer[1][1] {
		t.Fatalf("offset 1 row = %v, want %v", rows[0], full.Answer[1])
	}
	if trailer.Skipped != 1 || trailer.Streamed != 1 {
		t.Fatalf("trailer skipped/streamed = %d/%d, want 1/1", trailer.Skipped, trailer.Streamed)
	}
	// The dense route counts in O(1), so both header and trailer know the
	// full cardinality even though only one tuple was decoded.
	if hdr.Count == nil || *hdr.Count != full.Count {
		t.Fatalf("header count %v, want %d", hdr.Count, full.Count)
	}
	if trailer.Count == nil || *trailer.Count != full.Count {
		t.Fatalf("trailer count %v, want %d", trailer.Count, full.Count)
	}
	if trailer.Stats == nil || trailer.Stats.TuplesStreamed != 1 || trailer.Stats.TuplesSkipped != 1 {
		t.Fatalf("stats streamed/skipped not metered: %+v", trailer.Stats)
	}
}

// TestJSONCountUnderLimit is the satellite-a regression: a windowed JSON
// request returns the window in answer but the FULL cardinality in count.
func TestJSONCountUnderLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, full, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop})
	if full.Count != 2 {
		t.Fatalf("two-hop count = %d, want 2", full.Count)
	}
	code, win, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop, Limit: 1, Offset: 1})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if win.Count != full.Count {
		t.Fatalf("windowed count = %d, want full %d", win.Count, full.Count)
	}
	if len(win.Answer) != 1 {
		t.Fatalf("windowed answer has %d rows, want 1", len(win.Answer))
	}
	if win.Answer[0][0] != full.Answer[1][0] || win.Answer[0][1] != full.Answer[1][1] {
		t.Fatalf("window = %v, want %v", win.Answer[0], full.Answer[1])
	}
	// Offset past the end: empty window, same full count.
	_, past, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop, Offset: 99})
	if past.Count != full.Count || len(past.Answer) != 0 {
		t.Fatalf("past-the-end window: count=%d answer=%v", past.Count, past.Answer)
	}
	// Negative window fields are client bugs.
	for _, bad := range []QueryRequest{
		{Database: "graph", Query: twoHop, Limit: -1},
		{Database: "graph", Query: twoHop, Offset: -1},
	} {
		if code, _, _ := postQuery(t, ts, bad); code != http.StatusBadRequest {
			t.Fatalf("negative window field accepted with status %d", code)
		}
	}
}

// TestStreamCachedAndCaches pins the cache interplay: an exhaustive stream
// stores its result under the window-free key, a later windowed stream is
// served from it, and a later JSON request hits the same entry.
func TestStreamCachedAndCaches(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	hdr, rows, _ := postStream(t, ts, QueryRequest{Database: "graph", Query: twoHop, Engine: "compiled", Stream: true})
	if hdr.ResultCached {
		t.Fatal("first stream claims a cache hit")
	}
	if s.results.Len() != 1 {
		t.Fatalf("exhaustive stream did not store its result (cache size %d)", s.results.Len())
	}
	hdr2, rows2, _ := postStream(t, ts, QueryRequest{
		Database: "graph", Query: twoHop, Engine: "compiled", Stream: true, Limit: 1})
	if !hdr2.ResultCached {
		t.Fatal("windowed stream missed the cached full result")
	}
	if len(rows2) != 1 || rows2[0][0] != rows[0][0] || rows2[0][1] != rows[0][1] {
		t.Fatalf("cached window = %v, want %v", rows2, rows[0])
	}
	code, resp, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop, Engine: "compiled"})
	if code != http.StatusOK || !resp.ResultCached {
		t.Fatalf("JSON request after stream: code=%d cached=%v", code, resp.ResultCached)
	}
	// A limit-stopped stream must NOT have stored a truncated answer: the
	// cache still holds exactly one (full) entry.
	if s.results.Len() != 1 {
		t.Fatalf("cache size %d after windowed stream, want 1", s.results.Len())
	}
}

// TestStreamDisconnectReleasesSlot is the satellite-b regression: a client
// vanishing mid-stream is counted as a disconnect (not an error) and its
// admission slot is released promptly for the next request.
func TestStreamDisconnectReleasesSlot(t *testing.T) {
	// Single evaluation slot: a stuck stream would starve everything.
	db := streamBench(t, 100)
	s, ts := newTestServer(t, Config{
		Databases:          map[string]*database.Database{"big": db},
		MaxConcurrentEvals: 1,
	})
	// Pace the drain: on a fast loopback the whole 10k-row answer can land in
	// socket buffers before the client's close is even noticed, exhausting the
	// stream cleanly and counting nothing. A short breath every few hundred
	// rows gives the connection teardown time to surface as a write error or
	// context cancellation — the paths under test.
	s.testHookOnStreamRow = func(row int) {
		if row%256 == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
	body, _ := json.Marshal(QueryRequest{
		Database: "big", Query: twoHop, Engine: "compiled", Stream: true, NoCache: true})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	// Read the header line only, then slam the connection shut mid-answer.
	buf := make([]byte, 256)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// The slot must come back: a second request on the single-slot server
	// succeeds without being shed or queued forever.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _, _ := postQuery(t, ts, QueryRequest{Database: "big", Query: twoHop, Engine: "compiled", NoCache: true})
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never released: status %d", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The cut is counted as a disconnect, and not as an error.
	deadline = time.Now().Add(5 * time.Second)
	for s.streamDisconnects.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stream disconnect never counted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := getStats(t, ts)
	if st.StreamDisconnects == 0 || st.Streams == 0 {
		t.Fatalf("stats streams=%d disconnects=%d", st.Streams, st.StreamDisconnects)
	}
	if st.Errors != 0 {
		t.Fatalf("disconnect was counted as an error (errors=%d)", st.Errors)
	}
}

// streamBench is a complete graph: n² two-hop answers, enough to keep a
// stream busy past one read buffer.
func streamBench(t testing.TB, n int) *database.Database {
	t.Helper()
	b := database.NewBuilder()
	b.Relation("E", 2)
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Add("E", i, j)
		}
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestStreamBoolean pins arity-0 streams: no rows, truth in the trailer.
func TestStreamBoolean(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hdr, rows, trailer := postStream(t, ts, QueryRequest{
		Database: "graph", Query: "(). exists x. P(x)", Stream: true})
	if hdr.Arity != 0 {
		t.Fatalf("arity %d", hdr.Arity)
	}
	if len(rows) != 1 {
		t.Fatalf("boolean true stream yielded %d rows, want 1 empty row", len(rows))
	}
	if trailer.Truth == nil || !*trailer.Truth {
		t.Fatalf("trailer truth %v, want true", trailer.Truth)
	}
	if trailer.Count == nil || *trailer.Count != 1 {
		t.Fatalf("trailer count %v, want 1", trailer.Count)
	}
}

// TestStreamTraceRejected pins that stream+trace is a 400, not a silently
// untraced stream.
func TestStreamTraceRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop, Stream: true, Trace: true})
	if code != http.StatusBadRequest {
		t.Fatalf("stream+trace status %d, want 400", code)
	}
}

// TestStreamPanicMidDrainEmitsTrailer is the truncation-vs-completion
// regression: a backend failure AFTER the first byte (here a panic injected
// in the drain loop) is past the point where a JSON error response is
// possible, so the stream MUST still end with an error trailer — a front
// tier distinguishes truncation from completion by exactly that line. The
// panic is contained (later requests succeed) and counted as a recovered
// panic, not as a timeout or a client disconnect.
func TestStreamPanicMidDrainEmitsTrailer(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.testHookOnStreamRow = func(row int) {
		if row == 1 {
			panic("injected backend failure")
		}
	}

	body, err := json.Marshal(QueryRequest{Database: "graph", Query: twoHop, Stream: true, NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d, want 200 (committed before the failure)", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 2 {
		t.Fatalf("stream has %d lines, want at least header + trailer", len(lines))
	}
	last := lines[len(lines)-1]
	var trailer StreamTrailer
	if err := json.Unmarshal([]byte(last), &trailer); err != nil || !trailer.Trailer {
		t.Fatalf("last line %q is not a trailer", last)
	}
	if trailer.Error == "" || !strings.Contains(trailer.Error, "panic") {
		t.Fatalf("trailer error = %q, want the contained panic", trailer.Error)
	}
	if trailer.Streamed != 1 {
		t.Fatalf("trailer streamed = %d, want 1 (one row made it out)", trailer.Streamed)
	}

	st := s.Stats()
	if st.Panics != 1 {
		t.Fatalf("panics = %d, want 1", st.Panics)
	}
	if st.Timeouts != 0 {
		t.Fatalf("timeouts = %d, want 0 (a panic is not a deadline)", st.Timeouts)
	}
	if st.StreamDisconnects != 0 {
		t.Fatalf("stream_disconnects = %d, want 0 (the client never went away)", st.StreamDisconnects)
	}

	// Containment: the daemon serves the next request normally.
	s.testHookOnStreamRow = nil
	hdr, rows, tr := postStream(t, ts, QueryRequest{Database: "graph", Query: twoHop, Stream: true, NoCache: true})
	if hdr.Arity != 2 || len(rows) == 0 || tr.Error != "" {
		t.Fatalf("post-panic stream broken: header %+v, %d rows, trailer %+v", hdr, len(rows), tr)
	}
}

// TestStreamDeadlineMidDrainEmitsTrailer pins the other mid-stream death:
// the server's own deadline firing after the first byte ends with an error
// trailer (and counts as a timeout), never a silent cut. The ~5k-tuple
// answer guarantees the enumerator's every-1024-tuples context poll runs
// after the injected stall has outlived the 50ms deadline.
func TestStreamDeadlineMidDrainEmitsTrailer(t *testing.T) {
	s, ts := newTestServer(t, Config{Databases: map[string]*database.Database{
		"ord": orderedDB(t, 100),
	}})
	s.testHookOnStreamRow = func(row int) {
		if row == 0 {
			time.Sleep(200 * time.Millisecond)
		}
	}

	body, err := json.Marshal(QueryRequest{Database: "ord", Query: "(x, y). Less(x, y)",
		Stream: true, NoCache: true, TimeoutMS: 50})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d, want 200", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	last := lines[len(lines)-1]
	var trailer StreamTrailer
	if err := json.Unmarshal([]byte(last), &trailer); err != nil || !trailer.Trailer {
		t.Fatalf("last line %q is not a trailer", last)
	}
	if trailer.Error == "" {
		t.Fatalf("trailer has no error after a mid-drain deadline: %q", last)
	}
	if st := s.Stats(); st.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", st.Timeouts)
	}
}
