package server

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/database"
	"repro/internal/metrics"
)

// hookedServer is newTestServer with the test hook installed before the
// listener starts, so the hook write is race-free with handler reads.
func hookedServer(t testing.TB, cfg Config, hook func()) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Databases == nil {
		cfg.Databases = map[string]*database.Database{"graph": graphDB(t)}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.testHookBeforeEval = hook
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postFull posts a query and returns the full response for header checks.
func postFull(t testing.TB, ts *httptest.Server, req QueryRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestWireFieldValidation locks the 400 responses for out-of-range numeric
// wire fields: the message must name the offending field so clients can fix
// the right knob.
func TestWireFieldValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name  string
		req   QueryRequest
		field string
	}{
		{"negative parallelism", QueryRequest{Database: "graph", Query: twoHop, Parallelism: -1}, "parallelism"},
		{"negative max_width", QueryRequest{Database: "graph", Query: twoHop, MaxWidth: -3}, "max_width"},
		{"negative timeout_ms", QueryRequest{Database: "graph", Query: twoHop, TimeoutMS: -50}, "timeout_ms"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, errResp := postQuery(t, ts, c.req)
			if code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", code)
			}
			if !strings.Contains(errResp.Error, c.field) {
				t.Fatalf("error %q does not name field %q", errResp.Error, c.field)
			}
			if errResp.RequestID == "" {
				t.Fatal("error body missing request_id")
			}
		})
	}
	// The zero values stay valid (0 means "default"/"unbounded", see the
	// QueryRequest docs) — a regression here would break every client that
	// omits the fields.
	code, _, errResp := postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop})
	if code != http.StatusOK {
		t.Fatalf("zero-valued fields rejected: %d (%s)", code, errResp.Error)
	}
}

// TestTimeoutCountsAsErrorAndTimeout pins the /stats counter semantics: a
// 504 increments both timeouts and errors — errors counts every non-200 and
// timeouts is a subset, not a disjoint bucket. Deliberate; see OPERATIONS.md.
func TestTimeoutCountsAsErrorAndTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Databases: map[string]*database.Database{
		"ord": orderedDB(t, 16),
	}})
	code, _, _ := postQuery(t, ts, QueryRequest{Database: "ord", Query: counterText, TimeoutMS: 50})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", code)
	}
	st := getStats(t, ts)
	if st.Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", st.Timeouts)
	}
	if st.Errors != 1 {
		t.Fatalf("errors = %d, want 1 (504 must count as an error too)", st.Errors)
	}
}

// TestMetricsEndpoint drives a few requests through the server and checks
// that GET /metrics serves parseable Prometheus text format covering the
// instrument families OPERATIONS.md promises, with values that agree with
// the JSON /stats counters.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop})
	postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop}) // result-cache hit
	postQuery(t, ts, QueryRequest{Database: "nope", Query: twoHop})  // 404

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	fams, err := metrics.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("exposition format invalid: %v", err)
	}
	byName := make(map[string]metrics.Family, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	wantType := map[string]string{
		"bvqd_query_latency_seconds":     "histogram",
		"bvqd_queries_total":             "counter",
		"bvqd_errors_total":              "counter",
		"bvqd_timeouts_total":            "counter",
		"bvqd_coalesced_total":           "counter",
		"bvqd_shed_total":                "counter",
		"bvqd_panics_recovered_total":    "counter",
		"bvqd_plan_cache_hits_total":     "counter",
		"bvqd_result_cache_hits_total":   "counter",
		"bvqd_requests_in_flight":        "gauge",
		"bvqd_evals_in_flight":           "gauge",
		"bvqd_queue_depth":               "gauge",
		"bvqd_eval_fix_iterations_total": "counter",
	}
	for name, typ := range wantType {
		f, ok := byName[name]
		if !ok {
			t.Errorf("family %s missing", name)
			continue
		}
		if f.Type != typ {
			t.Errorf("%s type = %s, want %s", name, f.Type, typ)
		}
		if f.Help == "" {
			t.Errorf("%s has no HELP text", name)
		}
	}
	value := func(name string) float64 {
		for _, sm := range byName[name].Samples {
			if sm.Name == name {
				return sm.Value
			}
		}
		t.Fatalf("no sample for %s", name)
		return 0
	}
	st := getStats(t, ts)
	if got := value("bvqd_queries_total"); got != float64(st.Queries) {
		t.Errorf("bvqd_queries_total = %v, /stats queries = %d", got, st.Queries)
	}
	if got := value("bvqd_errors_total"); got != float64(st.Errors) {
		t.Errorf("bvqd_errors_total = %v, /stats errors = %d", got, st.Errors)
	}
	if got := value("bvqd_result_cache_hits_total"); got != float64(st.ResultCache.Hits) {
		t.Errorf("bvqd_result_cache_hits_total = %v, /stats hits = %d", got, st.ResultCache.Hits)
	}
	// The latency histogram observes every /query request: the two served
	// ones under their engine label, the 404 (rejected before engine
	// resolution) under "unknown". Totals must add up across labels.
	var count, bottomup float64
	for _, sm := range byName["bvqd_query_latency_seconds"].Samples {
		if sm.Name == "bvqd_query_latency_seconds_count" {
			count += sm.Value
			if sm.Labels["engine"] == "bottomup" {
				bottomup += sm.Value
			}
		}
	}
	if count != float64(st.Queries) {
		t.Errorf("latency observations = %v, queries = %d", count, st.Queries)
	}
	if bottomup != 2 {
		t.Errorf("bottomup observations = %v, want 2", bottomup)
	}
}

// TestSaturationSheds429 is the overload drill: one evaluation slot, a
// one-deep wait queue, and six simultaneous uncacheable requests while the
// only slot is wedged open. The excess must shed with 429 + Retry-After,
// the admitted requests must complete 200 once the slot opens, and every
// gauge must drain — no stranded waiters. Meaningful under -race.
func TestSaturationSheds429(t *testing.T) {
	gate := make(chan struct{})
	s, ts := hookedServer(t, Config{
		MaxConcurrentEvals: 1,
		MaxEvalQueue:       1,
		RetryAfter:         2 * time.Second,
	}, func() { <-gate })

	const total = 6
	codes := make(chan int, total)
	retryAfter := make(chan string, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postFull(t, ts, QueryRequest{Database: "graph", Query: twoHop, NoCache: true})
			resp.Body.Close()
			codes <- resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests {
				retryAfter <- resp.Header.Get("Retry-After")
			}
		}()
	}
	// With the slot wedged, exactly one request runs and one queues; the
	// other four shed immediately. Wait for those 429s before opening the
	// gate, so the admitted pair demonstrably survived saturation.
	shed := 0
	deadline := time.After(10 * time.Second)
	for shed < total-2 {
		select {
		case got := <-codes:
			if got != http.StatusTooManyRequests {
				t.Fatalf("pre-gate response %d, want 429", got)
			}
			shed++
		case <-deadline:
			t.Fatalf("only %d requests shed; queue not bounding", shed)
		}
	}
	close(gate)
	wg.Wait()
	close(codes)
	close(retryAfter)
	for got := range codes {
		if got != http.StatusOK {
			t.Fatalf("post-gate response %d, want 200", got)
		}
	}
	for ra := range retryAfter {
		// RetryAfter 2s with default jitter (half the base): values land in
		// [2, 3] seconds.
		v, err := strconv.Atoi(ra)
		if err != nil || v < 2 || v > 3 {
			t.Fatalf("Retry-After = %q, want an integer in [2, 3]", ra)
		}
	}
	st := s.Stats()
	if st.Shed != total-2 {
		t.Fatalf("shed counter = %d, want %d", st.Shed, total-2)
	}
	if st.Errors < st.Shed {
		t.Fatalf("errors = %d < shed = %d (429 must count as an error)", st.Errors, st.Shed)
	}
	if st.InFlight.Requests != 0 || st.InFlight.Evals != 0 || st.InFlight.Queued != 0 {
		t.Fatalf("gauges not drained: %+v", st.InFlight)
	}
}

// TestEvaluatorPanicIsContained injects a panic at the evaluation boundary
// and checks both paths: a direct (no_cache) request and a coalesced pair
// all answer 500 with the panic surfaced in the error, the panic counter
// increments, no gauge leaks, and the server keeps serving afterwards.
func TestEvaluatorPanicIsContained(t *testing.T) {
	var explode atomic.Bool
	s, ts := hookedServer(t, Config{}, func() {
		if explode.Load() {
			panic("synthetic evaluator bug")
		}
	})

	explode.Store(true)
	code, _, errResp := postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop, NoCache: true})
	if code != http.StatusInternalServerError {
		t.Fatalf("direct panic path: status = %d, want 500", code)
	}
	if !strings.Contains(errResp.Error, "panic") || !strings.Contains(errResp.Error, "synthetic evaluator bug") {
		t.Fatalf("panic not surfaced: %q", errResp.Error)
	}

	// Coalesced path: both the leader and a follower of the same key get the
	// recovered error, and nobody hangs.
	var wg sync.WaitGroup
	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop})
			results <- code
		}()
	}
	wg.Wait()
	close(results)
	for code := range results {
		if code != http.StatusInternalServerError {
			t.Fatalf("coalesced panic path: status = %d, want 500", code)
		}
	}

	st := s.Stats()
	if st.Panics == 0 {
		t.Fatal("panic counter not incremented")
	}
	if st.InFlight.Requests != 0 || st.InFlight.Evals != 0 {
		t.Fatalf("gauges leaked by panic: %+v", st.InFlight)
	}

	// Recovery is per-request: with the fault cleared the same key serves.
	explode.Store(false)
	code, resp, errResp := postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop})
	if code != http.StatusOK {
		t.Fatalf("post-panic request: status = %d (%s)", code, errResp.Error)
	}
	if resp.Count != 2 {
		t.Fatalf("post-panic answer wrong: %+v", resp)
	}
}

// TestQueryTrace exercises the trace request flag end to end: stage events
// arrive in order, a traced request never rides the cache or another run,
// but its result still seeds the cache for untraced followers.
func TestQueryTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reach := "(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)"

	code, traced, errResp := postQuery(t, ts, QueryRequest{Database: "graph", Query: reach, Trace: true})
	if code != http.StatusOK {
		t.Fatalf("traced request: %d (%s)", code, errResp.Error)
	}
	if len(traced.Trace) == 0 {
		t.Fatal("no trace events returned")
	}
	if traced.ResultCached || traced.Coalesced {
		t.Fatalf("traced request rode someone else's run: %+v", traced)
	}
	for i, ev := range traced.Trace {
		if ev.Engine != "bottomup" || ev.Op != "lfp" || ev.Fixpoint != "S" {
			t.Fatalf("event %d = %+v", i, ev)
		}
		if ev.Stage != i+1 {
			t.Fatalf("event %d: stage %d", i, ev.Stage)
		}
	}
	if traced.TraceTruncated {
		t.Fatalf("tiny trace reported truncated")
	}
	if traced.Stats == nil || int64(len(traced.Trace)) != traced.Stats.FixIterations {
		t.Fatalf("trace length %d != fix_iterations %v", len(traced.Trace), traced.Stats)
	}

	// The traced run stored its result: an untraced repeat is a cache hit
	// and carries no trace.
	code, repeat, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: reach})
	if code != http.StatusOK || !repeat.ResultCached {
		t.Fatalf("untraced repeat not served from cache: %d %+v", code, repeat)
	}
	if len(repeat.Trace) != 0 {
		t.Fatalf("cache hit returned a trace: %+v", repeat.Trace)
	}

	// A second traced request evaluates fresh again — its trace must be its
	// own, not the cached answer's absence of one.
	code, retraced, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: reach, Trace: true})
	if code != http.StatusOK || retraced.ResultCached || len(retraced.Trace) == 0 {
		t.Fatalf("re-traced request: %d %+v", code, retraced)
	}
}

// TestQueryTraceTruncation runs the 2^13-stage counter query traced: the
// response must cap the trace at maxTraceEvents and flag the truncation.
func TestQueryTraceTruncation(t *testing.T) {
	_, ts := newTestServer(t, Config{Databases: map[string]*database.Database{
		"ord": orderedDB(t, 13),
	}})
	code, resp, errResp := postQuery(t, ts, QueryRequest{Database: "ord", Query: counterText, Trace: true})
	if code != http.StatusOK {
		t.Fatalf("status = %d (%s)", code, errResp.Error)
	}
	if len(resp.Trace) != maxTraceEvents {
		t.Fatalf("trace length = %d, want the %d cap", len(resp.Trace), maxTraceEvents)
	}
	if !resp.TraceTruncated {
		t.Fatal("truncation not flagged")
	}
}

// TestRequestIDs checks that every response — success or error — carries a
// request ID in both the header and the body, and that IDs differ between
// requests.
func TestRequestIDs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r1 := postFull(t, ts, QueryRequest{Database: "graph", Query: twoHop})
	defer r1.Body.Close()
	var ok QueryResponse
	if err := json.NewDecoder(r1.Body).Decode(&ok); err != nil {
		t.Fatal(err)
	}
	h1 := r1.Header.Get("X-Request-Id")
	if h1 == "" || ok.RequestID != h1 {
		t.Fatalf("success: header %q, body %q", h1, ok.RequestID)
	}
	r2 := postFull(t, ts, QueryRequest{Database: "nope", Query: twoHop})
	defer r2.Body.Close()
	var bad ErrorResponse
	if err := json.NewDecoder(r2.Body).Decode(&bad); err != nil {
		t.Fatal(err)
	}
	h2 := r2.Header.Get("X-Request-Id")
	if h2 == "" || bad.RequestID != h2 {
		t.Fatalf("error: header %q, body %q", h2, bad.RequestID)
	}
	if h1 == h2 {
		t.Fatalf("request IDs collide: %q", h1)
	}
}

// TestSlowQueryLog configures a zero threshold so every request is "slow"
// and checks the structured log line carries the request ID and query.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{
		SlowQuery: time.Nanosecond,
		Logger:    slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	r := postFull(t, ts, QueryRequest{Database: "graph", Query: twoHop})
	r.Body.Close()
	id := r.Header.Get("X-Request-Id")

	out := buf.String()
	var line map[string]any
	if err := json.Unmarshal([]byte(out), &line); err != nil {
		t.Fatalf("log output %q is not one JSON line: %v", out, err)
	}
	if line["msg"] != "slow query" || line["request_id"] != id || line["query"] != twoHop {
		t.Fatalf("log line = %v", line)
	}
	if line["status"] != float64(200) {
		t.Fatalf("status in log = %v", line["status"])
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for concurrent log writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRetryAfterJitterRange pins the jittered Retry-After contract on both
// shed paths: a queue-full 429 and a deadline that fires while queued (504)
// must both carry a Retry-After header whose value lies in
// [RetryAfter, RetryAfter+RetryAfterJitter] seconds. A synchronized wave of
// router retries depends on this spread to de-herd.
func TestRetryAfterJitterRange(t *testing.T) {
	gate := make(chan struct{})
	defer func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	}()
	entered := make(chan struct{}, 64)
	s, ts := hookedServer(t, Config{
		MaxConcurrentEvals: 1,
		MaxEvalQueue:       1,
		RetryAfter:         3 * time.Second,
		RetryAfterJitter:   2 * time.Second,
	}, func() { entered <- struct{}{}; <-gate })

	inRange := func(t *testing.T, resp *http.Response) {
		t.Helper()
		ra := resp.Header.Get("Retry-After")
		v, err := strconv.Atoi(ra)
		if err != nil || v < 3 || v > 5 {
			t.Fatalf("Retry-After = %q, want an integer in [3, 5]", ra)
		}
	}

	// Wedge the single slot open with one request; once it demonstrably
	// holds the slot, a short-deadline request can only queue, and its
	// deadline firing there is the queue-timeout shed path: 504 with the
	// jittered Retry-After.
	wedged := make(chan struct{})
	go func() {
		resp := postFull(t, ts, QueryRequest{Database: "graph", Query: twoHop, NoCache: true})
		resp.Body.Close()
		close(wedged)
	}()
	<-entered
	resp := postFull(t, ts, QueryRequest{Database: "graph", Query: twoHop, NoCache: true, TimeoutMS: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("queued probe status = %d, want 504", resp.StatusCode)
	}
	inRange(t, resp)
	resp.Body.Close()

	// Fill the one-deep queue with a long-deadline request; once it is
	// demonstrably queued, the next arrival sheds 429 immediately — the
	// queue-full shed path.
	queued := make(chan struct{})
	go func() {
		resp := postFull(t, ts, QueryRequest{Database: "graph", Query: twoHop, NoCache: true, TimeoutMS: 30000})
		resp.Body.Close()
		close(queued)
	}()
	waitForCondition(t, func() bool { return s.limiter.queueDepth() == 1 })
	resp = postFull(t, ts, QueryRequest{Database: "graph", Query: twoHop, NoCache: true, TimeoutMS: 1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full probe status = %d, want 429", resp.StatusCode)
	}
	inRange(t, resp)
	resp.Body.Close()

	close(gate)
	<-wedged
	<-queued
}

// waitForCondition polls fn until it reports success or the deadline runs
// out.
func waitForCondition(t *testing.T, fn func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if fn() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}

// TestRetryAfterValueDistribution samples the header generator directly:
// every draw stays within the configured bounds, and the jitter actually
// spreads (more than one distinct value over many draws).
func TestRetryAfterValueDistribution(t *testing.T) {
	s, _ := newTestServer(t, Config{RetryAfter: 4 * time.Second, RetryAfterJitter: 2 * time.Second})
	seen := map[string]bool{}
	for i := 0; i < 512; i++ {
		v := s.retryAfterValue()
		n, err := strconv.Atoi(v)
		if err != nil || n < 4 || n > 6 {
			t.Fatalf("retryAfterValue() = %q, want an integer in [4, 6]", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Fatalf("512 draws produced a single value %v: jitter is not spreading", seen)
	}
	// Negative jitter disables the spread entirely.
	fixed, _ := newTestServer(t, Config{RetryAfter: 4 * time.Second, RetryAfterJitter: -1})
	for i := 0; i < 16; i++ {
		if v := fixed.retryAfterValue(); v != "4" {
			t.Fatalf("fixed retryAfterValue() = %q, want \"4\"", v)
		}
	}
}
