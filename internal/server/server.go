// Package server implements bvqd, the long-running bounded-variable query
// service. It is the serving-shaped reading of the paper: Proposition 3.1
// makes combined complexity polynomial, so a daemon can afford to evaluate
// ad-hoc queries from many clients — and the constant-delay line of work
// (Durand–Grandjean) frames exactly this split: amortize preprocessing,
// then answer many queries cheaply. The preprocessing amortized here:
//
//   - parse + width computation — and, for the compiled engine, the full
//     DAG plan (internal/plan) — memoized in an LRU plan cache keyed by
//     query text;
//   - whole evaluations, memoized in an LRU result cache keyed by
//     (database fingerprint, engine, options, query text) — sound because
//     database snapshots are immutable values and engines deterministic;
//   - concurrent identical requests, coalesced by single-flight dedup so a
//     thundering herd costs one evaluation.
//
// Every request carries its own engine, parallelism and deadline; deadlines
// are enforced by context cancellation at fixpoint-stage boundaries (see
// eval.BottomUpContext), so a timed-out request returns within one stage of
// its deadline with the partial work statistics it accumulated.
//
// Sustained traffic gets three more layers (see OPERATIONS.md):
//
//   - admission control: a configurable concurrency limit with a bounded
//     wait queue in front of evaluation; overload is answered 429 with a
//     Retry-After header instead of queueing without bound;
//   - observability: Prometheus text-format metrics on GET /metrics,
//     per-stage fixpoint tracing via the request's trace flag, and
//     structured slow-query logs (log/slog JSON) keyed by request ID;
//   - panic containment: an evaluator panic is recovered, counted, and
//     answered 500 — it never takes down the daemon or strands coalesced
//     followers.
//
// Databases are served as MVCC snapshots: POST /db/{name}/update applies
// tuple-level inserts and deletes (database.Apply), atomically swapping in a
// new snapshot while in-flight queries finish against the old one. The
// update path triages the result cache by dependency footprint — carrying
// disjoint entries to the new fingerprint, re-deriving maintainable ones by
// delta-restart (eval.EvalPlanMaintained), dropping the rest — and never
// touches the plan cache, which is keyed by query text alone (update.go).
//
// Endpoints: POST /query (JSON in/out), POST /db/{name}/update (tuple-level
// mutation), GET /stats (JSON counters), GET /metrics (Prometheus text),
// GET /healthz. The package is stdlib-only; cmd/bvqd is the thin main.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/cache"
	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/trace"
)

// Config configures a Server.
type Config struct {
	// Databases maps serving names to loaded databases. At least one is
	// required.
	Databases map[string]*database.Database
	// PlanCacheSize bounds the plan cache (entries). 0 means DefaultPlanCacheSize;
	// negative disables plan caching.
	PlanCacheSize int
	// ResultCacheSize bounds the result cache (entries). 0 means
	// DefaultResultCacheSize; negative disables result caching.
	ResultCacheSize int
	// DefaultTimeout applies when a request does not set timeout_ms.
	// 0 means no default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout clamps per-request deadlines. 0 means no clamp.
	MaxTimeout time.Duration
	// MaxConcurrentEvals bounds how many evaluations run at once (after
	// cache hits and single-flight dedup). 0 means unlimited — the
	// pre-admission-control behavior.
	MaxConcurrentEvals int
	// MaxEvalQueue bounds how many requests may wait for an evaluation
	// slot; arrivals beyond it are shed with 429. 0 means
	// 2×MaxConcurrentEvals. Ignored when MaxConcurrentEvals is 0.
	MaxEvalQueue int
	// RetryAfter is the Retry-After hint attached to shed responses (429,
	// and 504s whose deadline fired while queued), rounded up to whole
	// seconds. 0 means 1s.
	RetryAfter time.Duration
	// RetryAfterJitter bounds the random spread added to RetryAfter on each
	// shed response: the header value is uniform in
	// [RetryAfter, RetryAfter+RetryAfterJitter] seconds, so a fleet of
	// clients (or a router's worth of queued retries) shed at the same
	// instant does not come back at the same instant. 0 means half of
	// RetryAfter, at least 1s; negative disables jitter (a fixed header).
	RetryAfterJitter time.Duration
	// SlowQuery is the slow-query logging threshold: requests taking at
	// least this long are logged through Logger at warn level. 0 disables
	// slow-query logging.
	SlowQuery time.Duration
	// Logger receives structured logs (slow queries, recovered panics).
	// nil means discard.
	Logger *slog.Logger
	// TraceBufferSize enables the flight recorder: the last N finished
	// request traces are kept in memory and served on GET /debug/traces.
	// 0 disables lifecycle tracing entirely (the zero-overhead default).
	TraceBufferSize int
	// TraceKeepSize bounds the always-keep buffer holding slow/error/shed
	// traces regardless of ring churn. 0 means TraceBufferSize/4, min 8.
	TraceKeepSize int
	// TraceSample records 1 in N requests into the flight recorder (slow,
	// error and shed requests are always candidates once traced — sampling
	// decides whether a trace is built at all). 0 or 1 means every request.
	TraceSample int
}

// Cache sizing defaults. Plans are small (an AST per distinct query text);
// results hold a relation each, so the default is sized for k ≤ 3 answers
// over domains of a few hundred elements — override per deployment, see
// OPERATIONS.md.
const (
	DefaultPlanCacheSize   = 1024
	DefaultResultCacheSize = 4096
)

// maxTraceEvents caps the per-request trace a traced evaluation may return:
// a runaway PFP sweep can produce millions of stage events, and the trace
// is a debugging aid, not a firehose. Truncation is flagged in the response.
const maxTraceEvents = 4096

// errEvalPanic wraps a recovered evaluator panic; the handler maps it to a
// 500 response.
var errEvalPanic = errors.New("server: evaluation panicked")

// Server is the bvqd HTTP query service. Construct with New; serve
// Handler(); all methods are safe for concurrent use.
type Server struct {
	dbs      map[string]*namedDB
	plans    *cache.PlanCache
	results  *cache.ResultCache
	index    *cache.Index
	flight   *cache.Flight[evalOutcome]
	limiter  *limiter
	metrics  *serverMetrics
	logger   *slog.Logger
	recorder *trace.Recorder // nil: lifecycle tracing disabled
	sample   int64           // record 1 in sample requests

	defaultTimeout   time.Duration
	maxTimeout       time.Duration
	slowQuery        time.Duration
	retryAfterBase   int64 // Retry-After floor, whole seconds
	retryAfterJitter int64 // uniform spread above the floor, whole seconds
	start            time.Time

	reqSeq atomic.Int64 // request-ID sequence

	queries   atomic.Int64 // requests to /query
	errorsN   atomic.Int64 // requests answered 4xx/5xx
	timeouts  atomic.Int64 // requests answered 504
	coalesced atomic.Int64 // requests served by another request's evaluation

	streams           atomic.Int64 // streamed (NDJSON) /query requests
	streamDisconnects atomic.Int64 // streams cut by a client disconnect mid-answer

	requestsInFlight atomic.Int64 // /query requests currently being handled
	evalsInFlight    atomic.Int64 // evaluations currently running (post-dedup)

	subformulaEvals atomic.Int64 // aggregate engine work, incl. partial runs
	fixIterations   atomic.Int64
	tuplesTouched   atomic.Int64 // sparse-backend tuple work across all runs
	repSwitches     atomic.Int64 // sparse→dense hybrid-frontier conversions
	acyclicFast     atomic.Int64 // queries answered by the Yannakakis fast path

	updates            atomic.Int64 // effective updates accepted on /db/{name}/update
	carriedResults     atomic.Int64 // cached results rekeyed across updates untouched
	maintainedResults  atomic.Int64 // cached results re-derived by delta-restart
	invalidatedResults atomic.Int64 // cached results dropped by updates

	// testHookBeforeEval, when set, runs inside the evaluation closure after
	// admission, before the engine. Tests use it to inject panics and to
	// hold evaluation slots open.
	testHookBeforeEval func()
	// testHookOnStreamRow, when set, runs in the stream drain loop before
	// each row is encoded, with the 0-based row index. Tests use it to
	// inject mid-stream failures after the first byte is out.
	testHookOnStreamRow func(row int)
}

// namedDB is one served database lineage. Queries load the current snapshot
// once (an atomic pointer read) and evaluate against it for their whole
// lifetime — an update concurrently swapping the pointer never disturbs them
// (MVCC snapshot isolation, database.Apply). mu serializes updates and result
// registration: a result computed against a superseded snapshot must not
// enter the cache or the churn index, where a later update would wrongly
// carry it forward.
type namedDB struct {
	name string
	mu   sync.Mutex
	snap atomic.Pointer[dbSnap]
}

// dbSnap pairs a snapshot with its fingerprint (computed once per swap).
type dbSnap struct {
	db *database.Database
	fp uint64
}

// evalOutcome is what one evaluation produces — shared between coalesced
// requests, including the partial statistics of a cancelled run.
type evalOutcome struct {
	answer *bvq.Relation
	stats  *eval.Stats
	err    error
}

// New validates cfg and returns a Server.
func New(cfg Config) (*Server, error) {
	if len(cfg.Databases) == 0 {
		return nil, fmt.Errorf("server: no databases configured")
	}
	planSize, resultSize := cfg.PlanCacheSize, cfg.ResultCacheSize
	if planSize == 0 {
		planSize = DefaultPlanCacheSize
	}
	if resultSize == 0 {
		resultSize = DefaultResultCacheSize
	}
	retryAfter := cfg.RetryAfter
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	retryBase := int64((retryAfter + time.Second - 1) / time.Second)
	var retryJitter int64
	switch {
	case cfg.RetryAfterJitter > 0:
		retryJitter = int64((cfg.RetryAfterJitter + time.Second - 1) / time.Second)
	case cfg.RetryAfterJitter == 0:
		retryJitter = max(retryBase/2, 1)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	s := &Server{
		dbs:              make(map[string]*namedDB, len(cfg.Databases)),
		plans:            cache.NewPlanCache(max(planSize, 0)),
		results:          cache.NewResultCache(max(resultSize, 0)),
		index:            cache.NewIndex(max(resultSize, 0)),
		flight:           cache.NewFlight[evalOutcome](),
		limiter:          newLimiter(cfg.MaxConcurrentEvals, cfg.MaxEvalQueue),
		logger:           logger,
		defaultTimeout:   cfg.DefaultTimeout,
		maxTimeout:       cfg.MaxTimeout,
		slowQuery:        cfg.SlowQuery,
		retryAfterBase:   retryBase,
		retryAfterJitter: retryJitter,
		start:            time.Now(),
		sample:           1,
	}
	if cfg.TraceSample > 1 {
		s.sample = int64(cfg.TraceSample)
	}
	if cfg.TraceBufferSize > 0 {
		keep := cfg.TraceKeepSize
		if keep <= 0 {
			keep = max(cfg.TraceBufferSize/4, 8)
		}
		s.recorder = trace.NewRecorder(cfg.TraceBufferSize, keep)
	}
	for name, db := range cfg.Databases {
		if name == "" || db == nil {
			return nil, fmt.Errorf("server: invalid database entry %q", name)
		}
		nd := &namedDB{name: name}
		nd.snap.Store(&dbSnap{db: db, fp: db.Fingerprint()})
		s.dbs[name] = nd
		// Pin the churn index to the initial snapshot so registrations from
		// evals that straddle an update are rejected by generation, not just
		// by the update path's own fingerprint check.
		s.index.Advance(name, db.Fingerprint())
	}
	// Last: the metric collectors close over the fields initialized above.
	s.metrics = newServerMetrics(s)
	return s, nil
}

// Handler returns the daemon's HTTP routes, wrapped in a recovery middleware
// that converts any handler panic into a 500 instead of killing the
// connection (and, under http.Server, flooding stderr with stack traces).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /db/{name}/update", s.handleUpdate)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.metrics.registry.ServeHTTP)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /version", s.handleVersion)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceByID)
	return s.recoverPanics(mux)
}

// recoverPanics is the outer safety net: evaluation panics are already
// recovered inside the evaluation closure, so this catches only bugs in the
// handlers themselves.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.metrics.panics.Inc()
				s.errorsN.Add(1)
				s.logger.LogAttrs(r.Context(), slog.LevelError, "handler panic",
					slog.String("path", r.URL.Path), slog.Any("panic", p))
				writeJSON(w, http.StatusInternalServerError,
					ErrorResponse{Error: fmt.Sprintf("internal error: %v", p)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// QueryRequest is the /query request body.
type QueryRequest struct {
	// Database names one of the served databases. Required.
	Database string `json:"database"`
	// Query is the query text, e.g. "(x, y). exists z. E(x, z) & E(z, y)".
	Query string `json:"query"`
	// Engine selects the evaluation algorithm (bottomup, naive, algebra,
	// monotone, eso, certified, compiled). Empty means bottomup.
	Engine string `json:"engine,omitempty"`
	// Backend selects the compiled engine's relation representation: auto
	// (default — the density heuristic picks), dense (force the full-width
	// nᵏ bitmap engine) or sparse (force sorted tuple blocks with the
	// acyclic Yannakakis fast path). Only the compiled engine understands
	// backends; any other engine with a non-auto backend is a 400.
	Backend string `json:"backend,omitempty"`
	// MaxWidth rejects queries of width > MaxWidth (the Lᵏ membership
	// check). 0 means unbounded; negative is a 400.
	MaxWidth int `json:"max_width,omitempty"`
	// Parallelism bounds the PFP sweep's worker pool. 0 means GOMAXPROCS;
	// negative is a 400. Does not affect answers, only latency.
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutMS is this request's evaluation deadline in milliseconds,
	// clamped to the server's maximum. 0 means the server default;
	// negative is a 400.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// NoCache bypasses the result cache and single-flight dedup: the
	// request always evaluates fresh and does not store its result.
	NoCache bool `json:"no_cache,omitempty"`
	// Trace returns the evaluation's fixpoint-stage trace in the response.
	// A traced request always evaluates fresh (no cache read, no
	// coalescing — the trace must describe this run), but its result is
	// still stored unless no_cache is also set.
	Trace bool `json:"trace,omitempty"`
	// Indices reports answer tuples as domain indices 0..n−1 instead of
	// raw domain values.
	Indices bool `json:"indices,omitempty"`
	// Stream switches the response to NDJSON (application/x-ndjson): a
	// header line, one line per answer tuple flushed as it decodes, and a
	// trailer line with the final statistics. Streamed requests evaluate
	// through the enumeration API — on the compiled engine, a LIMIT-k
	// stream stops the extraction (and, on the acyclic fast path, the
	// evaluation itself) after k tuples. Streams bypass single-flight
	// coalescing but still read the result cache; trace is not supported
	// with stream.
	Stream bool `json:"stream,omitempty"`
	// Limit caps how many answer tuples are returned (after Offset).
	// 0 means all. The JSON response's count field (and the stream
	// trailer's, when known) always reports the FULL answer cardinality,
	// not the window's size. Limit and Offset are excluded from result-cache
	// keys, so a cached full result serves any windowed request.
	Limit int `json:"limit,omitempty"`
	// Offset skips that many answer tuples (in the canonical sorted order)
	// before returning any. 0 means none.
	Offset int `json:"offset,omitempty"`
	// Explain returns the compiled plan DAG annotated with the density
	// decision, maintenance eligibility and backend route, plus per-node
	// wall time and per-binder stage counts from this run. Requires the
	// compiled engine; like trace, an explained request always evaluates
	// fresh (the annotations must describe this run). Not supported with
	// stream.
	Explain bool `json:"explain,omitempty"`
}

// QueryResponse is the /query success body.
type QueryResponse struct {
	// RequestID identifies this request in slow-query logs; it is also
	// returned in the X-Request-Id response header.
	RequestID string `json:"request_id"`
	Database  string `json:"database"`
	Engine    string `json:"engine"`
	// Backend echoes the resolved relation backend (auto, dense, sparse)
	// when the request selected one explicitly.
	Backend string `json:"backend,omitempty"`
	// Width is the query's variable count (its Lᵏ class).
	Width int `json:"width"`
	// Arity is the answer arity; for arity 0 (Boolean queries) Truth is
	// set and Answer omitted.
	Arity  int     `json:"arity"`
	Truth  *bool   `json:"truth,omitempty"`
	Answer [][]int `json:"answer"`
	Count  int     `json:"count"`
	// PlanCached / ResultCached / Coalesced report how the request was
	// served: parse skipped, evaluation skipped, or evaluation shared with
	// a concurrent identical request.
	PlanCached   bool `json:"plan_cached"`
	ResultCached bool `json:"result_cached"`
	Coalesced    bool `json:"coalesced"`
	// ElapsedMS is the server-side handling time of this request.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Stats is the engine work of the evaluation that produced the answer
	// (the original run's, when served from cache); nil for engines that
	// do not report statistics.
	Stats *StatsJSON `json:"stats,omitempty"`
	// Trace is the fixpoint-stage trace when the request set trace;
	// TraceTruncated reports that it was cut at the event cap.
	Trace          []TraceStageJSON `json:"trace,omitempty"`
	TraceTruncated bool             `json:"trace_truncated,omitempty"`
	// TraceID is the W3C trace ID of this request's lifecycle trace when the
	// flight recorder sampled it; the trace is retrievable at
	// GET /debug/traces/{id} until it ages out of the ring.
	TraceID string `json:"trace_id,omitempty"`
	// Explain is the annotated plan DAG when the request set explain.
	Explain *plan.Explain `json:"explain,omitempty"`
}

// TraceStageJSON is one fixpoint stage of a traced evaluation.
type TraceStageJSON struct {
	Engine    string  `json:"engine"`
	Fixpoint  string  `json:"fixpoint"`
	Op        string  `json:"op"`
	Stage     int     `json:"stage"`
	Tuples    int     `json:"tuples"`
	Delta     int     `json:"delta"`
	ElapsedUS float64 `json:"elapsed_us"`
}

// ErrorResponse is the /query error body.
type ErrorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
	// Stats carries the partial work statistics of a cancelled evaluation
	// (504 only): what the engine had done when the deadline fired.
	Stats *StatsJSON `json:"stats,omitempty"`
}

// StatsJSON mirrors eval.Stats in the wire format.
type StatsJSON struct {
	SubformulaEvals       int64 `json:"subformula_evals"`
	FixIterations         int64 `json:"fix_iterations"`
	MaxIntermediateArity  int64 `json:"max_intermediate_arity"`
	MaxIntermediateTuples int64 `json:"max_intermediate_tuples"`
	// NodesReused and DeltaTuples are reported by the compiled engine only:
	// plan-cache reads served without recomputation, and tuples pushed
	// through semi-naive stage deltas.
	NodesReused int64 `json:"nodes_reused,omitempty"`
	DeltaTuples int64 `json:"delta_tuples,omitempty"`
	// TuplesTouched, RepSwitches and AcyclicFastPath are reported by the
	// compiled engine's sparse backend: tuples written by sparse operations,
	// sparse→dense conversions at the hybrid frontier, and whether the
	// Yannakakis acyclic-join pipeline answered the query.
	TuplesTouched   int64 `json:"tuples_touched,omitempty"`
	RepSwitches     int64 `json:"rep_switches,omitempty"`
	AcyclicFastPath int64 `json:"acyclic_fast_path,omitempty"`
	// MaintainedFromDelta is 1 when the run that produced this answer was a
	// delta-restart maintenance run (the cached result was re-derived after
	// an update rather than recomputed from scratch).
	MaintainedFromDelta int64 `json:"maintained_from_delta,omitempty"`
	// TuplesStreamed and TuplesSkipped are reported by streamed (or
	// windowed) evaluations: answer tuples decoded and delivered, and
	// tuples skipped without decoding by OFFSET seeks.
	TuplesStreamed int64 `json:"tuples_streamed,omitempty"`
	TuplesSkipped  int64 `json:"tuples_skipped,omitempty"`
}

func statsJSON(st *eval.Stats) *StatsJSON {
	if st == nil {
		return nil
	}
	return &StatsJSON{
		SubformulaEvals:       st.SubformulaEvals,
		FixIterations:         st.FixIterations,
		MaxIntermediateArity:  st.MaxIntermediateArity,
		MaxIntermediateTuples: st.MaxIntermediateTuples,
		NodesReused:           st.NodesReused,
		DeltaTuples:           st.DeltaTuples,
		TuplesTouched:         st.TuplesTouched,
		RepSwitches:           st.RepSwitches,
		AcyclicFastPath:       st.AcyclicFastPath,
		MaintainedFromDelta:   st.MaintainedFromDelta,
		TuplesStreamed:        st.TuplesStreamed,
		TuplesSkipped:         st.TuplesSkipped,
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.queries.Add(1)
	s.requestsInFlight.Add(1)
	defer s.requestsInFlight.Add(-1)

	seq := s.reqSeq.Add(1)
	reqID := clientRequestID(r)
	if reqID == "" {
		reqID = fmt.Sprintf("%08x", seq)
	}
	w.Header().Set("X-Request-Id", reqID)

	// Lifecycle trace: built for 1 in TraceSample requests when the flight
	// recorder is on, continuing the client's W3C trace when it sent a
	// traceparent header (so a front tier can stitch fleet-wide traces).
	// Untraced requests never allocate a span — every *trace.Span method is
	// a nil no-op.
	var lt *trace.Trace
	var root *trace.Span
	if s.recorder != nil && seq%s.sample == 0 {
		traceID, _, ok := trace.ParseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			traceID = trace.NewTraceID()
		}
		lt = trace.New(traceID, start)
		root = lt.Root()
		root.Annotate("request_id", reqID)
		w.Header().Set("traceparent", trace.FormatTraceparent(traceID, trace.NewSpanID()))
	}

	var req QueryRequest
	var engineName, backendName string
	var resp QueryResponse
	direct := false
	status := http.StatusOK
	defer func() {
		elapsed := time.Since(start)
		s.metrics.observe(engineName, status, elapsed)
		slow := s.slowQuery > 0 && elapsed >= s.slowQuery
		if lt != nil {
			root.Annotate("database", req.Database)
			root.Annotate("engine", engineName)
			root.Annotate("status", strconv.Itoa(status))
			switch {
			case status == http.StatusTooManyRequests:
				lt.Keep("shed")
			case status >= http.StatusInternalServerError:
				lt.Keep("error")
			case slow:
				lt.Keep("slow")
			}
			lt.Close(time.Now())
			s.recordTrace(lt)
		}
		if slow {
			s.metrics.slow.Inc()
			attrs := []slog.Attr{
				slog.String("request_id", reqID),
				slog.String("database", req.Database),
				slog.String("engine", engineName),
				slog.String("backend", backendName),
				slog.String("cache", cacheOutcome(&resp, direct)),
				slog.String("query", req.Query),
				slog.Int("status", status),
				slog.Float64("elapsed_ms", float64(elapsed.Microseconds())/1000),
			}
			if lt != nil {
				attrs = append(attrs,
					slog.String("trace_id", lt.ID()),
					slog.String("spans", topSpans(lt.View(), 3)))
			}
			s.logger.LogAttrs(r.Context(), slog.LevelWarn, "slow query", attrs...)
		}
	}()
	fail := func(code int, err error, partial *StatsJSON) {
		status = code
		s.fail(w, code, err, partial, reqID)
	}

	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(http.StatusBadRequest, fmt.Errorf("decoding request: %w", err), nil)
		return
	}
	// Validate numeric wire fields up front: a negative value is always a
	// client bug, and letting it through would select unintended semantics
	// (e.g. a negative width bound disabling the Lᵏ check).
	if req.Parallelism < 0 {
		fail(http.StatusBadRequest,
			fmt.Errorf("invalid parallelism %d: must be ≥ 0 (0 means GOMAXPROCS)", req.Parallelism), nil)
		return
	}
	if req.MaxWidth < 0 {
		fail(http.StatusBadRequest,
			fmt.Errorf("invalid max_width %d: must be ≥ 0 (0 means unbounded)", req.MaxWidth), nil)
		return
	}
	if req.TimeoutMS < 0 {
		fail(http.StatusBadRequest,
			fmt.Errorf("invalid timeout_ms %d: must be ≥ 0 (0 means the server default)", req.TimeoutMS), nil)
		return
	}
	if req.Limit < 0 {
		fail(http.StatusBadRequest,
			fmt.Errorf("invalid limit %d: must be ≥ 0 (0 means all tuples)", req.Limit), nil)
		return
	}
	if req.Offset < 0 {
		fail(http.StatusBadRequest,
			fmt.Errorf("invalid offset %d: must be ≥ 0", req.Offset), nil)
		return
	}
	if req.Stream && req.Trace {
		fail(http.StatusBadRequest,
			fmt.Errorf("trace is not supported with stream: the trace belongs to the JSON response body"), nil)
		return
	}
	if req.Stream && req.Explain {
		fail(http.StatusBadRequest,
			fmt.Errorf("explain is not supported with stream: the plan profile belongs to the JSON response body"), nil)
		return
	}
	nd, ok := s.dbs[req.Database]
	if !ok {
		fail(http.StatusNotFound, fmt.Errorf("unknown database %q", req.Database), nil)
		return
	}
	// One atomic load pins this request's snapshot: concurrent updates swap
	// the pointer but never touch the snapshot value itself, so everything
	// below — evaluation, cache keys, answer rendering — is consistent.
	snap := nd.snap.Load()
	engineName = req.Engine
	if engineName == "" {
		engineName = bvq.EngineBottomUp.String()
	}
	engine, err := bvq.EngineByName(engineName)
	if err != nil {
		fail(http.StatusBadRequest, err, nil)
		return
	}
	backend, err := eval.BackendByName(req.Backend)
	if err != nil {
		fail(http.StatusBadRequest, err, nil)
		return
	}
	if backend != eval.BackendAuto && engine != bvq.EngineCompiled {
		fail(http.StatusBadRequest,
			fmt.Errorf("backend %q requires the compiled engine (got %q)", backend, engineName), nil)
		return
	}
	if req.Explain && engine != bvq.EngineCompiled {
		fail(http.StatusBadRequest,
			fmt.Errorf("explain requires the compiled engine (got %q): only compiled queries have a plan DAG", engineName), nil)
		return
	}
	backendName = backend.String()
	s.metrics.backends.With(backendName).Inc()
	csp := root.Start(trace.SpanCompile)
	pl, planCached, err := s.plans.Load(req.Query)
	csp.End()
	if err != nil {
		fail(http.StatusBadRequest, err, nil)
		return
	}
	if req.Explain && pl.Prepared == nil {
		fail(http.StatusBadRequest,
			fmt.Errorf("explain: query is outside the compilable fragment (no plan DAG)"), nil)
		return
	}
	if req.MaxWidth > 0 && pl.Width > req.MaxWidth {
		fail(http.StatusBadRequest,
			fmt.Errorf("query width %d exceeds bound k=%d", pl.Width, req.MaxWidth), nil)
		return
	}

	ctx := r.Context()
	timeout := s.defaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.maxTimeout > 0 && (timeout == 0 || timeout > s.maxTimeout) {
		timeout = s.maxTimeout
	}
	if timeout > 0 {
		var cancel func()
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	opts := &eval.Options{MaxWidth: req.MaxWidth, Parallelism: req.Parallelism, Backend: backend}
	var traceMu sync.Mutex
	var traceEvents []TraceStageJSON
	var traceTruncated bool
	var reqTracer eval.Tracer
	if req.Trace {
		reqTracer = func(ev eval.TraceEvent) {
			traceMu.Lock()
			if len(traceEvents) < maxTraceEvents {
				traceEvents = append(traceEvents, TraceStageJSON{
					Engine:    ev.Engine,
					Fixpoint:  ev.Fixpoint,
					Op:        ev.Op,
					Stage:     ev.Stage,
					Tuples:    ev.Tuples,
					Delta:     ev.Delta,
					ElapsedUS: float64(ev.Elapsed.Nanoseconds()) / 1000,
				})
			} else {
				traceTruncated = true
			}
			traceMu.Unlock()
		}
	}
	// Explain collects per-binder stage totals through the same tracer hook
	// and a per-node profile through eval.Options.Profile. Neither changes
	// answers, so both are excluded from the result key — but an explained
	// request evaluates fresh anyway (direct below).
	var binderMu sync.Mutex
	var binderStats map[int]*binderAgg
	var explainTracer eval.Tracer
	if req.Explain {
		binderStats = make(map[int]*binderAgg)
		explainTracer = func(ev eval.TraceEvent) {
			if ev.Binder < 0 {
				return
			}
			binderMu.Lock()
			a := binderStats[ev.Binder]
			if a == nil {
				a = &binderAgg{}
				binderStats[ev.Binder] = a
			}
			a.stages++
			if d := ev.Delta; d >= 0 {
				a.delta += int64(d)
			} else {
				a.delta -= int64(d)
			}
			a.ns += ev.Elapsed.Nanoseconds()
			binderMu.Unlock()
		}
		opts.Profile = eval.NewPlanProfile(pl.Prepared.NumNodes())
	}
	opts.Tracer = chainTracers(reqTracer, explainTracer)
	// The tracer is excluded from the result key (it never changes the
	// answer), so traced and untraced runs share cache entries.
	key := cache.ResultKey(snap.fp, engineName, opts, req.Query)

	resp = QueryResponse{
		RequestID:  reqID,
		Database:   req.Database,
		Engine:     engineName,
		Width:      pl.Width,
		Arity:      pl.Query.Arity(),
		PlanCached: planCached,
		TraceID:    lt.ID(),
	}
	if req.Backend != "" {
		resp.Backend = backendName
	}

	if req.Stream {
		status = s.streamQuery(ctx, w, r, &req, nd, snap, pl, engine, engineName, opts, key, &resp, start, root)
		return
	}

	// A traced or explained request must run the evaluation itself: a cache
	// read or a coalesced ride-along would return an answer with someone
	// else's (or no) trace and profile.
	direct = req.NoCache || req.Trace || req.Explain

	var out evalOutcome
	if !direct {
		clsp := root.Start(trace.SpanCacheLookup)
		hit, ok := s.results.Get(key)
		clsp.End()
		if ok {
			resp.ResultCached = true
			out = evalOutcome{answer: hit.Answer, stats: hit.Stats}
		}
	}
	if !resp.ResultCached {
		run := func() (out evalOutcome, err error) {
			// Admission: take an evaluation slot or join the bounded wait
			// queue; overload sheds with errOverloaded → 429, and a deadline
			// firing while queued surfaces as the usual 504.
			asp := root.Start(trace.SpanAdmission)
			if aerr := s.limiter.acquire(ctx); aerr != nil {
				asp.End()
				return evalOutcome{err: aerr}, aerr
			}
			asp.End()
			defer s.limiter.release()
			s.evalsInFlight.Add(1)
			defer s.evalsInFlight.Add(-1)
			// Contain evaluator panics: convert to an error shared with any
			// coalesced followers and answered 500. The deferred slot and
			// gauge releases above still run, so a panicking query leaks
			// nothing.
			defer func() {
				if p := recover(); p != nil {
					s.metrics.panics.Inc()
					s.logger.LogAttrs(ctx, slog.LevelError, "evaluator panic",
						slog.String("request_id", reqID),
						slog.String("query", req.Query),
						slog.Any("panic", p))
					err = fmt.Errorf("%w: %v", errEvalPanic, p)
					out = evalOutcome{err: err}
				}
			}()
			if s.testHookBeforeEval != nil {
				s.testHookBeforeEval()
			}
			// The compiled engine reuses the DAG plan prepared when the
			// query entered the plan cache — compilation is amortized the
			// same way parsing is. A nil Prepared (non-compilable fragment)
			// falls through to the generic path, which recompiles and
			// surfaces the real error.
			var ans *bvq.Relation
			var st *eval.Stats
			var mstate *eval.MaintState
			var eerr error
			// The eval span folds fixpoint-stage events into per-fixpoint
			// child spans; chainTracers drops nil members, so an untraced
			// request keeps a nil Tracer and the engines skip the hook.
			esp := root.Start(trace.SpanEval)
			opts.Tracer = chainTracers(reqTracer, explainTracer, trace.Stages(esp))
			defer esp.End()
			if engine == bvq.EngineCompiled && pl.Prepared != nil {
				// Capture maintenance state alongside the answer: if an
				// update later touches this query's footprint, the cached
				// result can be re-derived by delta-restart instead of being
				// dropped (update.go).
				ans, st, mstate, eerr = eval.EvalPlanCapture(ctx, pl.Prepared, snap.db, opts)
			} else {
				ans, st, eerr = bvq.EvalStatsContext(ctx, pl.Query, snap.db, engine, opts)
			}
			// Fold this run's work — complete or partial — into the
			// aggregate gauges before anything is shared or cached.
			if st != nil {
				s.subformulaEvals.Add(st.SubformulaEvals)
				s.fixIterations.Add(st.FixIterations)
				s.tuplesTouched.Add(st.TuplesTouched)
				s.repSwitches.Add(st.RepSwitches)
				s.acyclicFast.Add(st.AcyclicFastPath)
			}
			if eerr == nil && !req.NoCache {
				tracked := &cache.Tracked{
					Key:    key,
					Engine: engineName,
					Query:  req.Query,
					// A sanitized copy: the key-relevant fields only, never
					// the live request Options (whose Tracer must not outlive
					// this run).
					Opts: &eval.Options{MaxWidth: opts.MaxWidth, Backend: opts.Backend,
						PFPBudget: opts.PFPBudget, PFPCycle: opts.PFPCycle, SparseBudget: opts.SparseBudget},
				}
				if pl.Prepared != nil && pl.Prepared.Maint != nil {
					// The footprint is a property of the query, so it lets
					// results from ANY engine ride out disjoint deltas;
					// maintenance state is captured by compiled runs only.
					tracked.Footprint = pl.Prepared.Maint.Rels
					if engine == bvq.EngineCompiled {
						tracked.Plan = pl.Prepared
						tracked.State = mstate // nil when the run took a sparse route
					}
				}
				s.storeResult(nd, snap, key, cache.Result{Answer: ans, Stats: st}, tracked)
			}
			return evalOutcome{answer: ans, stats: st, err: eerr}, eerr
		}
		if direct {
			out, _ = run()
		} else {
			var shared bool
			out, shared, err = s.flight.Do(ctx, key, run)
			if shared {
				resp.Coalesced = true
				s.coalesced.Add(1)
			}
			// A follower abandoned by its own context gets a bare ctx error
			// with no outcome; fold it into the same error path.
			if out.err == nil && err != nil {
				out.err = err
			}
		}
	}
	if out.err != nil {
		code := s.evalErrorCode(w, out.err)
		var partial *StatsJSON
		if code == http.StatusGatewayTimeout {
			partial = statsJSON(out.stats)
		}
		fail(code, out.err, partial)
		return
	}

	resp.Stats = statsJSON(out.stats)
	if req.Explain {
		resp.Explain = s.buildExplain(pl.Prepared, snap.db, opts, out.stats, binderStats, &binderMu)
	}
	// Count is always the FULL answer cardinality — limit/offset window the
	// answer field only, so a paging client never loses the total.
	resp.Count = out.answer.Len()
	xsp := root.Start(trace.SpanExtract)
	if resp.Arity == 0 {
		truth := out.answer.Len() > 0
		resp.Truth = &truth
		resp.Answer = [][]int{}
	} else {
		tuples := out.answer.Tuples() // canonical sorted order: deterministic bodies
		if req.Offset > 0 {
			if req.Offset >= len(tuples) {
				tuples = nil
			} else {
				tuples = tuples[req.Offset:]
			}
		}
		if req.Limit > 0 && req.Limit < len(tuples) {
			tuples = tuples[:req.Limit]
		}
		resp.Answer = make([][]int, len(tuples))
		for i, t := range tuples {
			resp.Answer[i] = renderTuple(t, snap.db, req.Indices)
		}
	}
	xsp.End()
	if req.Trace {
		traceMu.Lock()
		resp.Trace = traceEvents
		resp.TraceTruncated = traceTruncated
		traceMu.Unlock()
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// retryAfterValue renders one shed response's Retry-After header: the
// configured floor plus bounded uniform jitter. A fixed value would have
// every client a front tier shed at the same instant retry at the same
// instant — the herd just moves one Retry-After into the future.
func (s *Server) retryAfterValue() string {
	v := s.retryAfterBase
	if s.retryAfterJitter > 0 {
		v += rand.Int64N(s.retryAfterJitter + 1)
	}
	return strconv.FormatInt(v, 10)
}

// evalErrorCode maps an evaluation error to its response status, applying
// the per-class side effects on the way: shed counting plus the Retry-After
// header for 429, and the timeout counter for 504 — which also carries
// Retry-After when the deadline fired while queued for a slot, since that
// 504 is overload, not evaluation cost.
func (s *Server) evalErrorCode(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, errOverloaded):
		s.metrics.shed.Inc()
		w.Header().Set("Retry-After", s.retryAfterValue())
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		if errors.Is(err, errQueueTimeout) {
			w.Header().Set("Retry-After", s.retryAfterValue())
		}
		s.timeouts.Add(1)
		return http.StatusGatewayTimeout
	case errors.Is(err, errEvalPanic) || errors.Is(err, cache.ErrPanicked):
		return http.StatusInternalServerError
	default:
		return http.StatusUnprocessableEntity
	}
}

// fail writes an error response and counts it.
func (s *Server) fail(w http.ResponseWriter, code int, err error, partial *StatsJSON, reqID string) {
	s.errorsN.Add(1)
	writeJSON(w, code, ErrorResponse{Error: err.Error(), RequestID: reqID, Stats: partial})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the client is gone if this fails; nothing to do
}

// StatsResponse is the /stats body.
//
// Counter semantics, pinned (see OPERATIONS.md and the regression tests):
// Errors counts every non-200 response, so it includes the 504s counted in
// Timeouts and the 429s counted in Shed — those are subsets, not disjoint
// buckets. errors − timeouts − shed approximates client-side mistakes.
type StatsResponse struct {
	UptimeSeconds float64            `json:"uptime_seconds"`
	Build         BuildInfoJSON      `json:"build"`
	Databases     map[string]DBStats `json:"databases"`
	Queries       int64              `json:"queries"`
	Errors        int64              `json:"errors"`
	Timeouts      int64              `json:"timeouts"`
	Shed          int64              `json:"shed"`
	Panics        int64              `json:"panics"`
	SlowQueries   int64              `json:"slow_queries"`
	Coalesced     int64              `json:"coalesced"`
	// Streams counts /query requests answered as NDJSON streams;
	// StreamDisconnects counts those cut mid-answer by the client going
	// away (a disconnect is not an error: it is not counted in Errors).
	Streams           int64              `json:"streams"`
	StreamDisconnects int64              `json:"stream_disconnects"`
	InFlight          InFlightStats      `json:"in_flight"`
	PlanCache         CacheStats         `json:"plan_cache"`
	ResultCache       CacheStats         `json:"result_cache"`
	Churn             ChurnStats         `json:"churn"`
	Eval              AggregateEvalStats `json:"eval"`
}

// ChurnStats reports how updates and the result cache interact: per cached
// entry at each effective update, exactly one of carried / maintained /
// invalidated is counted (entries already evicted by the LRU count nowhere).
type ChurnStats struct {
	// Updates counts effective updates accepted on /db/{name}/update
	// (no-ops excluded).
	Updates int64 `json:"updates"`
	// Carried counts results rekeyed to a new snapshot untouched because
	// their dependency footprint was disjoint from the delta.
	Carried int64 `json:"carried"`
	// Maintained counts results re-derived by delta-restart maintenance
	// instead of being dropped.
	Maintained int64 `json:"maintained"`
	// Invalidated counts results dropped; the per-reason split is on
	// /metrics (bvqd_cache_invalidations_total).
	Invalidated int64 `json:"invalidated"`
}

// DBStats describes one served database snapshot.
type DBStats struct {
	DomainSize  int      `json:"domain_size"`
	Relations   []string `json:"relations"`
	Fingerprint string   `json:"fingerprint"`
	// Version counts the effective updates applied since the database was
	// loaded (0 = never updated).
	Version uint64 `json:"version"`
}

// InFlightStats are the live gauges.
type InFlightStats struct {
	// Requests counts /query requests currently being handled; Evals
	// counts evaluations actually running. Requests > Evals means
	// single-flight dedup is coalescing a thundering herd, or the
	// admission controller is queueing — Queued tells them apart.
	Requests int64 `json:"requests"`
	Evals    int64 `json:"evals"`
	Queued   int64 `json:"queued"`
}

// CacheStats reports one cache's occupancy and cumulative counters.
type CacheStats struct {
	Size      int   `json:"size"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// AggregateEvalStats accumulates engine work across all evaluations,
// including the partial work of cancelled runs. The last three fields are
// sparse-backend work: tuples written by sparse operations, hybrid-frontier
// representation conversions, and queries answered by the acyclic fast path.
type AggregateEvalStats struct {
	SubformulaEvals int64 `json:"subformula_evals"`
	FixIterations   int64 `json:"fix_iterations"`
	TuplesTouched   int64 `json:"tuples_touched"`
	RepSwitches     int64 `json:"rep_switches"`
	AcyclicFastPath int64 `json:"acyclic_fast_path"`
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() StatsResponse {
	ph, pm, pe := s.plans.Counters()
	rh, rm, re := s.results.Counters()
	dbs := make(map[string]DBStats, len(s.dbs))
	for name, nd := range s.dbs {
		snap := nd.snap.Load()
		rels := snap.db.Names()
		sort.Strings(rels)
		dbs[name] = DBStats{
			DomainSize:  snap.db.Size(),
			Relations:   rels,
			Fingerprint: fmt.Sprintf("%016x", snap.fp),
			Version:     snap.db.Version(),
		}
	}
	return StatsResponse{
		UptimeSeconds:     time.Since(s.start).Seconds(),
		Build:             buildInfo(),
		Databases:         dbs,
		Queries:           s.queries.Load(),
		Errors:            s.errorsN.Load(),
		Timeouts:          s.timeouts.Load(),
		Shed:              s.metrics.shed.Value(),
		Panics:            s.metrics.panics.Value(),
		SlowQueries:       s.metrics.slow.Value(),
		Coalesced:         s.coalesced.Load(),
		Streams:           s.streams.Load(),
		StreamDisconnects: s.streamDisconnects.Load(),
		InFlight: InFlightStats{
			Requests: s.requestsInFlight.Load(),
			Evals:    s.evalsInFlight.Load(),
			Queued:   s.limiter.queueDepth(),
		},
		PlanCache:   CacheStats{Size: s.plans.Len(), Hits: ph, Misses: pm, Evictions: pe},
		ResultCache: CacheStats{Size: s.results.Len(), Hits: rh, Misses: rm, Evictions: re},
		Churn: ChurnStats{
			Updates:     s.updates.Load(),
			Carried:     s.carriedResults.Load(),
			Maintained:  s.maintainedResults.Load(),
			Invalidated: s.invalidatedResults.Load(),
		},
		Eval: AggregateEvalStats{
			SubformulaEvals: s.subformulaEvals.Load(),
			FixIterations:   s.fixIterations.Load(),
			TuplesTouched:   s.tuplesTouched.Load(),
			RepSwitches:     s.repSwitches.Load(),
			AcyclicFastPath: s.acyclicFast.Load(),
		},
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
