package server

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// errOverloaded is returned by limiter.acquire when both the concurrency
// slots and the wait queue are full. The handler maps it to 429 with a
// Retry-After header — load shedding, not failure.
var errOverloaded = errors.New("server: overloaded: all evaluation slots busy and wait queue full")

// errQueueTimeout wraps the context error of a caller whose deadline fired
// while waiting in the admission queue. The request never started
// evaluating — it died waiting for capacity — so the handler keeps the usual
// 504 mapping (the wrapped context error still matches errors.Is) but also
// attaches a Retry-After header: to a retrying front tier this response is
// overload, and retrying it immediately would herd.
var errQueueTimeout = errors.New("server: deadline fired while queued for an evaluation slot")

// limiter is the admission controller in front of evaluation: at most
// cap(sem) evaluations run concurrently, at most maxQueue callers wait for a
// slot, and everyone beyond that is shed immediately. A nil *limiter is
// valid and admits everything — the unlimited default.
//
// The queue is a counted semaphore wait, not a FIFO: Go's runtime wakes
// channel waiters in near-FIFO order, which is fair enough for load
// shedding and avoids a second lock on the hot path.
type limiter struct {
	sem      chan struct{}
	maxQueue int64
	queued   atomic.Int64
}

// newLimiter builds a limiter admitting maxConcurrent evaluations with a
// wait queue of maxQueue. maxConcurrent <= 0 means unlimited (returns nil);
// maxQueue <= 0 defaults to 2×maxConcurrent.
func newLimiter(maxConcurrent, maxQueue int) *limiter {
	if maxConcurrent <= 0 {
		return nil
	}
	if maxQueue <= 0 {
		maxQueue = 2 * maxConcurrent
	}
	return &limiter{sem: make(chan struct{}, maxConcurrent), maxQueue: int64(maxQueue)}
}

// acquire takes an evaluation slot, waiting in the bounded queue if none is
// free. It returns errOverloaded when the queue is already full, and
// ctx.Err() when the context fires while queued. A nil error means the
// caller holds a slot and must release() it.
func (l *limiter) acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	select {
	case l.sem <- struct{}{}:
		return nil
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		return errOverloaded
	}
	defer l.queued.Add(-1)
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: %w", errQueueTimeout, ctx.Err())
	}
}

// release returns a slot taken by a successful acquire.
func (l *limiter) release() {
	if l == nil {
		return
	}
	<-l.sem
}

// queueDepth reports how many callers are currently waiting for a slot.
func (l *limiter) queueDepth() int64 {
	if l == nil {
		return 0
	}
	return l.queued.Load()
}

// inUse reports how many slots are currently held.
func (l *limiter) inUse() int64 {
	if l == nil {
		return 0
	}
	return int64(len(l.sem))
}
