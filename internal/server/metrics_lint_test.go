package server

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// metricTokenRE matches a metric family mention in OPERATIONS.md, including
// brace-expansion shorthand (`bvqd_plan_cache_{hits,misses,evictions}_total`)
// and label annotations (`bvqd_responses_total{code}`).
var metricTokenRE = regexp.MustCompile(`bvqd_[a-z0-9_]*(?:\{[a-z0-9_,]+\}[a-z0-9_]*)*`)

// expandDocToken turns one matched token into the family names it documents:
// a trailing `{label}` is an annotation and is stripped; an interior
// `{a,b,c}` expands into one name per alternative.
func expandDocToken(tok string) []string {
	open := strings.Index(tok, "{")
	if open < 0 {
		return []string{tok}
	}
	close := strings.Index(tok, "}")
	head, alts, tail := tok[:open], tok[open+1:close], tok[close+1:]
	if tail == "" && !strings.Contains(alts, ",") {
		return []string{head} // label annotation, not expansion
	}
	var out []string
	for _, a := range strings.Split(alts, ",") {
		out = append(out, expandDocToken(head+a+tail)...)
	}
	return out
}

// TestMetricsDocumented is the metrics-documentation lint: every family the
// server registers must appear in OPERATIONS.md, and every bvqd_* family
// OPERATIONS.md mentions must actually be registered — so the reference
// section cannot drift from the code in either direction.
func TestMetricsDocumented(t *testing.T) {
	s, _ := newTestServer(t, Config{TraceBufferSize: 16})
	doc, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := make(map[string]bool)
	for _, tok := range metricTokenRE.FindAllString(string(doc), -1) {
		for _, name := range expandDocToken(tok) {
			documented[name] = true
		}
	}
	registered := make(map[string]bool)
	for _, name := range s.metrics.registry.Families() {
		registered[name] = true
		if !documented[name] {
			t.Errorf("metric %s is registered but not documented in OPERATIONS.md", name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("OPERATIONS.md documents %s but the server does not register it", name)
		}
	}
}
