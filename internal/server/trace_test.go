package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

const reachLFP = "(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)"

func getJSON(t testing.TB, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, v); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	}
	return resp.StatusCode
}

func TestLifecycleTraceRecorded(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceBufferSize: 16})
	code, resp, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: reachLFP, Engine: "compiled"})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.TraceID) != 32 {
		t.Fatalf("trace_id = %q, want a 32-hex W3C trace id", resp.TraceID)
	}

	var list struct {
		Recorded int64 `json:"recorded"`
		Traces   []struct {
			TraceID string `json:"trace_id"`
			Spans   int    `json:"spans"`
		} `json:"traces"`
	}
	if code := getJSON(t, ts.URL+"/debug/traces", &list); code != http.StatusOK {
		t.Fatalf("/debug/traces status %d", code)
	}
	if list.Recorded != 1 || len(list.Traces) != 1 || list.Traces[0].TraceID != resp.TraceID {
		t.Fatalf("trace list = %+v, want the one request's trace", list)
	}

	var v trace.View
	if code := getJSON(t, ts.URL+"/debug/traces/"+resp.TraceID, &v); code != http.StatusOK {
		t.Fatalf("trace detail status %d", code)
	}
	names := map[string]bool{}
	for _, sp := range v.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{trace.SpanRequest, trace.SpanCompile, trace.SpanAdmission,
		trace.SpanEval, trace.SpanFixpoint, trace.SpanExtract} {
		if !names[want] {
			t.Fatalf("trace missing span %q; got %v", want, names)
		}
	}
	if code := getJSON(t, ts.URL+"/debug/traces/"+strings.Repeat("0", 32), &v); code != http.StatusNotFound {
		t.Fatalf("unknown trace id: status %d, want 404", code)
	}
}

func TestTracesDisabledWithoutBuffer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, resp, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop})
	if code != http.StatusOK || resp.TraceID != "" {
		t.Fatalf("status %d trace_id %q, want 200 and no trace id when the recorder is off", code, resp.TraceID)
	}
	var v any
	if code := getJSON(t, ts.URL+"/debug/traces", &v); code != http.StatusNotFound {
		t.Fatalf("/debug/traces status %d, want 404 when disabled", code)
	}
}

func TestTraceSampling(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceBufferSize: 16, TraceSample: 2})
	traced := 0
	for i := 0; i < 4; i++ {
		code, resp, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop, NoCache: true})
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if resp.TraceID != "" {
			traced++
		}
	}
	if traced != 2 {
		t.Fatalf("traced %d of 4 requests at sample rate 2, want 2", traced)
	}
}

func TestTraceparentPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceBufferSize: 16})
	wantID := strings.Repeat("ab", 16)
	body, _ := json.Marshal(QueryRequest{Database: "graph", Query: twoHop})
	req, err := http.NewRequest("POST", ts.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+wantID+"-00f067aa0ba902b7-01")
	req.Header.Set("X-Request-Id", "upstream-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.TraceID != wantID {
		t.Fatalf("trace_id = %q, want the client's %q", qr.TraceID, wantID)
	}
	if qr.RequestID != "upstream-42" || resp.Header.Get("X-Request-Id") != "upstream-42" {
		t.Fatalf("request id = %q / header %q, want the client's upstream-42",
			qr.RequestID, resp.Header.Get("X-Request-Id"))
	}
	tp := resp.Header.Get("traceparent")
	gotID, _, ok := trace.ParseTraceparent(tp)
	if !ok || gotID != wantID {
		t.Fatalf("response traceparent = %q, want a valid header continuing trace %s", tp, wantID)
	}
}

// TestSlowQueryLogFields is the regression test for the slow-log record:
// it must carry cache outcome, backend, trace id and the top spans, not
// just the query and its latency.
func TestSlowQueryLogFields(t *testing.T) {
	var buf bytes.Buffer
	_, ts := newTestServer(t, Config{
		TraceBufferSize: 16,
		SlowQuery:       time.Nanosecond, // everything is slow
		Logger:          slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	code, resp, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: reachLFP, Engine: "compiled"})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	line := buf.String()
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.SplitN(line, "\n", 2)[0]), &rec); err != nil {
		t.Fatalf("parsing slow-query log %q: %v", line, err)
	}
	if rec["msg"] != "slow query" {
		t.Fatalf("log msg = %v", rec["msg"])
	}
	if rec["cache"] != "miss" {
		t.Fatalf("cache = %v, want miss on first evaluation", rec["cache"])
	}
	if rec["backend"] != "auto" {
		t.Fatalf("backend = %v, want auto", rec["backend"])
	}
	if rec["trace_id"] != resp.TraceID {
		t.Fatalf("trace_id = %v, want %s", rec["trace_id"], resp.TraceID)
	}
	spans, _ := rec["spans"].(string)
	if !strings.Contains(spans, "eval=") {
		t.Fatalf("spans = %q, want the top spans with durations (eval=...)", spans)
	}

	// Second identical request: a cache hit must log cache=hit.
	buf.Reset()
	if code, _, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: reachLFP, Engine: "compiled"}); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if err := json.Unmarshal([]byte(strings.SplitN(buf.String(), "\n", 2)[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["cache"] != "hit" {
		t.Fatalf("cache = %v on repeat request, want hit", rec["cache"])
	}
}

func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var v VersionResponse
	if code := getJSON(t, ts.URL+"/version", &v); code != http.StatusOK {
		t.Fatalf("/version status %d", code)
	}
	if v.Service != "bvqd" || !strings.HasPrefix(v.Build.GoVersion, "go") {
		t.Fatalf("version = %+v, want service bvqd and a go version", v)
	}
	st := getStats(t, ts)
	if st.Build.GoVersion != v.Build.GoVersion {
		t.Fatalf("/stats build %+v != /version build %+v", st.Build, v.Build)
	}
}

func TestExplainMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, resp, _ := postQuery(t, ts, QueryRequest{
		Database: "graph", Query: reachLFP, Engine: "compiled", Explain: true})
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	ex := resp.Explain
	if ex == nil {
		t.Fatal("explain requested but response has no explain payload")
	}
	if !ex.Executed || ex.Route == "" || ex.Width == 0 || ex.NumNodes == 0 {
		t.Fatalf("explain = executed=%v route=%q width=%d nodes=%d, want an executed annotated plan",
			ex.Executed, ex.Route, ex.Width, ex.NumNodes)
	}
	if len(ex.Nodes) != ex.NumNodes {
		t.Fatalf("explain has %d node views for %d plan nodes", len(ex.Nodes), ex.NumNodes)
	}
	profiled := 0
	for _, n := range ex.Nodes {
		if n.Evals > 0 {
			profiled++
		}
	}
	if profiled == 0 {
		t.Fatal("no plan node recorded any evaluations in the profile")
	}
	if len(ex.Binders) == 0 {
		t.Fatal("LFP query explain has no binder summaries")
	}
	if b := ex.Binders[0]; b.Stages == 0 {
		t.Fatalf("binder 0 ran no fixpoint stages: %+v", b)
	}

	// Explain results never come from or land in the result cache.
	if resp.ResultCached {
		t.Fatal("explain response claims a cached result")
	}
	code, resp, _ = postQuery(t, ts, QueryRequest{
		Database: "graph", Query: reachLFP, Engine: "compiled", Explain: true})
	if code != http.StatusOK || resp.ResultCached || resp.Explain == nil {
		t.Fatalf("repeat explain: code=%d cached=%v explain=%v", code, resp.ResultCached, resp.Explain != nil)
	}
}

func TestExplainRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, _, eresp := postQuery(t, ts, QueryRequest{
		Database: "graph", Query: twoHop, Engine: "compiled", Explain: true, Stream: true})
	if code != http.StatusBadRequest {
		t.Fatalf("explain+stream: status %d error %q, want 400", code, eresp.Error)
	}
	code, _, eresp = postQuery(t, ts, QueryRequest{
		Database: "graph", Query: twoHop, Engine: "bottomup", Explain: true})
	if code != http.StatusBadRequest {
		t.Fatalf("explain with bottomup engine: status %d error %q, want 400", code, eresp.Error)
	}
}
