package server

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// BuildInfoJSON identifies the running binary: the Go toolchain it was built
// with and, when the binary was built inside a git checkout, the VCS
// revision and commit time. Served on GET /version and embedded in /stats so
// fleet rollouts are attributable in scrapes.
type BuildInfoJSON struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	// Dirty marks a build from a checkout with uncommitted changes.
	Dirty     bool   `json:"dirty,omitempty"`
	BuildTime string `json:"build_time,omitempty"`
	Module    string `json:"module,omitempty"`
}

var (
	buildInfoOnce   sync.Once
	buildInfoCached BuildInfoJSON
)

// buildInfo reads the binary's embedded build metadata once. Binaries built
// outside a VCS checkout (or with -buildvcs=false) report the Go version
// only.
func buildInfo() BuildInfoJSON {
	buildInfoOnce.Do(func() {
		buildInfoCached = BuildInfoJSON{GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfoCached.Module = bi.Main.Path
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfoCached.Revision = s.Value
			case "vcs.modified":
				buildInfoCached.Dirty = s.Value == "true"
			case "vcs.time":
				buildInfoCached.BuildTime = s.Value
			}
		}
	})
	return buildInfoCached
}

// VersionResponse is the GET /version body.
type VersionResponse struct {
	Service       string        `json:"service"`
	Build         BuildInfoJSON `json:"build"`
	UptimeSeconds float64       `json:"uptime_seconds"`
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, VersionResponse{
		Service:       "bvqd",
		Build:         buildInfo(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}
