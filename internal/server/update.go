package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"repro/internal/cache"
	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/relation"
)

// UpdateRequest is the /db/{name}/update request body: a batch of tuple-level
// inserts and deletes applied as one atomic snapshot transition.
type UpdateRequest struct {
	// Updates lists per-relation changes. Within the whole batch, deletes
	// apply before inserts, so a tuple in both lists ends up present.
	Updates []UpdateEntry `json:"updates"`
	// Indices interprets tuple components as domain indices 0..n−1 instead
	// of raw domain values (the /query "indices" convention).
	Indices bool `json:"indices,omitempty"`
	// BaseVersion, when set, makes the update conditional: if the database's
	// current version differs, nothing is applied and the response is 409
	// (optimistic concurrency for read-modify-write clients).
	BaseVersion *uint64 `json:"base_version,omitempty"`
}

// UpdateEntry is one relation's changes in an UpdateRequest.
type UpdateEntry struct {
	Relation string  `json:"relation"`
	Insert   [][]int `json:"insert,omitempty"`
	Delete   [][]int `json:"delete,omitempty"`
}

// UpdateResponse is the /db/{name}/update success body.
type UpdateResponse struct {
	RequestID string `json:"request_id"`
	Database  string `json:"database"`
	// FromVersion and Version are the snapshot versions before and after;
	// equal (with Noop set) when the batch changed nothing effectively.
	FromVersion uint64 `json:"from_version"`
	Version     uint64 `json:"version"`
	// Fingerprint is the new snapshot's content fingerprint — the value
	// /query result-cache keys are minted against.
	Fingerprint string `json:"fingerprint"`
	Noop        bool   `json:"noop,omitempty"`
	// Relations lists the effectively changed relations; Inserted/Deleted
	// count effective tuple changes (no-op inserts/deletes excluded).
	Relations []string `json:"relations"`
	Inserted  int      `json:"inserted"`
	Deleted   int      `json:"deleted"`
	// Cache reports the result-cache triage this update performed.
	Cache     UpdateCacheJSON `json:"cache"`
	ElapsedMS float64         `json:"elapsed_ms"`
}

// UpdateCacheJSON is the per-update result-cache triage: every tracked entry
// was carried (footprint disjoint from the delta), maintained (re-derived by
// delta-restart) or invalidated (dropped).
type UpdateCacheJSON struct {
	Carried     int `json:"carried"`
	Maintained  int `json:"maintained"`
	Invalidated int `json:"invalidated"`
}

// handleUpdate applies a tuple-level update batch to a served database:
// validate the wire payload (400 naming the offending field), check the
// optional base_version (409 on mismatch), build the new snapshot
// (database.Apply), triage the result cache against the delta, and only then
// swap the snapshot pointer — queries admitted before the swap finish on the
// old snapshot, queries after it see the new one, and nobody ever observes a
// half-updated cache for the new fingerprint.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqID := fmt.Sprintf("%08x", s.reqSeq.Add(1))
	w.Header().Set("X-Request-Id", reqID)

	name := r.PathValue("name")
	fail := func(code int, err error) {
		s.metrics.statuses.With(statusLabel(code)).Inc()
		s.fail(w, code, err, nil, reqID)
	}

	nd, ok := s.dbs[name]
	if !ok {
		fail(http.StatusNotFound, fmt.Errorf("unknown database %q", name))
		return
	}

	var req UpdateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		fail(http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Updates) == 0 {
		fail(http.StatusBadRequest, fmt.Errorf("updates: must contain at least one entry"))
		return
	}
	// Validate against the current snapshot. Signature, domain and index map
	// are fixed per lineage, so a concurrent update cannot un-validate what
	// passes here.
	ups, err := convertUpdates(nd.snap.Load().db, req.Updates, req.Indices)
	if err != nil {
		fail(http.StatusBadRequest, err)
		return
	}

	// The snapshot lock serializes updates with each other and with result
	// registration: the triage below reasons about exactly one delta.
	nd.mu.Lock()
	defer nd.mu.Unlock()
	snap := nd.snap.Load()
	if req.BaseVersion != nil && *req.BaseVersion != snap.db.Version() {
		fail(http.StatusConflict, fmt.Errorf("base_version %d does not match current version %d",
			*req.BaseVersion, snap.db.Version()))
		return
	}
	next, delta, err := snap.db.Apply(ups)
	if err != nil {
		// Unreachable after convertUpdates, kept as a guard.
		fail(http.StatusBadRequest, err)
		return
	}

	resp := UpdateResponse{
		RequestID:   reqID,
		Database:    name,
		FromVersion: delta.FromVersion,
		Version:     delta.Version,
		Relations:   delta.Relations(),
	}
	resp.Inserted, resp.Deleted = delta.Counts()
	if delta.Empty() {
		resp.Noop = true
		resp.Fingerprint = fmt.Sprintf("%016x", snap.fp)
		resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		s.metrics.statuses.With("200").Inc()
		writeJSON(w, http.StatusOK, resp)
		return
	}

	newSnap := &dbSnap{db: next, fp: next.Fingerprint()}
	resp.Cache = s.triageResults(r, nd, newSnap, delta)
	// Swap last: the cache for the new fingerprint is fully populated before
	// any query can mint a key against it — no cold-cache window.
	nd.snap.Store(newSnap)

	s.updates.Add(1)
	s.metrics.updates.Inc()
	resp.Fingerprint = fmt.Sprintf("%016x", newSnap.fp)
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	s.metrics.statuses.With("200").Inc()
	s.logger.LogAttrs(r.Context(), slog.LevelInfo, "database updated",
		slog.String("request_id", reqID),
		slog.String("database", name),
		slog.Uint64("version", resp.Version),
		slog.Int("inserted", resp.Inserted),
		slog.Int("deleted", resp.Deleted),
		slog.Int("carried", resp.Cache.Carried),
		slog.Int("maintained", resp.Cache.Maintained),
		slog.Int("invalidated", resp.Cache.Invalidated))
	writeJSON(w, http.StatusOK, resp)
}

// convertUpdates validates the wire entries against db and converts them to
// database.Update values (raw domain values). Errors name the offending wire
// field, e.g. "updates[1].insert[0]: ...".
func convertUpdates(db *database.Database, entries []UpdateEntry, indices bool) ([]database.Update, error) {
	out := make([]database.Update, 0, len(entries))
	for i, e := range entries {
		if e.Relation == "" {
			return nil, fmt.Errorf("updates[%d].relation: missing relation name", i)
		}
		arity, err := db.Arity(e.Relation)
		if err != nil {
			return nil, fmt.Errorf("updates[%d].relation: unknown relation %q", i, e.Relation)
		}
		conv := func(field string, rows [][]int) ([]relation.Tuple, error) {
			ts := make([]relation.Tuple, 0, len(rows))
			for j, row := range rows {
				if len(row) != arity {
					return nil, fmt.Errorf("updates[%d].%s[%d]: relation %q has arity %d, got %d components",
						i, field, j, e.Relation, arity, len(row))
				}
				t := make(relation.Tuple, len(row))
				for c, v := range row {
					if indices {
						if v < 0 || v >= db.Size() {
							return nil, fmt.Errorf("updates[%d].%s[%d]: index %d out of range [0,%d)",
								i, field, j, v, db.Size())
						}
						t[c] = db.Value(v)
						continue
					}
					if _, ok := db.Index(v); !ok {
						return nil, fmt.Errorf("updates[%d].%s[%d]: value %d is not in the domain (domains are fixed per database)",
							i, field, j, v)
					}
					t[c] = v
				}
				ts = append(ts, t)
			}
			return ts, nil
		}
		up := database.Update{Relation: e.Relation}
		if up.Insert, err = conv("insert", e.Insert); err != nil {
			return nil, err
		}
		if up.Delete, err = conv("delete", e.Delete); err != nil {
			return nil, err
		}
		out = append(out, up)
	}
	return out, nil
}

// triageResults walks every tracked result of nd and decides its fate under
// delta, populating the cache for the new snapshot BEFORE it is swapped in.
// Called with nd.mu held.
func (s *Server) triageResults(r *http.Request, nd *namedDB, newSnap *dbSnap, delta *database.Delta) UpdateCacheJSON {
	var out UpdateCacheJSON
	changed := delta.Relations()
	// Rotate takes the tracked entries and advances the index's generation in
	// one atomic step: from here the index rejects registrations minted
	// against the outgoing fingerprint — the stale-result guard for evals
	// racing this update (and the next one).
	tracked := s.index.Rotate(nd.name, newSnap.fp)
	drop := func(t *cache.Tracked, reason string) {
		s.results.Remove(t.Key)
		s.invalidatedResults.Add(1)
		s.metrics.invalidations.With(reason).Inc()
		out.Invalidated++
	}
	for _, t := range tracked {
		res, live := s.results.Get(t.Key)
		if !live {
			continue // evicted since registration: nothing to triage
		}
		if !t.Overlaps(changed) {
			// Untouched footprint: the answer is provably unchanged, move the
			// entry to the new fingerprint.
			s.results.Remove(t.Key)
			t.Key = cache.ResultKey(newSnap.fp, t.Engine, t.Opts, t.Query)
			s.results.Put(t.Key, res)
			s.index.Register(nd.name, newSnap.fp, t)
			s.carriedResults.Add(1)
			out.Carried++
			continue
		}
		if t.Plan == nil || t.State == nil {
			reason := "no_plan"
			if t.Footprint == nil {
				reason = "unknown_footprint"
			}
			drop(t, reason)
			continue
		}
		if !eval.CanMaintain(t.Plan, delta) {
			drop(t, "delta_polarity")
			continue
		}
		// Eager delta-restart maintenance against the new snapshot, while
		// queries still run on the old one: the maintained answer is in the
		// cache before the swap, so the entry never goes cold.
		ans, st, state, err := eval.EvalPlanMaintained(r.Context(), t.Plan, newSnap.db, t.Opts, t.State)
		if err != nil {
			drop(t, "maintenance_failed")
			continue
		}
		if st != nil {
			s.subformulaEvals.Add(st.SubformulaEvals)
			s.fixIterations.Add(st.FixIterations)
		}
		s.results.Remove(t.Key)
		t.Key = cache.ResultKey(newSnap.fp, t.Engine, t.Opts, t.Query)
		t.State = state
		s.results.Put(t.Key, cache.Result{Answer: ans, Stats: st})
		s.index.Register(nd.name, newSnap.fp, t)
		s.maintainedResults.Add(1)
		s.metrics.maintained.Inc()
		out.Maintained++
	}
	return out
}

// storeResult caches a finished evaluation and registers its churn tracking,
// unless the database snapshot moved on while the evaluation ran — a stale
// entry must not enter the index, where the next update would carry or
// maintain it from a baseline that missed a delta.
func (s *Server) storeResult(nd *namedDB, snap *dbSnap, key string, res cache.Result, t *cache.Tracked) {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	if nd.snap.Load().fp != snap.fp {
		return // superseded mid-evaluation; the key is already unreachable
	}
	s.results.Put(key, res)
	s.index.Register(nd.name, snap.fp, t)
}
