package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/database"
)

// graphDB is the four-element path 10→20→30→40 with P = {10}.
func graphDB(t testing.TB) *database.Database {
	t.Helper()
	db, err := database.Parse(`
domain = {10, 20, 30, 40}
E/2 = {(10, 20), (20, 30), (30, 40)}
P/1 = {(10)}
`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// orderedDB is an n-element ordered domain with no other relations — the
// substrate of the exponentially long binary-counter PFP run.
func orderedDB(t testing.TB, n int) *database.Database {
	t.Helper()
	b := database.NewBuilder()
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	odb, err := db.WithOrder()
	if err != nil {
		t.Fatal(err)
	}
	return odb
}

// counterText is the binary-increment PFP query: 2^n stages over an
// n-element ordered domain, the canonical slow query.
const counterText = `(x). [pfp S(x). (!S(x) & forall y. (Less(y, x) -> (exists x. x = y & S(x)))) | (S(x) & exists y. (Less(y, x) & !(exists x. x = y & S(x))))](x)`

const twoHop = "(x, y). exists z. E(x, z) & E(z, y)"

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Databases == nil {
		cfg.Databases = map[string]*database.Database{"graph": graphDB(t)}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postQuery(t testing.TB, ts *httptest.Server, req QueryRequest) (int, QueryResponse, ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	code, raw := postRaw(t, ts, body)
	var ok QueryResponse
	var bad ErrorResponse
	if code == http.StatusOK {
		if err := json.Unmarshal(raw, &ok); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	} else if err := json.Unmarshal(raw, &bad); err != nil {
		t.Fatalf("decoding error body %q: %v", raw, err)
	}
	return code, ok, bad
}

func postRaw(t testing.TB, ts *httptest.Server, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func getStats(t testing.TB, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestQueryBasic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, resp, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop})
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.Width != 3 || resp.Arity != 2 || resp.Count != 2 {
		t.Fatalf("resp = %+v", resp)
	}
	want := [][]int{{10, 30}, {20, 40}}
	if fmt.Sprint(resp.Answer) != fmt.Sprint(want) {
		t.Fatalf("answer = %v, want %v", resp.Answer, want)
	}
	if resp.PlanCached || resp.ResultCached || resp.Coalesced {
		t.Fatalf("first request claims caching: %+v", resp)
	}
	if resp.Stats == nil || resp.Stats.SubformulaEvals == 0 {
		t.Fatalf("missing stats: %+v", resp.Stats)
	}
}

func TestQueryIndicesAndBoolean(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, resp, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: "(x). P(x)", Indices: true})
	if code != http.StatusOK || fmt.Sprint(resp.Answer) != "[[0]]" {
		t.Fatalf("indices answer = %v (code %d)", resp.Answer, code)
	}
	code, resp, _ = postQuery(t, ts, QueryRequest{Database: "graph", Query: "(). exists x. P(x)"})
	if code != http.StatusOK || resp.Truth == nil || !*resp.Truth {
		t.Fatalf("boolean resp = %+v (code %d)", resp, code)
	}
}

// TestCacheCounters drives the same query three ways and watches the
// counters: a cold request misses both caches, a repeat hits both and does
// no re-parse and no re-evaluation (the aggregate eval counter is frozen),
// and a no_cache request evaluates fresh without polluting the cache.
func TestCacheCounters(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := QueryRequest{Database: "graph", Query: twoHop}

	_, first, _ := postQuery(t, ts, req)
	if first.PlanCached || first.ResultCached {
		t.Fatalf("cold request cached: %+v", first)
	}
	st := getStats(t, ts)
	if st.PlanCache.Misses != 1 || st.PlanCache.Hits != 0 {
		t.Fatalf("plan counters after miss: %+v", st.PlanCache)
	}
	if st.ResultCache.Misses != 1 || st.ResultCache.Hits != 0 {
		t.Fatalf("result counters after miss: %+v", st.ResultCache)
	}
	evalWork := st.Eval.SubformulaEvals
	if evalWork == 0 {
		t.Fatal("no eval work recorded")
	}

	_, second, _ := postQuery(t, ts, req)
	if !second.PlanCached || !second.ResultCached {
		t.Fatalf("repeat request not cached: %+v", second)
	}
	if fmt.Sprint(second.Answer) != fmt.Sprint(first.Answer) {
		t.Fatalf("cached answer differs: %v vs %v", second.Answer, first.Answer)
	}
	st = getStats(t, ts)
	if st.PlanCache.Hits != 1 || st.ResultCache.Hits != 1 {
		t.Fatalf("hit counters: plan %+v result %+v", st.PlanCache, st.ResultCache)
	}
	if st.Eval.SubformulaEvals != evalWork {
		t.Fatalf("cache hit re-evaluated: %d -> %d", evalWork, st.Eval.SubformulaEvals)
	}

	_, third, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: twoHop, NoCache: true})
	if third.ResultCached {
		t.Fatalf("no_cache request served from cache: %+v", third)
	}
	st = getStats(t, ts)
	if st.Eval.SubformulaEvals <= evalWork {
		t.Fatal("no_cache request did not evaluate")
	}
	if fmt.Sprint(third.Answer) != fmt.Sprint(first.Answer) {
		t.Fatalf("no_cache answer differs")
	}
}

// TestDeterministicAcrossCacheModes replays a battery of queries against a
// caching server (twice, to cover the hit path) and a cache-disabled server
// and requires byte-identical answer sections.
func TestDeterministicAcrossCacheModes(t *testing.T) {
	queries := []string{
		twoHop,
		"(x). P(x)",
		"(). exists x. P(x)",
		"(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)",
		"(u). [pfp S(x). S(x) | P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)",
	}
	_, cached := newTestServer(t, Config{})
	_, uncached := newTestServer(t, Config{PlanCacheSize: -1, ResultCacheSize: -1})
	render := func(resp QueryResponse) string {
		truth := "-"
		if resp.Truth != nil {
			truth = fmt.Sprint(*resp.Truth)
		}
		return fmt.Sprintf("%v|%s|%d", resp.Answer, truth, resp.Count)
	}
	for _, q := range queries {
		answers := make([]string, 0, 3)
		for i := 0; i < 2; i++ {
			code, resp, errResp := postQuery(t, cached, QueryRequest{Database: "graph", Query: q})
			if code != http.StatusOK {
				t.Fatalf("%s: status %d (%s)", q, code, errResp.Error)
			}
			answers = append(answers, render(resp))
		}
		code, resp, errResp := postQuery(t, uncached, QueryRequest{Database: "graph", Query: q})
		if code != http.StatusOK {
			t.Fatalf("%s: uncached status %d (%s)", q, code, errResp.Error)
		}
		answers = append(answers, render(resp))
		if answers[0] != answers[1] || answers[0] != answers[2] {
			t.Fatalf("%s: answers diverge across cache modes: %v", q, answers)
		}
	}
}

func TestMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  QueryRequest
		want int
	}{
		{"bad query text", QueryRequest{Database: "graph", Query: "(x). Nope("}, http.StatusBadRequest},
		{"unknown database", QueryRequest{Database: "nope", Query: twoHop}, http.StatusNotFound},
		{"unknown engine", QueryRequest{Database: "graph", Query: twoHop, Engine: "warpdrive"}, http.StatusBadRequest},
		{"width bound", QueryRequest{Database: "graph", Query: twoHop, MaxWidth: 2}, http.StatusBadRequest},
		{"unknown relation", QueryRequest{Database: "graph", Query: "(x). Zap(x)"}, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		code, _, errResp := postQuery(t, ts, c.req)
		if code != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, code, c.want)
		}
		if errResp.Error == "" {
			t.Errorf("%s: empty error body", c.name)
		}
	}
	// Not JSON at all.
	if code, _ := postRaw(t, ts, []byte("not json")); code != http.StatusBadRequest {
		t.Errorf("non-JSON body: status = %d", code)
	}
	// Unknown fields are rejected (schema discipline).
	if code, _ := postRaw(t, ts, []byte(`{"database":"graph","query":"(x). P(x)","frobnicate":1}`)); code != http.StatusBadRequest {
		t.Errorf("unknown field: status = %d", code)
	}
	st := getStats(t, ts)
	if st.Errors == 0 {
		t.Error("error counter not incremented")
	}
}

// TestDeadlineReturns504 sends the 2^16-stage counter run with a 50ms
// deadline: the server must answer 504 well before the full run would
// finish, carrying the partial iteration count the engine had reached.
func TestDeadlineReturns504(t *testing.T) {
	_, ts := newTestServer(t, Config{Databases: map[string]*database.Database{
		"ord": orderedDB(t, 16),
	}})
	start := time.Now()
	code, _, errResp := postQuery(t, ts, QueryRequest{Database: "ord", Query: counterText, TimeoutMS: 50})
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s)", code, errResp.Error)
	}
	if errResp.Stats == nil || errResp.Stats.FixIterations == 0 {
		t.Fatalf("missing partial stats: %+v", errResp.Stats)
	}
	// The full run takes ~500ms; cancellation at a stage boundary must come
	// back far sooner (generous bound for loaded CI machines).
	if elapsed > 5*time.Second {
		t.Fatalf("504 took %v", elapsed)
	}
	st := getStats(t, ts)
	if st.Timeouts != 1 {
		t.Fatalf("timeout counter = %d", st.Timeouts)
	}
	if st.Eval.FixIterations == 0 {
		t.Fatal("partial work not folded into aggregate counters")
	}
}

// TestServerMaxTimeoutClamp: a request asking for a huge deadline is clamped
// to the server maximum.
func TestServerMaxTimeoutClamp(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Databases:  map[string]*database.Database{"ord": orderedDB(t, 16)},
		MaxTimeout: 50 * time.Millisecond,
	})
	code, _, _ := postQuery(t, ts, QueryRequest{Database: "ord", Query: counterText, TimeoutMS: 600_000})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (clamped deadline)", code)
	}
}

// TestSingleFlightCoalesces starts one slow evaluation, then piles seven
// identical requests on top of it and observes through the in-flight gauges
// that they coalesce: requests stack up while exactly one evaluation runs,
// and every late request is served from the leader's run.
func TestSingleFlightCoalesces(t *testing.T) {
	s, ts := newTestServer(t, Config{Databases: map[string]*database.Database{
		"ord": orderedDB(t, 16),
	}})
	req := QueryRequest{Database: "ord", Query: counterText}

	type result struct {
		code int
		resp QueryResponse
	}
	results := make(chan result, 8)
	var wg sync.WaitGroup
	launch := func() {
		defer wg.Done()
		code, resp, _ := postQuery(t, ts, req)
		results <- result{code, resp}
	}
	wg.Add(1)
	go launch()
	// Wait for the leader to be inside its evaluation.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().InFlight.Evals == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started evaluating")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 7; i++ {
		wg.Add(1)
		go launch()
	}
	// While the followers wait on the leader, the gauges must show the
	// pile-up: several requests in flight, exactly one evaluation.
	observed := false
	for !observed && time.Now().Before(deadline) {
		st := s.Stats()
		if st.InFlight.Requests >= 2 && st.InFlight.Evals == 1 {
			observed = true
		}
		if st.InFlight.Evals > 1 {
			t.Fatalf("dedup failed: %d evaluations in flight", st.InFlight.Evals)
		}
		time.Sleep(time.Millisecond)
	}
	if !observed {
		t.Fatal("never observed coalesced pile-up in the gauges")
	}
	wg.Wait()
	close(results)

	var leaders, followers int
	var answers []string
	for r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("status = %d", r.code)
		}
		if r.resp.Coalesced {
			followers++
		} else {
			leaders++
		}
		answers = append(answers, fmt.Sprint(r.resp.Answer))
	}
	if leaders < 1 || leaders+followers < 8 {
		t.Fatalf("leaders = %d, followers = %d", leaders, followers)
	}
	if followers == 0 {
		t.Fatal("no request was coalesced")
	}
	for _, a := range answers[1:] {
		if a != answers[0] {
			t.Fatalf("coalesced answers differ: %v", answers)
		}
	}
	if st := s.Stats(); st.Coalesced == 0 {
		t.Fatal("coalesced counter not incremented")
	}
}

// TestConcurrentHammer fires 8 goroutines × 20 mixed requests at the
// server; meaningful under -race (make check runs it so). Every answer must
// match the expected value for its query regardless of interleaving.
func TestConcurrentHammer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	want := map[string]string{
		twoHop:      "[[10 30] [20 40]]",
		"(x). P(x)": "[[10]]",
		"(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)": "[[10] [20] [30] [40]]",
	}
	queries := make([]string, 0, len(want))
	for q := range want {
		queries = append(queries, q)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := queries[(g+i)%len(queries)]
				code, resp, _ := postQuery(t, ts, QueryRequest{
					Database: "graph",
					Query:    q,
					NoCache:  i%5 == 4, // mix cached and fresh paths
				})
				if code != http.StatusOK {
					t.Errorf("g%d i%d: status %d", g, i, code)
					return
				}
				if got := fmt.Sprint(resp.Answer); got != want[q] {
					t.Errorf("g%d i%d %s: answer %s, want %s", g, i, q, got, want[q])
				}
			}
		}(g)
	}
	wg.Wait()
	st := getStats(t, ts)
	if st.Queries != 160 {
		t.Fatalf("queries = %d", st.Queries)
	}
	if st.InFlight.Requests != 0 || st.InFlight.Evals != 0 {
		t.Fatalf("gauges not drained: %+v", st.InFlight)
	}
}

func TestHealthzAndStatsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz = %d %q", resp.StatusCode, body)
	}
	st := getStats(t, ts)
	if st.Databases["graph"].DomainSize != 4 {
		t.Fatalf("stats databases = %+v", st.Databases)
	}
	if len(st.Databases["graph"].Fingerprint) != 16 {
		t.Fatalf("fingerprint = %q", st.Databases["graph"].Fingerprint)
	}
	// GET on /query routes away (method pattern).
	getResp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d", getResp.StatusCode)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no databases accepted")
	}
	if _, err := New(Config{Databases: map[string]*database.Database{"": graphDB(t)}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := New(Config{Databases: map[string]*database.Database{"x": nil}}); err == nil {
		t.Fatal("nil database accepted")
	}
}

// TestCompiledEngineEndToEnd drives the compiled engine through the HTTP
// surface: the answer matches bottomup, the semi-naive counters survive the
// JSON round trip, a repeat request reuses the prepared plan from the plan
// cache, and a query outside the compilable fragment surfaces the compiler's
// real error instead of a nil-plan crash.
func TestCompiledEngineEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	reach := "(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)"

	code, base, errResp := postQuery(t, ts, QueryRequest{Database: "graph", Query: reach})
	if code != http.StatusOK {
		t.Fatalf("bottomup status %d (%s)", code, errResp.Error)
	}
	code, comp, errResp := postQuery(t, ts, QueryRequest{Database: "graph", Query: reach, Engine: "compiled"})
	if code != http.StatusOK {
		t.Fatalf("compiled status %d (%s)", code, errResp.Error)
	}
	if fmt.Sprint(comp.Answer) != fmt.Sprint(base.Answer) {
		t.Fatalf("compiled answer %v != bottomup %v", comp.Answer, base.Answer)
	}
	if !comp.PlanCached {
		t.Fatalf("second request for the same text missed the plan cache: %+v", comp)
	}
	if comp.Stats == nil || comp.Stats.NodesReused == 0 || comp.Stats.DeltaTuples == 0 {
		t.Fatalf("semi-naive counters missing from JSON stats: %+v", comp.Stats)
	}

	// Re-evaluation under no_cache still reuses the cached prepared plan and
	// reproduces the identical answer and counters.
	code, again, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: reach, Engine: "compiled", NoCache: true})
	if code != http.StatusOK || !again.PlanCached {
		t.Fatalf("no_cache compiled run: code %d resp %+v", code, again)
	}
	if fmt.Sprint(again.Answer) != fmt.Sprint(comp.Answer) || *again.Stats != *comp.Stats {
		t.Fatalf("no_cache compiled run diverged: %+v vs %+v", again, comp)
	}

	// Outside the compilable fragment (second-order quantifier): Prepared is
	// nil, the generic path recompiles and reports the compiler's error.
	code, _, errResp = postQuery(t, ts, QueryRequest{
		Database: "graph", Query: "(). exists2 A/1. exists x. A(x)", Engine: "compiled"})
	if code == http.StatusOK {
		t.Fatal("second-order query accepted by compiled engine")
	}
	if errResp.Error == "" {
		t.Fatal("empty error for non-compilable query")
	}
}
