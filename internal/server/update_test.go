package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/database"
)

// chainDB is 1→2→3 with isolated nodes 4, 5 and P = {1} — small enough that
// inserting E(3,4) visibly grows the reachable set.
func chainDB(t testing.TB) *database.Database {
	t.Helper()
	db, err := database.Parse(`
domain = {1, 2, 3, 4, 5}
E/2 = {(1, 2), (2, 3)}
P/1 = {(1)}
`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func postUpdate(t testing.TB, ts *httptest.Server, db string, req UpdateRequest) (int, UpdateResponse, ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	code, raw := postUpdateRaw(t, ts, db, body)
	var ok UpdateResponse
	var bad ErrorResponse
	if code == http.StatusOK {
		if err := json.Unmarshal(raw, &ok); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
	} else if err := json.Unmarshal(raw, &bad); err != nil {
		t.Fatalf("decoding error body %q: %v", raw, err)
	}
	return code, ok, bad
}

func postUpdateRaw(t testing.TB, ts *httptest.Server, db string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/db/"+db+"/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func TestUpdateBasic(t *testing.T) {
	_, ts := newTestServer(t, Config{Databases: map[string]*database.Database{"chain": chainDB(t)}})

	reach := "(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)"
	code, q, _ := postQuery(t, ts, QueryRequest{Database: "chain", Query: reach})
	if code != http.StatusOK || fmt.Sprint(q.Answer) != "[[1] [2] [3]]" {
		t.Fatalf("pre-update reach: status %d answer %v", code, q.Answer)
	}

	code, up, _ := postUpdate(t, ts, "chain", UpdateRequest{
		Updates: []UpdateEntry{{Relation: "E", Insert: [][]int{{3, 4}}}},
	})
	if code != http.StatusOK {
		t.Fatalf("update: status %d", code)
	}
	if up.Version != 1 || up.FromVersion != 0 || up.Inserted != 1 || up.Deleted != 0 || up.Noop {
		t.Fatalf("update response %+v", up)
	}
	if !reflect.DeepEqual(up.Relations, []string{"E"}) {
		t.Fatalf("changed relations %v", up.Relations)
	}

	code, q, _ = postQuery(t, ts, QueryRequest{Database: "chain", Query: reach})
	if code != http.StatusOK || fmt.Sprint(q.Answer) != "[[1] [2] [3] [4]]" {
		t.Fatalf("post-update reach: status %d answer %v", code, q.Answer)
	}

	// Re-inserting a present tuple and deleting an absent one is an
	// effective no-op: no version bump, same fingerprint.
	code, noop, _ := postUpdate(t, ts, "chain", UpdateRequest{
		Updates: []UpdateEntry{{Relation: "E", Insert: [][]int{{3, 4}}, Delete: [][]int{{5, 5}}}},
	})
	if code != http.StatusOK || !noop.Noop || noop.Version != 1 || noop.Fingerprint != up.Fingerprint {
		t.Fatalf("noop update: status %d resp %+v", code, noop)
	}

	st := getStats(t, ts)
	if st.Churn.Updates != 1 {
		t.Fatalf("churn stats %+v", st.Churn)
	}
	if got := st.Databases["chain"].Version; got != 1 {
		t.Fatalf("database version %d", got)
	}
}

func TestUpdateIndicesMode(t *testing.T) {
	// graphDB's domain is {10,20,30,40}; in indices mode tuple components
	// are positions 0..3, so inserting (3,0) means E(40,10).
	_, ts := newTestServer(t, Config{})
	code, up, _ := postUpdate(t, ts, "graph", UpdateRequest{
		Updates: []UpdateEntry{{Relation: "E", Insert: [][]int{{3, 0}}}},
		Indices: true,
	})
	if code != http.StatusOK || up.Inserted != 1 {
		t.Fatalf("indices update: status %d resp %+v", code, up)
	}
	code, q, _ := postQuery(t, ts, QueryRequest{Database: "graph", Query: "(x, y). E(x, y)"})
	if code != http.StatusOK || fmt.Sprint(q.Answer) != "[[10 20] [20 30] [30 40] [40 10]]" {
		t.Fatalf("edges after indices insert: %v", q.Answer)
	}
}

func TestUpdateValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	v7 := uint64(7)
	cases := []struct {
		name string
		db   string
		req  UpdateRequest
		code int
		want string
	}{
		{"unknown database", "nosuch",
			UpdateRequest{Updates: []UpdateEntry{{Relation: "E", Insert: [][]int{{10, 20}}}}},
			http.StatusNotFound, `unknown database "nosuch"`},
		{"empty batch", "graph", UpdateRequest{},
			http.StatusBadRequest, "updates: must contain at least one entry"},
		{"missing relation name", "graph",
			UpdateRequest{Updates: []UpdateEntry{{Insert: [][]int{{10, 20}}}}},
			http.StatusBadRequest, "updates[0].relation: missing relation name"},
		{"unknown relation", "graph",
			UpdateRequest{Updates: []UpdateEntry{{Relation: "Q", Insert: [][]int{{10}}}}},
			http.StatusBadRequest, `updates[0].relation: unknown relation "Q"`},
		{"insert arity", "graph",
			UpdateRequest{Updates: []UpdateEntry{{Relation: "E", Insert: [][]int{{10, 20}, {10}}}}},
			http.StatusBadRequest, `updates[0].insert[1]: relation "E" has arity 2, got 1 components`},
		{"delete arity", "graph",
			UpdateRequest{Updates: []UpdateEntry{{Relation: "P", Delete: [][]int{{10, 20}}}}},
			http.StatusBadRequest, `updates[0].delete[0]: relation "P" has arity 1, got 2 components`},
		{"out-of-domain value", "graph",
			UpdateRequest{Updates: []UpdateEntry{{Relation: "E", Insert: [][]int{{10, 99}}}}},
			http.StatusBadRequest, "updates[0].insert[0]: value 99 is not in the domain"},
		{"second entry named", "graph",
			UpdateRequest{Updates: []UpdateEntry{
				{Relation: "E", Insert: [][]int{{10, 20}}},
				{Relation: "P", Delete: [][]int{{99}}},
			}},
			http.StatusBadRequest, "updates[1].delete[0]: value 99 is not in the domain"},
		{"index out of range", "graph",
			UpdateRequest{Updates: []UpdateEntry{{Relation: "E", Insert: [][]int{{0, 4}}}}, Indices: true},
			http.StatusBadRequest, "updates[0].insert[0]: index 4 out of range [0,4)"},
		{"base_version mismatch", "graph",
			UpdateRequest{Updates: []UpdateEntry{{Relation: "E", Insert: [][]int{{40, 10}}}}, BaseVersion: &v7},
			http.StatusConflict, "base_version 7 does not match current version 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, bad := postUpdate(t, ts, tc.db, tc.req)
			if code != tc.code {
				t.Fatalf("status %d, want %d (error %q)", code, tc.code, bad.Error)
			}
			if !strings.Contains(bad.Error, tc.want) {
				t.Fatalf("error %q does not name the field: want %q", bad.Error, tc.want)
			}
		})
	}

	// A rejected update must not have mutated anything.
	if st := getStats(t, ts); st.Churn.Updates != 0 || st.Databases["graph"].Version != 0 {
		t.Fatalf("failed updates changed state: %+v", st.Churn)
	}

	t.Run("unknown JSON field", func(t *testing.T) {
		code, raw := postUpdateRaw(t, ts, "graph", []byte(`{"updates":[],"bogus":1}`))
		if code != http.StatusBadRequest {
			t.Fatalf("status %d body %s", code, raw)
		}
	})
	t.Run("malformed JSON", func(t *testing.T) {
		code, _ := postUpdateRaw(t, ts, "graph", []byte(`{"updates":`))
		if code != http.StatusBadRequest {
			t.Fatalf("status %d", code)
		}
	})

	// base_version match succeeds.
	v0 := uint64(0)
	code, up, bad := postUpdate(t, ts, "graph", UpdateRequest{
		Updates:     []UpdateEntry{{Relation: "E", Insert: [][]int{{40, 10}}}},
		BaseVersion: &v0,
	})
	if code != http.StatusOK || up.Version != 1 {
		t.Fatalf("conditional update: status %d resp %+v err %q", code, up, bad.Error)
	}
}

// TestUpdateCacheChurn exercises the three triage outcomes on one update:
// a result whose footprint misses the delta is carried, a compiled result
// with maintenance state is maintained (and visibly reflects the delta), and
// an uncompiled-engine result on a touched footprint is invalidated. The plan
// cache must survive all of it.
func TestUpdateCacheChurn(t *testing.T) {
	_, ts := newTestServer(t, Config{Databases: map[string]*database.Database{"chain": chainDB(t)}})

	reach := "(u). [lfp S(x). P(x) | (exists z. E(z, x) & (exists x. x = z & S(x)))](u)"
	pOnly := "(x). P(x)"

	mustQuery := func(query, engine string) QueryResponse {
		t.Helper()
		code, q, bad := postQuery(t, ts, QueryRequest{Database: "chain", Query: query, Engine: engine})
		if code != http.StatusOK {
			t.Fatalf("query %q engine %q: status %d err %q", query, engine, code, bad.Error)
		}
		return q
	}
	mustQuery(reach, "compiled") // maintainable: compiled plan + captured state
	mustQuery(pOnly, "compiled") // footprint {P}: disjoint from an E-only delta
	mustQuery(reach, "bottomup") // overlapping footprint, no plan: invalidated

	code, up, _ := postUpdate(t, ts, "chain", UpdateRequest{
		Updates: []UpdateEntry{{Relation: "E", Insert: [][]int{{3, 4}}}},
	})
	if code != http.StatusOK {
		t.Fatalf("update: status %d", code)
	}
	if up.Cache.Carried != 1 || up.Cache.Maintained != 1 || up.Cache.Invalidated != 1 {
		t.Fatalf("triage %+v", up.Cache)
	}

	// The maintained entry serves from cache, reflects the inserted edge, and
	// carries the maintenance run's statistics.
	q := mustQuery(reach, "compiled")
	if !q.ResultCached {
		t.Fatalf("maintained reach not served from cache: %+v", q)
	}
	if fmt.Sprint(q.Answer) != "[[1] [2] [3] [4]]" {
		t.Fatalf("maintained reach answer %v", q.Answer)
	}
	if q.Stats == nil || q.Stats.MaintainedFromDelta != 1 {
		t.Fatalf("maintained reach stats %+v", q.Stats)
	}

	// The carried entry is a cache hit too; the invalidated one re-evaluates
	// but still hits the plan cache (plans are keyed by text, not snapshot).
	if q := mustQuery(pOnly, "compiled"); !q.ResultCached {
		t.Fatalf("carried P query missed the cache: %+v", q)
	}
	q = mustQuery(reach, "bottomup")
	if q.ResultCached || !q.PlanCached {
		t.Fatalf("invalidated bottomup entry: result_cached=%v plan_cached=%v", q.ResultCached, q.PlanCached)
	}

	// A delete touches the reach plan's positive E occurrence: delta polarity
	// forbids maintenance, so the (re-maintained) entry is invalidated and a
	// fresh evaluation sees the shrunken answer.
	code, up, _ = postUpdate(t, ts, "chain", UpdateRequest{
		Updates: []UpdateEntry{{Relation: "E", Delete: [][]int{{1, 2}}}},
	})
	if code != http.StatusOK || up.Deleted != 1 {
		t.Fatalf("delete update: status %d resp %+v", code, up)
	}
	if up.Cache.Maintained != 0 {
		t.Fatalf("delete must not be maintained through a positive occurrence: %+v", up.Cache)
	}
	q = mustQuery(reach, "compiled")
	if q.ResultCached || fmt.Sprint(q.Answer) != "[[1]]" {
		t.Fatalf("post-delete reach: cached=%v answer %v", q.ResultCached, q.Answer)
	}

	st := getStats(t, ts)
	if st.Churn.Updates != 2 || st.Churn.Carried < 1 || st.Churn.Maintained != 1 || st.Churn.Invalidated < 2 {
		t.Fatalf("churn stats %+v", st.Churn)
	}
}

// TestUpdateSnapshotIsolation hammers one database with edge toggles while
// readers evaluate concurrently. Every response must be one of the two
// consistent answers — a torn read (an evaluation seeing half an update)
// would produce something else. Run under -race this also proves the
// snapshot handoff is properly synchronized.
func TestUpdateSnapshotIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{Databases: map[string]*database.Database{"chain": chainDB(t)}})

	// twoHop without E(3,4): {(1,3)}; with it: {(1,3),(2,4)}.
	const without = "[[1 3]]"
	const with = "[[1 3] [2 4]]"

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				e := UpdateEntry{Relation: "E"}
				if (i+seed)%2 == 0 {
					e.Insert = [][]int{{3, 4}}
				} else {
					e.Delete = [][]int{{3, 4}}
				}
				code, _, bad := postUpdate(t, ts, "chain", UpdateRequest{Updates: []UpdateEntry{e}})
				if code != http.StatusOK {
					errc <- fmt.Errorf("update: status %d err %q", code, bad.Error)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				code, q, bad := postQuery(t, ts, QueryRequest{
					Database: "chain", Query: twoHop, Engine: "compiled",
					NoCache: r%2 == 0, // half the readers bypass the cache
				})
				if code != http.StatusOK {
					errc <- fmt.Errorf("query: status %d err %q", code, bad.Error)
					return
				}
				if got := fmt.Sprint(q.Answer); got != without && got != with {
					errc <- fmt.Errorf("torn answer %v", q.Answer)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
