package server

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/plan"
	"repro/internal/trace"
)

// handleTraces serves the flight recorder's retained traces, newest first.
// The list view elides spans down to a per-trace summary; fetch a single
// trace by ID for the full span tree.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeJSON(w, http.StatusNotFound,
			ErrorResponse{Error: "flight recorder disabled: start bvqd with -trace-buffer > 0"})
		return
	}
	views := s.recorder.Traces()
	type summary struct {
		TraceID string  `json:"trace_id"`
		DurMS   float64 `json:"dur_ms"`
		Kept    string  `json:"kept,omitempty"`
		Spans   int     `json:"spans"`
		// Root annotations, flattened for scanning: database, engine, status.
		Attrs []trace.Attr `json:"attrs,omitempty"`
	}
	out := struct {
		Recorded int64     `json:"recorded"`
		Kept     int64     `json:"kept"`
		Traces   []summary `json:"traces"`
	}{Recorded: s.recorder.Recorded(), Kept: s.recorder.Kept(), Traces: make([]summary, len(views))}
	for i, v := range views {
		sm := summary{TraceID: v.TraceID, DurMS: v.DurMS, Kept: v.Kept, Spans: len(v.Spans)}
		if len(v.Spans) > 0 {
			sm.Attrs = v.Spans[0].Attrs
		}
		out.Traces[i] = sm
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTraceByID serves one retained trace with its full span tree.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		writeJSON(w, http.StatusNotFound,
			ErrorResponse{Error: "flight recorder disabled: start bvqd with -trace-buffer > 0"})
		return
	}
	id := r.PathValue("id")
	v, ok := s.recorder.Get(id)
	if !ok {
		writeJSON(w, http.StatusNotFound,
			ErrorResponse{Error: fmt.Sprintf("trace %q not retained (aged out of the ring, or never recorded)", id)})
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// recordTrace files a finished trace with the flight recorder and feeds the
// per-stage latency histograms (bvqd_stage_seconds). The root span is
// skipped — its duration is already bvqd_query_latency_seconds — and
// per-fixpoint spans report busy time under the "fixpoint" stage label.
// Stage histograms are sampled at the trace sample rate, which OPERATIONS.md
// documents next to the family.
func (s *Server) recordTrace(t *trace.Trace) {
	v := t.View()
	for _, sp := range v.Spans {
		if sp.Parent < 0 {
			continue
		}
		s.metrics.stages.With(sp.Name).Observe(sp.DurUS / 1e6)
	}
	s.recorder.Record(t)
}

// clientRequestID returns a sanitized client-supplied X-Request-Id (so
// upstream tiers can correlate their logs with bvqd's), or "" to fall back
// to the server sequence. Only printable ASCII without quotes survives, and
// at most 64 bytes — request IDs end up in log lines and response headers.
func clientRequestID(r *http.Request) string {
	id := r.Header.Get("X-Request-Id")
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return ""
		}
	}
	return id
}

// cacheOutcome labels how a request's answer was produced, for slow-query
// logs: "hit" (result cache), "coalesced" (rode another request's
// evaluation), "bypass" (trace/explain/no_cache forced a fresh run), "miss"
// (evaluated and eligible for caching).
func cacheOutcome(resp *QueryResponse, direct bool) string {
	switch {
	case resp.ResultCached:
		return "hit"
	case resp.Coalesced:
		return "coalesced"
	case direct:
		return "bypass"
	default:
		return "miss"
	}
}

// topSpans renders the k slowest non-root spans as "name=123us" pairs for
// slow-query log lines; fixpoint spans are suffixed with the fixpoint
// relation they iterate.
func topSpans(v trace.View, k int) string {
	spans := make([]trace.SpanView, 0, len(v.Spans))
	for _, sp := range v.Spans {
		if sp.Parent >= 0 {
			spans = append(spans, sp)
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].DurUS > spans[j].DurUS })
	if len(spans) > k {
		spans = spans[:k]
	}
	parts := make([]string, len(spans))
	for i, sp := range spans {
		name := sp.Name
		if sp.Name == trace.SpanFixpoint {
			for _, a := range sp.Attrs {
				if a.Key == "fixpoint" {
					name += ":" + a.Value
					break
				}
			}
		}
		parts[i] = fmt.Sprintf("%s=%.0fus", name, sp.DurUS)
	}
	return strings.Join(parts, ",")
}

// chainTracers composes tracers, dropping nil members; nil when none are
// live, so the engines' "tracer == nil means disabled" fast path still
// applies to untraced requests.
func chainTracers(ts ...eval.Tracer) eval.Tracer {
	live := ts[:0:0]
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(ev eval.TraceEvent) {
		for _, t := range live {
			t(ev)
		}
	}
}

// binderAgg accumulates one binder's fixpoint work for explain mode.
type binderAgg struct {
	stages int64
	delta  int64 // summed |Δ| across semi-naive passes
	ns     int64 // busy time inside stage work
}

// buildExplain assembles the explain payload for one executed request: the
// plan DAG with density annotations, the backend route (refined to "acyclic"
// when the run's stats show the Yannakakis fast path answered it), the
// per-node profile and the per-binder stage totals.
func (s *Server) buildExplain(p *plan.Plan, db *database.Database, opts *eval.Options,
	st *eval.Stats, binders map[int]*binderAgg, mu *sync.Mutex) *plan.Explain {
	den, route := eval.ExplainRoute(p, db, opts)
	ex := p.Explain(den)
	if st != nil && st.AcyclicFastPath > 0 {
		route = "acyclic"
	}
	ex.Route = route
	if opts.Profile != nil {
		ex.AttachProfile(opts.Profile.Evals, opts.Profile.NS)
	}
	mu.Lock()
	for b, a := range binders {
		ex.AttachBinderStages(b, a.stages, a.delta, a.ns)
	}
	mu.Unlock()
	return ex
}
