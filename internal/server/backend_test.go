package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestBackendRouting pins the wire contract of the backend field: sparse and
// dense agree on answers through the compiled engine, the response echoes
// the resolved backend, and sparse runs report their Stats counters.
func TestBackendRouting(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, dense, _ := postQuery(t, ts, QueryRequest{
		Database: "graph", Query: twoHop, Engine: "compiled", Backend: "dense"})
	if code != http.StatusOK {
		t.Fatalf("dense backend: status %d", code)
	}
	if dense.Backend != "dense" {
		t.Fatalf("response backend %q, want dense", dense.Backend)
	}

	code, sparse, _ := postQuery(t, ts, QueryRequest{
		Database: "graph", Query: twoHop, Engine: "compiled", Backend: "sparse"})
	if code != http.StatusOK {
		t.Fatalf("sparse backend: status %d", code)
	}
	if sparse.Backend != "sparse" {
		t.Fatalf("response backend %q, want sparse", sparse.Backend)
	}
	if len(sparse.Answer) != len(dense.Answer) || sparse.Count != dense.Count {
		t.Fatalf("backends disagree: sparse %v, dense %v", sparse.Answer, dense.Answer)
	}
	for i := range sparse.Answer {
		for j := range sparse.Answer[i] {
			if sparse.Answer[i][j] != dense.Answer[i][j] {
				t.Fatalf("backends disagree: sparse %v, dense %v", sparse.Answer, dense.Answer)
			}
		}
	}
	// twoHop is an acyclic CQ: the sparse backend must answer it through
	// Yannakakis and say so in the statistics.
	if sparse.Stats == nil || sparse.Stats.AcyclicFastPath != 1 {
		t.Fatalf("sparse stats missing the fast-path marker: %+v", sparse.Stats)
	}
	if sparse.Stats.TuplesTouched == 0 {
		t.Fatalf("sparse stats report zero tuples touched: %+v", sparse.Stats)
	}
	// An unadorned request must not echo a backend (wire compatibility).
	code, auto, _ := postQuery(t, ts, QueryRequest{
		Database: "graph", Query: twoHop, Engine: "compiled"})
	if code != http.StatusOK || auto.Backend != "" {
		t.Fatalf("auto request echoed backend %q (status %d)", auto.Backend, code)
	}
}

// TestBackendValidation pins the 400s: unknown backend names, and non-auto
// backends on engines that have no notion of one.
func TestBackendValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, _, bad := postQuery(t, ts, QueryRequest{
		Database: "graph", Query: twoHop, Engine: "compiled", Backend: "columnar"})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown backend: status %d", code)
	}
	if !strings.Contains(bad.Error, "unknown backend") {
		t.Fatalf("unknown backend error %q", bad.Error)
	}

	for _, engine := range []string{"", "bottomup", "naive"} {
		code, _, bad := postQuery(t, ts, QueryRequest{
			Database: "graph", Query: twoHop, Engine: engine, Backend: "sparse"})
		if code != http.StatusBadRequest {
			t.Fatalf("engine %q with sparse backend: status %d", engine, code)
		}
		if !strings.Contains(bad.Error, "requires the compiled engine") {
			t.Fatalf("engine %q error %q", engine, bad.Error)
		}
	}

	// backend=auto is the default and valid everywhere.
	code, _, _ = postQuery(t, ts, QueryRequest{
		Database: "graph", Query: twoHop, Backend: "auto"})
	if code != http.StatusOK {
		t.Fatalf("backend auto on the default engine: status %d", code)
	}
}

// TestBackendCacheIsolation pins that the result cache keys on the backend:
// a dense run's cached statistics must never be served to a sparse request.
func TestBackendCacheIsolation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	_, first, _ := postQuery(t, ts, QueryRequest{
		Database: "graph", Query: twoHop, Engine: "compiled", Backend: "dense"})
	if first.ResultCached {
		t.Fatal("first dense request served from cache")
	}
	_, second, _ := postQuery(t, ts, QueryRequest{
		Database: "graph", Query: twoHop, Engine: "compiled", Backend: "dense"})
	if !second.ResultCached {
		t.Fatal("repeat dense request not served from cache")
	}
	_, cross, _ := postQuery(t, ts, QueryRequest{
		Database: "graph", Query: twoHop, Engine: "compiled", Backend: "sparse"})
	if cross.ResultCached {
		t.Fatal("sparse request served a dense run's cache entry")
	}
	if cross.Stats == nil || cross.Stats.AcyclicFastPath != 1 {
		t.Fatalf("sparse request got non-sparse stats: %+v", cross.Stats)
	}
}

// TestBackendObservability pins the new operational surfaces: the aggregate
// /stats counters and the Prometheus families move when sparse runs happen.
func TestBackendObservability(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	postQuery(t, ts, QueryRequest{
		Database: "graph", Query: twoHop, Engine: "compiled", Backend: "sparse"})
	st := s.Stats()
	if st.Eval.TuplesTouched == 0 {
		t.Fatalf("aggregate tuples_touched is zero after a sparse run: %+v", st.Eval)
	}
	if st.Eval.AcyclicFastPath != 1 {
		t.Fatalf("aggregate acyclic_fast_path = %d, want 1", st.Eval.AcyclicFastPath)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, family := range []string{
		"bvqd_queries_by_backend_total{backend=\"sparse\"} 1",
		"bvqd_eval_tuples_touched_total",
		"bvqd_eval_rep_switches_total",
		"bvqd_eval_acyclic_fastpath_total",
	} {
		if !strings.Contains(body, family) {
			t.Fatalf("/metrics missing %q:\n%s", family, body)
		}
	}
}
