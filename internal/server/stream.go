package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"repro"
	"repro/internal/cache"
	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/relation"
	"repro/internal/trace"
)

// StreamHeader is the first NDJSON line of a streamed /query response. It
// carries everything known before the first tuple; count is present only
// when the full cardinality is known up front (a cached result, or an
// enumerator whose backing representation counts in O(1) — the streaming
// acyclic route does not).
type StreamHeader struct {
	RequestID string `json:"request_id"`
	Database  string `json:"database"`
	Engine    string `json:"engine"`
	Backend   string `json:"backend,omitempty"`
	Width     int    `json:"width"`
	Arity     int    `json:"arity"`
	Count     *int   `json:"count,omitempty"`
	// Limit and Offset echo the request's window.
	Limit        int  `json:"limit,omitempty"`
	Offset       int  `json:"offset,omitempty"`
	PlanCached   bool `json:"plan_cached"`
	ResultCached bool `json:"result_cached"`
}

// StreamTrailer is the last NDJSON line of a streamed /query response. Like
// the JSON response's count, Count is the FULL answer cardinality — known
// up front on counting routes, or by exhaustion when the stream ran to the
// end un-limited; omitted when a LIMIT stopped a non-counting route early.
// A stream cut by the server's own deadline ends with Error set; a stream
// cut by the client disconnecting ends with no trailer at all.
type StreamTrailer struct {
	Trailer   bool       `json:"trailer"`
	Count     *int       `json:"count,omitempty"`
	Truth     *bool      `json:"truth,omitempty"`
	Streamed  int64      `json:"streamed"`
	Skipped   int64      `json:"skipped"`
	Stats     *StatsJSON `json:"stats,omitempty"`
	Error     string     `json:"error,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
}

// renderTuple maps one answer tuple to its wire row (raw domain values, or
// indices when the request asked for them).
func renderTuple(t relation.Tuple, db *database.Database, indices bool) []int {
	row := make([]int, len(t))
	for j, v := range t {
		if indices {
			row[j] = v
		} else {
			row[j] = db.Value(v)
		}
	}
	return row
}

// streamQuery answers one /query request as an NDJSON stream: header line,
// one line per answer tuple flushed as it decodes, trailer line with the
// final statistics. It returns the request's status for the metrics defer.
//
// Streams evaluate through the enumeration API, so a LIMIT-k stream stops
// the extraction — and on the acyclic fast path the evaluation itself —
// after k tuples, holding per-request memory at O(k + stage relations)
// instead of O(|answer|). Errors before the first byte are ordinary JSON
// error responses with the usual status codes; once the header is out the
// status is committed, and failures surface in the trailer (deadline) or as
// a counted disconnect (client gone, no trailer).
//
// Streams bypass single-flight coalescing — each holds its own admission
// slot for its whole lifetime, since on the streaming acyclic route the
// evaluation is interleaved with delivery — but they still read the result
// cache, and an un-windowed stream that runs to exhaustion still stores its
// answer and registers its churn footprint exactly like a JSON request.
func (s *Server) streamQuery(ctx context.Context, w http.ResponseWriter, r *http.Request,
	req *QueryRequest, nd *namedDB, snap *dbSnap, pl cache.Plan,
	engine bvq.Engine, engineName string, opts *eval.Options, key string,
	resp *QueryResponse, start time.Time, root *trace.Span) (status int) {

	s.streams.Add(1)
	reqID := resp.RequestID
	fail := func(code int, err error, partial *StatsJSON) int {
		s.fail(w, code, err, partial, reqID)
		return code
	}

	var en eval.Enumerator
	var runStats *eval.Stats  // live stats of a fresh run (nil on cache hits)
	var dispStats *eval.Stats // stats reported in the trailer
	var mstate *eval.MaintState
	var countKnown bool
	var fullCount int

	if !req.NoCache {
		if hit, ok := s.results.Get(key); ok {
			resp.ResultCached = true
			// The cached Stats are shared with other requests: stream meters
			// (tuples streamed/skipped) must not be written into them, so the
			// set enumerator runs unmetered and the trailer reports the
			// original run's stats, like the JSON path does.
			en = eval.NewSetEnumerator(ctx, hit.Answer, nil)
			dispStats = hit.Stats
			fullCount, countKnown = hit.Answer.Len(), true
		}
	}

	if en == nil {
		// Fresh evaluation: admission first, like the JSON path's run().
		asp := root.Start(trace.SpanAdmission)
		if aerr := s.limiter.acquire(ctx); aerr != nil {
			asp.End()
			return fail(s.evalErrorCode(w, aerr), aerr, nil)
		}
		asp.End()
		defer s.limiter.release()
		s.evalsInFlight.Add(1)
		defer s.evalsInFlight.Add(-1)

		// The eval span covers enumerator construction only: on streaming
		// routes (notably the acyclic pipeline) evaluation interleaves with
		// delivery, so the drain span below carries that cost.
		esp := root.Start(trace.SpanEval)
		opts.Tracer = chainTracers(opts.Tracer, trace.Stages(esp))
		var eerr error
		func() {
			defer func() {
				if p := recover(); p != nil {
					s.metrics.panics.Inc()
					s.logger.LogAttrs(ctx, slog.LevelError, "evaluator panic",
						slog.String("request_id", reqID),
						slog.String("query", req.Query),
						slog.Any("panic", p))
					eerr = fmt.Errorf("%w: %v", errEvalPanic, p)
				}
			}()
			if s.testHookBeforeEval != nil {
				s.testHookBeforeEval()
			}
			if engine == bvq.EngineCompiled && pl.Prepared != nil {
				en, runStats, mstate, eerr = eval.EvalPlanEnumCapture(ctx, pl.Prepared, snap.db, opts)
			} else {
				en, runStats, eerr = bvq.EvalEnumContext(ctx, pl.Query, snap.db, engine, opts)
			}
		}()
		esp.End()
		if eerr != nil {
			return fail(s.evalErrorCode(w, eerr), eerr, statsJSON(runStats))
		}
		dispStats = runStats
		fullCount, countKnown = en.Count()
	}
	defer en.Close()
	// Fold a fresh run's work into the aggregate gauges once the stream is
	// over (Close first: the acyclic route folds its own counters there).
	defer func() {
		if runStats != nil {
			en.Close()
			s.subformulaEvals.Add(runStats.SubformulaEvals)
			s.fixIterations.Add(runStats.FixIterations)
			s.tuplesTouched.Add(runStats.TuplesTouched)
			s.repSwitches.Add(runStats.RepSwitches)
			s.acyclicFast.Add(runStats.AcyclicFastPath)
		}
	}()

	// First byte: from here on the 200 is committed.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	status = http.StatusOK
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	hdr := StreamHeader{
		RequestID:    reqID,
		Database:     resp.Database,
		Engine:       engineName,
		Backend:      resp.Backend,
		Width:        resp.Width,
		Arity:        resp.Arity,
		Limit:        req.Limit,
		Offset:       req.Offset,
		PlanCached:   resp.PlanCached,
		ResultCached: resp.ResultCached,
	}
	if countKnown {
		c := fullCount
		hdr.Count = &c
	}
	if err := enc.Encode(hdr); err != nil {
		s.streamDisconnects.Add(1)
		return status
	}
	flush()

	// An un-windowed, uncached stream that runs to the end has decoded the
	// whole answer anyway — collect it so the result cache and the churn
	// index see streamed evaluations too. Windowed streams skip this: their
	// point is not to pay O(|answer|).
	var collect *relation.Set
	if runStats != nil && !req.NoCache && req.Limit == 0 && req.Offset == 0 {
		collect = relation.NewSet(resp.Arity)
	}

	// The drain span covers seek, decode and delivery — on streaming routes
	// this is where evaluation work actually happens. Ended by the deferred
	// trace Close when a disconnect returns early.
	//
	// The whole drain runs panic-contained: on streaming routes the engine
	// executes inside Next/Skip, so a backend failure here surfaces as a
	// panic AFTER the first byte — past the point where recoverPanics could
	// still write a JSON error. Without the recover the response would just
	// stop, indistinguishable from truncation; the contract (and what the
	// router's truncation detection relies on) is that every server-side
	// death mid-stream ends with an error trailer.
	dsp := root.Start(trace.SpanStreamDrain)
	defer dsp.End()
	skipped := int64(0)
	streamed := int64(0)
	limited := false
	disconnected := false
	var drainPanic error
	func() {
		defer func() {
			if p := recover(); p != nil {
				s.metrics.panics.Inc()
				s.logger.LogAttrs(ctx, slog.LevelError, "stream drain panic",
					slog.String("request_id", reqID),
					slog.String("query", req.Query),
					slog.Any("panic", p))
				drainPanic = fmt.Errorf("%w: %v", errEvalPanic, p)
			}
		}()
		if req.Offset > 0 {
			skipped = int64(en.Skip(req.Offset))
		}
		for {
			if req.Limit > 0 && streamed >= int64(req.Limit) {
				limited = true
				return
			}
			t, ok := en.Next()
			if !ok {
				return
			}
			if collect != nil {
				collect.Add(t)
			}
			if s.testHookOnStreamRow != nil {
				s.testHookOnStreamRow(int(streamed))
			}
			if err := enc.Encode(renderTuple(t, snap.db, req.Indices)); err != nil {
				disconnected = true
				return
			}
			streamed++
			flush()
		}
	}()
	if disconnected {
		s.streamDisconnects.Add(1)
		return status
	}

	err := en.Err()
	if err == nil {
		err = drainPanic
	}
	if err != nil {
		if r.Context().Err() != nil {
			// The client went away: nobody is reading, so no trailer — just
			// count the cut and release the slot promptly (the deferred
			// release runs on return).
			s.streamDisconnects.Add(1)
			return status
		}
		// The server's own deadline — or a contained drain panic — cut the
		// stream: the status line is long gone, so report it in the trailer.
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.timeouts.Add(1)
		}
		en.Close() // fold acyclic-route stats before reading them
		_ = enc.Encode(StreamTrailer{
			Trailer:   true,
			Streamed:  streamed,
			Skipped:   skipped,
			Stats:     statsJSON(dispStats),
			Error:     err.Error(),
			ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		})
		flush()
		return status
	}

	exhausted := !limited
	if exhausted && !countKnown {
		// Draining a non-counting route to the end IS a count.
		fullCount, countKnown = int(skipped+streamed), true
	}
	if collect != nil && exhausted {
		tracked := &cache.Tracked{
			Key:    key,
			Engine: engineName,
			Query:  req.Query,
			Opts: &eval.Options{MaxWidth: opts.MaxWidth, Backend: opts.Backend,
				PFPBudget: opts.PFPBudget, PFPCycle: opts.PFPCycle, SparseBudget: opts.SparseBudget},
		}
		if pl.Prepared != nil && pl.Prepared.Maint != nil {
			tracked.Footprint = pl.Prepared.Maint.Rels
			if engine == bvq.EngineCompiled {
				tracked.Plan = pl.Prepared
				tracked.State = mstate
			}
		}
		s.storeResult(nd, snap, key, cache.Result{Answer: collect, Stats: runStats}, tracked)
	}

	en.Close() // fold acyclic-route stats before the trailer reads them
	trailer := StreamTrailer{
		Trailer:   true,
		Streamed:  streamed,
		Skipped:   skipped,
		Stats:     statsJSON(dispStats),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	if countKnown {
		c := fullCount
		trailer.Count = &c
		if resp.Arity == 0 {
			truth := fullCount > 0
			trailer.Truth = &truth
		}
	}
	if err := enc.Encode(trailer); err != nil {
		s.streamDisconnects.Add(1)
		return status
	}
	flush()
	return status
}
