package server

import (
	"time"

	"repro/internal/metrics"
)

// serverMetrics is the Prometheus-facing view of the server. Counters that
// already exist as atomics on Server (kept for the JSON /stats endpoint) are
// exposed through func-backed collectors read at scrape time — one source of
// truth, no double bookkeeping. Only the instruments with no /stats
// counterpart (latency histograms, shed, recovered panics, slow queries,
// per-status responses) are first-class metrics.
type serverMetrics struct {
	registry *metrics.Registry
	latency  *metrics.HistogramVec // bvqd_query_latency_seconds{engine}
	shed     *metrics.Counter      // bvqd_shed_total
	panics   *metrics.Counter      // bvqd_panics_recovered_total
	slow     *metrics.Counter      // bvqd_slow_queries_total
	statuses *metrics.CounterVec   // bvqd_responses_total{code}
	backends *metrics.CounterVec   // bvqd_queries_by_backend_total{backend}
	stages   *metrics.HistogramVec // bvqd_stage_seconds{stage}

	updates       *metrics.Counter    // bvqd_updates_total
	maintained    *metrics.Counter    // bvqd_maintained_results_total
	invalidations *metrics.CounterVec // bvqd_cache_invalidations_total{reason}
}

func newServerMetrics(s *Server) *serverMetrics {
	r := metrics.NewRegistry()
	m := &serverMetrics{
		registry: r,
		latency: r.NewHistogramVec("bvqd_query_latency_seconds",
			"End-to-end /query handling latency by evaluation engine.",
			"engine", metrics.DefBuckets),
		shed: r.NewCounter("bvqd_shed_total",
			"Requests shed with 429 by the admission controller."),
		panics: r.NewCounter("bvqd_panics_recovered_total",
			"Evaluator panics recovered and converted to 500 responses."),
		slow: r.NewCounter("bvqd_slow_queries_total",
			"Requests slower than the slow-query threshold."),
		statuses: r.NewCounterVec("bvqd_responses_total",
			"Responses to /query by HTTP status code.", "code"),
		backends: r.NewCounterVec("bvqd_queries_by_backend_total",
			"Requests by requested relation backend (auto, dense, sparse).", "backend"),
		stages: r.NewHistogramVec("bvqd_stage_seconds",
			"Per-stage request latency (admission_wait, cache_lookup, compile, eval, fixpoint, extract, stream_drain), sampled at the flight-recorder rate.",
			"stage", metrics.DefBuckets),
		updates: r.NewCounter("bvqd_updates_total",
			"Effective database updates applied via /db/{name}/update."),
		maintained: r.NewCounter("bvqd_maintained_results_total",
			"Cached results incrementally maintained from an update delta."),
		invalidations: r.NewCounterVec("bvqd_cache_invalidations_total",
			"Cached results dropped during update triage, by reason.", "reason"),
	}

	r.NewCounterFunc("bvqd_carried_results_total",
		"Cached results rekeyed unchanged because their footprint missed the delta.",
		s.carriedResults.Load)

	r.NewCounterFunc("bvqd_queries_total",
		"Requests received on /query.", s.queries.Load)
	r.NewCounterFunc("bvqd_errors_total",
		"Requests answered with a 4xx or 5xx status.", s.errorsN.Load)
	r.NewCounterFunc("bvqd_timeouts_total",
		"Requests answered 504 after their evaluation deadline fired.", s.timeouts.Load)
	r.NewCounterFunc("bvqd_coalesced_total",
		"Requests served by another request's in-flight evaluation.", s.coalesced.Load)
	r.NewCounterFunc("bvqd_streams_total",
		"Requests answered as NDJSON streams.", s.streams.Load)
	r.NewCounterFunc("bvqd_stream_disconnects_total",
		"NDJSON streams cut mid-answer by a client disconnect.", s.streamDisconnects.Load)

	r.NewGaugeFunc("bvqd_requests_in_flight",
		"/query requests currently being handled.", s.requestsInFlight.Load)
	r.NewGaugeFunc("bvqd_evals_in_flight",
		"Evaluations currently running (after dedup and admission).", s.evalsInFlight.Load)
	r.NewGaugeFunc("bvqd_queue_depth",
		"Requests waiting for an evaluation slot.", s.limiter.queueDepth)
	r.NewGaugeFunc("bvqd_eval_slots_in_use",
		"Admission-controller evaluation slots currently held.", s.limiter.inUse)

	r.NewCounterFunc("bvqd_plan_cache_hits_total",
		"Plan cache lookups served without parsing.",
		func() int64 { h, _, _ := s.plans.Counters(); return h })
	r.NewCounterFunc("bvqd_plan_cache_misses_total",
		"Plan cache lookups that had to parse and compile.",
		func() int64 { _, m, _ := s.plans.Counters(); return m })
	r.NewCounterFunc("bvqd_plan_cache_evictions_total",
		"Plans evicted from the LRU plan cache.",
		func() int64 { _, _, e := s.plans.Counters(); return e })
	r.NewGaugeFunc("bvqd_plan_cache_size",
		"Entries currently in the plan cache.",
		func() int64 { return int64(s.plans.Len()) })
	r.NewCounterFunc("bvqd_result_cache_hits_total",
		"Result cache lookups served without evaluating.",
		func() int64 { h, _, _ := s.results.Counters(); return h })
	r.NewCounterFunc("bvqd_result_cache_misses_total",
		"Result cache lookups that fell through to evaluation.",
		func() int64 { _, m, _ := s.results.Counters(); return m })
	r.NewCounterFunc("bvqd_result_cache_evictions_total",
		"Results evicted from the LRU result cache.",
		func() int64 { _, _, e := s.results.Counters(); return e })
	r.NewGaugeFunc("bvqd_result_cache_size",
		"Entries currently in the result cache.",
		func() int64 { return int64(s.results.Len()) })

	r.NewCounterFunc("bvqd_eval_subformula_evals_total",
		"Subformula evaluations across all runs, including partial ones.",
		s.subformulaEvals.Load)
	r.NewCounterFunc("bvqd_eval_fix_iterations_total",
		"Fixpoint stages across all runs, including partial ones.",
		s.fixIterations.Load)
	r.NewCounterFunc("bvqd_eval_tuples_touched_total",
		"Tuples written by sparse-backend operations across all runs.",
		s.tuplesTouched.Load)
	r.NewCounterFunc("bvqd_eval_rep_switches_total",
		"Sparse→dense conversions at the hybrid frontier across all runs.",
		s.repSwitches.Load)
	r.NewCounterFunc("bvqd_eval_acyclic_fastpath_total",
		"Queries answered by the Yannakakis acyclic-join fast path.",
		s.acyclicFast.Load)

	r.NewCounterFunc("bvqd_traces_recorded_total",
		"Finished request traces filed with the flight recorder.",
		func() int64 { return s.recorder.Recorded() })
	r.NewCounterFunc("bvqd_traces_kept_total",
		"Traces retained in the always-keep buffer (slow, error, shed).",
		func() int64 { return s.recorder.Kept() })
	r.NewGaugeFunc("bvqd_trace_ring_size",
		"Traces currently retained in the flight-recorder ring.",
		func() int64 { ring, _ := s.recorder.Len(); return int64(ring) })
	r.NewGaugeFunc("bvqd_trace_keep_size",
		"Traces currently retained in the always-keep buffer.",
		func() int64 { _, keep := s.recorder.Len(); return int64(keep) })

	r.NewGaugeFunc("bvqd_uptime_seconds",
		"Seconds since the server started.",
		func() int64 { return int64(time.Since(s.start).Seconds()) })
	return m
}

// observe records one finished /query request: latency under the resolved
// engine name and the response status.
func (m *serverMetrics) observe(engine string, status int, elapsed time.Duration) {
	if engine == "" {
		engine = "unknown"
	}
	m.latency.With(engine).Observe(elapsed.Seconds())
	m.statuses.With(statusLabel(status)).Inc()
}

// statusLabel stringifies the handful of status codes the handler emits
// without allocating through strconv at steady state.
func statusLabel(code int) string {
	switch code {
	case 200:
		return "200"
	case 400:
		return "400"
	case 404:
		return "404"
	case 409:
		return "409"
	case 422:
		return "422"
	case 429:
		return "429"
	case 500:
		return "500"
	case 504:
		return "504"
	}
	return "other"
}
