package grammar

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

func TestEvalParallelMatchesSerial(t *testing.T) {
	db := fixedDB(t)
	ev, err := NewWordEvaluator(db, []logic.Var{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		f := randFO2(r, 5)
		word, err := Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := ev.Eval(word)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := ev.EvalParallel(word)
		if err != nil {
			t.Fatal(err)
		}
		if !serial.Equal(parallel) {
			t.Fatalf("parallel differs for %s", f)
		}
	}
}

func TestEvalParallelErrors(t *testing.T) {
	db := fixedDB(t)
	ev, err := NewWordEvaluator(db, []logic.Var{"x"})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]string{
		{"("},
		{")"},
		{"(", "nosuch", ")"},
		{"(", "(", "true", ")", "(", "true", ")", ")"},
		{"true"},
	}
	for _, w := range bad {
		if _, err := ev.EvalParallel(w); err == nil {
			t.Errorf("EvalParallel(%v) succeeded", w)
		}
	}
}

// wideWord builds a balanced, fan-out-heavy word: a big disjunction of
// conjunctions, to give the parallel evaluator independent siblings.
func wideWord(t testing.TB, breadth, depth int) []string {
	t.Helper()
	var build func(d int) logic.Formula
	build = func(d int) logic.Formula {
		if d == 0 {
			return logic.R("P", "x")
		}
		return logic.Or(logic.And(build(d-1), build(d-1)), logic.R("E", "x", "y"))
	}
	f := build(depth)
	for i := 1; i < breadth; i++ {
		f = logic.Or(f, build(depth))
	}
	word, err := Compile(f)
	if err != nil {
		t.Fatal(err)
	}
	return word
}

func TestEvalParallelDeepWide(t *testing.T) {
	db := fixedDB(t)
	ev, err := NewWordEvaluator(db, []logic.Var{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	word := wideWord(t, 8, 6)
	serial, err := ev.Eval(word)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := ev.EvalParallel(word)
	if err != nil {
		t.Fatal(err)
	}
	if !serial.Equal(parallel) {
		t.Fatal("parallel differs on deep-wide word")
	}
}

func BenchmarkEvalSerial(b *testing.B) {
	db := fixedDB(b)
	ev, err := NewWordEvaluator(db, []logic.Var{"x", "y"})
	if err != nil {
		b.Fatal(err)
	}
	word := wideWord(b, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(word); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalParallel(b *testing.B) {
	db := fixedDB(b)
	ev, err := NewWordEvaluator(db, []logic.Var{"x", "y"})
	if err != nil {
		b.Fatal(err)
	}
	word := wideWord(b, 16, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ev.EvalParallel(word); err != nil {
			b.Fatal(err)
		}
	}
}
