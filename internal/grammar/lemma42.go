package grammar

import (
	"fmt"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
)

// Algebra is the finite algebra of Lemma 4.2: for a fixed database B with n
// elements and a fixed width k, the 2^(nᵏ) k-ary relations over the domain,
// indexed by their cell bitmask.
type Algebra struct {
	db   *database.Database
	vars []logic.Var
	sp   *relation.Space
	rels []*relation.Dense
	eval *WordEvaluator
}

// NewAlgebra enumerates the algebra. It fails if nᵏ > MaxAlgebraCells,
// since the enumeration has 2^(nᵏ) elements (the construction is a proof
// device for fixed B; use WordEvaluator directly for larger databases).
func NewAlgebra(db *database.Database, vars []logic.Var) (*Algebra, error) {
	sp, err := relation.NewSpace(len(vars), db.Size())
	if err != nil {
		return nil, err
	}
	if sp.Size() > MaxAlgebraCells {
		return nil, fmt.Errorf("grammar: algebra would have 2^%d relations (cap 2^%d)", sp.Size(), MaxAlgebraCells)
	}
	ev, err := NewWordEvaluator(db, vars)
	if err != nil {
		return nil, err
	}
	a := &Algebra{db: db, vars: vars, sp: sp, eval: ev}
	count := 1 << uint(sp.Size())
	a.rels = make([]*relation.Dense, count)
	for mask := 0; mask < count; mask++ {
		d := sp.Empty()
		for bit := 0; bit < sp.Size(); bit++ {
			if mask&(1<<uint(bit)) != 0 {
				d.Add(sp.Decode(bit, nil))
			}
		}
		a.rels[mask] = d
	}
	return a, nil
}

// Len returns the number of relations in the algebra.
func (a *Algebra) Len() int { return len(a.rels) }

// Rel returns relation number i.
func (a *Algebra) Rel(i int) *relation.Dense { return a.rels[i] }

// IndexOf returns the algebra index of d.
func (a *Algebra) IndexOf(d *relation.Dense) (int, error) {
	if !d.Space().SameShape(a.sp) {
		return 0, fmt.Errorf("grammar: relation shape mismatch")
	}
	mask := 0
	d.ForEach(func(t relation.Tuple) {
		mask |= 1 << uint(a.sp.Encode(t))
	})
	return mask, nil
}

// NonterminalFor names the nonterminal (and answer terminal) of relation i.
func (a *Algebra) NonterminalFor(i int) string { return fmt.Sprintf("r%d", i) }

// BuildGrammar emits the Lemma 4.2 parenthesis grammar G(B):
//
//	S    → ( rᵢ @ rᵢ )                         (answer check)
//	rᵢ   → ( t )          for each atom token t with value rᵢ
//	rᵢ   → ( rⱼ op r_m )  whenever rᵢ = rⱼ op r_m
//	rᵢ   → ( ! rⱼ )       whenever rᵢ = complement of rⱼ
//	rᵢ   → ( Q:x rⱼ )     whenever rᵢ = quantification of rⱼ along x
//
// so that ( w(φ) @ rᵢ ) ∈ L(G) exactly when φ evaluates to relation rᵢ
// in B.
func (a *Algebra) BuildGrammar() (*Grammar, error) {
	g := New("S")
	// Answer-check productions.
	for i := range a.rels {
		nt := a.NonterminalFor(i)
		g.MustAdd("S", N(nt), T("@"), T(nt))
	}
	// Atom productions.
	for tok, val := range a.eval.AtomTokens() {
		idx, err := a.IndexOf(val)
		if err != nil {
			return nil, err
		}
		g.MustAdd(a.NonterminalFor(idx), T(tok))
	}
	// Unary operations.
	for j, rj := range a.rels {
		c := rj.Clone()
		c.Complement()
		ci, err := a.IndexOf(c)
		if err != nil {
			return nil, err
		}
		g.MustAdd(a.NonterminalFor(ci), T("!"), N(a.NonterminalFor(j)))
		for ax, v := range a.vars {
			ei, err := a.IndexOf(rj.ExistsAxis(ax))
			if err != nil {
				return nil, err
			}
			g.MustAdd(a.NonterminalFor(ei), T("E:"+string(v)), N(a.NonterminalFor(j)))
			fi, err := a.IndexOf(rj.ForallAxis(ax))
			if err != nil {
				return nil, err
			}
			g.MustAdd(a.NonterminalFor(fi), T("A:"+string(v)), N(a.NonterminalFor(j)))
		}
	}
	// Binary operations.
	type binOp struct {
		tok   string
		apply func(l, r *relation.Dense) *relation.Dense
	}
	ops := []binOp{
		{"&", func(l, r *relation.Dense) *relation.Dense {
			o := l.Clone()
			o.IntersectWith(r)
			return o
		}},
		{"|", func(l, r *relation.Dense) *relation.Dense {
			o := l.Clone()
			o.UnionWith(r)
			return o
		}},
		{"->", func(l, r *relation.Dense) *relation.Dense {
			o := l.Clone()
			o.Complement()
			o.UnionWith(r)
			return o
		}},
		{"<->", func(l, r *relation.Dense) *relation.Dense {
			o := l.Clone()
			o.IntersectWith(r)
			nl := l.Clone()
			nl.Complement()
			nr := r.Clone()
			nr.Complement()
			nl.IntersectWith(nr)
			o.UnionWith(nl)
			return o
		}},
	}
	for _, op := range ops {
		for j, rj := range a.rels {
			for m, rm := range a.rels {
				idx, err := a.IndexOf(op.apply(rj, rm))
				if err != nil {
					return nil, err
				}
				g.MustAdd(a.NonterminalFor(idx), N(a.NonterminalFor(j)), T(op.tok), N(a.NonterminalFor(m)))
			}
		}
	}
	return g, nil
}

// MembershipWord builds the paper's ( φ@rᵢ ) word from a compiled formula
// word and a claimed answer index.
func (a *Algebra) MembershipWord(word []string, idx int) []string {
	out := make([]string, 0, len(word)+4)
	out = append(out, "(")
	out = append(out, word...)
	out = append(out, "@", a.NonterminalFor(idx), ")")
	return out
}

// EvalFormula compiles and evaluates an FO formula over the algebra's
// database, returning its algebra index.
func (a *Algebra) EvalFormula(f logic.Formula) (int, error) {
	word, err := Compile(f)
	if err != nil {
		return 0, err
	}
	d, err := a.eval.Eval(word)
	if err != nil {
		return 0, err
	}
	return a.IndexOf(d)
}
