// Package grammar implements parenthesis grammars and the Lemma 4.2
// construction of Vardi (PODS 1995): for a fixed database B there are only
// finitely many k-ary relations, so an FOᵏ query is an algebraic expression
// over a finite algebra, and the set { (φ@r) | φ evaluates to r in B } is a
// parenthesis language — recognizable in LOGSPACE (Lynch 1977) and in fact
// in ALOGTIME (Buss 1987). This pins the expression complexity of FOᵏ far
// below its PTIME-complete combined complexity.
//
// The package provides:
//
//   - general parenthesis grammars and their recognition (a bottom-up pass
//     over the bracket tree — the deterministic realization of Lynch's
//     algorithm);
//   - the G(B) construction: enumerate the finite algebra of k-ary
//     relations over B and emit one production per algebra operation;
//   - compilation of FOᵏ formulas to parenthesis words, and a one-pass
//     stack evaluator for those words over an arbitrary database (linear in
//     the expression length once B is fixed).
package grammar

import (
	"fmt"
	"strings"
)

// Sym is a grammar symbol: a terminal token or a nonterminal reference.
type Sym struct {
	NT bool
	S  string
}

// T builds a terminal symbol, N a nonterminal one.
func T(s string) Sym { return Sym{S: s} }

// N builds a nonterminal symbol.
func N(s string) Sym { return Sym{NT: true, S: s} }

// Production is A → ( RHS ): parenthesis grammars wrap every right-hand
// side in the distinguished brackets, and the RHS itself is
// parenthesis-free.
type Production struct {
	Lhs string
	Rhs []Sym
}

// Grammar is a parenthesis grammar.
type Grammar struct {
	Start string
	Prods []Production
	// byLen indexes productions by RHS length for the recognizer.
	byLen map[int][]int
}

// New returns a grammar with the given start symbol.
func New(start string) *Grammar {
	return &Grammar{Start: start, byLen: make(map[int][]int)}
}

// Add appends a production A → ( rhs ). The RHS must be parenthesis-free.
func (g *Grammar) Add(lhs string, rhs ...Sym) error {
	if lhs == "" {
		return fmt.Errorf("grammar: empty nonterminal")
	}
	for _, s := range rhs {
		if !s.NT && (s.S == "(" || s.S == ")") {
			return fmt.Errorf("grammar: parenthesis inside a production body")
		}
	}
	g.byLen[len(rhs)] = append(g.byLen[len(rhs)], len(g.Prods))
	g.Prods = append(g.Prods, Production{Lhs: lhs, Rhs: rhs})
	return nil
}

// MustAdd is Add that panics on error.
func (g *Grammar) MustAdd(lhs string, rhs ...Sym) {
	if err := g.Add(lhs, rhs...); err != nil {
		panic(err)
	}
}

// Size returns the number of productions.
func (g *Grammar) Size() int { return len(g.Prods) }

// item is a node of the bracket tree: either a terminal token or a balanced
// segment with its set of deriving nonterminals.
type item struct {
	terminal string
	labels   map[string]bool // nil for terminals
}

// Labels returns the set of nonterminals deriving the word, which must be a
// single balanced segment "( … )". The recognizer walks the bracket tree
// bottom-up, labeling every balanced segment — per-node work is linear in
// the productions of matching length, so the whole pass is
// O(|word| · |productions|).
func (g *Grammar) Labels(word []string) (map[string]bool, error) {
	if len(word) == 0 {
		return nil, fmt.Errorf("grammar: empty word")
	}
	var stack [][]item
	cur := []item{}
	depth := 0
	for i, tok := range word {
		switch tok {
		case "(":
			stack = append(stack, cur)
			cur = []item{}
			depth++
		case ")":
			if depth == 0 {
				return nil, fmt.Errorf("grammar: unbalanced ')' at token %d", i)
			}
			labels := g.reduce(cur)
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cur = append(cur, item{labels: labels})
			depth--
		default:
			if depth == 0 {
				return nil, fmt.Errorf("grammar: token %q outside brackets", tok)
			}
			cur = append(cur, item{terminal: tok})
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("grammar: unbalanced '('")
	}
	if len(cur) != 1 || cur[0].labels == nil {
		return nil, fmt.Errorf("grammar: word is not a single balanced segment")
	}
	return cur[0].labels, nil
}

// reduce computes the nonterminals deriving "( items )".
func (g *Grammar) reduce(items []item) map[string]bool {
	out := make(map[string]bool)
	for _, pi := range g.byLen[len(items)] {
		p := g.Prods[pi]
		ok := true
		for i, s := range p.Rhs {
			if s.NT {
				if items[i].labels == nil || !items[i].labels[s.S] {
					ok = false
					break
				}
			} else {
				if items[i].labels != nil || items[i].terminal != s.S {
					ok = false
					break
				}
			}
		}
		if ok {
			out[p.Lhs] = true
		}
	}
	return out
}

// Recognize reports whether the word is derivable from the start symbol.
func (g *Grammar) Recognize(word []string) (bool, error) {
	labels, err := g.Labels(word)
	if err != nil {
		return false, err
	}
	return labels[g.Start], nil
}

// WordString renders a word for debugging.
func WordString(word []string) string { return strings.Join(word, " ") }
