package grammar

import (
	"math/rand"
	"testing"

	"repro/internal/boolexpr"
	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/logic"
	"repro/internal/prop"
)

func TestParenGrammarBasics(t *testing.T) {
	// Balanced-parenthesis counting grammar: A → (), A → (A), A → (A A)
	// over the "bracket-only" alphabet, encoded with nested segments.
	g := New("A")
	g.MustAdd("A")                 // A → ( )
	g.MustAdd("A", N("A"))         // A → ( A )
	g.MustAdd("A", N("A"), N("A")) // A → ( A A )

	yes := [][]string{
		{"(", ")"},
		{"(", "(", ")", ")"},
		{"(", "(", ")", "(", ")", ")"},
	}
	for _, w := range yes {
		ok, err := g.Recognize(w)
		if err != nil {
			t.Fatalf("Recognize(%v): %v", w, err)
		}
		if !ok {
			t.Fatalf("%v not recognized", w)
		}
	}
	bad := [][]string{
		{"("},
		{")", "("},
		{"(", ")", "(", ")"}, // two segments
		{"(", "x", ")"},      // unknown terminal
	}
	for _, w := range bad {
		ok, err := g.Recognize(w)
		if err == nil && ok {
			t.Fatalf("%v recognized", w)
		}
	}
}

func TestAddValidation(t *testing.T) {
	g := New("A")
	if err := g.Add("", T("x")); err == nil {
		t.Fatal("empty nonterminal accepted")
	}
	if err := g.Add("A", T("(")); err == nil {
		t.Fatal("parenthesis in body accepted")
	}
}

func fixedDB(t testing.TB) *database.Database {
	t.Helper()
	return database.NewBuilder().
		Domain(0, 1).
		Relation("P", 1).Add("P", 0).
		Relation("E", 2).Add("E", 0, 1).
		MustBuild()
}

func TestCompileAndEvalWordMatchesBottomUp(t *testing.T) {
	db := fixedDB(t)
	r := rand.New(rand.NewSource(61))
	vars := []logic.Var{"x", "y"}
	ev, err := NewWordEvaluator(db, vars)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 80; trial++ {
		f := randFO2(r, 4)
		word, err := Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ev.Eval(word)
		if err != nil {
			t.Fatalf("Eval(%v): %v", word, err)
		}
		q := logic.MustQuery(vars, cylindrified(f))
		want, err := eval.BottomUp(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.ToSet().Equal(want) {
			t.Fatalf("word eval %v != bottom-up %v for %s", got.ToSet(), want, f)
		}
	}
}

// cylindrified conjoins a tautology mentioning both variables so the query
// head (x, y) is legal regardless of which variables f uses.
func cylindrified(f logic.Formula) logic.Formula {
	return logic.And(f, logic.Or(logic.Equal("x", "x"), logic.Equal("y", "y")))
}

func randFO2(r *rand.Rand, depth int) logic.Formula {
	vars := []logic.Var{"x", "y"}
	v := func() logic.Var { return vars[r.Intn(2)] }
	if depth == 0 || r.Intn(5) == 0 {
		switch r.Intn(4) {
		case 0:
			return logic.R("E", v(), v())
		case 1:
			return logic.R("P", v())
		case 2:
			return logic.Equal(v(), v())
		default:
			return logic.Truth{Value: r.Intn(2) == 0}
		}
	}
	sub := func() logic.Formula { return randFO2(r, depth-1) }
	switch r.Intn(7) {
	case 0:
		return logic.Not{F: sub()}
	case 1:
		return logic.Binary{Op: logic.AndOp, L: sub(), R: sub()}
	case 2:
		return logic.Binary{Op: logic.OrOp, L: sub(), R: sub()}
	case 3:
		return logic.Binary{Op: logic.ImpliesOp, L: sub(), R: sub()}
	case 4:
		return logic.Binary{Op: logic.IffOp, L: sub(), R: sub()}
	default:
		return logic.Quant{Kind: logic.QuantKind(r.Intn(2)), V: v(), F: sub()}
	}
}

func TestLemma42GrammarAgreesWithEvaluation(t *testing.T) {
	// k = 1 over the 2-element database: 2² = 4 cells... n^k = 2 cells,
	// 2² = 4 relations; use k = 2: n^k = 4 cells, 16 relations.
	db := fixedDB(t)
	vars := []logic.Var{"x", "y"}
	alg, err := NewAlgebra(db, vars)
	if err != nil {
		t.Fatal(err)
	}
	if alg.Len() != 16 {
		t.Fatalf("algebra size %d, want 16", alg.Len())
	}
	g, err := alg.BuildGrammar()
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() == 0 {
		t.Fatal("empty grammar")
	}
	r := rand.New(rand.NewSource(67))
	for trial := 0; trial < 40; trial++ {
		f := randFO2(r, 3)
		idx, err := alg.EvalFormula(f)
		if err != nil {
			t.Fatal(err)
		}
		word, err := Compile(f)
		if err != nil {
			t.Fatal(err)
		}
		// The membership word with the right answer is in L(G)…
		ok, err := g.Recognize(alg.MembershipWord(word, idx))
		if err != nil {
			t.Fatalf("Recognize: %v", err)
		}
		if !ok {
			t.Fatalf("correct membership word rejected for %s (index %d)", f, idx)
		}
		// …and with any wrong answer it is not.
		wrong := (idx + 1 + r.Intn(alg.Len()-1)) % alg.Len()
		ok, err = g.Recognize(alg.MembershipWord(word, wrong))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("wrong membership word accepted for %s (claimed %d, true %d)", f, wrong, idx)
		}
	}
}

func TestAlgebraCap(t *testing.T) {
	big := database.NewBuilder().Domain(0, 1, 2, 3, 4).Relation("P", 1).Add("P", 0).MustBuild()
	if _, err := NewAlgebra(big, []logic.Var{"x", "y"}); err == nil {
		t.Fatal("oversized algebra accepted")
	}
}

func TestBFVPThroughGrammar(t *testing.T) {
	// Theorem 4.4 in action: a Boolean formula value instance becomes an
	// FO¹ sentence over the fixed database; the grammar decides its value.
	db := boolexpr.FixedDatabase()
	vars := []logic.Var{"x"}
	alg, err := NewAlgebra(db, vars)
	if err != nil {
		t.Fatal(err)
	}
	g, err := alg.BuildGrammar()
	if err != nil {
		t.Fatal(err)
	}
	full, err := alg.IndexOf(alg.eval.Space().Full())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		bf := prop.RandomValue(r, 5)
		want, err := boolexpr.Eval(bf)
		if err != nil {
			t.Fatal(err)
		}
		fo, err := boolexpr.ToFO(bf)
		if err != nil {
			t.Fatal(err)
		}
		word, err := Compile(fo)
		if err != nil {
			t.Fatal(err)
		}
		// A sentence evaluates to the full unary relation iff it is true
		// (its denotation is cylindric in x).
		ok, err := g.Recognize(alg.MembershipWord(word, full))
		if err != nil {
			t.Fatal(err)
		}
		if ok != want {
			t.Fatalf("grammar evaluates %s to %v, want %v", bf, ok, want)
		}
	}
}

func TestEvalWordErrors(t *testing.T) {
	db := fixedDB(t)
	ev, err := NewWordEvaluator(db, []logic.Var{"x"})
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]string{
		{"("},
		{")"},
		{"(", "nosuch", ")"},
		{"(", "!", ")"},
		{"(", "(", "true", ")", "(", "true", ")", ")"},
		{"(", "E:zz", "(", "true", ")", ")"},
		{"true"},
	}
	for _, w := range bad {
		if _, err := ev.Eval(w); err == nil {
			t.Errorf("Eval(%v) succeeded", w)
		}
	}
}
