package grammar

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/relation"
)

// wordNode is one balanced segment of a compiled word; children are tokens
// or sub-segments.
type wordNode struct {
	items []wordItem
	size  int // total items in this subtree, for spawn decisions
}

type wordItem struct {
	tok string
	sub *wordNode
}

// minParallelSize is the smallest subtree worth a goroutine: below it the
// spawn overhead dwarfs the work.
const minParallelSize = 32

// parseWordTree builds the bracket tree of a word.
func parseWordTree(word []string) (*wordNode, error) {
	var stack []*wordNode
	cur := &wordNode{}
	depth := 0
	for i, tok := range word {
		switch tok {
		case "(":
			stack = append(stack, cur)
			cur = &wordNode{}
			depth++
		case ")":
			if depth == 0 {
				return nil, fmt.Errorf("grammar: unbalanced ')' at token %d", i)
			}
			done := cur
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cur.items = append(cur.items, wordItem{sub: done})
			cur.size += done.size + 1
			depth--
		default:
			if depth == 0 {
				return nil, fmt.Errorf("grammar: token %q outside brackets", tok)
			}
			cur.items = append(cur.items, wordItem{tok: tok})
			cur.size++
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("grammar: unbalanced '('")
	}
	if len(cur.items) != 1 || cur.items[0].sub == nil {
		return nil, fmt.Errorf("grammar: word is not a single expression")
	}
	return cur.items[0].sub, nil
}

// EvalParallel evaluates a compiled word by divide-and-conquer over its
// bracket tree, evaluating independent sub-expressions concurrently. It is
// the executable shadow of the ALOGTIME bound (Cor. 4.3 via Buss 1987):
// the bracket tree of an expression can be evaluated in parallel along its
// structure, since sibling subtrees are independent. The result is
// identical to Eval.
func (e *WordEvaluator) EvalParallel(word []string) (*relation.Dense, error) {
	tree, err := parseWordTree(word)
	if err != nil {
		return nil, err
	}
	// A counting semaphore bounds goroutines at the CPU count; when no slot
	// is free the child is evaluated inline, so progress never blocks.
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	return e.evalNodeParallel(tree, sem)
}

func (e *WordEvaluator) evalNodeParallel(n *wordNode, sem chan struct{}) (*relation.Dense, error) {
	frame := make([]frameItem, len(n.items))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for i, it := range n.items {
		if it.sub == nil {
			frame[i] = frameItem{tok: it.tok}
			continue
		}
		if it.sub.size < minParallelSize {
			v, err := e.evalNodeParallel(it.sub, sem)
			if err != nil {
				return nil, err
			}
			frame[i] = frameItem{val: v}
			continue
		}
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(i int, sub *wordNode) {
				defer wg.Done()
				defer func() { <-sem }()
				v, err := e.evalNodeParallel(sub, sem)
				if err != nil {
					setErr(err)
					return
				}
				frame[i] = frameItem{val: v}
			}(i, it.sub)
		default:
			v, err := e.evalNodeParallel(it.sub, sem)
			if err != nil {
				return nil, err
			}
			frame[i] = frameItem{val: v}
		}
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return e.reduceFrame(frame)
}
