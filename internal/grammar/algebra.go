package grammar

import (
	"fmt"
	"strings"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
)

// MaxAlgebraCells caps the Lemma 4.2 enumeration: the finite algebra has
// 2^(nᵏ) relations, so the construction is only materialized when nᵏ is
// tiny. The *evaluator* below has no such limit — only the explicit grammar
// does, exactly as in the paper (the grammar is a proof device for a fixed
// B).
const MaxAlgebraCells = 12

// Compile renders an FO formula as a parenthesis word over atom and
// operator tokens: the "algebraic expression over a finite algebra" view of
// an FOᵏ query. The word's length is linear in the formula size.
func Compile(f logic.Formula) ([]string, error) {
	var out []string
	var rec func(f logic.Formula) error
	rec = func(f logic.Formula) error {
		switch g := f.(type) {
		case logic.Atom:
			out = append(out, "(", atomToken(g.Rel, g.Args), ")")
		case logic.Eq:
			out = append(out, "(", eqToken(g.L, g.R), ")")
		case logic.Truth:
			if g.Value {
				out = append(out, "(", "true", ")")
			} else {
				out = append(out, "(", "false", ")")
			}
		case logic.Not:
			out = append(out, "(", "!")
			if err := rec(g.F); err != nil {
				return err
			}
			out = append(out, ")")
		case logic.Binary:
			out = append(out, "(")
			if err := rec(g.L); err != nil {
				return err
			}
			out = append(out, g.Op.String())
			if err := rec(g.R); err != nil {
				return err
			}
			out = append(out, ")")
		case logic.Quant:
			out = append(out, "(", quantToken(g.Kind, g.V))
			if err := rec(g.F); err != nil {
				return err
			}
			out = append(out, ")")
		default:
			return fmt.Errorf("grammar: Compile supports FO only, got %T", f)
		}
		return nil
	}
	if err := rec(f); err != nil {
		return nil, err
	}
	return out, nil
}

func atomToken(rel string, args []logic.Var) string {
	parts := make([]string, len(args))
	for i, v := range args {
		parts[i] = string(v)
	}
	return rel + "(" + strings.Join(parts, ",") + ")"
}

func eqToken(l, r logic.Var) string { return string(l) + "=" + string(r) }

func quantToken(kind logic.QuantKind, v logic.Var) string {
	if kind == logic.ExistsQ {
		return "E:" + string(v)
	}
	return "A:" + string(v)
}

// WordEvaluator evaluates compiled parenthesis words over a database with a
// single left-to-right pass and a value stack: the deterministic engine
// behind Corollary 4.3 — once B is fixed, each reduction step manipulates
// constant-size values (k-ary relations over B), so evaluation is linear in
// the word length.
type WordEvaluator struct {
	sp    *relation.Space
	vars  []logic.Var
	axis  map[logic.Var]int
	atoms map[string]*relation.Dense
}

// NewWordEvaluator precomputes the atom table for all database relations
// applied to all argument combinations of the given variables.
func NewWordEvaluator(db *database.Database, vars []logic.Var) (*WordEvaluator, error) {
	sp, err := relation.NewSpace(len(vars), db.Size())
	if err != nil {
		return nil, err
	}
	e := &WordEvaluator{sp: sp, vars: vars, axis: make(map[logic.Var]int), atoms: make(map[string]*relation.Dense)}
	for i, v := range vars {
		e.axis[v] = i
	}
	e.atoms["true"] = sp.Full()
	e.atoms["false"] = sp.Empty()
	for i, l := range vars {
		for j, r := range vars {
			e.atoms[eqToken(l, r)] = sp.Diagonal(i, j)
		}
	}
	for _, name := range db.Names() {
		rel, err := db.Rel(name)
		if err != nil {
			return nil, err
		}
		arity, _ := db.Arity(name)
		args := make([]logic.Var, arity)
		axes := make([]int, arity)
		var recArgs func(i int) error
		recArgs = func(i int) error {
			if i == arity {
				d, err := sp.FromAtom(rel, append([]int(nil), axes...))
				if err != nil {
					return err
				}
				e.atoms[atomToken(name, args)] = d
				return nil
			}
			for ai, v := range vars {
				args[i] = v
				axes[i] = ai
				if err := recArgs(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := recArgs(0); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Space returns the evaluator's relation space.
func (e *WordEvaluator) Space() *relation.Space { return e.sp }

// AtomTokens returns the precomputed atom tokens (sorted order not
// guaranteed); used by the grammar construction.
func (e *WordEvaluator) AtomTokens() map[string]*relation.Dense { return e.atoms }

// frameItem is one entry of the stack evaluator's current frame: a reduced
// relation value or a pending token.
type frameItem struct {
	val *relation.Dense
	tok string
}

// Eval runs the stack pass and returns the word's relation value.
func (e *WordEvaluator) Eval(word []string) (*relation.Dense, error) {
	var stack [][]frameItem
	var cur []frameItem
	depth := 0
	for i, tok := range word {
		switch tok {
		case "(":
			stack = append(stack, cur)
			cur = nil
			depth++
		case ")":
			if depth == 0 {
				return nil, fmt.Errorf("grammar: unbalanced ')' at token %d", i)
			}
			v, err := e.reduceFrame(cur)
			if err != nil {
				return nil, err
			}
			cur = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cur = append(cur, frameItem{val: v})
			depth--
		default:
			if depth == 0 {
				return nil, fmt.Errorf("grammar: token %q outside brackets", tok)
			}
			cur = append(cur, frameItem{tok: tok})
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("grammar: unbalanced '('")
	}
	if len(cur) != 1 || cur[0].val == nil {
		return nil, fmt.Errorf("grammar: word is not a single expression")
	}
	return cur[0].val, nil
}

func (e *WordEvaluator) reduceFrame(items []frameItem) (*relation.Dense, error) {
	switch len(items) {
	case 1:
		if items[0].val != nil {
			return items[0].val, nil
		}
		if d, ok := e.atoms[items[0].tok]; ok {
			return d.Clone(), nil
		}
		return nil, fmt.Errorf("grammar: unknown atom token %q", items[0].tok)
	case 2:
		tok := items[0].tok
		v := items[1].val
		if v == nil {
			return nil, fmt.Errorf("grammar: operator %q needs an operand", tok)
		}
		switch {
		case tok == "!":
			out := v.Clone()
			out.Complement()
			return out, nil
		case strings.HasPrefix(tok, "E:"), strings.HasPrefix(tok, "A:"):
			ax, ok := e.axis[logic.Var(tok[2:])]
			if !ok {
				return nil, fmt.Errorf("grammar: unknown variable in token %q", tok)
			}
			if tok[0] == 'E' {
				return v.ExistsAxis(ax), nil
			}
			return v.ForallAxis(ax), nil
		default:
			return nil, fmt.Errorf("grammar: unknown unary token %q", tok)
		}
	case 3:
		l, op, r := items[0].val, items[1].tok, items[2].val
		if l == nil || r == nil {
			return nil, fmt.Errorf("grammar: binary operator %q needs two operands", op)
		}
		out := l.Clone()
		switch op {
		case "&":
			out.IntersectWith(r)
		case "|":
			out.UnionWith(r)
		case "->":
			out.Complement()
			out.UnionWith(r)
		case "<->":
			nl := l.Clone()
			nl.Complement()
			nr := r.Clone()
			nr.Complement()
			nl.IntersectWith(nr)
			out.IntersectWith(r)
			out.UnionWith(nl)
		default:
			return nil, fmt.Errorf("grammar: unknown binary operator %q", op)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("grammar: malformed segment of %d items", len(items))
	}
}
