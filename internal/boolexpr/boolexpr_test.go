package boolexpr

import (
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/logic"
	"repro/internal/prop"
)

func TestEvalRejectsVariables(t *testing.T) {
	if _, err := Eval(prop.Var(1)); err == nil {
		t.Fatal("formula with variables accepted")
	}
	if _, err := ToFO(prop.Var(1)); err == nil {
		t.Fatal("ToFO accepted variables")
	}
}

func TestReductionPreservesValue(t *testing.T) {
	db := FixedDatabase()
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		f := prop.RandomValue(r, 6)
		want, err := Eval(f)
		if err != nil {
			t.Fatal(err)
		}
		fo, err := ToFO(f)
		if err != nil {
			t.Fatal(err)
		}
		if w := logic.Width(fo); w != 1 {
			t.Fatalf("reduction width %d, want 1", w)
		}
		q, err := logic.NewQuery(nil, fo)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := eval.BottomUp(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if (ans.Len() > 0) != want {
			t.Fatalf("reduction of %s evaluates to %v, want %v", f, ans.Len() > 0, want)
		}
	}
}

// TestToFOOverAnyNontrivialDatabase exercises footnote 4: the hardness
// reduction works over *every* nontrivial database, not just the canonical
// two-element one.
func TestToFOOverAnyNontrivialDatabase(t *testing.T) {
	dbs := []*database.Database{
		FixedDatabase(),
		// The paper's §2.1 example: ({3,5,7}; E = {⟨3,5⟩,⟨5,7⟩}).
		database.NewBuilder().Relation("E", 2).Add("E", 3, 5).Add("E", 5, 7).MustBuild(),
		// A unary-only structure.
		database.NewBuilder().Domain(0, 1, 2).Relation("Q", 1).Add("Q", 1).MustBuild(),
		// A ternary relation.
		database.NewBuilder().Domain(0, 1).Relation("T", 3).Add("T", 0, 1, 0).MustBuild(),
	}
	r := rand.New(rand.NewSource(31))
	for di, db := range dbs {
		for trial := 0; trial < 25; trial++ {
			f := prop.RandomValue(r, 5)
			want, err := Eval(f)
			if err != nil {
				t.Fatal(err)
			}
			fo, err := ToFOOver(db, f)
			if err != nil {
				t.Fatalf("db %d: %v", di, err)
			}
			q, err := logic.NewQuery(nil, fo)
			if err != nil {
				t.Fatal(err)
			}
			ans, err := eval.BottomUp(q, db)
			if err != nil {
				t.Fatal(err)
			}
			if (ans.Len() > 0) != want {
				t.Fatalf("db %d: reduction of %s = %v, want %v", di, f, ans.Len() > 0, want)
			}
		}
	}
}

func TestToFOOverRejectsTrivial(t *testing.T) {
	trivial := database.NewBuilder().Domain(0).Relation("P", 1).Add("P", 0).MustBuild()
	if _, err := ToFOOver(trivial, prop.Const(true)); err == nil {
		t.Fatal("trivial database accepted")
	}
	full := database.NewBuilder().Domain(0, 1).Relation("P", 1).Add("P", 0).Add("P", 1).MustBuild()
	if _, err := ToFOOver(full, prop.Const(true)); err == nil {
		t.Fatal("database with only D^k relation accepted")
	}
}

func TestReductionSizeLinear(t *testing.T) {
	deep := func(d int) prop.Formula {
		var f prop.Formula = prop.Const(true)
		for i := 0; i < d; i++ {
			f = prop.And{L: f, R: prop.Const(false)}
		}
		return f
	}
	size := func(d int) int {
		fo, err := ToFO(deep(d))
		if err != nil {
			t.Fatal(err)
		}
		return logic.Size(fo)
	}
	if size(20)-size(10) != size(30)-size(20) {
		t.Fatalf("reduction size not linear: %d %d %d", size(10), size(20), size(30))
	}
}
