// Package boolexpr implements the Boolean formula value problem (BFVP) and
// its reduction to the expression complexity of FOᵏ over a fixed database
// (Theorem 4.4 of Vardi, PODS 1995). BFVP — evaluate a variable-free
// formula of ∧, ∨, ¬ and constants — is ALOGTIME-complete (Buss 1987), and
// it embeds into Answer_{FOᵏ}(B) for a fixed two-element database by
// mapping the constants to a true and a false FO¹ sentence and the
// connectives to themselves.
package boolexpr

import (
	"fmt"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/prop"
)

// Eval evaluates a variable-free propositional formula. It is the direct
// BFVP algorithm (linear time).
func Eval(f prop.Formula) (bool, error) {
	if prop.MaxVar(f) != 0 {
		return false, fmt.Errorf("boolexpr: formula has variables")
	}
	return prop.Eval(f, nil), nil
}

// FixedDatabase is the Theorem 4.4 target structure: B = ({0,1}; P = {0}).
// Over it, ∃x P(x) is true and ∀x P(x) is false.
func FixedDatabase() *database.Database {
	return database.NewBuilder().
		Domain(0, 1).
		Relation("P", 1).
		Add("P", 0).
		MustBuild()
}

// ToFOOver maps a BFVP instance to an FO sentence over an arbitrary
// *nontrivial* database (footnote 4 of the paper: a domain with ≥ 2
// elements and a nonempty k-ary relation different from Dᵏ). Such a
// database always provides a true sentence, ∃x̄ R(x̄), and a false one,
// ∀x̄ R(x̄); constants map to those and connectives to themselves, so the
// ALOGTIME-hardness of Theorem 4.4 holds over every nontrivial B.
func ToFOOver(db *database.Database, f prop.Formula) (logic.Formula, error) {
	if !db.Nontrivial() {
		return nil, fmt.Errorf("boolexpr: database is trivial (footnote 4 requires a nontrivial one)")
	}
	name, arity, err := witnessRelation(db)
	if err != nil {
		return nil, err
	}
	vars := make([]logic.Var, arity)
	for i := range vars {
		vars[i] = logic.Var(fmt.Sprintf("x%d", i+1))
	}
	trueS := logic.Exists(logic.R(name, vars...), vars...)
	falseS := logic.Forall(logic.R(name, vars...), vars...)
	var rec func(f prop.Formula) (logic.Formula, error)
	rec = func(f prop.Formula) (logic.Formula, error) {
		switch g := f.(type) {
		case prop.Const:
			if bool(g) {
				return trueS, nil
			}
			return falseS, nil
		case prop.Not:
			sub, err := rec(g.F)
			if err != nil {
				return nil, err
			}
			return logic.Neg(sub), nil
		case prop.And:
			l, err := rec(g.L)
			if err != nil {
				return nil, err
			}
			r, err := rec(g.R)
			if err != nil {
				return nil, err
			}
			return logic.And(l, r), nil
		case prop.Or:
			l, err := rec(g.L)
			if err != nil {
				return nil, err
			}
			r, err := rec(g.R)
			if err != nil {
				return nil, err
			}
			return logic.Or(l, r), nil
		default:
			return nil, fmt.Errorf("boolexpr: formula has variables")
		}
	}
	return rec(f)
}

// witnessRelation finds a relation with 0 < |R| < n^arity.
func witnessRelation(db *database.Database) (string, int, error) {
	n := db.Size()
	for _, name := range db.Names() {
		arity, err := db.Arity(name)
		if err != nil || arity < 1 {
			continue
		}
		rel, err := db.Rel(name)
		if err != nil || rel.Len() == 0 {
			continue
		}
		full := 1
		for i := 0; i < arity; i++ {
			full *= n
		}
		if rel.Len() < full {
			return name, arity, nil
		}
	}
	return "", 0, fmt.Errorf("boolexpr: no witness relation (database is trivial)")
}

// ToFO maps a BFVP instance to an FO¹ sentence over FixedDatabase whose
// truth value equals the formula's value. The mapping is linear-size and
// uses one individual variable, so it lower-bounds the expression
// complexity of FOᵏ for every k ≥ 1.
func ToFO(f prop.Formula) (logic.Formula, error) {
	switch g := f.(type) {
	case prop.Const:
		if bool(g) {
			return logic.Exists(logic.R("P", "x"), "x"), nil
		}
		return logic.Forall(logic.R("P", "x"), "x"), nil
	case prop.Not:
		sub, err := ToFO(g.F)
		if err != nil {
			return nil, err
		}
		return logic.Neg(sub), nil
	case prop.And:
		l, err := ToFO(g.L)
		if err != nil {
			return nil, err
		}
		r, err := ToFO(g.R)
		if err != nil {
			return nil, err
		}
		return logic.And(l, r), nil
	case prop.Or:
		l, err := ToFO(g.L)
		if err != nil {
			return nil, err
		}
		r, err := ToFO(g.R)
		if err != nil {
			return nil, err
		}
		return logic.Or(l, r), nil
	case prop.Var:
		return nil, fmt.Errorf("boolexpr: formula has variables")
	default:
		return nil, fmt.Errorf("boolexpr: unknown formula %T", f)
	}
}
