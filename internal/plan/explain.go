package plan

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
)

// Explain is the JSON-ready annotated view of a compiled plan: the DAG with
// per-node density decisions, the binder summaries with maintenance and
// delta eligibility, and — when the query was actually executed with an
// eval.PlanProfile — per-node eval counts and wall time plus per-binder
// stage counts from the trace events. It is the payload of the server's
// "explain": true mode and of bvq -explain.
type Explain struct {
	Query  string `json:"query"`
	Width  int    `json:"width"`
	Domain int    `json:"domain"`

	NumNodes int `json:"num_nodes"`
	Hoisted  int `json:"hoisted_nodes"`
	CSEHits  int `json:"cse_hits"`
	Root     int `json:"root"`

	// Route is the backend route the evaluator picks for this plan against
	// this domain ("dense", "sparse", "hybrid"; "acyclic" once execution
	// confirms the Yannakakis fast path served it; empty = unevaluable).
	Route         string  `json:"route,omitempty"`
	SpaceFeasible bool    `json:"space_feasible"`
	SparseOK      bool    `json:"sparse_ok"`
	Blocker       string  `json:"sparse_blocker,omitempty"`
	RootEst       float64 `json:"root_tuple_estimate,omitempty"`

	// Maintainable mirrors Maint.OK; Footprint is the relation dependency
	// set driving churn-aware cache invalidation.
	Maintainable bool     `json:"maintainable"`
	Footprint    []string `json:"footprint,omitempty"`

	Binders []ExplainBinder `json:"binders,omitempty"`
	Nodes   []ExplainNode   `json:"nodes"`

	// Executed marks that per-node Evals/WallUS and per-binder Stages carry
	// real measurements rather than zeros.
	Executed bool `json:"executed"`
}

// ExplainBinder summarizes one fixpoint binder.
type ExplainBinder struct {
	Binder int    `json:"binder"`
	Op     string `json:"op"`
	Rel    string `json:"rel"`
	Node   int    `json:"node"`
	// DeltaOK: semi-naive delta evaluation is admissible. Seeded: the binder
	// is restartable from a cached stage under incremental maintenance.
	DeltaOK bool `json:"delta_ok"`
	Seeded  bool `json:"seeded"`
	// SchedNodes/SchedLevels size the per-stage recompute task list and its
	// parallel wave schedule.
	SchedNodes  int `json:"sched_nodes"`
	SchedLevels int `json:"sched_levels"`
	// Execution annotations (Executed=true): fixpoint stages run, summed
	// |delta| over semi-naive passes, busy time inside stage work.
	Stages      int64 `json:"stages,omitempty"`
	DeltaTuples int64 `json:"delta_tuples,omitempty"`
	BusyUS      int64 `json:"busy_us,omitempty"`
}

// ExplainNode is one annotated DAG node.
type ExplainNode struct {
	ID    int    `json:"id"`
	Op    string `json:"op"`
	Label string `json:"label"`
	Kids  []int  `json:"kids,omitempty"`
	// Binder is the owning binder for recursion atoms and fixpoint nodes,
	// -1 otherwise.
	Binder int `json:"binder"`
	// Hoisted: recursion-free, evaluated once per query.
	Hoisted bool `json:"hoisted"`
	// Density annotations (when the analysis was supplied): the hybrid
	// executor's representation choice, negative-complement polarity, the
	// support axes as variable names, and the tuple estimate.
	Mode    string  `json:"mode,omitempty"`
	Neg     bool    `json:"neg,omitempty"`
	Support string  `json:"support,omitempty"`
	Est     float64 `json:"tuple_estimate,omitempty"`
	// Execution annotations (Executed=true): times evaluated and cumulative
	// wall time, inclusive of on-demand child computation.
	Evals  int64 `json:"evals,omitempty"`
	WallUS int64 `json:"wall_us,omitempty"`
}

func opName(op Op) string {
	switch op {
	case OpAtom:
		return "atom"
	case OpEq:
		return "eq"
	case OpConst:
		return "const"
	case OpNot:
		return "not"
	case OpAnd:
		return "and"
	case OpOr:
		return "or"
	case OpExists:
		return "exists"
	case OpForall:
		return "forall"
	case OpFix:
		return "fix"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

func (p *Plan) varName(axis int) string {
	if axis >= 0 && axis < len(p.Vars) {
		return string(p.Vars[axis])
	}
	return fmt.Sprintf("#%d", axis)
}

func (p *Plan) axisList(axes []int) string {
	parts := make([]string, len(axes))
	for i, a := range axes {
		parts[i] = p.varName(a)
	}
	return strings.Join(parts, ",")
}

func (p *Plan) nodeLabel(id int) string {
	nd := &p.Nodes[id]
	switch nd.Op {
	case OpAtom:
		rel := nd.Rel
		if nd.Binder >= 0 {
			rel = fmt.Sprintf("%s·b%d", rel, nd.Binder)
		}
		return fmt.Sprintf("%s(%s)", rel, p.axisList(nd.Args))
	case OpEq:
		return fmt.Sprintf("%s = %s", p.varName(nd.L), p.varName(nd.R))
	case OpConst:
		if nd.Truth {
			return "true"
		}
		return "false"
	case OpNot:
		return "¬"
	case OpAnd:
		return "∧"
	case OpOr:
		return "∨"
	case OpExists:
		return "∃" + p.varName(nd.Axis)
	case OpForall:
		return "∀" + p.varName(nd.Axis)
	case OpFix:
		fx := nd.Fix
		return fmt.Sprintf("[%s %s(%s)](%s)", fx.Op, fx.Rel,
			p.axisList(fx.VarAxes), p.axisList(fx.ArgAxes))
	default:
		return opName(nd.Op)
	}
}

func supportVars(p *Plan, mask uint64) string {
	if mask == 0 {
		return ""
	}
	parts := make([]string, 0, bits.OnesCount64(mask))
	for a := 0; a < len(p.Vars); a++ {
		if mask&(1<<uint(a)) != 0 {
			parts = append(parts, p.varName(a))
		}
	}
	return strings.Join(parts, ",")
}

// Explain builds the annotated view. den may be nil (no density analysis:
// node Mode/Support/Est and the space/sparse verdicts stay zero); domain is
// the database size den was computed for (0 when unknown).
func (p *Plan) Explain(den *Density) *Explain {
	ex := &Explain{
		Query:    p.Query.String(),
		Width:    len(p.Vars),
		NumNodes: p.NumNodes(),
		Hoisted:  p.HoistedNodes(),
		CSEHits:  p.CSEHits,
		Root:     p.Root,
	}
	if p.Maint != nil {
		ex.Maintainable = p.Maint.OK
		ex.Footprint = append([]string(nil), p.Maint.Rels...)
	}
	if den != nil {
		ex.Domain = den.N
		ex.SpaceFeasible = den.SpaceFeasible
		ex.SparseOK = den.SparseOK
		ex.Blocker = den.Blocker
		ex.RootEst = den.RootEst
	}
	ex.Nodes = make([]ExplainNode, len(p.Nodes))
	for id := range p.Nodes {
		nd := &p.Nodes[id]
		en := ExplainNode{
			ID:      id,
			Op:      opName(nd.Op),
			Label:   p.nodeLabel(id),
			Kids:    append([]int(nil), nd.Kids...),
			Binder:  -1,
			Hoisted: p.Deps[id] == 0,
		}
		if nd.Op == OpAtom {
			en.Binder = nd.Binder
		}
		if nd.Op == OpFix {
			en.Binder = nd.Fix.Binder
		}
		if den != nil {
			if den.Mode[id] == NodeSparse {
				en.Mode = "sparse"
			} else {
				en.Mode = "dense"
			}
			en.Neg = den.Neg[id]
			en.Support = supportVars(p, den.Support[id])
			en.Est = den.Est[id]
		}
		ex.Nodes[id] = en
	}
	ex.Binders = make([]ExplainBinder, p.NumBinders)
	for b := 0; b < p.NumBinders; b++ {
		fx := p.Nodes[p.FixOf[b]].Fix
		eb := ExplainBinder{
			Binder:     b,
			Op:         fx.Op.String(),
			Rel:        fx.Rel,
			Node:       p.FixOf[b],
			DeltaOK:    p.DeltaOK[b],
			SchedNodes: len(p.Sched[b]),
		}
		if p.SchedLevels != nil {
			eb.SchedLevels = len(p.SchedLevels[b])
		}
		if p.Maint != nil && b < len(p.Maint.Seeded) {
			eb.Seeded = p.Maint.Seeded[b]
		}
		ex.Binders[b] = eb
	}
	return ex
}

// AttachProfile folds an execution profile (per-node eval counts and
// nanoseconds, indexed by node id — eval.PlanProfile's arrays) into the
// node annotations and marks the explain as executed.
func (ex *Explain) AttachProfile(evals, ns []int64) {
	for i := range ex.Nodes {
		if i < len(evals) {
			ex.Nodes[i].Evals = evals[i]
		}
		if i < len(ns) {
			ex.Nodes[i].WallUS = ns[i] / 1e3
		}
	}
	ex.Executed = true
}

// AttachBinderStages adds one binder's execution totals (from trace stage
// events): fixpoint stages run, summed |delta| tuples, busy nanoseconds.
func (ex *Explain) AttachBinderStages(binder int, stages, deltaTuples, busyNS int64) {
	if binder < 0 || binder >= len(ex.Binders) {
		return
	}
	ex.Binders[binder].Stages += stages
	ex.Binders[binder].DeltaTuples += deltaTuples
	ex.Binders[binder].BusyUS += busyNS / 1e3
	ex.Executed = true
}

// Render writes the explain as an ASCII tree. The DAG is printed as a tree
// rooted at Root; a shared node (CSE) prints in full at its first visit and
// as a back-reference (↺ n<id>) afterwards, so the output stays linear in
// the DAG size.
func (ex *Explain) Render(w io.Writer) {
	fmt.Fprintf(w, "query: %s\n", ex.Query)
	fmt.Fprintf(w, "width %d", ex.Width)
	if ex.Domain > 0 {
		fmt.Fprintf(w, " · domain %d", ex.Domain)
	}
	fmt.Fprintf(w, " · %d nodes (%d hoisted, %d cse hits)", ex.NumNodes, ex.Hoisted, ex.CSEHits)
	if ex.Route != "" {
		fmt.Fprintf(w, " · route %s", ex.Route)
	}
	if ex.Maintainable {
		fmt.Fprintf(w, " · maintainable")
	}
	fmt.Fprintln(w)
	if len(ex.Footprint) > 0 {
		fmt.Fprintf(w, "footprint: %s\n", strings.Join(ex.Footprint, " "))
	}
	if !ex.SparseOK && ex.Blocker != "" {
		fmt.Fprintf(w, "sparse blocked: %s\n", ex.Blocker)
	}
	for _, b := range ex.Binders {
		fmt.Fprintf(w, "binder %d: %s %s · %d sched nodes / %d waves", b.Binder, b.Op, b.Rel, b.SchedNodes, b.SchedLevels)
		if b.DeltaOK {
			fmt.Fprintf(w, " · semi-naive")
		}
		if b.Seeded {
			fmt.Fprintf(w, " · seedable")
		}
		if ex.Executed && b.Stages > 0 {
			fmt.Fprintf(w, " · %d stages, %d delta tuples, %dus busy", b.Stages, b.DeltaTuples, b.BusyUS)
		}
		fmt.Fprintln(w)
	}
	seen := map[int]bool{ex.Root: true}
	root := &ex.Nodes[ex.Root]
	fmt.Fprintf(w, "%s\n", ex.nodeLine(ex.Root))
	for i, kid := range root.Kids {
		ex.renderNode(w, kid, "", i == len(root.Kids)-1, seen)
	}
}

func (ex *Explain) renderNode(w io.Writer, id int, prefix string, last bool, seen map[int]bool) {
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	n := &ex.Nodes[id]
	if seen[id] {
		fmt.Fprintf(w, "%s%s↺ n%d %s\n", prefix, branch, id, n.Label)
		return
	}
	seen[id] = true
	fmt.Fprintf(w, "%s%s%s\n", prefix, branch, ex.nodeLine(id))
	for i, kid := range n.Kids {
		ex.renderNode(w, kid, childPrefix, i == len(n.Kids)-1, seen)
	}
}

// nodeLine formats one node's tree line: id, label and the bracketed
// annotations (hoisting, sparse mode, estimate, profile).
func (ex *Explain) nodeLine(id int) string {
	n := &ex.Nodes[id]
	var ann []string
	if n.Hoisted {
		ann = append(ann, "hoisted")
	}
	if n.Mode == "sparse" {
		s := "sparse"
		if n.Neg {
			s += "¬"
		}
		if n.Support != "" {
			s += "{" + n.Support + "}"
		}
		ann = append(ann, s)
	}
	if n.Est >= 1 {
		ann = append(ann, fmt.Sprintf("~%.3g tuples", n.Est))
	}
	if ex.Executed && n.Evals > 0 {
		ann = append(ann, fmt.Sprintf("%d evals %dus", n.Evals, n.WallUS))
	}
	line := fmt.Sprintf("n%d %s", id, n.Label)
	if len(ann) > 0 {
		line += "  [" + strings.Join(ann, " · ") + "]"
	}
	return line
}

// TopNodes returns up to k node ids ordered by descending wall time — the
// hot list the server folds into slow-query logs. Zero-eval nodes are
// skipped.
func (ex *Explain) TopNodes(k int) []int {
	ids := make([]int, 0, len(ex.Nodes))
	for i := range ex.Nodes {
		if ex.Nodes[i].Evals > 0 {
			ids = append(ids, i)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		return ex.Nodes[ids[a]].WallUS > ex.Nodes[ids[b]].WallUS
	})
	if len(ids) > k {
		ids = ids[:k]
	}
	return ids
}
