// Package plan compiles a validated query body into a DAG of
// relational-algebra nodes over full-width dense relations — the compiled
// counterpart of the tree-walking Proposition 3.1 evaluator in
// internal/eval.
//
// Compilation performs three static analyses the interpreter cannot:
//
//   - Common-subexpression elimination. Structurally identical subformulas
//     are hash-consed to a single DAG node, so a subformula occurring twice
//     (textually or through CSE across fixpoint bodies) is evaluated once.
//     Recursion-relation atoms participate with their binder identity, not
//     their name: two sibling fixpoints that both bind S produce distinct
//     atom nodes, so a value computed under one binder can never be replayed
//     under the other (the stale-memo hazard that internal/eval/monotone.go
//     documents).
//
//   - Dependency analysis. Every node carries the set of fixpoint binders
//     whose current stage value it (transitively) reads. A node with an
//     empty set is recursion-free and is hoisted: the executor evaluates it
//     exactly once per query, no matter how many fixpoint iterations re-visit
//     it. Per binder, Dirty lists the nodes that must be re-evaluated when
//     that binder's stage advances — everything else is served from the DAG
//     value cache.
//
//   - Delta admissibility. A binder whose dirty set consists solely of
//     monotone operators (recursion atoms, ∧, ∨, ∃, ∀) supports semi-naive
//     evaluation: stage deltas can be pushed through the dirty nodes instead
//     of recomputing them, the tuple-level reading of the paper's footnote-5
//     l·nᵏ observation and the exact discipline of internal/datalog's
//     semi-naive loop.
//
// The package is purely symbolic (variables are resolved to axis numbers of
// the query's full-width space); execution lives in internal/eval's Compiled
// engine.
package plan

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/logic"
)

// Op enumerates the DAG node kinds.
type Op int

const (
	// OpAtom is a relational atom: a database relation when Binder < 0,
	// or the current stage of a fixpoint recursion relation when Binder ≥ 0.
	OpAtom Op = iota
	// OpEq is the diagonal { t | t_L = t_R }.
	OpEq
	// OpConst is a propositional constant (Full or Empty).
	OpConst
	// OpNot complements its child. After NNF it occurs only over database
	// atoms, equalities, and PFP/IFP applications.
	OpNot
	// OpAnd intersects its two children.
	OpAnd
	// OpOr unions its two children.
	OpOr
	// OpExists quantifies Axis existentially.
	OpExists
	// OpForall quantifies Axis universally.
	OpForall
	// OpFix is a fixpoint application; details in Fix.
	OpFix
)

// MaxBinders bounds the number of fixpoint binders a plan may contain:
// binder dependency sets are 64-bit masks.
const MaxBinders = 64

// Node is one DAG node. All fields are immutable after Compile.
type Node struct {
	Op   Op
	Kids []int // child node ids (empty for leaves; {body} for OpFix)

	// OpAtom:
	Rel    string
	Args   []int // argument axes in the full-width space
	Binder int   // -1 for database atoms, else binder id

	// OpEq:
	L, R int

	// OpConst:
	Truth bool

	// OpExists / OpForall:
	Axis int

	// OpFix:
	Fix *FixInfo
}

// FixInfo is the symbolic description of a fixpoint application
// [op Rel(vars). body](args).
type FixInfo struct {
	Op logic.FixOp
	// Rel is the recursion relation's name, kept for observability (the
	// eval.Tracer stage events name the fixpoint they belong to).
	Rel    string
	Binder int
	Body   int
	// VarAxes are the recursion-tuple axes; ParamAxes the parameter axes
	// (free individual variables of the body besides the recursion tuple,
	// sorted by name — the same extension rule as eval.BottomUp); ExtCols is
	// VarAxes followed by ParamAxes, the stage-extraction projection.
	VarAxes   []int
	ParamAxes []int
	ExtCols   []int
	// ArgAxes are the application argument axes.
	ArgAxes []int
	// ExtArity is len(VarAxes)+len(ParamAxes), the extended stage arity for
	// LFP/GFP/IFP binding. PFP binds stages of arity len(VarAxes) and pins
	// the parameters per sweep assignment instead.
	ExtArity int
	// Scope is the bitmask of enclosing binders — the binders whose stage
	// loops are running whenever this fixpoint evaluates. A node is safe to
	// read outside this fixpoint's own loop only if its dependencies are
	// contained in Scope (a dependency on a binder nested inside the body
	// means the node is only meaningful inside that nested loop).
	Scope uint64
}

// Plan is a compiled query body. Node ids are assigned bottom-up, so
// ascending id order is a topological order of the DAG.
type Plan struct {
	// Query is the source query (validated against the database at run time).
	Query logic.Query
	// Vars is the axis order (Query.Vars()); HeadAxes the answer projection.
	Vars     []logic.Var
	HeadAxes []int

	Nodes []Node
	Root  int

	// NumBinders is the number of fixpoint binders; FixOf maps a binder id to
	// its OpFix node.
	NumBinders int
	FixOf      []int

	// Deps[n] is the bitmask of binders whose stage value node n transitively
	// reads. Deps[n] == 0 marks a recursion-free (hoisted) node.
	Deps []uint64

	// Dirty[b] lists, in ascending (topological) order, the nodes that read
	// binder b's stage and must be re-evaluated when it advances.
	Dirty [][]int

	// Sched[b] is Dirty[b] minus the nodes covered by a nested fixpoint that
	// is itself dirty for b (those are recomputed inside that fixpoint's own
	// stage loop). It is the task list for the parallel dirty-node scheduler
	// and for the semi-naive delta pass.
	Sched [][]int

	// SchedPreds[b][i] lists, for Sched[b][i], the node ids in Sched[b] whose
	// values it reads: the dependency edges of the parallel scheduler.
	SchedPreds [][][]int

	// SchedLevels[b] groups Sched[b] into topological waves: every node in
	// level ℓ reads only nodes in levels < ℓ (or the hoisted frontier), so the
	// nodes of one level are independent and may be evaluated concurrently.
	// Levels are ascending and each level lists node ids in ascending order,
	// making the wave schedule deterministic.
	SchedLevels [][][]int

	// PreEval[b] lists the nodes binder b's stage loop reads but never
	// recomputes: the hoisted frontier, guaranteed valid before the loop
	// starts and reused on every iteration.
	PreEval [][]int

	// DeltaOK[b] reports that binder b admits semi-naive delta evaluation:
	// its operator is LFP or IFP and every dirty node is a monotone operator,
	// so stage deltas can be unioned through the dirty set.
	DeltaOK []bool

	// Maint is the incremental-maintenance profile (maintain.go): the
	// relation footprint, the seedable binders, and per-relation delta
	// polarity safety.
	Maint *MaintInfo

	// CSEHits counts hash-cons hits during compilation: subformula
	// occurrences that were folded onto an existing node.
	CSEHits int
}

// ExtArity returns the stage arity binder b is bound at: the extended arity
// for LFP/GFP/IFP, the recursion-tuple arity for PFP.
func (p *Plan) ExtArity(b int) int {
	fx := p.Nodes[p.FixOf[b]].Fix
	if fx.Op == logic.PFP {
		return len(fx.VarAxes)
	}
	return fx.ExtArity
}

// AtomAxes returns the full axis list a recursion atom node reads the stage
// through: its own argument axes, extended by the binder's parameter axes for
// the operators that bind extended stages.
func (p *Plan) AtomAxes(n int) []int {
	nd := &p.Nodes[n]
	fx := p.Nodes[p.FixOf[nd.Binder]].Fix
	if fx.Op == logic.PFP || len(fx.ParamAxes) == 0 {
		return nd.Args
	}
	axes := make([]int, 0, len(nd.Args)+len(fx.ParamAxes))
	axes = append(axes, nd.Args...)
	return append(axes, fx.ParamAxes...)
}

// compiler carries the lowering state.
type compiler struct {
	axes  map[logic.Var]int
	nodes []Node
	deps  []uint64
	cons  map[string]int
	fixOf []int
	hits  int
	// scopeMask is the bitmask of binders currently being lowered — the
	// enclosing scope recorded into each FixInfo.
	scopeMask uint64
}

// Compile lowers q's body to a DAG. The body is first brought to negation
// normal form (second-order quantifiers are rejected — like eval.BottomUp,
// the compiled engine evaluates FO, FP, IFP and PFP only).
func Compile(q logic.Query) (*Plan, error) {
	if err := q.Validate(nil); err != nil {
		return nil, err
	}
	body, err := logic.NNF(q.Body)
	if err != nil {
		return nil, err
	}
	var soErr error
	logic.Walk(body, func(f logic.Formula) {
		if so, ok := f.(logic.SOQuant); ok && soErr == nil {
			soErr = fmt.Errorf("plan: second-order quantifier %s is not compilable; use the eso package", so.Rel)
		}
	})
	if soErr != nil {
		return nil, soErr
	}
	if err := logic.Validate(body, nil); err != nil {
		return nil, err
	}

	vars := q.Vars()
	c := &compiler{
		axes: make(map[logic.Var]int, len(vars)),
		cons: make(map[string]int),
	}
	for i, v := range vars {
		c.axes[v] = i
	}
	root, err := c.lower(body, map[string]int{})
	if err != nil {
		return nil, err
	}

	p := &Plan{
		Query:      q,
		Vars:       vars,
		Nodes:      c.nodes,
		Root:       root,
		NumBinders: len(c.fixOf),
		FixOf:      c.fixOf,
		Deps:       c.deps,
		CSEHits:    c.hits,
	}
	p.HeadAxes = make([]int, len(q.Head))
	for i, v := range q.Head {
		p.HeadAxes[i] = c.axes[v]
	}
	p.analyze()
	return p, nil
}

func (c *compiler) axis(v logic.Var) (int, error) {
	a, ok := c.axes[v]
	if !ok {
		return 0, fmt.Errorf("plan: variable %s has no axis (internal error)", v)
	}
	return a, nil
}

func (c *compiler) axesOf(vs []logic.Var) ([]int, error) {
	out := make([]int, len(vs))
	for i, v := range vs {
		a, err := c.axis(v)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

// intern hash-conses a node: an existing structurally identical node is
// reused, otherwise the node is appended with the given dependency mask.
func (c *compiler) intern(key string, n Node, deps uint64) int {
	if id, ok := c.cons[key]; ok {
		c.hits++
		return id
	}
	id := len(c.nodes)
	c.nodes = append(c.nodes, n)
	c.deps = append(c.deps, deps)
	c.cons[key] = id
	return id
}

func axesKey(b *strings.Builder, axes []int) {
	for i, a := range axes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(a))
	}
}

// lower compiles f under the given recursion-relation scope (name → binder).
func (c *compiler) lower(f logic.Formula, scope map[string]int) (int, error) {
	switch g := f.(type) {
	case logic.Atom:
		args, err := c.axesOf(g.Args)
		if err != nil {
			return 0, err
		}
		binder := -1
		deps := uint64(0)
		if b, ok := scope[g.Rel]; ok {
			binder = b
			deps = 1 << uint(b)
		}
		var k strings.Builder
		k.WriteString("a|")
		k.WriteString(g.Rel)
		k.WriteByte('|')
		k.WriteString(strconv.Itoa(binder))
		k.WriteByte('|')
		axesKey(&k, args)
		return c.intern(k.String(), Node{Op: OpAtom, Rel: g.Rel, Args: args, Binder: binder}, deps), nil
	case logic.Eq:
		la, err := c.axis(g.L)
		if err != nil {
			return 0, err
		}
		ra, err := c.axis(g.R)
		if err != nil {
			return 0, err
		}
		if ra < la {
			la, ra = ra, la // symmetric: canonicalize for CSE
		}
		key := "e|" + strconv.Itoa(la) + "," + strconv.Itoa(ra)
		return c.intern(key, Node{Op: OpEq, L: la, R: ra}, 0), nil
	case logic.Truth:
		key := "c|f"
		if g.Value {
			key = "c|t"
		}
		return c.intern(key, Node{Op: OpConst, Truth: g.Value}, 0), nil
	case logic.Not:
		kid, err := c.lower(g.F, scope)
		if err != nil {
			return 0, err
		}
		key := "n|" + strconv.Itoa(kid)
		return c.intern(key, Node{Op: OpNot, Kids: []int{kid}}, c.deps[kid]), nil
	case logic.Binary:
		l, err := c.lower(g.L, scope)
		if err != nil {
			return 0, err
		}
		r, err := c.lower(g.R, scope)
		if err != nil {
			return 0, err
		}
		var op Op
		var tag string
		switch g.Op {
		case logic.AndOp:
			op, tag = OpAnd, "&"
		case logic.OrOp:
			op, tag = OpOr, "|"
		default:
			return 0, fmt.Errorf("plan: %v connective survived NNF", g.Op)
		}
		if (op == OpAnd || op == OpOr) && r < l {
			l, r = r, l // commutative: canonicalize for CSE
		}
		key := tag + "|" + strconv.Itoa(l) + "," + strconv.Itoa(r)
		return c.intern(key, Node{Op: op, Kids: []int{l, r}}, c.deps[l]|c.deps[r]), nil
	case logic.Quant:
		kid, err := c.lower(g.F, scope)
		if err != nil {
			return 0, err
		}
		a, err := c.axis(g.V)
		if err != nil {
			return 0, err
		}
		op, tag := OpExists, "E"
		if g.Kind == logic.ForallQ {
			op, tag = OpForall, "A"
		}
		key := tag + "|" + strconv.Itoa(a) + "|" + strconv.Itoa(kid)
		return c.intern(key, Node{Op: op, Axis: a, Kids: []int{kid}}, c.deps[kid]), nil
	case logic.Fix:
		return c.lowerFix(g, scope)
	case logic.SOQuant:
		return 0, fmt.Errorf("plan: second-order quantifier %s is not compilable", g.Rel)
	default:
		return 0, fmt.Errorf("plan: unknown formula %T", f)
	}
}

func (c *compiler) lowerFix(g logic.Fix, scope map[string]int) (int, error) {
	binder := len(c.fixOf)
	if binder >= MaxBinders {
		return 0, fmt.Errorf("plan: more than %d fixpoint binders", MaxBinders)
	}
	c.fixOf = append(c.fixOf, -1) // placeholder until the node exists

	// Parameters: free individual variables of the body not bound by the
	// recursion tuple, sorted by name — the eval.BottomUp extension rule.
	free := logic.FreeVars(g.Body)
	for _, v := range g.Vars {
		delete(free, v)
	}
	params := logic.SortedVars(free)

	varAxes, err := c.axesOf(g.Vars)
	if err != nil {
		return 0, err
	}
	paramAxes, err := c.axesOf(params)
	if err != nil {
		return 0, err
	}
	argAxes, err := c.axesOf(g.Args)
	if err != nil {
		return 0, err
	}
	extCols := make([]int, 0, len(varAxes)+len(paramAxes))
	extCols = append(extCols, varAxes...)
	extCols = append(extCols, paramAxes...)

	enclosing := c.scopeMask
	prev, had := scope[g.Rel]
	scope[g.Rel] = binder
	c.scopeMask |= 1 << uint(binder)
	body, err := c.lower(g.Body, scope)
	c.scopeMask = enclosing
	if had {
		scope[g.Rel] = prev
	} else {
		delete(scope, g.Rel)
	}
	if err != nil {
		return 0, err
	}

	fx := &FixInfo{
		Op:        g.Op,
		Rel:       g.Rel,
		Binder:    binder,
		Body:      body,
		VarAxes:   varAxes,
		ParamAxes: paramAxes,
		ExtCols:   extCols,
		ArgAxes:   argAxes,
		ExtArity:  len(varAxes) + len(paramAxes),
		Scope:     enclosing,
	}
	deps := c.deps[body] &^ (1 << uint(binder))
	// Binder ids are fresh per occurrence, so fix nodes are never hash-consed
	// with one another; the key only keeps the cons map total.
	var k strings.Builder
	k.WriteString("f|")
	k.WriteString(strconv.Itoa(binder))
	id := c.intern(k.String(), Node{Op: OpFix, Kids: []int{body}, Fix: fx}, deps)
	c.fixOf[binder] = id
	return id, nil
}

// analyze derives the per-binder evaluation structures: dirty lists, hoisted
// frontiers, scheduler edges, and delta admissibility.
func (p *Plan) analyze() {
	nb := p.NumBinders
	p.Dirty = make([][]int, nb)
	p.Sched = make([][]int, nb)
	p.SchedPreds = make([][][]int, nb)
	p.SchedLevels = make([][][]int, nb)
	p.PreEval = make([][]int, nb)
	p.DeltaOK = make([]bool, nb)

	inDirty := make([]map[int]bool, nb)
	for b := 0; b < nb; b++ {
		bit := uint64(1) << uint(b)
		set := make(map[int]bool)
		for n := range p.Nodes {
			if p.Deps[n]&bit != 0 {
				p.Dirty[b] = append(p.Dirty[b], n)
				set[n] = true
			}
		}
		inDirty[b] = set
	}

	// reads[f] — nodes a fix node's stage loop consults without recomputing.
	// A node qualifies only if its dependencies lie within the fix node's
	// enclosing scope: depending on this binder means it is dirty, and
	// depending on a binder nested inside the body means it only has a value
	// inside that nested loop — neither may be hoisted. Fix nodes are created
	// after their bodies, so ascending id order processes inner fixpoints
	// first.
	reads := make(map[int][]int, nb)
	for n := range p.Nodes {
		nd := &p.Nodes[n]
		if nd.Op != OpFix {
			continue
		}
		b := nd.Fix.Binder
		hoistable := func(m int) bool { return p.Deps[m]&^nd.Fix.Scope == 0 }
		rs := make(map[int]bool)
		if hoistable(nd.Fix.Body) {
			rs[nd.Fix.Body] = true
		}
		for _, d := range p.Dirty[b] {
			dn := &p.Nodes[d]
			if dn.Op == OpFix {
				for _, m := range reads[d] {
					if hoistable(m) {
						rs[m] = true
					}
				}
				continue
			}
			for _, k := range dn.Kids {
				if hoistable(k) {
					rs[k] = true
				}
			}
		}
		reads[n] = sortedKeys(rs)
	}

	for b := 0; b < nb; b++ {
		fixNode := p.FixOf[b]
		p.PreEval[b] = reads[fixNode]

		// covered: binders whose fix node is itself dirty for b — their dirty
		// subtrees are recomputed inside that nested loop, not scheduled here.
		var covered uint64
		for _, d := range p.Dirty[b] {
			if p.Nodes[d].Op == OpFix {
				covered |= 1 << uint(p.Nodes[d].Fix.Binder)
			}
		}
		schedSet := make(map[int]bool)
		for _, n := range p.Dirty[b] {
			if p.Deps[n]&covered == 0 {
				p.Sched[b] = append(p.Sched[b], n)
				schedSet[n] = true
			}
		}
		p.SchedPreds[b] = make([][]int, len(p.Sched[b]))
		for i, n := range p.Sched[b] {
			var direct []int
			if p.Nodes[n].Op == OpFix {
				direct = reads[n]
			} else {
				direct = p.Nodes[n].Kids
			}
			for _, m := range direct {
				if schedSet[m] {
					p.SchedPreds[b][i] = append(p.SchedPreds[b][i], m)
				}
			}
		}

		// Topological waves. Sched is in ascending node-id order and every
		// predecessor has a smaller id, so one forward pass suffices.
		pos := make(map[int]int, len(p.Sched[b]))
		for i, n := range p.Sched[b] {
			pos[n] = i
		}
		level := make([]int, len(p.Sched[b]))
		maxLevel := -1
		for i := range p.Sched[b] {
			lv := 0
			for _, m := range p.SchedPreds[b][i] {
				if pl := level[pos[m]] + 1; pl > lv {
					lv = pl
				}
			}
			level[i] = lv
			if lv > maxLevel {
				maxLevel = lv
			}
		}
		levels := make([][]int, maxLevel+1)
		for i, n := range p.Sched[b] {
			levels[level[i]] = append(levels[level[i]], n)
		}
		p.SchedLevels[b] = levels

		op := p.Nodes[fixNode].Fix.Op
		if op == logic.LFP || op == logic.IFP {
			ok := true
			for _, n := range p.Dirty[b] {
				switch p.Nodes[n].Op {
				case OpAnd, OpOr, OpExists, OpForall:
				case OpAtom:
					// Only this binder's own stage atoms can be dirty for it.
				default:
					ok = false
				}
				if !ok {
					break
				}
			}
			p.DeltaOK[b] = ok
		}
	}
	p.Maint = p.maintInfo()
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ { // insertion sort: sets are tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// NumNodes returns the DAG size (after CSE).
func (p *Plan) NumNodes() int { return len(p.Nodes) }

// HoistedNodes counts recursion-free nodes: subplans evaluated exactly once
// per query regardless of fixpoint iteration counts.
func (p *Plan) HoistedNodes() int {
	n := 0
	for _, d := range p.Deps {
		if d == 0 {
			n++
		}
	}
	return n
}
