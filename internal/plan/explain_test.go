package plan

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func tcExplain(t *testing.T) *Explain {
	t.Helper()
	p, err := Compile(tcQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	den := p.Density(10, func(string) int { return 20 })
	return p.Explain(den)
}

func TestExplainShape(t *testing.T) {
	ex := tcExplain(t)
	if ex.Width != 3 {
		t.Fatalf("Width = %d, want 3 (x, y, z)", ex.Width)
	}
	if ex.Domain != 10 {
		t.Fatalf("Domain = %d, want 10", ex.Domain)
	}
	if len(ex.Binders) != 1 {
		t.Fatalf("got %d binders, want 1", len(ex.Binders))
	}
	b := ex.Binders[0]
	if b.Op != "lfp" || b.Rel != "T" || !b.DeltaOK {
		t.Fatalf("binder = %+v, want lfp T with DeltaOK", b)
	}
	if b.SchedNodes == 0 || b.SchedLevels == 0 {
		t.Fatalf("binder schedule empty: %+v", b)
	}
	if ex.Executed {
		t.Fatal("Executed = true before any profile was attached")
	}
	// Every node id referenced by Kids must exist, and the root must be the
	// fixpoint application.
	for _, n := range ex.Nodes {
		for _, k := range n.Kids {
			if k < 0 || k >= len(ex.Nodes) {
				t.Fatalf("node %d has out-of-range kid %d", n.ID, k)
			}
		}
	}
	if ex.Nodes[ex.Root].Op != "fix" {
		t.Fatalf("root op = %s, want fix", ex.Nodes[ex.Root].Op)
	}
	// The E(x,y) base-case atom is recursion-free and must be hoisted; the
	// recursion atom T·b0 must not be.
	var sawHoistedAtom, sawRecAtom bool
	for _, n := range ex.Nodes {
		if n.Op != "atom" {
			continue
		}
		if n.Binder < 0 && n.Hoisted {
			sawHoistedAtom = true
		}
		if n.Binder == 0 {
			sawRecAtom = true
			if n.Hoisted {
				t.Fatalf("recursion atom %q marked hoisted", n.Label)
			}
		}
	}
	if !sawHoistedAtom || !sawRecAtom {
		t.Fatalf("hoistedAtom=%v recAtom=%v, want both", sawHoistedAtom, sawRecAtom)
	}
}

func TestExplainAttachProfile(t *testing.T) {
	ex := tcExplain(t)
	evals := make([]int64, len(ex.Nodes))
	ns := make([]int64, len(ex.Nodes))
	evals[ex.Root] = 1
	ns[ex.Root] = 5_000_000 // 5ms
	hot := -1
	for i := range ex.Nodes {
		if i != ex.Root {
			hot = i
			evals[i] = 7
			ns[i] = 9_000_000
			break
		}
	}
	ex.AttachProfile(evals, ns)
	ex.AttachBinderStages(0, 4, 123, 2_000_000)
	ex.AttachBinderStages(0, 2, 7, 1_000_000)
	ex.AttachBinderStages(99, 1, 1, 1) // out of range: ignored
	if !ex.Executed {
		t.Fatal("Executed = false after AttachProfile")
	}
	if got := ex.Nodes[ex.Root].WallUS; got != 5000 {
		t.Fatalf("root WallUS = %d, want 5000", got)
	}
	if b := ex.Binders[0]; b.Stages != 6 || b.DeltaTuples != 130 || b.BusyUS != 3000 {
		t.Fatalf("binder totals = %+v, want stages 6, delta 130, busy 3000us", b)
	}
	top := ex.TopNodes(1)
	if len(top) != 1 || top[0] != hot {
		t.Fatalf("TopNodes(1) = %v, want [%d]", top, hot)
	}
}

func TestExplainRenderDAGBackrefs(t *testing.T) {
	ex := tcExplain(t)
	var sb strings.Builder
	ex.Render(&sb)
	out := sb.String()
	for _, want := range []string{"lfp T", "hoisted", "E(x,y)", "∃z", "binder 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Each node prints at most once in full: "n<id> " occurrences beyond the
	// first for the same id must be back-references.
	for _, n := range ex.Nodes {
		full := strings.Count(out, "n"+strconv.Itoa(n.ID)+" "+n.Label+"\n") +
			strings.Count(out, "n"+strconv.Itoa(n.ID)+" "+n.Label+"  [")
		if full > 1 {
			t.Fatalf("node %d rendered in full %d times:\n%s", n.ID, full, out)
		}
	}
}

func TestExplainJSONRoundTrip(t *testing.T) {
	ex := tcExplain(t)
	ex.Route = "dense"
	raw, err := json.Marshal(ex)
	if err != nil {
		t.Fatal(err)
	}
	var back Explain
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Route != "dense" || back.Width != ex.Width || len(back.Nodes) != len(ex.Nodes) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}
