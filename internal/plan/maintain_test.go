package plan

import (
	"reflect"
	"testing"

	"repro/internal/logic"
)

func TestMaintInfoTC(t *testing.T) {
	p, err := Compile(tcQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	m := p.Maint
	if m == nil || !m.OK {
		t.Fatalf("transitive closure should be maintainable, got %+v", m)
	}
	if len(m.Seeded) != 1 || !m.Seeded[0] {
		t.Fatalf("Seeded = %v, want the single LFP binder seedable", m.Seeded)
	}
	if !reflect.DeepEqual(m.Rels, []string{"E"}) {
		t.Fatalf("footprint = %v, want [E]", m.Rels)
	}
	if !m.References("E") || m.References("P") {
		t.Fatalf("References wrong: E=%v P=%v", m.References("E"), m.References("P"))
	}
	// E occurs only positively inside the seeded cone: inserts grow the
	// stage operator, deletes may shrink it.
	if !m.InsertSafe("E") {
		t.Errorf("InsertSafe(E) = false, want true")
	}
	if m.DeleteSafe("E") {
		t.Errorf("DeleteSafe(E) = true, want false")
	}
}

func TestMaintInfoNegatedAtomPolarity(t *testing.T) {
	// T(x,y) ≡ (E(x,y) ∧ ¬B(x)) ∨ ∃z(E(x,z) ∧ T(z,y)): B occurs negatively
	// inside the seeded cone, so deleting from B grows the operator and
	// inserting into it does not.
	body := logic.Lfp("T", []logic.Var{"x", "y"},
		logic.Or(
			logic.And(logic.R("E", "x", "y"), logic.Neg(logic.R("B", "x"))),
			logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("T", "z", "y")), "z")),
		"x", "y")
	p, err := Compile(logic.MustQuery([]logic.Var{"x", "y"}, body))
	if err != nil {
		t.Fatal(err)
	}
	m := p.Maint
	if !m.OK {
		t.Fatalf("plan should be maintainable (¬B is hoisted, the dirty set stays monotone)")
	}
	if !m.InsertSafe("E") || m.DeleteSafe("E") {
		t.Errorf("E polarity: ins=%v del=%v, want true/false", m.InsertSafe("E"), m.DeleteSafe("E"))
	}
	if m.InsertSafe("B") || !m.DeleteSafe("B") {
		t.Errorf("B polarity: ins=%v del=%v, want false/true", m.InsertSafe("B"), m.DeleteSafe("B"))
	}
}

func TestMaintInfoAtomOutsideConesUnconstrained(t *testing.T) {
	// TC(x,y) ∧ ¬P(x): P is read only outside the fixpoint cone, so its node
	// is hoisted and recomputed per run — deltas on P are unconstrained.
	tc := logic.Lfp("T", []logic.Var{"x", "y"},
		logic.Or(logic.R("E", "x", "y"),
			logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("T", "z", "y")), "z")),
		"x", "y")
	body := logic.And(tc, logic.Neg(logic.R("P", "x")))
	p, err := Compile(logic.MustQuery([]logic.Var{"x", "y"}, body))
	if err != nil {
		t.Fatal(err)
	}
	m := p.Maint
	if !m.OK {
		t.Fatalf("plan should be maintainable")
	}
	if !m.References("P") {
		t.Fatalf("P should be in the footprint")
	}
	if !m.InsertSafe("P") || !m.DeleteSafe("P") {
		t.Errorf("P outside all seeded cones should be unconstrained, got ins=%v del=%v",
			m.InsertSafe("P"), m.DeleteSafe("P"))
	}
}

func TestMaintInfoGFPNotSeedable(t *testing.T) {
	body := logic.Gfp("T", []logic.Var{"x", "y"},
		logic.And(logic.R("E", "x", "y"),
			logic.Forall(logic.Or(logic.Neg(logic.R("E", "y", "z")), logic.R("T", "y", "z")), "z")),
		"x", "y")
	p, err := Compile(logic.MustQuery([]logic.Var{"x", "y"}, body))
	if err != nil {
		t.Fatal(err)
	}
	if p.Maint.OK {
		t.Fatalf("GFP restarts from the full relation; it must not be seedable")
	}
}

func TestMaintInfoNestedDependentFixNotSeedable(t *testing.T) {
	// Inner fixpoint reads the outer recursion relation, so its fix node is
	// dirty for the outer binder: the outer binder loses DeltaOK and the
	// inner one is re-evaluated per outer stage — neither may be seeded.
	inner := logic.Lfp("S", []logic.Var{"u", "v"},
		logic.Or(logic.R("T", "u", "v"), logic.R("F", "u", "v")),
		"x", "y")
	body := logic.Lfp("T", []logic.Var{"x", "y"},
		logic.Or(logic.R("E", "x", "y"), inner),
		"x", "y")
	p, err := Compile(logic.MustQuery([]logic.Var{"x", "y"}, body))
	if err != nil {
		t.Fatal(err)
	}
	if p.Maint.OK {
		t.Fatalf("no binder is both delta-admissible and hoisted; Maint.OK must be false, got Seeded=%v", p.Maint.Seeded)
	}
}

func TestMaintInfoPFPPoisonsItsCone(t *testing.T) {
	// A closed PFP inside a seeded LFP cone: the PFP value is not monotone
	// in anything it reads, so Q becomes unsafe in both directions while E
	// keeps its positive polarity.
	pfp := logic.Pfp("P", []logic.Var{"u"}, logic.R("Q", "u"), "x")
	body := logic.Lfp("T", []logic.Var{"x", "y"},
		logic.Or(
			logic.And(logic.R("E", "x", "y"), pfp),
			logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("T", "z", "y")), "z")),
		"x", "y")
	p, err := Compile(logic.MustQuery([]logic.Var{"x", "y"}, body))
	if err != nil {
		t.Fatal(err)
	}
	m := p.Maint
	if !m.OK {
		t.Fatalf("the LFP binder should stay seedable (the PFP is hoisted)")
	}
	if m.InsertSafe("Q") || m.DeleteSafe("Q") {
		t.Errorf("Q under a PFP must be unsafe both ways, got ins=%v del=%v",
			m.InsertSafe("Q"), m.DeleteSafe("Q"))
	}
	if !m.InsertSafe("E") {
		t.Errorf("E should remain insert-safe")
	}
}
