package plan

import (
	"sort"

	"repro/internal/logic"
)

// Maintenance analysis: which database deltas a compiled plan's fixpoints can
// absorb by restarting the stage loop from the previous fixpoint instead of
// from ∅ (internal/eval's delta-restart maintenance).
//
// A binder is *seedable* when its operator is LFP or IFP, it admits
// semi-naive evaluation (DeltaOK), and its fix node is hoisted (recursion-free
// with respect to every enclosing binder, so the executor evaluates it exactly
// once per run — a fix node inside another binder's dirty set is re-evaluated
// per stage under changing bindings, and a single captured stage would not
// mean anything). Seeding S₀ = lfp_old is sound whenever the new stage
// operator dominates the old one pointwise, because the increasing chain
// S₀ ⊆ φ(S₀) ⊆ … then still converges to lfp_new (for IFP, DeltaOK implies a
// monotone body, so IFP coincides with LFP and the same argument applies).
// GFP restarts from the full relation and PFP is non-monotone; neither can
// reuse a previous fixpoint, so they are recomputed in full — which is still
// correct, just not incremental.
//
// Whether φ_new ≥ φ_old holds depends on the delta's *polarity*: inserting
// into a relation that occurs only positively inside the seeded cones grows
// every stage operator; deleting from a relation that occurs only negatively
// does too (¬R grows when R shrinks). The analysis walks each seeded binder's
// body cone tracking polarity — flipping at OpNot, passing through the
// monotone operators (∧, ∨, ∃, ∀, LFP/GFP/IFP applications), and poisoning
// both polarities under a PFP application, whose value is not monotone in
// anything. Atoms never reached from a seeded cone are unconstrained: their
// nodes are hoisted per run and recomputed from the new database anyway.

// polarity bitmask for the cone walk.
const (
	polPos uint8 = 1 << iota
	polNeg
)

// MaintInfo is the static maintenance profile of a plan, computed once by
// Compile. The per-delta decision (internal/eval.CanMaintain) combines it
// with a concrete database.Delta.
type MaintInfo struct {
	// OK reports that at least one binder is seedable — without one,
	// maintenance degenerates to full recomputation and is never attempted.
	OK bool
	// Seeded[b] marks the seedable binders: hoisted LFP/IFP with DeltaOK.
	// The executor captures and re-seeds exactly these binders' stages.
	Seeded []bool
	// Rels is the sorted dependency footprint: every database relation the
	// plan reads anywhere. A delta touching none of these cannot change the
	// answer, so cached results survive it unchanged.
	Rels []string

	refs      map[string]bool
	insUnsafe map[string]bool // negative (or PFP-poisoned) occurrence in a seeded cone
	delUnsafe map[string]bool // positive (or PFP-poisoned) occurrence in a seeded cone
}

// References reports whether the plan reads the named database relation.
func (m *MaintInfo) References(rel string) bool { return m.refs[rel] }

// InsertSafe reports that inserting tuples into rel can only grow the seeded
// stage operators (rel has no negative occurrence inside any seeded cone).
func (m *MaintInfo) InsertSafe(rel string) bool { return !m.insUnsafe[rel] }

// DeleteSafe reports that deleting tuples from rel can only grow the seeded
// stage operators (rel has no positive occurrence inside any seeded cone).
func (m *MaintInfo) DeleteSafe(rel string) bool { return !m.delUnsafe[rel] }

// maintInfo computes the maintenance profile; called from analyze after
// DeltaOK is available.
func (p *Plan) maintInfo() *MaintInfo {
	m := &MaintInfo{
		Seeded:    make([]bool, p.NumBinders),
		refs:      make(map[string]bool),
		insUnsafe: make(map[string]bool),
		delUnsafe: make(map[string]bool),
	}
	for n := range p.Nodes {
		nd := &p.Nodes[n]
		if nd.Op == OpAtom && nd.Binder < 0 {
			m.refs[nd.Rel] = true
		}
	}
	m.Rels = make([]string, 0, len(m.refs))
	for rel := range m.refs {
		m.Rels = append(m.Rels, rel)
	}
	sort.Strings(m.Rels)

	for b := 0; b < p.NumBinders; b++ {
		op := p.Nodes[p.FixOf[b]].Fix.Op
		if (op == logic.LFP || op == logic.IFP) && p.DeltaOK[b] && p.Deps[p.FixOf[b]] == 0 {
			m.Seeded[b] = true
			m.OK = true
		}
	}
	if !m.OK {
		return m
	}

	// Polarity walk over the seeded cones. visited[n] records the polarity
	// masks node n has been expanded under, so the DAG walk is linear: each
	// node is expanded at most twice (once per new polarity bit).
	visited := make([]uint8, len(p.Nodes))
	var walk func(n int, pol uint8)
	walk = func(n int, pol uint8) {
		if visited[n]&pol == pol {
			return
		}
		visited[n] |= pol
		nd := &p.Nodes[n]
		switch nd.Op {
		case OpAtom:
			if nd.Binder < 0 {
				if pol&polPos != 0 {
					m.delUnsafe[nd.Rel] = true
				}
				if pol&polNeg != 0 {
					m.insUnsafe[nd.Rel] = true
				}
			}
		case OpNot:
			flipped := uint8(0)
			if pol&polPos != 0 {
				flipped |= polNeg
			}
			if pol&polNeg != 0 {
				flipped |= polPos
			}
			walk(nd.Kids[0], flipped)
		case OpFix:
			// LFP/GFP/IFP applications are monotone in their positive
			// parameters, so polarity passes through; a PFP value can move
			// either way under any change, so everything it reads is unsafe
			// in both directions.
			if nd.Fix.Op == logic.PFP {
				walk(nd.Fix.Body, polPos|polNeg)
			} else {
				walk(nd.Fix.Body, pol)
			}
		default:
			for _, k := range nd.Kids {
				walk(k, pol)
			}
		}
	}
	for b := 0; b < p.NumBinders; b++ {
		if m.Seeded[b] {
			walk(p.Nodes[p.FixOf[b]].Fix.Body, polPos)
		}
	}
	return m
}
