package plan

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/logic"
	"repro/internal/relation"
)

// NodeBackend is the representation a plan node's value is materialized in.
type NodeBackend int8

const (
	// NodeDense is the full-width nᵏ-bit bitmap with word-parallel kernels.
	NodeDense NodeBackend = iota
	// NodeSparse is the sorted tuple-code block over the node's support axes.
	NodeSparse
)

// Density heuristic thresholds. The cost model is deliberately coarse: one
// dense operation touches spaceBits/64 words no matter how few tuples are
// set, while one sparse operation costs O(tuples · log tuples). Sparse wins
// when the estimated tuple count is far below the word count; dense wins on
// small hot spaces where a handful of word ops beats any pointer chasing.
const (
	// hybridMinBits: below this space size the dense kernels are always
	// used — a few thousand words of bitmap ops are faster than building
	// sparse blocks, and keeping small runs dense preserves the established
	// behavior (and Stats) of every existing workload.
	hybridMinBits = 1 << 22
	// sparseWinFactor: a node is sparse-labeled when est · sparseWinFactor
	// < spaceBits, i.e. its estimated density is below 1/sparseWinFactor
	// bits per tuple.
	sparseWinFactor = 256
	// autoSparseBits: the auto backend switches a feasible-but-large run to
	// the all-sparse executor once the space reaches this size and the
	// root estimate clears sparseWinFactor.
	autoSparseBits = 1 << 26
	// fixGrowthGuess multiplies a fixpoint body's estimate to guess the
	// converged stage size (stages grow for LFP/IFP; how much is
	// data-dependent, so this is a soft prior, not a bound).
	fixGrowthGuess = 16
)

// Density is the per-node representation analysis of a plan against one
// domain size: which axes each node's value actually constrains (its
// support), how many tuples it is expected to hold, whether it can be
// evaluated sparsely at all, and which representation the hybrid executor
// should pick for it. A plan is domain-independent; Density is the per-run
// sizing pass, cheap enough (O(nodes)) to rerun on every evaluation.
type Density struct {
	// N is the domain size the analysis was computed for; K the plan width.
	N, K int
	// SpaceFeasible reports nᴷ ≤ relation.MaxDenseBits: whether the dense
	// full-width engine can run at all.
	SpaceFeasible bool
	// CodeFeasible reports nᴷ ≤ relation.MaxSparseCode: whether sparse
	// tuple codes exist for full-width supports.
	CodeFeasible bool
	// SpaceBits is nᴷ as a float (exact for feasible shapes, an estimate
	// beyond).
	SpaceBits float64

	// Support[n] is the axis bitmask outside of which node n's value is
	// cylindric: the axes a sparse materialization must store.
	Support []uint64
	// Neg[n] reports that the sparse evaluator represents node n negatively
	// (as the complement block over its support) — the polarity is static.
	Neg []bool
	// Est[n] is the estimated stored-block size (tuples) of node n's sparse
	// value.
	Est []float64
	// Mode[n] is the representation the hybrid dense executor uses for node
	// n: NodeSparse only for recursion-free subtrees whose estimated density
	// clears the win threshold (conversion happens at the subtree root).
	Mode []NodeBackend

	// SparseOK reports that every node is sparse-evaluable, so the
	// all-sparse executor can run the whole plan; Blocker names the first
	// obstruction otherwise. RootEst is Est[root].
	SparseOK bool
	Blocker  string
	RootEst  float64

	// DeltaSparse[b] reports that binder b's semi-naive delta regime is
	// admissible under sparse evaluation: DeltaOK and every dirty node and
	// dirty-node operand is positively represented.
	DeltaSparse []bool
}

// Density computes the representation analysis of p over a domain of n
// elements. card reports a database relation's tuple count (it may return 0
// for unknown relations; estimates degrade gracefully).
func (p *Plan) Density(n int, card func(rel string) int) *Density {
	k := len(p.Vars)
	d := &Density{
		N:       n,
		K:       k,
		Support: make([]uint64, len(p.Nodes)),
		Neg:     make([]bool, len(p.Nodes)),
		Est:     make([]float64, len(p.Nodes)),
		Mode:    make([]NodeBackend, len(p.Nodes)),
	}
	d.SpaceBits = math.Pow(float64(n), float64(k))
	d.SpaceFeasible = feasiblePow(n, k, relation.MaxDenseBits)
	d.CodeFeasible = feasiblePow(n, k, int(relation.MaxSparseCode>>1))
	d.SparseOK = true
	if !d.CodeFeasible {
		d.SparseOK = false
		d.Blocker = fmt.Sprintf("code space %d^%d exceeds sparse code limit", n, k)
	}

	capable := make([]bool, len(p.Nodes))
	nf := float64(n)
	pow := func(axes int) float64 { return math.Pow(nf, float64(axes)) }
	block := func(reason string) {
		if d.SparseOK {
			d.SparseOK = false
			d.Blocker = reason
		}
	}

	// Node ids ascend topologically, so one forward pass sees children first.
	for id := range p.Nodes {
		nd := &p.Nodes[id]
		switch nd.Op {
		case OpAtom:
			axes := nd.Args
			if nd.Binder >= 0 {
				axes = p.AtomAxes(id)
			}
			var sup uint64
			distinct := 0
			for _, a := range axes {
				if sup&(1<<uint(a)) == 0 {
					distinct++
				}
				sup |= 1 << uint(a)
			}
			d.Support[id] = sup
			if nd.Binder >= 0 {
				// The stage estimate is not known bottom-up (the binder's
				// fix node comes later); assume stage density ~1/n of its
				// support space — the TC-shaped prior.
				d.Est[id] = pow(distinct) / math.Max(nf, 1)
			} else {
				c := float64(card(nd.Rel))
				// Repeated argument axes select a diagonal: scale down by n
				// per merged position.
				for i := 0; i < len(axes)-distinct; i++ {
					c /= math.Max(nf, 1)
				}
				d.Est[id] = c
			}
			capable[id] = true
		case OpEq:
			if nd.L == nd.R {
				d.Support[id] = 0
				d.Est[id] = 1
			} else {
				d.Support[id] = 1<<uint(nd.L) | 1<<uint(nd.R)
				d.Est[id] = nf
			}
			capable[id] = true
		case OpConst:
			d.Support[id] = 0
			if nd.Truth {
				d.Est[id] = 1
			}
			capable[id] = true
		case OpNot:
			kid := nd.Kids[0]
			d.Support[id] = d.Support[kid]
			d.Neg[id] = !d.Neg[kid]
			// The stored block is the child's block with the polarity flag
			// flipped: same size.
			d.Est[id] = d.Est[kid]
			capable[id] = capable[kid]
		case OpAnd, OpOr:
			l, r := nd.Kids[0], nd.Kids[1]
			sup := d.Support[l] | d.Support[r]
			d.Support[id] = sup
			u := bits.OnesCount64(sup)
			wl := d.Est[l] * pow(u-bits.OnesCount64(d.Support[l]))
			wr := d.Est[r] * pow(u-bits.OnesCount64(d.Support[r]))
			negL, negR := d.Neg[l], d.Neg[r]
			if nd.Op == OpAnd {
				switch {
				case !negL && !negR:
					shared := bits.OnesCount64(d.Support[l] & d.Support[r])
					d.Est[id] = math.Min(d.Est[l]*d.Est[r]/pow(shared), pow(u))
				case negL && negR:
					// ¬a ∧ ¬b = ¬(a ∨ b): stored block is the widened union.
					d.Neg[id] = true
					d.Est[id] = math.Min(wl+wr, pow(u))
				default:
					// pos ∧ ¬neg: antijoin, bounded by the widened positive side.
					if negL {
						d.Est[id] = math.Min(wr, pow(u))
					} else {
						d.Est[id] = math.Min(wl, pow(u))
					}
				}
			} else {
				switch {
				case !negL && !negR:
					d.Est[id] = math.Min(wl+wr, pow(u))
				case negL && negR:
					// ¬a ∨ ¬b = ¬(a ∧ b): stored block is the intersection.
					d.Neg[id] = true
					d.Est[id] = math.Min(math.Min(wl, wr), pow(u))
				default:
					// ¬a ∨ b = ¬(a \ b): stored block bounded by the negative
					// side's widened block.
					d.Neg[id] = true
					if negL {
						d.Est[id] = math.Min(wl, pow(u))
					} else {
						d.Est[id] = math.Min(wr, pow(u))
					}
				}
			}
			capable[id] = capable[l] && capable[r]
		case OpExists, OpForall:
			kid := nd.Kids[0]
			sup := d.Support[kid] &^ (1 << uint(nd.Axis))
			d.Support[id] = sup
			d.Neg[id] = d.Neg[kid]
			// ∃ keeps at most the child's block; ∀ keeps at most one group
			// per n child tuples. With negative polarity the roles swap
			// (∃¬ = ¬∀, ∀¬ = ¬∃) — both are bounded by the child's block.
			est := d.Est[kid]
			if (nd.Op == OpForall) != d.Neg[kid] {
				est /= math.Max(nf, 1)
			}
			d.Est[id] = math.Min(est, pow(bits.OnesCount64(sup)))
			capable[id] = capable[kid]
		case OpFix:
			fx := nd.Fix
			var sup uint64
			for _, a := range fx.ArgAxes {
				sup |= 1 << uint(a)
			}
			for _, a := range fx.ParamAxes {
				sup |= 1 << uint(a)
			}
			d.Support[id] = sup
			d.Est[id] = math.Min(d.Est[fx.Body]*fixGrowthGuess, pow(bits.OnesCount64(sup)))
			ok := capable[fx.Body]
			switch fx.Op {
			case logic.LFP, logic.IFP:
			default:
				ok = false
				block(fmt.Sprintf("%s fixpoint %s requires dense evaluation (sparse stages are bottom-up only)", fx.Op, fx.Rel))
			}
			if d.Neg[fx.Body] {
				ok = false
				block(fmt.Sprintf("fixpoint %s body is negatively represented; stage extraction would complement every stage", fx.Rel))
			}
			capable[id] = ok
		}
	}
	if !capable[p.Root] {
		block("plan contains a node without a sparse kernel")
	}
	d.RootEst = d.Est[p.Root]

	// Hybrid mode labels: recursion-free subtrees whose estimated density
	// clears the win threshold are evaluated sparsely and cylindrified once
	// at their boundary. Dirty nodes stay dense — the fixpoint invalidation
	// and delta machinery owns them.
	if d.SpaceFeasible && d.SpaceBits >= hybridMinBits {
		for id := range p.Nodes {
			if capable[id] && p.Deps[id] == 0 &&
				d.Est[id]*sparseWinFactor < d.SpaceBits {
				d.Mode[id] = NodeSparse
			}
		}
	}

	// Sparse semi-naive admissibility per binder.
	d.DeltaSparse = make([]bool, p.NumBinders)
	for b := 0; b < p.NumBinders; b++ {
		if !p.DeltaOK[b] {
			continue
		}
		ok := true
		for _, nn := range p.Dirty[b] {
			if d.Neg[nn] {
				ok = false
				break
			}
			for _, kid := range p.Nodes[nn].Kids {
				if d.Neg[kid] {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		d.DeltaSparse[b] = ok
	}
	return d
}

// PreferSparse reports that the auto backend should run the all-sparse
// executor even though the dense space is feasible: the space is large and
// the root's estimated density clears the win factor. Infeasible spaces
// don't reach this — auto forces sparse for them unconditionally.
func (d *Density) PreferSparse() bool {
	return d.SparseOK && d.SpaceBits >= autoSparseBits &&
		d.RootEst*sparseWinFactor < d.SpaceBits
}

// HasSparseFrontier reports whether any node is sparse-labeled for the
// hybrid dense executor.
func (d *Density) HasSparseFrontier() bool {
	for _, m := range d.Mode {
		if m == NodeSparse {
			return true
		}
	}
	return false
}

// feasiblePow reports nᵏ ≤ limit without overflowing.
func feasiblePow(n, k, limit int) bool {
	if n == 0 || k == 0 {
		return true
	}
	size := 1
	for i := 0; i < k; i++ {
		if size > limit/n {
			return false
		}
		size *= n
	}
	return true
}
