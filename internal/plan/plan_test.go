package plan

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

// tcQuery is the transitive-closure staple: T(x,y) ≡ E(x,y) ∨ ∃z(E(x,z) ∧ T(z,y)).
func tcQuery(t *testing.T) logic.Query {
	t.Helper()
	body := logic.Lfp("T", []logic.Var{"x", "y"},
		logic.Or(logic.R("E", "x", "y"),
			logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("T", "z", "y")), "z")),
		"x", "y")
	return logic.MustQuery([]logic.Var{"x", "y"}, body)
}

func TestCompileCSEFoldsDuplicates(t *testing.T) {
	// E(x,y) appears twice, and the two conjunctions are the same up to
	// commutation — everything folds onto single nodes.
	f := logic.Or(
		logic.And(logic.R("E", "x", "y"), logic.R("P", "x")),
		logic.And(logic.R("P", "x"), logic.R("E", "x", "y")))
	p, err := Compile(logic.MustQuery([]logic.Var{"x", "y"}, f))
	if err != nil {
		t.Fatal(err)
	}
	if p.CSEHits < 3 { // second E atom, second P atom, commuted And
		t.Fatalf("CSEHits = %d, want >= 3", p.CSEHits)
	}
	// Atoms E, P, one And, one Or (the Or of two identical kids still has
	// two slots, but only one And node exists).
	ands := 0
	for _, n := range p.Nodes {
		if n.Op == OpAnd {
			ands++
		}
	}
	if ands != 1 {
		t.Fatalf("got %d And nodes, want 1 after commutative CSE", ands)
	}
}

func TestCompileEqCanonicalization(t *testing.T) {
	f := logic.And(logic.Equal("x", "y"), logic.Equal("y", "x"))
	p, err := Compile(logic.MustQuery([]logic.Var{"x", "y"}, f))
	if err != nil {
		t.Fatal(err)
	}
	eqs := 0
	for _, n := range p.Nodes {
		if n.Op == OpEq {
			eqs++
		}
	}
	if eqs != 1 {
		t.Fatalf("got %d Eq nodes, want 1 (x=y and y=x are the same diagonal)", eqs)
	}
}

func TestCompileTCAnalysis(t *testing.T) {
	p, err := Compile(tcQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBinders != 1 {
		t.Fatalf("NumBinders = %d, want 1", p.NumBinders)
	}
	// The database atoms are hoisted; the recursion atom and its ancestors
	// are dirty.
	for n, nd := range p.Nodes {
		switch {
		case nd.Op == OpAtom && nd.Binder < 0:
			if p.Deps[n] != 0 {
				t.Errorf("db atom %s has deps %b, want recursion-free", nd.Rel, p.Deps[n])
			}
		case nd.Op == OpAtom && nd.Binder == 0:
			if p.Deps[n] != 1 {
				t.Errorf("recursion atom has deps %b, want 1", p.Deps[n])
			}
		}
	}
	if len(p.Dirty[0]) == 0 || len(p.PreEval[0]) == 0 {
		t.Fatalf("Dirty=%v PreEval=%v, want both nonempty", p.Dirty[0], p.PreEval[0])
	}
	// Hoisted frontier must be recursion-free and disjoint from Dirty.
	dirty := map[int]bool{}
	for _, n := range p.Dirty[0] {
		dirty[n] = true
	}
	for _, n := range p.PreEval[0] {
		if dirty[n] {
			t.Fatalf("PreEval node %d is dirty", n)
		}
	}
	if !p.DeltaOK[0] {
		t.Fatal("transitive closure must admit semi-naive evaluation")
	}
	// With no nested fixpoints, Sched covers Dirty exactly.
	if len(p.Sched[0]) != len(p.Dirty[0]) {
		t.Fatalf("Sched=%v Dirty=%v, want equal", p.Sched[0], p.Dirty[0])
	}
	checkLevels(t, p, 0)
}

// checkLevels asserts SchedLevels is a partition of Sched where every
// predecessor sits in a strictly earlier level.
func checkLevels(t *testing.T, p *Plan, b int) {
	t.Helper()
	levelOf := map[int]int{}
	total := 0
	for lv, nodes := range p.SchedLevels[b] {
		for _, n := range nodes {
			if _, dup := levelOf[n]; dup {
				t.Fatalf("node %d in two levels", n)
			}
			levelOf[n] = lv
			total++
		}
	}
	if total != len(p.Sched[b]) {
		t.Fatalf("levels cover %d nodes, Sched has %d", total, len(p.Sched[b]))
	}
	for i, n := range p.Sched[b] {
		for _, m := range p.SchedPreds[b][i] {
			if levelOf[m] >= levelOf[n] {
				t.Fatalf("pred %d (level %d) not before node %d (level %d)",
					m, levelOf[m], n, levelOf[n])
			}
		}
	}
}

func TestCompileGFPNoDelta(t *testing.T) {
	body := logic.Gfp("S", []logic.Var{"x"},
		logic.And(logic.R("P", "x"),
			logic.Exists(logic.And(logic.R("E", "x", "y"), logic.R("S", "y")), "y")),
		"x")
	p, err := Compile(logic.MustQuery([]logic.Var{"x"}, body))
	if err != nil {
		t.Fatal(err)
	}
	if p.DeltaOK[0] {
		t.Fatal("GFP stages shrink; semi-naive union deltas must be disabled")
	}
}

func TestCompileNestedFixCoverage(t *testing.T) {
	// Inner fixpoint depends on the outer binder (reads S), so it is dirty
	// for the outer loop; its own dirty subtree must be covered — recomputed
	// by the inner loop, not scheduled by the outer one — and the outer
	// binder loses delta admissibility.
	inner := logic.Lfp("U", []logic.Var{"y"},
		logic.Or(logic.R("S", "y"),
			logic.Exists(logic.And(logic.R("E", "y", "z"), logic.R("U", "z")), "z")),
		"x")
	body := logic.Lfp("S", []logic.Var{"x"},
		logic.Or(logic.R("P", "x"), inner), "x")
	p, err := Compile(logic.MustQuery([]logic.Var{"x"}, body))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBinders != 2 {
		t.Fatalf("NumBinders = %d, want 2", p.NumBinders)
	}
	// Binders are allocated at fix entry: 0 is the outer S, 1 the inner U.
	innerFix := p.FixOf[1]
	if p.Deps[innerFix]&(1<<0) == 0 {
		t.Fatal("inner fix must be dirty for the outer binder")
	}
	if p.DeltaOK[0] {
		t.Fatal("outer binder with a nested dirty fixpoint cannot run semi-naive")
	}
	sched := map[int]bool{}
	for _, n := range p.Sched[0] {
		sched[n] = true
	}
	if !sched[innerFix] {
		t.Fatal("outer Sched must contain the inner fix node itself")
	}
	for _, n := range p.Dirty[1] {
		if sched[n] {
			t.Fatalf("inner dirty node %d leaked into outer Sched", n)
		}
	}
	checkLevels(t, p, 0)
	checkLevels(t, p, 1)
}

func TestCompileSiblingBindersNotShared(t *testing.T) {
	// Two sibling fixpoints with byte-identical bodies binding the same name:
	// CSE must keep their recursion atoms distinct (different binder ids),
	// the compiled counterpart of the monotone engine's memo-keying hazard.
	mk := func() logic.Formula {
		return logic.Lfp("S", []logic.Var{"x"},
			logic.Or(logic.R("P", "x"),
				logic.Exists(logic.And(logic.R("E", "x", "y"), logic.R("S", "y")), "y")),
			"x")
	}
	p, err := Compile(logic.MustQuery([]logic.Var{"x"}, logic.And(mk(), mk())))
	if err != nil {
		t.Fatal(err)
	}
	binders := map[int]bool{}
	for _, n := range p.Nodes {
		if n.Op == OpAtom && n.Rel == "S" && n.Binder >= 0 {
			binders[n.Binder] = true
		}
	}
	if len(binders) != 2 {
		t.Fatalf("sibling fixpoints share recursion-atom nodes: binders %v", binders)
	}
}

func TestCompileRejectsSOQuant(t *testing.T) {
	f := logic.SOExists(logic.R("A", "x"), logic.RelVar{Name: "A", Arity: 1})
	_, err := Compile(logic.MustQuery([]logic.Var{"x"}, f))
	if err == nil || !strings.Contains(err.Error(), "second-order") {
		t.Fatalf("err = %v, want second-order rejection", err)
	}
}

func TestCompileMaxBinders(t *testing.T) {
	f := logic.Formula(logic.R("P", "x"))
	for i := 0; i <= MaxBinders; i++ {
		f = logic.Or(f, logic.Lfp("S", []logic.Var{"x"},
			logic.Or(logic.R("S", "x"), logic.R("P", "x")), "x"))
	}
	_, err := Compile(logic.MustQuery([]logic.Var{"x"}, f))
	if err == nil || !strings.Contains(err.Error(), "binders") {
		t.Fatalf("err = %v, want MaxBinders rejection", err)
	}
}
