package plan

import (
	"testing"

	"repro/internal/logic"
)

func densityTCQuery(t *testing.T) logic.Query {
	t.Helper()
	return logic.MustQuery([]logic.Var{"x", "y"},
		logic.Lfp("T", []logic.Var{"x", "y"},
			logic.Or(logic.R("E", "x", "y"),
				logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("T", "z", "y")), "z")),
			"x", "y"))
}

func TestDensitySupportsAndFeasibility(t *testing.T) {
	p, err := Compile(densityTCQuery(t))
	if err != nil {
		t.Fatal(err)
	}
	cards := func(string) int { return 50 }

	den := p.Density(10000, cards)
	if den.SpaceFeasible {
		t.Fatalf("10000^3 must not be dense-feasible")
	}
	if !den.SparseOK {
		t.Fatalf("TC must be sparse-evaluable: %s", den.Blocker)
	}
	if len(den.DeltaSparse) != 1 || !den.DeltaSparse[0] {
		t.Fatalf("TC binder must admit sparse semi-naive: %+v", den.DeltaSparse)
	}
	// Root is the fix application on axes (x, y): support must be exactly
	// those two axes of the three-variable space.
	axisOf := make(map[logic.Var]int)
	for i, v := range p.Vars {
		axisOf[v] = i
	}
	wantSup := uint64(1)<<uint(axisOf["x"]) | uint64(1)<<uint(axisOf["y"])
	if den.Support[p.Root] != wantSup {
		t.Fatalf("root support %b, want %b", den.Support[p.Root], wantSup)
	}

	small := p.Density(16, cards)
	if !small.SpaceFeasible {
		t.Fatalf("16^3 must be dense-feasible")
	}
	if small.HasSparseFrontier() || small.PreferSparse() {
		t.Fatalf("small spaces must stay fully dense")
	}
}

func TestDensityBlocksGFPAndNegativeBodies(t *testing.T) {
	gfp := logic.MustQuery([]logic.Var{"x"},
		logic.Gfp("S", []logic.Var{"x"},
			logic.Exists(logic.And(logic.R("E", "x", "z"),
				logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z"), "x"))
	p, err := Compile(gfp)
	if err != nil {
		t.Fatal(err)
	}
	den := p.Density(100, func(string) int { return 10 })
	if den.SparseOK {
		t.Fatalf("GFP must block sparse evaluation")
	}
	if den.Blocker == "" {
		t.Fatalf("blocker must be reported")
	}
}

func TestDensityNegationPolarity(t *testing.T) {
	q := logic.MustQuery([]logic.Var{"x", "y"},
		logic.And(logic.R("E", "x", "y"), logic.Neg(logic.R("F", "x", "y"))))
	p, err := Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	den := p.Density(1000, func(string) int { return 100 })
	if !den.SparseOK {
		t.Fatalf("positive-∧-negative must be sparse-evaluable (antijoin): %s", den.Blocker)
	}
	if den.Neg[p.Root] {
		t.Fatalf("antijoin result must be positively represented")
	}
	foundNeg := false
	for id := range p.Nodes {
		if p.Nodes[id].Op == OpNot && den.Neg[id] {
			foundNeg = true
		}
	}
	if !foundNeg {
		t.Fatalf("negated atom must carry negative polarity")
	}
}
