package queryopt_test

import (
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/logic"
	. "repro/internal/queryopt"
	"repro/internal/relation"
)

func lineDB(t testing.TB, n int) *database.Database {
	t.Helper()
	b := database.NewBuilder().Relation("E", 2)
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	for i := 0; i+1 < n; i++ {
		b.Add("E", i, i+1)
	}
	return b.MustBuild()
}

// corporateDB builds the §1 EMP/MGR/SCY/SAL database with ne employees.
func corporateDB(t testing.TB, r *rand.Rand, ne int) *database.Database {
	t.Helper()
	// Identifier layout: employees 0..ne−1, departments ne..ne+nd−1,
	// managers are employees, secretaries are employees, salaries are
	// values 100..100+maxSal.
	nd := 1 + ne/3
	b := database.NewBuilder().
		Relation("EMP", 2).Relation("MGR", 2).Relation("SCY", 2).Relation("SAL", 2)
	mgrOf := make([]int, nd)
	for d := 0; d < nd; d++ {
		mgrOf[d] = r.Intn(ne)
		b.Add("MGR", ne+d, mgrOf[d])
		b.Add("SCY", mgrOf[d], r.Intn(ne))
	}
	for e := 0; e < ne; e++ {
		b.Add("EMP", e, ne+r.Intn(nd))
		b.Add("SAL", e, 100+r.Intn(5))
	}
	return b.MustBuild()
}

func TestValidateCQ(t *testing.T) {
	bad := []*CQ{
		{},
		{Head: []logic.Var{"x"}, Atoms: []Atom{{Rel: "E", Vars: []logic.Var{"y", "z"}}}},
		{Head: []logic.Var{"x", "x"}, Atoms: []Atom{{Rel: "E", Vars: []logic.Var{"x", "x"}}}},
		{Atoms: []Atom{{Rel: "", Vars: []logic.Var{"x"}}}},
	}
	for i, q := range bad {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: invalid CQ accepted", i)
		}
	}
}

func TestAcyclicityChainAndTriangle(t *testing.T) {
	if !ChainCQ(4).IsAcyclic() {
		t.Fatal("chain query reported cyclic")
	}
	triangle := &CQ{
		Head: []logic.Var{"x"},
		Atoms: []Atom{
			{Rel: "E", Vars: []logic.Var{"x", "y"}},
			{Rel: "E", Vars: []logic.Var{"y", "z"}},
			{Rel: "E", Vars: []logic.Var{"z", "x"}},
		},
	}
	if triangle.IsAcyclic() {
		t.Fatal("triangle query reported acyclic")
	}
	if _, err := triangle.BuildJoinTree(); err != ErrCyclic {
		t.Fatalf("expected ErrCyclic, got %v", err)
	}
}

func TestNaiveAndYannakakisAgree(t *testing.T) {
	db := lineDB(t, 7)
	for m := 1; m <= 4; m++ {
		q := ChainCQ(m)
		naive, _, err := EvalNaive(q, db)
		if err != nil {
			t.Fatal(err)
		}
		yan, _, err := EvalYannakakis(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !naive.Equal(yan) {
			t.Fatalf("m=%d: naive %v != yannakakis %v", m, naive, yan)
		}
		want := relation.NewSet(2)
		for i := 0; i+m < 7; i++ {
			want.Add(relation.Tuple{i, i + m})
		}
		if !naive.Equal(want) {
			t.Fatalf("m=%d: answer %v, want %v", m, naive, want)
		}
	}
}

func TestYannakakisBoundedArity(t *testing.T) {
	db := lineDB(t, 6)
	q := ChainCQ(5)
	_, naiveStats, err := EvalNaive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	_, yanStats, err := EvalYannakakis(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if naiveStats.MaxIntermediateArity != 10 {
		t.Fatalf("naive max arity = %d, want 10", naiveStats.MaxIntermediateArity)
	}
	if yanStats.MaxIntermediateArity > 4 {
		t.Fatalf("yannakakis max arity = %d, want ≤ 4", yanStats.MaxIntermediateArity)
	}
}

func TestToFOMatchesEvaluators(t *testing.T) {
	db := lineDB(t, 6)
	q := ChainCQ(3)
	fo, err := q.ToFO()
	if err != nil {
		t.Fatal(err)
	}
	if fo.Width() != 4 {
		t.Fatalf("direct FO width = %d, want 4", fo.Width())
	}
	foAns, err := eval.BottomUp(fo, db)
	if err != nil {
		t.Fatal(err)
	}
	yan, _, err := EvalYannakakis(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !foAns.Equal(yan) {
		t.Fatalf("FO answer %v != yannakakis %v", foAns, yan)
	}
}

func TestChainToFO3(t *testing.T) {
	db := lineDB(t, 8)
	for m := 1; m <= 5; m++ {
		q3, err := ChainToFO3(m)
		if err != nil {
			t.Fatal(err)
		}
		if q3.Width() > 3 {
			t.Fatalf("minimized width = %d", q3.Width())
		}
		ans3, err := eval.BottomUp(q3, db)
		if err != nil {
			t.Fatal(err)
		}
		yan, _, err := EvalYannakakis(ChainCQ(m), db)
		if err != nil {
			t.Fatal(err)
		}
		if !ans3.Equal(yan) {
			t.Fatalf("m=%d: FO³ form %v != CQ answer %v", m, ans3, yan)
		}
	}
	if _, err := ChainToFO3(0); err == nil {
		t.Fatal("chain of length 0 accepted")
	}
}

// TestEmployeesQuery runs the paper's §1 example: employees earning less
// than their manager's secretary.
func TestEmployeesQuery(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		db := corporateDB(t, r, 4+r.Intn(5))
		// answer(e) ← EMP(e,d), MGR(d,m), SCY(m,s), SAL(e,se), SAL(s,ss),
		// with the comparison se < ss done outside the CQ (pure CQs have no
		// arithmetic); here we just compute the join and compare plans.
		q := &CQ{
			Head: []logic.Var{"e", "se", "ss"},
			Atoms: []Atom{
				{Rel: "EMP", Vars: []logic.Var{"e", "d"}},
				{Rel: "MGR", Vars: []logic.Var{"d", "m"}},
				{Rel: "SCY", Vars: []logic.Var{"m", "s"}},
				{Rel: "SAL", Vars: []logic.Var{"e", "se"}},
				{Rel: "SAL2", Vars: []logic.Var{"s", "ss"}},
			},
		}
		// SAL is used twice; give the second use its own relation name by
		// duplicating it in the database view.
		b := database.NewBuilder()
		for _, name := range db.Names() {
			a, _ := db.Arity(name)
			b.Relation(name, a)
			rel, _ := db.RelValues(name)
			rel.ForEach(func(tp relation.Tuple) { b.Add(name, tp...) })
		}
		b.Relation("SAL2", 2)
		sal, _ := db.RelValues("SAL")
		sal.ForEach(func(tp relation.Tuple) { b.Add("SAL2", tp...) })
		db2 := b.MustBuild()

		if !q.IsAcyclic() {
			t.Fatal("employees query should be acyclic")
		}
		naive, naiveStats, err := EvalNaive(q, db2)
		if err != nil {
			t.Fatal(err)
		}
		yan, yanStats, err := EvalYannakakis(q, db2)
		if err != nil {
			t.Fatal(err)
		}
		if !naive.Equal(yan) {
			t.Fatalf("plans disagree: naive %v, yannakakis %v", naive, yan)
		}
		if naiveStats.MaxIntermediateArity != 10 {
			t.Fatalf("naive arity = %d, want the paper's 10", naiveStats.MaxIntermediateArity)
		}
		if yanStats.MaxIntermediateArity > 5 {
			t.Fatalf("yannakakis arity = %d, want small", yanStats.MaxIntermediateArity)
		}
	}
}

func TestRepeatedVariablesInAtom(t *testing.T) {
	b := database.NewBuilder().Relation("E", 2)
	b.Add("E", 0, 0).Add("E", 0, 1).Add("E", 1, 1)
	db := b.MustBuild()
	q := &CQ{Head: []logic.Var{"x"}, Atoms: []Atom{{Rel: "E", Vars: []logic.Var{"x", "x"}}}}
	naive, _, err := EvalNaive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	yan, _, err := EvalYannakakis(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.SetOf(1, relation.Tuple{0}, relation.Tuple{1})
	if !naive.Equal(want) || !yan.Equal(want) {
		t.Fatalf("loops: naive %v, yannakakis %v, want %v", naive, yan, want)
	}
}

func TestRandomAcyclicCrossValidation(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		db := lineDB(t, 3+r.Intn(4))
		// Random star/chain mixtures are acyclic.
		m := 1 + r.Intn(4)
		q := ChainCQ(m)
		naive, _, err := EvalNaive(q, db)
		if err != nil {
			t.Fatal(err)
		}
		yan, _, err := EvalYannakakis(q, db)
		if err != nil {
			t.Fatal(err)
		}
		fo, err := q.ToFO()
		if err != nil {
			t.Fatal(err)
		}
		bu, err := eval.BottomUp(fo, db)
		if err != nil {
			t.Fatal(err)
		}
		if !naive.Equal(yan) || !naive.Equal(bu) {
			t.Fatalf("three-way disagreement: %v / %v / %v", naive, yan, bu)
		}
	}
}
