package queryopt

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
)

// Enum streams the answers of an acyclic conjunctive query in the canonical
// lexicographic tuple order without ever materializing the full answer — the
// Durand–Grandjean enumeration shape: a preprocessing phase (the Yannakakis
// full reducer, linear in the database), then answers delivered with delay
// bounded by the work of one group.
//
// The decomposition is by the first head variable h. After full reduction
// the relations are globally consistent, so the sorted distinct h-values of
// any reduced relation containing h are exactly π_h(answer) — the group
// keys. For each key v, in ascending order, the group's answers are computed
// by the same project-join solve as the materializing executor, but with
// every relation containing h pre-partitioned on h and restricted to v:
// per-group work is proportional to the group's join size, never to
// |answer|. Subtrees that do not contain h are group-independent: they are
// solved once, memoized, and joined into each group through a hash index
// built once per tree edge (probing from the small filtered side), so no
// per-group pass over a large relation ever happens.
//
// Memory held between Next calls is O(reduced relations + one group), which
// is the "stage relations" bound the streaming API promises — the full
// answer product is never built.
type Enum struct {
	ctx context.Context
	red *reduced

	hv   logic.Var // first head variable (groups key); "" for boolean heads
	hcol []int     // hcol[i] = column of hv in vars[i], -1 if absent
	subH []bool    // subH[i]: hv occurs somewhere in i's subtree

	groups []int                   // sorted distinct hv values of the anchor
	gi     int                     // next group to solve
	parts  []map[int]*relation.Set // parts[i]: hv-partition of rels[i] (nil unless hcol[i] ≥ 0)

	// memo[i] holds the solve of an hv-free subtree, computed once; edge[i]
	// holds the hash index of memo[i] keyed by the join columns shared with
	// i's parent, also built once.
	memo   []*solved
	edge   []map[string][]relation.Tuple
	edgeOn [][]relation.JoinOn

	buf []relation.Tuple // current group's rows in head order, sorted
	bi  int

	err  error
	done bool
}

type solved struct {
	vars []logic.Var
	rel  *relation.Set
}

// EnumYannakakis prepares streaming enumeration of an acyclic conjunctive
// query. The returned Stats is live: preprocessing work is recorded before
// return, per-group work as enumeration proceeds; read it only after the
// enumerator is closed or exhausted. Cyclic queries fail with ErrCyclic.
func EnumYannakakis(ctx context.Context, q *CQ, db *database.Database) (*Enum, *Stats, error) {
	st := &Stats{}
	jt, err := q.BuildJoinTree()
	if err != nil {
		return nil, nil, err
	}
	hv, anchor := logic.Var(""), -1
	if len(q.Head) > 0 {
		hv = q.Head[0]
		for i, a := range q.Atoms {
			for _, v := range a.Vars {
				if v == hv {
					anchor = i
					break
				}
			}
			if anchor >= 0 {
				break
			}
		}
		if anchor < 0 {
			return nil, nil, fmt.Errorf("queryopt: head variable %s not found", hv)
		}
		// Re-root at an atom containing hv. By the join tree's running
		// intersection property the hv-containing atoms then form a
		// connected subtree hanging from the root, so every node the group
		// solver recurses into carries hv — its relation is group-filtered
		// and per-group work never scans an unfiltered relation.
		jt = rerootTree(jt, anchor)
	}
	red, err := reduceTree(ctx, q, jt, db, st)
	if err != nil {
		return nil, nil, err
	}
	e := &Enum{ctx: ctx, red: red}
	n := len(q.Atoms)
	if len(q.Head) == 0 {
		// Boolean query: after full reduction the root relation is nonempty
		// iff the query holds (an empty relation anywhere empties the root
		// through the upward pass). One group, zero or one empty tuple.
		if red.rels[red.jt.Root].Len() > 0 {
			e.buf = []relation.Tuple{{}}
		}
		return e, st, nil
	}
	e.hv = hv
	e.hcol = make([]int, n)
	e.subH = make([]bool, n)
	e.parts = make([]map[int]*relation.Set, n)
	e.memo = make([]*solved, n)
	e.edge = make([]map[string][]relation.Tuple, n)
	e.edgeOn = make([][]relation.JoinOn, n)
	for i := range q.Atoms {
		e.hcol[i] = -1
		for ci, v := range red.vars[i] {
			if v == e.hv {
				e.hcol[i] = ci
				break
			}
		}
	}
	var markSub func(i int) bool
	markSub = func(i int) bool {
		has := e.hcol[i] >= 0
		for _, c := range red.children[i] {
			if markSub(c) {
				has = true
			}
		}
		e.subH[i] = has
		return has
	}
	markSub(red.jt.Root)
	// Partition every hv-containing relation by its hv value, once. The
	// partitions replace the reduced relation in group solves; total memory
	// equals the reduced relations themselves.
	for i := range q.Atoms {
		if e.hcol[i] < 0 {
			continue
		}
		part := make(map[int]*relation.Set)
		hc := e.hcol[i]
		ar := red.rels[i].Arity()
		red.rels[i].ForEach(func(t relation.Tuple) {
			s := part[t[hc]]
			if s == nil {
				s = relation.NewSet(ar)
				part[t[hc]] = s
			}
			s.Add(t)
		})
		e.parts[i] = part
	}
	e.groups = make([]int, 0, len(e.parts[red.jt.Root]))
	for v := range e.parts[red.jt.Root] {
		e.groups = append(e.groups, v)
	}
	sort.Ints(e.groups)
	return e, st, nil
}

// rerootTree re-parents a join tree at newRoot, producing a post-order Order
// (every node after all its children) as the semijoin passes require. The
// join-tree property is a property of the undirected tree, so any rooting
// is valid.
func rerootTree(jt *JoinTree, newRoot int) *JoinTree {
	n := len(jt.Parent)
	adj := make([][]int, n)
	for e, p := range jt.Parent {
		if p >= 0 {
			adj[e] = append(adj[e], p)
			adj[p] = append(adj[p], e)
		}
	}
	out := &JoinTree{Parent: make([]int, n), Order: make([]int, 0, n), Root: newRoot}
	for i := range out.Parent {
		out.Parent[i] = -1
	}
	type frame struct{ node, idx int }
	visited := make([]bool, n)
	stack := []frame{{newRoot, 0}}
	visited[newRoot] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx < len(adj[f.node]) {
			nb := adj[f.node][f.idx]
			f.idx++
			if !visited[nb] {
				visited[nb] = true
				out.Parent[nb] = f.node
				stack = append(stack, frame{nb, 0})
			}
			continue
		}
		out.Order = append(out.Order, f.node)
		stack = stack[:len(stack)-1]
	}
	return out
}

// Next returns the next answer tuple (in lexicographic order) and whether
// one exists. The returned tuple is owned by the enumerator's current group
// buffer and stays valid until the group is exhausted; callers that retain
// tuples across groups must clone them.
func (e *Enum) Next() (relation.Tuple, bool) {
	for {
		if e.err != nil || e.done {
			return nil, false
		}
		if e.bi < len(e.buf) {
			t := e.buf[e.bi]
			e.bi++
			return t, true
		}
		if !e.nextGroup() {
			return nil, false
		}
	}
}

// nextGroup solves groups until one yields rows or the keys run out. It
// returns false when enumeration is over (exhausted or failed).
func (e *Enum) nextGroup() bool {
	for {
		if e.ctx != nil {
			if err := e.ctx.Err(); err != nil {
				e.err = fmt.Errorf("queryopt: cancelled: %w", err)
				return false
			}
		}
		if e.gi >= len(e.groups) {
			e.done = true
			return false
		}
		v := e.groups[e.gi]
		e.gi++
		rows, err := e.solveGroup(v)
		if err != nil {
			e.err = err
			return false
		}
		if len(rows) > 0 {
			e.buf, e.bi = rows, 0
			return true
		}
		// A group can come up empty only when a sibling branch sharing hv
		// eliminated it; full reduction makes that impossible, but staying
		// robust costs nothing.
	}
}

// solveGroup computes the answer rows with hv = v, sorted.
func (e *Enum) solveGroup(v int) ([]relation.Tuple, error) {
	rootVars, root, err := e.solveNode(e.red.jt.Root, v)
	if err != nil {
		return nil, err
	}
	cols, err := headCols(e.red.q.Head, rootVars)
	if err != nil {
		return nil, err
	}
	out := root.Project(cols)
	e.red.st.observe(out)
	return out.Tuples(), nil
}

// solveNode is the group-restricted analogue of reduced.solve: relations
// containing hv are replaced by their v-partition, hv-free subtrees by their
// memoized global solve (joined through the once-built edge index).
func (e *Enum) solveNode(i, v int) ([]logic.Var, *relation.Set, error) {
	red := e.red
	var curVars []logic.Var
	var cur *relation.Set
	if e.hcol[i] >= 0 {
		curVars = red.vars[i]
		cur = e.parts[i][v]
		if cur == nil {
			cur = relation.NewSet(len(red.vars[i]))
		}
	} else {
		curVars, cur = red.vars[i], red.rels[i]
	}
	for _, c := range red.children[i] {
		if !e.subH[c] {
			var err error
			curVars, cur, err = e.joinMemo(curVars, cur, i, c)
			if err != nil {
				return nil, nil, err
			}
			continue
		}
		cvars, crel, err := e.solveNode(c, v)
		if err != nil {
			return nil, nil, err
		}
		curVars, cur = red.joinKeep(curVars, cur, c, cvars, crel)
	}
	return curVars, cur, nil
}

// joinMemo joins cur with the memoized solve of hv-free subtree c, probing
// from cur into c's prebuilt hash index — per-group cost proportional to
// cur and the matching rows, never to the memoized relation.
func (e *Enum) joinMemo(curVars []logic.Var, cur *relation.Set, parent, c int) ([]logic.Var, *relation.Set, error) {
	m := e.memo[c]
	if m == nil {
		vars, rel := e.red.solve(c)
		m = &solved{vars: vars, rel: rel}
		e.memo[c] = m
	}
	if e.edge[c] == nil {
		// Join conditions between the parent's current vars and the child
		// solve: since the child's kept vars are its own ∪ its subtree heads
		// and the parent always retains its own vars, the shared variables
		// are determined by the tree edge, not by how many children have
		// been folded in — so the index keyed on the child side is reusable
		// across groups.
		var on []relation.JoinOn
		for ai, vv := range curVars {
			for bi, w := range m.vars {
				if vv == w {
					on = append(on, relation.JoinOn{Left: ai, Right: bi})
				}
			}
		}
		idx := make(map[string][]relation.Tuple)
		key := make(relation.Tuple, len(on))
		m.rel.ForEach(func(t relation.Tuple) {
			for i, cnd := range on {
				key[i] = t[cnd.Right]
			}
			k := joinKey(key)
			idx[k] = append(idx[k], t)
		})
		e.edge[c] = idx
		e.edgeOn[c] = on
	}
	on := e.edgeOn[c]
	out := relation.NewSet(cur.Arity() + len(m.vars))
	key := make(relation.Tuple, len(on))
	row := make(relation.Tuple, cur.Arity()+len(m.vars))
	cur.ForEach(func(a relation.Tuple) {
		for i, cnd := range on {
			key[i] = a[cnd.Left]
		}
		for _, b := range e.edge[c][joinKey(key)] {
			copy(row, a)
			copy(row[cur.Arity():], b)
			out.Add(row)
		}
	})
	newVars, cols := keepCols(curVars, m.vars, e.red.subtreeHead(c))
	proj := out.Project(cols)
	e.red.st.observe(proj)
	return newVars, proj, nil
}

// joinKey encodes join-column values as a map key (4-byte big-endian per
// component, mirroring the relation package's tuple keys).
func joinKey(t relation.Tuple) string {
	b := make([]byte, 4*len(t))
	for i, x := range t {
		binary.BigEndian.PutUint32(b[4*i:], uint32(x))
	}
	return string(b)
}

// Err reports the error that stopped enumeration early (context
// cancellation), nil after a clean exhaustion.
func (e *Enum) Err() error { return e.err }

// Close releases the enumerator's group state. Safe to call repeatedly.
func (e *Enum) Close() {
	e.done = true
	e.buf = nil
	e.parts = nil
	e.memo = nil
	e.edge = nil
}
