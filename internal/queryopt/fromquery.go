package queryopt

import (
	"repro/internal/logic"
)

// FromQuery recognizes a first-order query as a conjunctive query: a body
// built from relational atoms, equalities, true, ∧ and ∃ only, with no
// variable bound twice and no head variable rebound. Equalities are
// compiled away by unifying their variable classes (head variables are kept
// as class representatives; an equality forcing two distinct head variables
// together is outside the CQ form and rejected).
//
// The recognizer is deliberately conservative: ok=false never means "the
// query has no CQ equivalent", only "this syntactic shape is not the ∃∧
// fragment", and callers fall back to a general evaluator. On ok=true the
// returned CQ has exactly the query's semantics, so the Yannakakis fast
// path may substitute for full evaluation.
func FromQuery(q logic.Query) (*CQ, bool) {
	head := make(map[logic.Var]bool, len(q.Head))
	for _, v := range q.Head {
		head[v] = true
	}
	bound := make(map[logic.Var]bool)
	var atoms []Atom
	var eqs [][2]logic.Var
	var walk func(f logic.Formula) bool
	walk = func(f logic.Formula) bool {
		switch g := f.(type) {
		case logic.Atom:
			atoms = append(atoms, Atom{Rel: g.Rel, Vars: append([]logic.Var(nil), g.Args...)})
			return true
		case logic.Eq:
			eqs = append(eqs, [2]logic.Var{g.L, g.R})
			return true
		case logic.Truth:
			return g.Value // a false conjunct is outside the CQ form
		case logic.Binary:
			return g.Op == logic.AndOp && walk(g.L) && walk(g.R)
		case logic.Quant:
			if g.Kind != logic.ExistsQ || bound[g.V] || head[g.V] {
				return false // ∀, or shadowing an outer binder / head variable
			}
			bound[g.V] = true
			return walk(g.F)
		default:
			return false
		}
	}
	if !walk(q.Body) {
		return nil, false
	}

	// Unify equality classes, preferring head variables as representatives.
	parent := make(map[logic.Var]logic.Var)
	var find func(v logic.Var) logic.Var
	find = func(v logic.Var) logic.Var {
		p, ok := parent[v]
		if !ok || p == v {
			return v
		}
		root := find(p)
		parent[v] = root
		return root
	}
	for _, eq := range eqs {
		a, b := find(eq[0]), find(eq[1])
		if a == b {
			continue
		}
		if head[a] && head[b] {
			return nil, false // x = y between head variables: not a flat CQ
		}
		if head[b] {
			a, b = b, a
		}
		parent[b] = a
	}
	for i := range atoms {
		for j, v := range atoms[i].Vars {
			atoms[i].Vars[j] = find(v)
		}
	}
	cq := &CQ{Head: append([]logic.Var(nil), q.Head...), Atoms: atoms}
	if cq.Validate() != nil {
		// E.g. no atoms, or a head variable occurring only in equalities.
		return nil, false
	}
	return cq, true
}
