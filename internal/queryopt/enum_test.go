package queryopt_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
	. "repro/internal/queryopt"
	"repro/internal/relation"
)

// randomAcyclicCQ builds an acyclic CQ by construction: each new atom shares
// variables with exactly one already-placed atom (plus fresh variables), so
// the atoms form a join tree. The head is a random nonempty-or-empty subset
// of the occurring variables.
func randomAcyclicCQ(r *rand.Rand) (*CQ, []string) {
	nrel := 1 + r.Intn(3)
	var relNames []string
	arity := map[string]int{}
	for i := 0; i < nrel; i++ {
		name := fmt.Sprintf("R%d", i)
		relNames = append(relNames, name)
		arity[name] = 1 + r.Intn(3)
	}
	natoms := 1 + r.Intn(4)
	var vars []logic.Var
	fresh := func() logic.Var {
		v := logic.Var(fmt.Sprintf("v%d", len(vars)))
		vars = append(vars, v)
		return v
	}
	q := &CQ{}
	for i := 0; i < natoms; i++ {
		rel := relNames[r.Intn(nrel)]
		a := Atom{Rel: rel}
		var pool []logic.Var
		if i > 0 {
			// Share only with one prior atom to stay acyclic.
			pool = q.Atoms[r.Intn(i)].Vars
		}
		for p := 0; p < arity[rel]; p++ {
			if len(pool) > 0 && r.Intn(2) == 0 {
				a.Vars = append(a.Vars, pool[r.Intn(len(pool))])
			} else {
				a.Vars = append(a.Vars, fresh())
			}
		}
		q.Atoms = append(q.Atoms, a)
	}
	seen := map[logic.Var]bool{}
	var occurring []logic.Var
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			if !seen[v] {
				seen[v] = true
				occurring = append(occurring, v)
			}
		}
	}
	r.Shuffle(len(occurring), func(i, j int) { occurring[i], occurring[j] = occurring[j], occurring[i] })
	nh := r.Intn(len(occurring) + 1) // 0 = boolean query
	q.Head = append(q.Head, occurring[:nh]...)
	return q, relNames
}

func randomCQDB(r *rand.Rand, relNames []string, arities map[string]int) *database.Database {
	n := 3 + r.Intn(6)
	b := database.NewBuilder()
	for _, name := range relNames {
		b.Relation(name, arities[name])
	}
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	for _, name := range relNames {
		cnt := r.Intn(2 * n)
		for i := 0; i < cnt; i++ {
			row := make([]int, arities[name])
			for j := range row {
				row[j] = r.Intn(n)
			}
			b.Add(name, row...)
		}
	}
	return b.MustBuild()
}

// TestEnumMatchesYannakakis is the core streaming differential: for random
// acyclic CQs over random databases, draining the enumerator yields exactly
// the materialized Yannakakis answer, in Set.Tuples (lexicographic) order.
func TestEnumMatchesYannakakis(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		q, relNames := randomAcyclicCQ(r)
		arities := map[string]int{}
		for _, a := range q.Atoms {
			arities[a.Rel] = len(a.Vars)
		}
		db := randomCQDB(r, relNames, arities)
		want, _, err := EvalYannakakis(q, db)
		if err != nil {
			t.Fatalf("trial %d: materialized: %v (query %+v)", trial, err, q)
		}
		en, _, err := EnumYannakakis(context.Background(), q, db)
		if err != nil {
			t.Fatalf("trial %d: enum: %v (query %+v)", trial, err, q)
		}
		wantTuples := want.Tuples()
		var got []relation.Tuple
		for tp, ok := en.Next(); ok; tp, ok = en.Next() {
			got = append(got, tp.Clone())
		}
		if en.Err() != nil {
			t.Fatalf("trial %d: enum error: %v", trial, en.Err())
		}
		en.Close()
		if len(got) != len(wantTuples) {
			t.Fatalf("trial %d: enum yielded %d tuples, want %d (query %+v)", trial, len(got), len(wantTuples), q)
		}
		for i := range got {
			if !got[i].Equal(wantTuples[i]) {
				t.Fatalf("trial %d: tuple %d = %v, want %v (query %+v)", trial, i, got[i], wantTuples[i], q)
			}
		}
	}
}

// TestEnumCancellation checks that a cancelled context stops enumeration
// with a reported error rather than a hang or silent truncation.
func TestEnumCancellation(t *testing.T) {
	db := lineDB(t, 30)
	q := ChainCQ(2)
	ctx, cancel := context.WithCancel(context.Background())
	en, _, err := EnumYannakakis(ctx, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := en.Next(); !ok {
		t.Fatal("no first tuple")
	}
	cancel()
	// The current group buffer may still drain; after it, Next must stop.
	for i := 0; i < 10000; i++ {
		if _, ok := en.Next(); !ok {
			break
		}
	}
	if _, ok := en.Next(); ok {
		t.Fatal("Next kept yielding after cancellation")
	}
	if en.Err() == nil {
		t.Fatal("Err is nil after cancellation")
	}
}

// TestEnumCyclicRejected pins that the enumerator refuses cyclic queries
// with ErrCyclic, like the materializing executor.
func TestEnumCyclicRejected(t *testing.T) {
	q := &CQ{
		Head: []logic.Var{"x"},
		Atoms: []Atom{
			{Rel: "E", Vars: []logic.Var{"x", "y"}},
			{Rel: "E", Vars: []logic.Var{"y", "z"}},
			{Rel: "E", Vars: []logic.Var{"z", "x"}},
		},
	}
	db := lineDB(t, 4)
	if _, _, err := EnumYannakakis(context.Background(), q, db); err == nil {
		t.Fatal("cyclic query accepted")
	}
}
