// Package queryopt implements the query-optimization methodology that §1
// and §5 of Vardi (PODS 1995) draw from the bounded-variable results:
// minimize the size — and in particular the arity — of intermediate results.
//
// It provides conjunctive queries, the GYO acyclicity test with join-tree
// construction, the Yannakakis algorithm (acyclic joins evaluate without
// large intermediates — the paper's explanation for why acyclic joins are
// easy), a naive cross-product evaluator for contrast, and the rewriting of
// conjunctive queries into bounded-variable first-order form.
package queryopt

import (
	"fmt"
	"sort"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
)

// Atom is one conjunct R(v₁, …, v_m); repeated variables are allowed.
type Atom struct {
	Rel  string
	Vars []logic.Var
}

// CQ is a conjunctive query: answer(Head) ← Atoms.
type CQ struct {
	Head  []logic.Var
	Atoms []Atom
}

// Validate checks well-formedness: at least one atom, distinct head
// variables, and every head variable occurring in some atom.
func (q *CQ) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("queryopt: query with no atoms")
	}
	occurring := make(map[logic.Var]bool)
	for _, a := range q.Atoms {
		if a.Rel == "" {
			return fmt.Errorf("queryopt: atom with empty relation name")
		}
		for _, v := range a.Vars {
			if v == "" {
				return fmt.Errorf("queryopt: empty variable in atom %s", a.Rel)
			}
			occurring[v] = true
		}
	}
	seen := make(map[logic.Var]bool)
	for _, v := range q.Head {
		if seen[v] {
			return fmt.Errorf("queryopt: repeated head variable %s", v)
		}
		seen[v] = true
		if !occurring[v] {
			return fmt.Errorf("queryopt: head variable %s not in any atom", v)
		}
	}
	return nil
}

// Vars returns the distinct variables of the query, sorted.
func (q *CQ) Vars() []logic.Var {
	seen := make(map[logic.Var]bool)
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			seen[v] = true
		}
	}
	return logic.SortedVars(seen)
}

// Width returns the number of distinct variables: the k for which the
// query's natural first-order form lies in FOᵏ.
func (q *CQ) Width() int { return len(q.Vars()) }

// ToFO renders the query as (Head). ∃(other vars) ⋀ Atoms — the direct
// first-order form, of width Width().
func (q *CQ) ToFO() (logic.Query, error) {
	if err := q.Validate(); err != nil {
		return logic.Query{}, err
	}
	conjuncts := make([]logic.Formula, len(q.Atoms))
	for i, a := range q.Atoms {
		conjuncts[i] = logic.Atom{Rel: a.Rel, Args: append([]logic.Var(nil), a.Vars...)}
	}
	body := logic.And(conjuncts...)
	head := make(map[logic.Var]bool, len(q.Head))
	for _, v := range q.Head {
		head[v] = true
	}
	var bound []logic.Var
	for _, v := range q.Vars() {
		if !head[v] {
			bound = append(bound, v)
		}
	}
	return logic.NewQuery(q.Head, logic.Exists(body, bound...))
}

// JoinTree is the output of the GYO reduction on an acyclic query: node i
// is atom i; Parent[i] is the witness atom it was absorbed into (−1 for the
// root); Order lists the atoms leaves-first.
type JoinTree struct {
	Parent []int
	Order  []int
	Root   int
}

// ErrCyclic reports that a query's hypergraph is cyclic.
var ErrCyclic = fmt.Errorf("queryopt: query is cyclic")

// BuildJoinTree runs the GYO ear-removal algorithm. An atom e is an ear if
// some other atom w contains every variable that e shares with the rest of
// the query; removing ears until one atom remains succeeds exactly on
// acyclic queries.
func (q *CQ) BuildJoinTree() (*JoinTree, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	n := len(q.Atoms)
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	varsOf := make([]map[logic.Var]bool, n)
	for i, a := range q.Atoms {
		varsOf[i] = make(map[logic.Var]bool)
		for _, v := range a.Vars {
			varsOf[i][v] = true
		}
	}
	jt := &JoinTree{Parent: make([]int, n), Root: -1}
	for i := range jt.Parent {
		jt.Parent[i] = -1
	}
	remaining := n
	for remaining > 1 {
		removed := false
		for e := 0; e < n && !removed; e++ {
			if !alive[e] {
				continue
			}
			// Shared variables of e: those occurring in another live atom.
			shared := make([]logic.Var, 0, len(varsOf[e]))
			for v := range varsOf[e] {
				for w := 0; w < n; w++ {
					if w != e && alive[w] && varsOf[w][v] {
						shared = append(shared, v)
						break
					}
				}
			}
			for w := 0; w < n; w++ {
				if w == e || !alive[w] {
					continue
				}
				covers := true
				for _, v := range shared {
					if !varsOf[w][v] {
						covers = false
						break
					}
				}
				if covers {
					alive[e] = false
					jt.Parent[e] = w
					jt.Order = append(jt.Order, e)
					remaining--
					removed = true
					break
				}
			}
		}
		if !removed {
			return nil, ErrCyclic
		}
	}
	for i := 0; i < n; i++ {
		if alive[i] {
			jt.Root = i
			jt.Order = append(jt.Order, i)
		}
	}
	return jt, nil
}

// IsAcyclic reports whether the query's hypergraph is acyclic.
func (q *CQ) IsAcyclic() bool {
	_, err := q.BuildJoinTree()
	return err == nil
}

// Stats reports intermediate-result sizes of a plan execution: the §1
// quantities the methodology minimizes.
type Stats struct {
	MaxIntermediateArity  int
	MaxIntermediateTuples int
	Operations            int
	// TuplesTouched sums the sizes of all intermediate results — the total
	// tuple work of the execution, which the acyclic fast path reports up
	// into eval.Stats.TuplesTouched.
	TuplesTouched int
}

func (s *Stats) observe(r *relation.Set) {
	s.Operations++
	s.TuplesTouched += r.Len()
	if r.Arity() > s.MaxIntermediateArity {
		s.MaxIntermediateArity = r.Arity()
	}
	if r.Len() > s.MaxIntermediateTuples {
		s.MaxIntermediateTuples = r.Len()
	}
}

// atomRel materializes an atom over its distinct variables (sorted),
// selecting rows consistent with repeated variables.
func atomRel(db *database.Database, a Atom) ([]logic.Var, *relation.Set, error) {
	rel, err := db.Rel(a.Rel)
	if err != nil {
		return nil, nil, err
	}
	if rel.Arity() != len(a.Vars) {
		return nil, nil, fmt.Errorf("queryopt: atom %s has %d variables, relation has arity %d", a.Rel, len(a.Vars), rel.Arity())
	}
	seen := make(map[logic.Var]bool)
	var vars []logic.Var
	for _, v := range a.Vars {
		if !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	cur := rel
	cols := make([]int, len(vars))
	for pos, v := range a.Vars {
		first := true
		for p2 := 0; p2 < pos; p2++ {
			if a.Vars[p2] == v {
				first = false
				cur = cur.SelectEq(p2, pos)
				break
			}
		}
		if first {
			for vi, w := range vars {
				if w == v {
					cols[vi] = pos
				}
			}
		}
	}
	return vars, cur.Project(cols), nil
}
