package queryopt

import (
	"context"
	"fmt"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
)

// EvalNaive executes the §1 "naive approach": cross-product every atom
// relation, select the variable equalities, project the head. Its largest
// intermediate has arity equal to the total number of atom positions — the
// 10-ary relation of the EMP/MGR/SCY/SAL example.
func EvalNaive(q *CQ, db *database.Database) (*relation.Set, *Stats, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	st := &Stats{}
	// Product of the raw atom relations, tracking each column's variable.
	var colVars []logic.Var
	var acc *relation.Set
	for _, a := range q.Atoms {
		rel, err := db.Rel(a.Rel)
		if err != nil {
			return nil, nil, err
		}
		if rel.Arity() != len(a.Vars) {
			return nil, nil, fmt.Errorf("queryopt: atom %s arity mismatch", a.Rel)
		}
		if acc == nil {
			acc = rel.Clone()
		} else {
			acc = acc.Product(rel)
		}
		colVars = append(colVars, a.Vars...)
		st.observe(acc)
	}
	// Select equalities: every pair of columns carrying the same variable.
	for i := 0; i < len(colVars); i++ {
		for j := i + 1; j < len(colVars); j++ {
			if colVars[i] == colVars[j] {
				acc = acc.SelectEq(i, j)
				st.observe(acc)
			}
		}
	}
	// Project the head (first column carrying each head variable).
	cols := make([]int, len(q.Head))
	for hi, v := range q.Head {
		cols[hi] = -1
		for ci, w := range colVars {
			if w == v {
				cols[hi] = ci
				break
			}
		}
		if cols[hi] < 0 {
			return nil, nil, fmt.Errorf("queryopt: head variable %s not found", v)
		}
	}
	out := acc.Project(cols)
	st.observe(out)
	return out, st, nil
}

// EvalYannakakis executes an acyclic query by the Yannakakis algorithm:
// materialize each atom, run the full reducer (semijoins up then down the
// join tree), and join bottom-up, projecting every intermediate onto the
// node's variables plus the head variables of its subtree. No intermediate
// exceeds that arity — acyclic joins evaluate without large intermediate
// results, which is the paper's §1 observation.
func EvalYannakakis(q *CQ, db *database.Database) (*relation.Set, *Stats, error) {
	return EvalYannakakisContext(context.Background(), q, db)
}

// EvalYannakakisContext is EvalYannakakis honoring a context: cancellation
// is checked between pipeline phases (atom materialization, each semijoin
// pass, the bottom-up join), the same stage-boundary discipline as the eval
// engines, so answers stay deterministic under cancellation.
func EvalYannakakisContext(ctx context.Context, q *CQ, db *database.Database) (*relation.Set, *Stats, error) {
	jt, err := q.BuildJoinTree()
	if err != nil {
		return nil, nil, err
	}
	checkCtx := func() error {
		if ctx == nil {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("queryopt: cancelled: %w", err)
		}
		return nil
	}
	st := &Stats{}
	n := len(q.Atoms)
	vars := make([][]logic.Var, n)
	rels := make([]*relation.Set, n)
	for i, a := range q.Atoms {
		vars[i], rels[i], err = atomRel(db, a)
		if err != nil {
			return nil, nil, err
		}
		st.observe(rels[i])
	}
	if err := checkCtx(); err != nil {
		return nil, nil, err
	}
	shared := func(a, b int) []relation.JoinOn {
		var on []relation.JoinOn
		for ai, v := range vars[a] {
			for bi, w := range vars[b] {
				if v == w {
					on = append(on, relation.JoinOn{Left: ai, Right: bi})
				}
			}
		}
		return on
	}
	// Upward semijoin pass: in ear-removal order, parent ⋉ child.
	for _, e := range jt.Order {
		p := jt.Parent[e]
		if p < 0 {
			continue
		}
		rels[p] = rels[p].Semijoin(rels[e], shared(p, e))
		st.observe(rels[p])
	}
	if err := checkCtx(); err != nil {
		return nil, nil, err
	}
	// Downward pass: reverse order, child ⋉ parent.
	for i := len(jt.Order) - 1; i >= 0; i-- {
		e := jt.Order[i]
		p := jt.Parent[e]
		if p < 0 {
			continue
		}
		rels[e] = rels[e].Semijoin(rels[p], shared(e, p))
		st.observe(rels[e])
	}
	if err := checkCtx(); err != nil {
		return nil, nil, err
	}
	// Children lists.
	children := make([][]int, n)
	for e, p := range jt.Parent {
		if p >= 0 {
			children[p] = append(children[p], e)
		}
	}
	head := make(map[logic.Var]bool, len(q.Head))
	for _, v := range q.Head {
		head[v] = true
	}
	// subtreeHead[i]: head variables occurring in i's subtree.
	var subtreeHead func(i int) map[logic.Var]bool
	memo := make([]map[logic.Var]bool, n)
	subtreeHead = func(i int) map[logic.Var]bool {
		if memo[i] != nil {
			return memo[i]
		}
		out := make(map[logic.Var]bool)
		for _, v := range vars[i] {
			if head[v] {
				out[v] = true
			}
		}
		for _, c := range children[i] {
			for v := range subtreeHead(c) {
				out[v] = true
			}
		}
		memo[i] = out
		return out
	}
	// Bottom-up join with projection.
	var solve func(i int) ([]logic.Var, *relation.Set)
	solve = func(i int) ([]logic.Var, *relation.Set) {
		curVars, cur := vars[i], rels[i]
		for _, c := range children[i] {
			cvars, crel := solve(c)
			var on []relation.JoinOn
			for ai, v := range curVars {
				for bi, w := range cvars {
					if v == w {
						on = append(on, relation.JoinOn{Left: ai, Right: bi})
					}
				}
			}
			// Join and immediately project: a single "project-join" operator
			// whose materialized width is the kept-variable count (duplicate
			// join columns are never stored).
			joined := cur.Join(crel, on)
			// Keep: own vars ∪ head vars of the child's subtree.
			keep := make(map[logic.Var]bool)
			for _, v := range curVars {
				keep[v] = true
			}
			for v := range subtreeHead(c) {
				keep[v] = true
			}
			allVars := append(append([]logic.Var(nil), curVars...), cvars...)
			var newVars []logic.Var
			var cols []int
			taken := make(map[logic.Var]bool)
			for ci, v := range allVars {
				if keep[v] && !taken[v] {
					taken[v] = true
					newVars = append(newVars, v)
					cols = append(cols, ci)
				}
			}
			cur = joined.Project(cols)
			curVars = newVars
			st.observe(cur)
		}
		return curVars, cur
	}
	rootVars, root := solve(jt.Root)
	cols := make([]int, len(q.Head))
	for hi, v := range q.Head {
		cols[hi] = -1
		for ci, w := range rootVars {
			if w == v {
				cols[hi] = ci
			}
		}
		if cols[hi] < 0 {
			return nil, nil, fmt.Errorf("queryopt: head variable %s lost during join", v)
		}
	}
	out := root.Project(cols)
	st.observe(out)
	return out, st, nil
}

// ChainCQ builds the length-m path query
// answer(x₀, x_m) ← E(x₀,x₁), …, E(x_{m−1},x_m).
func ChainCQ(m int) *CQ {
	q := &CQ{Head: []logic.Var{v(0), v(m)}}
	for i := 0; i < m; i++ {
		q.Atoms = append(q.Atoms, Atom{Rel: "E", Vars: []logic.Var{v(i), v(i + 1)}})
	}
	return q
}

func v(i int) logic.Var { return logic.Var(fmt.Sprintf("v%d", i)) }

// ChainToFO3 is the §2.2 variable-minimized form of ChainCQ(m): the
// three-variable query (x, y). φ_m(x, y) with
// φ₁ = E(x,y), φ_{i+1} = ∃z (E(x,z) ∧ ∃x (x=z ∧ φ_i)).
func ChainToFO3(m int) (logic.Query, error) {
	if m < 1 {
		return logic.Query{}, fmt.Errorf("queryopt: chain of length %d", m)
	}
	f := logic.Formula(logic.R("E", "x", "y"))
	for i := 1; i < m; i++ {
		f = logic.Exists(logic.And(logic.R("E", "x", "z"),
			logic.Exists(logic.And(logic.Equal("x", "z"), f), "x")), "z")
	}
	return logic.NewQuery([]logic.Var{"x", "y"}, f)
}
