package queryopt

import (
	"context"
	"fmt"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
)

// EvalNaive executes the §1 "naive approach": cross-product every atom
// relation, select the variable equalities, project the head. Its largest
// intermediate has arity equal to the total number of atom positions — the
// 10-ary relation of the EMP/MGR/SCY/SAL example.
func EvalNaive(q *CQ, db *database.Database) (*relation.Set, *Stats, error) {
	if err := q.Validate(); err != nil {
		return nil, nil, err
	}
	st := &Stats{}
	// Product of the raw atom relations, tracking each column's variable.
	var colVars []logic.Var
	var acc *relation.Set
	for _, a := range q.Atoms {
		rel, err := db.Rel(a.Rel)
		if err != nil {
			return nil, nil, err
		}
		if rel.Arity() != len(a.Vars) {
			return nil, nil, fmt.Errorf("queryopt: atom %s arity mismatch", a.Rel)
		}
		if acc == nil {
			acc = rel.Clone()
		} else {
			acc = acc.Product(rel)
		}
		colVars = append(colVars, a.Vars...)
		st.observe(acc)
	}
	// Select equalities: every pair of columns carrying the same variable.
	for i := 0; i < len(colVars); i++ {
		for j := i + 1; j < len(colVars); j++ {
			if colVars[i] == colVars[j] {
				acc = acc.SelectEq(i, j)
				st.observe(acc)
			}
		}
	}
	// Project the head (first column carrying each head variable).
	cols := make([]int, len(q.Head))
	for hi, v := range q.Head {
		cols[hi] = -1
		for ci, w := range colVars {
			if w == v {
				cols[hi] = ci
				break
			}
		}
		if cols[hi] < 0 {
			return nil, nil, fmt.Errorf("queryopt: head variable %s not found", v)
		}
	}
	out := acc.Project(cols)
	st.observe(out)
	return out, st, nil
}

// EvalYannakakis executes an acyclic query by the Yannakakis algorithm:
// materialize each atom, run the full reducer (semijoins up then down the
// join tree), and join bottom-up, projecting every intermediate onto the
// node's variables plus the head variables of its subtree. No intermediate
// exceeds that arity — acyclic joins evaluate without large intermediate
// results, which is the paper's §1 observation.
func EvalYannakakis(q *CQ, db *database.Database) (*relation.Set, *Stats, error) {
	return EvalYannakakisContext(context.Background(), q, db)
}

// EvalYannakakisContext is EvalYannakakis honoring a context: cancellation
// is checked between pipeline phases (atom materialization, each semijoin
// pass, the bottom-up join), the same stage-boundary discipline as the eval
// engines, so answers stay deterministic under cancellation.
func EvalYannakakisContext(ctx context.Context, q *CQ, db *database.Database) (*relation.Set, *Stats, error) {
	st := &Stats{}
	r, err := reduce(ctx, q, db, st)
	if err != nil {
		return nil, nil, err
	}
	rootVars, root := r.solve(r.jt.Root)
	cols, err := headCols(q.Head, rootVars)
	if err != nil {
		return nil, nil, err
	}
	out := root.Project(cols)
	st.observe(out)
	return out, st, nil
}

// reduced is the preprocessing result shared by the materializing executor
// and the streaming enumerator: the join tree with every atom relation
// semijoin-reduced both ways. After full reduction the relations are
// globally consistent — every tuple of every relation participates in at
// least one answer, and the projection of any relation onto a variable set
// it covers equals the answer's projection — which is the property the
// enumerator's group decomposition relies on.
type reduced struct {
	q        *CQ
	jt       *JoinTree
	vars     [][]logic.Var
	rels     []*relation.Set
	children [][]int
	head     map[logic.Var]bool
	headMemo []map[logic.Var]bool
	st       *Stats
}

// reduce materializes the atoms and runs the two semijoin passes of the
// Yannakakis full reducer over the query's join tree. It fails with
// ErrCyclic (wrapped by BuildJoinTree) on cyclic queries.
func reduce(ctx context.Context, q *CQ, db *database.Database, st *Stats) (*reduced, error) {
	jt, err := q.BuildJoinTree()
	if err != nil {
		return nil, err
	}
	return reduceTree(ctx, q, jt, db, st)
}

// reduceTree is reduce over a caller-supplied join tree (the enumerator
// re-roots the GYO tree before reducing; re-rooting preserves the join-tree
// property, which is undirected).
func reduceTree(ctx context.Context, q *CQ, jt *JoinTree, db *database.Database, st *Stats) (*reduced, error) {
	checkCtx := func() error {
		if ctx == nil {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("queryopt: cancelled: %w", err)
		}
		return nil
	}
	n := len(q.Atoms)
	r := &reduced{
		q:        q,
		jt:       jt,
		vars:     make([][]logic.Var, n),
		rels:     make([]*relation.Set, n),
		children: make([][]int, n),
		head:     make(map[logic.Var]bool, len(q.Head)),
		headMemo: make([]map[logic.Var]bool, n),
		st:       st,
	}
	var err error
	for i, a := range q.Atoms {
		r.vars[i], r.rels[i], err = atomRel(db, a)
		if err != nil {
			return nil, err
		}
		st.observe(r.rels[i])
	}
	if err := checkCtx(); err != nil {
		return nil, err
	}
	// Upward semijoin pass: in ear-removal order, parent ⋉ child.
	for _, e := range jt.Order {
		p := jt.Parent[e]
		if p < 0 {
			continue
		}
		r.rels[p] = r.rels[p].Semijoin(r.rels[e], r.shared(p, e))
		st.observe(r.rels[p])
	}
	if err := checkCtx(); err != nil {
		return nil, err
	}
	// Downward pass: reverse order, child ⋉ parent.
	for i := len(jt.Order) - 1; i >= 0; i-- {
		e := jt.Order[i]
		p := jt.Parent[e]
		if p < 0 {
			continue
		}
		r.rels[e] = r.rels[e].Semijoin(r.rels[p], r.shared(e, p))
		st.observe(r.rels[e])
	}
	if err := checkCtx(); err != nil {
		return nil, err
	}
	for e, p := range jt.Parent {
		if p >= 0 {
			r.children[p] = append(r.children[p], e)
		}
	}
	for _, v := range q.Head {
		r.head[v] = true
	}
	return r, nil
}

// shared returns the join conditions between nodes a and b: one condition
// per variable they have in common.
func (r *reduced) shared(a, b int) []relation.JoinOn {
	var on []relation.JoinOn
	for ai, v := range r.vars[a] {
		for bi, w := range r.vars[b] {
			if v == w {
				on = append(on, relation.JoinOn{Left: ai, Right: bi})
			}
		}
	}
	return on
}

// subtreeHead returns the head variables occurring in i's subtree.
func (r *reduced) subtreeHead(i int) map[logic.Var]bool {
	if r.headMemo[i] != nil {
		return r.headMemo[i]
	}
	out := make(map[logic.Var]bool)
	for _, v := range r.vars[i] {
		if r.head[v] {
			out[v] = true
		}
	}
	for _, c := range r.children[i] {
		for v := range r.subtreeHead(c) {
			out[v] = true
		}
	}
	r.headMemo[i] = out
	return out
}

// joinKeep is the project-join operator shared by solve and the streaming
// group solver: join cur with the child result under the shared-variable
// conditions, then keep one column per variable in cur's vars ∪ the child
// subtree's head variables (duplicate join columns are never stored).
func (r *reduced) joinKeep(curVars []logic.Var, cur *relation.Set, c int, cvars []logic.Var, crel *relation.Set) ([]logic.Var, *relation.Set) {
	var on []relation.JoinOn
	for ai, v := range curVars {
		for bi, w := range cvars {
			if v == w {
				on = append(on, relation.JoinOn{Left: ai, Right: bi})
			}
		}
	}
	joined := cur.Join(crel, on)
	newVars, cols := keepCols(curVars, cvars, r.subtreeHead(c))
	out := joined.Project(cols)
	r.st.observe(out)
	return newVars, out
}

// keepCols computes the projection of a cur⋈child concatenation keeping one
// column per variable in curVars ∪ childHead, in first-occurrence order.
func keepCols(curVars, cvars []logic.Var, childHead map[logic.Var]bool) ([]logic.Var, []int) {
	keep := make(map[logic.Var]bool, len(curVars)+len(childHead))
	for _, v := range curVars {
		keep[v] = true
	}
	for v := range childHead {
		keep[v] = true
	}
	allVars := append(append([]logic.Var(nil), curVars...), cvars...)
	var newVars []logic.Var
	var cols []int
	taken := make(map[logic.Var]bool)
	for ci, v := range allVars {
		if keep[v] && !taken[v] {
			taken[v] = true
			newVars = append(newVars, v)
			cols = append(cols, ci)
		}
	}
	return newVars, cols
}

// solve computes node i's subtree join bottom-up, projecting every
// intermediate onto the node's variables plus the head variables of its
// subtree — no intermediate exceeds that arity.
func (r *reduced) solve(i int) ([]logic.Var, *relation.Set) {
	curVars, cur := r.vars[i], r.rels[i]
	for _, c := range r.children[i] {
		cvars, crel := r.solve(c)
		curVars, cur = r.joinKeep(curVars, cur, c, cvars, crel)
	}
	return curVars, cur
}

// headCols maps each head variable to its column in rootVars.
func headCols(head []logic.Var, rootVars []logic.Var) ([]int, error) {
	cols := make([]int, len(head))
	for hi, v := range head {
		cols[hi] = -1
		for ci, w := range rootVars {
			if w == v {
				cols[hi] = ci
			}
		}
		if cols[hi] < 0 {
			return nil, fmt.Errorf("queryopt: head variable %s lost during join", v)
		}
	}
	return cols, nil
}

// ChainCQ builds the length-m path query
// answer(x₀, x_m) ← E(x₀,x₁), …, E(x_{m−1},x_m).
func ChainCQ(m int) *CQ {
	q := &CQ{Head: []logic.Var{v(0), v(m)}}
	for i := 0; i < m; i++ {
		q.Atoms = append(q.Atoms, Atom{Rel: "E", Vars: []logic.Var{v(i), v(i + 1)}})
	}
	return q
}

func v(i int) logic.Var { return logic.Var(fmt.Sprintf("v%d", i)) }

// ChainToFO3 is the §2.2 variable-minimized form of ChainCQ(m): the
// three-variable query (x, y). φ_m(x, y) with
// φ₁ = E(x,y), φ_{i+1} = ∃z (E(x,z) ∧ ∃x (x=z ∧ φ_i)).
func ChainToFO3(m int) (logic.Query, error) {
	if m < 1 {
		return logic.Query{}, fmt.Errorf("queryopt: chain of length %d", m)
	}
	f := logic.Formula(logic.R("E", "x", "y"))
	for i := 1; i < m; i++ {
		f = logic.Exists(logic.And(logic.R("E", "x", "z"),
			logic.Exists(logic.And(logic.Equal("x", "z"), f), "x")), "z")
	}
	return logic.NewQuery([]logic.Var{"x", "y"}, f)
}
