package queryopt_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/logic"
	. "repro/internal/queryopt"
)

func TestMinimizeWidthChain(t *testing.T) {
	db := lineDB(t, 7)
	for m := 1; m <= 5; m++ {
		q := ChainCQ(m)
		direct, err := q.ToFO()
		if err != nil {
			t.Fatal(err)
		}
		minimized, width, err := MinimizeWidth(q)
		if err != nil {
			t.Fatal(err)
		}
		wantWidth := 3
		if m == 1 {
			wantWidth = 2
		}
		if width > wantWidth {
			t.Fatalf("m=%d: minimized width %d, want ≤ %d (direct FO width %d)",
				m, width, wantWidth, direct.Width())
		}
		if minimized.Width() != width {
			t.Fatalf("reported width %d, actual %d", width, minimized.Width())
		}
		want, _, err := EvalYannakakis(q, db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eval.BottomUp(minimized, db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("m=%d: minimized %v != yannakakis %v\n%s", m, got, want, minimized)
		}
	}
}

func TestMinimizeWidthStar(t *testing.T) {
	// answer(c) ← R(c,x1), R(c,x2), R(c,x3): two variables suffice.
	q := &CQ{
		Head: []logic.Var{"c"},
		Atoms: []Atom{
			{Rel: "R", Vars: []logic.Var{"c", "a"}},
			{Rel: "R", Vars: []logic.Var{"c", "b"}},
			{Rel: "R", Vars: []logic.Var{"c", "d"}},
		},
	}
	minimized, width, err := MinimizeWidth(q)
	if err != nil {
		t.Fatal(err)
	}
	if width != 2 {
		t.Fatalf("star width = %d, want 2 (%s)", width, minimized)
	}
	b := database.NewBuilder().Relation("R", 2)
	b.Add("R", 0, 1).Add("R", 0, 2).Add("R", 1, 2).Add("R", 2, 0).Add("R", 3, 3)
	db := b.MustBuild()
	want, _, err := EvalYannakakis(q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eval.BottomUp(minimized, db)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("star: minimized %v != yannakakis %v", got, want)
	}
}

func TestMinimizeWidthRejectsCyclic(t *testing.T) {
	triangle := &CQ{
		Head: []logic.Var{"x"},
		Atoms: []Atom{
			{Rel: "E", Vars: []logic.Var{"x", "y"}},
			{Rel: "E", Vars: []logic.Var{"y", "z"}},
			{Rel: "E", Vars: []logic.Var{"z", "x"}},
		},
	}
	if _, _, err := MinimizeWidth(triangle); err == nil {
		t.Fatal("cyclic query accepted")
	}
}

// randAcyclicCQ grows a random acyclic query: each new atom shares a subset
// of one existing atom's variables (guaranteeing GYO-acyclicity) and adds
// fresh ones.
func randAcyclicCQ(r *rand.Rand, atoms int) *CQ {
	fresh := 0
	newVar := func() logic.Var {
		fresh++
		return logic.Var(fmt.Sprintf("v%d", fresh))
	}
	rels := []string{"R", "S2", "T3"}
	arity := map[string]int{"R": 1, "S2": 2, "T3": 3}
	q := &CQ{}
	first := Atom{Rel: rels[r.Intn(3)]}
	for i := 0; i < arity[first.Rel]; i++ {
		first.Vars = append(first.Vars, newVar())
	}
	q.Atoms = append(q.Atoms, first)
	for len(q.Atoms) < atoms {
		base := q.Atoms[r.Intn(len(q.Atoms))]
		a := Atom{Rel: rels[r.Intn(3)]}
		for i := 0; i < arity[a.Rel]; i++ {
			if r.Intn(2) == 0 {
				a.Vars = append(a.Vars, base.Vars[r.Intn(len(base.Vars))])
			} else {
				a.Vars = append(a.Vars, newVar())
			}
		}
		q.Atoms = append(q.Atoms, a)
	}
	// Head: a few distinct variables from random atoms.
	seen := map[logic.Var]bool{}
	for tries := 0; tries < 3; tries++ {
		a := q.Atoms[r.Intn(len(q.Atoms))]
		v := a.Vars[r.Intn(len(a.Vars))]
		if !seen[v] {
			seen[v] = true
			q.Head = append(q.Head, v)
		}
	}
	return q
}

func randCQDB(r *rand.Rand, n int) *database.Database {
	b := database.NewBuilder().Relation("R", 1).Relation("S2", 2).Relation("T3", 3)
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	for i := 0; i < 2*n; i++ {
		b.Add("R", r.Intn(n))
		b.Add("S2", r.Intn(n), r.Intn(n))
		b.Add("T3", r.Intn(n), r.Intn(n), r.Intn(n))
	}
	return b.MustBuild()
}

func TestMinimizeWidthRandomAcyclic(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		q := randAcyclicCQ(r, 2+r.Intn(4))
		if !q.IsAcyclic() {
			t.Fatalf("generator produced a cyclic query: %+v", q)
		}
		db := randCQDB(r, 3+r.Intn(3))
		minimized, width, err := MinimizeWidth(q)
		if err != nil {
			t.Fatalf("MinimizeWidth(%+v): %v", q, err)
		}
		if width > q.Width() {
			t.Fatalf("minimization increased width: %d > %d for %+v", width, q.Width(), q)
		}
		want, _, err := EvalYannakakis(q, db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eval.BottomUp(minimized, db)
		if err != nil {
			t.Fatalf("BottomUp(%s): %v", minimized, err)
		}
		if !got.Equal(want) {
			t.Fatalf("minimized query wrong:\nCQ %+v\nrewritten %s\ngot %v want %v",
				q, minimized, got, want)
		}
		// And against the naive plan for good measure.
		naive, _, err := EvalNaive(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !naive.Equal(want) {
			t.Fatalf("yannakakis and naive disagree on %+v", q)
		}
	}
}

func TestMinimizeWidthReducesIntermediateArity(t *testing.T) {
	db := lineDB(t, 8)
	q := ChainCQ(5) // direct FO width 6
	direct, err := q.ToFO()
	if err != nil {
		t.Fatal(err)
	}
	minimized, width, err := MinimizeWidth(q)
	if err != nil {
		t.Fatal(err)
	}
	if width != 3 {
		t.Fatalf("width = %d", width)
	}
	_, directStats, err := eval.BottomUpStats(direct, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, minStats, err := eval.BottomUpStats(minimized, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if minStats.MaxIntermediateArity >= directStats.MaxIntermediateArity {
		t.Fatalf("minimization did not reduce intermediate arity: %d vs %d",
			minStats.MaxIntermediateArity, directStats.MaxIntermediateArity)
	}
}
