package queryopt

import (
	"fmt"

	"repro/internal/logic"
)

// MinimizeWidth rewrites an acyclic conjunctive query into a first-order
// query with as few distinct variables as this join tree allows — the §5
// "variable minimization as a query optimization methodology" made
// concrete, generalizing the §2.2 chain trick (ChainToFO3) to arbitrary
// acyclic queries.
//
// The construction walks the GYO join tree top-down. At each node it
// allocates names for the node's fresh variables from a fixed pool,
// reusing — by deliberate shadowing — any name that is not *live*:
// a name is live if it carries an interface variable (shared with the rest
// of the query, which by the running-intersection property always passes
// through the current node) or a head variable of the current subtree.
// The resulting width is
//
//	max over join-tree nodes of |vars(node) ∪ liveInterface(node)|
//
// e.g. 3 for chains of binary atoms (matching ChainToFO3) and 2 for stars.
// The rewritten query returns exactly the original answers; evaluating it
// with eval.BottomUp keeps every intermediate at the minimized arity.
func MinimizeWidth(q *CQ) (logic.Query, int, error) {
	jt, err := q.BuildJoinTree()
	if err != nil {
		return logic.Query{}, 0, err
	}
	n := len(q.Atoms)
	children := make([][]int, n)
	for e, p := range jt.Parent {
		if p >= 0 {
			children[p] = append(children[p], e)
		}
	}
	// subtreeVars and outside-vars per node.
	subtree := make([]map[logic.Var]bool, n)
	var collect func(v int) map[logic.Var]bool
	collect = func(v int) map[logic.Var]bool {
		if subtree[v] != nil {
			return subtree[v]
		}
		out := make(map[logic.Var]bool)
		for _, x := range q.Atoms[v].Vars {
			out[x] = true
		}
		for _, c := range children[v] {
			for x := range collect(c) {
				out[x] = true
			}
		}
		subtree[v] = out
		return out
	}
	collect(jt.Root)
	head := make(map[logic.Var]bool, len(q.Head))
	for _, h := range q.Head {
		head[h] = true
	}
	// occurrences per variable across all atoms, to derive "outside" vars.
	occ := make(map[logic.Var]int)
	for _, a := range q.Atoms {
		seen := map[logic.Var]bool{}
		for _, x := range a.Vars {
			if !seen[x] {
				seen[x] = true
				occ[x]++
			}
		}
	}
	occIn := func(v int) map[logic.Var]int {
		out := make(map[logic.Var]int)
		var rec func(u int)
		rec = func(u int) {
			seen := map[logic.Var]bool{}
			for _, x := range q.Atoms[u].Vars {
				if !seen[x] {
					seen[x] = true
					out[x]++
				}
			}
			for _, c := range children[u] {
				rec(c)
			}
		}
		rec(v)
		return out
	}
	// liveInterface(v): subtree vars that also occur outside the subtree or
	// in the head.
	liveInterface := func(v int) []logic.Var {
		in := occIn(v)
		var out []logic.Var
		for x := range subtree[v] {
			if head[x] || occ[x] > in[x] {
				out = append(out, x)
			}
		}
		return out
	}

	// Pool allocation.
	width := 0
	poolName := func(i int) logic.Var {
		if i+1 > width {
			width = i + 1
		}
		return logic.Var(fmt.Sprintf("m%d", i))
	}

	var build func(v int, assign map[logic.Var]logic.Var) (logic.Formula, error)
	build = func(v int, assign map[logic.Var]logic.Var) (logic.Formula, error) {
		// Reserved names: everything in the incoming assignment.
		reserved := make(map[logic.Var]bool, len(assign))
		for _, name := range assign {
			reserved[name] = true
		}
		local := make(map[logic.Var]logic.Var, len(assign))
		for k, x := range assign {
			local[k] = x
		}
		var fresh []logic.Var
		allocate := func(x logic.Var) {
			if _, ok := local[x]; ok {
				return
			}
			for i := 0; ; i++ {
				name := poolName(i)
				if !reserved[name] {
					local[x] = name
					reserved[name] = true
					fresh = append(fresh, name)
					return
				}
			}
		}
		seen := map[logic.Var]bool{}
		for _, x := range q.Atoms[v].Vars {
			if !seen[x] {
				seen[x] = true
				allocate(x)
			}
		}
		args := make([]logic.Var, len(q.Atoms[v].Vars))
		for i, x := range q.Atoms[v].Vars {
			args[i] = local[x]
		}
		conj := []logic.Formula{logic.Atom{Rel: q.Atoms[v].Rel, Args: args}}
		for _, c := range children[v] {
			childAssign := make(map[logic.Var]logic.Var)
			for _, x := range liveInterface(c) {
				name, ok := local[x]
				if !ok {
					return nil, fmt.Errorf("queryopt: interface variable %s of child %d not assigned (join tree broken)", x, c)
				}
				childAssign[x] = name
			}
			sub, err := build(c, childAssign)
			if err != nil {
				return nil, err
			}
			conj = append(conj, sub)
		}
		return logic.Exists(logic.And(conj...), fresh...), nil
	}

	// Head variables get the first pool names, fixed for the whole query.
	topAssign := make(map[logic.Var]logic.Var, len(q.Head))
	headNames := make([]logic.Var, len(q.Head))
	for i, h := range q.Head {
		headNames[i] = poolName(i)
		topAssign[h] = headNames[i]
	}
	body, err := build(jt.Root, topAssign)
	if err != nil {
		return logic.Query{}, 0, err
	}
	out, err := logic.NewQuery(headNames, body)
	if err != nil {
		return logic.Query{}, 0, err
	}
	return out, width, nil
}
