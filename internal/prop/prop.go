// Package prop implements propositional formulas: the source problems of
// two of the paper's lower bounds. Theorem 4.5 reduces propositional
// satisfiability to ESOᵏ expression complexity (propositions become 0-ary
// relation variables); the Boolean formula value problem (Buss 1987), i.e.
// variable-free formulas, is the ALOGTIME-hardness source of Theorem 4.4.
package prop

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/sat"
)

// Formula is a propositional formula over variables 1..n.
type Formula interface {
	isProp()
	String() string
}

// Var is a propositional variable (numbered from 1).
type Var int

// Const is a propositional constant.
type Const bool

// Not is negation.
type Not struct{ F Formula }

// And is binary conjunction.
type And struct{ L, R Formula }

// Or is binary disjunction.
type Or struct{ L, R Formula }

func (Var) isProp()   {}
func (Const) isProp() {}
func (Not) isProp()   {}
func (And) isProp()   {}
func (Or) isProp()    {}

func (v Var) String() string { return fmt.Sprintf("p%d", int(v)) }
func (c Const) String() string {
	if c {
		return "1"
	}
	return "0"
}
func (n Not) String() string { return "!" + n.F.String() }
func (a And) String() string { return "(" + a.L.String() + " & " + a.R.String() + ")" }
func (o Or) String() string  { return "(" + o.L.String() + " | " + o.R.String() + ")" }

// MaxVar returns the largest variable number in f (0 if none).
func MaxVar(f Formula) int {
	switch g := f.(type) {
	case Var:
		return int(g)
	case Const:
		return 0
	case Not:
		return MaxVar(g.F)
	case And:
		return maxInt(MaxVar(g.L), MaxVar(g.R))
	case Or:
		return maxInt(MaxVar(g.L), MaxVar(g.R))
	default:
		return 0
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Size returns the number of AST nodes.
func Size(f Formula) int {
	switch g := f.(type) {
	case Var, Const:
		return 1
	case Not:
		return 1 + Size(g.F)
	case And:
		return 1 + Size(g.L) + Size(g.R)
	case Or:
		return 1 + Size(g.L) + Size(g.R)
	default:
		return 1
	}
}

// Eval evaluates f under the assignment (indexed by variable; index 0
// unused). Variables beyond the slice are false.
func Eval(f Formula, assign []bool) bool {
	switch g := f.(type) {
	case Var:
		return int(g) < len(assign) && assign[g]
	case Const:
		return bool(g)
	case Not:
		return !Eval(g.F, assign)
	case And:
		return Eval(g.L, assign) && Eval(g.R, assign)
	case Or:
		return Eval(g.L, assign) || Eval(g.R, assign)
	default:
		return false
	}
}

// Satisfiable decides satisfiability via the CDCL solver (Tseitin-encoded).
func Satisfiable(f Formula) (bool, error) {
	c := sat.NewCircuit()
	inputs := make([]sat.Gate, MaxVar(f)+1)
	for i := 1; i < len(inputs); i++ {
		inputs[i] = c.Input()
	}
	g := toCircuit(f, c, inputs)
	cnf, err := c.ToCNF(g)
	if err != nil {
		return false, err
	}
	res, err := sat.Solve(cnf)
	if err != nil {
		return false, err
	}
	return res.SAT, nil
}

func toCircuit(f Formula, c *sat.Circuit, inputs []sat.Gate) sat.Gate {
	switch g := f.(type) {
	case Var:
		return inputs[g]
	case Const:
		return c.Const(bool(g))
	case Not:
		return c.Not(toCircuit(g.F, c, inputs))
	case And:
		return c.And(toCircuit(g.L, c, inputs), toCircuit(g.R, c, inputs))
	case Or:
		return c.Or(toCircuit(g.L, c, inputs), toCircuit(g.R, c, inputs))
	default:
		panic(fmt.Sprintf("prop: unknown formula %T", f))
	}
}

// SatisfiableBrute decides satisfiability by enumeration (for
// cross-validation; MaxVar(f) ≤ 20).
func SatisfiableBrute(f Formula) (bool, error) {
	n := MaxVar(f)
	if n > 20 {
		return false, fmt.Errorf("prop: %d variables too many for brute force", n)
	}
	assign := make([]bool, n+1)
	for mask := 0; mask < 1<<n; mask++ {
		for v := 1; v <= n; v++ {
			assign[v] = mask&(1<<(v-1)) != 0
		}
		if Eval(f, assign) {
			return true, nil
		}
	}
	return false, nil
}

// ToESO is the Theorem 4.5 reduction: φ is satisfiable iff
// ∃P₁ … ∃P_l φ̂ holds in B — for *every* database B — where the Pᵢ are
// 0-ary relation variables and φ̂ replaces each variable by its
// proposition's atom. The output is an ESO⁰ sentence of linear size.
func ToESO(f Formula) logic.Formula {
	n := MaxVar(f)
	rels := make([]logic.RelVar, n)
	for i := 1; i <= n; i++ {
		rels[i-1] = logic.RelVar{Name: propRel(i), Arity: 0}
	}
	return logic.SOExists(toLogic(f), rels...)
}

func propRel(i int) string { return fmt.Sprintf("P%d", i) }

func toLogic(f Formula) logic.Formula {
	switch g := f.(type) {
	case Var:
		return logic.R(propRel(int(g)))
	case Const:
		return logic.Truth{Value: bool(g)}
	case Not:
		return logic.Neg(toLogic(g.F))
	case And:
		return logic.Binary{Op: logic.AndOp, L: toLogic(g.L), R: toLogic(g.R)}
	case Or:
		return logic.Binary{Op: logic.OrOp, L: toLogic(g.L), R: toLogic(g.R)}
	default:
		panic(fmt.Sprintf("prop: unknown formula %T", f))
	}
}

// Random generates a random formula over n variables with the given AST
// depth, using the provided source (deterministic per seed).
func Random(r *rand.Rand, n, depth int) Formula {
	if depth == 0 || (n > 0 && r.Intn(4) == 0) {
		if n == 0 {
			return Const(r.Intn(2) == 0)
		}
		return Var(1 + r.Intn(n))
	}
	switch r.Intn(4) {
	case 0:
		return Not{F: Random(r, n, depth-1)}
	case 1:
		return And{L: Random(r, n, depth-1), R: Random(r, n, depth-1)}
	case 2:
		return Or{L: Random(r, n, depth-1), R: Random(r, n, depth-1)}
	default:
		if n == 0 {
			return Const(r.Intn(2) == 0)
		}
		return Var(1 + r.Intn(n))
	}
}

// RandomValue generates a random variable-free formula (a Boolean formula
// value problem instance) of the given depth.
func RandomValue(r *rand.Rand, depth int) Formula {
	if depth == 0 || r.Intn(4) == 0 {
		return Const(r.Intn(2) == 0)
	}
	switch r.Intn(3) {
	case 0:
		return Not{F: RandomValue(r, depth-1)}
	case 1:
		return And{L: RandomValue(r, depth-1), R: RandomValue(r, depth-1)}
	default:
		return Or{L: RandomValue(r, depth-1), R: RandomValue(r, depth-1)}
	}
}

// Random3CNF generates a random 3-CNF formula with the given number of
// variables and clauses.
func Random3CNF(r *rand.Rand, vars, clauses int) Formula {
	var f Formula = Const(true)
	for i := 0; i < clauses; i++ {
		var cl Formula = Const(false)
		for j := 0; j < 3; j++ {
			var lit Formula = Var(1 + r.Intn(vars))
			if r.Intn(2) == 0 {
				lit = Not{F: lit}
			}
			cl = Or{L: cl, R: lit}
		}
		f = And{L: f, R: cl}
	}
	return f
}
