package prop

import (
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/eval/eso"
	"repro/internal/logic"
)

func TestEvalBasics(t *testing.T) {
	f := And{L: Var(1), R: Or{L: Not{F: Var(2)}, R: Const(false)}}
	cases := []struct {
		a    []bool
		want bool
	}{
		{[]bool{false, true, false}, true},
		{[]bool{false, true, true}, false},
		{[]bool{false, false, false}, false},
	}
	for _, c := range cases {
		if got := Eval(f, c.a); got != c.want {
			t.Errorf("Eval(%s, %v) = %v, want %v", f, c.a, got, c.want)
		}
	}
}

func TestMaxVarAndSize(t *testing.T) {
	f := And{L: Var(3), R: Not{F: Var(7)}}
	if MaxVar(f) != 7 {
		t.Fatalf("MaxVar = %d", MaxVar(f))
	}
	if Size(f) != 4 {
		t.Fatalf("Size = %d", Size(f))
	}
	if MaxVar(Const(true)) != 0 {
		t.Fatal("MaxVar of constant should be 0")
	}
}

func TestSatisfiableAgreesWithBrute(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 150; trial++ {
		f := Random(r, 1+r.Intn(6), 4)
		want, err := SatisfiableBrute(f)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Satisfiable(f)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Satisfiable(%s) = %v, brute = %v", f, got, want)
		}
	}
}

func TestRandom3CNF(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := Random3CNF(r, 5, 10)
	if MaxVar(f) > 5 {
		t.Fatalf("MaxVar = %d", MaxVar(f))
	}
	if _, err := Satisfiable(f); err != nil {
		t.Fatal(err)
	}
}

func TestRandomValueHasNoVars(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		f := RandomValue(r, 5)
		if MaxVar(f) != 0 {
			t.Fatalf("value formula has variables: %s", f)
		}
		// Eval with empty assignment is total.
		Eval(f, nil)
	}
}

// TestToESOTheorem45 validates the Theorem 4.5 reduction on two different
// fixed databases: φ is satisfiable iff the ESO⁰ sentence holds — in either
// database, regardless of its contents.
func TestToESOTheorem45(t *testing.T) {
	db1 := database.NewBuilder().Domain(0).MustBuild()
	db2, err := database.NewBuilder().Relation("E", 2).Add("E", 0, 1).Add("E", 1, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		f := Random(r, 1+r.Intn(4), 3)
		want, err := SatisfiableBrute(f)
		if err != nil {
			t.Fatal(err)
		}
		sentence := ToESO(f)
		for _, db := range []*database.Database{db1, db2} {
			got, _, _, err := eso.Holds(sentence, db, nil)
			if err != nil {
				t.Fatalf("Holds(%s): %v", sentence, err)
			}
			if got != want {
				t.Fatalf("ToESO changed satisfiability of %s: got %v, want %v", f, got, want)
			}
		}
	}
}

func TestToESOSizeLinear(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	f := Random3CNF(r, 6, 12)
	sentence := ToESO(f)
	// Linear: one logic node per prop node plus one quantifier per variable.
	if got, bound := logic.Size(sentence), Size(f)+MaxVar(f); got > bound {
		t.Fatalf("reduction size %d exceeds linear bound %d", got, bound)
	}
}
