package logic

// DependentAlternationDepth returns the Emerson–Lei alternation depth: an
// opposite-polarity fixpoint nested inside [σ S. φ] contributes a level only
// if S occurs free in it. Closed subformula fixpoints — however deeply
// nested — do not alternate, because their values do not change across the
// outer iteration. PFP and IFP operators count as opposite to every
// monotone operator (and to each other) when dependent.
//
// This refines AlternationDepth, which counts syntactic nesting; the
// dependent notion is the right admission test for warm-start evaluation
// (eval.Monotone): a closed inner fixpoint is re-evaluated under an
// unchanged environment, so memoizing it is always sound.
func DependentAlternationDepth(f Formula) int {
	switch g := f.(type) {
	case Atom, Eq, Truth:
		return 0
	case Not:
		return DependentAlternationDepth(g.F)
	case Binary:
		l, r := DependentAlternationDepth(g.L), DependentAlternationDepth(g.R)
		if l > r {
			return l
		}
		return r
	case Quant:
		return DependentAlternationDepth(g.F)
	case Fix:
		return fixDepDepth(g)
	case SOQuant:
		return DependentAlternationDepth(g.F)
	default:
		return 0
	}
}

// fixDepDepth computes the dependent depth of one fixpoint node.
func fixDepDepth(outer Fix) int {
	d := 1
	var walk func(f Formula)
	walk = func(f Formula) {
		switch g := f.(type) {
		case Atom, Eq, Truth:
		case Not:
			walk(g.F)
		case Binary:
			walk(g.L)
			walk(g.R)
		case Quant:
			walk(g.F)
		case Fix:
			sub := fixDepDepth(g)
			if opposedOps(outer.Op, g.Op) && relOccursFree(outer.Rel, g) {
				sub++
			}
			if sub > d {
				d = sub
			}
		case SOQuant:
			walk(g.F)
		}
	}
	walk(outer.Body)
	return d
}

// opposedOps reports whether nesting inner inside outer can constitute a
// real alternation: µ and ν oppose each other; PFP and IFP oppose
// everything (their stage operators are not monotone).
func opposedOps(outer, inner FixOp) bool {
	if outer == PFP || outer == IFP || inner == PFP || inner == IFP {
		return true
	}
	return outer != inner
}

// relOccursFree reports whether the relation symbol rel occurs free in f.
func relOccursFree(rel string, f Formula) bool {
	switch g := f.(type) {
	case Atom:
		return g.Rel == rel
	case Eq, Truth:
		return false
	case Not:
		return relOccursFree(rel, g.F)
	case Binary:
		return relOccursFree(rel, g.L) || relOccursFree(rel, g.R)
	case Quant:
		return relOccursFree(rel, g.F)
	case Fix:
		if g.Rel == rel {
			// Occurrences in the body are rebound; the argument tuple
			// carries no relation symbols.
			return false
		}
		return relOccursFree(rel, g.Body)
	case SOQuant:
		return g.Rel != rel && relOccursFree(rel, g.F)
	default:
		return false
	}
}
