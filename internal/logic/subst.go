package logic

import (
	"fmt"
)

// RenameFree returns f with every *free* occurrence of a variable renamed
// according to subst. Bound occurrences (and the binders themselves) are
// untouched; inside the scope of a binder for v, the mapping for v is
// suspended.
//
// The renaming is deliberately textual — it does NOT avoid capture. Variable
// reuse with intended capture is the essence of bounded-variable queries
// (§2.2 builds φ_{n+1}(x,y) = ∃z(E(x,z) ∧ ∃x(x=z ∧ φ_n(x,y))) exactly this
// way), so a capture-avoiding substitution would be wrong for this package's
// purposes. Callers that need freshness must pick fresh names themselves.
func RenameFree(f Formula, subst map[Var]Var) Formula {
	if len(subst) == 0 {
		return f
	}
	ren := func(v Var) Var {
		if w, ok := subst[v]; ok {
			return w
		}
		return v
	}
	switch g := f.(type) {
	case Atom:
		args := make([]Var, len(g.Args))
		for i, v := range g.Args {
			args[i] = ren(v)
		}
		return Atom{Rel: g.Rel, Args: args}
	case Eq:
		return Eq{L: ren(g.L), R: ren(g.R)}
	case Truth:
		return g
	case Not:
		return Not{F: RenameFree(g.F, subst)}
	case Binary:
		return Binary{Op: g.Op, L: RenameFree(g.L, subst), R: RenameFree(g.R, subst)}
	case Quant:
		inner := without(subst, g.V)
		return Quant{Kind: g.Kind, V: g.V, F: RenameFree(g.F, inner)}
	case Fix:
		inner := subst
		for _, v := range g.Vars {
			inner = without(inner, v)
		}
		args := make([]Var, len(g.Args))
		for i, v := range g.Args {
			args[i] = ren(v)
		}
		return Fix{Op: g.Op, Rel: g.Rel, Vars: g.Vars, Body: RenameFree(g.Body, inner), Args: args}
	case SOQuant:
		return SOQuant{Rel: g.Rel, Arity: g.Arity, F: RenameFree(g.F, subst)}
	default:
		panic(fmt.Sprintf("logic: unknown formula %T", f))
	}
}

func without(subst map[Var]Var, v Var) map[Var]Var {
	if _, ok := subst[v]; !ok {
		return subst
	}
	out := make(map[Var]Var, len(subst))
	for k, w := range subst {
		if k != v {
			out[k] = w
		}
	}
	return out
}

// SubstAtom returns f with every free occurrence of an atom rel(u₁,…,u_m)
// replaced by the formula body, whose formal parameters params are renamed
// (textually, see RenameFree) to the actual arguments u₁,…,u_m of each
// occurrence. Occurrences where rel is rebound by a fixpoint operator or a
// second-order quantifier are left alone.
//
// This is the engine of Proposition 3.2: φ_n(x) = φ(x)[P(x) := φ_{n−1}(x)]
// iterates a formula family by substitution without growing the variable
// width.
func SubstAtom(f Formula, rel string, params []Var, body Formula) (Formula, error) {
	switch g := f.(type) {
	case Atom:
		if g.Rel != rel {
			return g, nil
		}
		if len(g.Args) != len(params) {
			return nil, fmt.Errorf("logic: substituting %s/%d at occurrence with %d arguments", rel, len(params), len(g.Args))
		}
		subst := make(map[Var]Var, len(params))
		for i, p := range params {
			if p != g.Args[i] {
				subst[p] = g.Args[i]
			}
		}
		return RenameFree(body, subst), nil
	case Eq, Truth:
		return g, nil
	case Not:
		inner, err := SubstAtom(g.F, rel, params, body)
		if err != nil {
			return nil, err
		}
		return Not{F: inner}, nil
	case Binary:
		l, err := SubstAtom(g.L, rel, params, body)
		if err != nil {
			return nil, err
		}
		r, err := SubstAtom(g.R, rel, params, body)
		if err != nil {
			return nil, err
		}
		return Binary{Op: g.Op, L: l, R: r}, nil
	case Quant:
		inner, err := SubstAtom(g.F, rel, params, body)
		if err != nil {
			return nil, err
		}
		return Quant{Kind: g.Kind, V: g.V, F: inner}, nil
	case Fix:
		if g.Rel == rel {
			return g, nil // rebound inside
		}
		inner, err := SubstAtom(g.Body, rel, params, body)
		if err != nil {
			return nil, err
		}
		return Fix{Op: g.Op, Rel: g.Rel, Vars: g.Vars, Body: inner, Args: g.Args}, nil
	case SOQuant:
		if g.Rel == rel {
			return g, nil
		}
		inner, err := SubstAtom(g.F, rel, params, body)
		if err != nil {
			return nil, err
		}
		return SOQuant{Rel: g.Rel, Arity: g.Arity, F: inner}, nil
	default:
		return nil, fmt.Errorf("logic: unknown formula %T", f)
	}
}

// NegateRel returns f with every free occurrence of an atom of rel wrapped
// in a negation. It is used to dualize fixpoint bodies:
// ¬[lfp S(x̄).φ](ū) ≡ [gfp S(x̄). ¬φ[S := ¬S]](ū).
func NegateRel(f Formula, rel string) Formula {
	switch g := f.(type) {
	case Atom:
		if g.Rel == rel {
			return Not{F: g}
		}
		return g
	case Eq, Truth:
		return g
	case Not:
		return Not{F: NegateRel(g.F, rel)}
	case Binary:
		return Binary{Op: g.Op, L: NegateRel(g.L, rel), R: NegateRel(g.R, rel)}
	case Quant:
		return Quant{Kind: g.Kind, V: g.V, F: NegateRel(g.F, rel)}
	case Fix:
		if g.Rel == rel {
			return g
		}
		return Fix{Op: g.Op, Rel: g.Rel, Vars: g.Vars, Body: NegateRel(g.Body, rel), Args: g.Args}
	case SOQuant:
		if g.Rel == rel {
			return g
		}
		return SOQuant{Rel: g.Rel, Arity: g.Arity, F: NegateRel(g.F, rel)}
	default:
		panic(fmt.Sprintf("logic: unknown formula %T", f))
	}
}
