package logic

import "testing"

func TestDependentAlternationDepth(t *testing.T) {
	atom := R("P", "x")
	mu := func(rel string, body Formula) Fix {
		return Lfp(rel, []Var{"x"}, Or(atom, body), "x")
	}
	nu := func(rel string, body Formula) Fix {
		return Gfp(rel, []Var{"x"}, And(atom, body), "x")
	}
	ref := func(rel string) Formula { return R(rel, "x") }

	cases := []struct {
		name string
		f    Formula
		want int
	}{
		{"no fixpoints", atom, 0},
		{"single mu", mu("S", ref("S")), 1},
		{"mu in mu, dependent", mu("S", Fix(mu("T", And(ref("T"), ref("S"))))), 1},
		{"nu in mu, closed", mu("S", Fix(nu("T", ref("T")))), 1},
		{"nu in mu, dependent", mu("S", Fix(nu("T", And(ref("T"), ref("S"))))), 2},
		{"deep closed tower", mu("A", Fix(nu("B", Fix(mu("C", Fix(nu("D", ref("D")))))))), 1},
		{"dependency skips a level",
			// µA. νB.(µC uses A): the νB is dependent on A? A free inside B's body.
			mu("A", Fix(nu("B", Fix(mu("C", And(ref("C"), ref("A"))))))), 2},
		{"ifp counts as opposite when dependent",
			mu("S", Ifp("T", []Var{"x"}, And(R("T", "x"), ref("S")), "x")), 2},
		{"ifp closed", mu("S", Ifp("T", []Var{"x"}, R("T", "x"), "x")), 1},
		{"pfp dependent",
			Pfp("W", []Var{"x"}, Fix(mu("S", And(ref("S"), R("W", "x")))), "x"), 2},
		{"shadowing breaks dependency",
			// µS. νS'.(…S'…) where the inner rebinds the *same* name S:
			// occurrences inside refer to the inner fixpoint.
			Lfp("S", []Var{"x"}, Or(atom, Gfp("S", []Var{"x"}, And(atom, R("S", "x")), "x")), "x"), 1},
	}
	for _, c := range cases {
		if got := DependentAlternationDepth(c.f); got != c.want {
			t.Errorf("%s: DependentAlternationDepth = %d, want %d (%s)", c.name, got, c.want, c.f)
		}
	}
}

func TestDependentNeverExceedsSyntactic(t *testing.T) {
	atom := R("P", "x")
	fs := []Formula{
		Lfp("S", []Var{"x"}, Or(atom, Gfp("T", []Var{"x"}, And(atom, R("S", "x"), R("T", "x")), "x")), "x"),
		Gfp("A", []Var{"x"}, Lfp("B", []Var{"x"}, Or(R("A", "x"), R("B", "x")), "x"), "x"),
		And(Lfp("S", []Var{"x"}, Or(atom, R("S", "x")), "x"), atom),
	}
	for _, f := range fs {
		if DependentAlternationDepth(f) > AlternationDepth(f) {
			t.Errorf("dependent depth exceeds syntactic for %s", f)
		}
	}
}
