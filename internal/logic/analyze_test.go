package logic

import (
	"testing"
)

// pathBody is the paper's §2.2 three-variable path formula family:
// φ₁(x,y) = E(x,y); φ_{n+1}(x,y) = ∃z(E(x,z) ∧ ∃x(x=z ∧ φ_n(x,y))).
func pathFormula(n int) Formula {
	f := Formula(R("E", "x", "y"))
	for i := 1; i < n; i++ {
		f = Exists(And(R("E", "x", "z"), Exists(And(Equal("x", "z"), f), "x")), "z")
	}
	return f
}

func TestFreeVars(t *testing.T) {
	cases := []struct {
		f    Formula
		want []Var
	}{
		{R("E", "x", "y"), []Var{"x", "y"}},
		{Equal("x", "x"), []Var{"x"}},
		{True, nil},
		{Exists(R("E", "x", "y"), "y"), []Var{"x"}},
		{Forall(Neg(R("P", "x")), "x"), nil},
		{And(R("P", "x"), Exists(R("Q", "y"), "y")), []Var{"x"}},
		// Fixpoint: body vars bound, args free.
		{Lfp("S", []Var{"x"}, Or(R("P", "x"), R("S", "x")), "u"), []Var{"u"}},
		// Body var y free inside body, not bound by the fixpoint.
		{Lfp("S", []Var{"x"}, And(R("E", "x", "y"), R("S", "x")), "u"), []Var{"u", "y"}},
		{SOExists(R("S", "x"), RelVar{"S", 1}), []Var{"x"}},
	}
	for _, c := range cases {
		got := FreeVars(c.f)
		if len(got) != len(c.want) {
			t.Errorf("FreeVars(%s) = %v, want %v", c.f, got, c.want)
			continue
		}
		for _, v := range c.want {
			if !got[v] {
				t.Errorf("FreeVars(%s) missing %s", c.f, v)
			}
		}
	}
}

func TestWidthOfPathFamily(t *testing.T) {
	for n := 1; n <= 6; n++ {
		f := pathFormula(n)
		want := 2
		if n > 1 {
			want = 3
		}
		if w := Width(f); w != want {
			t.Errorf("Width(φ_%d) = %d, want %d (the FO³ path family)", n, w, want)
		}
	}
}

func TestSizeGrowsLinearly(t *testing.T) {
	s5, s10 := Size(pathFormula(5)), Size(pathFormula(10))
	d1 := s10 - s5
	s15 := Size(pathFormula(15))
	if s15-s10 != d1 {
		t.Errorf("size growth not linear: %d, %d, %d", s5, s10, s15)
	}
}

func TestFreeRels(t *testing.T) {
	f := Lfp("S", []Var{"x"},
		Or(R("P", "x"), And(R("S", "x"), Exists(R("E", "x", "y"), "y"))), "u")
	rels, err := FreeRels(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 || rels["P"] != 1 || rels["E"] != 2 {
		t.Fatalf("FreeRels = %v", rels)
	}
	if _, ok := rels["S"]; ok {
		t.Fatal("bound recursion relation reported free")
	}
}

func TestFreeRelsArityConflict(t *testing.T) {
	f := And(R("P", "x"), R("P", "x", "y"))
	if _, err := FreeRels(f); err == nil {
		t.Fatal("conflicting arities accepted")
	}
	// Conflict between binder arity and use arity.
	g := Lfp("S", []Var{"x"}, R("S", "x", "x"), "u")
	if _, err := FreeRels(g); err == nil {
		t.Fatal("binder/use arity conflict accepted")
	}
}

func TestPolarity(t *testing.T) {
	cases := []struct {
		f        Formula
		pos, neg bool
	}{
		{R("S", "x"), true, false},
		{Neg(R("S", "x")), false, true},
		{Neg(Neg(R("S", "x"))), true, false},
		{Implies(R("S", "x"), R("P", "x")), false, true},
		{Implies(R("P", "x"), R("S", "x")), true, false},
		{Iff(R("S", "x"), R("P", "x")), true, true},
		{Forall(Implies(R("P", "x"), R("S", "x")), "x"), true, false},
		// Rebound: inner fixpoint shadows S.
		{Lfp("S", []Var{"x"}, R("S", "x"), "u"), false, false},
		// Inside a PFP body, any occurrence counts as both polarities.
		{Pfp("T", []Var{"x"}, R("S", "x"), "u"), true, true},
	}
	for _, c := range cases {
		pos, neg := Polarity(c.f, "S")
		if pos != c.pos || neg != c.neg {
			t.Errorf("Polarity(%s, S) = (%v,%v), want (%v,%v)", c.f, pos, neg, c.pos, c.neg)
		}
	}
}

func TestClassify(t *testing.T) {
	fo := pathFormula(3)
	fp := Lfp("S", []Var{"x"}, Or(R("P", "x"), R("S", "x")), "u")
	pfp := Pfp("S", []Var{"x"}, Neg(R("S", "x")), "u")
	eso := SOExists(Forall(R("S", "x"), "x"), RelVar{"S", 1})
	cases := []struct {
		f    Formula
		want Fragment
	}{
		{fo, FragFO},
		{fp, FragFP},
		{pfp, FragPFP},
		{eso, FragESO},
		{And(fp, fo), FragFP},
		{And(pfp, fp), FragPFP},
		// SO quantifier below first-order structure: not prenex ESO.
		{Neg(eso), FragOther},
		// SO prefix over a fixpoint matrix: beyond the four languages.
		{SOExists(fp, RelVar{"T", 1}), FragOther},
	}
	for _, c := range cases {
		if got := Classify(c.f); got != c.want {
			t.Errorf("Classify(%s) = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := Lfp("S", []Var{"x"}, Or(R("P", "x"), R("S", "x")), "u")
	if err := Validate(good, nil); err != nil {
		t.Fatalf("valid formula rejected: %v", err)
	}
	bad := []Formula{
		// Recursion relation occurs negatively under lfp.
		Lfp("S", []Var{"x"}, Neg(R("S", "x")), "u"),
		// Argument count mismatch.
		Fix{Op: LFP, Rel: "S", Vars: []Var{"x"}, Body: R("S", "x"), Args: []Var{"u", "v"}},
		// Duplicate bound variable.
		Fix{Op: LFP, Rel: "S", Vars: []Var{"x", "x"}, Body: R("S", "x", "x"), Args: []Var{"u", "v"}},
		// Implication puts S on the left (negative).
		Lfp("S", []Var{"x"}, Implies(R("S", "x"), R("P", "x")), "u"),
	}
	for _, f := range bad {
		if err := Validate(f, nil); err == nil {
			t.Errorf("invalid formula accepted: %s", f)
		}
	}
	// PFP has no positivity requirement.
	pfp := Pfp("S", []Var{"x"}, Neg(R("S", "x")), "u")
	if err := Validate(pfp, nil); err != nil {
		t.Fatalf("negative PFP body rejected: %v", err)
	}
}

func TestValidateSignature(t *testing.T) {
	f := And(R("E", "x", "y"), R("P", "x"))
	sig := Signature{"E": 2, "P": 1}
	if err := Validate(f, sig); err != nil {
		t.Fatal(err)
	}
	if err := Validate(f, Signature{"E": 2}); err == nil {
		t.Fatal("missing relation accepted")
	}
	if err := Validate(f, Signature{"E": 3, "P": 1}); err == nil {
		t.Fatal("arity mismatch with signature accepted")
	}
}

func TestAlternationDepth(t *testing.T) {
	atom := R("P", "x")
	mu := func(body Formula) Formula { return Lfp("S", []Var{"x"}, Or(atom, body), "x") }
	nu := func(body Formula) Formula { return Gfp("T", []Var{"x"}, And(atom, body), "x") }
	cases := []struct {
		f    Formula
		want int
	}{
		{atom, 0},
		{mu(atom), 1},
		{mu(mu(atom)), 1},            // same polarity: no alternation
		{mu(nu(atom)), 2},            // µν
		{nu(mu(nu(atom))), 3},        // νµν — the paper's triply nested example
		{And(mu(atom), nu(atom)), 1}, // parallel, not nested
		{Pfp("W", []Var{"x"}, Pfp("V", []Var{"x"}, atom, "x"), "x"), 2},
	}
	for _, c := range cases {
		if got := AlternationDepth(c.f); got != c.want {
			t.Errorf("AlternationDepth(%s) = %d, want %d", c.f, got, c.want)
		}
	}
}

func TestQueryValidate(t *testing.T) {
	q, err := NewQuery([]Var{"x", "y"}, R("E", "x", "y"))
	if err != nil {
		t.Fatal(err)
	}
	if q.Arity() != 2 || q.Width() != 2 {
		t.Fatalf("arity/width wrong: %d/%d", q.Arity(), q.Width())
	}
	if _, err := NewQuery([]Var{"x"}, R("E", "x", "y")); err == nil {
		t.Fatal("unbound body variable accepted")
	}
	if _, err := NewQuery([]Var{"x", "x"}, R("P", "x")); err == nil {
		t.Fatal("repeated head variable accepted")
	}
}

func TestQueryVarsOrder(t *testing.T) {
	q := MustQuery([]Var{"y", "x"}, Exists(And(R("E", "x", "z"), R("E", "z", "y")), "z"))
	vars := q.Vars()
	if len(vars) != 3 || vars[0] != "y" || vars[1] != "x" || vars[2] != "z" {
		t.Fatalf("Vars = %v", vars)
	}
	if q.Width() != 3 {
		t.Fatalf("Width = %d", q.Width())
	}
}

func TestFoldersAndConstructors(t *testing.T) {
	if And().String() != "true" || Or().String() != "false" {
		t.Fatal("empty folds wrong")
	}
	f := And(R("A"), R("B"), R("C"))
	if f.String() != "(A() & (B() & C()))" {
		t.Fatalf("And fold = %s", f)
	}
	g := Exists(R("E", "x", "y"), "x", "y")
	if g.String() != "(exists x. (exists y. E(x, y)))" {
		t.Fatalf("Exists fold = %s", g)
	}
}
