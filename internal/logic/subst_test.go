package logic

import (
	"testing"
)

func TestRenameFree(t *testing.T) {
	f := And(R("E", "x", "y"), Exists(R("E", "x", "y"), "x"))
	got := RenameFree(f, map[Var]Var{"x": "z"})
	// Outer free x renamed; x bound by ∃x untouched.
	want := "(E(z, y) & (exists x. E(x, y)))"
	if got.String() != want {
		t.Fatalf("RenameFree = %s, want %s", got, want)
	}
}

func TestRenameFreeIsTextual(t *testing.T) {
	// Renaming y→x inside ∃x deliberately captures: bounded-variable reuse.
	f := Exists(R("E", "x", "y"), "x")
	got := RenameFree(f, map[Var]Var{"y": "x"})
	want := "(exists x. E(x, x))"
	if got.String() != want {
		t.Fatalf("RenameFree = %s, want %s (capture is intended)", got, want)
	}
}

func TestRenameFreeFixpoint(t *testing.T) {
	f := Lfp("S", []Var{"x"}, And(R("S", "x"), R("E", "x", "y")), "u")
	got := RenameFree(f, map[Var]Var{"x": "w", "y": "z", "u": "v"})
	fx := got.(Fix)
	if fx.Args[0] != "v" {
		t.Fatalf("arg not renamed: %s", got)
	}
	// x is bound by the fixpoint; y is free in the body.
	want := "[lfp S(x). (S(x) & E(x, z))](v)"
	if got.String() != want {
		t.Fatalf("RenameFree = %s, want %s", got, want)
	}
}

func TestSubstAtom(t *testing.T) {
	// Replace P(u) by ∃w E(u, w), at an occurrence P(y).
	f := And(R("P", "y"), Exists(R("P", "x"), "x"))
	body := Exists(R("E", "u", "w"), "w")
	got, err := SubstAtom(f, "P", []Var{"u"}, body)
	if err != nil {
		t.Fatal(err)
	}
	want := "((exists w. E(y, w)) & (exists x. (exists w. E(x, w))))"
	if got.String() != want {
		t.Fatalf("SubstAtom = %s, want %s", got, want)
	}
}

func TestSubstAtomRespectsBinding(t *testing.T) {
	// P rebound by an inner fixpoint is not substituted.
	f := And(R("P", "x"), Lfp("P", []Var{"x"}, R("P", "x"), "x"))
	got, err := SubstAtom(f, "P", []Var{"x"}, True)
	if err != nil {
		t.Fatal(err)
	}
	want := "(true & [lfp P(x). P(x)](x))"
	if got.String() != want {
		t.Fatalf("SubstAtom = %s, want %s", got, want)
	}
}

func TestSubstAtomArityMismatch(t *testing.T) {
	if _, err := SubstAtom(R("P", "x", "y"), "P", []Var{"u"}, True); err == nil {
		t.Fatal("arity mismatch accepted")
	}
}

func TestSubstAtomPathSystems(t *testing.T) {
	// The Proposition 3.2 iteration: φ(x) with P(x):=false, then P(x):=φ_{n-1}(x).
	phi := Or(
		R("S", "x"),
		Exists(And(R("Q", "x", "y", "z"),
			Forall(Implies(Or(Equal("x", "y"), Equal("x", "z")), R("P", "x")), "x")), "y", "z"))
	phi1, err := SubstAtom(phi, "P", []Var{"x"}, False)
	if err != nil {
		t.Fatal(err)
	}
	if Width(phi1) != 3 {
		t.Fatalf("Width(φ₁) = %d, want 3", Width(phi1))
	}
	phi2, err := SubstAtom(phi, "P", []Var{"x"}, phi1)
	if err != nil {
		t.Fatal(err)
	}
	if Width(phi2) != 3 {
		t.Fatalf("Width(φ₂) = %d, want 3 (bounded-variable iteration)", Width(phi2))
	}
	if Size(phi2) <= Size(phi1) {
		t.Fatal("φ₂ not larger than φ₁")
	}
	rels, err := FreeRels(phi2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rels["P"]; ok {
		t.Fatal("P still free after two substitutions")
	}
}

func TestNegateRel(t *testing.T) {
	f := And(R("S", "x"), Or(R("P", "x"), R("S", "x")))
	got := NegateRel(f, "S")
	want := "(!(S(x)) & (P(x) | !(S(x))))"
	if got.String() != want {
		t.Fatalf("NegateRel = %s, want %s", got, want)
	}
}

func TestNNFBasics(t *testing.T) {
	cases := []struct {
		in   Formula
		want string
	}{
		{Neg(And(R("P", "x"), R("Q", "x"))), "(!(P(x)) | !(Q(x)))"},
		{Neg(Exists(R("P", "x"), "x")), "(forall x. !(P(x)))"},
		{Neg(Neg(R("P", "x"))), "P(x)"},
		{Implies(R("P", "x"), R("Q", "x")), "(!(P(x)) | Q(x))"},
		{Neg(True), "false"},
		{Neg(Equal("x", "y")), "!(x = y)"},
	}
	for _, c := range cases {
		got, err := NNF(c.in)
		if err != nil {
			t.Fatalf("NNF(%s): %v", c.in, err)
		}
		if got.String() != c.want {
			t.Errorf("NNF(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestNNFDualizesFixpoints(t *testing.T) {
	// ¬[lfp S(x). P(x) ∨ S(x)](u) ≡ [gfp S(x). ¬P(x) ∧ S(x)](u)
	f := Neg(Lfp("S", []Var{"x"}, Or(R("P", "x"), R("S", "x")), "u"))
	got, err := NNF(f)
	if err != nil {
		t.Fatal(err)
	}
	fx, ok := got.(Fix)
	if !ok || fx.Op != GFP {
		t.Fatalf("NNF did not dualize to gfp: %s", got)
	}
	if fx.Body.String() != "(!(P(x)) & S(x))" {
		t.Fatalf("dual body = %s", fx.Body)
	}
	// The recursion relation must be positive in the dual body.
	if err := Validate(got, nil); err != nil {
		t.Fatalf("dualized formula invalid: %v", err)
	}
}

func TestNNFLeavesNegatedPFP(t *testing.T) {
	f := Neg(Pfp("S", []Var{"x"}, Neg(R("S", "x")), "u"))
	got, err := NNF(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.(Not); !ok {
		t.Fatalf("negated PFP should remain a literal, got %s", got)
	}
}

func TestNNFRejectsNegatedSO(t *testing.T) {
	f := Neg(SOExists(R("S", "x"), RelVar{"S", 1}))
	if _, err := NNF(f); err == nil {
		t.Fatal("negated second-order quantifier accepted")
	}
}

func TestNNFIffExpansion(t *testing.T) {
	f := Iff(R("P", "x"), R("Q", "x"))
	got, err := NNF(f)
	if err != nil {
		t.Fatal(err)
	}
	want := "((P(x) & Q(x)) | (!(P(x)) & !(Q(x))))"
	if got.String() != want {
		t.Fatalf("NNF(iff) = %s", got)
	}
}
