package logic

import (
	"fmt"
)

// SimDef is one equation of a simultaneous fixpoint system
// Sᵢ(x̄ᵢ) = φᵢ(S₁, …, S_m). All bodies may mention all of the system's
// relations.
type SimDef struct {
	Rel  string
	Vars []Var
	Body Formula
}

// BekicLfp eliminates a simultaneous least fixpoint into nested single
// fixpoints by the Bekić identity:
//
//	lfp (S₁,S₂) . (φ₁, φ₂)   projected to S₁
//	  =  lfp S₁ . φ₁( S₁, lfp S₂ . φ₂(S₁, S₂) )
//
// generalized to m equations by recursive elimination of the last one. It
// returns the formula denoting component `which` of the simultaneous least
// fixpoint, applied to args. FP as defined in the paper has only unary
// fixpoint operators, so this is how systems of equations — e.g. the
// translations of mutually recursive specifications — enter the language
// without leaving FPᵏ: the nesting is same-polarity throughout, so the
// result stays alternation-free (dependently) if the bodies are.
//
// Every body must use each Sⱼ positively and with arity |defs[j].Vars|.
func BekicLfp(defs []SimDef, which int, args []Var) (Formula, error) {
	return bekicOp(LFP, defs, which, args)
}

// BekicGfp is the dual elimination for simultaneous greatest fixpoints; the
// Bekić identity holds verbatim with ν in place of µ.
func BekicGfp(defs []SimDef, which int, args []Var) (Formula, error) {
	return bekicOp(GFP, defs, which, args)
}

func bekicOp(op FixOp, defs []SimDef, which int, args []Var) (Formula, error) {
	if len(defs) == 0 {
		return nil, fmt.Errorf("logic: empty simultaneous system")
	}
	if which < 0 || which >= len(defs) {
		return nil, fmt.Errorf("logic: component %d of %d-equation system", which, len(defs))
	}
	names := make(map[string]bool, len(defs))
	for _, d := range defs {
		if names[d.Rel] {
			return nil, fmt.Errorf("logic: relation %s defined twice", d.Rel)
		}
		names[d.Rel] = true
		if len(d.Vars) == 0 {
			return nil, fmt.Errorf("logic: simultaneous definition %s with no variables", d.Rel)
		}
	}
	f, err := bekic(op, defs, which)
	if err != nil {
		return nil, err
	}
	fx := f.(Fix)
	if len(args) != len(fx.Vars) {
		return nil, fmt.Errorf("logic: component %s applied to %d arguments, arity %d", fx.Rel, len(args), len(fx.Vars))
	}
	fx.Args = args
	return fx, nil
}

// bekic returns the fixpoint formula (with empty Args) for component which.
func bekic(op FixOp, defs []SimDef, which int) (Formula, error) {
	if len(defs) == 1 {
		d := defs[0]
		return Fix{Op: op, Rel: d.Rel, Vars: d.Vars, Body: d.Body}, nil
	}
	// Eliminate the last equation: S_m = lfp S_m . φ_m(S₁…S_{m−1}, S_m),
	// as a formula with the earlier relations free; substitute it for every
	// S_m atom in the remaining bodies.
	last := defs[len(defs)-1]
	lastFix := Fix{Op: op, Rel: last.Rel, Vars: last.Vars, Body: last.Body}
	rest := make([]SimDef, len(defs)-1)
	for i, d := range defs[:len(defs)-1] {
		// Replace S_m(ū) by [lfp S_m(x̄).φ_m](ū).
		body, err := SubstAtom(d.Body, last.Rel, last.Vars, applied(lastFix, last.Vars))
		if err != nil {
			return nil, err
		}
		rest[i] = SimDef{Rel: d.Rel, Vars: d.Vars, Body: body}
	}
	if which < len(rest) {
		return bekic(op, rest, which)
	}
	// The requested component is the eliminated one:
	// S_m = lfp S_m . φ_m(S₁*, …, S_{m−1}*, S_m) with the other components'
	// closed forms substituted in.
	body := last.Body
	for i := len(rest) - 1; i >= 0; i-- {
		comp, err := bekic(op, rest, i)
		if err != nil {
			return nil, err
		}
		cf := comp.(Fix)
		body2, err := SubstAtom(body, defs[i].Rel, defs[i].Vars, applied(cf, defs[i].Vars))
		if err != nil {
			return nil, err
		}
		body = body2
	}
	return Fix{Op: op, Rel: last.Rel, Vars: last.Vars, Body: body}, nil
}

// applied returns fx applied to the given argument variables (for use as a
// SubstAtom replacement body whose formal parameters are those variables).
func applied(fx Fix, args []Var) Fix {
	out := fx
	out.Args = append([]Var(nil), args...)
	return out
}
