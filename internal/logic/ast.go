// Package logic defines the abstract syntax of the four query languages
// studied in Vardi, "On the Complexity of Bounded-Variable Queries"
// (PODS 1995) — first-order logic (FO), fixpoint logic (FP), existential
// second-order logic (ESO) and partial-fixpoint logic (PFP) — together with
// the static analyses the paper's algorithms rest on: free variables,
// variable width (the Lᵏ membership test), positivity of recursion
// relations, fixpoint alternation depth, fragment classification, and the
// textual substitution used by the hardness reductions.
//
// A bounded-variable query is an ordinary query whose Width is at most k;
// there is no separate syntax. This mirrors the paper: Lᵏ is L restricted to
// the individual variables x₁,…,x_k.
package logic

// Var is an individual variable.
type Var string

// FixOp distinguishes the three fixpoint operators.
type FixOp int

const (
	// LFP is the least-fixpoint operator µ.
	LFP FixOp = iota
	// GFP is the greatest-fixpoint operator ν.
	GFP
	// PFP is the partial-fixpoint operator.
	PFP
	// IFP is the inflationary-fixpoint operator: stages S_{i+1} = S_i ∪
	// φ(S_i), which always converge within nᵏ steps and need no positivity
	// requirement. FP and IFP have the same expressive power (Gurevich–
	// Shelah 1986), but the paper notes (§3.2) that the Theorem 3.5
	// technique does not apply to IFPᵏ — its best known combined-complexity
	// bound is the PSPACE bound inherited from PFPᵏ.
	IFP
)

func (op FixOp) String() string {
	switch op {
	case LFP:
		return "lfp"
	case GFP:
		return "gfp"
	case PFP:
		return "pfp"
	case IFP:
		return "ifp"
	}
	return "fix?"
}

// Formula is a node of the abstract syntax tree. The concrete node types are
// Atom, Eq, Truth, Not, Binary, Quant, Fix and SOQuant.
type Formula interface {
	isFormula()
	// String renders the formula in the concrete syntax accepted by
	// parser.ParseFormula.
	String() string
}

// Atom is a relational atom R(u₁, …, u_m). The relation symbol may denote a
// database relation, a fixpoint recursion relation, or a second-order
// quantified relation, depending on what is in scope.
type Atom struct {
	Rel  string
	Args []Var
}

// Eq is an equality atom u = v.
type Eq struct {
	L, R Var
}

// Truth is a propositional constant: true or false. (Used, e.g., by the
// Path-Systems reduction of Proposition 3.2, which starts the formula family
// from P(x) ≡ false.)
type Truth struct {
	Value bool
}

// Not is negation.
type Not struct {
	F Formula
}

// BinOp is a binary connective.
type BinOp int

const (
	// AndOp is conjunction.
	AndOp BinOp = iota
	// OrOp is disjunction.
	OrOp
	// ImpliesOp is implication.
	ImpliesOp
	// IffOp is bi-implication.
	IffOp
)

func (op BinOp) String() string {
	switch op {
	case AndOp:
		return "&"
	case OrOp:
		return "|"
	case ImpliesOp:
		return "->"
	case IffOp:
		return "<->"
	}
	return "?"
}

// Binary is a binary connective application.
type Binary struct {
	Op   BinOp
	L, R Formula
}

// QuantKind distinguishes ∃ from ∀.
type QuantKind int

const (
	// ExistsQ is existential quantification.
	ExistsQ QuantKind = iota
	// ForallQ is universal quantification.
	ForallQ
)

func (q QuantKind) String() string {
	if q == ExistsQ {
		return "exists"
	}
	return "forall"
}

// Quant is first-order quantification over one individual variable.
type Quant struct {
	Kind QuantKind
	V    Var
	F    Formula
}

// Fix is a fixpoint formula [op S(x̄). φ](ū): the recursion relation S of
// arity |x̄| is defined by the body φ and the formula holds of the argument
// tuple ū. For LFP and GFP, S must occur positively in φ; PFP has no such
// requirement. The variables x̄ must be distinct; |ū| = |x̄|.
type Fix struct {
	Op   FixOp
	Rel  string
	Vars []Var
	Body Formula
	Args []Var
}

// SOQuant is second-order existential quantification ∃S φ over a relation
// variable S of the given arity (ESO). Arity 0 relation variables are
// propositions, as used by the Theorem 4.5 reduction from SAT.
type SOQuant struct {
	Rel   string
	Arity int
	F     Formula
}

func (Atom) isFormula()    {}
func (Eq) isFormula()      {}
func (Truth) isFormula()   {}
func (Not) isFormula()     {}
func (Binary) isFormula()  {}
func (Quant) isFormula()   {}
func (Fix) isFormula()     {}
func (SOQuant) isFormula() {}

// Constructor helpers. They keep programmatically built formulas (the
// reductions construct large families) readable.

// R builds an atom.
func R(rel string, args ...Var) Atom { return Atom{Rel: rel, Args: args} }

// Equal builds an equality atom.
func Equal(l, r Var) Eq { return Eq{L: l, R: r} }

// True and False are the propositional constants.
var (
	True  = Truth{Value: true}
	False = Truth{Value: false}
)

// Neg builds a negation.
func Neg(f Formula) Not { return Not{F: f} }

// And builds a conjunction of one or more conjuncts, folded to the right.
func And(fs ...Formula) Formula { return fold(AndOp, fs) }

// Or builds a disjunction of one or more disjuncts, folded to the right.
func Or(fs ...Formula) Formula { return fold(OrOp, fs) }

func fold(op BinOp, fs []Formula) Formula {
	if len(fs) == 0 {
		if op == AndOp {
			return True
		}
		return False
	}
	f := fs[len(fs)-1]
	for i := len(fs) - 2; i >= 0; i-- {
		f = Binary{Op: op, L: fs[i], R: f}
	}
	return f
}

// Implies builds an implication.
func Implies(l, r Formula) Binary { return Binary{Op: ImpliesOp, L: l, R: r} }

// Iff builds a bi-implication.
func Iff(l, r Formula) Binary { return Binary{Op: IffOp, L: l, R: r} }

// Exists builds ∃v₁ … ∃v_m φ.
func Exists(f Formula, vs ...Var) Formula { return quantify(ExistsQ, f, vs) }

// Forall builds ∀v₁ … ∀v_m φ.
func Forall(f Formula, vs ...Var) Formula { return quantify(ForallQ, f, vs) }

func quantify(kind QuantKind, f Formula, vs []Var) Formula {
	for i := len(vs) - 1; i >= 0; i-- {
		f = Quant{Kind: kind, V: vs[i], F: f}
	}
	return f
}

// Lfp builds [lfp rel(vars…). body](args…).
func Lfp(rel string, vars []Var, body Formula, args ...Var) Fix {
	return Fix{Op: LFP, Rel: rel, Vars: vars, Body: body, Args: args}
}

// Gfp builds [gfp rel(vars…). body](args…).
func Gfp(rel string, vars []Var, body Formula, args ...Var) Fix {
	return Fix{Op: GFP, Rel: rel, Vars: vars, Body: body, Args: args}
}

// Pfp builds [pfp rel(vars…). body](args…).
func Pfp(rel string, vars []Var, body Formula, args ...Var) Fix {
	return Fix{Op: PFP, Rel: rel, Vars: vars, Body: body, Args: args}
}

// Ifp builds [ifp rel(vars…). body](args…).
func Ifp(rel string, vars []Var, body Formula, args ...Var) Fix {
	return Fix{Op: IFP, Rel: rel, Vars: vars, Body: body, Args: args}
}

// SOExists builds ∃S₁ … ∃S_m φ with the given relation variables.
type RelVar struct {
	Name  string
	Arity int
}

// SOExists wraps f in second-order existential quantifiers, outermost first.
func SOExists(f Formula, rels ...RelVar) Formula {
	for i := len(rels) - 1; i >= 0; i-- {
		f = SOQuant{Rel: rels[i].Name, Arity: rels[i].Arity, F: f}
	}
	return f
}
