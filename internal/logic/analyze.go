package logic

import (
	"fmt"
	"sort"
)

// FreeVars returns the set of free individual variables of f.
func FreeVars(f Formula) map[Var]bool {
	out := make(map[Var]bool)
	freeVars(f, out)
	return out
}

func freeVars(f Formula, out map[Var]bool) {
	switch g := f.(type) {
	case Atom:
		for _, v := range g.Args {
			out[v] = true
		}
	case Eq:
		out[g.L] = true
		out[g.R] = true
	case Truth:
	case Not:
		freeVars(g.F, out)
	case Binary:
		freeVars(g.L, out)
		freeVars(g.R, out)
	case Quant:
		inner := make(map[Var]bool)
		freeVars(g.F, inner)
		delete(inner, g.V)
		for v := range inner {
			out[v] = true
		}
	case Fix:
		inner := make(map[Var]bool)
		freeVars(g.Body, inner)
		for _, v := range g.Vars {
			delete(inner, v)
		}
		for v := range inner {
			out[v] = true
		}
		for _, v := range g.Args {
			out[v] = true
		}
	case SOQuant:
		freeVars(g.F, out)
	default:
		panic(fmt.Sprintf("logic: unknown formula %T", f))
	}
}

// AllVars returns every individual variable occurring in f, free or bound.
func AllVars(f Formula) map[Var]bool {
	out := make(map[Var]bool)
	Walk(f, func(g Formula) {
		switch h := g.(type) {
		case Atom:
			for _, v := range h.Args {
				out[v] = true
			}
		case Eq:
			out[h.L] = true
			out[h.R] = true
		case Quant:
			out[h.V] = true
		case Fix:
			for _, v := range h.Vars {
				out[v] = true
			}
			for _, v := range h.Args {
				out[v] = true
			}
		}
	})
	return out
}

// SortedVars returns vars as a sorted slice, for deterministic iteration.
func SortedVars(vars map[Var]bool) []Var {
	out := make([]Var, 0, len(vars))
	for v := range vars {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Width returns the number of distinct individual variables occurring in f.
// A formula belongs to the bounded-variable fragment Lᵏ exactly when
// Width(f) ≤ k (§2.2).
func Width(f Formula) int { return len(AllVars(f)) }

// Walk calls fn on f and every subformula, parents before children.
// Direct subformulas of a Fix node are its body; of a Quant/SOQuant node,
// the quantified formula.
func Walk(f Formula, fn func(Formula)) {
	fn(f)
	switch g := f.(type) {
	case Atom, Eq, Truth:
	case Not:
		Walk(g.F, fn)
	case Binary:
		Walk(g.L, fn)
		Walk(g.R, fn)
	case Quant:
		Walk(g.F, fn)
	case Fix:
		Walk(g.Body, fn)
	case SOQuant:
		Walk(g.F, fn)
	default:
		panic(fmt.Sprintf("logic: unknown formula %T", f))
	}
}

// Size returns the number of AST nodes: the paper's |φ|, the length of the
// expression against which expression and combined complexity are measured.
func Size(f Formula) int {
	n := 0
	Walk(f, func(Formula) { n++ })
	return n
}

// RelUse describes one use of a relation symbol.
type RelUse struct {
	Name  string
	Arity int
}

// FreeRels returns the relation symbols of f that are not bound by an
// enclosing fixpoint operator or second-order quantifier, with their arities.
// These are the symbols that must be supplied by the database. An error is
// returned if a symbol is used with two different arities.
func FreeRels(f Formula) (map[string]int, error) {
	out := make(map[string]int)
	err := freeRels(f, map[string]int{}, out)
	return out, err
}

func freeRels(f Formula, bound map[string]int, out map[string]int) error {
	switch g := f.(type) {
	case Atom:
		if a, ok := bound[g.Rel]; ok {
			if a != len(g.Args) {
				return fmt.Errorf("logic: %s used with arity %d, bound with arity %d", g.Rel, len(g.Args), a)
			}
			return nil
		}
		if a, ok := out[g.Rel]; ok && a != len(g.Args) {
			return fmt.Errorf("logic: %s used with arities %d and %d", g.Rel, a, len(g.Args))
		}
		out[g.Rel] = len(g.Args)
	case Eq, Truth:
	case Not:
		return freeRels(g.F, bound, out)
	case Binary:
		if err := freeRels(g.L, bound, out); err != nil {
			return err
		}
		return freeRels(g.R, bound, out)
	case Quant:
		return freeRels(g.F, bound, out)
	case Fix:
		prev, had := bound[g.Rel]
		bound[g.Rel] = len(g.Vars)
		err := freeRels(g.Body, bound, out)
		if had {
			bound[g.Rel] = prev
		} else {
			delete(bound, g.Rel)
		}
		return err
	case SOQuant:
		prev, had := bound[g.Rel]
		bound[g.Rel] = g.Arity
		err := freeRels(g.F, bound, out)
		if had {
			bound[g.Rel] = prev
		} else {
			delete(bound, g.Rel)
		}
		return err
	default:
		panic(fmt.Sprintf("logic: unknown formula %T", f))
	}
	return nil
}

// Polarity reports whether the relation symbol rel occurs positively and/or
// negatively in f (under an even/odd number of negations). An occurrence
// under ↔, or inside a PFP body, counts as both. Occurrences where rel is
// rebound by an inner operator are not counted.
func Polarity(f Formula, rel string) (pos, neg bool) {
	p, n := polarity(f, rel, true)
	return p, n
}

func polarity(f Formula, rel string, positive bool) (pos, neg bool) {
	merge := func(p, n bool) {
		pos = pos || p
		neg = neg || n
	}
	switch g := f.(type) {
	case Atom:
		if g.Rel == rel {
			if positive {
				pos = true
			} else {
				neg = true
			}
		}
	case Eq, Truth:
	case Not:
		merge(polarity(g.F, rel, !positive))
	case Binary:
		switch g.Op {
		case AndOp, OrOp:
			merge(polarity(g.L, rel, positive))
			merge(polarity(g.R, rel, positive))
		case ImpliesOp:
			merge(polarity(g.L, rel, !positive))
			merge(polarity(g.R, rel, positive))
		case IffOp:
			// Both sides occur in both polarities.
			merge(polarity(g.L, rel, positive))
			merge(polarity(g.L, rel, !positive))
			merge(polarity(g.R, rel, positive))
			merge(polarity(g.R, rel, !positive))
		}
	case Quant:
		merge(polarity(g.F, rel, positive))
	case Fix:
		if g.Rel == rel {
			return // rebound
		}
		if g.Op == PFP || g.Op == IFP {
			// PFP and IFP stage operators are not monotone in their free
			// relations; a use of rel inside their bodies cannot be assumed
			// to be of either polarity.
			merge(polarity(g.Body, rel, positive))
			merge(polarity(g.Body, rel, !positive))
		} else {
			merge(polarity(g.Body, rel, positive))
		}
	case SOQuant:
		if g.Rel == rel {
			return // rebound
		}
		merge(polarity(g.F, rel, positive))
	default:
		panic(fmt.Sprintf("logic: unknown formula %T", f))
	}
	return
}
