package logic

import "fmt"

// NNF returns a formula equivalent to f in negation normal form: negations
// appear only on atoms, equalities, and PFP/IFP applications; → and ↔ are
// expanded; ¬∃ and ¬∀ are pushed through; negated LFP/GFP applications are
// dualized:
//
//	¬[lfp S(x̄). φ](ū) ≡ [gfp S(x̄). ¬φ[S := ¬S]](ū)
//
// (and symmetrically). The under-approximation algorithm of Theorem 3.5
// requires its input in this form, so that every recursion relation occurs
// positively and the stage functions are monotone. Second-order quantifiers
// must not occur under a negation (ESO is not closed under complement); NNF
// returns an error in that case. Negated PFP applications are left as
// literals ¬[pfp …](ū): the PFP evaluator decides them directly.
func NNF(f Formula) (Formula, error) {
	return nnf(f, false)
}

func nnf(f Formula, negate bool) (Formula, error) {
	switch g := f.(type) {
	case Atom:
		if negate {
			return Not{F: g}, nil
		}
		return g, nil
	case Eq:
		if negate {
			return Not{F: g}, nil
		}
		return g, nil
	case Truth:
		if negate {
			return Truth{Value: !g.Value}, nil
		}
		return g, nil
	case Not:
		return nnf(g.F, !negate)
	case Binary:
		switch g.Op {
		case AndOp, OrOp:
			l, err := nnf(g.L, negate)
			if err != nil {
				return nil, err
			}
			r, err := nnf(g.R, negate)
			if err != nil {
				return nil, err
			}
			op := g.Op
			if negate {
				if op == AndOp {
					op = OrOp
				} else {
					op = AndOp
				}
			}
			return Binary{Op: op, L: l, R: r}, nil
		case ImpliesOp:
			// l → r ≡ ¬l ∨ r
			return nnf(Binary{Op: OrOp, L: Not{F: g.L}, R: g.R}, negate)
		case IffOp:
			// l ↔ r ≡ (l ∧ r) ∨ (¬l ∧ ¬r)
			expanded := Binary{
				Op: OrOp,
				L:  Binary{Op: AndOp, L: g.L, R: g.R},
				R:  Binary{Op: AndOp, L: Not{F: g.L}, R: Not{F: g.R}},
			}
			return nnf(expanded, negate)
		default:
			return nil, fmt.Errorf("logic: unknown binary op %v", g.Op)
		}
	case Quant:
		inner, err := nnf(g.F, negate)
		if err != nil {
			return nil, err
		}
		kind := g.Kind
		if negate {
			if kind == ExistsQ {
				kind = ForallQ
			} else {
				kind = ExistsQ
			}
		}
		return Quant{Kind: kind, V: g.V, F: inner}, nil
	case Fix:
		if g.Op == PFP || g.Op == IFP {
			// No dualization exists for the non-monotone operators; a
			// negated application remains a literal.
			body, err := nnf(g.Body, false)
			if err != nil {
				return nil, err
			}
			fixed := Fix{Op: g.Op, Rel: g.Rel, Vars: g.Vars, Body: body, Args: g.Args}
			if negate {
				return Not{F: fixed}, nil
			}
			return fixed, nil
		}
		if !negate {
			body, err := nnf(g.Body, false)
			if err != nil {
				return nil, err
			}
			return Fix{Op: g.Op, Rel: g.Rel, Vars: g.Vars, Body: body, Args: g.Args}, nil
		}
		// Dualize: negate the body and flip the polarity of the recursion
		// relation; least becomes greatest and vice versa.
		dualBody, err := nnf(Not{F: NegateRel(g.Body, g.Rel)}, false)
		if err != nil {
			return nil, err
		}
		op := GFP
		if g.Op == GFP {
			op = LFP
		}
		return Fix{Op: op, Rel: g.Rel, Vars: g.Vars, Body: dualBody, Args: g.Args}, nil
	case SOQuant:
		if negate {
			return nil, fmt.Errorf("logic: second-order quantifier %s under negation; ESO is not closed under complement", g.Rel)
		}
		inner, err := nnf(g.F, false)
		if err != nil {
			return nil, err
		}
		return SOQuant{Rel: g.Rel, Arity: g.Arity, F: inner}, nil
	default:
		return nil, fmt.Errorf("logic: unknown formula %T", f)
	}
}
