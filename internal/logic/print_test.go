package logic

import "testing"

func TestOpStrings(t *testing.T) {
	ops := map[string]string{
		LFP.String(): "lfp", GFP.String(): "gfp", PFP.String(): "pfp", IFP.String(): "ifp",
	}
	for got, want := range ops {
		if got != want {
			t.Errorf("FixOp string %q != %q", got, want)
		}
	}
	if FixOp(99).String() != "fix?" {
		t.Errorf("unknown FixOp = %q", FixOp(99).String())
	}
	bins := []struct {
		op   BinOp
		want string
	}{{AndOp, "&"}, {OrOp, "|"}, {ImpliesOp, "->"}, {IffOp, "<->"}}
	for _, c := range bins {
		if c.op.String() != c.want {
			t.Errorf("BinOp %v = %q", c.op, c.op.String())
		}
	}
	if BinOp(99).String() != "?" {
		t.Error("unknown BinOp")
	}
	if ExistsQ.String() != "exists" || ForallQ.String() != "forall" {
		t.Error("QuantKind strings")
	}
}

func TestFragmentStrings(t *testing.T) {
	cases := map[Fragment]string{
		FragFO: "FO", FragFP: "FP", FragESO: "ESO", FragIFP: "IFP",
		FragPFP: "PFP", FragOther: "other",
	}
	for f, want := range cases {
		if f.String() != want {
			t.Errorf("Fragment %d = %q, want %q", f, f.String(), want)
		}
	}
}

func TestFormulaStrings(t *testing.T) {
	cases := []struct {
		f    Formula
		want string
	}{
		{R("E", "x", "y"), "E(x, y)"},
		{R("Z"), "Z()"},
		{Equal("x", "y"), "x = y"},
		{True, "true"},
		{False, "false"},
		{Neg(True), "!(true)"},
		{Implies(True, False), "(true -> false)"},
		{Iff(True, False), "(true <-> false)"},
		{Exists(True, "x"), "(exists x. true)"},
		{Forall(True, "x"), "(forall x. true)"},
		{Ifp("S", []Var{"x"}, R("S", "x"), "u"), "[ifp S(x). S(x)](u)"},
		{SOExists(True, RelVar{"S", 2}), "(exists2 S/2. true)"},
	}
	for _, c := range cases {
		if c.f.String() != c.want {
			t.Errorf("String = %q, want %q", c.f.String(), c.want)
		}
	}
	q := MustQuery([]Var{"x"}, R("P", "x"))
	if q.String() != "(x). P(x)" {
		t.Errorf("Query.String = %q", q.String())
	}
}

func TestNNFErrors(t *testing.T) {
	// Negated SO quantifier is the documented failure.
	if _, err := NNF(Neg(SOExists(True, RelVar{"S", 1}))); err == nil {
		t.Fatal("negated SO accepted")
	}
	// NNF of a positive SO quantifier passes through.
	f, err := NNF(SOExists(Neg(Neg(True)), RelVar{"S", 1}))
	if err != nil {
		t.Fatal(err)
	}
	if f.String() != "(exists2 S/1. true)" {
		t.Fatalf("NNF through SO = %s", f)
	}
}

func TestValidateMoreErrors(t *testing.T) {
	bad := []Formula{
		Quant{Kind: ExistsQ, V: "", F: True},
		Fix{Op: LFP, Rel: "", Vars: []Var{"x"}, Body: True, Args: []Var{"u"}},
		Fix{Op: LFP, Rel: "S", Vars: []Var{""}, Body: True, Args: []Var{"u"}},
		SOQuant{Rel: "", Arity: 1, F: True},
		SOQuant{Rel: "S", Arity: -1, F: True},
	}
	for _, f := range bad {
		if err := Validate(f, nil); err == nil {
			t.Errorf("invalid formula accepted: %#v", f)
		}
	}
}

func TestDependentDepthThroughConnectivesAndSO(t *testing.T) {
	mu := Lfp("S", []Var{"x"}, Or(R("P", "x"), R("S", "x")), "x")
	cases := []struct {
		f    Formula
		want int
	}{
		{Neg(mu), 1},
		{Implies(mu, mu), 1},
		{Exists(And(mu, True), "x"), 1},
		{SOExists(mu, RelVar{"T", 1}), 1},
		{True, 0},
	}
	for _, c := range cases {
		if got := DependentAlternationDepth(c.f); got != c.want {
			t.Errorf("DependentAlternationDepth(%s) = %d, want %d", c.f, got, c.want)
		}
	}
}

func TestRelOccursFreeEdges(t *testing.T) {
	if relOccursFree("S", Equal("x", "y")) {
		t.Error("equality mentions no relations")
	}
	if !relOccursFree("S", Neg(R("S", "x"))) {
		t.Error("negated occurrence is still an occurrence")
	}
	if relOccursFree("S", SOQuant{Rel: "S", Arity: 1, F: R("S", "x")}) {
		t.Error("rebinding by SO quantifier should hide occurrences")
	}
	if !relOccursFree("S", Quant{Kind: ForallQ, V: "x", F: R("S", "x")}) {
		t.Error("occurrence under quantifier missed")
	}
}
