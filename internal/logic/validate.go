package logic

import (
	"fmt"
)

// Fragment classifies a formula by the smallest of the paper's four
// languages containing it.
type Fragment int

const (
	// FragFO: first-order logic.
	FragFO Fragment = iota
	// FragFP: FO plus least/greatest fixpoints.
	FragFP
	// FragESO: existential second-order prefix over an FO matrix.
	FragESO
	// FragIFP: FO plus inflationary (and least/greatest) fixpoints, without
	// partial fixpoints. Equally expressive as FP, but the paper's FPᵏ
	// upper-bound techniques do not apply to it (§3.2).
	FragIFP
	// FragPFP: FO plus partial (and any other) fixpoints.
	FragPFP
	// FragOther: none of the above (e.g. second-order quantification over a
	// fixpoint matrix, or SO quantifiers below first-order structure).
	FragOther
)

func (fr Fragment) String() string {
	switch fr {
	case FragFO:
		return "FO"
	case FragFP:
		return "FP"
	case FragESO:
		return "ESO"
	case FragIFP:
		return "IFP"
	case FragPFP:
		return "PFP"
	}
	return "other"
}

// Classify returns the smallest fragment containing f.
func Classify(f Formula) Fragment {
	// Strip a (possibly empty) prefix of second-order existentials.
	matrix := f
	soPrefix := 0
	for {
		so, ok := matrix.(SOQuant)
		if !ok {
			break
		}
		matrix = so.F
		soPrefix++
	}
	hasSO, hasLfp, hasIfp, hasPfp := false, false, false, false
	Walk(matrix, func(g Formula) {
		switch h := g.(type) {
		case SOQuant:
			hasSO = true
		case Fix:
			switch h.Op {
			case PFP:
				hasPfp = true
			case IFP:
				hasIfp = true
			default:
				hasLfp = true
			}
		}
	})
	switch {
	case hasSO:
		return FragOther
	case soPrefix > 0 && (hasLfp || hasIfp || hasPfp):
		return FragOther
	case soPrefix > 0:
		return FragESO
	case hasPfp:
		return FragPFP
	case hasIfp:
		return FragIFP
	case hasLfp:
		return FragFP
	default:
		return FragFO
	}
}

// Signature gives the arities of database relation symbols, for validation.
type Signature map[string]int

// Validate checks the structural well-formedness of f:
//
//   - every fixpoint binds distinct variables and applies to an argument
//     tuple of matching length;
//   - every relation symbol is used with a single arity, consistent with any
//     binding operator and (if sig is non-nil) with the database signature;
//   - LFP/GFP recursion relations occur only positively in their bodies;
//   - second-order quantified relations have non-negative arity.
//
// It returns the first violation found.
func Validate(f Formula, sig Signature) error {
	free, err := FreeRels(f)
	if err != nil {
		return err
	}
	if sig != nil {
		for name, a := range free {
			want, ok := sig[name]
			if !ok {
				return fmt.Errorf("logic: relation %s not in database signature", name)
			}
			if want != a {
				return fmt.Errorf("logic: relation %s used with arity %d, database has arity %d", name, a, want)
			}
		}
	}
	return validate(f)
}

func validate(f Formula) error {
	switch g := f.(type) {
	case Atom, Eq, Truth:
		return nil
	case Not:
		return validate(g.F)
	case Binary:
		if err := validate(g.L); err != nil {
			return err
		}
		return validate(g.R)
	case Quant:
		if g.V == "" {
			return fmt.Errorf("logic: quantifier with empty variable")
		}
		return validate(g.F)
	case Fix:
		if g.Rel == "" {
			return fmt.Errorf("logic: fixpoint with empty relation name")
		}
		if len(g.Args) != len(g.Vars) {
			return fmt.Errorf("logic: fixpoint %s applied to %d arguments, arity %d", g.Rel, len(g.Args), len(g.Vars))
		}
		seen := make(map[Var]bool, len(g.Vars))
		for _, v := range g.Vars {
			if v == "" {
				return fmt.Errorf("logic: fixpoint %s binds empty variable", g.Rel)
			}
			if seen[v] {
				return fmt.Errorf("logic: fixpoint %s binds variable %s twice", g.Rel, v)
			}
			seen[v] = true
		}
		if g.Op == LFP || g.Op == GFP {
			if _, neg := Polarity(g.Body, g.Rel); neg {
				return fmt.Errorf("logic: recursion relation %s occurs non-positively under %s", g.Rel, g.Op)
			}
		}
		return validate(g.Body)
	case SOQuant:
		if g.Rel == "" {
			return fmt.Errorf("logic: second-order quantifier with empty relation name")
		}
		if g.Arity < 0 {
			return fmt.Errorf("logic: second-order relation %s has negative arity %d", g.Rel, g.Arity)
		}
		return validate(g.F)
	default:
		return fmt.Errorf("logic: unknown formula %T", f)
	}
}

// AlternationDepth returns the depth of nesting of *alternating* fixpoint
// operators: the l of Theorem 3.5, for which naive evaluation needs n^{kl}
// iterations. A µ directly or transitively nested inside a ν (or vice versa)
// increments the depth; same-polarity nesting does not. PFP and IFP
// operators count as alternating with everything (their stage functions are
// not monotone). Formulas without fixpoints have depth 0; a single block of
// same-polarity fixpoints has depth 1.
func AlternationDepth(f Formula) int {
	return altDepth(f, 0, 0)
}

// altDepth computes the depth given the innermost enclosing fixpoint kind:
// 0 = none, 1 = LFP, 2 = GFP, 3 = PFP, 4 = IFP.
func altDepth(f Formula, enclosing int, depth int) int {
	max := depth
	upd := func(d int) {
		if d > max {
			max = d
		}
	}
	switch g := f.(type) {
	case Atom, Eq, Truth:
	case Not:
		upd(altDepth(g.F, enclosing, depth))
	case Binary:
		upd(altDepth(g.L, enclosing, depth))
		upd(altDepth(g.R, enclosing, depth))
	case Quant:
		upd(altDepth(g.F, enclosing, depth))
	case Fix:
		var kind int
		switch g.Op {
		case LFP:
			kind = 1
		case GFP:
			kind = 2
		case PFP:
			kind = 3
		case IFP:
			kind = 4
		}
		d := depth
		if kind != enclosing || kind >= 3 {
			d++
		}
		upd(d)
		upd(altDepth(g.Body, kind, d))
	case SOQuant:
		upd(altDepth(g.F, enclosing, depth))
	}
	return max
}
