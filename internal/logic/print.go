package logic

import (
	"fmt"
	"strings"
)

// The String methods render formulas in the concrete syntax accepted by
// parser.ParseFormula. The rendering is fully parenthesized, so printing and
// re-parsing round-trips exactly.

func (a Atom) String() string {
	var b strings.Builder
	b.WriteString(a.Rel)
	b.WriteByte('(')
	for i, v := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(v))
	}
	b.WriteByte(')')
	return b.String()
}

func (e Eq) String() string { return fmt.Sprintf("%s = %s", e.L, e.R) }

func (t Truth) String() string {
	if t.Value {
		return "true"
	}
	return "false"
}

func (n Not) String() string { return "!(" + n.F.String() + ")" }

func (b Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

func (q Quant) String() string {
	return fmt.Sprintf("(%s %s. %s)", q.Kind, q.V, q.F)
}

func (fx Fix) String() string {
	return fmt.Sprintf("[%s %s(%s). %s](%s)", fx.Op, fx.Rel, joinVars(fx.Vars), fx.Body, joinVars(fx.Args))
}

func (so SOQuant) String() string {
	return fmt.Sprintf("(exists2 %s/%d. %s)", so.Rel, so.Arity, so.F)
}

func joinVars(vs []Var) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = string(v)
	}
	return strings.Join(parts, ", ")
}
