package logic

import (
	"fmt"
)

// Query is the paper's (x̄)φ(x̄): a head tuple of free variables and a body
// formula. Evaluated against a database B it denotes
// { t ∈ D^{|Head|} | B ⊨ φ[Head ↦ t] }. An empty head makes the query
// Boolean.
type Query struct {
	Head []Var
	Body Formula
}

// NewQuery builds a query and validates that the head variables are distinct
// and cover the free variables of the body.
func NewQuery(head []Var, body Formula) (Query, error) {
	q := Query{Head: head, Body: body}
	if err := q.Validate(nil); err != nil {
		return Query{}, err
	}
	return q, nil
}

// MustQuery is NewQuery that panics on error, for statically valid literals.
func MustQuery(head []Var, body Formula) Query {
	q, err := NewQuery(head, body)
	if err != nil {
		panic(err)
	}
	return q
}

// Validate checks the query's well-formedness: distinct head variables, every
// free variable of the body listed in the head, and a valid body (see
// Validate on formulas).
func (q Query) Validate(sig Signature) error {
	seen := make(map[Var]bool, len(q.Head))
	for _, v := range q.Head {
		if v == "" {
			return fmt.Errorf("logic: empty head variable")
		}
		if seen[v] {
			return fmt.Errorf("logic: head variable %s repeated", v)
		}
		seen[v] = true
	}
	for v := range FreeVars(q.Body) {
		if !seen[v] {
			return fmt.Errorf("logic: body variable %s not in query head", v)
		}
	}
	return Validate(q.Body, sig)
}

// Width returns the number of distinct individual variables of the query:
// the head variables plus every variable of the body.
func (q Query) Width() int {
	vars := AllVars(q.Body)
	for _, v := range q.Head {
		vars[v] = true
	}
	return len(vars)
}

// Vars returns the query's variables in a canonical order: head variables
// first (in head order), then the remaining body variables sorted by name.
// The bounded-variable evaluators use this order to assign coordinate axes.
func (q Query) Vars() []Var {
	out := append([]Var(nil), q.Head...)
	seen := make(map[Var]bool, len(out))
	for _, v := range out {
		seen[v] = true
	}
	for _, v := range SortedVars(AllVars(q.Body)) {
		if !seen[v] {
			out = append(out, v)
			seen[v] = true
		}
	}
	return out
}

// Arity returns the arity of the query's answer relation.
func (q Query) Arity() int { return len(q.Head) }

func (q Query) String() string {
	return fmt.Sprintf("(%s). %s", joinVars(q.Head), q.Body)
}
