package logic

import "fmt"

// IfpToPfp rewrites every inflationary fixpoint into a partial fixpoint:
//
//	[ifp S(x̄). φ](ū)  ⇒  [pfp S(x̄). S(x̄) ∨ φ](ū)
//
// The inflationary stage operator S ↦ S ∪ φ(S) is itself inflationary, so
// its partial-fixpoint run always converges and the two formulas agree on
// every database. This is the (easy half of the) observation behind the
// paper's remark that the best known combined-complexity bound for IFPᵏ is
// the PSPACE bound inherited from PFPᵏ (§3.2, §3.4).
func IfpToPfp(f Formula) (Formula, error) {
	switch g := f.(type) {
	case Atom, Eq, Truth:
		return g, nil
	case Not:
		inner, err := IfpToPfp(g.F)
		if err != nil {
			return nil, err
		}
		return Not{F: inner}, nil
	case Binary:
		l, err := IfpToPfp(g.L)
		if err != nil {
			return nil, err
		}
		r, err := IfpToPfp(g.R)
		if err != nil {
			return nil, err
		}
		return Binary{Op: g.Op, L: l, R: r}, nil
	case Quant:
		inner, err := IfpToPfp(g.F)
		if err != nil {
			return nil, err
		}
		return Quant{Kind: g.Kind, V: g.V, F: inner}, nil
	case Fix:
		body, err := IfpToPfp(g.Body)
		if err != nil {
			return nil, err
		}
		if g.Op != IFP {
			return Fix{Op: g.Op, Rel: g.Rel, Vars: g.Vars, Body: body, Args: g.Args}, nil
		}
		selfAtom := Atom{Rel: g.Rel, Args: append([]Var(nil), g.Vars...)}
		return Fix{
			Op:   PFP,
			Rel:  g.Rel,
			Vars: g.Vars,
			Body: Or(selfAtom, body),
			Args: g.Args,
		}, nil
	case SOQuant:
		inner, err := IfpToPfp(g.F)
		if err != nil {
			return nil, err
		}
		return SOQuant{Rel: g.Rel, Arity: g.Arity, F: inner}, nil
	default:
		return nil, fmt.Errorf("logic: unknown formula %T", f)
	}
}
