// Package bitset provides fixed-size bit sets packed into 64-bit words.
//
// Bit sets are the storage backbone of the dense k-ary relations used by the
// bounded-variable evaluators: a relation over the variables x_1..x_k and a
// domain of n elements is a set of at most n^k points, and every Boolean
// connective of the logic maps to a word-parallel bit operation.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity set of integers in [0, Len()).
// The zero value is an empty set of capacity 0.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set with capacity for n bits.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative size %d", n))
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Full returns a set of capacity n with every bit set.
func Full(n int) *Set {
	s := New(n)
	s.SetAll()
	return s
}

// Len returns the capacity of the set in bits.
func (s *Set) Len() int { return s.n }

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Set sets bit i. It panics if i is out of range.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i. It panics if i is out of range.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// SetAll sets every bit.
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// ClearAll clears every bit.
func (s *Set) ClearAll() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// trim zeroes the unused high bits of the last word so that Count, Equal and
// friends can work word-wise.
func (s *Set) trim() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(rem)) - 1
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bit is set.
func (s *Set) None() bool { return !s.Any() }

// Clone returns a copy of s.
func (s *Set) Clone() *Set {
	t := New(s.n)
	copy(t.words, s.words)
	return t
}

// Copy overwrites s with the contents of t. The sets must have equal capacity.
func (s *Set) Copy(t *Set) {
	s.mustMatch(t)
	copy(s.words, t.words)
}

func (s *Set) mustMatch(t *Set) {
	if s.n != t.n {
		panic(fmt.Sprintf("bitset: size mismatch %d vs %d", s.n, t.n))
	}
}

// Or sets s to s ∪ t.
func (s *Set) Or(t *Set) {
	s.mustMatch(t)
	for i, w := range t.words {
		s.words[i] |= w
	}
}

// And sets s to s ∩ t.
func (s *Set) And(t *Set) {
	s.mustMatch(t)
	for i, w := range t.words {
		s.words[i] &= w
	}
}

// AndNot sets s to s \ t.
func (s *Set) AndNot(t *Set) {
	s.mustMatch(t)
	for i, w := range t.words {
		s.words[i] &^= w
	}
}

// Xor sets s to the symmetric difference of s and t.
func (s *Set) Xor(t *Set) {
	s.mustMatch(t)
	for i, w := range t.words {
		s.words[i] ^= w
	}
}

// Not complements s in place (with respect to its capacity).
func (s *Set) Not() {
	for i := range s.words {
		s.words[i] = ^s.words[i]
	}
	s.trim()
}

// Equal reports whether s and t hold exactly the same bits. Sets of different
// capacity are never equal.
func (s *Set) Equal(t *Set) bool {
	if s.n != t.n {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every bit of s is also set in t.
func (s *Set) SubsetOf(t *Set) bool {
	s.mustMatch(t)
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// NextSet returns the index of the first set bit at or after i, and whether
// one exists.
func (s *Set) NextSet(i int) (int, bool) {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return 0, false
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w), true
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi]), true
		}
	}
	return 0, false
}

// ForEach calls fn for every set bit, in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Cursor walks the set bits of a Set in increasing order, one call at a
// time. Unlike ForEach it can be suspended between bits, which is what a
// streaming enumerator needs, and Skip advances over whole words by popcount
// without decoding the bits it discards.
//
// The cursor reads the underlying words directly; mutating the Set while a
// cursor is open yields unspecified (but memory-safe) results.
type Cursor struct {
	words []uint64
	wi    int    // index of the word cur was taken from
	cur   uint64 // remaining bits of words[wi], lowest bit = next result
}

// Cursor returns a cursor positioned before the first set bit.
func (s *Set) Cursor() Cursor {
	c := Cursor{words: s.words}
	if len(c.words) > 0 {
		c.cur = c.words[0]
	}
	return c
}

// Next returns the index of the next set bit, and whether one exists.
func (c *Cursor) Next() (int, bool) {
	for c.cur == 0 {
		c.wi++
		if c.wi >= len(c.words) {
			return 0, false
		}
		c.cur = c.words[c.wi]
	}
	b := bits.TrailingZeros64(c.cur)
	c.cur &= c.cur - 1
	return c.wi*wordBits + b, true
}

// Skip advances past up to n set bits without reporting them and returns how
// many were actually skipped (less than n only if the set ran out). Whole
// words are skipped by popcount, so skipping k bits costs O(k/64 + words
// scanned), not O(k) bit decodes.
func (c *Cursor) Skip(n int) int {
	skipped := 0
	for skipped < n {
		pc := bits.OnesCount64(c.cur)
		if skipped+pc <= n {
			skipped += pc
			c.wi++
			if c.wi >= len(c.words) {
				c.cur = 0
				return skipped
			}
			c.cur = c.words[c.wi]
			continue
		}
		// The boundary falls inside cur: clear bits one at a time.
		for skipped < n {
			c.cur &= c.cur - 1
			skipped++
		}
	}
	return skipped
}

// Hash returns a 64-bit FNV-1a style hash of the set contents, suitable for
// cycle detection over sequences of sets.
func (s *Set) Hash() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	h = (h ^ uint64(s.n)) * prime
	for _, w := range s.words {
		h = (h ^ w) * prime
	}
	return h
}

// String renders the set as a list of indices, e.g. "{0, 3, 17}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
