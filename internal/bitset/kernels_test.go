package bitset

import (
	"math/rand"
	"testing"
)

// randomDensitySet returns a set of n bits with each bit set with probability p.
func randomDensitySet(r *rand.Rand, n int, p float64) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Float64() < p {
			s.Set(i)
		}
	}
	return s
}

// The range kernels are verified against per-bit loops over random sets,
// offsets and lengths, covering cross-word and word-interior ranges and
// capacities not divisible by 64.

func TestRangeKernelsAgainstBitLoop(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	sizes := []int{1, 7, 63, 64, 65, 100, 128, 200, 517}
	for _, n := range sizes {
		for trial := 0; trial < 50; trial++ {
			src := randomDensitySet(r, n, 0.4)
			length := r.Intn(n + 1)
			dstOff := r.Intn(n - length + 1)
			srcOff := r.Intn(n - length + 1)

			for _, op := range []string{"or", "and", "copy"} {
				dst := randomDensitySet(r, n, 0.4)
				want := dst.Clone()
				for i := 0; i < length; i++ {
					sb := src.Test(srcOff + i)
					db := want.Test(dstOff + i)
					var v bool
					switch op {
					case "or":
						v = db || sb
					case "and":
						v = db && sb
					case "copy":
						v = sb
					}
					if v {
						want.Set(dstOff + i)
					} else {
						want.Clear(dstOff + i)
					}
				}
				switch op {
				case "or":
					dst.OrRange(src, dstOff, srcOff, length)
				case "and":
					dst.AndRange(src, dstOff, srcOff, length)
				case "copy":
					dst.CopyRange(src, dstOff, srcOff, length)
				}
				if !dst.Equal(want) {
					t.Fatalf("n=%d %s dstOff=%d srcOff=%d len=%d:\n got %v\nwant %v",
						n, op, dstOff, srcOff, length, dst, want)
				}
			}
		}
	}
}

func TestSetRange(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 9, 64, 65, 130, 321} {
		for trial := 0; trial < 30; trial++ {
			length := r.Intn(n + 1)
			off := r.Intn(n - length + 1)
			s := randomDensitySet(r, n, 0.3)
			want := s.Clone()
			for i := 0; i < length; i++ {
				want.Set(off + i)
			}
			s.SetRange(off, length)
			if !s.Equal(want) {
				t.Fatalf("n=%d off=%d len=%d: got %v want %v", n, off, length, s, want)
			}
		}
	}
}

func TestOrNot(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 63, 64, 65, 200} {
		s := randomDensitySet(r, n, 0.5)
		u := randomDensitySet(r, n, 0.5)
		want := s.Clone()
		want.Not()
		want.Or(u)
		s.OrNot(u)
		if !s.Equal(want) {
			t.Fatalf("n=%d: got %v want %v", n, s, want)
		}
		// The unused high bits of the last word must stay clear.
		if c := s.Count(); c > n {
			t.Fatalf("n=%d: count %d exceeds capacity", n, c)
		}
	}
}

func TestFoldAndBroadcastStride(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	// Shapes chosen to exercise span<64, span=64 aligned, span>64 unaligned.
	shapes := []struct{ span, stride, count int }{
		{1, 1, 5}, {3, 3, 4}, {9, 9, 9}, {64, 64, 4}, {70, 70, 3}, {128, 128, 2},
	}
	for _, sh := range shapes {
		n := sh.stride*sh.count + sh.span
		src := randomDensitySet(r, n, 0.4)

		or := New(n)
		or.OrFoldStride(src, 0, 0, sh.stride, sh.span, sh.count)
		and := Full(n)
		and.AndFoldStride(src, 0, 0, sh.stride, sh.span, sh.count)
		for i := 0; i < sh.span; i++ {
			anyBit, allBit := false, true
			for v := 0; v < sh.count; v++ {
				b := src.Test(v*sh.stride + i)
				anyBit = anyBit || b
				allBit = allBit && b
			}
			if or.Test(i) != anyBit {
				t.Fatalf("%+v: or-fold bit %d = %v, want %v", sh, i, or.Test(i), anyBit)
			}
			if and.Test(i) != allBit {
				t.Fatalf("%+v: and-fold bit %d = %v, want %v", sh, i, and.Test(i), allBit)
			}
		}

		dst := New(n)
		dst.OrBroadcastStride(src, 0, 0, sh.stride, sh.span, sh.count)
		for v := 0; v < sh.count; v++ {
			for i := 0; i < sh.span; i++ {
				if dst.Test(v*sh.stride+i) != src.Test(i) {
					t.Fatalf("%+v: broadcast slab %d bit %d mismatch", sh, v, i)
				}
			}
		}
	}
}

func TestRangeOpSelfAliasing(t *testing.T) {
	// A broadcast from a set into itself (source slab before destinations)
	// must behave as if the source were snapshotted: the fold/broadcast pair
	// used by the quantifier kernels relies on this.
	s := New(192)
	s.Set(0)
	s.Set(5)
	s.OrBroadcastStride(s, 9, 0, 9, 9, 20)
	for v := 0; v < 21; v++ {
		if !s.Test(v*9) || !s.Test(v*9+5) {
			t.Fatalf("slab %d missing broadcast bits: %v", v, s)
		}
		if s.Test(v*9+1) || s.Test(v*9+4) {
			t.Fatalf("slab %d has stray bits: %v", v, s)
		}
	}
}
