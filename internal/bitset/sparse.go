package bitset

import "math/bits"

// This file holds the sparse-driver kernels behind semi-naive (delta-driven)
// fixpoint evaluation: each pass over a delta operand visits only its nonzero
// words, so the per-stage cost of a union, join or difference is proportional
// to the words the delta actually touches — the changed-word mask — instead
// of the full nᵏ-bit relation.

// OrSparse sets s to s ∪ t, visiting only the nonzero words of t. It returns
// the number of destination words that changed.
func (s *Set) OrSparse(t *Set) int {
	s.mustMatch(t)
	changed := 0
	for i, w := range t.words {
		if w == 0 {
			continue
		}
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed++
		}
	}
	return changed
}

// OrAndSparse sets s to s ∪ (drv ∩ t), visiting only the nonzero words of
// drv — the semi-naive join rule Δ(l ∧ r) ⊇ Δl ∩ r with drv as the delta
// side. It returns the number of destination words that changed.
func (s *Set) OrAndSparse(drv, t *Set) int {
	s.mustMatch(drv)
	s.mustMatch(t)
	changed := 0
	for i, w := range drv.words {
		if w == 0 {
			continue
		}
		w &= t.words[i]
		if w == 0 {
			continue
		}
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed++
		}
	}
	return changed
}

// AndNotSparse sets s to s \ t, visiting only the nonzero words of s — the
// delta-tightening rule Δ ← Δ \ old. It returns the number of bits remaining
// in s, so callers learn emptiness (convergence) from the same pass.
func (s *Set) AndNotSparse(t *Set) int {
	s.mustMatch(t)
	remaining := 0
	for i, w := range s.words {
		if w == 0 {
			continue
		}
		w &^= t.words[i]
		s.words[i] = w
		remaining += bits.OnesCount64(w)
	}
	return remaining
}
