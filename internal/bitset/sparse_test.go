package bitset

import (
	"math/rand"
	"testing"
)

// randomSetDensity fills a set of n bits with the given density.
func randomSetDensity(rng *rand.Rand, n int, density float64) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			s.Set(i)
		}
	}
	return s
}

func TestOrSparseMatchesOr(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 63, 64, 65, 200, 1000} {
		for _, density := range []float64{0, 0.01, 0.3, 1} {
			s := randomSetDensity(rng, n, 0.3)
			d := randomSetDensity(rng, n, density)
			want := s.Clone()
			want.Or(d)
			got := s.Clone()
			changed := got.OrSparse(d)
			if !got.Equal(want) {
				t.Fatalf("n=%d density=%v: OrSparse disagrees with Or", n, density)
			}
			// changed must count exactly the destination words that differ.
			diff := 0
			for i := range want.words {
				if want.words[i] != s.words[i] {
					diff++
				}
			}
			if changed != diff {
				t.Fatalf("n=%d density=%v: changed=%d, want %d", n, density, changed, diff)
			}
		}
	}
}

func TestOrAndSparseMatchesAndOr(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 64, 65, 300, 1000} {
		for _, density := range []float64{0, 0.02, 0.5} {
			s := randomSetDensity(rng, n, 0.2)
			drv := randomSetDensity(rng, n, density)
			other := randomSetDensity(rng, n, 0.5)
			want := s.Clone()
			join := drv.Clone()
			join.And(other)
			want.Or(join)
			got := s.Clone()
			got.OrAndSparse(drv, other)
			if !got.Equal(want) {
				t.Fatalf("n=%d density=%v: OrAndSparse disagrees with And+Or", n, density)
			}
		}
	}
}

func TestAndNotSparseMatchesAndNot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 64, 65, 300, 1000} {
		for _, density := range []float64{0, 0.02, 0.5, 1} {
			s := randomSetDensity(rng, n, density)
			d := randomSetDensity(rng, n, 0.4)
			want := s.Clone()
			want.AndNot(d)
			got := s.Clone()
			remaining := got.AndNotSparse(d)
			if !got.Equal(want) {
				t.Fatalf("n=%d density=%v: AndNotSparse disagrees with AndNot", n, density)
			}
			if remaining != want.Count() {
				t.Fatalf("n=%d density=%v: remaining=%d, want %d", n, density, remaining, want.Count())
			}
		}
	}
}

func BenchmarkOrSparse(b *testing.B) {
	const n = 1 << 16
	rng := rand.New(rand.NewSource(4))
	s := randomSetDensity(rng, n, 0.3)
	d := New(n)
	for i := 0; i < 32; i++ { // a sparse delta: 32 bits in 64Ki
		d.Set(rng.Intn(n))
	}
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.OrSparse(d)
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.Or(d)
		}
	})
}
