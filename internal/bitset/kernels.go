package bitset

import "fmt"

// This file holds the word-parallel range and strided-fold kernels backing
// the dense-relation quantifier elimination of Proposition 3.1. All kernels
// operate on bit ranges at arbitrary (not necessarily word-aligned) offsets
// and touch 64 bits per step: a range op reads each destination word once,
// gathers the matching 64 source bits with at most two shifted loads, and
// applies the Boolean op under a mask for the partial first and last words.

// range kernels share one core, selected by opcode.
const (
	opOr = iota
	opAnd
	opCopy
)

// fetch64 returns the 64 bits of s starting at bit position off, in the low
// bits of the result. Positions at or beyond the capacity read as zero.
func (s *Set) fetch64(off int) uint64 {
	wi := off / wordBits
	sh := uint(off % wordBits)
	var w uint64
	if wi < len(s.words) {
		w = s.words[wi] >> sh
	}
	if sh != 0 && wi+1 < len(s.words) {
		w |= s.words[wi+1] << (wordBits - sh)
	}
	return w
}

func (s *Set) checkRange(off, length int, who string) {
	if length < 0 || off < 0 || off+length > s.n {
		panic(fmt.Sprintf("bitset: %s range [%d,%d) out of [0,%d)", who, off, off+length, s.n))
	}
}

// rangeOp applies s[dstOff+i] = op(s[dstOff+i], t[srcOff+i]) for i in
// [0, length), one destination word at a time. s and t may be the same set
// when the ranges are disjoint or when srcOff ≥ dstOff (forward overlap):
// destination words are processed in ascending order and every source word
// read lies at or after the word being written, so ahead-reads always see
// pre-call contents. Backward overlap (srcOff < dstOff on the same set)
// would chain freshly written words into later reads and is not supported.
func (s *Set) rangeOp(t *Set, dstOff, srcOff, length, op int) {
	s.checkRange(dstOff, length, "destination")
	t.checkRange(srcOff, length, "source")
	if dstOff%wordBits == 0 && srcOff%wordBits == 0 {
		// Word-aligned fast path: no cross-word gathers needed.
		dw, sw := dstOff/wordBits, srcOff/wordBits
		full := length / wordBits
		switch op {
		case opOr:
			for i := 0; i < full; i++ {
				s.words[dw+i] |= t.words[sw+i]
			}
		case opAnd:
			for i := 0; i < full; i++ {
				s.words[dw+i] &= t.words[sw+i]
			}
		case opCopy:
			copy(s.words[dw:dw+full], t.words[sw:sw+full])
		}
		if rem := length % wordBits; rem > 0 {
			mask := ^uint64(0) >> uint(wordBits-rem)
			v := t.fetch64(srcOff + full*wordBits)
			switch op {
			case opOr:
				s.words[dw+full] |= v & mask
			case opAnd:
				s.words[dw+full] &= v&mask | ^mask
			case opCopy:
				s.words[dw+full] = s.words[dw+full]&^mask | v&mask
			}
		}
		return
	}
	pos := 0
	for pos < length {
		di := dstOff + pos
		wi := di / wordBits
		bit := uint(di % wordBits)
		chunk := wordBits - int(bit)
		if chunk > length-pos {
			chunk = length - pos
		}
		mask := (^uint64(0) >> uint(wordBits-chunk)) << bit
		v := t.fetch64(srcOff+pos) << bit
		switch op {
		case opOr:
			s.words[wi] |= v & mask
		case opAnd:
			s.words[wi] &= v&mask | ^mask
		case opCopy:
			s.words[wi] = s.words[wi]&^mask | v&mask
		}
		pos += chunk
	}
}

// OrRange sets s[dstOff+i] |= t[srcOff+i] for i in [0, length).
func (s *Set) OrRange(t *Set, dstOff, srcOff, length int) {
	s.rangeOp(t, dstOff, srcOff, length, opOr)
}

// AndRange sets s[dstOff+i] &= t[srcOff+i] for i in [0, length).
func (s *Set) AndRange(t *Set, dstOff, srcOff, length int) {
	s.rangeOp(t, dstOff, srcOff, length, opAnd)
}

// CopyRange sets s[dstOff+i] = t[srcOff+i] for i in [0, length).
func (s *Set) CopyRange(t *Set, dstOff, srcOff, length int) {
	s.rangeOp(t, dstOff, srcOff, length, opCopy)
}

// SetRange sets every bit in [off, off+length).
func (s *Set) SetRange(off, length int) {
	s.checkRange(off, length, "set")
	pos := 0
	for pos < length {
		i := off + pos
		wi := i / wordBits
		bit := uint(i % wordBits)
		chunk := wordBits - int(bit)
		if chunk > length-pos {
			chunk = length - pos
		}
		s.words[wi] |= (^uint64(0) >> uint(wordBits-chunk)) << bit
		pos += chunk
	}
}

// Fetch64 returns the 64 bits of s starting at bit position off, in the low
// bits of the result; positions at or beyond the capacity read as zero. It
// is the read half of the register-block kernels.
func (s *Set) Fetch64(off int) uint64 { return s.fetch64(off) }

// StoreRange overwrites the length bits at off (length ≤ 64) with the low
// length bits of w: the write half of fetch64, for kernels that fold a whole
// block inside one register.
func (s *Set) StoreRange(off, length int, w uint64) {
	s.checkRange(off, length, "store")
	if length == 0 {
		return
	}
	if length > wordBits {
		panic(fmt.Sprintf("bitset: store of %d bits exceeds one word", length))
	}
	wi := off / wordBits
	sh := uint(off % wordBits)
	mask := ^uint64(0) >> uint(wordBits-length)
	w &= mask
	s.words[wi] = s.words[wi]&^(mask<<sh) | w<<sh
	if spill := int(sh) + length - wordBits; spill > 0 {
		hiMask := ^uint64(0) >> uint(wordBits-spill)
		s.words[wi+1] = s.words[wi+1]&^hiMask | w>>(uint(wordBits)-sh)
	}
}

// OrNot sets s to ¬s ∪ t: the fused implication kernel (s → t as a single
// pass instead of Not followed by Or).
func (s *Set) OrNot(t *Set) {
	s.mustMatch(t)
	for i, w := range t.words {
		s.words[i] = ^s.words[i] | w
	}
	s.trim()
}

// OrFoldStride folds count strided source slabs into one destination slab:
// s[dstOff .. dstOff+span) |= t[srcOff+v·stride .. +span) for v in [0, count).
// It is the ∃-quantifier fold over one axis of a dense relation whose slabs
// are span bits wide.
func (s *Set) OrFoldStride(t *Set, dstOff, srcOff, stride, span, count int) {
	for v := 0; v < count; v++ {
		s.rangeOp(t, dstOff, srcOff+v*stride, span, opOr)
	}
}

// AndFoldStride is OrFoldStride with intersection: the ∀-quantifier fold.
func (s *Set) AndFoldStride(t *Set, dstOff, srcOff, stride, span, count int) {
	for v := 0; v < count; v++ {
		s.rangeOp(t, dstOff, srcOff+v*stride, span, opAnd)
	}
}

// OrBroadcastStride replicates one source slab across count strided
// destination slabs: s[dstOff+v·stride .. +span) |= t[srcOff .. +span) for v
// in [0, count). s and t may be the same set when the source slab precedes
// every destination slab (the cylindrification step of a quantifier fold).
func (s *Set) OrBroadcastStride(t *Set, dstOff, srcOff, stride, span, count int) {
	for v := 0; v < count; v++ {
		s.rangeOp(t, dstOff+v*stride, srcOff, span, opOr)
	}
}
