package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	if s.Count() != 0 || s.Any() || !s.None() {
		t.Fatalf("new set not empty: count=%d", s.Count())
	}
}

func TestSetTestClear(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if s.Test(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d, want 8", s.Count())
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if s.Count() != 7 {
		t.Fatalf("Count = %d, want 7", s.Count())
	}
}

func TestTestOutOfRange(t *testing.T) {
	s := New(10)
	if s.Test(-1) || s.Test(10) || s.Test(1000) {
		t.Fatal("Test out of range should be false")
	}
}

func TestSetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set out of range did not panic")
		}
	}()
	New(10).Set(10)
}

func TestFullAndNot(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100, 128} {
		s := Full(n)
		if s.Count() != n {
			t.Fatalf("Full(%d).Count = %d", n, s.Count())
		}
		s.Not()
		if s.Count() != 0 {
			t.Fatalf("Not(Full(%d)).Count = %d", n, s.Count())
		}
		s.Not()
		if s.Count() != n {
			t.Fatalf("double Not of Full(%d).Count = %d", n, s.Count())
		}
	}
}

func TestSetAllTrimsHighBits(t *testing.T) {
	s := New(65)
	s.SetAll()
	if s.Count() != 65 {
		t.Fatalf("Count = %d, want 65", s.Count())
	}
	if s.Test(65) || s.Test(127) {
		t.Fatal("bits beyond capacity observable")
	}
}

func TestBooleanOps(t *testing.T) {
	a := New(130)
	b := New(130)
	for i := 0; i < 130; i += 2 {
		a.Set(i)
	}
	for i := 0; i < 130; i += 3 {
		b.Set(i)
	}

	or := a.Clone()
	or.Or(b)
	and := a.Clone()
	and.And(b)
	diff := a.Clone()
	diff.AndNot(b)
	xor := a.Clone()
	xor.Xor(b)

	for i := 0; i < 130; i++ {
		ea, eb := i%2 == 0, i%3 == 0
		if or.Test(i) != (ea || eb) {
			t.Fatalf("Or wrong at %d", i)
		}
		if and.Test(i) != (ea && eb) {
			t.Fatalf("And wrong at %d", i)
		}
		if diff.Test(i) != (ea && !eb) {
			t.Fatalf("AndNot wrong at %d", i)
		}
		if xor.Test(i) != (ea != eb) {
			t.Fatalf("Xor wrong at %d", i)
		}
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Or with mismatched sizes did not panic")
		}
	}()
	New(10).Or(New(11))
}

func TestEqualAndSubset(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(5)
	a.Set(70)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	b.Set(5)
	b.Set(70)
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	b.Set(99)
	if !a.SubsetOf(b) {
		t.Fatal("subset not detected")
	}
	if b.SubsetOf(a) {
		t.Fatal("superset reported as subset")
	}
	if a.Equal(New(101)) {
		t.Fatal("different capacities reported equal")
	}
}

func TestNextSet(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 130, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	for i, ok := s.NextSet(0); ok; i, ok = s.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if _, ok := s.NextSet(200); ok {
		t.Fatal("NextSet beyond capacity returned a bit")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(100)
	for _, i := range []int{99, 0, 42, 63, 64} {
		s.Set(i)
	}
	prev := -1
	count := 0
	s.ForEach(func(i int) {
		if i <= prev {
			t.Fatalf("ForEach out of order: %d after %d", i, prev)
		}
		if !s.Test(i) {
			t.Fatalf("ForEach visited unset bit %d", i)
		}
		prev = i
		count++
	})
	if count != 5 {
		t.Fatalf("visited %d bits, want 5", count)
	}
}

func TestCopyAndClone(t *testing.T) {
	a := New(70)
	a.Set(1)
	a.Set(69)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone differs")
	}
	b.Set(2)
	if a.Test(2) {
		t.Fatal("clone aliases original")
	}
	c := New(70)
	c.Copy(a)
	if !c.Equal(a) {
		t.Fatal("Copy differs")
	}
}

func TestHashDistinguishes(t *testing.T) {
	a := New(64)
	b := New(64)
	if a.Hash() != b.Hash() {
		t.Fatal("equal sets hash differently")
	}
	b.Set(17)
	if a.Hash() == b.Hash() {
		t.Fatal("distinct sets hash equal (pathological)")
	}
	// Capacity participates in the hash.
	if New(64).Hash() == New(65).Hash() {
		t.Fatal("capacity not hashed")
	}
}

func TestString(t *testing.T) {
	s := New(10)
	if s.String() != "{}" {
		t.Fatalf("empty String = %q", s.String())
	}
	s.Set(1)
	s.Set(7)
	if s.String() != "{1, 7}" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestZeroSizeSet(t *testing.T) {
	s := New(0)
	if s.Any() {
		t.Fatal("empty-capacity set has bits")
	}
	s.Not()
	if s.Count() != 0 {
		t.Fatal("Not on zero-size set produced bits")
	}
}

// randomSet builds a set of capacity n with each bit set with probability 1/2.
func randomSet(r *rand.Rand, n int) *Set {
	s := New(n)
	for i := 0; i < n; i++ {
		if r.Intn(2) == 0 {
			s.Set(i)
		}
	}
	return s
}

func TestQuickDeMorgan(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%150 + 1
		rr := rand.New(rand.NewSource(seed))
		a := randomSet(rr, n)
		b := randomSet(rr, n)
		// ¬(a ∪ b) == ¬a ∩ ¬b
		lhs := a.Clone()
		lhs.Or(b)
		lhs.Not()
		na := a.Clone()
		na.Not()
		nb := b.Clone()
		nb.Not()
		rhs := na.Clone()
		rhs.And(nb)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCountUnionInclusionExclusion(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%150 + 1
		rr := rand.New(rand.NewSource(seed))
		a := randomSet(rr, n)
		b := randomSet(rr, n)
		u := a.Clone()
		u.Or(b)
		i := a.Clone()
		i.And(b)
		return u.Count()+i.Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnd(b *testing.B) {
	x := Full(1 << 16)
	y := Full(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.And(y)
	}
}

func TestCursorMatchesForEach(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := r.Intn(400)
		s := randomSet(r, n)
		var want []int
		s.ForEach(func(i int) { want = append(want, i) })
		c := s.Cursor()
		var got []int
		for {
			i, ok := c.Next()
			if !ok {
				break
			}
			got = append(got, i)
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: cursor yielded %d bits, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: bit %d: got %d, want %d", n, i, got[i], want[i])
			}
		}
		if _, ok := c.Next(); ok {
			t.Fatalf("n=%d: Next after exhaustion reported a bit", n)
		}
	}
}

func TestCursorSkip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 80; trial++ {
		n := r.Intn(500)
		s := randomSet(r, n)
		var all []int
		s.ForEach(func(i int) { all = append(all, i) })
		k := r.Intn(len(all) + 3) // sometimes past the end
		c := s.Cursor()
		skipped := c.Skip(k)
		wantSkipped := k
		if wantSkipped > len(all) {
			wantSkipped = len(all)
		}
		if skipped != wantSkipped {
			t.Fatalf("n=%d k=%d: Skip returned %d, want %d", n, k, skipped, wantSkipped)
		}
		i, ok := c.Next()
		if k >= len(all) {
			if ok {
				t.Fatalf("n=%d k=%d: Next after over-skip reported bit %d", n, k, i)
			}
			continue
		}
		if !ok || i != all[k] {
			t.Fatalf("n=%d k=%d: Next after Skip = (%d,%v), want (%d,true)", n, k, i, ok, all[k])
		}
	}
}

func TestCursorSkipInterleaved(t *testing.T) {
	s := New(300)
	for i := 0; i < 300; i += 3 {
		s.Set(i)
	}
	c := s.Cursor()
	if i, ok := c.Next(); !ok || i != 0 {
		t.Fatalf("first Next = (%d,%v)", i, ok)
	}
	if got := c.Skip(10); got != 10 {
		t.Fatalf("Skip(10) = %d", got)
	}
	if i, ok := c.Next(); !ok || i != 33 {
		t.Fatalf("Next after Skip(10) = (%d,%v), want 33", i, ok)
	}
	if got := c.Skip(1000); got != 100-12 {
		t.Fatalf("Skip(1000) = %d, want %d", got, 100-12)
	}
	if _, ok := c.Next(); ok {
		t.Fatal("Next after exhausting skip succeeded")
	}
}
