package router

import (
	"repro/internal/metrics"
)

// routerMetrics is the bvqrouter_* instrument set. Families are prefixed
// bvqrouter_ (not bvqd_) so the fleet aggregate on GET /metrics can carry
// the replicas' bvqd_* families alongside without collision.
type routerMetrics struct {
	registry *metrics.Registry

	requests       *metrics.CounterVec // by route: query | stream
	latency        *metrics.HistogramVec
	proxied        *metrics.CounterVec // by replica URL
	updates        *metrics.Counter
	retries        *metrics.Counter
	hedges         *metrics.Counter
	hedgeWins      *metrics.Counter
	shedRelays     *metrics.Counter
	streamRepairs  *metrics.Counter
	unrouted       *metrics.Counter
	evictions      *metrics.Counter
	fanoutFailures *metrics.Counter
	divergence     *metrics.Counter
	scrapeFailures *metrics.Counter
}

func newRouterMetrics(rt *Router) *routerMetrics {
	r := metrics.NewRegistry()
	m := &routerMetrics{
		registry: r,
		requests: r.NewCounterVec("bvqrouter_requests_total",
			"Routed /query requests by route (query: JSON, stream: NDJSON).", "route"),
		latency: r.NewHistogramVec("bvqrouter_request_seconds",
			"End-to-end routed request latency by route, including retries and hedges.", "route", nil),
		proxied: r.NewCounterVec("bvqrouter_proxied_total",
			"Upstream requests issued, by replica.", "replica"),
		updates: r.NewCounter("bvqrouter_updates_total",
			"Update fan-outs attempted."),
		retries: r.NewCounter("bvqrouter_retries_total",
			"Upstream attempts beyond each request's first-choice replica."),
		hedges: r.NewCounter("bvqrouter_hedges_total",
			"Hedged second requests launched for slow or failed primaries."),
		hedgeWins: r.NewCounter("bvqrouter_hedge_wins_total",
			"Hedged requests won by the backup replica."),
		shedRelays: r.NewCounter("bvqrouter_shed_relayed_total",
			"Requests answered 429 because every candidate replica shed."),
		streamRepairs: r.NewCounter("bvqrouter_stream_repairs_total",
			"Streams whose upstream died mid-answer and got a router-appended error trailer."),
		unrouted: r.NewCounter("bvqrouter_unrouted_total",
			"Requests no replica could serve (502/503 responses)."),
		evictions: r.NewCounter("bvqrouter_member_evictions_total",
			"Ring evictions from health-probe failures or forwarding errors."),
		fanoutFailures: r.NewCounter("bvqrouter_update_fanout_failures_total",
			"Update fan-outs where at least one healthy replica failed."),
		divergence: r.NewCounter("bvqrouter_update_divergence_total",
			"Update fan-outs where healthy replicas disagreed on the resulting fingerprint."),
		scrapeFailures: r.NewCounter("bvqrouter_scrape_failures_total",
			"Replica /metrics scrapes that failed during fleet aggregation."),
	}
	r.NewGaugeFunc("bvqrouter_members_healthy",
		"Replicas currently in the ring.", rt.healthyCount)
	r.NewGaugeFunc("bvqrouter_members_configured",
		"Replicas configured.", func() int64 { return int64(len(rt.members)) })
	return m
}

// statsSnapshot is the router section of GET /stats.
func (rt *Router) statsSnapshot() map[string]any {
	return map[string]any{
		"members_configured": len(rt.members),
		"members_healthy":    rt.healthyCount(),
		"updates":            rt.metrics.updates.Value(),
		"retries":            rt.metrics.retries.Value(),
		"hedges":             rt.metrics.hedges.Value(),
		"hedge_wins":         rt.metrics.hedgeWins.Value(),
		"shed_relayed":       rt.metrics.shedRelays.Value(),
		"stream_repairs":     rt.metrics.streamRepairs.Value(),
		"unrouted":           rt.metrics.unrouted.Value(),
		"evictions":          rt.metrics.evictions.Value(),
		"fanout_failures":    rt.metrics.fanoutFailures.Value(),
		"divergence":         rt.metrics.divergence.Value(),
	}
}
