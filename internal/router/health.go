package router

import (
	"context"
	"io"
	"net/http"
	"time"
)

// healthLoop probes every member's /healthz each interval. threshold
// consecutive failures evict a member from the ring; one success readmits
// it (and clears any forwarding-time eviction). Probes run with a deadline
// of the interval, capped at two seconds, so a hung replica cannot stall
// the loop into missing a real outage.
func (rt *Router) healthLoop(interval time.Duration, threshold int) {
	defer close(rt.healthDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	probeTimeout := min(interval, 2*time.Second)
	for {
		select {
		case <-rt.healthStop:
			return
		case <-t.C:
		}
		for _, m := range rt.members {
			if rt.probe(m, probeTimeout) {
				m.probeFails = 0
				rt.markUp(m)
			} else {
				m.probeFails++
				if m.probeFails >= threshold {
					rt.markDown(m, errProbeFailed)
				}
			}
		}
	}
}

type probeError string

func (e probeError) Error() string { return string(e) }

const errProbeFailed = probeError("health probes failed")

// probe reports whether one /healthz round-trip succeeded.
func (rt *Router) probe(m *member, timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	return resp.StatusCode == http.StatusOK
}
