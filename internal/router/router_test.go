package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/database"
	"repro/internal/metrics"
	"repro/internal/server"
)

// --- ring ---

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = QueryKey("graph", fmt.Sprintf("(x, y). E%d(x, y)", i))
	}
	return keys
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing(64, []string{"r1", "r2", "r3"})
	b := NewRing(64, []string{"r3", "r1", "r2"}) // order must not matter
	for _, k := range ringKeys(500) {
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("owner(%q): %q vs %q for permuted member order", k, ao, bo)
		}
	}
	pref := a.Lookup(ringKeys(1)[0], 0)
	if len(pref) != 3 {
		t.Fatalf("full preference list has %d members, want 3", len(pref))
	}
	seen := map[string]bool{}
	for _, m := range pref {
		if seen[m] {
			t.Fatalf("duplicate member %q in preference list", m)
		}
		seen[m] = true
	}
}

func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(2000)
	full := NewRing(64, []string{"r1", "r2", "r3"})
	without := NewRing(64, []string{"r1", "r2"})

	moved := 0
	for _, k := range keys {
		was, now := full.Owner(k), without.Owner(k)
		if was != "r3" && was != now {
			t.Fatalf("key %q moved %q→%q though its owner %q was not removed", k, was, now, was)
		}
		if was == "r3" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the removed member; test is vacuous")
	}
	// Adding a member only moves keys TO the new member.
	plus := NewRing(64, []string{"r1", "r2", "r3", "r4"})
	for _, k := range keys {
		was, now := full.Owner(k), plus.Owner(k)
		if now != was && now != "r4" {
			t.Fatalf("key %q moved %q→%q on adding r4", k, was, now)
		}
	}
}

// --- forwarding ---

func newTestRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestRetryThenSucceedOn429(t *testing.T) {
	var calls atomic.Int32
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"overloaded"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"answer":[[1,2]]}`)
	}))
	defer replica.Close()

	rt, ts := newTestRouter(t, Config{Replicas: []string{replica.URL}})
	resp, body := postJSON(t, ts.URL+"/query", `{"database":"graph","query":"(x, y). E(x, y)"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after retry, want 200 (body %s)", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`[[1,2]]`)) {
		t.Fatalf("unexpected body %s", body)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("replica saw %d calls, want 2 (429 then success)", got)
	}
	if rt.metrics.retries.Value() == 0 {
		t.Fatal("retry not counted")
	}
}

func TestAllReplicasShedRelays429(t *testing.T) {
	shed := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"overloaded"}`)
	})
	r1, r2 := httptest.NewServer(shed), httptest.NewServer(shed)
	defer r1.Close()
	defer r2.Close()

	// A 7s Retry-After exceeds the 10ms wait cap, so the router gives up
	// fast and relays the shed instead of stalling the client.
	rt, ts := newTestRouter(t, Config{Replicas: []string{r1.URL, r2.URL}, MaxRetryWait: 10 * time.Millisecond})
	resp, _ := postJSON(t, ts.URL+"/query", `{"database":"graph","query":"(x, y). E(x, y)"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want relayed 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "7" {
		t.Fatalf("Retry-After %q not relayed", resp.Header.Get("Retry-After"))
	}
	if rt.metrics.shedRelays.Value() != 1 {
		t.Fatalf("shed relays = %d, want 1", rt.metrics.shedRelays.Value())
	}
}

// testDB is a 4-node graph with a shortcut, enough for twoHop to have a
// multi-tuple answer.
func testDB(t testing.TB) *database.Database {
	t.Helper()
	b := database.NewBuilder()
	b.Relation("E", 2)
	for i := 0; i < 4; i++ {
		b.Domain(i)
	}
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 2}} {
		b.Add("E", e[0], e[1])
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

const twoHop = "(x, y). exists z. E(x, z) & E(z, y)"

// TestStreamPassThroughByteIdentical drives a real bvqd replica through the
// router and asserts the streamed NDJSON rows are byte-identical to a
// direct query (header and trailer carry per-request ids and timings, so
// they are compared structurally instead).
func TestStreamPassThroughByteIdentical(t *testing.T) {
	srv, err := server.New(server.Config{Databases: map[string]*database.Database{"graph": testDB(t)}})
	if err != nil {
		t.Fatal(err)
	}
	replica := httptest.NewServer(srv.Handler())
	defer replica.Close()
	_, ts := newTestRouter(t, Config{Replicas: []string{replica.URL}})

	req := `{"database":"graph","query":"` + twoHop + `","stream":true,"no_cache":true}`
	direct, directBody := postJSON(t, replica.URL+"/query", req)
	routed, routedBody := postJSON(t, ts.URL+"/query", req)
	if direct.StatusCode != 200 || routed.StatusCode != 200 {
		t.Fatalf("statuses %d/%d", direct.StatusCode, routed.StatusCode)
	}
	if ct := routed.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q not passed through", ct)
	}
	dl := strings.Split(strings.TrimRight(string(directBody), "\n"), "\n")
	rl := strings.Split(strings.TrimRight(string(routedBody), "\n"), "\n")
	if len(dl) != len(rl) {
		t.Fatalf("line counts differ: direct %d, routed %d", len(dl), len(rl))
	}
	// Tuple rows (everything between header and trailer) must be
	// byte-identical.
	for i := 1; i < len(dl)-1; i++ {
		if dl[i] != rl[i] {
			t.Fatalf("row %d differs:\ndirect %s\nrouted %s", i, dl[i], rl[i])
		}
	}
	var dTrailer, rTrailer map[string]any
	if err := json.Unmarshal([]byte(dl[len(dl)-1]), &dTrailer); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(rl[len(rl)-1]), &rTrailer); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"trailer", "count", "streamed"} {
		if fmt.Sprint(dTrailer[k]) != fmt.Sprint(rTrailer[k]) {
			t.Fatalf("trailer %q differs: %v vs %v", k, dTrailer[k], rTrailer[k])
		}
	}
	if rTrailer["error"] != nil {
		t.Fatalf("routed trailer has error %v", rTrailer["error"])
	}
}

// TestStreamUpstreamDeathAppendsTrailer pins the router's repair duty: when
// the replica dies after the first byte without emitting its trailer, the
// router appends an error trailer naming the replica, so downstream clients
// can always tell truncation from completion.
func TestStreamUpstreamDeathAppendsTrailer(t *testing.T) {
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"request_id":"x","width":2}`+"\n[0,1]\n")
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler) // cut the connection mid-stream
	}))
	defer replica.Close()
	rt, ts := newTestRouter(t, Config{Replicas: []string{replica.URL}})

	resp, body := postJSON(t, ts.URL+"/query", `{"database":"graph","query":"(x, y). E(x, y)","stream":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want committed 200", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	last := lines[len(lines)-1]
	var trailer struct {
		Trailer bool   `json:"trailer"`
		Error   string `json:"error"`
	}
	if err := json.Unmarshal([]byte(last), &trailer); err != nil || !trailer.Trailer {
		t.Fatalf("last line %q is not a trailer", last)
	}
	if !strings.Contains(trailer.Error, replica.URL) {
		t.Fatalf("repair trailer %q does not name the replica", trailer.Error)
	}
	if lines[1] != "[0,1]" {
		t.Fatalf("row not passed through before the cut: %q", lines[1])
	}
	if rt.metrics.streamRepairs.Value() != 1 {
		t.Fatalf("stream repairs = %d, want 1", rt.metrics.streamRepairs.Value())
	}
}

func TestUpdateFanoutPartialFailureNamesReplica(t *testing.T) {
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"version":2,"fingerprint":"00000000000000ff"}`)
	}))
	defer good.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from here on

	rt, ts := newTestRouter(t, Config{Replicas: []string{good.URL, dead.URL}})
	resp, body := postJSON(t, ts.URL+"/db/graph/update", `{"updates":[{"relation":"E","insert":[[3,0]]}]}`)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 partial failure (body %s)", resp.StatusCode, body)
	}
	var report struct {
		Error   string            `json:"error"`
		Failed  map[string]string `json:"failed"`
		Applied []string          `json:"applied"`
	}
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.Error, dead.URL) {
		t.Fatalf("error %q does not name the failed replica %s", report.Error, dead.URL)
	}
	if _, ok := report.Failed[dead.URL]; !ok {
		t.Fatalf("failed map %v missing %s", report.Failed, dead.URL)
	}
	if len(report.Applied) != 1 || report.Applied[0] != good.URL {
		t.Fatalf("applied %v, want [%s]", report.Applied, good.URL)
	}
	if rt.metrics.fanoutFailures.Value() != 1 {
		t.Fatal("fan-out failure not counted")
	}
}

func TestUpdateFanoutAggregatesVersions(t *testing.T) {
	mk := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"version":3,"fingerprint":"00000000000000aa"}`)
		}))
	}
	r1, r2 := mk(), mk()
	defer r1.Close()
	defer r2.Close()
	_, ts := newTestRouter(t, Config{Replicas: []string{r1.URL, r2.URL}})
	resp, body := postJSON(t, ts.URL+"/db/graph/update", `{"updates":[{"relation":"E","insert":[[3,0]]}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (body %s)", resp.StatusCode, body)
	}
	var agg updateAggregate
	if err := json.Unmarshal(body, &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Version != 3 || agg.Fingerprint != "00000000000000aa" || agg.Diverged {
		t.Fatalf("aggregate %+v", agg)
	}
	if len(agg.Replicas) != 2 {
		t.Fatalf("replicas %v, want both", agg.Replicas)
	}
}

func TestHedgedReadWinsOnSlowPrimary(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
			return
		}
		fmt.Fprint(w, `{"answer":"slow"}`)
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"answer":"fast"}`)
	}))
	defer fast.Close()

	rt, ts := newTestRouter(t, Config{Replicas: []string{slow.URL, fast.URL}, HedgeDelay: 20 * time.Millisecond})
	// Find a query whose ring owner is the slow replica, so the hedge is
	// what saves the request.
	var query string
	for i := 0; ; i++ {
		q := fmt.Sprintf("(x, y). E%d(x, y)", i)
		if rt.ring.Load().Owner(QueryKey("graph", q)) == slow.URL {
			query = q
			break
		}
	}
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/query", `{"database":"graph","query":"`+query+`"}`)
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("fast")) {
		t.Fatalf("status %d body %s, want the hedged fast answer", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hedge did not save the request: took %v", elapsed)
	}
	if rt.metrics.hedges.Value() == 0 || rt.metrics.hedgeWins.Value() == 0 {
		t.Fatalf("hedges=%d wins=%d, want both > 0", rt.metrics.hedges.Value(), rt.metrics.hedgeWins.Value())
	}
}

func TestHealthEvictionAndReadmission(t *testing.T) {
	var down atomic.Bool
	replica := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer replica.Close()
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer other.Close()

	rt, _ := newTestRouter(t, Config{
		Replicas:       []string{replica.URL, other.URL},
		HealthInterval: 10 * time.Millisecond,
		HealthFailures: 2,
	})
	waitFor := func(want int64, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for rt.healthyCount() != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: healthy = %d, want %d", what, rt.healthyCount(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(2, "startup")
	down.Store(true)
	waitFor(1, "eviction")
	// The ring rebalanced: every key is now owned by the survivor.
	for _, k := range ringKeys(50) {
		if owner := rt.ring.Load().Owner(k); owner != other.URL {
			t.Fatalf("key %q owned by %q after eviction", k, owner)
		}
	}
	down.Store(false)
	waitFor(2, "readmission")
}

func TestStatsAggregate(t *testing.T) {
	mk := func(queries, hits int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/stats" {
				http.NotFound(w, r)
				return
			}
			fmt.Fprintf(w, `{"queries":%d,"result_cache":{"hits":%d}}`, queries, hits)
		}))
	}
	r1, r2 := mk(2, 3), mk(5, 1)
	defer r1.Close()
	defer r2.Close()
	_, ts := newTestRouter(t, Config{Replicas: []string{r1.URL, r2.URL}})
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Fleet struct {
			Queries     float64 `json:"queries"`
			ResultCache struct {
				Hits float64 `json:"hits"`
			} `json:"result_cache"`
		} `json:"fleet"`
		Replicas map[string]any `json:"replicas"`
		Router   map[string]any `json:"router"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Fleet.Queries != 7 || out.Fleet.ResultCache.Hits != 4 {
		t.Fatalf("fleet aggregate queries=%v hits=%v, want 7 and 4", out.Fleet.Queries, out.Fleet.ResultCache.Hits)
	}
	if len(out.Replicas) != 2 || out.Router["members_healthy"] != float64(2) {
		t.Fatalf("replicas=%v router=%v", out.Replicas, out.Router)
	}
}

func TestMetricsAggregateParsesAndSums(t *testing.T) {
	exposition := func(v int) string {
		return fmt.Sprintf("# HELP bvqd_queries_total Total queries.\n# TYPE bvqd_queries_total counter\nbvqd_queries_total %d\n", v)
	}
	mk := func(v int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/metrics" {
				http.NotFound(w, r)
				return
			}
			fmt.Fprint(w, exposition(v))
		}))
	}
	r1, r2 := mk(4), mk(9)
	defer r1.Close()
	defer r2.Close()
	_, ts := newTestRouter(t, Config{Replicas: []string{r1.URL, r2.URL}})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.ParseText(bytes.NewReader(text))
	if err != nil {
		t.Fatalf("aggregate exposition does not parse: %v\n%s", err, text)
	}
	found := false
	for _, f := range fams {
		if f.Name == "bvqd_queries_total" {
			found = true
			if len(f.Samples) != 1 || f.Samples[0].Value != 13 {
				t.Fatalf("bvqd_queries_total = %+v, want one sample of 13", f.Samples)
			}
		}
	}
	if !found {
		t.Fatal("fleet aggregate missing bvqd_queries_total")
	}
	if !bytes.Contains(text, []byte("bvqrouter_requests_total")) {
		t.Fatal("router families missing from /metrics")
	}
}
