package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// fanResult is one replica's outcome in an update fan-out.
type fanResult struct {
	m    *member
	code int
	body []byte
	err  error
}

// updateAggregate is the router's 200 response to a fanned-out update.
type updateAggregate struct {
	Database string `json:"database"`
	// Version and Fingerprint are the fleet consensus after the update.
	Version     uint64                     `json:"version"`
	Fingerprint string                     `json:"fingerprint"`
	Replicas    map[string]json.RawMessage `json:"replicas"`
	// Skipped lists replicas that were evicted at fan-out time and did NOT
	// receive the update: they serve stale data until restarted against
	// fresh inputs (see OPERATIONS.md, "failure semantics").
	Skipped []string `json:"skipped,omitempty"`
	// Diverged is set when healthy replicas disagree on the resulting
	// fingerprint — the fleet needs operator attention.
	Diverged bool `json:"diverged,omitempty"`
}

// handleUpdate fans a /db/{name}/update body out to every healthy replica
// (every replica holds a full copy of every database, so updates are
// all-or-degraded, not sharded). Outcomes:
//
//   - every healthy replica applied it: 200 with the aggregate (and a
//     divergence flag if fingerprints disagree);
//   - any replica returned 409: 409 relayed with per-replica bodies — the
//     base_version optimistic-concurrency contract, fleet-wide;
//   - any replica failed outright: 502 naming the replica, with the
//     applied/failed split so the operator can reconcile.
func (rt *Router) handleUpdate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rt.metrics.updates.Inc()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		failJSON(w, http.StatusRequestEntityTooLarge, "reading request: %v", err)
		return
	}
	var healthy []*member
	var skipped []string
	for _, m := range rt.members {
		if m.healthy.Load() {
			healthy = append(healthy, m)
		} else {
			skipped = append(skipped, m.url)
		}
	}
	if len(healthy) == 0 {
		failJSON(w, http.StatusServiceUnavailable, "no healthy replicas")
		return
	}

	results := make([]fanResult, len(healthy))
	var wg sync.WaitGroup
	for i, m := range healthy {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			resp, err := rt.do(r.Context(), m, "/db/"+name+"/update", body, r.Header)
			if err != nil {
				results[i] = fanResult{m: m, err: err}
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			results[i] = fanResult{m: m, code: resp.StatusCode, body: b}
		}(i, m)
	}
	wg.Wait()

	var applied, conflicted []fanResult
	var failed []fanResult
	for _, res := range results {
		switch {
		case res.err != nil:
			failed = append(failed, res)
		case res.code == http.StatusOK:
			applied = append(applied, res)
		case res.code == http.StatusConflict:
			conflicted = append(conflicted, res)
		default:
			failed = append(failed, res)
		}
	}

	if len(failed) > 0 {
		rt.metrics.fanoutFailures.Inc()
		detail := func(res fanResult) string {
			if res.err != nil {
				return res.err.Error()
			}
			return fmt.Sprintf("status %d: %s", res.code, strings.TrimSpace(string(res.body)))
		}
		failures := make(map[string]string, len(failed))
		var appliedURLs []string
		for _, res := range failed {
			failures[res.m.url] = detail(res)
		}
		for _, res := range applied {
			appliedURLs = append(appliedURLs, res.m.url)
		}
		sort.Strings(appliedURLs)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"error":   fmt.Sprintf("update fan-out: replica %s: %s", failed[0].m.url, detail(failed[0])),
			"failed":  failures,
			"applied": appliedURLs,
			"skipped": skipped,
		})
		return
	}

	if len(conflicted) > 0 {
		// Optimistic concurrency: at least one replica's current version
		// does not match base_version. Relay the conflict with every
		// replica's own report so the client can reconcile and retry.
		bodies := make(map[string]json.RawMessage, len(results))
		for _, res := range results {
			bodies[res.m.url] = rawOrString(res.body)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"error":    fmt.Sprintf("base_version conflict on %d of %d replicas", len(conflicted), len(results)),
			"replicas": bodies,
		})
		return
	}

	agg := updateAggregate{
		Database: name,
		Replicas: make(map[string]json.RawMessage, len(applied)),
		Skipped:  skipped,
	}
	type upResp struct {
		Version     uint64 `json:"version"`
		Fingerprint string `json:"fingerprint"`
	}
	var first *upResp
	for _, res := range applied {
		agg.Replicas[res.m.url] = rawOrString(res.body)
		var ur upResp
		if err := json.Unmarshal(res.body, &ur); err != nil {
			agg.Diverged = true
			continue
		}
		if first == nil {
			first = &ur
			agg.Version, agg.Fingerprint = ur.Version, ur.Fingerprint
		} else if ur.Fingerprint != first.Fingerprint || ur.Version != first.Version {
			agg.Diverged = true
		}
	}
	if agg.Diverged {
		rt.metrics.divergence.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(agg)
}

// rawOrString embeds upstream bytes as raw JSON when they parse, else as a
// JSON string, so aggregate responses stay valid either way.
func rawOrString(b []byte) json.RawMessage {
	if json.Valid(b) && len(bytes.TrimSpace(b)) > 0 {
		return json.RawMessage(b)
	}
	quoted, _ := json.Marshal(string(b))
	return json.RawMessage(quoted)
}

// handleStats scatter-gathers every healthy replica's /stats and sums the
// numeric counters into a fleet aggregate, alongside each replica's raw
// report and the router's own counters.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	fleet := make(map[string]any)
	replicas := make(map[string]any)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range rt.members {
		if !m.healthy.Load() {
			replicas[m.url] = map[string]string{"error": "evicted"}
			continue
		}
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, m.url+"/stats", nil)
			if err != nil {
				return
			}
			resp, err := rt.client.Do(req)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				replicas[m.url] = map[string]string{"error": err.Error()}
				return
			}
			defer resp.Body.Close()
			var stats map[string]any
			if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&stats); err != nil {
				replicas[m.url] = map[string]string{"error": err.Error()}
				return
			}
			replicas[m.url] = stats
			sumInto(fleet, stats)
		}(m)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"fleet":    fleet,
		"replicas": replicas,
		"router":   rt.statsSnapshot(),
	})
}

// sumInto folds src into acc: numbers add, nested objects recurse, and any
// other type keeps the first value seen (names, booleans).
func sumInto(acc map[string]any, src map[string]any) {
	for k, v := range src {
		switch sv := v.(type) {
		case float64:
			if av, ok := acc[k].(float64); ok {
				acc[k] = av + sv
			} else {
				acc[k] = sv
			}
		case map[string]any:
			am, ok := acc[k].(map[string]any)
			if !ok {
				am = make(map[string]any)
				acc[k] = am
			}
			sumInto(am, sv)
		default:
			if _, seen := acc[k]; !seen {
				acc[k] = v
			}
		}
	}
}

// handleMetrics renders the router's own bvqrouter_* families followed by
// the fleet aggregate of every healthy replica's bvqd_* families: samples
// with identical name and labels are summed across replicas (counters and
// gauges add; histogram buckets add bucket-wise, which is exact because
// every replica uses the same bounds).
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = rt.metrics.registry.WriteTo(w)

	type aggFamily struct {
		meta    metrics.Family
		order   []string // sample keys in first-seen order
		samples map[string]*metrics.Sample
	}
	var famOrder []string
	fams := make(map[string]*aggFamily)
	for _, m := range rt.members {
		if !m.healthy.Load() {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, m.url+"/metrics", nil)
		if err != nil {
			continue
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			rt.metrics.scrapeFailures.Inc()
			continue
		}
		parsed, err := metrics.ParseText(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if err != nil {
			rt.metrics.scrapeFailures.Inc()
			continue
		}
		for _, f := range parsed {
			af, ok := fams[f.Name]
			if !ok {
				af = &aggFamily{meta: f, samples: make(map[string]*metrics.Sample)}
				fams[f.Name] = af
				famOrder = append(famOrder, f.Name)
			}
			for _, s := range f.Samples {
				key := s.Name + "\x00" + labelKey(s.Labels)
				if agg, ok := af.samples[key]; ok {
					agg.Value += s.Value
				} else {
					cp := s
					af.samples[key] = &cp
					af.order = append(af.order, key)
				}
			}
		}
	}
	for _, name := range famOrder {
		af := fams[name]
		fmt.Fprintf(w, "# HELP %s %s\n", name, af.meta.Help)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, af.meta.Type)
		for _, key := range af.order {
			s := af.samples[key]
			fmt.Fprintf(w, "%s%s %s\n", s.Name, formatLabels(s.Labels), formatValue(s.Value))
		}
	}
}

func labelKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(',')
	}
	return b.String()
}

func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escaping (backslash, quote, \n) matches the Prometheus text
		// format for every character these labels can contain.
		fmt.Fprintf(&b, `%s=%q`, k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case v == float64(int64(v)):
		return strconv.FormatInt(int64(v), 10)
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// handleHealthz reports router liveness: healthy while at least one
// replica is serving.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	healthy := rt.healthyCount()
	code := http.StatusOK
	if healthy == 0 {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":     map[bool]string{true: "ok", false: "no healthy replicas"}[healthy > 0],
		"healthy":    healthy,
		"configured": len(rt.members),
	})
}
