package router

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config configures a Router.
type Config struct {
	// Replicas lists the bvqd base URLs (e.g. http://127.0.0.1:8081). At
	// least one is required; trailing slashes are trimmed.
	Replicas []string
	// Vnodes is the number of ring points per replica (0: DefaultVnodes).
	Vnodes int
	// Retries is how many extra passes over the preference list a request
	// makes when every candidate is cooling down after a shed (0: one
	// extra pass).
	Retries int
	// MaxRetryWait caps how long one request waits for the earliest
	// cooldown to expire before giving up and relaying the shed response
	// (0: 3s; negative: never wait).
	MaxRetryWait time.Duration
	// HedgeDelay, when positive, arms hedged retries for idempotent JSON
	// reads: if the preferred replica has not answered within this delay, a
	// second identical request races to the next replica and the first
	// response wins. Streams are never hedged — their first byte commits.
	HedgeDelay time.Duration
	// HealthInterval is the /healthz probe period (0: disables the health
	// loop — forwarding errors still evict members).
	HealthInterval time.Duration
	// HealthFailures is the consecutive-probe-failure threshold for
	// evicting a member from the ring (0: 2).
	HealthFailures int
	// Client is the upstream HTTP client (nil: a client with sensible
	// timeouts for intra-fleet traffic).
	Client *http.Client
	Logger *slog.Logger
}

// member is one configured replica and its mutable routing state.
type member struct {
	url     string
	healthy atomic.Bool
	// coolUntil is the unix-nano deadline of the member's current
	// Retry-After cooldown; 0 when serving.
	coolUntil atomic.Int64
	// probeFails counts consecutive health-probe failures; touched only by
	// the health loop goroutine.
	probeFails int
}

// cooling returns how much of the member's shed cooldown remains.
func (m *member) cooling() time.Duration {
	until := m.coolUntil.Load()
	if until == 0 {
		return 0
	}
	d := time.Duration(until - time.Now().UnixNano())
	if d < 0 {
		return 0
	}
	return d
}

// Router fans one client-facing listener out over a bvqd fleet. Create
// with New, serve via Handler, stop the health loop with Close.
type Router struct {
	members      []*member // configuration order; membership is fixed
	byURL        map[string]*member
	ring         atomic.Pointer[Ring]
	ringMu       sync.Mutex // serializes rebuilds
	vnodes       int
	retries      int
	maxRetryWait time.Duration
	hedgeDelay   time.Duration
	client       *http.Client
	logger       *slog.Logger
	metrics      *routerMetrics
	reqSeq       atomic.Int64

	healthStop chan struct{}
	healthDone chan struct{}
}

// New validates cfg and returns a running Router (its health loop started
// when HealthInterval > 0). All replicas start healthy; the first failed
// probe round or forwarding error corrects that.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("router: no replicas configured")
	}
	rt := &Router{
		byURL:        make(map[string]*member, len(cfg.Replicas)),
		vnodes:       cfg.Vnodes,
		retries:      cfg.Retries,
		maxRetryWait: cfg.MaxRetryWait,
		hedgeDelay:   cfg.HedgeDelay,
		client:       cfg.Client,
		logger:       cfg.Logger,
		healthStop:   make(chan struct{}),
		healthDone:   make(chan struct{}),
	}
	if rt.retries <= 0 {
		rt.retries = 1
	}
	if rt.maxRetryWait == 0 {
		rt.maxRetryWait = 3 * time.Second
	}
	if rt.client == nil {
		rt.client = &http.Client{Timeout: 5 * time.Minute}
	}
	if rt.logger == nil {
		rt.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	for _, raw := range cfg.Replicas {
		u := strings.TrimRight(raw, "/")
		if u == "" {
			return nil, fmt.Errorf("router: empty replica URL")
		}
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			u = "http://" + u
		}
		if _, dup := rt.byURL[u]; dup {
			return nil, fmt.Errorf("router: duplicate replica %q", u)
		}
		m := &member{url: u}
		m.healthy.Store(true)
		rt.members = append(rt.members, m)
		rt.byURL[u] = m
	}
	rt.rebuild()
	rt.metrics = newRouterMetrics(rt)
	interval := cfg.HealthInterval
	threshold := cfg.HealthFailures
	if threshold <= 0 {
		threshold = 2
	}
	if interval > 0 {
		go rt.healthLoop(interval, threshold)
	} else {
		close(rt.healthDone)
	}
	return rt, nil
}

// Close stops the health loop. In-flight requests are unaffected.
func (rt *Router) Close() {
	select {
	case <-rt.healthStop:
	default:
		close(rt.healthStop)
	}
	<-rt.healthDone
}

// rebuild recomputes the ring from the currently healthy member set.
func (rt *Router) rebuild() {
	rt.ringMu.Lock()
	defer rt.ringMu.Unlock()
	var names []string
	for _, m := range rt.members {
		if m.healthy.Load() {
			names = append(names, m.url)
		}
	}
	rt.ring.Store(NewRing(rt.vnodes, names))
}

// markDown evicts a member (forwarding saw a transport error, or the
// health loop hit its failure threshold) and rebalances the ring.
func (rt *Router) markDown(m *member, why error) {
	if m.healthy.CompareAndSwap(true, false) {
		rt.metrics.evictions.Inc()
		rt.logger.LogAttrs(context.Background(), slog.LevelWarn, "replica evicted",
			slog.String("replica", m.url), slog.Any("error", why))
		rt.rebuild()
	}
}

// markUp readmits a member after a successful health probe.
func (rt *Router) markUp(m *member) {
	if m.healthy.CompareAndSwap(false, true) {
		m.coolUntil.Store(0)
		rt.logger.LogAttrs(context.Background(), slog.LevelInfo, "replica readmitted",
			slog.String("replica", m.url))
		rt.rebuild()
	}
}

func (rt *Router) healthyCount() int64 {
	var n int64
	for _, m := range rt.members {
		if m.healthy.Load() {
			n++
		}
	}
	return n
}

// candidates resolves the full preference list for key against the current
// ring, as live member handles.
func (rt *Router) candidates(key string) []*member {
	ring := rt.ring.Load()
	var out []*member
	for _, url := range ring.Lookup(key, 0) {
		if m := rt.byURL[url]; m != nil {
			out = append(out, m)
		}
	}
	return out
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", rt.handleQuery)
	mux.HandleFunc("POST /db/{name}/update", rt.handleUpdate)
	mux.HandleFunc("GET /stats", rt.handleStats)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	return mux
}

// failJSON writes a router-originated error response.
func failJSON(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// copyUpstreamHeaders forwards the client headers a replica cares about:
// content negotiation and W3C trace context (so replica traces stitch into
// the caller's), never hop-by-hop headers.
func copyUpstreamHeaders(dst http.Header, src http.Header) {
	for _, k := range []string{"Content-Type", "Accept", "Traceparent", "Tracestate", "X-Request-Id"} {
		if v := src.Get(k); v != "" {
			dst.Set(k, v)
		}
	}
	if dst.Get("Content-Type") == "" {
		dst.Set("Content-Type", "application/json")
	}
}

// queryProbe is the slice of a /query body the router must understand to
// route it; everything else passes through opaquely.
type queryProbe struct {
	Database string `json:"database"`
	Query    string `json:"query"`
	Stream   bool   `json:"stream"`
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		failJSON(w, http.StatusRequestEntityTooLarge, "reading request: %v", err)
		return
	}
	var probe queryProbe
	if err := json.Unmarshal(body, &probe); err != nil {
		failJSON(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	route := "query"
	if probe.Stream {
		route = "stream"
	}
	rt.metrics.requests.With(route).Inc()
	cands := rt.candidates(QueryKey(probe.Database, probe.Query))
	if len(cands) == 0 {
		rt.metrics.unrouted.Inc()
		failJSON(w, http.StatusServiceUnavailable, "no healthy replicas")
		return
	}
	if probe.Stream {
		rt.forwardStream(w, r, body, cands)
	} else {
		rt.forwardJSON(w, r, body, cands)
	}
	rt.metrics.latency.With(route).Observe(time.Since(start).Seconds())
}

// do issues one upstream POST. A transport error evicts the member.
func (rt *Router) do(ctx context.Context, m *member, path string, body []byte, hdr http.Header) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.url+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	copyUpstreamHeaders(req.Header, hdr)
	resp, err := rt.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			rt.markDown(m, err)
		}
		return nil, err
	}
	rt.metrics.proxied.With(m.url).Inc()
	return resp, nil
}

// coolFromRetryAfter parks a member for the duration the replica asked for
// (its Retry-After is already jittered server-side; 1s when unparseable).
func coolFromRetryAfter(m *member, resp *http.Response) {
	secs, err := strconv.ParseInt(resp.Header.Get("Retry-After"), 10, 64)
	if err != nil || secs < 0 {
		secs = 1
	}
	m.coolUntil.Store(time.Now().Add(time.Duration(secs) * time.Second).UnixNano())
}

// cancelBody ties an upstream request context to its response body: the
// context may only be cancelled once the caller is done streaming the body,
// so Close carries the cancel.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// hedgedDo races prim against backup: backup launches only if prim has not
// responded within the hedge delay (or died before it). The first
// transport-level success wins, whatever its status code — a 429 is an
// answer, handled by the caller — and the loser is cancelled mid-flight
// and reaped in the background. backup == nil degrades to a plain do.
func (rt *Router) hedgedDo(ctx context.Context, prim, backup *member, path string, body []byte, hdr http.Header) (*member, *http.Response, error) {
	if backup == nil || rt.hedgeDelay <= 0 {
		resp, err := rt.do(ctx, prim, path, body, hdr)
		return prim, resp, err
	}
	type outcome struct {
		m    *member
		resp *http.Response
		err  error
	}
	ch := make(chan outcome, 2)
	pctx, pcancel := context.WithCancel(ctx)
	bctx, bcancel := context.WithCancel(ctx)
	run := func(c context.Context, m *member) {
		resp, err := rt.do(c, m, path, body, hdr)
		ch <- outcome{m: m, resp: resp, err: err}
	}
	go run(pctx, prim)
	launched, outstanding := 1, 1
	timer := time.NewTimer(rt.hedgeDelay)
	defer timer.Stop()
	hedge := func() {
		rt.metrics.hedges.Inc()
		go run(bctx, backup)
		launched, outstanding = 2, outstanding+1
	}
	reap := func(n int) {
		if n > 0 {
			go func() {
				for i := 0; i < n; i++ {
					if o := <-ch; o.resp != nil {
						_, _ = io.Copy(io.Discard, o.resp.Body)
						o.resp.Body.Close()
					}
				}
			}()
		}
	}
	var firstErr error
	for {
		select {
		case <-timer.C:
			if launched == 1 {
				hedge()
			}
		case o := <-ch:
			outstanding--
			if o.err != nil {
				if firstErr == nil {
					firstErr = o.err
				}
				if launched == 1 {
					hedge() // primary died before the hedge timer fired
					continue
				}
				if outstanding == 0 {
					pcancel()
					bcancel()
					return prim, nil, firstErr
				}
				continue
			}
			// Winner: cancel the loser mid-flight (its do sees a cancelled
			// context, so it is not evicted for losing the race) and defer
			// the winner's own cancel to its body Close.
			winCancel := pcancel
			if o.m == prim {
				bcancel()
			} else {
				winCancel = bcancel
				pcancel()
				rt.metrics.hedgeWins.Inc()
			}
			reap(outstanding)
			o.resp.Body = &cancelBody{ReadCloser: o.resp.Body, cancel: winCancel}
			return o.m, o.resp, nil
		case <-ctx.Done():
			pcancel()
			bcancel()
			reap(outstanding)
			return prim, nil, ctx.Err()
		}
	}
}

// relay copies an upstream response to the client, tagging which replica
// served it.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, m *member) {
	defer resp.Body.Close()
	for _, k := range []string{"Content-Type", "X-Request-Id", "Retry-After"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.Header().Set("X-Bvqrouter-Replica", m.url)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// shedCapture is a fully read 429 kept as the answer of last resort when
// every replica sheds.
type shedCapture struct {
	m      *member
	header http.Header
	body   []byte
}

// forwardJSON walks the preference list with per-replica cooldowns,
// hedging, and bounded waiting for the earliest cooldown to expire. The
// first non-shed response is relayed verbatim (replica errors are
// authoritative: a 400 or 504 retried elsewhere would give the same
// answer). If every pass sheds, the last 429 is relayed so the client sees
// the fleet's own backpressure contract.
func (rt *Router) forwardJSON(w http.ResponseWriter, r *http.Request, body []byte, cands []*member) {
	ctx := r.Context()
	var shed *shedCapture
	for pass := 0; pass <= rt.retries; pass++ {
		wait := time.Duration(-1)
		shedThisPass := false
		for i := 0; i < len(cands); i++ {
			m := cands[i]
			if !m.healthy.Load() {
				continue
			}
			if d := m.cooling(); d > 0 {
				if wait < 0 || d < wait {
					wait = d
				}
				continue
			}
			var backup *member
			for j := i + 1; j < len(cands); j++ {
				if cands[j].healthy.Load() && cands[j].cooling() == 0 {
					backup = cands[j]
					break
				}
			}
			if pass > 0 || i > 0 {
				rt.metrics.retries.Inc()
			}
			served, resp, err := rt.hedgedDo(ctx, m, backup, "/query", body, r.Header)
			if err != nil {
				if ctx.Err() != nil {
					return // client gone
				}
				continue // members already evicted; move down the list
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				coolFromRetryAfter(served, resp)
				capBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
				resp.Body.Close()
				shed = &shedCapture{m: served, header: resp.Header, body: capBody}
				shedThisPass = true
				continue
			}
			rt.relay(w, resp, served)
			return
		}
		// Another pass is worth it only if something shed this pass or a
		// cooldown is still ticking — and only if the wait fits the cap.
		if !shedThisPass && wait < 0 {
			break
		}
		if wait > 0 && (rt.maxRetryWait < 0 || wait > rt.maxRetryWait) {
			break
		}
		if wait > 0 {
			select {
			case <-time.After(wait + time.Millisecond):
			case <-ctx.Done():
				return
			}
		}
	}
	if shed != nil {
		rt.metrics.shedRelays.Inc()
		for _, k := range []string{"Content-Type", "X-Request-Id", "Retry-After"} {
			if v := shed.header.Get(k); v != "" {
				w.Header().Set(k, v)
			}
		}
		w.Header().Set("X-Bvqrouter-Replica", shed.m.url)
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write(shed.body)
		return
	}
	rt.metrics.unrouted.Inc()
	failJSON(w, http.StatusBadGateway, "no replica could serve the query (tried %d)", len(cands))
}

// forwardStream relays an NDJSON stream byte-for-byte. Pre-first-byte
// failures (transport errors, sheds) walk the preference list exactly like
// JSON requests; once the upstream 200 header is relayed the stream is
// committed to one replica, and an upstream death mid-stream is repaired
// by appending the error trailer the contract promises — the downstream
// client must never have to distinguish truncation from completion on its
// own.
func (rt *Router) forwardStream(w http.ResponseWriter, r *http.Request, body []byte, cands []*member) {
	ctx := r.Context()
	var shed *shedCapture
	var resp *http.Response
	var served *member
	for pass := 0; pass <= rt.retries && resp == nil; pass++ {
		wait := time.Duration(-1)
		shedThisPass := false
		for i := 0; i < len(cands); i++ {
			m := cands[i]
			if !m.healthy.Load() {
				continue
			}
			if d := m.cooling(); d > 0 {
				if wait < 0 || d < wait {
					wait = d
				}
				continue
			}
			if pass > 0 || i > 0 {
				rt.metrics.retries.Inc()
			}
			up, err := rt.do(ctx, m, "/query", body, r.Header)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				continue
			}
			if up.StatusCode == http.StatusTooManyRequests {
				coolFromRetryAfter(m, up)
				capBody, _ := io.ReadAll(io.LimitReader(up.Body, 1<<16))
				up.Body.Close()
				shed = &shedCapture{m: m, header: up.Header, body: capBody}
				shedThisPass = true
				continue
			}
			resp, served = up, m
			break
		}
		if resp != nil {
			break
		}
		if !shedThisPass && wait < 0 {
			break
		}
		if wait > 0 && (rt.maxRetryWait < 0 || wait > rt.maxRetryWait) {
			break
		}
		if wait > 0 {
			select {
			case <-time.After(wait + time.Millisecond):
			case <-ctx.Done():
				return
			}
		}
	}
	if resp == nil {
		if shed != nil {
			rt.metrics.shedRelays.Inc()
			for _, k := range []string{"Content-Type", "X-Request-Id", "Retry-After"} {
				if v := shed.header.Get(k); v != "" {
					w.Header().Set(k, v)
				}
			}
			w.Header().Set("X-Bvqrouter-Replica", shed.m.url)
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write(shed.body)
			return
		}
		rt.metrics.unrouted.Inc()
		failJSON(w, http.StatusBadGateway, "no replica could serve the stream (tried %d)", len(cands))
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Pre-stream JSON error from the replica: authoritative, relay.
		rt.relay(w, resp, served)
		return
	}
	for _, k := range []string{"Content-Type", "X-Request-Id"} {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.Header().Set("X-Bvqrouter-Replica", served.url)
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	br := bufio.NewReaderSize(resp.Body, 64<<10)
	var lastLine []byte
	endedMidLine := false
	var readErr error
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			if _, werr := w.Write(line); werr != nil {
				return // downstream client gone; nothing to repair
			}
			if flusher != nil {
				flusher.Flush()
			}
			endedMidLine = line[len(line)-1] != '\n'
			lastLine = append(lastLine[:0], line...)
		}
		if err != nil {
			if err != io.EOF {
				readErr = err
			}
			break
		}
	}
	trimmed := bytes.TrimSpace(lastLine)
	sawTrailer := !endedMidLine && len(trimmed) > 0 && trimmed[0] == '{' &&
		bytes.Contains(trimmed, []byte(`"trailer":true`))
	if readErr == nil && sawTrailer {
		return // clean end: the replica's own trailer closed the stream
	}
	// The upstream died mid-stream without its trailer (crash, connection
	// cut). Repair the framing so the client still gets the promised
	// truncation marker, and treat the member as suspect.
	rt.metrics.streamRepairs.Inc()
	if readErr != nil {
		rt.markDown(served, readErr)
	}
	why := "upstream ended the stream without a trailer"
	if readErr != nil {
		why = readErr.Error()
	}
	if endedMidLine {
		_, _ = io.WriteString(w, "\n")
	}
	trailer := map[string]any{
		"trailer": true,
		"error":   fmt.Sprintf("bvqrouter: replica %s cut the stream mid-answer: %s", served.url, why),
	}
	line, _ := json.Marshal(trailer)
	_, _ = w.Write(append(line, '\n'))
	if flusher != nil {
		flusher.Flush()
	}
}

// sortedURLs returns member URLs in configuration order (stable output for
// responses and tests).
func (rt *Router) sortedURLs(ms []*member) []string {
	out := make([]string, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.url)
	}
	sort.Strings(out)
	return out
}
