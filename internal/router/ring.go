// Package router implements the bvqrouter front tier: a consistent-hash
// router that spreads /query load across a fleet of bvqd replicas, fans
// /db/{name}/update out to every replica, scatter-gathers /stats and
// /metrics into fleet aggregates, and turns the single-node admission
// contract (429 + Retry-After) into fleet-level retry, backoff and hedging.
//
// Every replica serves full copies of every database — the ring shards
// *queries*, not data. Routing on (database, query text) sends repeats of
// the same query to the same replica, so each replica's result cache and
// churn index warm on a stable slice of the workload instead of the whole
// mix diluted N ways.
package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the number of ring points per member. 128 keeps the
// per-member load imbalance in the low single-digit percent range while
// the ring stays small enough to rebuild on every membership change.
const DefaultVnodes = 128

// Ring is an immutable consistent-hash ring over member names. Build one
// with NewRing; on membership change, build a new Ring from the new member
// set — construction is deterministic, so two routers configured with the
// same members agree on every assignment, and removing a member only moves
// the keys that member owned (minimal movement).
type Ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring with vnodes points per member (vnodes <= 0 means
// DefaultVnodes). Member order does not matter; the ring depends only on
// the set.
func NewRing(vnodes int, members []string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{points: make([]ringPoint, 0, vnodes*len(members))}
	for _, m := range members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", m, v)), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical point hashes across members are astronomically rare but
		// must tie-break deterministically for cross-router agreement.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Lookup returns up to n distinct members in preference order for key: the
// first owns the key; the rest are the fallbacks a router walks when the
// owner sheds or fails. n <= 0 returns every member, in preference order.
func (r *Ring) Lookup(key string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var out []string
	seen := make(map[string]bool)
	for range r.points {
		if i == len(r.points) {
			i = 0
		}
		m := r.points[i].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
			if n > 0 && len(out) == n {
				break
			}
		}
		i++
	}
	return out
}

// Owner returns the single preferred member for key ("" on an empty ring).
func (r *Ring) Owner(key string) string {
	own := r.Lookup(key, 1)
	if len(own) == 0 {
		return ""
	}
	return own[0]
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// QueryKey is the ring key for one query: the database name and the query
// text. Sharding on both gives result-cache affinity — the same query on
// the same database always lands on the same healthy replica.
func QueryKey(database, query string) string {
	return database + "\x00" + query
}
