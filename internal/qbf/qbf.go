// Package qbf implements quantified Boolean formulas, a direct solver, and
// the Theorem 4.6 reduction showing that the expression complexity of PFPᵏ
// is PSPACE-hard: QBF validity reduces to evaluating a two-variable
// partial-fixpoint query over the fixed database B₀ = ({0,1}; P = {0}).
//
// The paper gives the idea — "a relation variable Xᵢ being empty or
// nonempty corresponds to the Boolean variable Yᵢ being false or true; by
// iterating through all possible assignments to the relation variables, the
// query simulates going through all truth assignments" — and leaves the
// construction to the reader. Ours nests one PFP² operator per quantifier,
// over a binary marker relation Wᵢ ⊆ {0,1}² with four distinguished points:
//
//	m₀ = (0,0)  "false branch visited"   (also: Yᵢ reads true once present)
//	m₁ = (1,0)  "true branch visited"
//	r₀ = (0,1)  "false branch succeeded"
//	r₁ = (1,1)  "true branch succeeded"
//
// The stage operator θᵢ always emits m₀; emits m₁ once Wᵢ is nonempty;
// carries r-bits; and, in the transition where the next branch is being
// visited, evaluates the rest of the formula ψ_{i+1} (which reads Yᵢ as
// "m₀ ∈ Wᵢ") and stores the result on the branch's r-bit:
//
//	∅  →  {m₀} ∪ {r₀ | ψ(Yᵢ=false)}  →  {m₀,m₁} ∪ {r₀?, r₁ | ψ(Yᵢ=true)}
//
// after which the sequence is constant, so the partial fixpoint always
// exists. Both r-bits have second coordinate 1 and are distinguished by the
// first, so ∃Yᵢ reads "∃x∃y (lim(x,y) ∧ ¬P(y))" and ∀Yᵢ reads
// "∀x∃y (lim(x,y) ∧ ¬P(y))" — one occurrence of the fixpoint each, keeping
// the whole query linear in the number of quantifiers.
package qbf

import (
	"fmt"
	"math/rand"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/prop"
)

// Quantifier is one prefix entry.
type Quantifier struct {
	Forall bool
	Var    int
}

// Instance is a prenex quantified Boolean formula.
type Instance struct {
	Prefix []Quantifier
	Matrix prop.Formula
}

// Validate checks that every matrix variable is quantified exactly once.
func (in *Instance) Validate() error {
	seen := make(map[int]bool)
	for _, q := range in.Prefix {
		if q.Var <= 0 {
			return fmt.Errorf("qbf: variable %d not positive", q.Var)
		}
		if seen[q.Var] {
			return fmt.Errorf("qbf: variable %d quantified twice", q.Var)
		}
		seen[q.Var] = true
	}
	var unbound func(prop.Formula) error
	unbound = func(f prop.Formula) error {
		switch g := f.(type) {
		case prop.Var:
			if !seen[int(g)] {
				return fmt.Errorf("qbf: matrix variable %d not quantified", int(g))
			}
		case prop.Not:
			return unbound(g.F)
		case prop.And:
			if err := unbound(g.L); err != nil {
				return err
			}
			return unbound(g.R)
		case prop.Or:
			if err := unbound(g.L); err != nil {
				return err
			}
			return unbound(g.R)
		}
		return nil
	}
	return unbound(in.Matrix)
}

// Solve decides validity by direct recursion over the prefix.
func (in *Instance) Solve() (bool, error) {
	if err := in.Validate(); err != nil {
		return false, err
	}
	n := 0
	for _, q := range in.Prefix {
		if q.Var > n {
			n = q.Var
		}
	}
	if m := prop.MaxVar(in.Matrix); m > n {
		n = m
	}
	assign := make([]bool, n+1)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(in.Prefix) {
			return prop.Eval(in.Matrix, assign)
		}
		q := in.Prefix[i]
		assign[q.Var] = false
		f := rec(i + 1)
		assign[q.Var] = true
		t := rec(i + 1)
		if q.Forall {
			return f && t
		}
		return f || t
	}
	return rec(0), nil
}

func (in *Instance) String() string {
	s := ""
	for _, q := range in.Prefix {
		if q.Forall {
			s += fmt.Sprintf("∀p%d ", q.Var)
		} else {
			s += fmt.Sprintf("∃p%d ", q.Var)
		}
	}
	return s + in.Matrix.String()
}

// FixedDatabase returns the Theorem 4.6 database B₀ = ({0,1}; P = {0}).
// It is the same for every instance — that is the point of an
// expression-complexity lower bound.
func FixedDatabase() *database.Database {
	return database.NewBuilder().
		Domain(0, 1).
		Relation("P", 1).
		Add("P", 0).
		MustBuild()
}

const (
	vx = logic.Var("x")
	vy = logic.Var("y")
)

// point formulas over B₀: P holds of 0 only.
func m0At() logic.Formula { return logic.And(logic.R("P", vx), logic.R("P", vy)) }
func m1At() logic.Formula { return logic.And(logic.Neg(logic.R("P", vx)), logic.R("P", vy)) }
func r0At() logic.Formula {
	return logic.And(logic.R("P", vx), logic.Neg(logic.R("P", vy)))
}
func r1At() logic.Formula {
	return logic.And(logic.Neg(logic.R("P", vx)), logic.Neg(logic.R("P", vy)))
}

// has builds ∃x∃y (W(x,y) ∧ point(x,y)).
func has(w string, point logic.Formula) logic.Formula {
	return logic.Exists(logic.And(logic.R(w, vx, vy), point), vx, vy)
}

func nonempty(w string) logic.Formula {
	return logic.Exists(logic.R(w, vx, vy), vx, vy)
}

// wRel names the marker relation of quantifier level i.
func wRel(i int) string { return fmt.Sprintf("W%d", i) }

// ToPFP builds the PFP² query (over FixedDatabase) that holds iff the
// instance is valid. The query's width is 2 and its size is linear in the
// instance.
func ToPFP(in *Instance) (logic.Query, error) {
	if err := in.Validate(); err != nil {
		return logic.Query{}, err
	}
	body, err := levelFormula(in, 0)
	if err != nil {
		return logic.Query{}, err
	}
	return logic.NewQuery(nil, body)
}

// levelFormula builds ψ_{i+1}: the formula deciding the quantifier suffix
// starting at prefix position i, given that the marker relations of outer
// levels are in scope.
func levelFormula(in *Instance, i int) (logic.Formula, error) {
	if i == len(in.Prefix) {
		return matrixFormula(in)
	}
	q := in.Prefix[i]
	w := wRel(i)
	inner, err := levelFormula(in, i+1)
	if err != nil {
		return nil, err
	}
	// The stage operator θ (see the package comment):
	//   m₀(x,y)
	// ∨ (m₁(x,y) ∧ nonempty(W))
	// ∨ (r₀(x,y) ∧ hasR₀(W)) ∨ (r₁(x,y) ∧ hasR₁(W))          — carry
	// ∨ (((r₀(x,y) ∧ ¬nonempty(W)) ∨ (r₁(x,y) ∧ oneBranch(W))) ∧ ψ)
	oneBranch := logic.And(has(w, m0At()), logic.Neg(has(w, m1At())))
	theta := logic.Or(
		m0At(),
		logic.And(m1At(), nonempty(w)),
		logic.And(r0At(), has(w, r0At())),
		logic.And(r1At(), has(w, r1At())),
		logic.And(
			logic.Or(
				logic.And(r0At(), logic.Neg(nonempty(w))),
				logic.And(r1At(), oneBranch)),
			inner))
	fix := logic.Pfp(w, []logic.Var{vx, vy}, theta, vx, vy)
	// Read the answer off the limit: the r-bits are exactly the points with
	// ¬P(y); ∃ needs one of them, ∀ needs both — and "both" is ∀x∃y.
	if q.Forall {
		return logic.Forall(logic.Exists(logic.And(fix, logic.Neg(logic.R("P", vy))), vy), vx), nil
	}
	return logic.Exists(logic.And(fix, logic.Neg(logic.R("P", vy))), vx, vy), nil
}

// matrixFormula translates the propositional matrix: variable Yᵢ reads
// "m₀ ∈ Wᵢ" from its quantifier's marker relation.
func matrixFormula(in *Instance) (logic.Formula, error) {
	level := make(map[int]int, len(in.Prefix))
	for i, q := range in.Prefix {
		level[q.Var] = i
	}
	var tr func(prop.Formula) (logic.Formula, error)
	tr = func(f prop.Formula) (logic.Formula, error) {
		switch g := f.(type) {
		case prop.Var:
			li, ok := level[int(g)]
			if !ok {
				return nil, fmt.Errorf("qbf: matrix variable %d not quantified", int(g))
			}
			return has(wRel(li), m0At()), nil
		case prop.Const:
			return logic.Truth{Value: bool(g)}, nil
		case prop.Not:
			sub, err := tr(g.F)
			if err != nil {
				return nil, err
			}
			return logic.Neg(sub), nil
		case prop.And:
			l, err := tr(g.L)
			if err != nil {
				return nil, err
			}
			r, err := tr(g.R)
			if err != nil {
				return nil, err
			}
			return logic.And(l, r), nil
		case prop.Or:
			l, err := tr(g.L)
			if err != nil {
				return nil, err
			}
			r, err := tr(g.R)
			if err != nil {
				return nil, err
			}
			return logic.Or(l, r), nil
		default:
			return nil, fmt.Errorf("qbf: unknown matrix formula %T", f)
		}
	}
	return tr(in.Matrix)
}

// Random generates a random instance with l quantified variables and a
// random matrix of the given depth.
func Random(r *rand.Rand, l, depth int) *Instance {
	in := &Instance{Matrix: prop.Random(r, l, depth)}
	perm := r.Perm(l)
	for _, v := range perm {
		in.Prefix = append(in.Prefix, Quantifier{Forall: r.Intn(2) == 0, Var: v + 1})
	}
	return in
}
