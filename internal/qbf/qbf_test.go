package qbf

import (
	"math/rand"
	"testing"

	"repro/internal/eval"
	"repro/internal/logic"
	"repro/internal/prop"
)

func exists(v int) Quantifier { return Quantifier{Var: v} }
func forall(v int) Quantifier { return Quantifier{Forall: true, Var: v} }

func TestSolveBasics(t *testing.T) {
	cases := []struct {
		in   *Instance
		want bool
	}{
		// ∃p1. p1
		{&Instance{Prefix: []Quantifier{exists(1)}, Matrix: prop.Var(1)}, true},
		// ∀p1. p1
		{&Instance{Prefix: []Quantifier{forall(1)}, Matrix: prop.Var(1)}, false},
		// ∀p1 ∃p2. p1 ↔ p2 (as (p1∧p2)∨(¬p1∧¬p2))
		{&Instance{
			Prefix: []Quantifier{forall(1), exists(2)},
			Matrix: prop.Or{L: prop.And{L: prop.Var(1), R: prop.Var(2)},
				R: prop.And{L: prop.Not{F: prop.Var(1)}, R: prop.Not{F: prop.Var(2)}}},
		}, true},
		// ∃p2 ∀p1. p1 ↔ p2
		{&Instance{
			Prefix: []Quantifier{exists(2), forall(1)},
			Matrix: prop.Or{L: prop.And{L: prop.Var(1), R: prop.Var(2)},
				R: prop.And{L: prop.Not{F: prop.Var(1)}, R: prop.Not{F: prop.Var(2)}}},
		}, false},
		// Constant matrices.
		{&Instance{Matrix: prop.Const(true)}, true},
		{&Instance{Matrix: prop.Const(false)}, false},
	}
	for _, c := range cases {
		got, err := c.in.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Solve(%s) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []*Instance{
		{Prefix: []Quantifier{exists(0)}, Matrix: prop.Const(true)},
		{Prefix: []Quantifier{exists(1), forall(1)}, Matrix: prop.Var(1)},
		{Matrix: prop.Var(1)}, // unquantified matrix variable
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("invalid instance accepted: %s", in)
		}
	}
}

func TestToPFPWidthSizeFragment(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	in := Random(r, 4, 3)
	q, err := ToPFP(in)
	if err != nil {
		t.Fatal(err)
	}
	if w := q.Width(); w != 2 {
		t.Fatalf("reduction width = %d, want 2", w)
	}
	if fr := logic.Classify(q.Body); fr != logic.FragPFP {
		t.Fatalf("fragment = %v, want PFP", fr)
	}
	// Linear size in the number of quantifiers: compare growth.
	sizeAt := func(l int) int {
		in := &Instance{Matrix: prop.Const(true)}
		for v := 1; v <= l; v++ {
			in.Prefix = append(in.Prefix, exists(v))
		}
		qq, err := ToPFP(in)
		if err != nil {
			t.Fatal(err)
		}
		return logic.Size(qq.Body)
	}
	if sizeAt(6)-sizeAt(4) != sizeAt(4)-sizeAt(2) {
		t.Fatalf("reduction size not linear: %d %d %d", sizeAt(2), sizeAt(4), sizeAt(6))
	}
}

func TestReductionAgreesWithSolverExhaustiveSmall(t *testing.T) {
	// All prefixes over 2 variables with several matrices.
	db := FixedDatabase()
	matrices := []prop.Formula{
		prop.Var(1),
		prop.Not{F: prop.Var(2)},
		prop.And{L: prop.Var(1), R: prop.Var(2)},
		prop.Or{L: prop.Var(1), R: prop.Not{F: prop.Var(2)}},
		prop.Or{L: prop.And{L: prop.Var(1), R: prop.Var(2)},
			R: prop.And{L: prop.Not{F: prop.Var(1)}, R: prop.Not{F: prop.Var(2)}}},
	}
	for _, m := range matrices {
		for _, p1 := range []bool{false, true} {
			for _, p2 := range []bool{false, true} {
				for _, order := range [][2]int{{1, 2}, {2, 1}} {
					in := &Instance{
						Prefix: []Quantifier{
							{Forall: p1, Var: order[0]},
							{Forall: p2, Var: order[1]},
						},
						Matrix: m,
					}
					want, err := in.Solve()
					if err != nil {
						t.Fatal(err)
					}
					q, err := ToPFP(in)
					if err != nil {
						t.Fatal(err)
					}
					ans, err := eval.BottomUp(q, db)
					if err != nil {
						t.Fatalf("BottomUp(%s): %v", in, err)
					}
					got := ans.Len() > 0
					if got != want {
						t.Fatalf("reduction wrong on %s: got %v, want %v", in, got, want)
					}
				}
			}
		}
	}
}

func TestReductionAgreesWithSolverRandom(t *testing.T) {
	db := FixedDatabase()
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		l := 1 + r.Intn(4)
		in := Random(r, l, 3)
		want, err := in.Solve()
		if err != nil {
			t.Fatal(err)
		}
		q, err := ToPFP(in)
		if err != nil {
			t.Fatal(err)
		}
		ans, err := eval.BottomUp(q, db)
		if err != nil {
			t.Fatalf("BottomUp(%s): %v", in, err)
		}
		got := ans.Len() > 0
		if got != want {
			t.Fatalf("reduction wrong on %s: got %v, want %v", in, got, want)
		}
	}
}

func TestReductionUnderBothCycleModes(t *testing.T) {
	db := FixedDatabase()
	r := rand.New(rand.NewSource(23))
	in := Random(r, 3, 3)
	q, err := ToPFP(in)
	if err != nil {
		t.Fatal(err)
	}
	hash, _, err := eval.BottomUpStats(q, db, &eval.Options{PFPCycle: eval.CycleHash})
	if err != nil {
		t.Fatal(err)
	}
	brent, _, err := eval.BottomUpStats(q, db, &eval.Options{PFPCycle: eval.CycleBrent})
	if err != nil {
		t.Fatal(err)
	}
	if !hash.Equal(brent) {
		t.Fatal("cycle modes disagree on QBF reduction")
	}
}

func TestReductionAgreesWithNaive(t *testing.T) {
	// The trusted evaluator confirms the dense evaluator on the reduction.
	db := FixedDatabase()
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 5; trial++ {
		in := Random(r, 2, 2)
		q, err := ToPFP(in)
		if err != nil {
			t.Fatal(err)
		}
		nv, err := eval.Naive(q, db)
		if err != nil {
			t.Fatal(err)
		}
		bu, err := eval.BottomUp(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !nv.Equal(bu) {
			t.Fatalf("naive/bottomup disagree on %s", in)
		}
		want, _ := in.Solve()
		if (nv.Len() > 0) != want {
			t.Fatalf("naive disagrees with solver on %s", in)
		}
	}
}

func TestRandomInstancesQuantifyEachVarOnce(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for i := 0; i < 20; i++ {
		in := Random(r, 5, 3)
		if err := in.Validate(); err != nil {
			t.Fatalf("Random produced invalid instance: %v", err)
		}
		if len(in.Prefix) != 5 {
			t.Fatalf("prefix length %d", len(in.Prefix))
		}
	}
}
