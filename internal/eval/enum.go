package eval

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/database"
	"repro/internal/plan"
	"repro/internal/queryopt"
	"repro/internal/relation"
)

// Enumerator streams a query answer one tuple at a time, in the canonical
// Set.Tuples (lexicographic) order regardless of which backend produced it.
// It is the evaluation stack's iterator API: callers pull tuples instead of
// receiving a materialized Set, so LIMIT-k requests stop the extraction (and
// on the acyclic fast path, the evaluation itself) after k tuples, and
// per-request memory stays proportional to the window plus the engine's
// stage relations rather than to |answer|.
//
// Contract:
//   - Next returns the next tuple; the Tuple is reused across calls, so
//     retain only clones. After false, call Err to distinguish clean
//     exhaustion (nil) from an early stop (context cancellation).
//   - Skip advances past up to n tuples without decoding them where the
//     representation allows (word popcounts on dense bitmaps, an index jump
//     on sparse code blocks) and returns how many were actually skipped.
//   - Count reports the exact full answer cardinality when it is known
//     cheaply (dense popcount, sparse length, materialized sets); ok=false
//     when knowing it would require running the enumeration to the end (the
//     streaming acyclic route).
//   - Close releases engine resources (pooled bitmaps, group state) and is
//     idempotent. Callers must Close every enumerator, on every path.
//
// Enumerators are single-goroutine values, like the relation cursors they
// wrap.
type Enumerator interface {
	Next() (relation.Tuple, bool)
	Skip(n int) int
	Count() (int, bool)
	Err() error
	Close()
}

// ctxCheckEvery bounds how many tuples an enumerator yields between context
// checks: cancellation (client disconnect, server deadline) is noticed
// within this many Next calls.
const ctxCheckEvery = 1024

// cursor is the shape shared by relation.DenseCursor, relation.SparseCursor
// and setCursor.
type cursor interface {
	Next() (relation.Tuple, bool)
	Skip(n int) int
	Count() int
	Close()
}

// cursorEnum adapts a relation cursor into an Enumerator: it meters
// streamed/skipped tuples into Stats and polls the context every
// ctxCheckEvery tuples.
type cursorEnum struct {
	ctx        context.Context
	c          cursor
	stats      *Stats
	err        error
	sinceCheck int
	closed     bool
}

func newCursorEnum(ctx context.Context, c cursor, stats *Stats) *cursorEnum {
	return &cursorEnum{ctx: ctx, c: c, stats: stats}
}

func (e *cursorEnum) Next() (relation.Tuple, bool) {
	if e.err != nil || e.closed {
		return nil, false
	}
	e.sinceCheck++
	if e.sinceCheck >= ctxCheckEvery {
		e.sinceCheck = 0
		if err := checkCtx(e.ctx); err != nil {
			e.err = err
			return nil, false
		}
	}
	t, ok := e.c.Next()
	if !ok {
		return nil, false
	}
	e.stats.addTuplesStreamed(1)
	return t, true
}

func (e *cursorEnum) Skip(n int) int {
	if e.err != nil || e.closed || n <= 0 {
		return 0
	}
	k := e.c.Skip(n)
	e.stats.addTuplesSkipped(int64(k))
	return k
}

func (e *cursorEnum) Count() (int, bool) {
	if e.closed {
		return 0, false
	}
	return e.c.Count(), true
}

func (e *cursorEnum) Err() error { return e.err }

func (e *cursorEnum) Close() {
	if !e.closed {
		e.closed = true
		e.c.Close()
	}
}

// setCursor walks a materialized Set in canonical order. It backs
// NewSetEnumerator — the adapter that gives tree-walking engines and cached
// results the same streaming surface.
type setCursor struct {
	tuples []relation.Tuple
	i      int
}

func (c *setCursor) Next() (relation.Tuple, bool) {
	if c.i >= len(c.tuples) {
		return nil, false
	}
	t := c.tuples[c.i]
	c.i++
	return t, true
}

func (c *setCursor) Skip(n int) int {
	rem := len(c.tuples) - c.i
	if n > rem {
		n = rem
	}
	c.i += n
	return n
}

func (c *setCursor) Count() int { return len(c.tuples) }
func (c *setCursor) Close()     { c.tuples = nil }

// NewSetEnumerator wraps an already-materialized answer Set as an
// Enumerator (sorting its tuples once). This is how cached results serve
// windowed/streaming requests and how the tree-walking engines — which are
// inherently materializing — satisfy the enumeration API. stats may be nil.
func NewSetEnumerator(ctx context.Context, s *relation.Set, stats *Stats) Enumerator {
	return newCursorEnum(ctx, &setCursor{tuples: s.Tuples()}, stats)
}

// yannEnum adapts the queryopt streaming enumerator. Its queryopt.Stats is
// live during enumeration; the adapter folds it into the eval Stats exactly
// once, when enumeration finishes (exhaustion, error or Close) — mirroring
// what tryAcyclicFast reports for a materialized run.
type yannEnum struct {
	ctx    context.Context
	inner  *queryopt.Enum
	stats  *Stats
	qst    *queryopt.Stats
	err    error
	folded bool
	closed bool
}

func (e *yannEnum) fold() {
	if e.folded {
		return
	}
	e.folded = true
	e.stats.addSubformulaEvals(int64(e.qst.Operations))
	e.stats.addTuplesTouched(int64(e.qst.TuplesTouched))
	e.stats.observe(e.qst.MaxIntermediateArity, e.qst.MaxIntermediateTuples)
}

func (e *yannEnum) Next() (relation.Tuple, bool) {
	if e.err != nil || e.closed {
		return nil, false
	}
	t, ok := e.inner.Next()
	if !ok {
		e.err = e.inner.Err()
		e.fold()
		return nil, false
	}
	e.stats.addTuplesStreamed(1)
	return t, true
}

func (e *yannEnum) Skip(n int) int {
	skipped := 0
	for skipped < n {
		if e.err != nil || e.closed {
			break
		}
		if _, ok := e.inner.Next(); !ok {
			e.err = e.inner.Err()
			e.fold()
			break
		}
		skipped++
	}
	e.stats.addTuplesSkipped(int64(skipped))
	return skipped
}

// Count is unknown for the streaming acyclic route: the group decomposition
// delivers answers without ever counting them all.
func (e *yannEnum) Count() (int, bool) { return 0, false }

func (e *yannEnum) Err() error { return e.err }

func (e *yannEnum) Close() {
	if !e.closed {
		e.closed = true
		e.fold()
		e.inner.Close()
	}
}

// EvalPlanEnum evaluates a compiled plan and returns a streaming enumerator
// over the answer, routed by backend exactly like EvalPlanContext:
//
//   - dense routes run the full evaluation, project the root onto the head
//     space word-parallel, and stream by decoding set bits lazily
//     (relation.DenseCursor) — extraction, PR 3's dominant cost on large
//     answers, is deferred and windowed;
//   - the general sparse route streams the materialized head codes directly
//     (relation.SparseCursor), skipping the Set round-trip;
//   - the queryopt-recognized acyclic ∃∧-CQ route streams from the
//     Yannakakis semijoin-reduced relations without building the product at
//     all (queryopt.Enum) — preprocessing linear in the database, answers
//     delivered group by group.
//
// The returned Stats is live while the enumerator runs; read it only after
// Close. Callers must Close the enumerator on every path.
func EvalPlanEnum(ctx context.Context, p *plan.Plan, db *database.Database, opts *Options) (Enumerator, *Stats, error) {
	en, st, _, err := evalPlanEnumRouted(ctx, p, db, opts, false)
	return en, st, err
}

// EvalPlanEnumCapture is EvalPlanEnum capturing maintenance state on
// maintainable dense routes (nil otherwise), so streamed evaluations can
// register cache entries that survive database churn exactly like
// EvalPlanCapture results.
func EvalPlanEnumCapture(ctx context.Context, p *plan.Plan, db *database.Database, opts *Options) (Enumerator, *Stats, *MaintState, error) {
	return evalPlanEnumRouted(ctx, p, db, opts, true)
}

// evalPlanEnumRouted mirrors evalPlanRouted's backend routing (including the
// auto-mode sparse-budget fallback to dense) for the enumeration API.
func evalPlanEnumRouted(ctx context.Context, p *plan.Plan, db *database.Database, opts *Options, capture bool) (Enumerator, *Stats, *MaintState, error) {
	if err := validatePlanRun(ctx, p, db, opts); err != nil {
		return nil, nil, nil, err
	}
	den := p.Density(db.Size(), cardOf(db))
	switch backendOf(opts) {
	case BackendDense:
		return enumPlanDense(ctx, p, db, opts, nil, capture)
	case BackendSparse:
		if !den.SparseOK {
			return nil, nil, nil, fmt.Errorf("eval: sparse backend: %s", den.Blocker)
		}
		en, st, err := enumPlanSparse(ctx, p, db, opts, den)
		return en, st, nil, err
	default:
		if !den.SpaceFeasible {
			if !den.SparseOK {
				return nil, nil, nil, fmt.Errorf("eval: dense space %d^%d exceeds %d bits and sparse evaluation is unavailable: %s",
					db.Size(), len(p.Vars), relation.MaxDenseBits, den.Blocker)
			}
			en, st, err := enumPlanSparse(ctx, p, db, opts, den)
			return en, st, nil, err
		}
		if den.PreferSparse() {
			en, st, err := enumPlanSparse(ctx, p, db, opts, den)
			if err != nil && errors.Is(err, ErrSparseBudget) {
				return enumPlanDense(ctx, p, db, opts, hybridDensity(den), capture)
			}
			return en, st, nil, err
		}
		return enumPlanDense(ctx, p, db, opts, hybridDensity(den), capture)
	}
}

// enumPlanDense runs the dense engine to its head-space denotation and
// wraps it in a lazy bit-decoding cursor. The cursor owns the head Dense:
// Close returns its bitmap to the space pool.
func enumPlanDense(ctx context.Context, p *plan.Plan, db *database.Database, opts *Options, den *plan.Density, capture bool) (Enumerator, *Stats, *MaintState, error) {
	h, st, state, err := evalPlanDenseHead(ctx, p, db, opts, den, nil, capture)
	if err != nil {
		return nil, st, nil, err
	}
	return newCursorEnum(ctx, relation.NewDenseCursor(h, true), st), st, state, nil
}

// enumPlanSparse mirrors evalPlanSparse: the acyclic fast path streams
// through queryopt.Enum; the general sval route materializes the head codes
// (sorted, deduplicated) and streams them without converting to a Set.
func enumPlanSparse(ctx context.Context, p *plan.Plan, db *database.Database, opts *Options, den *plan.Density) (Enumerator, *Stats, error) {
	stats := &Stats{}
	if en, ok, err := tryAcyclicEnum(ctx, p, db, stats); ok {
		return en, stats, err
	}
	r := newSpRun(ctx, p, db, opts, den, stats)
	sv, err := r.evalNode(p.Root)
	if err != nil {
		return nil, stats, err
	}
	out, err := r.materialize(sv, p.HeadAxes)
	if err != nil {
		return nil, stats, err
	}
	return newCursorEnum(ctx, relation.NewSparseCursor(out), stats), stats, nil
}

// tryAcyclicEnum is tryAcyclicFast for the streaming API: acyclic ∃∧-CQs
// are recognized and enumerated from the semijoin-reduced relations with
// per-group delay; anything else falls through (ok=false) to the general
// sparse executor.
func tryAcyclicEnum(ctx context.Context, p *plan.Plan, db *database.Database, stats *Stats) (Enumerator, bool, error) {
	cq, ok := queryopt.FromQuery(p.Query)
	if !ok {
		return nil, false, nil
	}
	inner, qst, err := queryopt.EnumYannakakis(ctx, cq, db)
	if err != nil {
		if errors.Is(err, queryopt.ErrCyclic) {
			return nil, false, nil
		}
		return nil, true, err
	}
	stats.addAcyclicFastPath(1)
	return &yannEnum{ctx: ctx, inner: inner, stats: stats, qst: qst}, true, nil
}
