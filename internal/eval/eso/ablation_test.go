package eso

import (
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/sat"
)

// TestConsistencyAssertionsAreNecessary is the Lemma 3.6 ablation: dropping
// the view-consistency assertions lets the views disagree on overlapping
// cells and flips an unsatisfiable sentence to satisfiable. The design
// choice (quadratic assertion family) is load-bearing, not decorative.
func TestConsistencyAssertionsAreNecessary(t *testing.T) {
	// ∃S ( S(x,x,y) somewhere ∧ ∀x∀y ¬S(x,y,y) ): over a 1-element domain
	// both atoms denote the same cell S(a,a,a), so the sentence is
	// unsatisfiable — but only consistency between the two views knows that.
	f := logic.SOExists(
		logic.And(
			logic.Exists(logic.R("S", "x", "x", "y"), "x", "y"),
			logic.Forall(logic.Neg(logic.R("S", "x", "y", "y")), "x", "y")),
		logic.RelVar{Name: "S", Arity: 3})
	db := database.NewBuilder().Domain(0).MustBuild()

	holds, _, _, err := Holds(f, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if holds {
		t.Fatal("full reduction should report unsatisfiable on the 1-element domain")
	}

	ablated, err := reduceArity(f, false)
	if err != nil {
		t.Fatal(err)
	}
	if ablated.Assertions != 0 {
		t.Fatalf("ablated reduction still has %d assertions", ablated.Assertions)
	}
	g, err := Ground(ablated.Formula, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	cnf, err := g.Circuit.ToCNF(g.Root)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sat.Solve(cnf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SAT {
		t.Fatal("ablation inconclusive: even without assertions the instance is unsatisfiable")
	}
}

func TestAssertionCountQuadraticInPatterns(t *testing.T) {
	// More distinct atom patterns → more assertion pairs; the family is
	// quadratic in the number of patterns (the paper's size bound).
	mk := func(patterns int) int {
		conj := []logic.Formula{logic.Exists(logic.R("S", "x", "x", "y"), "x", "y")}
		pats := [][]logic.Var{
			{"x", "y", "x"}, {"x", "y", "y"}, {"y", "x", "x"}, {"y", "y", "x"},
		}
		for i := 0; i < patterns-1; i++ {
			conj = append(conj,
				logic.Forall(logic.Implies(logic.R("S", pats[i]...), logic.R("E", "x", "y")), "x", "y"))
		}
		f := logic.SOExists(logic.And(conj...), logic.RelVar{Name: "S", Arity: 3})
		red, err := ReduceArity(f)
		if err != nil {
			t.Fatal(err)
		}
		return red.Assertions
	}
	a2, a3, a4 := mk(2), mk(3), mk(4)
	if !(a2 < a3 && a3 < a4) {
		t.Fatalf("assertion counts not growing: %d, %d, %d", a2, a3, a4)
	}
	// Quadratic-ish: second difference positive.
	if (a4 - a3) <= (a3 - a2) {
		t.Logf("assertion growth: %d, %d, %d (differences %d, %d)", a2, a3, a4, a3-a2, a4-a3)
	}
}
