// Package eso evaluates existential second-order queries (ESO, §3.3 of
// Vardi PODS 1995) and implements the Lemma 3.6 arity reduction that makes
// bounded-variable ESO an NP problem:
//
//	Every ESOᵏ formula is equivalent to one in which the quantified
//	relations have arity at most k, at a polynomial size increase.
//
// Each atom S(u₁,…,u_l) of a high-arity quantified relation mentions only
// the k individual variables, so it is replaced by a k-ary "view" predicate
// S⟨u⟩ applied to the canonical variable tuple; consistency assertions then
// force all views of one relation to agree wherever their equality patterns
// overlap. The reduced formula is grounded over the database domain into a
// Boolean circuit (polynomial, by subformula sharing) and handed to the CDCL
// solver in internal/sat — the executable form of Corollary 3.7 (ESOᵏ ∈ NP).
package eso

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/relation"
)

// Reduced is the output of ReduceArity.
type Reduced struct {
	// Formula is the equivalent ESO formula whose quantified relations all
	// have arity ≤ the variable width.
	Formula logic.Formula
	// Views maps each introduced view predicate to the relation and atom
	// pattern it stands for.
	Views map[string]View
	// Assertions is the number of consistency assertions generated.
	Assertions int
}

// View records the meaning of one view predicate: Name(x̄) ≡ Rel(Pattern).
type View struct {
	Rel     string
	Pattern []logic.Var
}

// ReduceArity applies Lemma 3.6 to a prenex ESO formula: second-order
// quantifiers whose arity exceeds the formula's variable width are replaced
// by width-ary view predicates plus consistency assertions. Quantified
// relations already within the width are left untouched. The result is
// equivalent to the input on every database.
func ReduceArity(f logic.Formula) (*Reduced, error) {
	return reduceArity(f, true)
}

// reduceArity optionally omits the consistency assertions — only for the
// ablation tests and benchmarks that demonstrate the assertions are what
// makes the reduction sound (without them the views can disagree on
// overlapping cells, changing answers).
func reduceArity(f logic.Formula, withAssertions bool) (*Reduced, error) {
	var rels []logic.RelVar
	matrix := f
	for {
		so, ok := matrix.(logic.SOQuant)
		if !ok {
			break
		}
		rels = append(rels, logic.RelVar{Name: so.Rel, Arity: so.Arity})
		matrix = so.F
	}
	if logic.Classify(matrix) != logic.FragFO {
		return nil, fmt.Errorf("eso: matrix is not first-order (prenex ESO required)")
	}
	vars := logic.SortedVars(logic.AllVars(f))
	k := len(vars)

	out := &Reduced{Views: make(map[string]View)}
	var newRels []logic.RelVar
	var assertions []logic.Formula
	reduced := matrix

	for _, rv := range rels {
		if rv.Arity <= k {
			newRels = append(newRels, rv)
			continue
		}
		// Collect the distinct atom patterns of this relation in the matrix.
		patterns := collectPatterns(matrix, rv.Name)
		if len(patterns) == 0 {
			// Unused: the quantifier is vacuous; drop it.
			continue
		}
		names := make(map[string]string, len(patterns))
		for i, pat := range patterns {
			names[fmt.Sprint(pat)] = fmt.Sprintf("%s_v%d", rv.Name, i)
		}
		viewName := func(pat []logic.Var) string { return names[fmt.Sprint(pat)] }
		// Introduce one k-ary view per pattern and rewrite every atom of
		// this relation to its pattern's view applied to the canonical
		// variable tuple.
		for _, pat := range patterns {
			name := viewName(pat)
			if _, dup := out.Views[name]; dup {
				continue
			}
			out.Views[name] = View{Rel: rv.Name, Pattern: pat}
			newRels = append(newRels, logic.RelVar{Name: name, Arity: k})
		}
		reduced = rewriteAtoms(reduced, rv.Name, func(args []logic.Var) logic.Formula {
			return logic.Atom{Rel: viewName(args), Args: vars}
		})
		if !withAssertions {
			continue
		}
		// Consistency: for patterns u, w and substitutions σ, τ over the k
		// variables with u∘σ = w∘τ, assert ∀x̄ (S⟨u⟩(σ) ↔ S⟨w⟩(τ)).
		for i, u := range patterns {
			for j := i; j < len(patterns); j++ {
				w := patterns[j]
				forEachSubstPair(vars, func(sigma, tau []logic.Var) {
					if !composedEqual(u, sigma, w, tau, vars) {
						return
					}
					left := logic.Atom{Rel: viewName(u), Args: sigma}
					right := logic.Atom{Rel: viewName(w), Args: tau}
					if left.String() == right.String() {
						return // trivial
					}
					assertions = append(assertions, logic.Forall(logic.Iff(left, right), vars...))
				})
			}
		}
	}
	out.Assertions = len(assertions)

	body := reduced
	if len(assertions) > 0 {
		body = logic.And(append(assertions, reduced)...)
	}
	out.Formula = logic.SOExists(body, newRels...)
	return out, nil
}

// DecodeWitness inverts the view encoding: given a satisfying assignment of
// the *reduced* formula's quantified relations (as returned by Holds), it
// reconstructs witnesses for the *original* relations. A cell of an
// original relation is true iff some view covering it is true; with the
// consistency assertions satisfied, all covering views agree, and the
// function reports an error if they do not (which would indicate a witness
// not actually satisfying the assertions). Cells not covered by any view —
// tuples whose equality pattern matches no atom of the formula — default to
// false; the matrix never inspects them, so any completion satisfies it.
func (r *Reduced) DecodeWitness(w Witness, vars []logic.Var, origArity map[string]int, domain int) (Witness, error) {
	out := make(Witness)
	// Views for relations that were reduced.
	type cellVal struct {
		val  bool
		seen bool
	}
	cells := make(map[string]map[string]cellVal) // rel → tuple key → value
	pos := make(map[logic.Var]int, len(vars))
	for i, v := range vars {
		pos[v] = i
	}
	for name, view := range r.Views {
		viewRel, ok := w[name]
		if !ok {
			// The view never surfaced in the grounding (e.g. it occurs only
			// under a vacuous quantifier); treat as all-false.
			viewRel = relation.NewSet(len(vars))
		}
		arity, ok := origArity[view.Rel]
		if !ok {
			return nil, fmt.Errorf("eso: no declared arity for original relation %s", view.Rel)
		}
		if cells[view.Rel] == nil {
			cells[view.Rel] = make(map[string]cellVal)
		}
		// Enumerate all assignments to the k variables and read the view.
		assign := make([]int, len(vars))
		var rec func(i int) error
		rec = func(i int) error {
			if i == len(vars) {
				cell := make(relation.Tuple, arity)
				for j, pv := range view.Pattern {
					cell[j] = assign[pos[pv]]
				}
				val := viewRel.Contains(assign)
				key := cell.String()
				if prev, seen := cells[view.Rel][key]; seen && prev.val != val {
					return fmt.Errorf("eso: views disagree on %s%s", view.Rel, cell)
				}
				cells[view.Rel][key] = cellVal{val: val, seen: true}
				if val {
					if out[view.Rel] == nil {
						out[view.Rel] = relation.NewSet(arity)
					}
					out[view.Rel].Add(cell)
				}
				return nil
			}
			for v := 0; v < domain; v++ {
				assign[i] = v
				if err := rec(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := rec(0); err != nil {
			return nil, err
		}
		if out[view.Rel] == nil {
			out[view.Rel] = relation.NewSet(arity)
		}
	}
	// Relations that were not reduced pass through.
	for name, rel := range w {
		if _, isView := r.Views[name]; !isView {
			out[name] = rel
		}
	}
	return out, nil
}

// collectPatterns returns the distinct argument patterns of rel's atoms in
// f, in first-occurrence order.
func collectPatterns(f logic.Formula, rel string) [][]logic.Var {
	var out [][]logic.Var
	seen := make(map[string]bool)
	logic.Walk(f, func(g logic.Formula) {
		a, ok := g.(logic.Atom)
		if !ok || a.Rel != rel {
			return
		}
		key := fmt.Sprint(a.Args)
		if !seen[key] {
			seen[key] = true
			out = append(out, append([]logic.Var(nil), a.Args...))
		}
	})
	return out
}

// rewriteAtoms replaces every atom of rel in f by repl(args).
func rewriteAtoms(f logic.Formula, rel string, repl func([]logic.Var) logic.Formula) logic.Formula {
	switch g := f.(type) {
	case logic.Atom:
		if g.Rel == rel {
			return repl(g.Args)
		}
		return g
	case logic.Eq, logic.Truth:
		return g
	case logic.Not:
		return logic.Not{F: rewriteAtoms(g.F, rel, repl)}
	case logic.Binary:
		return logic.Binary{Op: g.Op, L: rewriteAtoms(g.L, rel, repl), R: rewriteAtoms(g.R, rel, repl)}
	case logic.Quant:
		return logic.Quant{Kind: g.Kind, V: g.V, F: rewriteAtoms(g.F, rel, repl)}
	case logic.Fix:
		if g.Rel == rel {
			return g
		}
		return logic.Fix{Op: g.Op, Rel: g.Rel, Vars: g.Vars, Body: rewriteAtoms(g.Body, rel, repl), Args: g.Args}
	case logic.SOQuant:
		if g.Rel == rel {
			return g
		}
		return logic.SOQuant{Rel: g.Rel, Arity: g.Arity, F: rewriteAtoms(g.F, rel, repl)}
	default:
		panic(fmt.Sprintf("eso: unknown formula %T", f))
	}
}

// forEachSubstPair enumerates pairs (σ, τ) of substitutions vars→vars.
func forEachSubstPair(vars []logic.Var, fn func(sigma, tau []logic.Var)) {
	subs := allSubstitutions(vars)
	for _, s := range subs {
		for _, t := range subs {
			fn(s, t)
		}
	}
}

// allSubstitutions enumerates the |vars|^|vars| maps from the variable list
// into itself, each represented as the image tuple.
func allSubstitutions(vars []logic.Var) [][]logic.Var {
	k := len(vars)
	var out [][]logic.Var
	cur := make([]logic.Var, k)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			out = append(out, append([]logic.Var(nil), cur...))
			return
		}
		for _, v := range vars {
			cur[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// composedEqual reports whether u∘σ = w∘τ as variable sequences, where σ
// and τ are given by their image tuples over vars.
func composedEqual(u, sigma, w, tau []logic.Var, vars []logic.Var) bool {
	if len(u) != len(w) {
		return false
	}
	pos := make(map[logic.Var]int, len(vars))
	for i, v := range vars {
		pos[v] = i
	}
	for j := range u {
		if sigma[pos[u[j]]] != tau[pos[w[j]]] {
			return false
		}
	}
	return true
}
