package eso

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
	"repro/internal/sat"
)

// Cell identifies one ground atom of a quantified relation: the relation
// name and the argument tuple. Cells are the propositional variables of the
// grounding.
type Cell struct {
	Rel  string
	Args relation.Tuple
}

func (c Cell) String() string { return c.Rel + c.Args.String() }

// Grounding is a Boolean circuit equivalent to an ESO sentence over a fixed
// database: the circuit is satisfiable iff the sentence holds, and a model
// assigns the cells of the quantified relations.
type Grounding struct {
	Circuit *sat.Circuit
	Root    sat.Gate
	// Cells maps input-variable number (1-based) to its cell.
	Cells []Cell
	// gates memoizes ground subformulas: key = node path + assignment of
	// its free variables.
	cellGate map[string]sat.Gate
}

// Ground instantiates the matrix of a prenex ESO sentence over the database
// domain, with the given fixed values for free variables. Subformulas are
// shared by (syntactic node, free-variable assignment), so the circuit has
// at most |φ|·n^k gates — the polynomial-size grounding that Lemma 3.6 buys.
func Ground(f logic.Formula, db *database.Database, fixed map[logic.Var]int) (*Grounding, error) {
	soRels := make(map[string]int)
	matrix := f
	for {
		so, ok := matrix.(logic.SOQuant)
		if !ok {
			break
		}
		if _, dup := soRels[so.Rel]; dup {
			return nil, fmt.Errorf("eso: relation %s quantified twice", so.Rel)
		}
		soRels[so.Rel] = so.Arity
		matrix = so.F
	}
	if logic.Classify(matrix) != logic.FragFO {
		return nil, fmt.Errorf("eso: matrix is not first-order")
	}
	g := &Grounding{
		Circuit:  sat.NewCircuit(),
		Cells:    []Cell{{}}, // index 0 unused, aligning with CNF variables
		cellGate: make(map[string]sat.Gate),
	}
	c := &groundCtx{
		db:     db,
		n:      db.Size(),
		soRels: soRels,
		g:      g,
		assign: make(map[logic.Var]int),
		memo:   make(map[string]sat.Gate),
	}
	for v, val := range fixed {
		if val < 0 || val >= c.n {
			return nil, fmt.Errorf("eso: fixed value %d for %s outside domain", val, v)
		}
		c.assign[v] = val
	}
	root, err := c.ground(matrix, "r")
	if err != nil {
		return nil, err
	}
	g.Root = root
	return g, nil
}

type groundCtx struct {
	db     *database.Database
	n      int
	soRels map[string]int
	g      *Grounding
	assign map[logic.Var]int
	memo   map[string]sat.Gate
}

// cellInput returns the circuit input for a quantified-relation cell,
// allocating it on first use.
func (c *groundCtx) cellInput(cell Cell) sat.Gate {
	key := cell.String()
	if gt, ok := c.g.cellGate[key]; ok {
		return gt
	}
	gt := c.g.Circuit.Input()
	c.g.cellGate[key] = gt
	c.g.Cells = append(c.g.Cells, cell)
	return gt
}

// memoKey identifies a ground subformula: its path plus the values of its
// free variables.
func (c *groundCtx) memoKey(path string, f logic.Formula) string {
	free := logic.SortedVars(logic.FreeVars(f))
	var b strings.Builder
	b.WriteString(path)
	for _, v := range free {
		fmt.Fprintf(&b, "|%s=%d", v, c.assign[v])
	}
	return b.String()
}

func (c *groundCtx) ground(f logic.Formula, path string) (sat.Gate, error) {
	key := c.memoKey(path, f)
	if gt, ok := c.memo[key]; ok {
		return gt, nil
	}
	gt, err := c.groundNode(f, path)
	if err != nil {
		return 0, err
	}
	c.memo[key] = gt
	return gt, nil
}

func (c *groundCtx) groundNode(f logic.Formula, path string) (sat.Gate, error) {
	cir := c.g.Circuit
	switch g := f.(type) {
	case logic.Atom:
		t := make(relation.Tuple, len(g.Args))
		for i, v := range g.Args {
			val, ok := c.assign[v]
			if !ok {
				return 0, fmt.Errorf("eso: unbound variable %s", v)
			}
			t[i] = val
		}
		if arity, ok := c.soRels[g.Rel]; ok {
			if arity != len(g.Args) {
				return 0, fmt.Errorf("eso: %s used with %d args, quantified with arity %d", g.Rel, len(g.Args), arity)
			}
			return c.cellInput(Cell{Rel: g.Rel, Args: t}), nil
		}
		rel, err := c.db.Rel(g.Rel)
		if err != nil {
			return 0, err
		}
		return cir.Const(rel.Contains(t)), nil
	case logic.Eq:
		lv, ok := c.assign[g.L]
		if !ok {
			return 0, fmt.Errorf("eso: unbound variable %s", g.L)
		}
		rv, ok := c.assign[g.R]
		if !ok {
			return 0, fmt.Errorf("eso: unbound variable %s", g.R)
		}
		return cir.Const(lv == rv), nil
	case logic.Truth:
		return cir.Const(g.Value), nil
	case logic.Not:
		a, err := c.ground(g.F, path+".n")
		if err != nil {
			return 0, err
		}
		return cir.Not(a), nil
	case logic.Binary:
		l, err := c.ground(g.L, path+".l")
		if err != nil {
			return 0, err
		}
		r, err := c.ground(g.R, path+".r")
		if err != nil {
			return 0, err
		}
		switch g.Op {
		case logic.AndOp:
			return cir.And(l, r), nil
		case logic.OrOp:
			return cir.Or(l, r), nil
		case logic.ImpliesOp:
			return cir.Implies(l, r), nil
		case logic.IffOp:
			return cir.Iff(l, r), nil
		default:
			return 0, fmt.Errorf("eso: unknown binary op %v", g.Op)
		}
	case logic.Quant:
		prev, had := c.assign[g.V]
		gates := make([]sat.Gate, 0, c.n)
		for v := 0; v < c.n; v++ {
			c.assign[g.V] = v
			sub, err := c.ground(g.F, path+".q")
			if err != nil {
				return 0, err
			}
			gates = append(gates, sub)
		}
		if had {
			c.assign[g.V] = prev
		} else {
			delete(c.assign, g.V)
		}
		if g.Kind == logic.ExistsQ {
			return cir.Or(gates...), nil
		}
		return cir.And(gates...), nil
	default:
		return 0, fmt.Errorf("eso: grounding does not support %T", f)
	}
}

// Witness is a satisfying interpretation of the quantified relations.
type Witness map[string]*relation.Set

// Stats reports the work of an ESO evaluation.
type Stats struct {
	ReducedSize int // AST size after arity reduction
	Assertions  int // consistency assertions generated
	CircuitSize int
	CNFVars     int
	CNFClauses  int
	Conflicts   int
}

// Holds decides whether the prenex ESO sentence f (all individual variables
// closed, possibly under the fixed assignment) holds in db, via arity
// reduction, grounding and SAT. On success with a positive answer it also
// returns a witness for the *reduced* formula's quantified relations.
func Holds(f logic.Formula, db *database.Database, fixed map[logic.Var]int) (bool, Witness, *Stats, error) {
	if db.Size() == 0 {
		return false, nil, nil, fmt.Errorf("eso: empty domain")
	}
	red, err := ReduceArity(f)
	if err != nil {
		return false, nil, nil, err
	}
	st := &Stats{ReducedSize: logic.Size(red.Formula), Assertions: red.Assertions}
	g, err := Ground(red.Formula, db, fixed)
	if err != nil {
		return false, nil, nil, err
	}
	st.CircuitSize = g.Circuit.Size()
	cnf, err := g.Circuit.ToCNF(g.Root)
	if err != nil {
		return false, nil, nil, err
	}
	st.CNFVars = cnf.NumVars
	st.CNFClauses = len(cnf.Clauses)
	res, err := sat.Solve(cnf)
	if err != nil {
		return false, nil, nil, err
	}
	st.Conflicts = res.Conflicts
	if !res.SAT {
		return false, nil, st, nil
	}
	w := make(Witness)
	for i := 1; i < len(g.Cells); i++ {
		cell := g.Cells[i]
		set, ok := w[cell.Rel]
		if !ok {
			set = relation.NewSet(len(cell.Args))
			w[cell.Rel] = set
		}
		if res.Model[i] {
			set.Add(cell.Args)
		}
	}
	return true, w, st, nil
}

// Eval computes the answer of an ESO query: for each candidate head tuple it
// grounds and solves the sentence with the head variables fixed — one NP
// call per tuple, each of polynomial size (Corollary 3.7).
func Eval(q logic.Query, db *database.Database) (*relation.Set, error) {
	ans, _, err := EvalStats(q, db)
	return ans, err
}

// EvalStats is Eval with the statistics of the largest grounding solved.
func EvalStats(q logic.Query, db *database.Database) (*relation.Set, *Stats, error) {
	if err := q.Validate(nil); err != nil {
		return nil, nil, err
	}
	if db.Size() == 0 {
		return nil, nil, fmt.Errorf("eso: empty domain")
	}
	out := relation.NewSet(len(q.Head))
	var worst Stats
	t := make(relation.Tuple, len(q.Head))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(q.Head) {
			fixed := make(map[logic.Var]int, len(q.Head))
			for j, v := range q.Head {
				fixed[v] = t[j]
			}
			h, _, st, err := Holds(q.Body, db, fixed)
			if err != nil {
				return err
			}
			if st != nil && st.CircuitSize > worst.CircuitSize {
				worst = *st
			}
			if h {
				out.Add(t)
			}
			return nil
		}
		for v := 0; v < db.Size(); v++ {
			t[i] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, nil, err
	}
	return out, &worst, nil
}

// SortedCells returns the grounding's cells in a deterministic order, for
// tests and debugging.
func (g *Grounding) SortedCells() []Cell {
	out := append([]Cell(nil), g.Cells[1:]...)
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}
