package eso

import (
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/logic"
	"repro/internal/relation"
)

func graphDB(t testing.TB, n int, edges [][2]int) *database.Database {
	t.Helper()
	b := database.NewBuilder().Relation("E", 2)
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	for _, e := range edges {
		b.Add("E", e[0], e[1]).Add("E", e[1], e[0])
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// twoColorable is the ESO² sentence ∃C ∀x∀y (E(x,y) → ¬(C(x)↔C(y))).
func twoColorable() logic.Formula {
	return logic.SOExists(
		logic.Forall(logic.Implies(logic.R("E", "x", "y"),
			logic.Neg(logic.Iff(logic.R("C", "x"), logic.R("C", "y")))), "x", "y"),
		logic.RelVar{Name: "C", Arity: 1})
}

func TestTwoColorability(t *testing.T) {
	even := graphDB(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}) // C4: bipartite
	odd := graphDB(t, 3, [][2]int{{0, 1}, {1, 2}, {2, 0}})          // C3: not

	h, w, _, err := Holds(twoColorable(), even, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !h {
		t.Fatal("C4 should be 2-colorable")
	}
	if w == nil {
		t.Fatal("no witness for SAT instance")
	}
	h, _, _, err = Holds(twoColorable(), odd, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h {
		t.Fatal("C3 reported 2-colorable")
	}
}

func TestWitnessSatisfiesMatrix(t *testing.T) {
	// Inject the witness into a database and check the matrix with the
	// trusted naive evaluator.
	db := graphDB(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	h, w, _, err := Holds(twoColorable(), db, nil)
	if err != nil || !h {
		t.Fatalf("holds=%v err=%v", h, err)
	}
	c, ok := w["C"]
	if !ok {
		t.Fatalf("witness lacks C: %v", w)
	}
	b := database.NewBuilder().Relation("E", 2).Relation("C", 1)
	for i := 0; i < 4; i++ {
		b.Domain(i)
	}
	e, _ := db.Rel("E")
	e.ForEach(func(tp relation.Tuple) { b.Add("E", tp[0], tp[1]) })
	c.ForEach(func(tp relation.Tuple) { b.Add("C", tp[0]) })
	ext := b.MustBuild()
	matrix := logic.Forall(logic.Implies(logic.R("E", "x", "y"),
		logic.Neg(logic.Iff(logic.R("C", "x"), logic.R("C", "y")))), "x", "y")
	holds, err := eval.NaiveHolds(matrix, ext)
	if err != nil {
		t.Fatal(err)
	}
	if !holds {
		t.Fatalf("witness C=%v does not 2-color the graph", c)
	}
}

func TestReduceArityLeavesLowArity(t *testing.T) {
	red, err := ReduceArity(twoColorable())
	if err != nil {
		t.Fatal(err)
	}
	if red.Assertions != 0 || len(red.Views) != 0 {
		t.Fatalf("low-arity relation was reduced: %+v", red)
	}
}

// highArityFormula quantifies a 4-ary relation in a 2-variable formula —
// the Lemma 3.6 situation. It says: ∃S ( S(x,x,y,y) somewhere ∧
// ∀x∀y(S(x,x,y,y) → S(x,y,x,y)) ∧ nothing S(x,y,x,y) on the diagonal... )
func highArityFormula() logic.Formula {
	return logic.SOExists(
		logic.And(
			logic.Exists(logic.R("S", "x", "x", "y", "y"), "x", "y"),
			logic.Forall(logic.Implies(logic.R("S", "x", "y", "x", "y"), logic.R("E", "x", "y")), "x", "y")),
		logic.RelVar{Name: "S", Arity: 4})
}

func TestReduceArityHighArity(t *testing.T) {
	red, err := ReduceArity(highArityFormula())
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Views) != 2 {
		t.Fatalf("expected 2 views, got %v", red.Views)
	}
	if red.Assertions == 0 {
		t.Fatal("no consistency assertions generated")
	}
	// All quantified relations in the reduced formula have arity ≤ width 2.
	f := red.Formula
	for {
		so, ok := f.(logic.SOQuant)
		if !ok {
			break
		}
		if so.Arity > 2 {
			t.Fatalf("view %s has arity %d > 2", so.Rel, so.Arity)
		}
		f = so.F
	}
	if err := logic.Validate(red.Formula, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReduceArityEquivalence(t *testing.T) {
	// The crucial property: reduction preserves the answer on every
	// database. Cross-check against naive SO enumeration (which handles the
	// original 4-ary relation only on 1-element domains; build a formula
	// with a 3-ary relation over 2 elements instead: 2³ = 8 ≤ cap).
	f := logic.SOExists(
		logic.And(
			logic.Exists(logic.R("S", "x", "x", "y"), "x", "y"),
			logic.Forall(logic.Implies(logic.R("S", "x", "y", "x"), logic.R("E", "x", "y")), "x", "y"),
			logic.Forall(logic.Implies(logic.R("S", "x", "y", "y"), logic.R("E", "x", "y")), "x", "y")),
		logic.RelVar{Name: "S", Arity: 3})
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var edges [][2]int
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if r.Intn(2) == 0 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		db := graphDB(t, 2, edges)
		want, err := eval.NaiveHolds(f, db)
		if err != nil {
			t.Fatal(err)
		}
		got, _, _, err := Holds(f, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("reduction changed the answer: got %v, naive %v on\n%s", got, want, db)
		}
	}
}

func TestCrossValidateESOAgainstNaive(t *testing.T) {
	// Random low-arity ESO sentences vs naive enumeration.
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(2)
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if r.Intn(3) == 0 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		db := graphDB(t, n, edges)
		matrix := randMatrix(r, 3)
		matrix = logic.Exists(matrix, logic.SortedVars(logic.FreeVars(matrix))...)
		f := logic.SOExists(matrix, logic.RelVar{Name: "C", Arity: 1})
		want, err := eval.NaiveHolds(f, db)
		if err != nil {
			t.Fatal(err)
		}
		got, _, _, err := Holds(f, db, nil)
		if err != nil {
			t.Fatalf("Holds(%s): %v", f, err)
		}
		if got != want {
			t.Fatalf("ESO disagreement on %s: got %v, naive %v\n%s", f, got, want, db)
		}
	}
}

func randMatrix(r *rand.Rand, depth int) logic.Formula {
	vars := []logic.Var{"x", "y"}
	v := func() logic.Var { return vars[r.Intn(len(vars))] }
	if depth == 0 || r.Intn(5) == 0 {
		switch r.Intn(3) {
		case 0:
			return logic.R("E", v(), v())
		case 1:
			return logic.R("C", v())
		default:
			return logic.Equal(v(), v())
		}
	}
	sub := func() logic.Formula { return randMatrix(r, depth-1) }
	switch r.Intn(5) {
	case 0:
		return logic.Not{F: sub()}
	case 1:
		return logic.Binary{Op: logic.AndOp, L: sub(), R: sub()}
	case 2:
		return logic.Binary{Op: logic.OrOp, L: sub(), R: sub()}
	default:
		return logic.Quant{Kind: logic.QuantKind(r.Intn(2)), V: v(), F: sub()}
	}
}

func TestEvalQueryWithFreeVars(t *testing.T) {
	// (u). ∃C: C is a 2-coloring and C(u) — the nodes on the "true" side of
	// some valid coloring: on a bipartite graph every node qualifies (flip
	// the coloring); on an odd cycle none do.
	body := logic.SOExists(
		logic.And(
			logic.Forall(logic.Implies(logic.R("E", "x", "y"),
				logic.Neg(logic.Iff(logic.R("C", "x"), logic.R("C", "y")))), "x", "y"),
			logic.R("C", "u")),
		logic.RelVar{Name: "C", Arity: 1})
	q := logic.MustQuery([]logic.Var{"u"}, body)

	even := graphDB(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	got, err := Eval(q, even)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Fatalf("bipartite: got %v, want all 4", got)
	}
	odd := graphDB(t, 3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	got, err = Eval(q, odd)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("odd cycle: got %v, want empty", got)
	}
}

func TestGroundingIsPolynomialBySharing(t *testing.T) {
	// A deeply nested 2-variable formula grounds to O(|φ|·n²) gates, not
	// O(n^depth): subformula sharing keeps it polynomial.
	f := logic.Formula(logic.R("C", "x"))
	depth := 12
	for i := 0; i < depth; i++ {
		f = logic.Exists(logic.And(logic.R("E", "x", "y"),
			logic.Exists(logic.And(logic.Equal("x", "y"), f), "x")), "y")
	}
	sentence := logic.SOExists(logic.Exists(f, "x"), logic.RelVar{Name: "C", Arity: 1})
	db := graphDB(t, 3, [][2]int{{0, 1}, {1, 2}})
	g, err := Ground(sentence, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	size := g.Circuit.Size()
	bound := logic.Size(sentence) * 3 * 3 * 10 // |φ|·n²·slack
	if size > bound {
		t.Fatalf("circuit size %d exceeds polynomial bound %d", size, bound)
	}
}

func TestHoldsRejectsNonPrenex(t *testing.T) {
	db := graphDB(t, 2, nil)
	f := logic.Neg(logic.SOExists(logic.True, logic.RelVar{Name: "S", Arity: 1}))
	if _, _, _, err := Holds(f, db, nil); err == nil {
		t.Fatal("non-prenex formula accepted")
	}
	fix := logic.SOExists(
		logic.Lfp("T", []logic.Var{"x"}, logic.Or(logic.R("S", "x"), logic.R("T", "x")), "x"),
		logic.RelVar{Name: "S", Arity: 1})
	q := logic.Exists(fix, "x")
	if _, _, _, err := Holds(q, db, nil); err == nil {
		t.Fatal("fixpoint matrix accepted")
	}
}

func TestZeroAryESO(t *testing.T) {
	// Theorem 4.5 setting: propositions as 0-ary relation variables.
	// ∃P∃Q ((P ∨ Q) ∧ ¬P) is satisfiable; ∃P (P ∧ ¬P) is not.
	db := graphDB(t, 2, nil)
	sat1 := logic.SOExists(
		logic.And(logic.Or(logic.R("P"), logic.R("Q")), logic.Neg(logic.R("P"))),
		logic.RelVar{Name: "P", Arity: 0}, logic.RelVar{Name: "Q", Arity: 0})
	h, _, _, err := Holds(sat1, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !h {
		t.Fatal("(P∨Q)∧¬P should be satisfiable")
	}
	unsat := logic.SOExists(logic.And(logic.R("P"), logic.Neg(logic.R("P"))),
		logic.RelVar{Name: "P", Arity: 0})
	h, _, _, err = Holds(unsat, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h {
		t.Fatal("P∧¬P reported satisfiable")
	}
}
