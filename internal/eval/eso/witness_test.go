package eso

import (
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/eval"
	"repro/internal/logic"
	"repro/internal/relation"
)

// TestDecodeWitnessSatisfiesOriginalMatrix: solve the reduced formula, map
// the view witness back to the original high-arity relation, inject it as a
// database relation, and check the *original* matrix with the trusted naive
// evaluator.
func TestDecodeWitnessSatisfiesOriginalMatrix(t *testing.T) {
	matrix := logic.And(
		logic.Exists(logic.R("S", "x", "x", "y"), "x", "y"),
		logic.Forall(logic.Implies(logic.R("S", "x", "y", "x"), logic.R("E", "x", "y")), "x", "y"),
		logic.Forall(logic.Implies(logic.R("S", "x", "y", "y"), logic.R("E", "x", "y")), "x", "y"))
	f := logic.SOExists(matrix, logic.RelVar{Name: "S", Arity: 3})
	vars := logic.SortedVars(logic.AllVars(f))

	r := rand.New(rand.NewSource(271))
	decodedAny := false
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(2)
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if r.Intn(2) == 0 {
					edges = append(edges, [2]int{i, j})
				}
			}
		}
		db := graphDB(t, n, edges)
		red, err := ReduceArity(f)
		if err != nil {
			t.Fatal(err)
		}
		holds, w, _, err := Holds(f, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !holds {
			continue
		}
		decodedAny = true
		orig, err := red.DecodeWitness(w, vars, map[string]int{"S": 3}, db.Size())
		if err != nil {
			t.Fatalf("DecodeWitness: %v", err)
		}
		s, ok := orig["S"]
		if !ok {
			t.Fatalf("decoded witness lacks S: %v", orig)
		}
		if s.Arity() != 3 {
			t.Fatalf("decoded S has arity %d", s.Arity())
		}
		// Build db + S and check the original matrix naively.
		b := database.NewBuilder().Relation("E", 2).Relation("S", 3)
		for i := 0; i < n; i++ {
			b.Domain(i)
		}
		e, _ := db.Rel("E")
		e.ForEach(func(tp relation.Tuple) { b.Add("E", tp[0], tp[1]) })
		s.ForEach(func(tp relation.Tuple) { b.Add("S", tp[0], tp[1], tp[2]) })
		ext := b.MustBuild()
		ok2, err := eval.NaiveHolds(matrix, ext)
		if err != nil {
			t.Fatal(err)
		}
		if !ok2 {
			t.Fatalf("decoded witness S=%v does not satisfy the original matrix on\n%s", s, db)
		}
	}
	if !decodedAny {
		t.Fatal("no satisfiable instance hit; adjust the generator")
	}
}

func TestDecodeWitnessPassesThroughLowArity(t *testing.T) {
	f := twoColorable()
	red, err := ReduceArity(f)
	if err != nil {
		t.Fatal(err)
	}
	db := graphDB(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	holds, w, _, err := Holds(f, db, nil)
	if err != nil || !holds {
		t.Fatalf("holds=%v err=%v", holds, err)
	}
	vars := logic.SortedVars(logic.AllVars(f))
	orig, err := red.DecodeWitness(w, vars, map[string]int{"C": 1}, db.Size())
	if err != nil {
		t.Fatal(err)
	}
	if !orig["C"].Equal(w["C"]) {
		t.Fatal("unreduced relation should pass through unchanged")
	}
}
