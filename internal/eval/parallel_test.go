package eval

import (
	"testing"

	"repro/internal/logic"
)

// paramReachPFP builds a PFP query with one parameter variable y:
//
//	[pfp S(x). x=y ∨ ∃z(E(z,x) ∧ S(z))](x)
//
// (S(z) spelled with the width-preserving substitution ∃x(x=z ∧ S(x))).
// The body is monotone, so every per-assignment run converges and the
// answer is { (x, y) | y reaches x } — one independent fixpoint run per
// value of y, which is exactly the sweep the parallel PFP evaluator
// distributes over workers.
func paramReachPFP() logic.Query {
	body := logic.Or(
		logic.Equal("x", "y"),
		logic.Exists(logic.And(logic.R("E", "z", "x"),
			logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z"))
	return logic.MustQuery([]logic.Var{"x", "y"}, logic.Pfp("S", []logic.Var{"x"}, body, "x"))
}

// paramOscillatingPFP builds a PFP query whose per-assignment run has period
// 2 (stages ∅, {y}, ∅, …), so every per-assignment limit is empty:
//
//	[pfp S(x). x=y ∧ ¬S(x)](x)
func paramOscillatingPFP() logic.Query {
	body := logic.And(logic.Equal("x", "y"), logic.Neg(logic.R("S", "x")))
	return logic.MustQuery([]logic.Var{"x", "y"}, logic.Pfp("S", []logic.Var{"x"}, body, "x"))
}

// TestParallelPFPMatchesSerial checks the determinism contract of the
// parallel parameter sweep: for every Parallelism setting the answer AND the
// Stats counters are identical to the fully serial evaluation, because the
// n^|ȳ| per-assignment runs are independent and land in disjoint parameter
// sections of the output.
func TestParallelPFPMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		q    logic.Query
	}{
		{"reach", paramReachPFP()},
		{"oscillating", paramOscillatingPFP()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db := lineGraph(t, 7)
			serial, serialStats, err := BottomUpStats(tc.q, db, &Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{2, 4, 0} {
				par, parStats, err := BottomUpStats(tc.q, db, &Options{Parallelism: p})
				if err != nil {
					t.Fatalf("Parallelism=%d: %v", p, err)
				}
				if !par.Equal(serial) {
					t.Fatalf("Parallelism=%d: answer %v differs from serial %v", p, par, serial)
				}
				if parStats.FixIterations != serialStats.FixIterations {
					t.Fatalf("Parallelism=%d: FixIterations=%d, serial=%d",
						p, parStats.FixIterations, serialStats.FixIterations)
				}
				if parStats.SubformulaEvals != serialStats.SubformulaEvals {
					t.Fatalf("Parallelism=%d: SubformulaEvals=%d, serial=%d",
						p, parStats.SubformulaEvals, serialStats.SubformulaEvals)
				}
			}
		})
	}
}

// TestParallelPFPAgreesWithNaive cross-validates the parallel sweep against
// the environment-recursion oracle on a small instance.
func TestParallelPFPAgreesWithNaive(t *testing.T) {
	q := paramReachPFP()
	db := lineGraph(t, 4)
	want, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := BottomUpStats(q, db, &Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("parallel PFP = %v, naive = %v", got, want)
	}
}

// TestParallelPFPBrent runs the sweep under Brent cycle detection as well.
func TestParallelPFPBrent(t *testing.T) {
	for _, q := range []logic.Query{paramReachPFP(), paramOscillatingPFP()} {
		db := lineGraph(t, 6)
		serial, _, err := BottomUpStats(q, db, &Options{Parallelism: 1, PFPCycle: CycleBrent})
		if err != nil {
			t.Fatal(err)
		}
		par, _, err := BottomUpStats(q, db, &Options{Parallelism: 3, PFPCycle: CycleBrent})
		if err != nil {
			t.Fatal(err)
		}
		if !par.Equal(serial) {
			t.Fatalf("Brent: parallel answer %v differs from serial %v", par, serial)
		}
	}
}
