package eval

import (
	"sync"
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
)

// traceSink is a concurrency-safe TraceEvent collector for tests.
type traceSink struct {
	mu     sync.Mutex
	events []TraceEvent
}

func (s *traceSink) record(ev TraceEvent) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

func (s *traceSink) snapshot() []TraceEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]TraceEvent(nil), s.events...)
}

func traceDB(t *testing.T) *database.Database {
	t.Helper()
	db, err := database.Parse(`
domain = {0, 1, 2, 3, 4}
E/2 = {(0, 1), (1, 2), (2, 3), (3, 4)}
P/1 = {(0)}
`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func traceReachQuery() logic.Query {
	return logic.MustQuery([]logic.Var{"u"},
		logic.Lfp("S", []logic.Var{"x"},
			logic.Or(logic.R("P", "x"),
				logic.Exists(logic.And(logic.R("E", "z", "x"),
					logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z")), "u"))
}

// TestTracerLFPStages checks the per-engine stage streams against the
// FixIterations counter and the LFP chain invariants: 1-based consecutive
// stage indices, non-negative deltas, tuple counts that accumulate them.
func TestTracerLFPStages(t *testing.T) {
	db := traceDB(t)
	q := traceReachQuery()
	runs := []struct {
		name string
		run  func(opts *Options) (*Stats, error)
	}{
		{"bottomup", func(opts *Options) (*Stats, error) { _, st, err := BottomUpStats(q, db, opts); return st, err }},
		{"compiled", func(opts *Options) (*Stats, error) { _, st, err := CompiledStats(q, db, opts); return st, err }},
		{"monotone", func(opts *Options) (*Stats, error) { _, st, err := MonotoneStats(q, db, opts); return st, err }},
	}
	for _, r := range runs {
		t.Run(r.name, func(t *testing.T) {
			sink := &traceSink{}
			st, err := r.run(&Options{Tracer: sink.record})
			if err != nil {
				t.Fatal(err)
			}
			events := sink.snapshot()
			if len(events) == 0 {
				t.Fatal("tracer never fired")
			}
			if int64(len(events)) != st.FixIterations {
				t.Fatalf("events = %d, FixIterations = %d", len(events), st.FixIterations)
			}
			tuples := 0
			for i, ev := range events {
				if ev.Engine != r.name || ev.Op != "lfp" || ev.Fixpoint != "S" {
					t.Fatalf("event %d = %+v", i, ev)
				}
				if ev.Stage != i+1 {
					t.Fatalf("event %d: stage %d, want %d", i, ev.Stage, i+1)
				}
				if ev.Delta < 0 {
					t.Fatalf("event %d: negative LFP delta %d", i, ev.Delta)
				}
				tuples += ev.Delta
				if ev.Tuples != tuples {
					t.Fatalf("event %d: tuples %d, deltas sum to %d", i, ev.Tuples, tuples)
				}
				if ev.Elapsed < 0 {
					t.Fatalf("event %d: negative elapsed %v", i, ev.Elapsed)
				}
			}
			if last := events[len(events)-1]; last.Delta != 0 {
				t.Fatalf("converging stage has delta %d, want 0", last.Delta)
			}
		})
	}
}

// TestTracerPFP checks that PFP stage events flow from both dense engines,
// with per-run restarting stage indices.
func TestTracerPFP(t *testing.T) {
	db := traceDB(t)
	q := logic.MustQuery([]logic.Var{"u"},
		logic.Pfp("S", []logic.Var{"x"},
			logic.Or(logic.R("S", "x"), logic.Or(logic.R("P", "x"),
				logic.Exists(logic.And(logic.R("E", "z", "x"),
					logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z"))), "u"))
	for _, engine := range []string{"bottomup", "compiled"} {
		t.Run(engine, func(t *testing.T) {
			sink := &traceSink{}
			opts := &Options{Tracer: sink.record}
			var st *Stats
			var err error
			if engine == "bottomup" {
				_, st, err = BottomUpStats(q, db, opts)
			} else {
				_, st, err = CompiledStats(q, db, opts)
			}
			if err != nil {
				t.Fatal(err)
			}
			events := sink.snapshot()
			if int64(len(events)) != st.FixIterations {
				t.Fatalf("events = %d, FixIterations = %d", len(events), st.FixIterations)
			}
			for i, ev := range events {
				if ev.Op != "pfp" || ev.Engine != engine {
					t.Fatalf("event %d = %+v", i, ev)
				}
			}
		})
	}
}

// TestTracerParallelPFPSweep runs a parametrized PFP with a worker pool and
// a tracing hook: the event count must match the serial run (the sweep is
// deterministic), and the concurrent calls are the -race fodder.
func TestTracerParallelPFPSweep(t *testing.T) {
	db := traceDB(t)
	// One parameter variable y makes the sweep n parameter assignments wide.
	q := logic.MustQuery([]logic.Var{"u", "y"},
		logic.Pfp("S", []logic.Var{"x"},
			logic.Or(logic.R("S", "x"), logic.Or(logic.R("E", "y", "x"),
				logic.Exists(logic.And(logic.R("E", "z", "x"),
					logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z"))), "u"))
	serial := &traceSink{}
	_, stSerial, err := BottomUpStats(q, db, &Options{Parallelism: 1, Tracer: serial.record})
	if err != nil {
		t.Fatal(err)
	}
	parallel := &traceSink{}
	_, stPar, err := BottomUpStats(q, db, &Options{Parallelism: 4, Tracer: parallel.record})
	if err != nil {
		t.Fatal(err)
	}
	if stSerial.FixIterations != stPar.FixIterations {
		t.Fatalf("FixIterations diverge: serial %d, parallel %d", stSerial.FixIterations, stPar.FixIterations)
	}
	if len(serial.snapshot()) != len(parallel.snapshot()) {
		t.Fatalf("event counts diverge: serial %d, parallel %d", len(serial.snapshot()), len(parallel.snapshot()))
	}
}

// TestTracerNilIsIgnored locks the zero-cost contract's functional half: a
// nil hook changes nothing about answers or statistics.
func TestTracerNilIsIgnored(t *testing.T) {
	db := traceDB(t)
	q := traceReachQuery()
	ansTraced, stTraced, err := BottomUpStats(q, db, &Options{Tracer: func(TraceEvent) {}})
	if err != nil {
		t.Fatal(err)
	}
	ansPlain, stPlain, err := BottomUpStats(q, db, &Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ansTraced.Equal(ansPlain) {
		t.Fatal("tracer changed the answer")
	}
	if stTraced.FixIterations != stPlain.FixIterations || stTraced.SubformulaEvals != stPlain.SubformulaEvals {
		t.Fatalf("tracer changed stats: %+v vs %+v", stTraced, stPlain)
	}
}
