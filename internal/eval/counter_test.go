package eval

import (
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
)

// CounterQuery builds the PFP² binary-counter query over an ordered domain:
// the recursion relation S encodes a binary number (element x ∈ S = bit x
// set), and the stage operator is increment:
//
//	θ(S)(x) = (¬S(x) ∧ ∀y(Less(y,x) → S(y))) ∨ (S(x) ∧ ∃y(Less(y,x) ∧ ¬S(y)))
//
// The run walks through all 2ⁿ values and cycles, so the partial fixpoint
// is the empty relation — reached only after Θ(2ⁿ) stages. This is the
// canonical witness that PFP runs are exponentially long in the data
// (PSPACE data complexity, Table 1) even at width 2.
func counterQuery() logic.Query {
	body := logic.Or(
		logic.And(
			logic.Neg(logic.R("S", "x")),
			logic.Forall(logic.Implies(logic.R(database.OrderLess, "y", "x"),
				logic.Exists(logic.And(logic.Equal("x", "y"), logic.R("S", "x")), "x")), "y")),
		logic.And(
			logic.R("S", "x"),
			logic.Exists(logic.And(logic.R(database.OrderLess, "y", "x"),
				logic.Neg(logic.Exists(logic.And(logic.Equal("x", "y"), logic.R("S", "x")), "x"))), "y")))
	return logic.MustQuery([]logic.Var{"x"}, logic.Pfp("S", []logic.Var{"x"}, body, "x"))
}

func orderedDomain(t testing.TB, n int) *database.Database {
	t.Helper()
	b := database.NewBuilder()
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	odb, err := db.WithOrder()
	if err != nil {
		t.Fatal(err)
	}
	return odb
}

func TestPFPCounterTakesExponentialStages(t *testing.T) {
	q := counterQuery()
	if q.Width() != 2 {
		t.Fatalf("counter width = %d, want 2", q.Width())
	}
	var prev int64
	for _, n := range []int{2, 3, 4, 5} {
		db := orderedDomain(t, n)
		ans, st, err := BottomUpStats(q, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ans.Len() != 0 {
			t.Fatalf("n=%d: counter limit should be empty (divergent run), got %v", n, ans)
		}
		// The run revisits ∅ after exactly 2ⁿ increments.
		if st.FixIterations < (1 << n) {
			t.Fatalf("n=%d: only %d stages, want ≥ 2^%d", n, st.FixIterations, n)
		}
		if st.FixIterations <= prev {
			t.Fatalf("stage count not growing: %d after %d", st.FixIterations, prev)
		}
		prev = st.FixIterations
	}
}

func TestPFPCounterNaiveAgrees(t *testing.T) {
	q := counterQuery()
	db := orderedDomain(t, 3)
	bu, err := BottomUp(q, db)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !bu.Equal(nv) {
		t.Fatalf("counter: bottomup %v != naive %v", bu, nv)
	}
}

func TestPFPCounterBudget(t *testing.T) {
	// n=16 would need 65536 stages; a budget of 1000 must trip.
	q := counterQuery()
	db := orderedDomain(t, 16)
	if _, _, err := BottomUpStats(q, db, &Options{PFPBudget: 1000}); err == nil {
		t.Fatal("expected budget exhaustion")
	}
}
