package eval

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// randMonotoneFP generates random FP formulas that are dependently
// alternation-free: same-polarity dependent nesting plus closed
// opposite-polarity subformulas, combined with FO structure.
func randMonotoneFP(r *rand.Rand, depth int, outerMu string, outerNu string) logic.Formula {
	leaf := func() logic.Formula {
		switch r.Intn(4) {
		case 0:
			return logic.R("P", "x")
		case 1:
			return logic.R("E", "x", "y")
		case 2:
			if outerMu != "" {
				return logic.R(outerMu, "x")
			}
			return logic.Equal("x", "x")
		default:
			if outerNu != "" {
				return logic.R(outerNu, "x")
			}
			return logic.Truth{Value: r.Intn(2) == 0}
		}
	}
	if depth == 0 || r.Intn(4) == 0 {
		return leaf()
	}
	sub := func() logic.Formula { return randMonotoneFP(r, depth-1, outerMu, outerNu) }
	switch r.Intn(8) {
	case 0:
		return logic.And(sub(), sub())
	case 1:
		return logic.Or(sub(), sub())
	case 2:
		return logic.Exists(sub(), "y")
	case 3:
		return logic.Forall(sub(), "y")
	case 4:
		// Same-polarity dependent µ: may reference outerMu.
		rel := logic.Var("M" + string(rune('a'+r.Intn(26))) + string(rune('a'+r.Intn(26))))
		body := logic.Or(logic.R(string(rel), "x"), randMonotoneFP(r, depth-1, string(rel), ""))
		return logic.Lfp(string(rel), []logic.Var{"x"}, body, "x")
	case 5:
		// Closed ν: its body must not reference any outer µ (pass no outer
		// relations down), so it never truly alternates.
		rel := logic.Var("N" + string(rune('a'+r.Intn(26))) + string(rune('a'+r.Intn(26))))
		body := logic.And(logic.Or(logic.R(string(rel), "x"), logic.True),
			randMonotoneFP(r, depth-1, "", string(rel)))
		return logic.Gfp(string(rel), []logic.Var{"x"}, body, "x")
	default:
		return logic.Not{F: leaf()}
	}
}

func TestMonotonePropertyAgainstBottomUp(t *testing.T) {
	r := rand.New(rand.NewSource(60221))
	accepted := 0
	for trial := 0; trial < 150; trial++ {
		f := randMonotoneFP(r, 3, "", "")
		if logic.Validate(f, nil) != nil {
			continue // generator may produce a non-positive occurrence via Not(leaf)
		}
		head := logic.SortedVars(logic.FreeVars(f))
		q, err := logic.NewQuery(head, f)
		if err != nil {
			t.Fatal(err)
		}
		db := randomGraph(t, r, 2+r.Intn(3))
		mo, err := Monotone(q, db)
		if err != nil {
			// Dependent alternation can still arise (e.g. an outer µ
			// referenced inside a closed ν's dependent µ chain); those are
			// correctly rejected.
			continue
		}
		accepted++
		bu, err := BottomUp(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !mo.Equal(bu) {
			t.Fatalf("Monotone %v != BottomUp %v on %s\n", mo, bu, q)
		}
	}
	if accepted < 50 {
		t.Fatalf("only %d formulas exercised Monotone; generator too restrictive", accepted)
	}
}
