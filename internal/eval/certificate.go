package eval

import (
	"fmt"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
)

// This file implements Theorem 3.5: the combined complexity of FPᵏ is in
// NP ∩ co-NP. The algorithm approximates least AND greatest fixpoints from
// below (Lemmas 3.3 and 3.4):
//
//   - Lemma 3.3: a ∈ gfp(f) iff there is a post-fixpoint Q (Q ⊆ f′(Q) for
//     some monotone f′ ⊑ f) with a ∈ Q. The certificate *guesses* Q; the
//     verifier checks the inclusion with one body evaluation.
//
//   - Lemma 3.4: a ∈ lfp(f) iff a ∈ ⋃ Qᵢ for an increasing chain
//     Q₀ = ∅, Qᵢ = fᵢ(Q_{i−1}) with monotone f₁ ⊑ f₂ ⊑ … ⊑ f. The chain
//     need not be guessed: the verifier *computes* it, warm-starting each
//     least fixpoint from its previous value whenever the evaluation
//     context has grown (the fᵢ of the lemma are the body operators with
//     the current, growing under-approximations of the guessed gfp nodes
//     plugged in).
//
// Every re-evaluation in the run happens under a non-decreasing environment
// (outer lfp stages grow; guessed gfp chains grow), so each fixpoint node's
// value advances at most nᵏ times across the entire run: the iteration count
// drops from the naive n^{kl} (l = alternation depth) to l·nᵏ, at the cost
// of nondeterminism — realized here as an explicit Certificate found by a
// (deterministic, possibly expensive) prover and checked by a polynomial
// verifier.
//
// Certificate identifies fixpoint nodes by their syntactic path from the
// root, so Find and Verify traverse identically.

// Certificate is the NP witness for an FPᵏ query evaluation: one increasing
// chain of (extended-arity) relation values per GFP node, indexed by the
// node's syntactic path. The i-th evaluation of the node uses chain element
// min(i, len−1).
type Certificate struct {
	Chains map[string][]*relation.Set
}

// Size reports the certificate's bulk: the number of gfp nodes covered, the
// total number of chain elements, and the total number of tuples across all
// chain elements. The tuple total is bounded by (#gfp nodes)·(chain length)
// ·nᵏ — polynomial in the query and the database, which is what makes the
// Theorem 3.5 witness an NP certificate.
func (c *Certificate) Size() (nodes, elements, tuples int) {
	if c == nil {
		return 0, 0, 0
	}
	for _, chain := range c.Chains {
		nodes++
		elements += len(chain)
		for _, s := range chain {
			tuples += s.Len()
		}
	}
	return nodes, elements, tuples
}

// CertResult is the outcome of a certified evaluation.
type CertResult struct {
	Answer *relation.Set
	Stats  Stats
}

// FindCertificate evaluates q and constructs a certificate for the answer.
// The body is normalized to NNF first (Verify does the same). Only the FP
// fragment is supported. The prover computes each greatest fixpoint exactly
// (paying the nested-iteration price); the certificate it emits lets Verify
// redo the evaluation with l·nᵏ cheap stages.
func FindCertificate(q logic.Query, db *database.Database) (*Certificate, *CertResult, error) {
	c, body, err := newCertCtx(q, db)
	if err != nil {
		return nil, nil, err
	}
	c.mode = certFind
	c.cert = &Certificate{Chains: make(map[string][]*relation.Set)}
	d, err := c.eval(body, "r")
	if err != nil {
		return nil, nil, err
	}
	head := make([]int, len(q.Head))
	for i, v := range q.Head {
		head[i] = c.axes[v]
	}
	return c.cert, &CertResult{Answer: d.Project(head), Stats: *c.stats}, nil
}

// VerifyCertificate replays the evaluation of q using the guessed gfp chains
// in cert, checking the Lemma 3.3 post-fixpoint condition at every use. On
// success it returns the certified answer, which is guaranteed to be a
// subset of the true answer (and equals it for certificates produced by
// FindCertificate). A tampered certificate fails either a chain check or
// the final comparison made by the caller.
func VerifyCertificate(q logic.Query, db *database.Database, cert *Certificate) (*CertResult, error) {
	c, body, err := newCertCtx(q, db)
	if err != nil {
		return nil, err
	}
	c.mode = certVerify
	c.cert = cert
	if err := c.checkChainsIncreasing(); err != nil {
		return nil, err
	}
	d, err := c.eval(body, "r")
	if err != nil {
		return nil, err
	}
	head := make([]int, len(q.Head))
	for i, v := range q.Head {
		head[i] = c.axes[v]
	}
	return &CertResult{Answer: d.Project(head), Stats: *c.stats}, nil
}

// NegateQuery returns the query whose answer is the complement of q's:
// (x̄). ¬body, normalized. Certifying a tuple into the negated query's
// answer refutes its membership in q — the co-NP half of Theorem 3.5.
func NegateQuery(q logic.Query) (logic.Query, error) {
	body, err := logic.NNF(logic.Not{F: q.Body})
	if err != nil {
		return logic.Query{}, err
	}
	return logic.NewQuery(q.Head, body)
}

type certMode int

const (
	certFind certMode = iota
	certVerify
)

type certCtx struct {
	db    *database.Database
	sp    *relation.Space
	axes  map[logic.Var]int
	env   *env
	stats *Stats
	mode  certMode
	cert  *Certificate
	// cursor counts evaluations of each gfp node; memo warm-starts each lfp
	// node.
	cursor map[string]int
	memo   map[string]*relation.Set
}

func newCertCtx(q logic.Query, db *database.Database) (*certCtx, logic.Formula, error) {
	if err := q.Validate(signatureOf(db)); err != nil {
		return nil, nil, err
	}
	if err := checkDomain(db); err != nil {
		return nil, nil, err
	}
	body, err := logic.NNF(q.Body)
	if err != nil {
		return nil, nil, err
	}
	if fr := logic.Classify(body); fr != logic.FragFO && fr != logic.FragFP {
		return nil, nil, fmt.Errorf("eval: certificates apply to FP queries, got %v", fr)
	}
	if err := logic.Validate(body, nil); err != nil {
		return nil, nil, err
	}
	vars := q.Vars()
	sp, err := relation.NewSpace(len(vars), db.Size())
	if err != nil {
		return nil, nil, err
	}
	c := &certCtx{
		db:     db,
		sp:     sp,
		axes:   make(map[logic.Var]int, len(vars)),
		env:    newEnv(),
		stats:  &Stats{},
		cursor: make(map[string]int),
		memo:   make(map[string]*relation.Set),
	}
	for i, v := range vars {
		c.axes[v] = i
	}
	return c, body, nil
}

func (c *certCtx) checkChainsIncreasing() error {
	if c.cert == nil || c.cert.Chains == nil {
		return fmt.Errorf("eval: nil certificate")
	}
	for path, chain := range c.cert.Chains {
		if len(chain) == 0 {
			return fmt.Errorf("eval: empty chain at %s", path)
		}
		for i := 1; i < len(chain); i++ {
			if !chain[i-1].SubsetOf(chain[i]) {
				return fmt.Errorf("eval: chain at %s not increasing at step %d", path, i)
			}
		}
	}
	return nil
}

func (c *certCtx) axesOf(vs []logic.Var) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = c.axes[v]
	}
	return out
}

// eval computes the certified under-approximate denotation of f. The path
// argument names f's position in the tree, so both modes agree on node
// identity.
func (c *certCtx) eval(f logic.Formula, path string) (*relation.Dense, error) {
	c.stats.addSubformulaEvals(1)
	switch g := f.(type) {
	case logic.Atom:
		if br, ok := c.env.rels[g.Rel]; ok {
			return c.sp.FromAtom(br.set, append(c.axesOf(g.Args), c.axesOf(br.params)...))
		}
		rel, err := c.db.Rel(g.Rel)
		if err != nil {
			return nil, err
		}
		return c.sp.FromAtom(rel, c.axesOf(g.Args))
	case logic.Eq:
		return c.sp.Diagonal(c.axes[g.L], c.axes[g.R]), nil
	case logic.Truth:
		if g.Value {
			return c.sp.Full(), nil
		}
		return c.sp.Empty(), nil
	case logic.Not:
		// NNF: negation only over atoms/equalities, which are exact.
		d, err := c.eval(g.F, path+".n")
		if err != nil {
			return nil, err
		}
		d.Complement()
		return d, nil
	case logic.Binary:
		l, err := c.eval(g.L, path+".l")
		if err != nil {
			return nil, err
		}
		r, err := c.eval(g.R, path+".r")
		if err != nil {
			return nil, err
		}
		switch g.Op {
		case logic.AndOp:
			l.IntersectWith(r)
		case logic.OrOp:
			l.UnionWith(r)
		default:
			return nil, fmt.Errorf("eval: %v connective survived NNF", g.Op)
		}
		return l, nil
	case logic.Quant:
		d, err := c.eval(g.F, path+".q")
		if err != nil {
			return nil, err
		}
		if g.Kind == logic.ExistsQ {
			return d.ExistsAxis(c.axes[g.V]), nil
		}
		return d.ForallAxis(c.axes[g.V]), nil
	case logic.Fix:
		switch g.Op {
		case logic.LFP:
			return c.evalLfp(g, path)
		case logic.GFP:
			return c.evalGfp(g, path)
		default:
			return nil, fmt.Errorf("eval: certificates do not cover PFP")
		}
	default:
		return nil, fmt.Errorf("eval: certificates do not cover %T", f)
	}
}

// evalLfp computes a least fixpoint by the Lemma 3.4 chain, warm-starting
// from the node's value at its previous evaluation (sound because every
// re-evaluation happens under a non-decreasing environment).
func (c *certCtx) evalLfp(g logic.Fix, path string) (*relation.Dense, error) {
	params := fixParams(g)
	ext := len(g.Vars) + len(params)
	extCols := append(c.axesOf(g.Vars), c.axesOf(params)...)
	cur := c.memo[path]
	if cur == nil {
		cur = relation.NewSet(ext)
	}
	restore := c.env.bind(g.Rel, boundRel{set: cur, params: params})
	defer restore()
	for {
		c.stats.addFixIterations(1)
		c.env.rels[g.Rel] = boundRel{set: cur, params: params}
		body, err := c.eval(g.Body, path+".b")
		if err != nil {
			return nil, err
		}
		next := body.Project(extCols)
		// Lemma 3.4 chains are increasing: fold in the previous stage.
		next = next.Union(cur)
		if next.Equal(cur) {
			break
		}
		cur = next
	}
	c.memo[path] = cur
	return c.sp.FromAtom(cur, append(c.axesOf(g.Args), c.axesOf(params)...))
}

// evalGfp handles a greatest fixpoint node: the verifier takes the next
// element of the node's guessed chain and checks the Lemma 3.3 post-fixpoint
// condition; the prover computes the true fixpoint (via a throwaway exact
// sub-evaluation), records it on the chain, and then performs the same
// mirror check so both modes advance inner nodes identically.
func (c *certCtx) evalGfp(g logic.Fix, path string) (*relation.Dense, error) {
	params := fixParams(g)
	extCols := append(c.axesOf(g.Vars), c.axesOf(params)...)
	n := c.cursor[path]
	c.cursor[path] = n + 1

	var q *relation.Set
	switch c.mode {
	case certFind:
		val, err := c.exactGfp(g, params, extCols)
		if err != nil {
			return nil, err
		}
		c.cert.Chains[path] = append(c.cert.Chains[path], val)
		q = val
	case certVerify:
		chain := c.cert.Chains[path]
		if len(chain) == 0 {
			return nil, fmt.Errorf("eval: certificate has no chain for gfp node %s", path)
		}
		if n >= len(chain) {
			n = len(chain) - 1
		}
		q = chain[n]
		if q.Arity() != len(g.Vars)+len(params) {
			return nil, fmt.Errorf("eval: chain at %s has arity %d, want %d", path, q.Arity(), len(g.Vars)+len(params))
		}
	}

	// Mirror check (Lemma 3.3): Q ⊆ f′(Q), evaluated with the certified
	// under-approximations of everything inside the body.
	restore := c.env.bind(g.Rel, boundRel{set: q, params: params})
	c.stats.addFixIterations(1)
	body, err := c.eval(g.Body, path+".b")
	restore()
	if err != nil {
		return nil, err
	}
	if !q.SubsetOf(body.Project(extCols)) {
		return nil, fmt.Errorf("eval: post-fixpoint check failed for gfp node %s", path)
	}
	return c.sp.FromAtom(q, append(c.axesOf(g.Args), c.axesOf(params)...))
}

// exactGfp computes the true greatest fixpoint of g under the current
// environment with a plain nested Kleene iteration (no certificate state
// touched). This is prover-side work only.
func (c *certCtx) exactGfp(g logic.Fix, params []logic.Var, extCols []int) (*relation.Set, error) {
	sub := &buCtx{db: c.db, sp: c.sp, axes: c.axes, env: c.env, stats: c.stats, opts: nil,
		atoms: &atomCache{}, spaces: &spaceCache{n: c.db.Size()}}
	ext := len(g.Vars) + len(params)
	cur := sub.fullSet(ext)
	restore := c.env.bind(g.Rel, boundRel{set: cur, params: params})
	defer restore()
	for {
		c.env.rels[g.Rel] = boundRel{set: cur, params: params}
		body, err := sub.eval(g.Body)
		if err != nil {
			return nil, err
		}
		next := body.Project(extCols)
		if next.Equal(cur) {
			return cur, nil
		}
		cur = next
	}
}
