package eval

import (
	"context"
	"fmt"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
)

// MaxNaiveSOBits caps the search space of naive second-order enumeration:
// a quantifier ∃S with |D|^arity(S) > MaxNaiveSOBits candidate bit-vectors
// is refused. The cap is the point of §3.3 — the naive algorithm guesses a
// relation whose size may be exponential in the formula, so it only works on
// toy instances.
const MaxNaiveSOBits = 24

// Naive evaluates a query by direct recursion over variable assignments —
// the generic query-evaluation algorithm whose running time is O(n^q) for q
// nested quantifiers: polynomial space, exponential time in the formula
// (the PSPACE combined-complexity algorithm for FO of Table 1). It supports
// all four languages; second-order quantifiers are enumerated exhaustively
// under the MaxNaiveSOBits cap. It exists as the paper's baseline and as the
// trusted oracle for cross-validation.
func Naive(q logic.Query, db *database.Database) (*relation.Set, error) {
	return NaiveContext(context.Background(), q, db)
}

// NaiveContext is Naive honoring a context. Cancellation is checked once per
// head-tuple assignment and once per fixpoint stage — the naive evaluator's
// natural work units — so a single deeply nested quantifier block still runs
// to completion before the check fires.
func NaiveContext(ctx context.Context, q logic.Query, db *database.Database) (*relation.Set, error) {
	if err := q.Validate(signatureOf(db)); err != nil {
		return nil, err
	}
	if err := checkDomain(db); err != nil {
		return nil, err
	}
	c := &naiveCtx{ctx: ctx, db: db, n: db.Size(), vars: make(map[logic.Var]int), env: newEnv()}
	out := relation.NewSet(len(q.Head))
	var err error
	forEachAssignment(c.n, len(q.Head), func(t []int) bool {
		if err = checkCtx(ctx); err != nil {
			return false
		}
		for i, v := range q.Head {
			c.vars[v] = t[i]
		}
		var holds bool
		holds, err = c.holds(q.Body)
		if err != nil {
			return false
		}
		if holds {
			out.Add(t)
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// NaiveHolds reports whether a sentence (no free variables) holds in db.
func NaiveHolds(f logic.Formula, db *database.Database) (bool, error) {
	q, err := logic.NewQuery(nil, f)
	if err != nil {
		return false, err
	}
	ans, err := Naive(q, db)
	if err != nil {
		return false, err
	}
	return ans.Len() > 0, nil
}

type naiveCtx struct {
	ctx  context.Context
	db   *database.Database
	n    int
	vars map[logic.Var]int
	env  *env
}

func (c *naiveCtx) holds(f logic.Formula) (bool, error) {
	switch g := f.(type) {
	case logic.Atom:
		t := make(relation.Tuple, len(g.Args))
		for i, v := range g.Args {
			val, ok := c.vars[v]
			if !ok {
				return false, fmt.Errorf("eval: unbound variable %s", v)
			}
			t[i] = val
		}
		if br, ok := c.env.rels[g.Rel]; ok {
			for _, p := range br.params {
				val, ok := c.vars[p]
				if !ok {
					return false, fmt.Errorf("eval: unbound parameter %s", p)
				}
				t = append(t, val)
			}
			return br.set.Contains(t), nil
		}
		rel, err := c.db.Rel(g.Rel)
		if err != nil {
			return false, err
		}
		return rel.Contains(t), nil
	case logic.Eq:
		lv, ok := c.vars[g.L]
		if !ok {
			return false, fmt.Errorf("eval: unbound variable %s", g.L)
		}
		rv, ok := c.vars[g.R]
		if !ok {
			return false, fmt.Errorf("eval: unbound variable %s", g.R)
		}
		return lv == rv, nil
	case logic.Truth:
		return g.Value, nil
	case logic.Not:
		h, err := c.holds(g.F)
		return !h, err
	case logic.Binary:
		l, err := c.holds(g.L)
		if err != nil {
			return false, err
		}
		// Short-circuit where the connective allows it.
		switch g.Op {
		case logic.AndOp:
			if !l {
				return false, nil
			}
			return c.holds(g.R)
		case logic.OrOp:
			if l {
				return true, nil
			}
			return c.holds(g.R)
		case logic.ImpliesOp:
			if !l {
				return true, nil
			}
			return c.holds(g.R)
		case logic.IffOp:
			r, err := c.holds(g.R)
			return l == r, err
		default:
			return false, fmt.Errorf("eval: unknown binary op %v", g.Op)
		}
	case logic.Quant:
		prev, had := c.vars[g.V]
		defer func() {
			if had {
				c.vars[g.V] = prev
			} else {
				delete(c.vars, g.V)
			}
		}()
		for v := 0; v < c.n; v++ {
			c.vars[g.V] = v
			h, err := c.holds(g.F)
			if err != nil {
				return false, err
			}
			if g.Kind == logic.ExistsQ && h {
				return true, nil
			}
			if g.Kind == logic.ForallQ && !h {
				return false, nil
			}
		}
		return g.Kind == logic.ForallQ, nil
	case logic.Fix:
		return c.holdsFix(g)
	case logic.SOQuant:
		return c.holdsSO(g)
	default:
		return false, fmt.Errorf("eval: unknown formula %T", f)
	}
}

// holdsFix computes the fixpoint under the current assignment of the
// parameter variables and tests the argument tuple.
func (c *naiveCtx) holdsFix(g logic.Fix) (bool, error) {
	m := len(g.Vars)
	args := make(relation.Tuple, m)
	for i, v := range g.Args {
		val, ok := c.vars[v]
		if !ok {
			return false, fmt.Errorf("eval: unbound variable %s", v)
		}
		args[i] = val
	}
	step := func(s *relation.Set) (*relation.Set, error) {
		if err := checkCtx(c.ctx); err != nil {
			return nil, err
		}
		restore := c.env.bind(g.Rel, boundRel{set: s})
		defer restore()
		next := relation.NewSet(m)
		saved := make([]int, m)
		savedOK := make([]bool, m)
		for i, v := range g.Vars {
			saved[i], savedOK[i] = c.vars[v], false
			if _, ok := c.vars[v]; ok {
				savedOK[i] = true
			}
		}
		var err error
		forEachAssignment(c.n, m, func(t []int) bool {
			for i, v := range g.Vars {
				c.vars[v] = t[i]
			}
			var h bool
			h, err = c.holds(g.Body)
			if err != nil {
				return false
			}
			if h {
				next.Add(t)
			}
			return true
		})
		for i, v := range g.Vars {
			if savedOK[i] {
				c.vars[v] = saved[i]
			} else {
				delete(c.vars, v)
			}
		}
		if err != nil {
			return nil, err
		}
		return next, nil
	}

	var cur *relation.Set
	switch g.Op {
	case logic.LFP, logic.GFP, logic.IFP:
		cur = relation.NewSet(m)
		if g.Op == logic.GFP {
			full := relation.NewSet(m)
			forEachAssignment(c.n, m, func(t []int) bool { full.Add(t); return true })
			cur = full
		}
		for {
			next, err := step(cur)
			if err != nil {
				return false, err
			}
			if g.Op == logic.IFP {
				next = next.Union(cur)
			}
			if next.Equal(cur) {
				break
			}
			cur = next
		}
	case logic.PFP:
		msp, err := relation.NewSpace(m, c.n)
		if err != nil {
			return false, err
		}
		cur, err = pfpHashSet(step, m, msp, DefaultPFPBudget)
		if err != nil {
			return false, err
		}
	}
	return cur.Contains(args), nil
}

// pfpHashSet is the sparse-set analogue of pfpHash, used by the naive
// evaluator: iterate step from ∅, hash every stage (via its dense form), and
// return the repeated value if the period is 1, the empty set otherwise.
func pfpHashSet(step func(*relation.Set) (*relation.Set, error), m int, msp *relation.Space, budget int) (*relation.Set, error) {
	cur := relation.NewSet(m)
	seen := map[uint64][]*relation.Set{}
	key := func(s *relation.Set) (uint64, error) {
		d, err := s.ToDense(msp)
		if err != nil {
			return 0, err
		}
		h := d.Hash()
		d.Release()
		return h, nil
	}
	k, err := key(cur)
	if err != nil {
		return nil, err
	}
	seen[k] = append(seen[k], cur)
	for i := 0; i < budget; i++ {
		next, err := step(cur)
		if err != nil {
			return nil, err
		}
		if next.Equal(cur) {
			return cur, nil // converged
		}
		k, err := key(next)
		if err != nil {
			return nil, err
		}
		for _, prev := range seen[k] {
			if prev.Equal(next) {
				// Revisited an earlier stage without convergence: the run is
				// periodic with period > 1, so the limit does not exist.
				return relation.NewSet(m), nil
			}
		}
		seen[k] = append(seen[k], next)
		cur = next
	}
	return nil, fmt.Errorf("eval: pfp run exceeded %d stages: %w", budget, ErrBudget)
}

// holdsSO enumerates every relation of the quantified arity — the
// exponential "guess" of the naive ESO algorithm.
func (c *naiveCtx) holdsSO(g logic.SOQuant) (bool, error) {
	size := 1
	for i := 0; i < g.Arity; i++ {
		size *= c.n
		if size > MaxNaiveSOBits {
			return false, fmt.Errorf("eval: naive enumeration of %s/%d over domain of %d needs 2^%d candidates; beyond MaxNaiveSOBits", g.Rel, g.Arity, c.n, size)
		}
	}
	// Enumerate all subsets of D^arity as bit masks.
	tuples := make([]relation.Tuple, 0, size)
	forEachAssignment(c.n, g.Arity, func(t []int) bool {
		tt := make(relation.Tuple, len(t))
		copy(tt, t)
		tuples = append(tuples, tt)
		return true
	})
	for mask := 0; mask < (1 << size); mask++ {
		s := relation.NewSet(g.Arity)
		for i, t := range tuples {
			if mask&(1<<i) != 0 {
				s.Add(t)
			}
		}
		restore := c.env.bind(g.Rel, boundRel{set: s})
		h, err := c.holds(g.F)
		restore()
		if err != nil {
			return false, err
		}
		if h {
			return true, nil
		}
	}
	return false, nil
}
