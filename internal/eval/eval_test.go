package eval

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
)

// lineGraph builds the path 0 → 1 → … → n−1 with P = {0}.
func lineGraph(t testing.TB, n int) *database.Database {
	t.Helper()
	b := database.NewBuilder().Relation("E", 2).Relation("P", 1)
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	for i := 0; i+1 < n; i++ {
		b.Add("E", i, i+1)
	}
	b.Add("P", 0)
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// randomGraph builds a random digraph over n nodes with edge probability ~1/3
// and a random unary P.
func randomGraph(t testing.TB, r *rand.Rand, n int) *database.Database {
	t.Helper()
	b := database.NewBuilder().Relation("E", 2).Relation("P", 1)
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Intn(3) == 0 {
				b.Add("E", i, j)
			}
		}
		if r.Intn(2) == 0 {
			b.Add("P", i)
		}
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBottomUpAtomAndEquality(t *testing.T) {
	db := lineGraph(t, 4)
	q := logic.MustQuery([]logic.Var{"x", "y"}, logic.R("E", "x", "y"))
	got, err := BottomUp(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.SetOf(2, relation.Tuple{0, 1}, relation.Tuple{1, 2}, relation.Tuple{2, 3})
	if !got.Equal(want) {
		t.Fatalf("E = %v, want %v", got, want)
	}
	qe := logic.MustQuery([]logic.Var{"x", "y"}, logic.Equal("x", "y"))
	got, err = BottomUp(qe, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Fatalf("x=y has %d tuples, want 4", got.Len())
	}
}

func TestBottomUpTwoHopQuery(t *testing.T) {
	db := lineGraph(t, 5)
	q := logic.MustQuery([]logic.Var{"x", "y"},
		logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("E", "z", "y")), "z"))
	got, err := BottomUp(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.SetOf(2, relation.Tuple{0, 2}, relation.Tuple{1, 3}, relation.Tuple{2, 4})
	if !got.Equal(want) {
		t.Fatalf("two-hop = %v, want %v", got, want)
	}
}

// pathFormula is the §2.2 FO³ family: φ_m(x,y) ≡ ∃ path of length m.
func pathFormula(m int) logic.Formula {
	f := logic.Formula(logic.R("E", "x", "y"))
	for i := 1; i < m; i++ {
		f = logic.Exists(logic.And(logic.R("E", "x", "z"),
			logic.Exists(logic.And(logic.Equal("x", "z"), f), "x")), "z")
	}
	return f
}

func TestPathFormulaFO3(t *testing.T) {
	db := lineGraph(t, 6)
	for m := 1; m <= 5; m++ {
		q := logic.MustQuery([]logic.Var{"x", "y"}, pathFormula(m))
		if q.Width() > 3 {
			t.Fatalf("φ_%d has width %d > 3", m, q.Width())
		}
		got, err := BottomUp(q, db)
		if err != nil {
			t.Fatal(err)
		}
		want := relation.NewSet(2)
		for i := 0; i+m < 6; i++ {
			want.Add(relation.Tuple{i, i + m})
		}
		if !got.Equal(want) {
			t.Fatalf("φ_%d = %v, want %v", m, got, want)
		}
	}
}

func TestCrossValidateFOEvaluators(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		db := randomGraph(t, r, 2+r.Intn(4))
		f := randFO(r, 3)
		head := logic.SortedVars(logic.FreeVars(f))
		q, err := logic.NewQuery(head, f)
		if err != nil {
			t.Fatal(err)
		}
		bu, err := BottomUp(q, db)
		if err != nil {
			t.Fatalf("BottomUp(%s): %v", q, err)
		}
		nv, err := Naive(q, db)
		if err != nil {
			t.Fatalf("Naive(%s): %v", q, err)
		}
		al, err := Algebra(q, db)
		if err != nil {
			t.Fatalf("Algebra(%s): %v", q, err)
		}
		if !bu.Equal(nv) {
			t.Fatalf("BottomUp %v != Naive %v on %s\n%s", bu, nv, q, db)
		}
		if !al.Equal(nv) {
			t.Fatalf("Algebra %v != Naive %v on %s\n%s", al, nv, q, db)
		}
	}
}

// randFO generates a random FO formula over variables x,y,z and relations
// E/2, P/1.
func randFO(r *rand.Rand, depth int) logic.Formula {
	vars := []logic.Var{"x", "y", "z"}
	v := func() logic.Var { return vars[r.Intn(len(vars))] }
	if depth == 0 || r.Intn(5) == 0 {
		switch r.Intn(4) {
		case 0:
			return logic.R("E", v(), v())
		case 1:
			return logic.R("P", v())
		case 2:
			return logic.Equal(v(), v())
		default:
			return logic.Truth{Value: r.Intn(2) == 0}
		}
	}
	sub := func() logic.Formula { return randFO(r, depth-1) }
	switch r.Intn(6) {
	case 0:
		return logic.Not{F: sub()}
	case 1:
		return logic.Binary{Op: logic.AndOp, L: sub(), R: sub()}
	case 2:
		return logic.Binary{Op: logic.OrOp, L: sub(), R: sub()}
	case 3:
		return logic.Binary{Op: logic.BinOp(2 + r.Intn(2)), L: sub(), R: sub()}
	default:
		return logic.Quant{Kind: logic.QuantKind(r.Intn(2)), V: v(), F: sub()}
	}
}

func TestBottomUpWidthBound(t *testing.T) {
	db := lineGraph(t, 3)
	q := logic.MustQuery([]logic.Var{"x", "y"},
		logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("E", "z", "y")), "z"))
	if _, _, err := BottomUpStats(q, db, &Options{MaxWidth: 2}); err == nil {
		t.Fatal("width-3 query accepted under k=2")
	}
	if _, _, err := BottomUpStats(q, db, &Options{MaxWidth: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestBottomUpRejectsUnknownRelation(t *testing.T) {
	db := lineGraph(t, 3)
	q := logic.MustQuery([]logic.Var{"x"}, logic.R("Nope", "x"))
	if _, err := BottomUp(q, db); err == nil {
		t.Fatal("unknown relation accepted")
	}
}

func TestReachabilityLFP(t *testing.T) {
	db := lineGraph(t, 5)
	// Reach(x,y): [lfp S(x). x=y ∨ ∃z(E(x,z) ∧ S(z)/...)] — use param y.
	body := logic.Or(
		logic.Equal("x", "y"),
		logic.Exists(logic.And(logic.R("E", "x", "z"),
			logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z"))
	reach := logic.Lfp("S", []logic.Var{"x"}, body, "x")
	q := logic.MustQuery([]logic.Var{"x", "y"}, reach)
	if q.Width() != 3 {
		t.Fatalf("reachability width = %d, want 3", q.Width())
	}
	got, err := BottomUp(q, db)
	if err != nil {
		t.Fatal(err)
	}
	want := relation.NewSet(2)
	for i := 0; i < 5; i++ {
		for j := i; j < 5; j++ {
			want.Add(relation.Tuple{i, j})
		}
	}
	if !got.Equal(want) {
		t.Fatalf("reach = %v, want %v", got, want)
	}
	nv, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !nv.Equal(want) {
		t.Fatalf("naive reach = %v", nv)
	}
}

func TestGFPLargestSet(t *testing.T) {
	// [gfp S(x). P(x) ∧ ∃y(E(x,y) ∧ S(y)...)](u): greatest set of nodes with
	// an infinite (or terminating-in-cycle) P-path. On the 3-cycle with all P
	// it is everything; removing P(1) empties it stepwise.
	b := database.NewBuilder().Relation("E", 2).Relation("P", 1)
	b.Add("E", 0, 1).Add("E", 1, 2).Add("E", 2, 0)
	b.Add("P", 0).Add("P", 1).Add("P", 2)
	db := b.MustBuild()
	body := logic.And(logic.R("P", "x"),
		logic.Exists(logic.And(logic.R("E", "x", "y"),
			logic.Exists(logic.And(logic.Equal("x", "y"), logic.R("S", "x")), "x")), "y"))
	q := logic.MustQuery([]logic.Var{"u"}, logic.Gfp("S", []logic.Var{"x"}, body, "u"))
	got, err := BottomUp(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("gfp on full cycle = %v, want all 3", got)
	}

	b2 := database.NewBuilder().Relation("E", 2).Relation("P", 1)
	b2.Add("E", 0, 1).Add("E", 1, 2).Add("E", 2, 0).Add("P", 0).Add("P", 2).Domain(1)
	db2 := b2.MustBuild()
	got2, err := BottomUp(q, db2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != 0 {
		t.Fatalf("gfp with broken P-cycle = %v, want empty", got2)
	}
	// Cross-check both against Naive.
	for _, d := range []*database.Database{db, db2} {
		nv, err := Naive(q, d)
		if err != nil {
			t.Fatal(err)
		}
		bu, _ := BottomUp(q, d)
		if !nv.Equal(bu) {
			t.Fatalf("naive/bottomup disagree on gfp: %v vs %v", nv, bu)
		}
	}
}

func TestNestedAlternatingFixpoint(t *testing.T) {
	// The paper's §2.2 sentence: [gfp S(x). [lfp T(z). ∀y(E(z,y) →
	// (S(y) ∨ (P(y) ∧ T(y))))](x)](u): "no infinite E-path starting at u on
	// which P fails infinitely often."
	inner := logic.Lfp("T", []logic.Var{"z"},
		logic.Forall(logic.Implies(logic.R("E", "z", "y"),
			logic.Or(logic.R("S", "y"), logic.And(logic.R("P", "y"), logic.R("T", "y")))), "y"),
		"x")
	outer := logic.Gfp("S", []logic.Var{"x"}, inner, "u")
	q := logic.MustQuery([]logic.Var{"u"}, outer)

	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		db := randomGraph(t, r, 2+r.Intn(3))
		bu, err := BottomUp(q, db)
		if err != nil {
			t.Fatalf("BottomUp: %v", err)
		}
		nv, err := Naive(q, db)
		if err != nil {
			t.Fatalf("Naive: %v", err)
		}
		if !bu.Equal(nv) {
			t.Fatalf("alternating fixpoint disagrees: %v vs %v on\n%s", bu, nv, db)
		}
	}
}

func TestPFPConvergentAndDivergent(t *testing.T) {
	db := lineGraph(t, 3)
	// Convergent: [pfp S(x). true](u) reaches D in one step and stays.
	conv := logic.MustQuery([]logic.Var{"u"}, logic.Pfp("S", []logic.Var{"x"}, logic.True, "u"))
	got, err := BottomUp(conv, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("convergent pfp = %v", got)
	}
	// Divergent: [pfp S(x). ¬S(x)](u) flips between ∅ and D: limit is ∅.
	div := logic.MustQuery([]logic.Var{"u"}, logic.Pfp("S", []logic.Var{"x"}, logic.Neg(logic.R("S", "x")), "u"))
	got, err = BottomUp(div, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("divergent pfp = %v, want empty", got)
	}
	// Both cycle modes agree, and with Naive.
	for _, q := range []logic.Query{conv, div} {
		hash, _, err := BottomUpStats(q, db, &Options{PFPCycle: CycleHash})
		if err != nil {
			t.Fatal(err)
		}
		brent, _, err := BottomUpStats(q, db, &Options{PFPCycle: CycleBrent})
		if err != nil {
			t.Fatal(err)
		}
		nv, err := Naive(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !hash.Equal(brent) || !hash.Equal(nv) {
			t.Fatalf("pfp modes disagree on %s: %v / %v / %v", q, hash, brent, nv)
		}
	}
}

func TestPFPGrowingCounter(t *testing.T) {
	// [pfp S(x). S-is-empty ? P : grow by E-successors] — converges to the
	// reachable set from P, like an lfp but via pfp.
	db := lineGraph(t, 5)
	grow := logic.Or(
		logic.R("S", "x"),
		logic.Or(logic.R("P", "x"),
			logic.Exists(logic.And(logic.R("E", "z", "x"),
				logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z")))
	q := logic.MustQuery([]logic.Var{"u"}, logic.Pfp("S", []logic.Var{"x"}, grow, "u"))
	got, err := BottomUp(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5 { // P={0} reaches everything on the line
		t.Fatalf("pfp reachability = %v", got)
	}
	nv, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !nv.Equal(got) {
		t.Fatalf("naive disagrees: %v", nv)
	}
}

func TestPFPBudget(t *testing.T) {
	db := lineGraph(t, 3)
	div := logic.MustQuery([]logic.Var{"u"}, logic.Pfp("S", []logic.Var{"x"}, logic.Neg(logic.R("S", "x")), "u"))
	_, _, err := BottomUpStats(div, db, &Options{PFPBudget: 1})
	if err == nil || !errors.Is(err, ErrBudget) {
		t.Fatalf("expected budget error, got %v", err)
	}
}

func TestCrossValidateFPRandom(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		db := randomGraph(t, r, 2+r.Intn(3))
		f := randFP(r)
		q, err := logic.NewQuery(logic.SortedVars(logic.FreeVars(f)), f)
		if err != nil {
			t.Fatal(err)
		}
		if err := logic.Validate(f, nil); err != nil {
			continue
		}
		bu, err := BottomUp(q, db)
		if err != nil {
			t.Fatalf("BottomUp(%s): %v", q, err)
		}
		nv, err := Naive(q, db)
		if err != nil {
			t.Fatalf("Naive(%s): %v", q, err)
		}
		if !bu.Equal(nv) {
			t.Fatalf("FP disagreement on %s:\nBottomUp %v\nNaive %v\n%s", q, bu, nv, db)
		}
	}
}

// randFP generates a random FP formula: an FO skeleton with a fixpoint
// spliced in (possibly with a parameter variable).
func randFP(r *rand.Rand) logic.Formula {
	inner := logic.Or(
		logic.R("P", "x"),
		logic.Exists(logic.And(logic.R("E", "x", "z"),
			logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z"))
	var fix logic.Formula
	switch r.Intn(3) {
	case 0:
		fix = logic.Lfp("S", []logic.Var{"x"}, inner, "y")
	case 1:
		fix = logic.Gfp("S", []logic.Var{"x"},
			logic.And(inner, logic.R("S", "x")), "y")
	default:
		// Parameterized: body mentions free y.
		fix = logic.Lfp("S", []logic.Var{"x"},
			logic.Or(logic.Equal("x", "y"), inner), "y")
	}
	switch r.Intn(3) {
	case 0:
		return fix
	case 1:
		return logic.And(fix, logic.R("P", "y"))
	default:
		return logic.Exists(fix.(logic.Formula), "y")
	}
}

func TestNaiveSOEnumeration(t *testing.T) {
	db := lineGraph(t, 2)
	// ∃S ∀x (S(x) ↔ P(x)) — trivially true.
	f := logic.SOExists(logic.Forall(logic.Iff(logic.R("S", "x"), logic.R("P", "x")), "x"), logic.RelVar{Name: "S", Arity: 1})
	h, err := NaiveHolds(f, db)
	if err != nil {
		t.Fatal(err)
	}
	if !h {
		t.Fatal("∃S(S=P) should hold")
	}
	// ∃S ∀x (S(x) ∧ ¬S(x)) — unsatisfiable.
	g := logic.SOExists(logic.Forall(logic.And(logic.R("S", "x"), logic.Neg(logic.R("S", "x"))), "x"), logic.RelVar{Name: "S", Arity: 1})
	h, err = NaiveHolds(g, db)
	if err != nil {
		t.Fatal(err)
	}
	if h {
		t.Fatal("contradictory SO formula holds")
	}
}

func TestNaiveSOCapRefusesLargeSearch(t *testing.T) {
	db := lineGraph(t, 4)
	f := logic.SOExists(logic.True, logic.RelVar{Name: "S", Arity: 3}) // 4^3 = 64 bits > cap
	if _, err := NaiveHolds(f, db); err == nil {
		t.Fatal("oversized SO enumeration accepted")
	}
}

func TestAlgebraStatsArities(t *testing.T) {
	db := lineGraph(t, 4)
	// x,y,z,w chain: intermediate arity must reach 4 under Algebra...
	f := logic.Exists(logic.And(logic.R("E", "x", "y"),
		logic.And(logic.R("E", "y", "z"), logic.R("E", "z", "w"))), "y", "z", "w")
	q := logic.MustQuery([]logic.Var{"x"}, f)
	_, st, err := AlgebraStats(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxIntermediateArity < 4 {
		t.Fatalf("algebra max arity = %d, want ≥ 4", st.MaxIntermediateArity)
	}
	// ...while the width-3 rewrite stays at 3 under BottomUp.
	q3 := logic.MustQuery([]logic.Var{"x"}, logic.Exists(pathFormula(3), "y"))
	_, st3, err := BottomUpStats(q3, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st3.MaxIntermediateArity != 3 {
		t.Fatalf("bottom-up max arity = %d, want 3", st3.MaxIntermediateArity)
	}
}

func TestAlgebraRejectsFixpoints(t *testing.T) {
	db := lineGraph(t, 3)
	q := logic.MustQuery([]logic.Var{"u"},
		logic.Lfp("S", []logic.Var{"x"}, logic.Or(logic.R("P", "x"), logic.R("S", "x")), "u"))
	if _, err := Algebra(q, db); err == nil {
		t.Fatal("Algebra accepted a fixpoint")
	}
}

func TestEmptyDomainRejected(t *testing.T) {
	db, err := database.NewBuilder().Relation("P", 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	q := logic.MustQuery(nil, logic.Forall(logic.R("P", "x"), "x"))
	if _, err := BottomUp(q, db); err == nil {
		t.Fatal("BottomUp accepted an empty domain")
	}
	if _, err := Naive(q, db); err == nil {
		t.Fatal("Naive accepted an empty domain")
	}
	if _, err := Algebra(q, db); err == nil {
		t.Fatal("Algebra accepted an empty domain")
	}
}

func TestBooleanQueryProjection(t *testing.T) {
	db := lineGraph(t, 3)
	q := logic.MustQuery(nil, logic.Exists(logic.R("P", "x"), "x"))
	got, err := BottomUp(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Arity() != 0 || got.Len() != 1 {
		t.Fatalf("Boolean true query = %v", got)
	}
	q2 := logic.MustQuery(nil, logic.Forall(logic.R("P", "x"), "x"))
	got, err = BottomUp(q2, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("Boolean false query = %v", got)
	}
}
