package eval

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// reachBody is the positive reachability body used by both the lfp and the
// ifp variants.
func reachBody() logic.Formula {
	return logic.Or(
		logic.R("P", "x"),
		logic.Exists(logic.And(logic.R("E", "z", "x"),
			logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z"))
}

func TestIFPEqualsLFPOnPositiveBodies(t *testing.T) {
	// For S-positive bodies the inflationary and the least fixpoint
	// coincide — the classical fact underlying FP ≡ IFP.
	r := rand.New(rand.NewSource(3))
	lfpQ := logic.MustQuery([]logic.Var{"u"}, logic.Lfp("S", []logic.Var{"x"}, reachBody(), "u"))
	ifpQ := logic.MustQuery([]logic.Var{"u"}, logic.Ifp("S", []logic.Var{"x"}, reachBody(), "u"))
	for trial := 0; trial < 20; trial++ {
		db := randomGraph(t, r, 2+r.Intn(4))
		l, err := BottomUp(lfpQ, db)
		if err != nil {
			t.Fatal(err)
		}
		i, err := BottomUp(ifpQ, db)
		if err != nil {
			t.Fatal(err)
		}
		if !l.Equal(i) {
			t.Fatalf("ifp %v != lfp %v on\n%s", i, l, db)
		}
	}
}

func TestIFPNonMonotoneBody(t *testing.T) {
	// [ifp S(x). ¬S(x) ∧ P-free] — the body is non-monotone (illegal under
	// lfp) but inflationary iteration converges: stage 1 adds everything.
	db := lineGraph(t, 4)
	body := logic.Neg(logic.R("S", "x"))
	if err := logic.Validate(logic.Lfp("S", []logic.Var{"x"}, body, "u"), nil); err == nil {
		t.Fatal("negative body accepted under lfp")
	}
	q := logic.MustQuery([]logic.Var{"u"}, logic.Ifp("S", []logic.Var{"x"}, body, "u"))
	if err := logic.Validate(q.Body, nil); err != nil {
		t.Fatalf("negative body rejected under ifp: %v", err)
	}
	got, err := BottomUp(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Fatalf("ifp of ¬S = %v, want everything", got)
	}
	nv, err := Naive(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !nv.Equal(got) {
		t.Fatalf("naive disagrees: %v", nv)
	}
}

func TestIFPStrictlyInflationary(t *testing.T) {
	// [ifp S(x). P(x) ∧ ¬S(x)]: stage 1 adds P; stage 2's φ is empty but
	// the union keeps P — the limit is P, while a pfp of the same body
	// diverges (P, ∅, P, ∅, …) and denotes ∅.
	db := lineGraph(t, 4)
	body := logic.And(logic.R("P", "x"), logic.Neg(logic.R("S", "x")))
	ifpQ := logic.MustQuery([]logic.Var{"u"}, logic.Ifp("S", []logic.Var{"x"}, body, "u"))
	got, err := BottomUp(ifpQ, db)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("ifp = %v, want P = {(0)}", got)
	}
	pfpQ := logic.MustQuery([]logic.Var{"u"}, logic.Pfp("S", []logic.Var{"x"}, body, "u"))
	pfpAns, err := BottomUp(pfpQ, db)
	if err != nil {
		t.Fatal(err)
	}
	if pfpAns.Len() != 0 {
		t.Fatalf("pfp of the same body should diverge to ∅, got %v", pfpAns)
	}
	// Naive agrees on both.
	for _, q := range []logic.Query{ifpQ, pfpQ} {
		nv, err := Naive(q, db)
		if err != nil {
			t.Fatal(err)
		}
		bu, _ := BottomUp(q, db)
		if !nv.Equal(bu) {
			t.Fatalf("naive/bottomup disagree on %s", q)
		}
	}
}

func TestIFPWithParameters(t *testing.T) {
	// Parameterized inflationary reachability: [ifp S(x). x=y ∨ …](x) with
	// free y equals the lfp version.
	body := logic.Or(
		logic.Equal("x", "y"),
		logic.Exists(logic.And(logic.R("E", "x", "z"),
			logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z"))
	ifpQ := logic.MustQuery([]logic.Var{"x", "y"}, logic.Ifp("S", []logic.Var{"x"}, body, "x"))
	lfpQ := logic.MustQuery([]logic.Var{"x", "y"}, logic.Lfp("S", []logic.Var{"x"}, body, "x"))
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		db := randomGraph(t, r, 2+r.Intn(3))
		i, err := BottomUp(ifpQ, db)
		if err != nil {
			t.Fatal(err)
		}
		l, err := BottomUp(lfpQ, db)
		if err != nil {
			t.Fatal(err)
		}
		if !i.Equal(l) {
			t.Fatalf("parameterized ifp %v != lfp %v", i, l)
		}
		nv, err := Naive(ifpQ, db)
		if err != nil {
			t.Fatal(err)
		}
		if !nv.Equal(i) {
			t.Fatalf("naive disagrees: %v vs %v", nv, i)
		}
	}
}

func TestIFPClassificationAndCertificates(t *testing.T) {
	f := logic.Ifp("S", []logic.Var{"x"}, logic.Neg(logic.R("S", "x")), "u")
	if fr := logic.Classify(f); fr != logic.FragIFP {
		t.Fatalf("Classify = %v, want IFP", fr)
	}
	// §3.2: the Theorem 3.5 technique does not apply to IFP — the prover
	// must reject it.
	db := lineGraph(t, 3)
	q := logic.MustQuery([]logic.Var{"u"}, f)
	if _, _, err := FindCertificate(q, db); err == nil {
		t.Fatal("certificates accepted an IFP query")
	}
	// A lone IFP is fine under Monotone; so is a *closed* IFP nested under
	// an lfp (its environment never changes), but a dependent one is not.
	if _, err := Monotone(q, db); err != nil {
		t.Fatalf("Monotone rejected a lone ifp: %v", err)
	}
	closed := logic.MustQuery([]logic.Var{"u"},
		logic.Lfp("T", []logic.Var{"x"},
			logic.Or(logic.Ifp("S", []logic.Var{"x"}, logic.R("P", "x"), "x"), logic.R("T", "x")), "u"))
	mo, err := Monotone(closed, db)
	if err != nil {
		t.Fatalf("Monotone rejected closed nested ifp: %v", err)
	}
	bu, err := BottomUp(closed, db)
	if err != nil {
		t.Fatal(err)
	}
	nv, err := Naive(closed, db)
	if err != nil {
		t.Fatal(err)
	}
	if !bu.Equal(nv) || !mo.Equal(nv) {
		t.Fatalf("closed nested ifp: bottomup %v, monotone %v, naive %v", bu, mo, nv)
	}
	// A dependent occurrence the other way: an lfp inside an ifp body that
	// mentions the ifp's relation. (The converse — a recursion relation of
	// an lfp used inside a nested ifp body — is ill-formed: ifp bodies are
	// non-monotone, so Validate rejects it for positivity.)
	dependent := logic.MustQuery([]logic.Var{"u"},
		logic.Ifp("T", []logic.Var{"x"},
			logic.Lfp("S", []logic.Var{"x"},
				logic.Or(logic.R("S", "x"), logic.R("T", "x")), "x"), "u"))
	if _, err := Monotone(dependent, db); err == nil {
		t.Fatal("Monotone accepted a dependent lfp nested under ifp")
	}
	illFormed := logic.Lfp("T", []logic.Var{"x"},
		logic.Or(logic.Ifp("S", []logic.Var{"x"},
			logic.And(logic.R("P", "x"), logic.R("T", "x")), "x"), logic.R("T", "x")), "u")
	if err := logic.Validate(illFormed, nil); err == nil {
		t.Fatal("lfp recursion relation inside an ifp body should fail positivity")
	}
}

func TestIfpToPfpEquivalence(t *testing.T) {
	// The §3.2/§3.4 bound: IFP evaluates through PFP after the rewrite
	// [ifp S.φ] ⇒ [pfp S. S ∨ φ]. Cross-validate on positive and
	// non-monotone bodies over random graphs.
	r := rand.New(rand.NewSource(4711))
	bodies := []logic.Formula{
		reachBody(),
		logic.Neg(logic.R("S", "x")),
		logic.And(logic.R("P", "x"), logic.Neg(logic.R("S", "x"))),
		logic.Or(logic.R("S", "x"), logic.Neg(logic.R("P", "x"))),
	}
	for _, body := range bodies {
		ifpQ := logic.MustQuery([]logic.Var{"u"}, logic.Ifp("S", []logic.Var{"x"}, body, "u"))
		rewritten, err := logic.IfpToPfp(ifpQ.Body)
		if err != nil {
			t.Fatal(err)
		}
		if fr := logic.Classify(rewritten); fr != logic.FragPFP {
			t.Fatalf("rewrite not PFP: %v", fr)
		}
		pfpQ := logic.MustQuery([]logic.Var{"u"}, rewritten)
		for trial := 0; trial < 10; trial++ {
			db := randomGraph(t, r, 2+r.Intn(3))
			a, err := BottomUp(ifpQ, db)
			if err != nil {
				t.Fatal(err)
			}
			b, err := BottomUp(pfpQ, db)
			if err != nil {
				t.Fatal(err)
			}
			if !a.Equal(b) {
				t.Fatalf("IfpToPfp changed semantics of %s:\nifp %v\npfp %v\n%s",
					body, a, b, db)
			}
		}
	}
}

func TestIfpToPfpNested(t *testing.T) {
	// The rewrite recurses through other operators and nested fixpoints.
	inner := logic.Ifp("S", []logic.Var{"x"}, logic.Neg(logic.R("S", "x")), "x")
	f := logic.Exists(logic.And(inner, logic.Forall(logic.Or(logic.R("P", "x"), logic.True), "x")), "x")
	rewritten, err := logic.IfpToPfp(f)
	if err != nil {
		t.Fatal(err)
	}
	hasIfp := false
	logic.Walk(rewritten, func(g logic.Formula) {
		if fx, ok := g.(logic.Fix); ok && fx.Op == logic.IFP {
			hasIfp = true
		}
	})
	if hasIfp {
		t.Fatal("rewrite left an ifp behind")
	}
	db := lineGraph(t, 3)
	a, err := NaiveHolds(f, db)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NaiveHolds(rewritten, db)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("nested rewrite changed semantics")
	}
}

func TestIFPAlternationDepth(t *testing.T) {
	inner := logic.Ifp("S", []logic.Var{"x"}, logic.R("P", "x"), "x")
	outer := logic.Ifp("T", []logic.Var{"x"}, inner, "x")
	if d := logic.AlternationDepth(outer); d != 2 {
		t.Fatalf("nested ifp depth = %d, want 2 (ifp always alternates)", d)
	}
}
