package eval

import (
	"context"
	"fmt"

	"repro/internal/database"
	"repro/internal/plan"
	"repro/internal/relation"
)

// Delta-restart maintenance. When a database snapshot evolves by a tuple
// delta (database.Apply), a cached answer for a maintainable plan does not
// have to be recomputed from scratch: the compiled engine restarts each
// seedable fixpoint's stage loop from the previous snapshot's fixpoint
// (plan.MaintInfo documents why that is sound) and lets the ordinary
// semi-naive machinery absorb the change. The hoisted frontier — database
// atoms, recursion-free subtrees — is recomputed against the new snapshot as
// usual, so the first stage of each seeded loop re-derives exactly what the
// delta adds; stages after it run semi-naive on the (usually tiny) growth.
//
// The maintained state is deliberately small: one sparse tuple set per
// seedable binder (the final fixpoint stage), never the full DAG of n^k-bit
// node values. Maintenance is a dense-route optimization; sparse and hybrid
// runs return no state and fall back to recomputation after a relevant delta.

// MaintState is the reusable state captured from one dense evaluation of a
// maintainable plan: the final stage of every seedable binder, as sparse
// tuple sets in the extended stage arity. It is immutable after capture and
// may be shared across goroutines; it is only meaningful for the exact
// (plan, database snapshot) pair it was captured from, or a successor
// snapshot reached through deltas admitted by CanMaintain.
type MaintState struct {
	stages []*relation.Set // indexed by binder; nil for unseeded binders
}

// Tuples returns the total tuple count of the maintained state — the
// footprint maintenance keeps alive per cached result.
func (s *MaintState) Tuples() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, st := range s.stages {
		if st != nil {
			n += st.Len()
		}
	}
	return n
}

// CanMaintain reports whether a cached result for p, captured on the delta's
// parent snapshot, may be maintained by delta-restart rather than recomputed:
// the plan must have seedable binders, and every effectively changed relation
// the plan reads must change in a direction that can only grow the seeded
// stage operators (inserts into positively-read relations, deletes from
// negatively-read ones — plan.MaintInfo's polarity analysis).
func CanMaintain(p *plan.Plan, d *database.Delta) bool {
	m := p.Maint
	if m == nil || !m.OK || d == nil {
		return false
	}
	for name, rd := range d.Rels {
		if !m.References(name) {
			continue
		}
		if len(rd.Ins) > 0 && !m.InsertSafe(name) {
			return false
		}
		if len(rd.Del) > 0 && !m.DeleteSafe(name) {
			return false
		}
	}
	return true
}

// EvalPlanCapture is EvalPlanContext additionally capturing maintenance
// state. The state is non-nil only when the run took the dense route and the
// plan has seedable binders; callers treat a nil state as "not maintainable,
// recompute on change".
func EvalPlanCapture(ctx context.Context, p *plan.Plan, db *database.Database, opts *Options) (*relation.Set, *Stats, *MaintState, error) {
	return evalPlanRouted(ctx, p, db, opts, nil, true)
}

// EvalPlanMaintained re-evaluates p against a successor snapshot by
// delta-restart: prev is the state EvalPlanCapture (or a previous
// EvalPlanMaintained) returned for the parent snapshot, and the caller has
// checked CanMaintain for the connecting delta. The answer is byte-identical
// to a from-scratch evaluation; Stats.MaintainedFromDelta is 1 and a fresh
// state for the new snapshot is returned.
//
// Maintenance runs dense regardless of Options.Backend routing — that is the
// route the state was captured on — so it fails if the plan's space is dense-
// infeasible (callers fall back to plain recomputation).
func EvalPlanMaintained(ctx context.Context, p *plan.Plan, db *database.Database, opts *Options, prev *MaintState) (*relation.Set, *Stats, *MaintState, error) {
	if p.Maint == nil || !p.Maint.OK {
		return nil, nil, nil, fmt.Errorf("eval: plan has no seedable fixpoints, cannot maintain")
	}
	if prev == nil {
		return nil, nil, nil, fmt.Errorf("eval: no maintenance state to restart from")
	}
	if len(prev.stages) != p.NumBinders {
		return nil, nil, nil, fmt.Errorf("eval: maintenance state has %d binders, plan has %d", len(prev.stages), p.NumBinders)
	}
	if err := validatePlanRun(ctx, p, db, opts); err != nil {
		return nil, nil, nil, err
	}
	den := p.Density(db.Size(), cardOf(db))
	if !den.SpaceFeasible {
		return nil, nil, nil, fmt.Errorf("eval: dense space %d^%d exceeds %d bits; maintenance requires the dense route",
			db.Size(), len(p.Vars), relation.MaxDenseBits)
	}
	ans, st, state, err := evalPlanDenseMaint(ctx, p, db, opts, hybridDensity(den), prev, true)
	if err == nil && st != nil {
		st.MaintainedFromDelta = 1
	}
	return ans, st, state, err
}
