// Package eval implements the query evaluators of Vardi (PODS 1995):
//
//   - BottomUp — the Proposition 3.1 algorithm: every subformula of a width-k
//     query denotes one k-ary dense relation over the full variable tuple, so
//     evaluation is a sequence of nᵏ-bit set operations. This realizes the
//     paper's PTIME combined-complexity upper bound for FOᵏ, and extends to
//     FPᵏ (fixpoint iteration with bounded-arity recursion relations) and
//     PFPᵏ (Theorem 3.8, with cycle detection for divergence).
//
//   - Naive — the generic environment-recursion algorithm: the textbook
//     PSPACE procedure whose running time is exponential in quantifier
//     nesting. It is the paper's "unbounded" baseline and, being obviously
//     correct, the oracle for every cross-validation test in this repository.
//     It also evaluates ESO by enumerating the quantified relations (the
//     exponential guess of §3.3), guarded by a size cap.
//
//   - Algebra — classical relational-algebra evaluation where each
//     subformula is computed over exactly its free variables. Its
//     intermediate arity equals the subformula's free-variable count, which
//     is what blows up on unbounded-width queries (§1's motivating example).
//
// The Theorem 3.5 certificate machinery (NP∩co-NP for FPᵏ) is in
// certificate.go of this package.
package eval

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
)

// ErrBudget is wrapped by errors reporting that an evaluation exceeded its
// configured iteration budget (only possible for PFP, whose runs may be
// exponentially long).
var ErrBudget = errors.New("iteration budget exceeded")

// CycleMode selects how the PFP evaluator detects non-convergence.
type CycleMode int

const (
	// CycleHash remembers a hash of every stage and stops at the first
	// repetition. Fast, but keeps O(#stages) state.
	CycleHash CycleMode = iota
	// CycleBrent uses Brent's cycle-finding algorithm: a constant number of
	// live relations regardless of run length — the PSPACE discipline of
	// Theorem 3.8 made literal.
	CycleBrent
)

// Options configures evaluation.
type Options struct {
	// MaxWidth caps the query width (0 means no cap beyond the dense-space
	// size limit). Callers enforcing a specific Lᵏ set this to k.
	MaxWidth int
	// PFPBudget caps the number of stages a single PFP computation may take
	// before evaluation fails with ErrBudget. 0 means DefaultPFPBudget.
	PFPBudget int
	// PFPCycle selects the convergence detector.
	PFPCycle CycleMode
	// Backend selects the relation representation for the Compiled engine:
	// auto (the zero value), dense, or sparse. Tree-walking engines ignore
	// it — they are inherently full-width dense. It participates in result
	// cache keys (different backends may report different Stats).
	Backend Backend
	// SparseBudget caps the tuple count of any single sparse materialization
	// (join result, widening, complement, stage). 0 means
	// DefaultSparseBudget. Exceeding it fails with ErrSparseBudget, except
	// under BackendAuto with a feasible dense space, where the engine falls
	// back to dense evaluation.
	SparseBudget int
	// Parallelism bounds the number of worker goroutines the PFP evaluator
	// uses for its per-parameter-assignment sweep (the n^|ȳ| independent
	// fixpoint runs of a parametrized PFP are embarrassingly parallel).
	// 0 means GOMAXPROCS; 1 preserves fully serial evaluation. The answer
	// and all Stats counters are identical at every setting.
	Parallelism int
	// Tracer, when non-nil, receives one TraceEvent per completed fixpoint
	// stage from the BottomUp, Monotone and Compiled evaluators (including
	// every PFP stage of every parameter assignment). A nil Tracer is
	// zero-cost: the engines hoist the nil check out of the stage work, so
	// no counting, timing or allocation happens on the hot path. The hook
	// runs inline on the evaluating goroutine — keep it cheap — and MUST be
	// safe for concurrent use: the parallel PFP sweep and the compiled wave
	// scheduler fire it from several workers at once. Tracer never changes
	// answers, so it is excluded from result-cache keys.
	Tracer Tracer
	// Profile, when non-nil, receives per-plan-node execution counters from
	// the Compiled engine (both the dense and sparse executors): evaluation
	// counts and cumulative wall time per DAG node, the data behind the
	// server's explain mode. A nil Profile is zero-cost — the executors
	// hoist the nil check like they do for Tracer. Profile never changes
	// answers, so it is excluded from result-cache keys. Tree-walking
	// engines have no plan nodes and ignore it.
	Profile *PlanProfile
}

// Tracer is the stage-boundary observation hook of Options. See
// Options.Tracer for the concurrency and cost contract.
type Tracer func(TraceEvent)

// TraceEvent describes one completed fixpoint stage.
type TraceEvent struct {
	// Engine is the evaluator that ran the stage: bottomup, monotone or
	// compiled.
	Engine string
	// Fixpoint is the recursion relation bound by the fixpoint operator
	// (e.g. "S" in [lfp S(x). …]).
	Fixpoint string
	// Op is the operator: lfp, gfp, ifp or pfp.
	Op string
	// Stage is the 1-based stage index within one fixpoint run. PFP runs
	// restart the index per parameter assignment, and Brent cycle detection
	// re-executes stages it revisits — the trace reflects work actually
	// performed, not the abstract stage sequence.
	Stage int
	// Tuples is the stage relation's tuple count after this stage.
	Tuples int
	// Delta is the tuple-count change relative to the previous stage.
	// Non-negative for LFP/IFP (increasing chains) and non-positive for
	// GFP; PFP stages may move either way.
	Delta int
	// Elapsed is the wall-clock time this stage took, including the body
	// re-evaluation that produced it.
	Elapsed time.Duration
	// Binder is the plan binder id this fixpoint run belongs to for the
	// Compiled engine (dense and sparse executors), so a trace consumer can
	// attach stage work to the exact plan.FixInfo it iterated. The
	// tree-walking engines (bottomup, monotone) have no plan and report -1.
	Binder int
}

// tracerOf resolves the Options.Tracer hook (nil Options means no tracing).
func tracerOf(opts *Options) Tracer {
	if opts == nil {
		return nil
	}
	return opts.Tracer
}

// profileOf resolves the Options.Profile hook (nil Options means no
// profiling).
func profileOf(opts *Options) *PlanProfile {
	if opts == nil {
		return nil
	}
	return opts.Profile
}

// PlanProfile accumulates per-plan-node execution counters for one (or
// several pooled) Compiled evaluations: how many times each DAG node was
// computed and the cumulative wall time those computations took. Counters
// are atomic — the parallel wave scheduler and the PFP sweep compute nodes
// from several goroutines at once — so the slices are safe to read only
// after the evaluation returns.
//
// Time is INCLUSIVE: a node computed on demand inside another node's
// computation (a cache miss during recursive descent) is charged to both.
// Under the wave scheduler nodes are computed in topological order, so
// children are cache hits and inclusive ≈ self for the per-stage dirty
// work; the first evaluation of a hoisted chain is the main double-counted
// case. Explain output labels the column accordingly.
type PlanProfile struct {
	// Evals[n] counts node n's computations (cache misses, not visits).
	Evals []int64
	// NS[n] is the cumulative wall time of node n's computations, in
	// nanoseconds, inclusive of on-demand child computation.
	NS []int64
}

// NewPlanProfile returns a profile sized for a plan of n nodes.
func NewPlanProfile(n int) *PlanProfile {
	return &PlanProfile{Evals: make([]int64, n), NS: make([]int64, n)}
}

// observe records one computation of node n.
func (pp *PlanProfile) observe(n int, d time.Duration) {
	atomic.AddInt64(&pp.Evals[n], 1)
	atomic.AddInt64(&pp.NS[n], d.Nanoseconds())
}

// parallelism resolves the Options.Parallelism knob.
func parallelism(opts *Options) int {
	if opts != nil && opts.Parallelism > 0 {
		return opts.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// DefaultPFPBudget bounds PFP stage counts when Options.PFPBudget is zero.
const DefaultPFPBudget = 1 << 20

// checkCtx reports the context's error, wrapped for the eval layer. The
// evaluators call it at iteration boundaries only — one check per fixpoint
// stage (and per head assignment for Naive) — so cancellation never lands in
// the middle of a stage and serial answers stay deterministic: a request
// either completes a stage or returns with what it had. Callers can test the
// cause with errors.Is(err, context.DeadlineExceeded) or context.Canceled.
func checkCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("eval: cancelled: %w", err)
	}
	return nil
}

// Stats reports work done by an evaluation. Counters are updated through
// atomic operations — the parallel PFP sweep increments them from several
// worker goroutines at once — so the fields are plain int64s that are only
// safe to read after the evaluation returns.
type Stats struct {
	// SubformulaEvals counts dense-relation constructions (one per
	// subformula visit, including re-visits inside fixpoint iterations).
	SubformulaEvals int64
	// FixIterations counts fixpoint stages across all fixpoint operators.
	FixIterations int64
	// MaxIntermediateArity is the largest arity of any intermediate
	// relation (always the query width for BottomUp; per-subformula for
	// Algebra).
	MaxIntermediateArity int64
	// MaxIntermediateTuples is the largest tuple count of any intermediate
	// relation.
	MaxIntermediateTuples int64
	// NodesReused counts plan-node values served from the Compiled engine's
	// DAG cache instead of being recomputed: per fixpoint stage, the size of
	// the hoisted frontier the stage read without re-evaluating (work the
	// tree-walking evaluators would redo every iteration). Zero for other
	// engines. The counter is schedule-independent: it depends only on the
	// plan and the iteration counts, never on Options.Parallelism.
	NodesReused int64
	// DeltaTuples counts tuples pushed through recursion-relation deltas by
	// the Compiled engine's semi-naive stages — the per-stage |ΔS| sum. A
	// value well below FixIterations × |S| is the semi-naive win made
	// visible. Zero for other engines and for fixpoints evaluated without
	// delta propagation (GFP, PFP, non-monotone dirty sets).
	DeltaTuples int64
	// TuplesTouched counts tuples written by sparse operations: the summed
	// block sizes of sparse node evaluations, delta updates, and Yannakakis
	// intermediates. The sparse analogue of dense word work; zero for pure
	// dense runs.
	TuplesTouched int64
	// RepSwitches counts representation conversions: sparse subtree results
	// cylindrified into the dense space at a hybrid frontier boundary.
	RepSwitches int64
	// AcyclicFastPath is 1 when the query was answered by the Yannakakis
	// semijoin pipeline (acyclic conjunctive query under the sparse
	// backend), 0 otherwise.
	AcyclicFastPath int64
	// MaintainedFromDelta is 1 when this evaluation restarted its fixpoint
	// stage loops from a previous snapshot's fixpoints (EvalPlanMaintained)
	// instead of recomputing from scratch, 0 otherwise. Aggregated by bvqd it
	// counts answers maintained incrementally across database updates.
	MaintainedFromDelta int64
	// TuplesStreamed counts answer tuples actually decoded and delivered by
	// an Enumerator (enum.go); zero for materializing evaluations, whose
	// extraction is not tuple-metered.
	TuplesStreamed int64
	// TuplesSkipped counts answer tuples an Enumerator skipped without
	// decoding (OFFSET seeks; for the dense cursor these cost popcounts, not
	// decodes).
	TuplesSkipped int64
}

func (s *Stats) addSubformulaEvals(d int64) {
	if s != nil {
		atomic.AddInt64(&s.SubformulaEvals, d)
	}
}

func (s *Stats) addFixIterations(d int64) {
	if s != nil {
		atomic.AddInt64(&s.FixIterations, d)
	}
}

func (s *Stats) addNodesReused(d int64) {
	if s != nil {
		atomic.AddInt64(&s.NodesReused, d)
	}
}

func (s *Stats) addDeltaTuples(d int64) {
	if s != nil {
		atomic.AddInt64(&s.DeltaTuples, d)
	}
}

func (s *Stats) addTuplesTouched(d int64) {
	if s != nil {
		atomic.AddInt64(&s.TuplesTouched, d)
	}
}

func (s *Stats) addRepSwitches(d int64) {
	if s != nil {
		atomic.AddInt64(&s.RepSwitches, d)
	}
}

func (s *Stats) addAcyclicFastPath(d int64) {
	if s != nil {
		atomic.AddInt64(&s.AcyclicFastPath, d)
	}
}

func (s *Stats) addTuplesStreamed(d int64) {
	if s != nil {
		atomic.AddInt64(&s.TuplesStreamed, d)
	}
}

func (s *Stats) addTuplesSkipped(d int64) {
	if s != nil {
		atomic.AddInt64(&s.TuplesSkipped, d)
	}
}

// observe folds one intermediate relation's shape into the maxima. It may be
// called concurrently once the PFP sweep is parallel, so the maxima are
// maintained with compare-and-swap.
func (s *Stats) observe(arity, tuples int) {
	if s == nil {
		return
	}
	atomicMax(&s.MaxIntermediateArity, int64(arity))
	atomicMax(&s.MaxIntermediateTuples, int64(tuples))
}

func atomicMax(p *int64, v int64) {
	for {
		cur := atomic.LoadInt64(p)
		if v <= cur || atomic.CompareAndSwapInt64(p, cur, v) {
			return
		}
	}
}

// boundRel is an interpreted relation symbol: a database relation
// (params nil) or a recursion relation extended with its parameter
// variables (the free individual variables of the fixpoint body). The value
// is either a sparse set or a dense relation; the dense form is what the
// bottom-up fixpoint evaluators bind, so stage relations never round-trip
// through sparse tuple sets.
type boundRel struct {
	set    *relation.Set
	dense  *relation.Dense
	params []logic.Var
}

// arity returns the bound relation's extended arity (recursion tuple plus
// parameters).
func (br boundRel) arity() int {
	if br.dense != nil {
		return br.dense.Space().Arity()
	}
	return br.set.Arity()
}

// env maps bound relation symbols to their current values, with scoping.
type env struct {
	rels map[string]boundRel
}

func newEnv() *env { return &env{rels: make(map[string]boundRel)} }

// clone returns an independent copy of the environment, so a PFP sweep
// worker can bind its own recursion stages without racing its siblings.
func (e *env) clone() *env {
	c := newEnv()
	for k, v := range e.rels {
		c.rels[k] = v
	}
	return c
}

func (e *env) bind(name string, r boundRel) (restore func()) {
	prev, had := e.rels[name]
	e.rels[name] = r
	return func() {
		if had {
			e.rels[name] = prev
		} else {
			delete(e.rels, name)
		}
	}
}

// signatureOf extracts the database's relation signature for validation.
func signatureOf(db *database.Database) logic.Signature {
	sig := make(logic.Signature)
	for _, name := range db.Names() {
		a, _ := db.Arity(name)
		sig[name] = a
	}
	return sig
}

// checkWidth enforces the Lᵏ membership restriction from Options.
func checkWidth(q logic.Query, opts *Options) error {
	if opts != nil && opts.MaxWidth > 0 {
		if w := q.Width(); w > opts.MaxWidth {
			return fmt.Errorf("eval: query width %d exceeds bound k=%d", w, opts.MaxWidth)
		}
	}
	return nil
}

// checkDomain rejects empty structures. First-order semantics over an empty
// domain is degenerate (every existential is false, every universal true,
// and there are no variable assignments at all), and the paper's databases
// are nonempty; all evaluators refuse uniformly rather than disagree.
func checkDomain(db *database.Database) error {
	if db.Size() == 0 {
		return fmt.Errorf("eval: empty domain")
	}
	return nil
}
