package eval

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/relation"
)

func tcLFP() logic.Query {
	body := logic.Lfp("T", []logic.Var{"x", "y"},
		logic.Or(logic.R("E", "x", "y"),
			logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("T", "z", "y")), "z")),
		"x", "y")
	return logic.MustQuery([]logic.Var{"x", "y"}, body)
}

func tcIFP() logic.Query {
	body := logic.Ifp("T", []logic.Var{"x", "y"},
		logic.Or(logic.R("E", "x", "y"),
			logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("T", "z", "y")), "z")),
		"x", "y")
	return logic.MustQuery([]logic.Var{"x", "y"}, body)
}

func mustCompile(t *testing.T, q logic.Query) *plan.Plan {
	t.Helper()
	p, err := plan.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

var denseOpts = &Options{Backend: BackendDense}

func TestMaintainTCInsert(t *testing.T) {
	ctx := context.Background()
	db := lineGraph(t, 30)
	p := mustCompile(t, tcLFP())

	base, st0, state, err := EvalPlanCapture(ctx, p, db, denseOpts)
	if err != nil {
		t.Fatal(err)
	}
	if state == nil || state.Tuples() == 0 {
		t.Fatalf("dense capture of a maintainable plan returned no state")
	}
	if st0.MaintainedFromDelta != 0 {
		t.Fatalf("capture run flagged as maintained")
	}

	db2, delta, err := db.Apply([]database.Update{{Relation: "E", Insert: []relation.Tuple{{15, 3}}}})
	if err != nil {
		t.Fatal(err)
	}
	if !CanMaintain(p, delta) {
		t.Fatalf("insert-only delta on a positive relation should be maintainable")
	}
	got, mst, state2, err := EvalPlanMaintained(ctx, p, db2, denseOpts, state)
	if err != nil {
		t.Fatal(err)
	}
	if mst.MaintainedFromDelta != 1 {
		t.Fatalf("MaintainedFromDelta = %d, want 1", mst.MaintainedFromDelta)
	}
	want, sst, err := EvalPlanContext(ctx, p, db2, denseOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("maintained answer differs from scratch:\n got %s\nwant %s", got, want)
	}
	if base.String() == want.String() {
		t.Fatalf("test edge did not change the answer; pick a better delta")
	}
	if mst.FixIterations > sst.FixIterations {
		t.Errorf("maintained run used %d stages, scratch %d — restart did not help",
			mst.FixIterations, sst.FixIterations)
	}

	// The fresh state chains: a second update maintains from it.
	db3, delta3, err := db2.Apply([]database.Update{{Relation: "E", Insert: []relation.Tuple{{29, 0}}}})
	if err != nil {
		t.Fatal(err)
	}
	if !CanMaintain(p, delta3) {
		t.Fatal("second insert should be maintainable")
	}
	got3, _, _, err := EvalPlanMaintained(ctx, p, db3, denseOpts, state2)
	if err != nil {
		t.Fatal(err)
	}
	want3, _, err := EvalPlanContext(ctx, p, db3, denseOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got3.String() != want3.String() {
		t.Fatalf("chained maintenance diverged from scratch")
	}
}

func TestCanMaintainPolarity(t *testing.T) {
	p := mustCompile(t, tcLFP())
	db := lineGraph(t, 6)

	ins := func(rel string, ts ...relation.Tuple) database.Update {
		return database.Update{Relation: rel, Insert: ts}
	}
	del := func(rel string, ts ...relation.Tuple) database.Update {
		return database.Update{Relation: rel, Delete: ts}
	}

	_, dIns, err := db.Apply([]database.Update{ins("E", relation.Tuple{3, 0})})
	if err != nil {
		t.Fatal(err)
	}
	if !CanMaintain(p, dIns) {
		t.Errorf("insert into positively-read E should be maintainable")
	}
	_, dDel, err := db.Apply([]database.Update{del("E", relation.Tuple{0, 1})})
	if err != nil {
		t.Fatal(err)
	}
	if CanMaintain(p, dDel) {
		t.Errorf("delete from positively-read E must force recomputation")
	}
	// P is outside the plan's footprint entirely.
	_, dP, err := db.Apply([]database.Update{del("P", relation.Tuple{0})})
	if err != nil {
		t.Fatal(err)
	}
	if !CanMaintain(p, dP) {
		t.Errorf("delta on an unreferenced relation should be maintainable (it cannot change the answer)")
	}
}

// TestMaintainNegatedAtomDelete exercises the negative-polarity direction:
// deleting from a relation read only under ¬ grows the stage operator, so the
// delta is maintainable even though it is a delete.
func TestMaintainNegatedAtomDelete(t *testing.T) {
	ctx := context.Background()
	body := logic.Lfp("T", []logic.Var{"x", "y"},
		logic.Or(
			logic.And(logic.R("E", "x", "y"), logic.Neg(logic.R("P", "x"))),
			logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("T", "z", "y")), "z")),
		"x", "y")
	q := logic.MustQuery([]logic.Var{"x", "y"}, body)
	p := mustCompile(t, q)

	db := lineGraph(t, 12) // P = {0}
	_, _, state, err := EvalPlanCapture(ctx, p, db, denseOpts)
	if err != nil {
		t.Fatal(err)
	}
	db2, delta, err := db.Apply([]database.Update{{Relation: "P", Delete: []relation.Tuple{{0}}}})
	if err != nil {
		t.Fatal(err)
	}
	if !CanMaintain(p, delta) {
		t.Fatalf("delete from negatively-read P should be maintainable")
	}
	got, mst, _, err := EvalPlanMaintained(ctx, p, db2, denseOpts, state)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := EvalPlanContext(ctx, p, db2, denseOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("maintained answer differs from scratch:\n got %s\nwant %s", got, want)
	}
	if mst.MaintainedFromDelta != 1 {
		t.Fatalf("MaintainedFromDelta = %d, want 1", mst.MaintainedFromDelta)
	}
	// The insert direction on P must be rejected.
	_, dIns, err := db2.Apply([]database.Update{{Relation: "P", Insert: []relation.Tuple{{0}}}})
	if err != nil {
		t.Fatal(err)
	}
	if CanMaintain(p, dIns) {
		t.Fatalf("insert into negatively-read P must force recomputation")
	}
}

// TestChurnDifferentialMaintained is the randomized churn harness: a stream
// of ≥200 tuple-level updates against maintained evaluation, differentially
// checked for byte-identical answers against from-scratch dense, sparse and
// auto runs at every step. It runs under -race in `make check`.
func TestChurnDifferentialMaintained(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(7))
	db := randomGraph(t, r, 7)
	n := db.Size()

	type tracked struct {
		p     *plan.Plan
		state *MaintState
	}
	qs := []*tracked{
		{p: mustCompile(t, tcLFP())},
		{p: mustCompile(t, tcIFP())},
	}
	for _, q := range qs {
		_, _, state, err := EvalPlanCapture(ctx, q.p, db, denseOpts)
		if err != nil {
			t.Fatal(err)
		}
		if state == nil {
			t.Fatal("capture returned no state for a maintainable plan")
		}
		q.state = state
	}

	const steps = 220
	maintainedRuns := 0
	for step := 0; step < steps; step++ {
		// Insert-biased random churn over E, with occasional P updates and
		// deletes that force the recompute path.
		var ups []database.Update
		for k := 0; k < 1+r.Intn(3); k++ {
			tup := relation.Tuple{r.Intn(n), r.Intn(n)}
			if r.Intn(10) < 7 {
				ups = append(ups, database.Update{Relation: "E", Insert: []relation.Tuple{tup}})
			} else {
				ups = append(ups, database.Update{Relation: "E", Delete: []relation.Tuple{tup}})
			}
		}
		if r.Intn(5) == 0 {
			ups = append(ups, database.Update{Relation: "P", Insert: []relation.Tuple{{r.Intn(n)}}})
		}
		next, delta, err := db.Apply(ups)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		db = next

		for qi, q := range qs {
			var got *relation.Set
			if q.state != nil && CanMaintain(q.p, delta) {
				ans, st, state, err := EvalPlanMaintained(ctx, q.p, db, denseOpts, q.state)
				if err != nil {
					t.Fatalf("step %d query %d: maintain: %v", step, qi, err)
				}
				if st.MaintainedFromDelta != 1 {
					t.Fatalf("step %d query %d: maintained run not flagged", step, qi)
				}
				got, q.state = ans, state
				maintainedRuns++
			} else {
				ans, _, state, err := EvalPlanCapture(ctx, q.p, db, denseOpts)
				if err != nil {
					t.Fatalf("step %d query %d: recompute: %v", step, qi, err)
				}
				got, q.state = ans, state
			}

			wantDense, _, err := EvalPlanContext(ctx, q.p, db, denseOpts)
			if err != nil {
				t.Fatalf("step %d query %d: dense scratch: %v", step, qi, err)
			}
			if got.String() != wantDense.String() {
				t.Fatalf("step %d query %d: maintained ≠ dense scratch\n got %s\nwant %s",
					step, qi, got, wantDense)
			}
			wantAuto, _, err := EvalPlanContext(ctx, q.p, db, nil)
			if err != nil {
				t.Fatalf("step %d query %d: auto scratch: %v", step, qi, err)
			}
			if got.String() != wantAuto.String() {
				t.Fatalf("step %d query %d: maintained ≠ auto scratch", step, qi)
			}
			if den := q.p.Density(db.Size(), cardOf(db)); den.SparseOK {
				wantSparse, _, err := EvalPlanContext(ctx, q.p, db, &Options{Backend: BackendSparse})
				if err != nil {
					t.Fatalf("step %d query %d: sparse scratch: %v", step, qi, err)
				}
				if got.String() != wantSparse.String() {
					t.Fatalf("step %d query %d: maintained ≠ sparse scratch", step, qi)
				}
			}
		}
	}
	if maintainedRuns < steps/2 {
		t.Fatalf("only %d maintained runs over %d steps — the harness is not exercising maintenance", maintainedRuns, steps)
	}
}
