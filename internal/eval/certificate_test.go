package eval

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
	"repro/internal/relation"
)

// alternatingFormula builds a νµ formula of alternation depth d ≥ 1:
// depth 1 is a plain lfp reachability from P; each further level wraps in
// the opposite operator. All levels stay within 3 variables.
func alternatingFormula(d int) logic.Formula {
	// Level 1: lfp S₁(x). P(x) ∨ ∃z(E(z,x) ∧ ∃x(x=z ∧ S₁(x)))
	step := func(rel string, inner logic.Formula) logic.Formula {
		return logic.Or(inner,
			logic.Exists(logic.And(logic.R("E", "z", "x"),
				logic.Exists(logic.And(logic.Equal("x", "z"), logic.R(rel, "x")), "x")), "z"))
	}
	f := logic.Formula(logic.R("P", "x"))
	op := logic.LFP
	for i := 1; i <= d; i++ {
		rel := logic.Var("S" + string(rune('0'+i)))
		body := step(string(rel), f)
		if op == logic.GFP {
			// Keep the recursion relation positive and the operator ν:
			// νS. inner ∧ (S ∨ true) — degenerate but alternating.
			body = logic.And(step(string(rel), f), logic.Or(logic.R(string(rel), "x"), logic.True))
		}
		f = logic.Fix{Op: op, Rel: string(rel), Vars: []logic.Var{"x"}, Body: body, Args: []logic.Var{"x"}}
		if op == logic.LFP {
			op = logic.GFP
		} else {
			op = logic.LFP
		}
	}
	return f
}

func TestFindVerifyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		db := randomGraph(t, r, 2+r.Intn(3))
		d := 1 + r.Intn(3)
		q := logic.MustQuery([]logic.Var{"x"}, alternatingFormula(d))
		want, err := BottomUp(q, db)
		if err != nil {
			t.Fatalf("BottomUp: %v", err)
		}
		cert, res, err := FindCertificate(q, db)
		if err != nil {
			t.Fatalf("FindCertificate: %v", err)
		}
		if !res.Answer.Equal(want) {
			t.Fatalf("prover answer %v != BottomUp %v (depth %d)\n%s", res.Answer, want, d, db)
		}
		ver, err := VerifyCertificate(q, db, cert)
		if err != nil {
			t.Fatalf("VerifyCertificate: %v", err)
		}
		if !ver.Answer.Equal(want) {
			t.Fatalf("verified answer %v != %v", ver.Answer, want)
		}
	}
}

func TestVerifiedAnswerIsUnderApproximation(t *testing.T) {
	// Truncating a gfp chain must never produce extra tuples; it either
	// fails a check or yields a subset of the true answer.
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		db := randomGraph(t, r, 2+r.Intn(3))
		q := logic.MustQuery([]logic.Var{"x"}, alternatingFormula(2))
		want, err := BottomUp(q, db)
		if err != nil {
			t.Fatal(err)
		}
		cert, _, err := FindCertificate(q, db)
		if err != nil {
			t.Fatal(err)
		}
		// Shrink every chain element to the first element.
		tampered := &Certificate{Chains: map[string][]*relation.Set{}}
		for path, chain := range cert.Chains {
			tampered.Chains[path] = chain[:1]
		}
		res, err := VerifyCertificate(q, db, tampered)
		if err != nil {
			continue // rejected: fine
		}
		if !res.Answer.SubsetOf(want) {
			t.Fatalf("under-approximation violated: %v vs true %v", res.Answer, want)
		}
	}
}

func TestVerifyRejectsInflatedChain(t *testing.T) {
	// A ν-node chain inflated beyond the true gfp must fail the
	// post-fixpoint check (soundness of Lemma 3.3).
	b := lineGraph(t, 4) // no cycles: gfp of "has E-successor in S" is empty
	body := logic.And(
		logic.Exists(logic.And(logic.R("E", "x", "y"),
			logic.Exists(logic.And(logic.Equal("x", "y"), logic.R("S", "x")), "x")), "y"),
		logic.Or(logic.R("S", "x"), logic.True))
	q := logic.MustQuery([]logic.Var{"u"}, logic.Gfp("S", []logic.Var{"x"}, body, "u"))
	want, err := BottomUp(q, b)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() != 0 {
		t.Fatalf("gfp on a dag should be empty, got %v", want)
	}
	cert, _, err := FindCertificate(q, b)
	if err != nil {
		t.Fatal(err)
	}
	// Inflate every chain element to the full set.
	full := relation.NewSet(1)
	for i := 0; i < 4; i++ {
		full.Add(relation.Tuple{i})
	}
	for path := range cert.Chains {
		cert.Chains[path] = []*relation.Set{full}
	}
	if _, err := VerifyCertificate(q, b, cert); err == nil {
		t.Fatal("inflated certificate accepted")
	}
}

func TestVerifyRejectsMalformedCertificates(t *testing.T) {
	db := lineGraph(t, 3)
	q := logic.MustQuery([]logic.Var{"x"}, alternatingFormula(2))
	if _, err := VerifyCertificate(q, db, nil); err == nil {
		t.Fatal("nil certificate accepted")
	}
	if _, err := VerifyCertificate(q, db, &Certificate{Chains: map[string][]*relation.Set{}}); err == nil {
		t.Fatal("certificate with missing chains accepted")
	}
	// Non-increasing chain.
	cert, _, err := FindCertificate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	for path, chain := range cert.Chains {
		if len(chain) >= 1 {
			bigger := relation.NewSet(chain[0].Arity())
			forEachAssignment(3, chain[0].Arity(), func(t []int) bool { bigger.Add(t); return true })
			cert.Chains[path] = []*relation.Set{bigger, relation.NewSet(chain[0].Arity())}
			break
		}
	}
	if _, err := VerifyCertificate(q, db, cert); err == nil {
		t.Fatal("non-increasing chain accepted")
	}
}

func TestCertificateSizePolynomial(t *testing.T) {
	// The witness must stay polynomial: for the depth-2 shrinking formula
	// over an n-node line graph, chain elements are ≤ #evaluations (here 1
	// per gfp node) and tuples ≤ elements·n.
	for _, n := range []int{4, 8, 16} {
		db := lineGraph(t, n)
		q := logic.MustQuery([]logic.Var{"x"}, alternatingFormula(2))
		cert, _, err := FindCertificate(q, db)
		if err != nil {
			t.Fatal(err)
		}
		nodes, elements, tuples := cert.Size()
		if nodes == 0 {
			t.Fatal("no gfp chains recorded")
		}
		if tuples > nodes*elements*n {
			t.Fatalf("n=%d: certificate has %d tuples across %d elements — super-polynomial?",
				n, tuples, elements)
		}
	}
	var nilCert *Certificate
	if a, b, c := nilCert.Size(); a != 0 || b != 0 || c != 0 {
		t.Fatal("nil certificate should have zero size")
	}
}

func TestCoNPRefutation(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		db := randomGraph(t, r, 2+r.Intn(3))
		q := logic.MustQuery([]logic.Var{"x"}, alternatingFormula(2))
		want, err := BottomUp(q, db)
		if err != nil {
			t.Fatal(err)
		}
		nq, err := NegateQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		cert, res, err := FindCertificate(nq, db)
		if err != nil {
			t.Fatalf("FindCertificate(¬q): %v", err)
		}
		ver, err := VerifyCertificate(nq, db, cert)
		if err != nil {
			t.Fatalf("VerifyCertificate(¬q): %v", err)
		}
		// The two certified answers partition the domain.
		for v := 0; v < db.Size(); v++ {
			tp := relation.Tuple{v}
			if want.Contains(tp) == ver.Answer.Contains(tp) {
				t.Fatalf("refutation overlaps answer at %v: q=%v ¬q=%v", tp, want, ver.Answer)
			}
		}
		_ = res
	}
}

func TestCertificateRejectsPFPAndESO(t *testing.T) {
	db := lineGraph(t, 3)
	pfpQ := logic.MustQuery([]logic.Var{"u"}, logic.Pfp("S", []logic.Var{"x"}, logic.Neg(logic.R("S", "x")), "u"))
	if _, _, err := FindCertificate(pfpQ, db); err == nil {
		t.Fatal("PFP accepted by certificate prover")
	}
	esoQ := logic.MustQuery(nil, logic.SOExists(logic.True, logic.RelVar{Name: "S", Arity: 1}))
	if _, _, err := FindCertificate(esoQ, db); err == nil {
		t.Fatal("ESO accepted by certificate prover")
	}
}

func TestMonotoneMatchesBottomUp(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for trial := 0; trial < 25; trial++ {
		db := randomGraph(t, r, 2+r.Intn(3))
		q := logic.MustQuery([]logic.Var{"x"}, alternatingFormula(1))
		bu, err := BottomUp(q, db)
		if err != nil {
			t.Fatal(err)
		}
		mo, err := Monotone(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !mo.Equal(bu) {
			t.Fatalf("Monotone %v != BottomUp %v", mo, bu)
		}
	}
}

func TestMonotoneNestedSamePolarity(t *testing.T) {
	// µ inside µ: reach-from-P through two edge relations.
	r := rand.New(rand.NewSource(17))
	inner := logic.Lfp("T", []logic.Var{"x"},
		logic.Or(logic.R("P", "x"),
			logic.Exists(logic.And(logic.R("E", "z", "x"),
				logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("T", "x")), "x")), "z")), "x")
	outer := logic.Lfp("S", []logic.Var{"x"},
		logic.Or(inner,
			logic.Exists(logic.And(logic.R("E", "x", "z"),
				logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z")), "x")
	q := logic.MustQuery([]logic.Var{"x"}, outer)
	for trial := 0; trial < 15; trial++ {
		db := randomGraph(t, r, 2+r.Intn(3))
		bu, err := BottomUp(q, db)
		if err != nil {
			t.Fatal(err)
		}
		mo, err := Monotone(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !mo.Equal(bu) {
			t.Fatalf("nested µµ: Monotone %v != BottomUp %v", mo, bu)
		}
	}
}

func TestMonotoneRejectsDependentAlternation(t *testing.T) {
	db := lineGraph(t, 3)
	// νS.(∃succ ∈ S ∧ [µT. (P ∧ S) ∨ pred-step](x)) — the inner µ mentions
	// S, so the alternation is real and warm-starting would be unsound.
	hasSucc := logic.Exists(logic.And(logic.R("E", "x", "y"),
		logic.Exists(logic.And(logic.Equal("x", "y"), logic.R("S", "x")), "x")), "y")
	innerBody := logic.Or(
		logic.And(logic.R("P", "x"), logic.R("S", "x")),
		logic.Exists(logic.And(logic.R("E", "z", "x"),
			logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("T", "x")), "x")), "z"))
	q := logic.MustQuery([]logic.Var{"x"},
		logic.Gfp("S", []logic.Var{"x"},
			logic.And(hasSucc, logic.Lfp("T", []logic.Var{"x"}, innerBody, "x")), "x"))
	if _, err := Monotone(q, db); err == nil {
		t.Fatal("dependently alternating formula accepted by Monotone")
	}
}

func TestMonotoneAcceptsClosedOppositeNesting(t *testing.T) {
	// alternatingFormula nests µ and ν syntactically, but every inner
	// fixpoint is closed — Emerson–Lei depth 1 — so Monotone handles it
	// with memoization and must agree with BottomUp.
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 15; trial++ {
		db := randomGraph(t, r, 2+r.Intn(3))
		for d := 1; d <= 3; d++ {
			q := logic.MustQuery([]logic.Var{"x"}, alternatingFormula(d))
			bu, err := BottomUp(q, db)
			if err != nil {
				t.Fatal(err)
			}
			mo, err := Monotone(q, db)
			if err != nil {
				t.Fatalf("Monotone rejected closed nesting at depth %d: %v", d, err)
			}
			if !mo.Equal(bu) {
				t.Fatalf("Monotone %v != BottomUp %v at depth %d", mo, bu, d)
			}
		}
	}
}

func TestVerifyCheaperThanNaiveOnAlternation(t *testing.T) {
	// The point of Theorem 3.5: verification iterations scale like l·nᵏ while
	// naive nested evaluation scales like n^{kl}.
	db := lineGraph(t, 6)
	q := logic.MustQuery([]logic.Var{"x"}, alternatingFormula(3))
	_, naiveStats, err := BottomUpStats(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	cert, _, err := FindCertificate(q, db)
	if err != nil {
		t.Fatal(err)
	}
	c, body, err := newCertCtx(q, db)
	if err != nil {
		t.Fatal(err)
	}
	c.mode = certVerify
	c.cert = cert
	if _, err := c.eval(body, "r"); err != nil {
		t.Fatal(err)
	}
	if c.stats.FixIterations >= naiveStats.FixIterations {
		t.Fatalf("verification (%d iterations) not cheaper than naive nested (%d)",
			c.stats.FixIterations, naiveStats.FixIterations)
	}
}
