// Differential testing of the sparse backend: the dense engine is the
// oracle, and every admitted query must come back byte-identical through
// the sval executor, the Yannakakis fast path, and the hybrid frontier.
// The large-domain tests drive the whole point of the backend — a k=3 query
// over n=10,000, whose dense space (10¹² bits) is two orders of magnitude
// past relation.MaxDenseBits — under an explicit peak-memory ceiling.
package eval

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/relation"
)

// forestDB mirrors workload.ForestGraph (which this in-package test cannot
// import without a cycle through mucalc): disjoint directed paths of `block`
// consecutive nodes, P marking the roots. Its transitive closure is bounded
// by n·block pairs however large n grows.
func forestDB(n, block int) *database.Database {
	b := database.NewBuilder().Relation("E", 2).Relation("P", 1)
	for i := 0; i < n; i++ {
		b.Domain(i)
		if i%block == 0 {
			b.Add("P", i)
		} else {
			b.Add("E", i-1, i)
		}
	}
	return b.MustBuild()
}

// lineDB is the path 0 → 1 → … → n−1 with P = {0}.
func lineDB(n int) *database.Database {
	return forestDB(n, n)
}

// TestDifferentialSparseVsDense pins the forced-sparse route byte-identical
// to the forced-dense route on random FP/IFP formulas, and the auto route
// byte-identical to dense — including Stats — on small spaces, where the
// density heuristic must never change established behavior.
func TestDifferentialSparseVsDense(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	g := &diffGen{r: r}
	trials, kept := 400, 0
	for trial := 0; trial < trials; trial++ {
		f := g.formula(3, nil)
		if logic.Validate(f, nil) != nil {
			continue
		}
		q, err := logic.NewQuery(logic.SortedVars(logic.FreeVars(f)), f)
		if err != nil {
			continue
		}
		db := randomGraph(t, r, 2+r.Intn(4))
		dense, dst, err := CompiledStats(q, db, &Options{Backend: BackendDense, Parallelism: 1})
		if err != nil {
			t.Fatalf("dense(%s): %v", q, err)
		}

		sparse, _, err := CompiledStats(q, db, &Options{Backend: BackendSparse, Parallelism: 1})
		if err != nil {
			if strings.Contains(err.Error(), "sparse backend:") {
				continue // outside the sparse fragment (GFP/PFP, negative fix body)
			}
			t.Fatalf("sparse(%s): %v", q, err)
		}
		kept++
		if !sparse.Equal(dense) {
			t.Fatalf("sparse disagrees on %s:\nsparse %v\ndense  %v\n%s", q, sparse, dense, db)
		}

		auto, ast, err := CompiledStats(q, db, &Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("auto(%s): %v", q, err)
		}
		if !auto.Equal(dense) {
			t.Fatalf("auto disagrees with dense on %s", q)
		}
		if *ast != *dst {
			t.Fatalf("auto stats diverged from dense on a small space: %s\nauto  %+v\ndense %+v", q, ast, dst)
		}
	}
	if kept < trials/8 {
		t.Fatalf("generator kept only %d/%d formulas in the sparse fragment; tighten it", kept, trials)
	}
}

// TestAcyclicFastPathDifferential runs random tree-shaped (hence acyclic)
// conjunctive queries through the sparse backend, which must route them via
// Yannakakis and agree with the dense engine exactly.
func TestAcyclicFastPathDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	for trial := 0; trial < 80; trial++ {
		m := 2 + r.Intn(4)
		vars := make([]logic.Var, m+1)
		for i := range vars {
			vars[i] = logic.Var(fmt.Sprintf("a%d", i))
		}
		var conj []logic.Formula
		for i := 1; i <= m; i++ {
			conj = append(conj, logic.R("E", vars[r.Intn(i)], vars[i]))
		}
		if r.Intn(2) == 0 {
			conj = append(conj, logic.R("P", vars[r.Intn(m+1)]))
		}
		var head, bound []logic.Var
		for _, v := range vars {
			if r.Intn(3) == 0 {
				head = append(head, v)
			} else {
				bound = append(bound, v)
			}
		}
		if len(head) == 0 {
			head, bound = []logic.Var{vars[0]}, bound[1:]
		}
		q := logic.MustQuery(head, logic.Exists(logic.And(conj...), bound...))
		db := randomGraph(t, r, 3+r.Intn(5))

		dense, _, err := CompiledStats(q, db, &Options{Backend: BackendDense, Parallelism: 1})
		if err != nil {
			t.Fatalf("dense(%s): %v", q, err)
		}
		sparse, sst, err := CompiledStats(q, db, &Options{Backend: BackendSparse, Parallelism: 1})
		if err != nil {
			t.Fatalf("sparse(%s): %v", q, err)
		}
		if sst.AcyclicFastPath != 1 {
			t.Fatalf("%s: acyclic CQ not routed through Yannakakis (stats %+v)", q, sst)
		}
		if !sparse.Equal(dense) {
			t.Fatalf("fast path disagrees on %s:\nsparse %v\ndense  %v\n%s", q, sparse, dense, db)
		}
	}
}

// TestFromQueryEqualities pins the equality-unification corners of the CQ
// recognizer: a bound=head equality is compiled away onto the fast path; a
// head=head equality is rejected and the query still answers correctly
// through the general sparse executor.
func TestFromQueryEqualities(t *testing.T) {
	db := lineDB(6)
	unified := logic.MustQuery([]logic.Var{"x", "y"},
		logic.Exists(logic.And(logic.R("E", "x", "z"), logic.Equal("z", "y")), "z"))
	rejected := logic.MustQuery([]logic.Var{"x", "y"},
		logic.And(logic.Equal("x", "y"), logic.R("E", "x", "x")))
	for _, tc := range []struct {
		q    logic.Query
		fast int64
	}{{unified, 1}, {rejected, 0}} {
		dense, _, err := CompiledStats(tc.q, db, &Options{Backend: BackendDense})
		if err != nil {
			t.Fatal(err)
		}
		sparse, sst, err := CompiledStats(tc.q, db, &Options{Backend: BackendSparse})
		if err != nil {
			t.Fatal(err)
		}
		if sst.AcyclicFastPath != tc.fast {
			t.Fatalf("%s: AcyclicFastPath = %d, want %d", tc.q, sst.AcyclicFastPath, tc.fast)
		}
		if !sparse.Equal(dense) {
			t.Fatalf("%s: sparse %v, dense %v", tc.q, sparse, dense)
		}
	}
}

// tcQuerySparse is transitive closure as a width-3 LFP — the k=3 shape that
// hits the n^k wall on large domains.
func tcQuerySparse() logic.Query {
	return logic.MustQuery([]logic.Var{"x", "y"},
		logic.Lfp("T", []logic.Var{"x", "y"},
			logic.Or(logic.R("E", "x", "y"),
				logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("T", "z", "y")), "z")),
			"x", "y"))
}

// peakHeapDuring samples HeapAlloc while fn runs and returns fn's error and
// the observed high-water mark in bytes.
func peakHeapDuring(fn func() error) (uint64, error) {
	var peak uint64
	done := make(chan struct{})
	tick := make(chan struct{})
	go func() {
		defer close(tick)
		var ms runtime.MemStats
		for {
			select {
			case <-done:
				return
			case <-time.After(2 * time.Millisecond):
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > atomic.LoadUint64(&peak) {
					atomic.StoreUint64(&peak, ms.HeapAlloc)
				}
			}
		}
	}()
	err := fn()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > atomic.LoadUint64(&peak) {
		atomic.StoreUint64(&peak, ms.HeapAlloc)
	}
	close(done)
	<-tick
	return atomic.LoadUint64(&peak), err
}

// TestSparseLargeDomainTC is the acceptance criterion of the sparse
// backend: transitive closure (k=3) over a 10,000-node forest, a query the
// dense engine cannot even allocate (10¹² bits), evaluated sparsely with
// the correct answer and under 1 GiB of peak heap.
func TestSparseLargeDomainTC(t *testing.T) {
	const n, block = 10000, 8
	db := forestDB(n, block)
	q := tcQuerySparse()

	if _, _, err := CompiledStats(q, db, &Options{Backend: BackendDense}); err == nil {
		t.Fatalf("dense backend must reject a 10000^3 space")
	}

	var got *relation.Set
	peak, err := peakHeapDuring(func() error {
		set, st, err := CompiledStats(q, db, nil) // auto: space infeasible → sparse
		if err != nil {
			return err
		}
		if st.TuplesTouched == 0 {
			return fmt.Errorf("sparse run reported zero TuplesTouched")
		}
		got = set
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > 1<<30 {
		t.Fatalf("peak heap %d bytes exceeds the 1 GiB budget", peak)
	}

	// The forest closure is exactly the within-block ascending pairs.
	want := 0
	for start := 0; start < n; start += block {
		end := start + block
		if end > n {
			end = n
		}
		sz := end - start
		want += sz * (sz - 1) / 2
	}
	if got.Len() != want {
		t.Fatalf("closure has %d pairs, want %d", got.Len(), want)
	}
	probe := func(a, b int, member bool) {
		if got.Contains(relation.Tuple{a, b}) != member {
			t.Fatalf("closure membership (%d,%d) = %v, want %v", a, b, !member, member)
		}
	}
	probe(0, 7, true)
	probe(8, 15, true)
	probe(7, 8, false)
	probe(0, 9999, false)
}

// TestHybridFrontierMatchesDense drives the auto backend on a feasible but
// large space (200³ bits > hybridMinBits) with a sparse edge set: the run
// must label a sparse frontier, convert at its boundary (RepSwitches), and
// agree with pure dense exactly.
func TestHybridFrontierMatchesDense(t *testing.T) {
	db := forestDB(200, 10)
	q := tcQuerySparse()
	p, err := plan.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	den := p.Density(db.Size(), cardOf(db))
	if !den.SpaceFeasible || !den.HasSparseFrontier() {
		t.Fatalf("200^3 with a sparse edge set should be hybrid territory: %+v", den)
	}

	dense, _, err := CompiledStats(q, db, &Options{Backend: BackendDense, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	auto, ast, err := CompiledStats(q, db, &Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !auto.Equal(dense) {
		t.Fatalf("hybrid run disagrees with dense: %d vs %d tuples", auto.Len(), dense.Len())
	}
	if ast.RepSwitches == 0 {
		t.Fatalf("hybrid run performed no representation switches (stats %+v)", ast)
	}
}

// TestSparseCancellation checks the stage-boundary cancellation contract of
// the sparse fixpoint loop: cancelling mid-iteration surfaces
// context.Canceled and leaves no binding behind (reusing the plan
// afterwards must work). Run under -race this also saturates the
// cancel/cleanup paths the Release-discipline audit cares about.
func TestSparseCancellation(t *testing.T) {
	db := forestDB(5000, 50)
	q := tcQuerySparse()
	p, err := plan.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		stages := 0
		opts := &Options{Backend: BackendSparse, Tracer: func(TraceEvent) {
			stages++
			if stages == 2 {
				cancel()
			}
		}}
		_, _, err := EvalPlanContext(ctx, p, db, opts)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d: err = %v, want context.Canceled", trial, err)
		}
		// The plan must be cleanly reusable after a cancelled run.
		ans, _, err := EvalPlanContext(context.Background(), p, db, &Options{Backend: BackendSparse})
		if err != nil {
			t.Fatalf("trial %d: rerun after cancel: %v", trial, err)
		}
		if ans.Len() == 0 {
			t.Fatalf("trial %d: rerun returned empty closure", trial)
		}
	}
}

// TestSparseBudgetFallsBackToDense forces a tiny budget on a feasible space:
// the explicit sparse backend must fail with ErrSparseBudget, while auto
// silently reruns dense and still answers.
func TestSparseBudgetFallsBackToDense(t *testing.T) {
	db := randomGraph(t, rand.New(rand.NewSource(5)), 6)
	// ¬E forces a complement whose block exceeds a budget of 2 tuples.
	q := logic.MustQuery([]logic.Var{"x", "y"}, logic.Neg(logic.R("E", "x", "y")))
	_, _, err := CompiledStats(q, db, &Options{Backend: BackendSparse, SparseBudget: 2})
	if !errors.Is(err, ErrSparseBudget) {
		t.Fatalf("err = %v, want ErrSparseBudget", err)
	}
	dense, _, err := CompiledStats(q, db, &Options{Backend: BackendDense})
	if err != nil {
		t.Fatal(err)
	}
	auto, _, err := CompiledStats(q, db, &Options{SparseBudget: 2})
	if err != nil {
		t.Fatalf("auto with tiny budget must fall back to dense: %v", err)
	}
	if !auto.Equal(dense) {
		t.Fatalf("auto fallback disagrees with dense")
	}
}
