package eval

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
)

// BottomUp evaluates a query by the Proposition 3.1 algorithm: every
// subformula denotes a dense relation over the full tuple of the query's
// variables, so all intermediate results have arity Width(q). The supported
// fragments are FO, FP and PFP (second-order quantifiers need the eso
// package). The answer is returned over domain indices 0..n−1.
func BottomUp(q logic.Query, db *database.Database) (*relation.Set, error) {
	ans, _, err := BottomUpStats(q, db, nil)
	return ans, err
}

// BottomUpStats is BottomUp with options and work statistics.
func BottomUpStats(q logic.Query, db *database.Database, opts *Options) (*relation.Set, *Stats, error) {
	return BottomUpContext(context.Background(), q, db, opts)
}

// BottomUpContext is BottomUpStats honoring a context: cancellation and
// deadlines are checked once per fixpoint stage (LFP/GFP/IFP iterations, PFP
// stages, and between PFP sweep assignments), never inside a stage, so any
// answer that is produced is byte-identical to an uncancelled run. When the
// context fires mid-evaluation the error wraps ctx.Err() and the returned
// Stats hold the work completed so far (a partial reading; the answer is
// nil).
func BottomUpContext(ctx context.Context, q logic.Query, db *database.Database, opts *Options) (*relation.Set, *Stats, error) {
	if err := q.Validate(signatureOf(db)); err != nil {
		return nil, nil, err
	}
	if err := checkDomain(db); err != nil {
		return nil, nil, err
	}
	if err := checkWidth(q, opts); err != nil {
		return nil, nil, err
	}
	// Quantifier-free and FO bodies have no fixpoint boundaries, so check
	// once up front: an already-expired context never starts evaluating.
	if err := checkCtx(ctx); err != nil {
		return nil, nil, err
	}
	vars := q.Vars()
	sp, err := relation.NewSpace(len(vars), db.Size())
	if err != nil {
		return nil, nil, err
	}
	c := &buCtx{
		ctx:    ctx,
		db:     db,
		sp:     sp,
		axes:   make(map[logic.Var]int, len(vars)),
		env:    newEnv(),
		stats:  &Stats{},
		opts:   opts,
		atoms:  &atomCache{},
		spaces: &spaceCache{n: db.Size()},
	}
	for i, v := range vars {
		c.axes[v] = i
	}
	d, err := c.eval(q.Body)
	if err != nil {
		return nil, c.stats, err
	}
	head := make([]int, len(q.Head))
	for i, v := range q.Head {
		head[i] = c.axes[v]
	}
	return d.Project(head), c.stats, nil
}

// atomCache memoizes the cylindrified dense form of database atoms, keyed by
// relation name and argument axes. Database relations are immutable during
// one evaluation, so every re-visit of R(x̄) inside a fixpoint body is a
// word-copy of the cached master instead of a per-tuple cylinder walk. The
// cache is shared by all PFP sweep workers.
type atomCache struct {
	mu sync.Mutex
	m  map[string]*relation.Dense
}

// spaceCache shares the per-arity extended spaces (and with them their
// scratch pools and diagonal/template caches) across all fixpoint visits and
// sweep workers of one evaluation.
type spaceCache struct {
	mu sync.Mutex
	n  int
	m  map[int]*relation.Space
}

func (sc *spaceCache) space(arity int) (*relation.Space, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sp, ok := sc.m[arity]; ok {
		return sp, nil
	}
	sp, err := relation.NewSpace(arity, sc.n)
	if err != nil {
		return nil, err
	}
	if sc.m == nil {
		sc.m = make(map[int]*relation.Space)
	}
	sc.m[arity] = sp
	return sp, nil
}

// buCtx carries the evaluation state of one BottomUp run. The parallel PFP
// sweep forks one context per worker: env is per-context, everything else is
// shared (and either immutable or internally synchronized).
type buCtx struct {
	ctx    context.Context
	db     *database.Database
	sp     *relation.Space
	axes   map[logic.Var]int
	env    *env
	stats  *Stats
	opts   *Options
	atoms  *atomCache
	spaces *spaceCache
}

// fork returns a context for a PFP sweep worker: an independent environment
// snapshot over the shared database, space, stats and caches. Nested
// fixpoints inside a worker evaluate serially.
func (c *buCtx) fork() *buCtx {
	var o Options
	if c.opts != nil {
		o = *c.opts
	}
	o.Parallelism = 1
	return &buCtx{
		ctx:    c.ctx,
		db:     c.db,
		sp:     c.sp,
		axes:   c.axes,
		env:    c.env.clone(),
		stats:  c.stats,
		opts:   &o,
		atoms:  c.atoms,
		spaces: c.spaces,
	}
}

func (c *buCtx) axis(v logic.Var) (int, error) {
	a, ok := c.axes[v]
	if !ok {
		return 0, fmt.Errorf("eval: variable %s has no axis (internal error)", v)
	}
	return a, nil
}

func (c *buCtx) axesOf(vs []logic.Var) ([]int, error) {
	out := make([]int, len(vs))
	for i, v := range vs {
		a, err := c.axis(v)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

// eval returns the dense denotation of f over the full variable tuple. The
// caller owns the result and may mutate or Release it.
func (c *buCtx) eval(f logic.Formula) (*relation.Dense, error) {
	c.stats.addSubformulaEvals(1)
	d, err := c.evalNode(f)
	if err != nil {
		return nil, err
	}
	c.stats.observe(c.sp.Arity(), d.Count())
	return d, nil
}

func (c *buCtx) evalNode(f logic.Formula) (*relation.Dense, error) {
	switch g := f.(type) {
	case logic.Atom:
		return c.evalAtom(g)
	case logic.Eq:
		la, err := c.axis(g.L)
		if err != nil {
			return nil, err
		}
		ra, err := c.axis(g.R)
		if err != nil {
			return nil, err
		}
		return c.sp.Diagonal(la, ra), nil
	case logic.Truth:
		if g.Value {
			return c.sp.Full(), nil
		}
		return c.sp.Empty(), nil
	case logic.Not:
		d, err := c.eval(g.F)
		if err != nil {
			return nil, err
		}
		d.Complement()
		return d, nil
	case logic.Binary:
		l, err := c.eval(g.L)
		if err != nil {
			return nil, err
		}
		r, err := c.eval(g.R)
		if err != nil {
			return nil, err
		}
		switch g.Op {
		case logic.AndOp:
			l.IntersectWith(r)
		case logic.OrOp:
			l.UnionWith(r)
		case logic.ImpliesOp:
			l.ImpliesWith(r) // fused ¬l ∪ r, one pass
		case logic.IffOp:
			l.IffWith(r) // fused ¬(l ⊕ r), one pass
		default:
			return nil, fmt.Errorf("eval: unknown binary op %v", g.Op)
		}
		r.Release()
		return l, nil
	case logic.Quant:
		d, err := c.eval(g.F)
		if err != nil {
			return nil, err
		}
		a, err := c.axis(g.V)
		if err != nil {
			return nil, err
		}
		var res *relation.Dense
		if g.Kind == logic.ExistsQ {
			res = d.ExistsAxis(a)
		} else {
			res = d.ForallAxis(a)
		}
		d.Release()
		return res, nil
	case logic.Fix:
		return c.evalFix(g)
	case logic.SOQuant:
		return nil, fmt.Errorf("eval: BottomUp does not evaluate second-order quantifiers; use the eso package")
	default:
		return nil, fmt.Errorf("eval: unknown formula %T", f)
	}
}

func (c *buCtx) evalAtom(g logic.Atom) (*relation.Dense, error) {
	args, err := c.axesOf(g.Args)
	if err != nil {
		return nil, err
	}
	if br, ok := c.env.rels[g.Rel]; ok {
		if len(g.Args) != br.arity()-len(br.params) {
			return nil, fmt.Errorf("eval: %s used with %d arguments, bound with arity %d", g.Rel, len(g.Args), br.arity()-len(br.params))
		}
		pax, err := c.axesOf(br.params)
		if err != nil {
			return nil, err
		}
		if br.dense != nil {
			return c.sp.FromDenseAtom(br.dense, append(args, pax...))
		}
		return c.sp.FromAtom(br.set, append(args, pax...))
	}
	rel, err := c.db.Rel(g.Rel)
	if err != nil {
		return nil, err
	}
	// Database atoms are immutable for the whole evaluation: cylindrify once
	// per (relation, argument-axes) and hand out pooled copies.
	key := atomKey(g.Rel, args)
	c.atoms.mu.Lock()
	master, ok := c.atoms.m[key]
	if !ok {
		master, err = c.sp.FromAtom(rel, args)
		if err != nil {
			c.atoms.mu.Unlock()
			return nil, err
		}
		if c.atoms.m == nil {
			c.atoms.m = make(map[string]*relation.Dense)
		}
		c.atoms.m[key] = master
	}
	c.atoms.mu.Unlock()
	return master.Clone(), nil
}

func atomKey(rel string, args []int) string {
	b := make([]byte, 0, len(rel)+1+len(args))
	b = append(b, rel...)
	b = append(b, 0)
	for _, a := range args {
		b = append(b, byte(a))
	}
	return string(b)
}

// evalFix computes the denotation of a fixpoint formula. For LFP/GFP with
// parameter variables ȳ (free individual variables of the body besides the
// recursion tuple), the recursion relation is extended to arity |x̄|+|ȳ| and
// iterated simultaneously for every parameter value — the operator acts
// pointwise in ȳ, so the extended fixpoint restricts to the per-parameter
// fixpoint. PFP iterates per parameter assignment, with cycle detection for
// divergence. All stage relations stay dense: each stage is extracted from
// the body denotation with a word-parallel ProjectAt and re-enters the next
// stage's atoms through FromDenseAtom, never materializing sparse tuple
// sets.
func (c *buCtx) evalFix(g logic.Fix) (*relation.Dense, error) {
	params := fixParams(g)
	varAxes, err := c.axesOf(g.Vars)
	if err != nil {
		return nil, err
	}
	paramAxes, err := c.axesOf(params)
	if err != nil {
		return nil, err
	}
	argAxes, err := c.axesOf(g.Args)
	if err != nil {
		return nil, err
	}
	extCols := append(append([]int(nil), varAxes...), paramAxes...)

	if g.Op == logic.PFP {
		limit, err := c.evalPFP(g, params, varAxes, paramAxes)
		if err != nil {
			return nil, err
		}
		res, err := c.sp.FromDenseAtom(limit, append(argAxes, paramAxes...))
		limit.Release()
		return res, err
	}

	ext := len(g.Vars) + len(params)
	esp, err := c.spaces.space(ext)
	if err != nil {
		return nil, err
	}
	var cur *relation.Dense
	if g.Op == logic.GFP {
		cur = esp.Full()
	} else {
		cur = esp.Empty()
	}
	restore := c.env.bind(g.Rel, boundRel{dense: cur, params: params})
	defer restore()
	// Stage tracing state lives entirely behind the nil check: an untraced
	// run takes no Count calls, no clock reads and no allocations here.
	tr := tracerOf(c.opts)
	var stage, prevCount int
	if tr != nil {
		prevCount = cur.Count()
	}
	for {
		if err := checkCtx(c.ctx); err != nil {
			cur.Release()
			return nil, err
		}
		c.stats.addFixIterations(1)
		var stageStart time.Time
		if tr != nil {
			stageStart = time.Now()
		}
		c.env.rels[g.Rel] = boundRel{dense: cur, params: params}
		body, err := c.eval(g.Body)
		if err != nil {
			return nil, err
		}
		next := body.ProjectAt(esp, extCols, nil, nil)
		body.Release()
		if g.Op == logic.IFP {
			// Inflationary stages: S_{i+1} = S_i ∪ φ(S_i); converge within
			// n^ext steps with no positivity requirement.
			next.UnionWith(cur)
		}
		if tr != nil {
			stage++
			n := next.Count()
			tr(TraceEvent{Engine: "bottomup", Fixpoint: g.Rel, Op: g.Op.String(), Binder: -1,
				Stage: stage, Tuples: n, Delta: n - prevCount, Elapsed: time.Since(stageStart)})
			prevCount = n
		}
		if next.Equal(cur) {
			next.Release()
			break
		}
		c.env.rels[g.Rel] = boundRel{dense: next, params: params}
		cur.Release()
		cur = next
	}
	res, err := c.sp.FromDenseAtom(cur, append(argAxes, paramAxes...))
	cur.Release()
	return res, err
}

// evalPFP computes the partial fixpoint per parameter assignment and returns
// the union as an extended (|x̄|+|ȳ|)-ary dense relation. The n^|ȳ| runs are
// independent, so with Parallelism > 1 they are swept by a worker pool; the
// per-assignment limits land in disjoint parameter sections of the output,
// making the result — and every Stats counter — identical to the serial
// sweep regardless of scheduling.
func (c *buCtx) evalPFP(g logic.Fix, params []logic.Var, varAxes, paramAxes []int) (*relation.Dense, error) {
	m := len(g.Vars)
	budget := DefaultPFPBudget
	mode := CycleHash
	if c.opts != nil {
		if c.opts.PFPBudget > 0 {
			budget = c.opts.PFPBudget
		}
		mode = c.opts.PFPCycle
	}
	msp, err := c.spaces.space(m)
	if err != nil {
		return nil, err
	}
	esp, err := c.spaces.space(m + len(params))
	if err != nil {
		return nil, err
	}
	if len(params) == 0 {
		// No parameters: the single run's limit is the answer (msp == esp).
		return c.pfpOne(g, msp, varAxes, paramAxes, nil, mode, budget)
	}

	n := c.db.Size()
	nAssign := 1
	for range params {
		nAssign *= n
	}
	out := esp.Empty()

	// Every esp stride over the var axes is the msp stride scaled by n^|ȳ|,
	// so a limit index maps into the output's parameter section by one
	// multiply-add: idx ↦ base + idx·n^|ȳ|.
	np := 1
	for range params {
		np *= n
	}
	merge := func(limit *relation.Dense, assign []int) {
		base := 0
		for j := range assign {
			base += assign[j] * esp.Stride(m+j)
		}
		limit.ForEachIndex(func(idx int) {
			out.AddIndex(base + idx*np)
		})
		limit.Release()
	}

	workers := parallelism(c.opts)
	if workers > nAssign {
		workers = nAssign
	}
	if workers <= 1 {
		assign := make([]int, len(params))
		for a := 0; a < nAssign; a++ {
			decodeAssign(a, n, assign)
			limit, err := c.pfpOne(g, msp, varAxes, paramAxes, assign, mode, budget)
			if err != nil {
				return nil, err
			}
			merge(limit, assign)
		}
		return out, nil
	}

	var (
		mu       sync.Mutex
		firstErr error
		next     int64
		stop     int32
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wc := c.fork()
		wg.Add(1)
		go func(wc *buCtx) {
			defer wg.Done()
			assign := make([]int, len(params))
			for {
				if atomic.LoadInt32(&stop) != 0 {
					return
				}
				a := int(atomic.AddInt64(&next, 1)) - 1
				if a >= nAssign {
					return
				}
				decodeAssign(a, n, assign)
				limit, err := wc.pfpOne(g, msp, varAxes, paramAxes, assign, mode, budget)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					atomic.StoreInt32(&stop, 1)
					mu.Unlock()
					return
				}
				merge(limit, assign)
				mu.Unlock()
			}
		}(wc)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// decodeAssign writes the a-th parameter assignment (row-major, first
// parameter most significant — the forEachAssignment order) into buf.
func decodeAssign(a, n int, buf []int) {
	for j := len(buf) - 1; j >= 0; j-- {
		buf[j] = a % n
		a /= n
	}
}

// pfpOne runs the partial-fixpoint iteration for one parameter assignment
// and returns the limit as an m-ary dense relation (empty if the run is
// periodic with period > 1, per §2.2).
func (c *buCtx) pfpOne(g logic.Fix, msp *relation.Space, varAxes, paramAxes, assign []int, mode CycleMode, budget int) (*relation.Dense, error) {
	tr := tracerOf(c.opts)
	var stage int
	step := func(s *relation.Dense) (*relation.Dense, error) {
		if err := checkCtx(c.ctx); err != nil {
			return nil, err
		}
		c.stats.addFixIterations(1)
		var stageStart time.Time
		if tr != nil {
			stageStart = time.Now()
		}
		restore := c.env.bind(g.Rel, boundRel{dense: s})
		body, err := c.eval(g.Body)
		restore()
		if err != nil {
			return nil, err
		}
		next := body.ProjectAt(msp, varAxes, paramAxes, assign)
		body.Release()
		if tr != nil {
			stage++
			n := next.Count()
			tr(TraceEvent{Engine: "bottomup", Fixpoint: g.Rel, Op: g.Op.String(), Binder: -1,
				Stage: stage, Tuples: n, Delta: n - s.Count(), Elapsed: time.Since(stageStart)})
		}
		return next, nil
	}
	if mode == CycleBrent {
		return pfpBrent(step, msp, budget)
	}
	return pfpHash(step, msp, budget)
}

// pfpHash iterates step from ∅, remembering a hash of every stage; the run
// is eventually periodic, and the partial fixpoint is the repeated value if
// the period is 1, the empty relation otherwise (§2.2).
func pfpHash(step func(*relation.Dense) (*relation.Dense, error), msp *relation.Space, budget int) (*relation.Dense, error) {
	cur := msp.Empty()
	seen := map[uint64][]*relation.Dense{cur.Hash(): {cur}}
	for i := 0; i < budget; i++ {
		next, err := step(cur)
		if err != nil {
			return nil, err
		}
		if next.Equal(cur) {
			next.Release()
			return cur, nil // converged
		}
		k := next.Hash()
		for _, prev := range seen[k] {
			if prev.Equal(next) {
				// Revisited an earlier stage without convergence: the run is
				// periodic with period > 1, so the limit does not exist.
				next.Release()
				return msp.Empty(), nil
			}
		}
		seen[k] = append(seen[k], next)
		cur = next
	}
	return nil, fmt.Errorf("eval: pfp run exceeded %d stages: %w", budget, ErrBudget)
}

// pfpBrent is pfpHash with Brent's cycle-finding algorithm: it keeps only
// two stages live at a time, at the cost of re-running the operator.
func pfpBrent(step func(*relation.Dense) (*relation.Dense, error), msp *relation.Space, budget int) (*relation.Dense, error) {
	// Find the cycle length lam with Brent's power-of-two windows.
	power, lam := 1, 1
	tortoise := msp.Empty()
	hare, err := step(tortoise)
	if err != nil {
		return nil, err
	}
	steps := 1
	for !tortoise.Equal(hare) {
		if power == lam {
			tortoise = hare
			power *= 2
			lam = 0
		}
		hare, err = step(hare)
		if err != nil {
			return nil, err
		}
		lam++
		steps++
		if steps > budget {
			return nil, fmt.Errorf("eval: pfp run exceeded %d stages: %w", budget, ErrBudget)
		}
	}
	if lam == 1 {
		// Period 1: the run converges, and hare is the limit.
		return hare, nil
	}
	return msp.Empty(), nil
}

// fixParams returns the fixpoint's parameter variables: free individual
// variables of the body not bound by the recursion tuple, sorted by name.
func fixParams(g logic.Fix) []logic.Var {
	free := logic.FreeVars(g.Body)
	for _, v := range g.Vars {
		delete(free, v)
	}
	return logic.SortedVars(free)
}

// fullSet returns the set of all arity-tuples over the database domain.
func (c *buCtx) fullSet(arity int) *relation.Set {
	out := relation.NewSet(arity)
	forEachAssignment(c.db.Size(), arity, func(t []int) bool {
		out.Add(t)
		return true
	})
	return out
}

// forEachAssignment enumerates all n^m assignments, calling fn with a reused
// buffer; fn returns false to stop.
func forEachAssignment(n, m int, fn func([]int) bool) {
	t := make([]int, m)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == m {
			return fn(t)
		}
		for v := 0; v < n; v++ {
			t[i] = v
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}
