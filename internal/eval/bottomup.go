package eval

import (
	"fmt"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
)

// BottomUp evaluates a query by the Proposition 3.1 algorithm: every
// subformula denotes a dense relation over the full tuple of the query's
// variables, so all intermediate results have arity Width(q). The supported
// fragments are FO, FP and PFP (second-order quantifiers need the eso
// package). The answer is returned over domain indices 0..n−1.
func BottomUp(q logic.Query, db *database.Database) (*relation.Set, error) {
	ans, _, err := BottomUpStats(q, db, nil)
	return ans, err
}

// BottomUpStats is BottomUp with options and work statistics.
func BottomUpStats(q logic.Query, db *database.Database, opts *Options) (*relation.Set, *Stats, error) {
	if err := q.Validate(signatureOf(db)); err != nil {
		return nil, nil, err
	}
	if err := checkDomain(db); err != nil {
		return nil, nil, err
	}
	if err := checkWidth(q, opts); err != nil {
		return nil, nil, err
	}
	vars := q.Vars()
	sp, err := relation.NewSpace(len(vars), db.Size())
	if err != nil {
		return nil, nil, err
	}
	c := &buCtx{db: db, sp: sp, axes: make(map[logic.Var]int, len(vars)), env: newEnv(), stats: &Stats{}, opts: opts}
	for i, v := range vars {
		c.axes[v] = i
	}
	d, err := c.eval(q.Body)
	if err != nil {
		return nil, nil, err
	}
	head := make([]int, len(q.Head))
	for i, v := range q.Head {
		head[i] = c.axes[v]
	}
	return d.Project(head), c.stats, nil
}

// buCtx carries the evaluation state of one BottomUp run.
type buCtx struct {
	db    *database.Database
	sp    *relation.Space
	axes  map[logic.Var]int
	env   *env
	stats *Stats
	opts  *Options
}

func (c *buCtx) axis(v logic.Var) (int, error) {
	a, ok := c.axes[v]
	if !ok {
		return 0, fmt.Errorf("eval: variable %s has no axis (internal error)", v)
	}
	return a, nil
}

func (c *buCtx) axesOf(vs []logic.Var) ([]int, error) {
	out := make([]int, len(vs))
	for i, v := range vs {
		a, err := c.axis(v)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}

// eval returns the dense denotation of f over the full variable tuple.
func (c *buCtx) eval(f logic.Formula) (*relation.Dense, error) {
	c.stats.SubformulaEvals++
	d, err := c.evalNode(f)
	if err != nil {
		return nil, err
	}
	c.stats.observe(c.sp.Arity(), d.Count())
	return d, nil
}

func (c *buCtx) evalNode(f logic.Formula) (*relation.Dense, error) {
	switch g := f.(type) {
	case logic.Atom:
		return c.evalAtom(g)
	case logic.Eq:
		la, err := c.axis(g.L)
		if err != nil {
			return nil, err
		}
		ra, err := c.axis(g.R)
		if err != nil {
			return nil, err
		}
		return c.sp.Diagonal(la, ra), nil
	case logic.Truth:
		if g.Value {
			return c.sp.Full(), nil
		}
		return c.sp.Empty(), nil
	case logic.Not:
		d, err := c.eval(g.F)
		if err != nil {
			return nil, err
		}
		d.Complement()
		return d, nil
	case logic.Binary:
		l, err := c.eval(g.L)
		if err != nil {
			return nil, err
		}
		r, err := c.eval(g.R)
		if err != nil {
			return nil, err
		}
		switch g.Op {
		case logic.AndOp:
			l.IntersectWith(r)
		case logic.OrOp:
			l.UnionWith(r)
		case logic.ImpliesOp:
			l.Complement()
			l.UnionWith(r)
		case logic.IffOp:
			// l ↔ r = ¬(l xor r): complement of symmetric difference.
			nl := l.Clone()
			nl.Complement()
			nr := r.Clone()
			nr.Complement()
			l.IntersectWith(r)   // l ∧ r
			nl.IntersectWith(nr) // ¬l ∧ ¬r
			l.UnionWith(nl)
		default:
			return nil, fmt.Errorf("eval: unknown binary op %v", g.Op)
		}
		return l, nil
	case logic.Quant:
		d, err := c.eval(g.F)
		if err != nil {
			return nil, err
		}
		a, err := c.axis(g.V)
		if err != nil {
			return nil, err
		}
		if g.Kind == logic.ExistsQ {
			return d.ExistsAxis(a), nil
		}
		return d.ForallAxis(a), nil
	case logic.Fix:
		return c.evalFix(g)
	case logic.SOQuant:
		return nil, fmt.Errorf("eval: BottomUp does not evaluate second-order quantifiers; use the eso package")
	default:
		return nil, fmt.Errorf("eval: unknown formula %T", f)
	}
}

func (c *buCtx) evalAtom(g logic.Atom) (*relation.Dense, error) {
	args, err := c.axesOf(g.Args)
	if err != nil {
		return nil, err
	}
	if br, ok := c.env.rels[g.Rel]; ok {
		if len(g.Args) != br.set.Arity()-len(br.params) {
			return nil, fmt.Errorf("eval: %s used with %d arguments, bound with arity %d", g.Rel, len(g.Args), br.set.Arity()-len(br.params))
		}
		pax, err := c.axesOf(br.params)
		if err != nil {
			return nil, err
		}
		return c.sp.FromAtom(br.set, append(args, pax...))
	}
	rel, err := c.db.Rel(g.Rel)
	if err != nil {
		return nil, err
	}
	return c.sp.FromAtom(rel, args)
}

// evalFix computes the denotation of a fixpoint formula. For LFP/GFP with
// parameter variables ȳ (free individual variables of the body besides the
// recursion tuple), the recursion relation is extended to arity |x̄|+|ȳ| and
// iterated simultaneously for every parameter value — the operator acts
// pointwise in ȳ, so the extended fixpoint restricts to the per-parameter
// fixpoint. PFP iterates per parameter assignment, with cycle detection for
// divergence.
func (c *buCtx) evalFix(g logic.Fix) (*relation.Dense, error) {
	params := fixParams(g)
	varAxes, err := c.axesOf(g.Vars)
	if err != nil {
		return nil, err
	}
	paramAxes, err := c.axesOf(params)
	if err != nil {
		return nil, err
	}
	argAxes, err := c.axesOf(g.Args)
	if err != nil {
		return nil, err
	}
	extCols := append(append([]int(nil), varAxes...), paramAxes...)

	if g.Op == logic.PFP {
		limit, err := c.evalPFP(g, params, varAxes, paramAxes)
		if err != nil {
			return nil, err
		}
		return c.sp.FromAtom(limit, append(argAxes, paramAxes...))
	}

	ext := len(g.Vars) + len(params)
	cur := relation.NewSet(ext)
	if g.Op == logic.GFP {
		cur = c.fullSet(ext)
	}
	restore := c.env.bind(g.Rel, boundRel{set: cur, params: params})
	defer restore()
	for {
		c.stats.FixIterations++
		c.env.rels[g.Rel] = boundRel{set: cur, params: params}
		body, err := c.eval(g.Body)
		if err != nil {
			return nil, err
		}
		next := body.Project(extCols)
		if g.Op == logic.IFP {
			// Inflationary stages: S_{i+1} = S_i ∪ φ(S_i); converge within
			// n^ext steps with no positivity requirement.
			next = next.Union(cur)
		}
		if next.Equal(cur) {
			break
		}
		cur = next
	}
	return c.sp.FromAtom(cur, append(argAxes, paramAxes...))
}

// evalPFP computes the partial fixpoint per parameter assignment and returns
// the union as an extended (|x̄|+|ȳ|)-ary relation.
func (c *buCtx) evalPFP(g logic.Fix, params []logic.Var, varAxes, paramAxes []int) (*relation.Set, error) {
	m := len(g.Vars)
	out := relation.NewSet(m + len(params))
	budget := DefaultPFPBudget
	mode := CycleHash
	if c.opts != nil {
		if c.opts.PFPBudget > 0 {
			budget = c.opts.PFPBudget
		}
		mode = c.opts.PFPCycle
	}
	msp, err := relation.NewSpace(m, c.db.Size())
	if err != nil {
		return nil, err
	}
	var perr error
	forEachAssignment(c.db.Size(), len(params), func(assign []int) bool {
		// step computes one stage of the operator for this assignment.
		step := func(s *relation.Set) (*relation.Set, error) {
			c.stats.FixIterations++
			restore := c.env.bind(g.Rel, boundRel{set: s})
			body, err := c.eval(g.Body)
			restore()
			if err != nil {
				return nil, err
			}
			proj := body.Project(append(append([]int(nil), varAxes...), paramAxes...))
			next := relation.NewSet(m)
			proj.ForEach(func(t relation.Tuple) {
				for i, v := range assign {
					if t[m+i] != v {
						return
					}
				}
				next.Add(t[:m])
			})
			return next, nil
		}
		var limit *relation.Set
		switch mode {
		case CycleBrent:
			limit, perr = pfpBrent(step, m, msp, budget)
		default:
			limit, perr = pfpHash(step, m, msp, budget)
		}
		if perr != nil {
			return false
		}
		limit.ForEach(func(t relation.Tuple) {
			ext := make(relation.Tuple, m+len(assign))
			copy(ext, t)
			copy(ext[m:], assign)
			out.Add(ext)
		})
		return true
	})
	if perr != nil {
		return nil, perr
	}
	return out, nil
}

// pfpHash iterates step from ∅, remembering a hash of every stage; the run
// is eventually periodic, and the partial fixpoint is the repeated value if
// the period is 1, the empty relation otherwise (§2.2).
func pfpHash(step func(*relation.Set) (*relation.Set, error), m int, msp *relation.Space, budget int) (*relation.Set, error) {
	cur := relation.NewSet(m)
	seen := map[uint64][]*relation.Set{}
	key := func(s *relation.Set) (uint64, error) {
		d, err := s.ToDense(msp)
		if err != nil {
			return 0, err
		}
		return d.Hash(), nil
	}
	k, err := key(cur)
	if err != nil {
		return nil, err
	}
	seen[k] = append(seen[k], cur)
	for i := 0; i < budget; i++ {
		next, err := step(cur)
		if err != nil {
			return nil, err
		}
		if next.Equal(cur) {
			return cur, nil // converged
		}
		k, err := key(next)
		if err != nil {
			return nil, err
		}
		for _, prev := range seen[k] {
			if prev.Equal(next) {
				// Revisited an earlier stage without convergence: the run is
				// periodic with period > 1, so the limit does not exist.
				return relation.NewSet(m), nil
			}
		}
		seen[k] = append(seen[k], next)
		cur = next
	}
	return nil, fmt.Errorf("eval: pfp run exceeded %d stages: %w", budget, ErrBudget)
}

// pfpBrent is pfpHash with Brent's cycle-finding algorithm: it keeps only
// two stages live at a time, at the cost of re-running the operator.
func pfpBrent(step func(*relation.Set) (*relation.Set, error), m int, _ *relation.Space, budget int) (*relation.Set, error) {
	// Find the cycle length lam with Brent's power-of-two windows.
	power, lam := 1, 1
	tortoise := relation.NewSet(m)
	hare, err := step(tortoise)
	if err != nil {
		return nil, err
	}
	steps := 1
	for !tortoise.Equal(hare) {
		if power == lam {
			tortoise = hare
			power *= 2
			lam = 0
		}
		hare, err = step(hare)
		if err != nil {
			return nil, err
		}
		lam++
		steps++
		if steps > budget {
			return nil, fmt.Errorf("eval: pfp run exceeded %d stages: %w", budget, ErrBudget)
		}
	}
	if lam == 1 {
		// Period 1: the run converges, and hare is the limit.
		return hare, nil
	}
	return relation.NewSet(m), nil
}

// fixParams returns the fixpoint's parameter variables: free individual
// variables of the body not bound by the recursion tuple, sorted by name.
func fixParams(g logic.Fix) []logic.Var {
	free := logic.FreeVars(g.Body)
	for _, v := range g.Vars {
		delete(free, v)
	}
	return logic.SortedVars(free)
}

// fullSet returns the set of all arity-tuples over the database domain.
func (c *buCtx) fullSet(arity int) *relation.Set {
	out := relation.NewSet(arity)
	forEachAssignment(c.db.Size(), arity, func(t []int) bool {
		out.Add(t)
		return true
	})
	return out
}

// forEachAssignment enumerates all n^m assignments, calling fn with a reused
// buffer; fn returns false to stop.
func forEachAssignment(n, m int, fn func([]int) bool) {
	t := make([]int, m)
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == m {
			return fn(t)
		}
		for v := 0; v < n; v++ {
			t[i] = v
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}
