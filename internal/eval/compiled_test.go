package eval

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/logic"
	"repro/internal/plan"
)

// tcQuery is transitive closure, the canonical workload where semi-naive
// deltas shrink stage work: T(x,y) ≡ E(x,y) ∨ ∃z(E(x,z) ∧ T(z,y)).
func tcQuery() logic.Query {
	body := logic.Lfp("T", []logic.Var{"x", "y"},
		logic.Or(logic.R("E", "x", "y"),
			logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("T", "z", "y")), "z")),
		"x", "y")
	return logic.MustQuery([]logic.Var{"x", "y"}, body)
}

// compiledSuite is the fixed query set the compiled engine is differentially
// tested on: FO connectives, every fixpoint operator, parameters, nesting,
// and non-monotone IFP bodies.
func compiledSuite() []logic.Query {
	nested := func() logic.Query {
		inner := logic.Lfp("T", []logic.Var{"z"},
			logic.Forall(logic.Implies(logic.R("E", "z", "y"),
				logic.Or(logic.R("S", "y"), logic.And(logic.R("P", "y"), logic.R("T", "y")))), "y"),
			"x")
		return logic.MustQuery([]logic.Var{"u"},
			logic.Gfp("S", []logic.Var{"x"}, inner, "u"))
	}
	return []logic.Query{
		logic.MustQuery([]logic.Var{"x", "y"}, logic.R("E", "x", "y")),
		logic.MustQuery([]logic.Var{"x"},
			logic.Forall(logic.Implies(logic.R("E", "x", "y"), logic.R("P", "y")), "y")),
		logic.MustQuery([]logic.Var{"x", "y"},
			logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("E", "z", "y")), "z")),
		tcQuery(),
		reachQuery(),
		logic.MustQuery([]logic.Var{"u"}, logic.Ifp("S", []logic.Var{"x"}, reachBody(), "u")),
		logic.MustQuery([]logic.Var{"u"},
			logic.Ifp("S", []logic.Var{"x"},
				logic.And(logic.R("P", "x"), logic.Neg(logic.R("S", "x"))), "u")),
		logic.MustQuery([]logic.Var{"x"},
			logic.Gfp("S", []logic.Var{"x"},
				logic.And(logic.R("P", "x"),
					logic.Exists(logic.And(logic.R("E", "x", "y"), logic.R("S", "y")), "y")), "x")),
		// Parameterized lfp: y free in the body extends the stage relation.
		logic.MustQuery([]logic.Var{"y"},
			logic.Exists(logic.Lfp("S", []logic.Var{"x"},
				logic.Or(logic.Equal("x", "y"),
					logic.Exists(logic.And(logic.R("E", "z", "x"),
						logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z")),
				"x"), "x")),
		nested(),
	}
}

func TestCompiledMatchesBottomUpSuite(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for qi, q := range compiledSuite() {
		for trial := 0; trial < 6; trial++ {
			var db = randomGraph(t, r, 2+r.Intn(4))
			if trial == 0 {
				db = lineGraph(t, 6)
			}
			bu, bst, err := BottomUpStats(q, db, nil)
			if err != nil {
				t.Fatalf("query %d: BottomUp: %v", qi, err)
			}
			co, cst, err := CompiledStats(q, db, nil)
			if err != nil {
				t.Fatalf("query %d: Compiled: %v", qi, err)
			}
			if !co.Equal(bu) {
				t.Fatalf("query %d (%s): Compiled %v != BottomUp %v on\n%s", qi, q, co, bu, db)
			}
			// Incremental evaluation must never take extra stages: the stage
			// sequences coincide, and hoisting can only remove inner re-runs.
			if cst.FixIterations > bst.FixIterations {
				t.Fatalf("query %d: compiled FixIterations %d > bottomup %d",
					qi, cst.FixIterations, bst.FixIterations)
			}
		}
	}
}

func TestCompiledHoistingAndDeltaCounters(t *testing.T) {
	db := lineGraph(t, 12)
	q := tcQuery()
	bu, bst, err := BottomUpStats(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	co, cst, err := CompiledStats(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !co.Equal(bu) {
		t.Fatalf("answers differ: %v vs %v", co, bu)
	}
	if cst.NodesReused == 0 {
		t.Fatal("NodesReused = 0: the E atoms must be hoisted across stages")
	}
	if cst.DeltaTuples == 0 {
		t.Fatal("DeltaTuples = 0: transitive closure must run semi-naive")
	}
	// TC stage sequences are identical, so iteration counts match exactly.
	if cst.FixIterations != bst.FixIterations {
		t.Fatalf("FixIterations %d != %d", cst.FixIterations, bst.FixIterations)
	}
	// Hoisting and delta reuse must cut subformula work on a 13-stage lfp.
	if cst.SubformulaEvals >= bst.SubformulaEvals {
		t.Fatalf("compiled SubformulaEvals %d >= bottomup %d",
			cst.SubformulaEvals, bst.SubformulaEvals)
	}
}

// TestCompiledParallelDeterministic evaluates a fixpoint whose dirty DAG has
// independent branches at several parallelism settings: answers and every
// Stats counter must be bit-identical (the wave scheduler computes exactly
// the same node set in every schedule).
func TestCompiledParallelDeterministic(t *testing.T) {
	body := logic.Or(
		logic.Or(logic.R("P", "x"),
			logic.Exists(logic.And(logic.R("E", "x", "y"), logic.R("S", "y")), "y")),
		logic.Exists(logic.And(logic.R("E", "y", "x"), logic.R("S", "y")), "y"))
	q := logic.MustQuery([]logic.Var{"x"},
		logic.Lfp("S", []logic.Var{"x"}, body, "x"))
	r := rand.New(rand.NewSource(33))
	for trial := 0; trial < 8; trial++ {
		db := randomGraph(t, r, 3+r.Intn(4))
		ref, refStats, err := CompiledStats(q, db, &Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{2, 4, 8} {
			got, st, err := CompiledStats(q, db, &Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(ref) {
				t.Fatalf("parallelism %d changed the answer", par)
			}
			if *st != *refStats {
				t.Fatalf("parallelism %d changed stats: %+v vs %+v", par, st, refStats)
			}
		}
	}
}

func TestCompiledContextCancelled(t *testing.T) {
	db := lineGraph(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := CompiledContext(ctx, reachQuery(), db, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCompiledContextDeadlineMidPFP(t *testing.T) {
	q := counterQuery()
	db := orderedDomain(t, 18)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	ans, st, err := CompiledContext(ctx, q, db, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if ans != nil {
		t.Fatal("cancelled evaluation returned an answer")
	}
	if st == nil || st.FixIterations == 0 {
		t.Fatalf("partial stats missing: %+v", st)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestCompiledPFPBudget(t *testing.T) {
	q := counterQuery()
	db := orderedDomain(t, 12) // 2^12 stages
	_, _, err := CompiledStats(q, db, &Options{PFPBudget: 100})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// Under a sufficient budget the run agrees with BottomUp.
	small := orderedDomain(t, 6)
	bu, _, err := BottomUpStats(q, small, nil)
	if err != nil {
		t.Fatal(err)
	}
	co, _, err := CompiledStats(q, small, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !co.Equal(bu) {
		t.Fatalf("PFP counter: %v vs %v", co, bu)
	}
}

func TestCompiledPFPParallelSweep(t *testing.T) {
	// A parametrized PFP forces the per-assignment sweep; compare serial and
	// parallel against BottomUp.
	body := logic.Or(
		logic.R("S", "x"),
		logic.Exists(logic.And(logic.R("E", "z", "x"),
			logic.And(logic.R("E", "z", "y"),
				logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x"))), "z"))
	q := logic.MustQuery([]logic.Var{"u", "y"},
		logic.Pfp("S", []logic.Var{"x"}, body, "u"))
	r := rand.New(rand.NewSource(37))
	for trial := 0; trial < 5; trial++ {
		db := randomGraph(t, r, 3+r.Intn(3))
		bu, _, err := BottomUpStats(q, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 4} {
			co, _, err := CompiledStats(q, db, &Options{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			if !co.Equal(bu) {
				t.Fatalf("parallelism %d: %v vs %v on\n%s", par, co, bu, db)
			}
		}
	}
}

// TestCompiledPlanReuse evaluates one compiled plan against several databases
// — the daemon's plan-cache pattern — and checks each run is independent.
func TestCompiledPlanReuse(t *testing.T) {
	p, err := plan.Compile(tcQuery())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 6; trial++ {
		db := randomGraph(t, r, 2+r.Intn(5))
		bu, err := BottomUp(p.Query, db)
		if err != nil {
			t.Fatal(err)
		}
		co, _, err := EvalPlanContext(context.Background(), p, db, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !co.Equal(bu) {
			t.Fatalf("plan reuse trial %d: %v vs %v", trial, co, bu)
		}
	}
}

func benchTC(b *testing.B, n int, eval func(logic.Query) error) {
	q := tcQuery()
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eval(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransitiveClosure(b *testing.B) {
	for _, n := range []int{32, 64} {
		db := lineGraph(b, n)
		b.Run("bottomup/n="+itoa(n), func(b *testing.B) {
			benchTC(b, n, func(q logic.Query) error {
				_, err := BottomUp(q, db)
				return err
			})
		})
		b.Run("compiled/n="+itoa(n), func(b *testing.B) {
			benchTC(b, n, func(q logic.Query) error {
				_, err := Compiled(q, db)
				return err
			})
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
