package eval

import (
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
)

// evenPosition is the classic FP-with-order counting query: the set of
// domain elements at even (0-based) position. Parity is not FO- or
// FP-definable without order, so this exercises the capture results the
// paper cites (FP = PTIME over ordered databases, Imm86/Var82).
func evenPosition() logic.Formula {
	// S(x) ← First(x); S(x) ← ∃y ∃z (S(y) ∧ Succ(y,z) ∧ Succ(z,x)).
	body := logic.Or(
		logic.R(database.OrderFirst, "x"),
		logic.Exists(logic.And(
			logic.R("S", "y"),
			logic.And(logic.R(database.OrderSucc, "y", "z"), logic.R(database.OrderSucc, "z", "x"))),
			"y", "z"))
	return logic.Lfp("S", []logic.Var{"x"}, body, "u")
}

// evenSize holds iff the domain size is even: the last element is at an odd
// position, i.e. not in the even-position set.
func evenSize() logic.Formula {
	return logic.Exists(
		logic.And(logic.R(database.OrderLast, "u"), logic.Neg(evenPosition())),
		"u")
}

func TestFPWithOrderComputesParity(t *testing.T) {
	for n := 1; n <= 9; n++ {
		b := database.NewBuilder()
		for i := 0; i < n; i++ {
			b.Domain(i * 3) // arbitrary raw values
		}
		db, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		odb, err := db.WithOrder()
		if err != nil {
			t.Fatal(err)
		}
		q := logic.MustQuery(nil, evenSize())
		got, err := BottomUp(q, odb)
		if err != nil {
			t.Fatal(err)
		}
		want := n%2 == 0
		if (got.Len() > 0) != want {
			t.Fatalf("n=%d: evenSize = %v, want %v", n, got.Len() > 0, want)
		}
		// Cross-check with the trusted evaluator.
		nv, err := Naive(q, odb)
		if err != nil {
			t.Fatal(err)
		}
		if !nv.Equal(got) {
			t.Fatalf("n=%d: naive disagrees", n)
		}
	}
}

func TestEvenPositionSet(t *testing.T) {
	b := database.NewBuilder()
	for i := 0; i < 6; i++ {
		b.Domain(i)
	}
	db, _ := b.Build()
	odb, err := db.WithOrder()
	if err != nil {
		t.Fatal(err)
	}
	q := logic.MustQuery([]logic.Var{"u"}, evenPosition())
	got, err := BottomUp(q, odb)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 { // positions 0, 2, 4
		t.Fatalf("even positions = %v", got)
	}
}
