package eval

import (
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
)

// memoHazardDB builds a graph with an extra unary relation R, so that the
// name "R" can denote a database relation in one subformula and a recursion
// relation in a byte-identical sibling.
func memoHazardDB(t *testing.T, r *rand.Rand, n int) *database.Database {
	t.Helper()
	b := database.NewBuilder().Relation("E", 2).Relation("P", 1).Relation("R", 1)
	for i := 0; i < n; i++ {
		b.Domain(i)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if r.Intn(3) == 0 {
				b.Add("E", i, j)
			}
		}
		if r.Intn(2) == 0 {
			b.Add("P", i)
		}
		if r.Intn(2) == 0 {
			b.Add("R", i)
		}
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestMonotoneMemoNoCrossOccurrenceReplay pins down the memo-keying
// invariant documented on monoCtx.memo: two byte-identical fixpoint
// subformulas evaluated under different environments must never share a memo
// entry. The formula places the same text
//
//	[lfp T(x). R(x) ∨ ∃z(E(z,x) ∧ ∃x(x=z ∧ T(x)))](x)
//
// once at top level — where R is the database relation — and once inside
// [lfp R(x). P(x) ∨ …](x) — where R is the enclosing recursion relation. A
// memo keyed by formula text (or any position-free scheme) would replay the
// first occurrence's value, which is computed from a different R; position
// paths keep the occurrences separate. BottomUp, which never memoizes, is
// the oracle.
func TestMonotoneMemoNoCrossOccurrenceReplay(t *testing.T) {
	reachViaR := func() logic.Formula {
		return logic.Lfp("T", []logic.Var{"x"},
			logic.Or(logic.R("R", "x"),
				logic.Exists(logic.And(logic.R("E", "z", "x"),
					logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("T", "x")), "x")), "z")),
			"x")
	}
	outer := logic.Lfp("R", []logic.Var{"x"},
		logic.Or(logic.R("P", "x"), reachViaR()), "x")
	for _, f := range []logic.Formula{
		logic.And(reachViaR(), outer),
		logic.And(outer, reachViaR()),
		logic.Or(reachViaR(), outer),
	} {
		q := logic.MustQuery([]logic.Var{"x"}, f)
		r := rand.New(rand.NewSource(47))
		for trial := 0; trial < 10; trial++ {
			db := memoHazardDB(t, r, 2+r.Intn(4))
			bu, err := BottomUp(q, db)
			if err != nil {
				t.Fatal(err)
			}
			mo, err := Monotone(q, db)
			if err != nil {
				t.Fatal(err)
			}
			if !mo.Equal(bu) {
				t.Fatalf("memo replay across occurrences: Monotone %v != BottomUp %v on\n%s",
					mo, bu, db)
			}
			// The compiled engine keeps occurrences apart through binder ids;
			// hold it to the same oracle.
			co, err := Compiled(q, db)
			if err != nil {
				t.Fatal(err)
			}
			if !co.Equal(bu) {
				t.Fatalf("compiled CSE conflated occurrences: %v != %v on\n%s", co, bu, db)
			}
		}
	}
}
