package eval

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/logic"
)

// reachQuery is the width-3 lfp reachability query used throughout the
// tests: elements reachable from P along E.
func reachQuery() logic.Query {
	body := logic.Or(
		logic.R("P", "x"),
		logic.Exists(logic.And(logic.R("E", "z", "x"),
			logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z"))
	return logic.MustQuery([]logic.Var{"u"}, logic.Lfp("S", []logic.Var{"x"}, body, "u"))
}

func TestContextExpiredBeforeEval(t *testing.T) {
	db := lineGraph(t, 8)
	q := reachQuery()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := BottomUpContext(ctx, q, db, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("BottomUpContext after cancel: err = %v, want context.Canceled", err)
	}
	if _, err := NaiveContext(ctx, q, db); !errors.Is(err, context.Canceled) {
		t.Fatalf("NaiveContext after cancel: err = %v, want context.Canceled", err)
	}
	if _, _, err := MonotoneContext(ctx, q, db, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("MonotoneContext after cancel: err = %v, want context.Canceled", err)
	}
	fo := logic.MustQuery([]logic.Var{"x", "y"},
		logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("E", "z", "y")), "z"))
	if _, _, err := AlgebraContext(ctx, fo, db); !errors.Is(err, context.Canceled) {
		t.Fatalf("AlgebraContext after cancel: err = %v, want context.Canceled", err)
	}
}

// TestContextDeadlineMidPFP starts the exponentially long binary-counter PFP
// run with a deadline far shorter than the run and checks that evaluation
// stops between stages: the error reports the deadline, the returned Stats
// hold the partial iteration count, and the whole call returns orders of
// magnitude before the 2^18 stages would complete.
func TestContextDeadlineMidPFP(t *testing.T) {
	q := counterQuery()
	db := orderedDomain(t, 18) // 2^18 stages — seconds of work
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	ans, st, err := BottomUpContext(ctx, q, db, nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if ans != nil {
		t.Fatalf("cancelled evaluation returned an answer")
	}
	if st == nil || st.FixIterations == 0 {
		t.Fatalf("partial stats missing: %+v", st)
	}
	// Generous bound: the check fires at the next stage boundary, each stage
	// being microseconds here.
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestContextParallelSweepCancels checks that the parallel PFP sweep's
// workers all observe cancellation.
func TestContextParallelSweepCancels(t *testing.T) {
	// A parametrized PFP (free variable y in the body) forces the sweep.
	body := logic.Or(
		logic.R("S", "x"),
		logic.Exists(logic.And(logic.R("E", "z", "x"),
			logic.And(logic.R("E", "z", "y"),
				logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x"))), "z"))
	q := logic.MustQuery([]logic.Var{"u", "y"}, logic.Pfp("S", []logic.Var{"x"}, body, "u"))
	db := randomGraph(t, rand.New(rand.NewSource(7)), 24)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := BottomUpContext(ctx, q, db, &Options{Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel sweep: err = %v, want context.Canceled", err)
	}
}

// TestContextAnswerUnchanged verifies that evaluating under a live context
// produces exactly the same answer and counters as the background-context
// path — the determinism requirement for transparent caching.
func TestContextAnswerUnchanged(t *testing.T) {
	db := randomGraph(t, rand.New(rand.NewSource(3)), 16)
	q := reachQuery()
	plain, pst, err := BottomUpStats(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	ctxAns, cst, err := BottomUpContext(ctx, q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(ctxAns) {
		t.Fatalf("answers differ with a live context")
	}
	if pst.FixIterations != cst.FixIterations || pst.SubformulaEvals != cst.SubformulaEvals {
		t.Fatalf("stats differ: %+v vs %+v", pst, cst)
	}
}
