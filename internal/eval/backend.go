package eval

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/database"
	"repro/internal/plan"
	"repro/internal/queryopt"
	"repro/internal/relation"
)

// Backend selects the relation representation the compiled engine evaluates
// over. The zero value is BackendAuto, so existing callers (and cached
// plans) keep their behavior without touching Options.
type Backend int

const (
	// BackendAuto picks per query: dense kernels for feasible hot spaces,
	// the sparse executor when the space is infeasible or the density
	// analysis says tuples are far cheaper than bits, and a hybrid in
	// between (dense fixpoints over a sparsely evaluated frontier).
	BackendAuto Backend = iota
	// BackendDense forces the full-width nᵏ-bit engine; queries whose space
	// exceeds relation.MaxDenseBits fail with the dense-space error.
	BackendDense
	// BackendSparse forces the sorted tuple-block engine (with the acyclic
	// Yannakakis fast path); queries outside the sparse-evaluable fragment
	// (GFP/PFP, negatively represented fixpoint bodies) fail with a typed
	// explanation.
	BackendSparse
)

// String renders the backend in the wire spelling.
func (b Backend) String() string {
	switch b {
	case BackendDense:
		return "dense"
	case BackendSparse:
		return "sparse"
	default:
		return "auto"
	}
}

// BackendByName parses a wire spelling; the empty string means auto.
func BackendByName(name string) (Backend, error) {
	switch name {
	case "", "auto":
		return BackendAuto, nil
	case "dense":
		return BackendDense, nil
	case "sparse":
		return BackendSparse, nil
	default:
		return BackendAuto, fmt.Errorf("eval: unknown backend %q (want auto, dense or sparse)", name)
	}
}

// ErrSparseBudget is wrapped by errors reporting that a sparse evaluation
// would materialize more tuples than Options.SparseBudget allows — the
// sparse analogue of the dense MaxDenseBits guard. Under BackendAuto with a
// feasible dense space the engine falls back to dense instead of failing.
var ErrSparseBudget = errors.New("sparse materialization budget exceeded")

// DefaultSparseBudget bounds the tuple count of any single sparse
// materialization when Options.SparseBudget is zero: 2²⁵ codes ≈ 256 MiB.
const DefaultSparseBudget = 1 << 25

func sparseBudget(opts *Options) int {
	if opts != nil && opts.SparseBudget > 0 {
		return opts.SparseBudget
	}
	return DefaultSparseBudget
}

func backendOf(opts *Options) Backend {
	if opts == nil {
		return BackendAuto
	}
	return opts.Backend
}

// cardOf adapts a database to the plan.Density cardinality callback.
func cardOf(db *database.Database) func(string) int {
	return func(name string) int {
		rel, err := db.Rel(name)
		if err != nil {
			return 0
		}
		return rel.Len()
	}
}

// EvalPlanContext evaluates a compiled plan against db. The plan is
// immutable and may be shared across evaluations and databases; all run
// state lives in the evaluation, so concurrent calls with the same plan are
// safe.
//
// The backend route is chosen here. Dense is the historical engine and the
// default for every feasible small space; sparse (with the acyclic-join
// fast path) is how queries beyond relation.MaxDenseBits — the n^k wall —
// evaluate at all. BackendAuto also runs a hybrid: a feasible-but-large
// dense evaluation whose recursion-free low-density subtrees are computed
// sparsely and cylindrified once at their boundary (Stats.RepSwitches).
func EvalPlanContext(ctx context.Context, p *plan.Plan, db *database.Database, opts *Options) (*relation.Set, *Stats, error) {
	ans, st, _, err := evalPlanRouted(ctx, p, db, opts, nil, false)
	return ans, st, err
}

// validatePlanRun is the shared entry validation of every plan evaluation.
func validatePlanRun(ctx context.Context, p *plan.Plan, db *database.Database, opts *Options) error {
	if err := p.Query.Validate(signatureOf(db)); err != nil {
		return err
	}
	if err := checkDomain(db); err != nil {
		return err
	}
	if err := checkWidth(p.Query, opts); err != nil {
		return err
	}
	return checkCtx(ctx)
}

// evalPlanRouted validates, routes and runs a plan evaluation. Dense routes
// thread the maintenance seed/capture through (maintain.go); sparse routes
// return no state — maintenance is a dense-route optimization.
func evalPlanRouted(ctx context.Context, p *plan.Plan, db *database.Database, opts *Options, seed *MaintState, capture bool) (*relation.Set, *Stats, *MaintState, error) {
	if err := validatePlanRun(ctx, p, db, opts); err != nil {
		return nil, nil, nil, err
	}
	den := p.Density(db.Size(), cardOf(db))
	switch backendOf(opts) {
	case BackendDense:
		return evalPlanDenseMaint(ctx, p, db, opts, nil, seed, capture)
	case BackendSparse:
		if !den.SparseOK {
			return nil, nil, nil, fmt.Errorf("eval: sparse backend: %s", den.Blocker)
		}
		ans, st, err := evalPlanSparse(ctx, p, db, opts, den)
		return ans, st, nil, err
	default:
		if !den.SpaceFeasible {
			if !den.SparseOK {
				return nil, nil, nil, fmt.Errorf("eval: dense space %d^%d exceeds %d bits and sparse evaluation is unavailable: %s",
					db.Size(), len(p.Vars), relation.MaxDenseBits, den.Blocker)
			}
			ans, st, err := evalPlanSparse(ctx, p, db, opts, den)
			return ans, st, nil, err
		}
		if den.PreferSparse() {
			ans, st, err := evalPlanSparse(ctx, p, db, opts, den)
			if err != nil && errors.Is(err, ErrSparseBudget) {
				// The density estimate was wrong — the space is feasible, so
				// rerun dense rather than failing a query dense could answer.
				return evalPlanDenseMaint(ctx, p, db, opts, hybridDensity(den), seed, capture)
			}
			return ans, st, nil, err
		}
		return evalPlanDenseMaint(ctx, p, db, opts, hybridDensity(den), seed, capture)
	}
}

// ExplainRoute reports the backend route evalPlanRouted would take for this
// plan against this database — "dense", "sparse", or "hybrid" — together
// with the density analysis behind the decision, without evaluating
// anything. The route is the planned one: a sparse run may still be served
// by the Yannakakis fast path (visible post-run as Stats.AcyclicFastPath),
// and a sparse-budget overrun under BackendAuto falls back to dense. The
// empty route means the query is unevaluable (dense space infeasible and
// sparse unavailable, or a forced backend that cannot run it).
func ExplainRoute(p *plan.Plan, db *database.Database, opts *Options) (*plan.Density, string) {
	den := p.Density(db.Size(), cardOf(db))
	denseRoute := func() string {
		if hybridDensity(den) != nil {
			return "hybrid"
		}
		return "dense"
	}
	switch backendOf(opts) {
	case BackendDense:
		if !den.SpaceFeasible {
			return den, ""
		}
		return den, "dense"
	case BackendSparse:
		if !den.SparseOK {
			return den, ""
		}
		return den, "sparse"
	default:
		if !den.SpaceFeasible {
			if !den.SparseOK {
				return den, ""
			}
			return den, "sparse"
		}
		if den.PreferSparse() {
			return den, "sparse"
		}
		return den, denseRoute()
	}
}

// hybridDensity returns den when it labels a sparse frontier for the dense
// executor, nil otherwise (pure dense run, zero overhead).
func hybridDensity(den *plan.Density) *plan.Density {
	if den.HasSparseFrontier() {
		return den
	}
	return nil
}

// evalPlanSparse evaluates the whole plan sparsely: first the Yannakakis
// fast path for acyclic conjunctive queries (no k-dimensional intermediate
// at all), then the general sval executor.
func evalPlanSparse(ctx context.Context, p *plan.Plan, db *database.Database, opts *Options, den *plan.Density) (*relation.Set, *Stats, error) {
	stats := &Stats{}
	if ans, ok, err := tryAcyclicFast(ctx, p, db, stats); ok {
		return ans, stats, err
	}
	r := newSpRun(ctx, p, db, opts, den, stats)
	sv, err := r.evalNode(p.Root)
	if err != nil {
		return nil, stats, err
	}
	out, err := r.materialize(sv, p.HeadAxes)
	if err != nil {
		return nil, stats, err
	}
	return out.ToSet(), stats, nil
}

// tryAcyclicFast recognizes the plan's query as an acyclic conjunctive
// query and evaluates it by the Yannakakis semijoin pipeline, whose
// intermediates never exceed the join-tree node arities — the §1 route
// around the n^k wall for the fragment where it applies. Returns ok=false
// (and no error) when the query is outside the fragment or cyclic, letting
// the caller fall through to the general sparse executor.
func tryAcyclicFast(ctx context.Context, p *plan.Plan, db *database.Database, stats *Stats) (*relation.Set, bool, error) {
	cq, ok := queryopt.FromQuery(p.Query)
	if !ok {
		return nil, false, nil
	}
	ans, qst, err := queryopt.EvalYannakakisContext(ctx, cq, db)
	if err != nil {
		if errors.Is(err, queryopt.ErrCyclic) {
			return nil, false, nil
		}
		return nil, true, err
	}
	stats.addAcyclicFastPath(1)
	stats.addSubformulaEvals(int64(qst.Operations))
	stats.addTuplesTouched(int64(qst.TuplesTouched))
	stats.observe(qst.MaxIntermediateArity, qst.MaxIntermediateTuples)
	return ans, true, nil
}
