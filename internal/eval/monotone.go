package eval

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
)

// Monotone evaluates a (dependently) alternation-free FP query with
// fixpoint memoization: when a fixpoint node is re-evaluated (because an
// enclosing fixpoint iterated), it warm-starts from its previous value
// instead of restarting from ∅ (lfp) or Dᵏ (gfp). Within a same-polarity
// nest the environment moves in one direction only — upward for lfp-only
// formulas, downward for gfp-only formulas — so the restart is sound and
// every node advances at most nᵏ times in total: l·nᵏ iterations instead of
// n^{kl} (the footnote-5 observation of the paper). Opposite-polarity
// subformulas are fine as long as they are *closed* (they do not mention the
// enclosing recursion relation): their environment never changes, so the
// memo just replays their value. Admission is therefore by
// logic.DependentAlternationDepth ≤ 1 — the Emerson–Lei notion, under which
// all of CTL is alternation-free.
//
// Queries whose NNF truly alternates µ and ν are rejected; they need the
// nondeterministic machinery of Theorem 3.5 (FindCertificate /
// VerifyCertificate) or the naive BottomUp evaluator.
func Monotone(q logic.Query, db *database.Database) (*relation.Set, error) {
	ans, _, err := MonotoneStats(q, db, nil)
	return ans, err
}

// MonotoneStats is Monotone with options and work statistics. Monotone
// honors only the observation knobs of Options (Tracer); width bounds and
// PFP settings do not apply to its fragment.
func MonotoneStats(q logic.Query, db *database.Database, opts *Options) (*relation.Set, *Stats, error) {
	return MonotoneContext(context.Background(), q, db, opts)
}

// MonotoneContext is MonotoneStats honoring a context: cancellation is
// checked once per fixpoint iteration, like BottomUpContext. On cancellation
// the returned Stats hold the work completed so far.
func MonotoneContext(ctx context.Context, q logic.Query, db *database.Database, opts *Options) (*relation.Set, *Stats, error) {
	if err := q.Validate(signatureOf(db)); err != nil {
		return nil, nil, err
	}
	if err := checkDomain(db); err != nil {
		return nil, nil, err
	}
	// FO bodies never reach a fixpoint boundary; check once up front so an
	// already-expired context never starts evaluating.
	if err := checkCtx(ctx); err != nil {
		return nil, nil, err
	}
	body, err := logic.NNF(q.Body)
	if err != nil {
		return nil, nil, err
	}
	if fr := logic.Classify(body); fr != logic.FragFO && fr != logic.FragFP && fr != logic.FragIFP {
		return nil, nil, fmt.Errorf("eval: Monotone evaluates FP/IFP only, got %v", fr)
	}
	if err := logic.Validate(body, nil); err != nil {
		return nil, nil, err
	}
	if d := logic.DependentAlternationDepth(body); d > 1 {
		return nil, nil, fmt.Errorf("eval: Monotone requires a (dependently) alternation-free formula, alternation depth is %d", d)
	}
	vars := q.Vars()
	sp, err := relation.NewSpace(len(vars), db.Size())
	if err != nil {
		return nil, nil, err
	}
	c := &monoCtx{ctx: ctx, db: db, sp: sp, axes: make(map[logic.Var]int, len(vars)), env: newEnv(), stats: &Stats{}, opts: opts, memo: make(map[string]*relation.Set)}
	for i, v := range vars {
		c.axes[v] = i
	}
	d, err := c.eval(body, "r")
	if err != nil {
		return nil, c.stats, err
	}
	head := make([]int, len(q.Head))
	for i, v := range q.Head {
		head[i] = c.axes[v]
	}
	return d.Project(head), c.stats, nil
}

type monoCtx struct {
	ctx   context.Context
	db    *database.Database
	sp    *relation.Space
	axes  map[logic.Var]int
	env   *env
	stats *Stats
	opts  *Options
	// memo warm-starts fixpoints across re-evaluations. Keys MUST identify
	// the fixpoint's *occurrence*, not its text: two sibling fixpoints can
	// have byte-identical bodies yet evaluate under different environments
	// (e.g. the same recursion-relation name bound by different enclosing
	// operators), and replaying one's stages as the other's would silently
	// corrupt the answer. Keys are therefore structural paths from the root
	// ("r" extended with ".l"/".r"/".n"/".q"/".b" per step), which are unique
	// per occurrence by construction; the bound relation's name and extended
	// arity are appended as a tripwire so that any future change that drops
	// position from the key still cannot collide occurrences that bind
	// different relations. TestMonotoneMemoNoCrossOccurrenceReplay is the
	// regression test for this invariant.
	memo map[string]*relation.Set
}

func (c *monoCtx) axesOf(vs []logic.Var) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = c.axes[v]
	}
	return out
}

func (c *monoCtx) eval(f logic.Formula, path string) (*relation.Dense, error) {
	c.stats.addSubformulaEvals(1)
	switch g := f.(type) {
	case logic.Atom:
		if br, ok := c.env.rels[g.Rel]; ok {
			return c.sp.FromAtom(br.set, append(c.axesOf(g.Args), c.axesOf(br.params)...))
		}
		rel, err := c.db.Rel(g.Rel)
		if err != nil {
			return nil, err
		}
		return c.sp.FromAtom(rel, c.axesOf(g.Args))
	case logic.Eq:
		return c.sp.Diagonal(c.axes[g.L], c.axes[g.R]), nil
	case logic.Truth:
		if g.Value {
			return c.sp.Full(), nil
		}
		return c.sp.Empty(), nil
	case logic.Not:
		d, err := c.eval(g.F, path+".n")
		if err != nil {
			return nil, err
		}
		d.Complement()
		return d, nil
	case logic.Binary:
		l, err := c.eval(g.L, path+".l")
		if err != nil {
			return nil, err
		}
		r, err := c.eval(g.R, path+".r")
		if err != nil {
			return nil, err
		}
		switch g.Op {
		case logic.AndOp:
			l.IntersectWith(r)
		case logic.OrOp:
			l.UnionWith(r)
		default:
			return nil, fmt.Errorf("eval: %v connective survived NNF", g.Op)
		}
		return l, nil
	case logic.Quant:
		d, err := c.eval(g.F, path+".q")
		if err != nil {
			return nil, err
		}
		if g.Kind == logic.ExistsQ {
			return d.ExistsAxis(c.axes[g.V]), nil
		}
		return d.ForallAxis(c.axes[g.V]), nil
	case logic.Fix:
		return c.evalFix(g, path)
	default:
		return nil, fmt.Errorf("eval: Monotone does not support %T", f)
	}
}

func (c *monoCtx) evalFix(g logic.Fix, path string) (*relation.Dense, error) {
	if g.Op != logic.LFP && g.Op != logic.GFP && g.Op != logic.IFP {
		return nil, fmt.Errorf("eval: Monotone does not support %s", g.Op)
	}
	params := fixParams(g)
	ext := len(g.Vars) + len(params)
	extCols := append(c.axesOf(g.Vars), c.axesOf(params)...)
	key := path + "|" + g.Rel + "/" + strconv.Itoa(ext)
	cur := c.memo[key]
	if cur == nil {
		if g.Op == logic.GFP {
			cur = (&buCtx{db: c.db, sp: c.sp}).fullSet(ext)
		} else {
			cur = relation.NewSet(ext)
		}
	}
	restore := c.env.bind(g.Rel, boundRel{set: cur, params: params})
	defer restore()
	tr := tracerOf(c.opts)
	var stage int
	for {
		if err := checkCtx(c.ctx); err != nil {
			return nil, err
		}
		c.stats.addFixIterations(1)
		var stageStart time.Time
		if tr != nil {
			stageStart = time.Now()
		}
		c.env.rels[g.Rel] = boundRel{set: cur, params: params}
		body, err := c.eval(g.Body, path+".b")
		if err != nil {
			return nil, err
		}
		next := body.Project(extCols)
		if g.Op == logic.GFP {
			next = next.Intersect(cur) // keep the chain decreasing
		} else {
			// LFP: keep the Lemma 3.4 chain increasing. IFP: inflationary
			// by definition. (A lone IFP is safe here — the alternation
			// check rejects IFP nested in or around other fixpoints, so it
			// is never re-evaluated and the memo is never reused.)
			next = next.Union(cur)
		}
		if tr != nil {
			stage++
			tr(TraceEvent{Engine: "monotone", Fixpoint: g.Rel, Op: g.Op.String(), Binder: -1,
				Stage: stage, Tuples: next.Len(), Delta: next.Len() - cur.Len(), Elapsed: time.Since(stageStart)})
		}
		if next.Equal(cur) {
			break
		}
		cur = next
	}
	c.memo[key] = cur
	return c.sp.FromAtom(cur, append(c.axesOf(g.Args), c.axesOf(params)...))
}
