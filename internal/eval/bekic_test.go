package eval

import (
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
)

// simSystem is the mutual even/odd reachability system:
//
//	Even(x) = P(x) ∨ ∃z(E(z,x) ∧ ∃x(x=z ∧ Odd(x)))
//	Odd(x)  = ∃z(E(z,x) ∧ ∃x(x=z ∧ Even(x)))
func simSystem() []logic.SimDef {
	step := func(rel string) logic.Formula {
		return logic.Exists(logic.And(logic.R("E", "z", "x"),
			logic.Exists(logic.And(logic.Equal("x", "z"), logic.R(rel, "x")), "x")), "z")
	}
	return []logic.SimDef{
		{Rel: "Ev", Vars: []logic.Var{"x"}, Body: logic.Or(logic.R("P", "x"), step("Od"))},
		{Rel: "Od", Vars: []logic.Var{"x"}, Body: step("Ev")},
	}
}

// directSimultaneous computes the simultaneous least fixpoint by Kleene
// iteration over the product lattice — the semantic reference.
func directSimultaneous(t *testing.T, defs []logic.SimDef, db *database.Database) []*relation.Set {
	t.Helper()
	cur := make([]*relation.Set, len(defs))
	for i, d := range defs {
		cur[i] = relation.NewSet(len(d.Vars))
	}
	for {
		next := make([]*relation.Set, len(defs))
		for i, d := range defs {
			// Evaluate body with all current components bound, by building
			// a database extension and using the trusted evaluator.
			b := database.NewBuilder()
			for _, name := range db.Names() {
				a, _ := db.Arity(name)
				b.Relation(name, a)
				rel, _ := db.RelValues(name)
				rel.ForEach(func(tp relation.Tuple) { b.Add(name, tp...) })
			}
			for j, dj := range defs {
				b.Relation(dj.Rel, len(dj.Vars))
				cur[j].ForEach(func(tp relation.Tuple) {
					raw := make([]int, len(tp))
					for q, v := range tp {
						raw[q] = db.Value(v)
					}
					b.Add(dj.Rel, raw...)
				})
			}
			ext, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			q := logic.MustQuery(d.Vars, d.Body)
			ans, err := Naive(q, ext)
			if err != nil {
				t.Fatal(err)
			}
			next[i] = ans
		}
		same := true
		for i := range next {
			if !next[i].Equal(cur[i]) {
				same = false
			}
		}
		cur = next
		if same {
			return cur
		}
	}
}

func TestBekicMatchesSimultaneous(t *testing.T) {
	defs := simSystem()
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		db := randomGraph(t, r, 2+r.Intn(3))
		want := directSimultaneous(t, defs, db)
		for which := 0; which < len(defs); which++ {
			f, err := logic.BekicLfp(defs, which, []logic.Var{"u"})
			if err != nil {
				t.Fatal(err)
			}
			if err := logic.Validate(f, nil); err != nil {
				t.Fatalf("Bekić output invalid: %v\n%s", err, f)
			}
			if d := logic.DependentAlternationDepth(f); d > 1 {
				t.Fatalf("Bekić output has dependent alternation depth %d", d)
			}
			q := logic.MustQuery([]logic.Var{"u"}, f)
			got, err := BottomUp(q, db)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want[which]) {
				t.Fatalf("component %d: Bekić %v != simultaneous %v on\n%s",
					which, got, want[which], db)
			}
			// Monotone accepts it (same-polarity nesting).
			mo, err := Monotone(q, db)
			if err != nil {
				t.Fatalf("Monotone rejected Bekić output: %v", err)
			}
			if !mo.Equal(got) {
				t.Fatalf("Monotone disagrees on Bekić output")
			}
		}
	}
}

func TestBekicThreeEquations(t *testing.T) {
	// Distance mod 3 from P: three mutually recursive components.
	step := func(rel string) logic.Formula {
		return logic.Exists(logic.And(logic.R("E", "z", "x"),
			logic.Exists(logic.And(logic.Equal("x", "z"), logic.R(rel, "x")), "x")), "z")
	}
	defs := []logic.SimDef{
		{Rel: "D0", Vars: []logic.Var{"x"}, Body: logic.Or(logic.R("P", "x"), step("D2"))},
		{Rel: "D1", Vars: []logic.Var{"x"}, Body: step("D0")},
		{Rel: "D2", Vars: []logic.Var{"x"}, Body: step("D1")},
	}
	db := lineGraph(t, 7)
	want := directSimultaneous(t, defs, db)
	for which := 0; which < 3; which++ {
		f, err := logic.BekicLfp(defs, which, []logic.Var{"u"})
		if err != nil {
			t.Fatal(err)
		}
		q := logic.MustQuery([]logic.Var{"u"}, f)
		got, err := BottomUp(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want[which]) {
			t.Fatalf("component %d: Bekić %v != simultaneous %v", which, got, want[which])
		}
	}
	// On the 7-node line with P={0}: distances 0..6 → D0={0,3,6}.
	f0, _ := logic.BekicLfp(defs, 0, []logic.Var{"u"})
	got, _ := BottomUp(logic.MustQuery([]logic.Var{"u"}, f0), db)
	wantD0 := relation.SetOf(1, relation.Tuple{0}, relation.Tuple{3}, relation.Tuple{6})
	if !got.Equal(wantD0) {
		t.Fatalf("D0 = %v, want %v", got, wantD0)
	}
}

// directSimultaneousGfp mirrors directSimultaneous from the top element.
func directSimultaneousGfp(t *testing.T, defs []logic.SimDef, db *database.Database) []*relation.Set {
	t.Helper()
	cur := make([]*relation.Set, len(defs))
	for i, d := range defs {
		full := relation.NewSet(len(d.Vars))
		forEachAssignment(db.Size(), len(d.Vars), func(tp []int) bool { full.Add(tp); return true })
		cur[i] = full
	}
	for {
		next := make([]*relation.Set, len(defs))
		for i, d := range defs {
			b := database.NewBuilder()
			for _, name := range db.Names() {
				a, _ := db.Arity(name)
				b.Relation(name, a)
				rel, _ := db.RelValues(name)
				rel.ForEach(func(tp relation.Tuple) { b.Add(name, tp...) })
			}
			for j, dj := range defs {
				b.Relation(dj.Rel, len(dj.Vars))
				cur[j].ForEach(func(tp relation.Tuple) {
					raw := make([]int, len(tp))
					for q, v := range tp {
						raw[q] = db.Value(v)
					}
					b.Add(dj.Rel, raw...)
				})
			}
			ext, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			q := logic.MustQuery(d.Vars, d.Body)
			ans, err := Naive(q, ext)
			if err != nil {
				t.Fatal(err)
			}
			next[i] = ans
		}
		same := true
		for i := range next {
			if !next[i].Equal(cur[i]) {
				same = false
			}
		}
		cur = next
		if same {
			return cur
		}
	}
}

func TestBekicGfpMatchesSimultaneous(t *testing.T) {
	// Mutual "safe" system: A(x) = hasSucc∧B-step, B(x) = P(x)∧A-step —
	// greatest solutions.
	step := func(rel string) logic.Formula {
		return logic.Exists(logic.And(logic.R("E", "x", "y"),
			logic.Exists(logic.And(logic.Equal("x", "y"), logic.R(rel, "x")), "x")), "y")
	}
	defs := []logic.SimDef{
		{Rel: "A", Vars: []logic.Var{"x"}, Body: step("B")},
		{Rel: "B", Vars: []logic.Var{"x"}, Body: logic.And(logic.R("P", "x"), step("A"))},
	}
	r := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 10; trial++ {
		db := randomGraph(t, r, 2+r.Intn(3))
		want := directSimultaneousGfp(t, defs, db)
		for which := 0; which < len(defs); which++ {
			f, err := logic.BekicGfp(defs, which, []logic.Var{"u"})
			if err != nil {
				t.Fatal(err)
			}
			q := logic.MustQuery([]logic.Var{"u"}, f)
			got, err := BottomUp(q, db)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(want[which]) {
				t.Fatalf("gfp component %d: Bekić %v != simultaneous %v on\n%s",
					which, got, want[which], db)
			}
		}
	}
}

func TestBekicValidation(t *testing.T) {
	if _, err := logic.BekicLfp(nil, 0, nil); err == nil {
		t.Fatal("empty system accepted")
	}
	defs := simSystem()
	if _, err := logic.BekicLfp(defs, 5, []logic.Var{"u"}); err == nil {
		t.Fatal("out-of-range component accepted")
	}
	if _, err := logic.BekicLfp(defs, 0, []logic.Var{"u", "v"}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	dup := []logic.SimDef{defs[0], defs[0]}
	if _, err := logic.BekicLfp(dup, 0, []logic.Var{"u"}); err == nil {
		t.Fatal("duplicate relation accepted")
	}
}
