package eval

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/relation"
)

// Compiled evaluates a query through a compiled plan (internal/plan): the
// body is lowered once to a hash-consed DAG of dense-relation operators, and
// fixpoint iteration becomes incremental re-evaluation of that DAG.
//
// Three mechanisms make it faster than BottomUp while returning byte-identical
// answers on every admitted fragment (FO, FP, IFP, PFP):
//
//   - Hoisting. A node whose value cannot change while a fixpoint iterates
//     (database atoms, diagonals, recursion-free subtrees, closed inner
//     fixpoints) is evaluated once and served from the DAG cache on every
//     later visit; only the per-binder dirty nodes are re-evaluated per
//     stage. Stats.NodesReused counts the cache-served frontier reads.
//
//   - Semi-naive deltas. For an LFP/IFP binder whose dirty nodes are all
//     monotone operators, each stage pushes ΔS — the tuples added in the
//     previous stage — through the dirty nodes with sparse changed-word
//     kernels (relation.UnionSparse and friends), the tuple-level analogue of
//     internal/datalog's semi-naive loop. Stats.DeltaTuples sums the |ΔS|.
//     GFP and PFP stages, and dirty sets containing negation or nested
//     fixpoints, fall back to full dirty-node re-evaluation (still hoisting
//     everything clean).
//
//   - Parallel dirty nodes. Independent dirty nodes of one stage (the plan's
//     topological waves) are evaluated concurrently under
//     Options.Parallelism, as is the PFP parameter sweep. Answers and all
//     Stats counters are identical at every parallelism setting.
//
// Cancellation is checked at stage boundaries exactly like BottomUpContext.
func Compiled(q logic.Query, db *database.Database) (*relation.Set, error) {
	ans, _, err := CompiledStats(q, db, nil)
	return ans, err
}

// CompiledStats is Compiled with options and work statistics.
func CompiledStats(q logic.Query, db *database.Database, opts *Options) (*relation.Set, *Stats, error) {
	return CompiledContext(context.Background(), q, db, opts)
}

// CompiledContext is CompiledStats honoring a context. It compiles the plan
// and evaluates it; callers that evaluate the same query repeatedly (the bvqd
// daemon) compile once and call EvalPlanContext directly.
func CompiledContext(ctx context.Context, q logic.Query, db *database.Database, opts *Options) (*relation.Set, *Stats, error) {
	p, err := plan.Compile(q)
	if err != nil {
		return nil, nil, err
	}
	return EvalPlanContext(ctx, p, db, opts)
}

// evalPlanDense runs the dense full-width engine. Callers (EvalPlanContext)
// have already validated the query; den, when non-nil, labels recursion-free
// low-density subtrees the run evaluates sparsely and cylindrifies at their
// boundary (the hybrid frontier).
func evalPlanDense(ctx context.Context, p *plan.Plan, db *database.Database, opts *Options, den *plan.Density) (*relation.Set, *Stats, error) {
	ans, st, _, err := evalPlanDenseMaint(ctx, p, db, opts, den, nil, false)
	return ans, st, err
}

// evalPlanDenseMaint is evalPlanDense threading delta-restart maintenance
// (maintain.go): seed, when non-nil, provides previous fixpoint stages the
// seedable binders restart from; capture, when set on a maintainable plan,
// records each seedable binder's final stage into the returned MaintState.
func evalPlanDenseMaint(ctx context.Context, p *plan.Plan, db *database.Database, opts *Options, den *plan.Density, seed *MaintState, capture bool) (*relation.Set, *Stats, *MaintState, error) {
	h, st, state, err := evalPlanDenseHead(ctx, p, db, opts, den, seed, capture)
	if err != nil {
		return nil, st, nil, err
	}
	out := h.ToSet()
	h.Release()
	return out, st, state, nil
}

// evalPlanDenseHead is the dense engine's core: it evaluates the plan and
// returns the answer as a Dense relation over the head space (arity
// len(HeadAxes), always feasible since the full-width space was), leaving
// the decode-to-tuples step to the caller. The materializing path converts
// it to a Set; the streaming path hands it to a relation.DenseCursor, which
// decodes set bits lazily. The caller owns the returned Dense and must
// Release it. Head variables are distinct (logic.Query.Validate), so the
// word-parallel ProjectAt dedup path always applies — this is the same
// extraction Dense.Project performs, split before the tuple decode.
func evalPlanDenseHead(ctx context.Context, p *plan.Plan, db *database.Database, opts *Options, den *plan.Density, seed *MaintState, capture bool) (*relation.Dense, *Stats, *MaintState, error) {
	sp, err := relation.NewSpace(len(p.Vars), db.Size())
	if err != nil {
		return nil, nil, nil, err
	}
	r := &cpRun{
		ctx:     ctx,
		p:       p,
		db:      db,
		sp:      sp,
		den:     den,
		stats:   &Stats{},
		opts:    opts,
		atoms:   &atomCache{},
		spaces:  &spaceCache{n: db.Size()},
		val:     make([]*relation.Dense, len(p.Nodes)),
		valid:   make([]bool, len(p.Nodes)),
		owned:   make([]bool, len(p.Nodes)),
		valCnt:  make([]int, len(p.Nodes)),
		deltas:  make([]*relation.Dense, len(p.Nodes)),
		binding: make([]*relation.Dense, p.NumBinders),
		prof:    profileOf(opts),
	}
	if seed != nil {
		r.seed = seed.stages
	}
	if capture && p.Maint != nil && p.Maint.OK {
		r.captured = make([]*relation.Set, p.NumBinders)
	}
	if par := parallelism(opts); par > 1 {
		r.sem = make(chan struct{}, par-1)
	}
	d, err := r.evalNode(p.Root)
	if err != nil {
		return nil, r.stats, nil, err
	}
	var state *MaintState
	if r.captured != nil {
		state = &MaintState{stages: r.captured}
	}
	hsp, err := relation.NewSpace(len(p.HeadAxes), db.Size())
	if err != nil {
		return nil, r.stats, nil, err
	}
	return d.ProjectAt(hsp, p.HeadAxes, nil, nil), r.stats, state, nil
}

// cpRun is one evaluation of a compiled plan. The PFP parameter sweep forks
// one run per worker: val/valid/binding are per-run, everything else is
// shared (immutable or internally synchronized).
type cpRun struct {
	ctx    context.Context
	p      *plan.Plan
	db     *database.Database
	sp     *relation.Space
	stats  *Stats
	opts   *Options
	atoms  *atomCache
	spaces *spaceCache
	// den, when non-nil, labels the hybrid sparse frontier (plan.Density
	// Mode); sprun is the lazily created sparse evaluator serving it.
	den   *plan.Density
	sprun *spRun
	// sem holds the extra-worker tokens for the wave scheduler; nil means
	// fully serial (Parallelism 1, and inside PFP sweep workers).
	sem chan struct{}

	// Per-node DAG cache. val[n] is node n's dense value over the full-width
	// space; valid[n] marks it current; owned[n] marks it releasable by this
	// run (false for atom-cache masters and fork-inherited values, which must
	// never be mutated or released). valCnt[n] is val[n]'s tuple count,
	// maintained incrementally by delta passes.
	val    []*relation.Dense
	valid  []bool
	owned  []bool
	valCnt []int
	// deltas[n] is node n's delta during one semi-naive pass (nil = empty).
	deltas []*relation.Dense
	// binding[b] is binder b's current stage (extended arity for LFP/GFP/IFP,
	// recursion-tuple arity for PFP).
	binding []*relation.Dense
	// seed[b], when non-nil, is a previous snapshot's final stage for a
	// seedable binder: its LFP/IFP loop restarts from it instead of from ∅
	// (delta-restart maintenance, maintain.go). captured, when allocated,
	// receives each seedable binder's final stage as a sparse set.
	seed     []*relation.Set
	captured []*relation.Set
	// prof, when non-nil, accumulates per-node eval counts and wall time for
	// explain mode. Timing is inclusive of on-demand child computation: the
	// wave scheduler computes nodes in topological order, so for stage work
	// inclusive ≈ self; only first-touch cold descents overlap.
	prof *PlanProfile
}

// fork returns a run for a PFP sweep worker: independent node cache and
// bindings over the shared plan, database, stats and caches. Inherited values
// are not owned — the parent may still read them — and nested evaluation
// inside a worker is serial, mirroring BottomUp's fork.
func (r *cpRun) fork() *cpRun {
	return &cpRun{
		ctx:     r.ctx,
		p:       r.p,
		db:      r.db,
		sp:      r.sp,
		stats:   r.stats,
		opts:    r.opts,
		atoms:   r.atoms,
		spaces:  r.spaces,
		den:     r.den,
		sem:     nil,
		val:     append([]*relation.Dense(nil), r.val...),
		valid:   append([]bool(nil), r.valid...),
		owned:   make([]bool, len(r.owned)),
		valCnt:  append([]int(nil), r.valCnt...),
		deltas:  make([]*relation.Dense, len(r.deltas)),
		binding: append([]*relation.Dense(nil), r.binding...),
		prof:    r.prof,
	}
}

// evalNode returns node n's value, computing it if the cached value is not
// current. The returned relation is owned by the node cache: callers must
// not mutate or release it.
func (r *cpRun) evalNode(n int) (*relation.Dense, error) {
	if r.valid[n] {
		return r.val[n], nil
	}
	var t0 time.Time
	if r.prof != nil {
		t0 = time.Now()
	}
	d, owned, err := r.computeNode(n)
	if r.prof != nil {
		r.prof.observe(n, time.Since(t0))
	}
	if err != nil {
		return nil, err
	}
	cnt := d.Count()
	r.stats.addSubformulaEvals(1)
	r.stats.observe(r.sp.Arity(), cnt)
	r.setVal(n, d, owned, cnt)
	return d, nil
}

func (r *cpRun) setVal(n int, d *relation.Dense, owned bool, cnt int) {
	if r.owned[n] && r.val[n] != nil && r.val[n] != d {
		r.val[n].Release()
	}
	r.val[n] = d
	r.owned[n] = owned
	r.valid[n] = true
	r.valCnt[n] = cnt
}

// invalidate marks node n for re-evaluation, recycling an owned value.
func (r *cpRun) invalidate(n int) {
	if !r.valid[n] {
		return
	}
	r.valid[n] = false
	if r.owned[n] {
		r.val[n].Release()
	}
	r.val[n] = nil
	r.owned[n] = false
}

func (r *cpRun) computeNode(n int) (*relation.Dense, bool, error) {
	if r.den != nil && r.den.Mode[n] == plan.NodeSparse {
		d, err := r.sparseFrontier(n)
		if err == nil {
			return d, true, nil
		}
		if !errors.Is(err, ErrSparseBudget) {
			return nil, false, err
		}
		// The density estimate was wrong for this subtree: fall through to
		// the dense kernels (the space is feasible — hybrid mode requires it).
	}
	nd := &r.p.Nodes[n]
	switch nd.Op {
	case plan.OpAtom:
		if nd.Binder >= 0 {
			d, err := r.sp.FromDenseAtom(r.binding[nd.Binder], r.p.AtomAxes(n))
			return d, true, err
		}
		// Database atoms are immutable for the whole run: the node caches the
		// atomCache master itself (never mutated, never released by this run).
		d, err := r.cachedAtom(nd.Rel, nd.Args)
		return d, false, err
	case plan.OpEq:
		return r.sp.Diagonal(nd.L, nd.R), true, nil
	case plan.OpConst:
		if nd.Truth {
			return r.sp.Full(), true, nil
		}
		return r.sp.Empty(), true, nil
	case plan.OpNot:
		kv, err := r.evalNode(nd.Kids[0])
		if err != nil {
			return nil, false, err
		}
		out := kv.Clone()
		out.Complement()
		return out, true, nil
	case plan.OpAnd, plan.OpOr:
		lv, err := r.evalNode(nd.Kids[0])
		if err != nil {
			return nil, false, err
		}
		rv, err := r.evalNode(nd.Kids[1])
		if err != nil {
			return nil, false, err
		}
		out := lv.Clone()
		if nd.Op == plan.OpAnd {
			out.IntersectWith(rv)
		} else {
			out.UnionWith(rv)
		}
		return out, true, nil
	case plan.OpExists:
		kv, err := r.evalNode(nd.Kids[0])
		if err != nil {
			return nil, false, err
		}
		return kv.ExistsAxis(nd.Axis), true, nil
	case plan.OpForall:
		kv, err := r.evalNode(nd.Kids[0])
		if err != nil {
			return nil, false, err
		}
		return kv.ForallAxis(nd.Axis), true, nil
	case plan.OpFix:
		d, err := r.evalFix(n)
		return d, true, err
	default:
		return nil, false, fmt.Errorf("eval: unknown plan op %d", nd.Op)
	}
}

// sparseFrontier evaluates a Mode-labeled recursion-free subtree with the
// sparse executor and cylindrifies the result into the full-width space —
// one representation switch at the subtree boundary instead of a dense
// kernel per node. A negative sval is complemented densely after the switch
// (¬cyl(R) is the correct widening of a complement block).
func (r *cpRun) sparseFrontier(n int) (*relation.Dense, error) {
	if r.sprun == nil {
		r.sprun = newSpRun(r.ctx, r.p, r.db, r.opts, r.den, r.stats)
	}
	sv, err := r.sprun.evalNode(n)
	if err != nil {
		return nil, err
	}
	d, err := r.sp.FromSparse(sv.rel, sv.sup)
	if err != nil {
		return nil, err
	}
	if sv.neg {
		d.Complement()
	}
	r.stats.addRepSwitches(1)
	return d, nil
}

// cachedAtom returns the shared cylindrified master for a database atom (see
// atomCache); unlike BottomUp's per-visit copy, the compiled engine reads the
// master directly — node values are never mutated.
func (r *cpRun) cachedAtom(relName string, args []int) (*relation.Dense, error) {
	rel, err := r.db.Rel(relName)
	if err != nil {
		return nil, err
	}
	key := atomKey(relName, args)
	r.atoms.mu.Lock()
	defer r.atoms.mu.Unlock()
	if master, ok := r.atoms.m[key]; ok {
		return master, nil
	}
	master, err := r.sp.FromAtom(rel, args)
	if err != nil {
		return nil, err
	}
	if r.atoms.m == nil {
		r.atoms.m = make(map[string]*relation.Dense)
	}
	r.atoms.m[key] = master
	return master, nil
}

// evalFix runs the stage loop for a fixpoint node, mirroring BottomUp's loop
// structure exactly (same initial stage, same extraction, same convergence
// test) so stage sequences — and answers — are identical; only the per-stage
// work is incremental.
func (r *cpRun) evalFix(n int) (*relation.Dense, error) {
	fx := r.p.Nodes[n].Fix
	if fx.Op == logic.PFP {
		return r.evalPFP(n)
	}
	b := fx.Binder
	esp, err := r.spaces.space(fx.ExtArity)
	if err != nil {
		return nil, err
	}
	// Hoisted frontier: everything the stage loop reads but never recomputes
	// is made current once, before iterating.
	for _, m := range r.p.PreEval[b] {
		if _, err := r.evalNode(m); err != nil {
			return nil, err
		}
	}
	var cur *relation.Dense
	switch {
	case fx.Op == logic.GFP:
		cur = esp.Full()
	case r.seed != nil && b < len(r.seed) && r.seed[b] != nil:
		// Delta-restart maintenance: resume the increasing chain from the
		// previous snapshot's fixpoint instead of from ∅ (maintain.go). The
		// first iteration is a full stage against the new database; later
		// stages run semi-naive on whatever the delta added.
		cur, err = r.seed[b].ToDense(esp)
		if err != nil {
			return nil, err
		}
	default:
		cur = esp.Empty()
	}
	var delta *relation.Dense // non-nil once the semi-naive regime is active
	fail := func(err error) (*relation.Dense, error) {
		cur.Release()
		if delta != nil {
			delta.Release()
		}
		r.binding[b] = nil
		return nil, err
	}
	tr := tracerOf(r.opts)
	var stage, prevCount int
	if tr != nil {
		prevCount = cur.Count()
	}
	trace := func(start time.Time, tuples int) {
		stage++
		tr(TraceEvent{Engine: "compiled", Fixpoint: fx.Rel, Op: fx.Op.String(), Binder: fx.Binder,
			Stage: stage, Tuples: tuples, Delta: tuples - prevCount, Elapsed: time.Since(start)})
		prevCount = tuples
	}
	for {
		if err := checkCtx(r.ctx); err != nil {
			return fail(err)
		}
		r.stats.addFixIterations(1)
		r.stats.addNodesReused(int64(len(r.p.PreEval[b])))
		r.binding[b] = cur
		var stageStart time.Time
		if tr != nil {
			stageStart = time.Now()
		}

		if delta != nil {
			// Semi-naive stage: push ΔS through the dirty nodes.
			r.stats.addDeltaTuples(int64(delta.Count()))
			nd, err := r.deltaStage(b, delta, esp)
			if err != nil {
				return fail(err)
			}
			if nd == nil || nd.IsEmpty() {
				if nd != nil {
					nd.Release()
				}
				delta.Release()
				if tr != nil {
					trace(stageStart, prevCount) // converging stage: delta 0
				}
				break // body gained nothing: cur is the fixpoint
			}
			cur.UnionWith(nd)
			delta.Release()
			delta = nd
			if tr != nil {
				trace(stageStart, prevCount+nd.Count())
			}
			continue
		}

		// Full stage: re-evaluate the dirty nodes against the new binding.
		for _, d := range r.p.Dirty[b] {
			r.invalidate(d)
		}
		if err := r.evalStage(b); err != nil {
			return fail(err)
		}
		next := r.val[fx.Body].ProjectAt(esp, fx.ExtCols, nil, nil)
		if fx.Op == logic.IFP {
			// Inflationary stages: S_{i+1} = S_i ∪ φ(S_i).
			next.UnionWith(cur)
		}
		if tr != nil {
			trace(stageStart, next.Count())
		}
		if next.Equal(cur) {
			next.Release()
			break
		}
		if r.p.DeltaOK[b] {
			delta = next.Clone()
			delta.DifferenceWith(cur)
		}
		cur.Release()
		cur = next
	}
	if r.captured != nil && r.p.Maint.Seeded[b] {
		// Seedable binders are hoisted, so this runs exactly once per
		// evaluation: keep the final stage as the maintenance state.
		r.captured[b] = cur.ToSet()
	}
	axes := make([]int, 0, len(fx.ArgAxes)+len(fx.ParamAxes))
	axes = append(axes, fx.ArgAxes...)
	axes = append(axes, fx.ParamAxes...)
	res, err := r.sp.FromDenseAtom(cur, axes)
	cur.Release()
	r.binding[b] = nil
	return res, err
}

// deltaStage applies one semi-naive pass for binder b: deltaExt is ΔS in the
// extended stage space, and every dirty node's value is updated in place by
// unioning in its delta, computed from its children's deltas with the
// per-connective rules
//
//	Δ S(x̄)    = FromDenseAtom(ΔS)                    (recursion atom)
//	Δ (φ ∨ ψ) = Δφ ∪ Δψ
//	Δ (φ ∧ ψ) = (Δφ ∩ ψ_new) ∪ (φ_new ∩ Δψ)
//	Δ (∃x φ)  = ∃x Δφ
//	Δ (∀x φ)  = ∀x φ_new \ old                        (recomputed, then diffed)
//
// each tightened by the node's old value, so deltas stay thin and every
// union is driven by sparse changed-word kernels. Soundness needs exactly
// the plan's DeltaOK condition: stages grow monotonically and all dirty
// operators distribute over ∪ (∀ is handled by recomputation). Returns the
// body's delta projected to the stage space and tightened against the
// current stage, nil when nothing changed.
func (r *cpRun) deltaStage(b int, deltaExt *relation.Dense, esp *relation.Space) (*relation.Dense, error) {
	p := r.p
	fx := p.Nodes[p.FixOf[b]].Fix
	sched := p.Sched[b] // equals Dirty[b]: DeltaOK forbids covered subtrees
	defer func() {
		for _, n := range sched {
			if r.deltas[n] != nil {
				r.deltas[n].Release()
				r.deltas[n] = nil
			}
		}
	}()
	for _, n := range sched {
		nd := &p.Nodes[n]
		var t0 time.Time
		if r.prof != nil {
			t0 = time.Now()
		}
		var dv *relation.Dense
		switch nd.Op {
		case plan.OpAtom:
			var err error
			dv, err = r.sp.FromDenseAtom(deltaExt, p.AtomAxes(n))
			if err != nil {
				return nil, err
			}
		case plan.OpOr:
			dv = r.sp.Empty()
			for _, k := range nd.Kids {
				if dk := r.deltas[k]; dk != nil {
					dv.UnionSparse(dk)
				}
			}
		case plan.OpAnd:
			dv = r.sp.Empty()
			l, rr := nd.Kids[0], nd.Kids[1]
			if dl := r.deltas[l]; dl != nil {
				dv.UnionAndSparse(dl, r.val[rr])
			}
			if dr := r.deltas[rr]; dr != nil {
				dv.UnionAndSparse(dr, r.val[l])
			}
		case plan.OpExists:
			dk := r.deltas[nd.Kids[0]]
			if dk == nil {
				continue
			}
			dv = dk.ExistsAxisSparse(nd.Axis)
		case plan.OpForall:
			if r.deltas[nd.Kids[0]] == nil {
				continue // child unchanged ⇒ ∀-value unchanged
			}
			dv = r.val[nd.Kids[0]].ForallAxis(nd.Axis)
		default:
			return nil, fmt.Errorf("eval: op %d in a delta pass (plan bug)", nd.Op)
		}
		added := dv.DifferenceSparse(r.val[n])
		if added == 0 {
			if r.prof != nil {
				r.prof.observe(n, time.Since(t0))
			}
			dv.Release()
			continue
		}
		if !r.owned[n] {
			// Fork-inherited value: copy before the in-place union.
			r.val[n] = r.val[n].Clone()
			r.owned[n] = true
		}
		r.val[n].UnionSparse(dv)
		r.valCnt[n] += added
		r.stats.addSubformulaEvals(1)
		r.stats.observe(r.sp.Arity(), r.valCnt[n])
		if r.prof != nil {
			r.prof.observe(n, time.Since(t0))
		}
		r.deltas[n] = dv
	}
	dB := r.deltas[fx.Body]
	if dB == nil {
		return nil, nil
	}
	nd := dB.ProjectAt(esp, fx.ExtCols, nil, nil)
	nd.DifferenceWith(r.binding[b])
	return nd, nil
}

// evalStage fully re-evaluates binder b's dirty nodes (after invalidation),
// in parallel topological waves when the plan has concurrent work and worker
// tokens are available, serially otherwise. Both paths compute exactly the
// same node set, so every Stats counter is schedule-independent.
func (r *cpRun) evalStage(b int) error {
	if r.sem != nil {
		for _, level := range r.p.SchedLevels[b] {
			if len(level) > 1 {
				return r.evalStageWaves(b)
			}
		}
	}
	_, err := r.evalNode(r.p.Nodes[r.p.FixOf[b]].Fix.Body)
	return err
}

// evalStageWaves executes the stage's topological waves: nodes within one
// wave read only earlier waves or the (already current) hoisted frontier, so
// they evaluate concurrently with no shared writes — every node slot is
// written by exactly one task, and all cross-task reads are ordered by the
// wave barrier.
func (r *cpRun) evalStageWaves(b int) error {
	for _, level := range r.p.SchedLevels[b] {
		extra := 0
		if len(level) > 1 {
		acquire:
			for extra < len(level)-1 {
				select {
				case r.sem <- struct{}{}:
					extra++
				default:
					break acquire
				}
			}
		}
		if extra == 0 {
			for _, n := range level {
				if _, err := r.evalNode(n); err != nil {
					return err
				}
			}
			continue
		}
		var (
			next     int64
			mu       sync.Mutex
			firstErr error
			wg       sync.WaitGroup
		)
		work := func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(level) {
					return
				}
				mu.Lock()
				stop := firstErr != nil
				mu.Unlock()
				if stop {
					return
				}
				if _, err := r.evalNode(level[i]); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}
		wg.Add(extra + 1)
		for w := 0; w < extra; w++ {
			go work()
		}
		work()
		wg.Wait()
		for k := 0; k < extra; k++ {
			<-r.sem
		}
		if firstErr != nil {
			return firstErr
		}
	}
	return nil
}

// evalPFP mirrors BottomUp's per-parameter-assignment sweep (same worker
// pool, same disjoint-section merge, same cycle detection via pfpHash /
// pfpBrent), with the plan's hoisted frontier shared across all assignments
// and all stages — it is evaluated exactly once here.
func (r *cpRun) evalPFP(n int) (*relation.Dense, error) {
	fx := r.p.Nodes[n].Fix
	b := fx.Binder
	m := len(fx.VarAxes)
	budget := DefaultPFPBudget
	mode := CycleHash
	if r.opts != nil {
		if r.opts.PFPBudget > 0 {
			budget = r.opts.PFPBudget
		}
		mode = r.opts.PFPCycle
	}
	msp, err := r.spaces.space(m)
	if err != nil {
		return nil, err
	}
	esp, err := r.spaces.space(fx.ExtArity)
	if err != nil {
		return nil, err
	}
	for _, mm := range r.p.PreEval[b] {
		if _, err := r.evalNode(mm); err != nil {
			return nil, err
		}
	}
	if len(fx.ParamAxes) == 0 {
		limit, err := r.pfpRun(n, msp, nil, mode, budget)
		if err != nil {
			return nil, err
		}
		res, err := r.sp.FromDenseAtom(limit, fx.ArgAxes)
		limit.Release()
		return res, err
	}

	dn := r.db.Size()
	nAssign := 1
	np := 1
	for range fx.ParamAxes {
		nAssign *= dn
		np *= dn
	}
	out := esp.Empty()
	merge := func(limit *relation.Dense, assign []int) {
		base := 0
		for j := range assign {
			base += assign[j] * esp.Stride(m+j)
		}
		limit.ForEachIndex(func(idx int) {
			out.AddIndex(base + idx*np)
		})
		limit.Release()
	}

	workers := parallelism(r.opts)
	if workers > nAssign {
		workers = nAssign
	}
	if workers <= 1 {
		assign := make([]int, len(fx.ParamAxes))
		for a := 0; a < nAssign; a++ {
			decodeAssign(a, dn, assign)
			limit, err := r.pfpRun(n, msp, assign, mode, budget)
			if err != nil {
				out.Release()
				return nil, err
			}
			merge(limit, assign)
		}
	} else {
		var (
			mu       sync.Mutex
			firstErr error
			next     int64
			stop     int32
			wg       sync.WaitGroup
		)
		for w := 0; w < workers; w++ {
			wr := r.fork()
			wg.Add(1)
			go func(wr *cpRun) {
				defer wg.Done()
				assign := make([]int, len(fx.ParamAxes))
				for {
					if atomic.LoadInt32(&stop) != 0 {
						return
					}
					a := int(atomic.AddInt64(&next, 1)) - 1
					if a >= nAssign {
						return
					}
					decodeAssign(a, dn, assign)
					limit, err := wr.pfpRun(n, msp, assign, mode, budget)
					mu.Lock()
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
						atomic.StoreInt32(&stop, 1)
						mu.Unlock()
						return
					}
					merge(limit, assign)
					mu.Unlock()
				}
			}(wr)
		}
		wg.Wait()
		if firstErr != nil {
			out.Release()
			return nil, firstErr
		}
	}
	res, err := r.sp.FromDenseAtom(out, append(append(make([]int, 0, m+len(fx.ParamAxes)), fx.ArgAxes...), fx.ParamAxes...))
	out.Release()
	return res, err
}

// pfpRun runs the partial-fixpoint iteration for one parameter assignment
// over the compiled DAG, reusing the cycle detectors shared with BottomUp.
func (r *cpRun) pfpRun(n int, msp *relation.Space, assign []int, mode CycleMode, budget int) (*relation.Dense, error) {
	fx := r.p.Nodes[n].Fix
	b := fx.Binder
	tr := tracerOf(r.opts)
	var stage int
	step := func(s *relation.Dense) (*relation.Dense, error) {
		if err := checkCtx(r.ctx); err != nil {
			return nil, err
		}
		r.stats.addFixIterations(1)
		r.stats.addNodesReused(int64(len(r.p.PreEval[b])))
		r.binding[b] = s
		var stageStart time.Time
		if tr != nil {
			stageStart = time.Now()
		}
		for _, d := range r.p.Dirty[b] {
			r.invalidate(d)
		}
		if err := r.evalStage(b); err != nil {
			return nil, err
		}
		next := r.val[fx.Body].ProjectAt(msp, fx.VarAxes, fx.ParamAxes, assign)
		if tr != nil {
			stage++
			nc := next.Count()
			tr(TraceEvent{Engine: "compiled", Fixpoint: fx.Rel, Op: fx.Op.String(), Binder: fx.Binder,
				Stage: stage, Tuples: nc, Delta: nc - s.Count(), Elapsed: time.Since(stageStart)})
		}
		return next, nil
	}
	defer func() { r.binding[b] = nil }()
	if mode == CycleBrent {
		return pfpBrent(step, msp, budget)
	}
	return pfpHash(step, msp, budget)
}
