// Differential testing of the Compiled engine: randomized FP/IFP queries over
// random small databases, with BottomUp as the oracle and Monotone as a
// second opinion where it is admitted. Beyond answer equality the harness
// checks the Stats invariants that make the compiled engine's counters
// trustworthy: incremental evaluation never takes more fixpoint stages than
// the tree-walking evaluator, and parallel schedules change nothing.
package eval

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/logic"
)

// diffGen generates random NNF-positive FP/IFP formulas over variables
// x, y, z and relations E (binary), P (unary), with nested LFP/GFP/IFP
// operators whose recursion atoms appear only positively (plus the
// occasional legally-negative IFP self-reference).
type diffGen struct {
	r    *rand.Rand
	next int // fresh recursion-relation counter
}

var diffVars = []logic.Var{"x", "y", "z"}

func (g *diffGen) v() logic.Var { return diffVars[g.r.Intn(len(diffVars))] }

// leaf emits an atom over the database or one of the recursion relations in
// scope.
func (g *diffGen) leaf(recs []string) logic.Formula {
	if len(recs) > 0 && g.r.Intn(3) == 0 {
		return logic.R(recs[g.r.Intn(len(recs))], g.v())
	}
	switch g.r.Intn(4) {
	case 0:
		return logic.R("P", g.v())
	case 1:
		return logic.Equal(g.v(), g.v())
	default:
		return logic.R("E", g.v(), g.v())
	}
}

func (g *diffGen) formula(depth int, recs []string) logic.Formula {
	if depth == 0 || g.r.Intn(5) == 0 {
		return g.leaf(recs)
	}
	sub := func() logic.Formula { return g.formula(depth-1, recs) }
	switch g.r.Intn(9) {
	case 0:
		return logic.And(sub(), sub())
	case 1:
		return logic.Or(sub(), sub())
	case 2:
		return logic.Exists(sub(), g.v())
	case 3:
		return logic.Forall(sub(), g.v())
	case 4:
		// Negation stays off recursion relations to keep bodies positive.
		return logic.Neg(g.leaf(nil))
	case 5, 6:
		return g.fixpoint(depth-1, recs)
	default:
		return logic.And(sub(), g.leaf(recs))
	}
}

// fixpoint wraps a generated body in a fresh LFP/GFP/IFP binder. The body is
// seeded with S(v) ∨ … so the recursion relation is actually read.
func (g *diffGen) fixpoint(depth int, recs []string) logic.Formula {
	name := "S" + string(rune('a'+g.next%26)) + string(rune('a'+(g.next/26)%26))
	g.next++
	rv := g.v()
	inner := g.formula(depth, append(append([]string(nil), recs...), name))
	var body logic.Formula
	op := g.r.Intn(3)
	if op == 2 && g.r.Intn(3) == 0 {
		// IFP may mention its own relation negatively — the non-monotone
		// path where delta evaluation must disable itself.
		body = logic.Or(logic.And(logic.R("P", rv), logic.Neg(logic.R(name, rv))), inner)
	} else {
		body = logic.Or(logic.R(name, rv), inner)
	}
	switch op {
	case 0:
		return logic.Lfp(name, []logic.Var{rv}, body, g.v())
	case 1:
		return logic.Gfp(name, []logic.Var{rv}, logic.And(logic.R(name, rv), logic.Or(inner, logic.True)), g.v())
	default:
		return logic.Ifp(name, []logic.Var{rv}, body, g.v())
	}
}

func TestDifferentialCompiledVsBottomUp(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	g := &diffGen{r: r}
	trials, kept := 400, 0
	for trial := 0; trial < trials; trial++ {
		f := g.formula(3, nil)
		if logic.Validate(f, nil) != nil {
			continue // e.g. a GFP body that came out non-positive
		}
		q, err := logic.NewQuery(logic.SortedVars(logic.FreeVars(f)), f)
		if err != nil {
			continue
		}
		kept++
		db := randomGraph(t, r, 2+r.Intn(4))

		bu, bst, err := BottomUpStats(q, db, nil)
		if err != nil {
			t.Fatalf("BottomUp(%s): %v", q, err)
		}
		co, cst, err := CompiledStats(q, db, &Options{Parallelism: 1})
		if err != nil {
			t.Fatalf("Compiled(%s): %v", q, err)
		}
		if !co.Equal(bu) {
			t.Fatalf("Compiled disagrees on %s:\ncompiled %v\nbottomup %v\n%s", q, co, bu, db)
		}
		// Delta/hoisted evaluation reproduces BottomUp's stage sequences;
		// hoisting closed inner fixpoints can only remove stages.
		if cst.FixIterations > bst.FixIterations {
			t.Fatalf("%s: compiled FixIterations %d > bottomup %d", q, cst.FixIterations, bst.FixIterations)
		}

		// A parallel schedule must be observationally identical.
		cp, pst, err := CompiledStats(q, db, &Options{Parallelism: 4})
		if err != nil {
			t.Fatalf("Compiled parallel(%s): %v", q, err)
		}
		if !cp.Equal(co) || *pst != *cst {
			t.Fatalf("%s: parallel evaluation diverged (stats %+v vs %+v)", q, pst, cst)
		}

		// Monotone, when the fragment admits it, is a third independent
		// implementation.
		mo, err := Monotone(q, db)
		if err != nil {
			if strings.Contains(err.Error(), "alternation") || strings.Contains(err.Error(), "Monotone evaluates") {
				continue
			}
			t.Fatalf("Monotone(%s): %v", q, err)
		}
		if !mo.Equal(bu) {
			t.Fatalf("Monotone disagrees on %s:\nmonotone %v\nbottomup %v\n%s", q, mo, bu, db)
		}
	}
	if kept < trials/4 {
		t.Fatalf("generator kept only %d/%d formulas; tighten it", kept, trials)
	}
}

// TestDifferentialPFP drives the three PFP-capable paths (serial compiled,
// parallel compiled, BottomUp) over randomized parametrized PFP queries,
// where each engine must either produce the identical answer or fail with
// the identical budget error.
func TestDifferentialPFP(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	bodies := []logic.Formula{
		// Convergent: grow S along E edges.
		logic.Or(logic.R("S", "x"),
			logic.Exists(logic.And(logic.R("E", "z", "x"),
				logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x")), "z")),
		// Parametrized by y.
		logic.Or(logic.R("S", "x"),
			logic.Exists(logic.And(logic.R("E", "z", "x"),
				logic.And(logic.R("E", "z", "y"),
					logic.Exists(logic.And(logic.Equal("x", "z"), logic.R("S", "x")), "x"))), "z")),
		// Possibly divergent: P ∧ ¬S flip-flops where P holds.
		logic.And(logic.R("P", "x"), logic.Neg(logic.R("S", "x"))),
	}
	for bi, body := range bodies {
		head := logic.SortedVars(logic.FreeVars(logic.Pfp("S", []logic.Var{"x"}, body, "u")))
		q := logic.MustQuery(head, logic.Pfp("S", []logic.Var{"x"}, body, "u"))
		for trial := 0; trial < 5; trial++ {
			db := randomGraph(t, r, 2+r.Intn(4))
			opts := &Options{PFPBudget: 64}
			bu, _, buErr := BottomUpStats(q, db, opts)
			for _, par := range []int{1, 4} {
				co, _, coErr := CompiledStats(q, db, &Options{PFPBudget: 64, Parallelism: par})
				if (buErr == nil) != (coErr == nil) {
					t.Fatalf("body %d par %d: error mismatch: bottomup=%v compiled=%v", bi, par, buErr, coErr)
				}
				if buErr == nil && !co.Equal(bu) {
					t.Fatalf("body %d par %d: %v vs %v on\n%s", bi, par, co, bu, db)
				}
			}
		}
	}
}
