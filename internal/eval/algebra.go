package eval

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/relation"
)

// Algebra evaluates an FO query by classical relational algebra: every
// subformula is computed as a sparse relation over exactly its free
// variables. This is the evaluation style of §1's motivating discussion —
// the arity of an intermediate result equals the free-variable count of the
// subformula, so queries of unbounded width materialize relations of
// unbounded arity (the naive EMP/MGR/SCY/SAL plan with its 10-ary cross
// product), while width-k queries stay k-bounded. The per-node arity and
// size are reported in Stats.
//
// Only the FO fragment is supported; fixpoints and second-order quantifiers
// return an error.
func Algebra(q logic.Query, db *database.Database) (*relation.Set, error) {
	ans, _, err := AlgebraStats(q, db)
	return ans, err
}

// AlgebraStats is Algebra with work statistics.
func AlgebraStats(q logic.Query, db *database.Database) (*relation.Set, *Stats, error) {
	return AlgebraContext(context.Background(), q, db)
}

// AlgebraContext is AlgebraStats honoring a context: cancellation is checked
// once per subformula (the algebra evaluator has no fixpoint iterations; its
// unit of work is one relational operation).
func AlgebraContext(ctx context.Context, q logic.Query, db *database.Database) (*relation.Set, *Stats, error) {
	if err := q.Validate(signatureOf(db)); err != nil {
		return nil, nil, err
	}
	if err := checkDomain(db); err != nil {
		return nil, nil, err
	}
	if logic.Classify(q.Body) != logic.FragFO {
		return nil, nil, fmt.Errorf("eval: Algebra evaluates FO only, got %v", logic.Classify(q.Body))
	}
	c := &algCtx{ctx: ctx, db: db, n: db.Size(), stats: &Stats{}}
	r, err := c.eval(q.Body)
	if err != nil {
		return nil, c.stats, err
	}
	// Expand to the head schema: add unconstrained head variables, then
	// project into head order.
	r, err = c.cylindrify(r, q.Head)
	if err != nil {
		return nil, nil, err
	}
	cols := make([]int, len(q.Head))
	for i, v := range q.Head {
		cols[i] = indexOf(r.vars, v)
	}
	return r.set.Project(cols), c.stats, nil
}

// algRel is a relation over a sorted list of free variables.
type algRel struct {
	vars []logic.Var // sorted, distinct
	set  *relation.Set
}

type algCtx struct {
	ctx   context.Context
	db    *database.Database
	n     int
	stats *Stats
}

func (c *algCtx) observe(r algRel) algRel {
	c.stats.addSubformulaEvals(1)
	c.stats.observe(len(r.vars), r.set.Len())
	return r
}

func indexOf(vars []logic.Var, v logic.Var) int {
	for i, w := range vars {
		if w == v {
			return i
		}
	}
	return -1
}

func sortedUnion(a, b []logic.Var) []logic.Var {
	seen := make(map[logic.Var]bool, len(a)+len(b))
	var out []logic.Var
	for _, v := range a {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range b {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (c *algCtx) eval(f logic.Formula) (algRel, error) {
	if err := checkCtx(c.ctx); err != nil {
		return algRel{}, err
	}
	switch g := f.(type) {
	case logic.Atom:
		return c.evalAtom(g)
	case logic.Eq:
		if g.L == g.R {
			set := relation.NewSet(1)
			for v := 0; v < c.n; v++ {
				set.Add(relation.Tuple{v})
			}
			return c.observe(algRel{vars: []logic.Var{g.L}, set: set}), nil
		}
		vars := sortedUnion([]logic.Var{g.L}, []logic.Var{g.R})
		set := relation.NewSet(2)
		for v := 0; v < c.n; v++ {
			set.Add(relation.Tuple{v, v})
		}
		return c.observe(algRel{vars: vars, set: set}), nil
	case logic.Truth:
		set := relation.NewSet(0)
		if g.Value {
			set.Add(relation.Tuple{})
		}
		return c.observe(algRel{set: set}), nil
	case logic.Not:
		r, err := c.eval(g.F)
		if err != nil {
			return algRel{}, err
		}
		full := c.fullRel(r.vars)
		return c.observe(algRel{vars: r.vars, set: full.Difference(r.set)}), nil
	case logic.Binary:
		switch g.Op {
		case logic.AndOp:
			l, err := c.eval(g.L)
			if err != nil {
				return algRel{}, err
			}
			r, err := c.eval(g.R)
			if err != nil {
				return algRel{}, err
			}
			return c.join(l, r)
		case logic.OrOp:
			l, err := c.eval(g.L)
			if err != nil {
				return algRel{}, err
			}
			r, err := c.eval(g.R)
			if err != nil {
				return algRel{}, err
			}
			vars := sortedUnion(l.vars, r.vars)
			le, err := c.cylindrify(l, vars)
			if err != nil {
				return algRel{}, err
			}
			re, err := c.cylindrify(r, vars)
			if err != nil {
				return algRel{}, err
			}
			return c.observe(algRel{vars: vars, set: le.set.Union(re.set)}), nil
		case logic.ImpliesOp:
			return c.eval(logic.Or(logic.Neg(g.L), g.R))
		case logic.IffOp:
			return c.eval(logic.Or(logic.And(g.L, g.R), logic.And(logic.Neg(g.L), logic.Neg(g.R))))
		default:
			return algRel{}, fmt.Errorf("eval: unknown binary op %v", g.Op)
		}
	case logic.Quant:
		if g.Kind == logic.ForallQ {
			// ∀x φ = ¬∃x ¬φ
			return c.eval(logic.Neg(logic.Exists(logic.Neg(g.F), g.V)))
		}
		r, err := c.eval(g.F)
		if err != nil {
			return algRel{}, err
		}
		i := indexOf(r.vars, g.V)
		if i < 0 {
			// Vacuous quantification over a variable not free in the body:
			// nonempty iff the body relation is nonempty... but the variable
			// ranges over the domain, so for n = 0 the result is empty.
			if c.n == 0 {
				return c.observe(algRel{vars: r.vars, set: relation.NewSet(r.set.Arity())}), nil
			}
			return r, nil
		}
		var cols []int
		var vars []logic.Var
		for j, v := range r.vars {
			if j != i {
				cols = append(cols, j)
				vars = append(vars, v)
			}
		}
		return c.observe(algRel{vars: vars, set: r.set.Project(cols)}), nil
	default:
		return algRel{}, fmt.Errorf("eval: Algebra does not support %T", f)
	}
}

func (c *algCtx) evalAtom(g logic.Atom) (algRel, error) {
	rel, err := c.db.Rel(g.Rel)
	if err != nil {
		return algRel{}, err
	}
	// Select rows consistent with repeated variables, then project onto the
	// distinct variables in sorted order.
	vars := sortedUnion(g.Args, nil)
	cols := make([]int, len(vars))
	cur := rel
	for pos, v := range g.Args {
		first := true
		for p2 := 0; p2 < pos; p2++ {
			if g.Args[p2] == v {
				first = false
				cur = cur.SelectEq(p2, pos)
				break
			}
		}
		if first {
			cols[indexOf(vars, v)] = pos
		}
	}
	return c.observe(algRel{vars: vars, set: cur.Project(cols)}), nil
}

// join computes the natural join of two algebra relations on their shared
// variables.
func (c *algCtx) join(l, r algRel) (algRel, error) {
	var on []relation.JoinOn
	for i, v := range l.vars {
		if j := indexOf(r.vars, v); j >= 0 {
			on = append(on, relation.JoinOn{Left: i, Right: j})
		}
	}
	joined := l.set.Join(r.set, on)
	c.stats.observe(joined.Arity(), joined.Len())
	vars := sortedUnion(l.vars, r.vars)
	cols := make([]int, len(vars))
	for i, v := range vars {
		if j := indexOf(l.vars, v); j >= 0 {
			cols[i] = j
		} else {
			cols[i] = len(l.vars) + indexOf(r.vars, v)
		}
	}
	return c.observe(algRel{vars: vars, set: joined.Project(cols)}), nil
}

// cylindrify extends r to the variable list target (a superset of r.vars,
// plus possibly extra variables), making the new columns range over D.
func (c *algCtx) cylindrify(r algRel, target []logic.Var) (algRel, error) {
	vars := sortedUnion(r.vars, target)
	if len(vars) == len(r.vars) {
		return r, nil
	}
	var missing []logic.Var
	for _, v := range vars {
		if indexOf(r.vars, v) < 0 {
			missing = append(missing, v)
		}
	}
	ext := r.set.Product(c.fullTuples(len(missing)))
	c.stats.observe(ext.Arity(), ext.Len())
	// Column i of ext: r.vars then missing.
	extVars := append(append([]logic.Var(nil), r.vars...), missing...)
	cols := make([]int, len(vars))
	for i, v := range vars {
		cols[i] = indexOf(extVars, v)
	}
	return c.observe(algRel{vars: vars, set: ext.Project(cols)}), nil
}

func (c *algCtx) fullRel(vars []logic.Var) *relation.Set {
	return c.fullTuples(len(vars))
}

func (c *algCtx) fullTuples(arity int) *relation.Set {
	out := relation.NewSet(arity)
	forEachAssignment(c.n, arity, func(t []int) bool {
		out.Add(t)
		return true
	})
	return out
}
