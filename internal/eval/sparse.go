package eval

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/relation"
)

// The sparse executor evaluates a compiled plan without ever materializing
// the full nᵏ-point space. Each plan node's value is an sval: a sorted
// tuple-code block (relation.Sparse) over exactly the node's support axes —
// the axes its value actually constrains — plus a polarity flag. A node that
// is cylindric in an axis simply omits it, so the cylinders that dominate
// dense evaluation are never stored; a negated subformula is stored as its
// complement block with neg set, so complements are deferred until (and
// unless) a boundary forces them.
//
// The algebra below is closed over polarity:
//
//	pos ∧ pos  = natural join            pos ∨ pos  = widened union
//	pos ∧ ¬b   = antijoin (widened a)    ¬a ∨ ¬b    = ¬(widened intersect)
//	¬a ∧ ¬b    = ¬(widened union)        ¬a ∨ b     = ¬(a′ \ b′)
//	∃x pos     = drop axis               ∃x ¬a      = ¬(all-axis a)
//	∀x pos     = all-axis                ∀x ¬a      = ¬(drop axis a)
//
// Widening (inserting a cylinder axis) and complementing multiply block
// sizes, so both are guarded by Options.SparseBudget; exceeding it returns
// ErrSparseBudget, which the auto backend treats as "the density estimate
// was wrong — fall back to dense" whenever the dense space is feasible.
type sval struct {
	// sup lists the support axes, strictly ascending.
	sup []int
	// rel holds the tuple block, one column per support axis, in sup order.
	rel *relation.Sparse
	// neg marks that rel is the complement block: the value contains exactly
	// the tuples whose sup-projection is NOT in rel.
	neg bool
}

// spRun is one sparse evaluation of a compiled plan. It mirrors cpRun's
// node-cache discipline (val/valid, per-binder bindings, dirty invalidation,
// semi-naive deltas) with svals in place of dense bitmaps. Evaluation is
// serial: sparse stage work is tuple-bound, not word-bound, so the wave
// scheduler's parallel speedup does not carry over.
type spRun struct {
	ctx    context.Context
	p      *plan.Plan
	db     *database.Database
	n      int
	den    *plan.Density
	stats  *Stats
	opts   *Options
	budget int

	val   []*sval
	valid []bool
	// sdelta[n] is node n's delta during one semi-naive pass (nil = empty).
	sdelta []*sval
	// binding[b] is binder b's current stage, columns in ExtCols order.
	binding []*relation.Sparse
	// prof, when non-nil, accumulates per-node eval counts and wall time for
	// explain mode (inclusive of on-demand child computation, as in cpRun).
	prof *PlanProfile
}

func newSpRun(ctx context.Context, p *plan.Plan, db *database.Database, opts *Options, den *plan.Density, stats *Stats) *spRun {
	return &spRun{
		ctx:     ctx,
		p:       p,
		db:      db,
		n:       db.Size(),
		den:     den,
		stats:   stats,
		opts:    opts,
		budget:  sparseBudget(opts),
		val:     make([]*sval, len(p.Nodes)),
		valid:   make([]bool, len(p.Nodes)),
		sdelta:  make([]*sval, len(p.Nodes)),
		binding: make([]*relation.Sparse, p.NumBinders),
		prof:    profileOf(opts),
	}
}

func (r *spRun) overBudget(what string, need float64) error {
	return fmt.Errorf("eval: %w: %s needs ~%.3g tuples, budget %d (raise Options.SparseBudget)",
		ErrSparseBudget, what, need, r.budget)
}

// evalNode returns node n's sparse value, computing it if the cached value
// is not current. Returned svals are owned by the cache and immutable.
func (r *spRun) evalNode(nid int) (*sval, error) {
	if r.valid[nid] {
		return r.val[nid], nil
	}
	var t0 time.Time
	if r.prof != nil {
		t0 = time.Now()
	}
	sv, err := r.computeNode(nid)
	if r.prof != nil {
		r.prof.observe(nid, time.Since(t0))
	}
	if err != nil {
		return nil, err
	}
	if got, want := maskOfAxes(sv.sup), r.den.Support[nid]; got != want || sv.neg != r.den.Neg[nid] {
		return nil, fmt.Errorf("eval: internal: node %d support %b/neg=%v, analysis says %b/neg=%v",
			nid, got, sv.neg, want, r.den.Neg[nid])
	}
	cnt := sv.rel.Count()
	r.stats.addSubformulaEvals(1)
	r.stats.addTuplesTouched(int64(cnt))
	r.stats.observe(len(sv.sup), cnt)
	r.val[nid] = sv
	r.valid[nid] = true
	return sv, nil
}

// invalidate marks node n for re-evaluation. Sparse blocks are plain heap
// values (no pool), so dropping the reference is the whole discipline.
func (r *spRun) invalidate(nid int) {
	r.valid[nid] = false
	r.val[nid] = nil
}

func (r *spRun) computeNode(nid int) (*sval, error) {
	nd := &r.p.Nodes[nid]
	switch nd.Op {
	case plan.OpAtom:
		if nd.Binder >= 0 {
			stage := r.binding[nd.Binder]
			if stage == nil {
				return nil, fmt.Errorf("eval: internal: recursion atom %s outside its fixpoint", nd.Rel)
			}
			return r.svalFromTuples(r.p.AtomAxes(nid), sparseIter(stage))
		}
		rel, err := r.db.Rel(nd.Rel)
		if err != nil {
			return nil, err
		}
		return r.svalFromTuples(nd.Args, rel.ForEach)
	case plan.OpEq:
		if nd.L == nd.R {
			return r.unitSval(true)
		}
		return r.diagSval(nd.L, nd.R)
	case plan.OpConst:
		return r.unitSval(nd.Truth)
	case plan.OpNot:
		kv, err := r.evalNode(nd.Kids[0])
		if err != nil {
			return nil, err
		}
		return &sval{sup: kv.sup, rel: kv.rel, neg: !kv.neg}, nil
	case plan.OpAnd:
		lv, err := r.evalNode(nd.Kids[0])
		if err != nil {
			return nil, err
		}
		rv, err := r.evalNode(nd.Kids[1])
		if err != nil {
			return nil, err
		}
		return r.andSv(lv, rv)
	case plan.OpOr:
		lv, err := r.evalNode(nd.Kids[0])
		if err != nil {
			return nil, err
		}
		rv, err := r.evalNode(nd.Kids[1])
		if err != nil {
			return nil, err
		}
		return r.orSv(lv, rv)
	case plan.OpExists:
		kv, err := r.evalNode(nd.Kids[0])
		if err != nil {
			return nil, err
		}
		return r.quantSv(kv, nd.Axis, false), nil
	case plan.OpForall:
		kv, err := r.evalNode(nd.Kids[0])
		if err != nil {
			return nil, err
		}
		return r.forallSv(kv, nd.Axis), nil
	case plan.OpFix:
		return r.evalFix(nid)
	default:
		return nil, fmt.Errorf("eval: unknown plan op %d", nd.Op)
	}
}

// svalFromTuples builds a positive sval from a tuple stream whose column i
// carries axis axes[i]. Repeated axes select the diagonal: tuples whose
// repeated positions disagree are dropped, and each axis is stored once.
func (r *spRun) svalFromTuples(axes []int, each func(func(relation.Tuple))) (*sval, error) {
	sup := distinctSortedAxes(axes)
	bld, err := relation.NewSparseBuilder(len(sup), r.n)
	if err != nil {
		return nil, err
	}
	posOf := make(map[int]int, len(sup))
	for i, ax := range sup {
		posOf[ax] = i
	}
	buf := make(relation.Tuple, len(sup))
	var ferr error
	each(func(t relation.Tuple) {
		if ferr != nil {
			return
		}
		for i := range buf {
			buf[i] = -1
		}
		for i, ax := range axes {
			j := posOf[ax]
			if buf[j] >= 0 && buf[j] != t[i] {
				return // diagonal selection: repeated axis disagrees
			}
			buf[j] = t[i]
		}
		if err := bld.Add(buf); err != nil {
			ferr = err
			return
		}
		if bld.Len() > r.budget {
			ferr = r.overBudget("atom materialization", float64(bld.Len()))
		}
	})
	if ferr != nil {
		return nil, ferr
	}
	return &sval{sup: sup, rel: bld.Build()}, nil
}

// unitSval is the 0-ary truth value: full (one empty tuple) or empty.
func (r *spRun) unitSval(truth bool) (*sval, error) {
	if !truth {
		s, err := relation.NewSparse(0, r.n)
		if err != nil {
			return nil, err
		}
		return &sval{sup: nil, rel: s}, nil
	}
	s, err := relation.SparseOf(0, r.n, relation.Tuple{})
	if err != nil {
		return nil, err
	}
	return &sval{sup: nil, rel: s}, nil
}

// diagSval is the equality value { (v, v) } over two distinct axes.
func (r *spRun) diagSval(a1, a2 int) (*sval, error) {
	bld, err := relation.NewSparseBuilder(2, r.n)
	if err != nil {
		return nil, err
	}
	for v := 0; v < r.n; v++ {
		bld.AddCode(uint64(v)*uint64(r.n) + uint64(v))
	}
	lo, hi := a1, a2
	if lo > hi {
		lo, hi = hi, lo
	}
	return &sval{sup: []int{lo, hi}, rel: bld.Build()}, nil
}

// widenTo inserts cylinder axes so sv's support becomes target (a sorted
// superset of sv.sup). Each inserted axis multiplies the block by n, so the
// projected size is budget-checked up front.
func (r *spRun) widenTo(sv *sval, target []int) (*sval, error) {
	if len(target) == len(sv.sup) {
		return sv, nil
	}
	miss := len(target) - len(sv.sup)
	need := float64(sv.rel.Count()) * math.Pow(float64(r.n), float64(miss))
	if need > float64(r.budget) {
		return nil, r.overBudget("widening", need)
	}
	rel := sv.rel
	j := 0
	for i, ax := range target {
		if j < len(sv.sup) && sv.sup[j] == ax {
			j++
			continue
		}
		var err error
		rel, err = rel.CrossAxis(i)
		if err != nil {
			return nil, err
		}
	}
	if j != len(sv.sup) {
		return nil, fmt.Errorf("eval: internal: widening target %v does not cover support %v", target, sv.sup)
	}
	return &sval{sup: target, rel: rel, neg: sv.neg}, nil
}

// andSv evaluates conjunction by polarity.
func (r *spRun) andSv(a, b *sval) (*sval, error) {
	switch {
	case !a.neg && !b.neg:
		return r.joinSv(a, b)
	case a.neg && b.neg:
		// ¬a ∧ ¬b = ¬(a ∨ b): the stored block is the widened union.
		sup := mergeAxes(a.sup, b.sup)
		wa, err := r.widenTo(a, sup)
		if err != nil {
			return nil, err
		}
		wb, err := r.widenTo(b, sup)
		if err != nil {
			return nil, err
		}
		return &sval{sup: sup, rel: wa.rel.Union(wb.rel), neg: true}, nil
	case a.neg:
		a, b = b, a
		fallthrough
	default:
		// pos ∧ ¬neg: widen the positive side over the union support, then
		// antijoin against the negative block (no widening of the block).
		sup := mergeAxes(a.sup, b.sup)
		wa, err := r.widenTo(a, sup)
		if err != nil {
			return nil, err
		}
		return r.filterSv(wa, b, false)
	}
}

// orSv evaluates disjunction by polarity.
func (r *spRun) orSv(a, b *sval) (*sval, error) {
	sup := mergeAxes(a.sup, b.sup)
	wa, err := r.widenTo(a, sup)
	if err != nil {
		return nil, err
	}
	wb, err := r.widenTo(b, sup)
	if err != nil {
		return nil, err
	}
	switch {
	case !a.neg && !b.neg:
		return &sval{sup: sup, rel: wa.rel.Union(wb.rel)}, nil
	case a.neg && b.neg:
		// ¬a ∨ ¬b = ¬(a ∧ b).
		return &sval{sup: sup, rel: wa.rel.Intersect(wb.rel), neg: true}, nil
	case a.neg:
		// ¬a ∨ b = ¬(a \ b).
		return &sval{sup: sup, rel: wa.rel.Difference(wb.rel), neg: true}, nil
	default:
		// a ∨ ¬b = ¬(b \ a).
		return &sval{sup: sup, rel: wb.rel.Difference(wa.rel), neg: true}, nil
	}
}

// joinSv is the natural join of two positive svals on their shared axes.
func (r *spRun) joinSv(a, b *sval) (*sval, error) {
	if axesEqual(a.sup, b.sup) {
		return &sval{sup: a.sup, rel: a.rel.Intersect(b.rel)}, nil
	}
	if containsAxes(a.sup, b.sup) {
		return r.filterSv(a, b, true)
	}
	if containsAxes(b.sup, a.sup) {
		return r.filterSv(b, a, true)
	}
	return r.hashJoin(a, b)
}

// filterSv is the (anti-)semijoin: keep the tuples of a whose projection
// onto f's support is in (keep) or not in (!keep) f's block. Requires
// f.sup ⊆ a.sup. The result reuses a's codes, so no budget check is needed.
func (r *spRun) filterSv(a, f *sval, keep bool) (*sval, error) {
	pos := make([]int, len(f.sup))
	for i, ax := range f.sup {
		p := axesIndex(a.sup, ax)
		if p < 0 {
			return nil, fmt.Errorf("eval: internal: filter axis %d outside support %v", ax, a.sup)
		}
		pos[i] = p
	}
	bld, err := relation.NewSparseBuilder(len(a.sup), r.n)
	if err != nil {
		return nil, err
	}
	abuf := make(relation.Tuple, len(a.sup))
	fbuf := make(relation.Tuple, len(f.sup))
	a.rel.ForEachCode(func(c uint64) {
		a.rel.DecodeInto(c, abuf)
		for i, p := range pos {
			fbuf[i] = abuf[p]
		}
		if f.rel.Contains(fbuf) == keep {
			bld.AddCode(c)
		}
	})
	return &sval{sup: a.sup, rel: bld.Build()}, nil
}

// hashJoin joins two positive svals with genuinely incomparable supports:
// index the smaller side by its shared-axes key, probe with the larger.
func (r *spRun) hashJoin(a, b *sval) (*sval, error) {
	sup := mergeAxes(a.sup, b.sup)
	shared := sharedAxes(a.sup, b.sup)
	small, big := a, b
	if small.rel.Count() > big.rel.Count() {
		small, big = big, small
	}
	// Key codec: base-n packing of the shared axes (⊆ the full width, so the
	// key fits uint64 whenever full-width codes do).
	kst := make([]uint64, len(shared))
	s := uint64(1)
	for i := len(shared) - 1; i >= 0; i-- {
		kst[i] = s
		s *= uint64(r.n)
	}
	keyOf := func(t relation.Tuple, pos []int) uint64 {
		var key uint64
		for i, p := range pos {
			key += uint64(t[p]) * kst[i]
		}
		return key
	}
	sPos := make([]int, len(shared))
	bPos := make([]int, len(shared))
	for i, ax := range shared {
		sPos[i] = axesIndex(small.sup, ax)
		bPos[i] = axesIndex(big.sup, ax)
	}
	idx := make(map[uint64][]uint64, small.rel.Count())
	sbuf := make(relation.Tuple, len(small.sup))
	small.rel.ForEachCode(func(c uint64) {
		small.rel.DecodeInto(c, sbuf)
		k := keyOf(sbuf, sPos)
		idx[k] = append(idx[k], c)
	})

	fromBig := make([]int, len(sup))
	fromSmall := make([]int, len(sup))
	for i, ax := range sup {
		fromBig[i] = axesIndex(big.sup, ax)
		fromSmall[i] = axesIndex(small.sup, ax)
	}
	bld, err := relation.NewSparseBuilder(len(sup), r.n)
	if err != nil {
		return nil, err
	}
	out := make(relation.Tuple, len(sup))
	bbuf := make(relation.Tuple, len(big.sup))
	var ferr error
	big.rel.ForEachCode(func(c uint64) {
		if ferr != nil {
			return
		}
		big.rel.DecodeInto(c, bbuf)
		matches := idx[keyOf(bbuf, bPos)]
		if len(matches) == 0 {
			return
		}
		for i := range out {
			if fromBig[i] >= 0 {
				out[i] = bbuf[fromBig[i]]
			}
		}
		for _, sc := range matches {
			small.rel.DecodeInto(sc, sbuf)
			for i := range out {
				if fromBig[i] < 0 {
					out[i] = sbuf[fromSmall[i]]
				}
			}
			if err := bld.Add(out); err != nil {
				ferr = err
				return
			}
			if bld.Len() > r.budget {
				ferr = r.overBudget("join", float64(bld.Len()))
				return
			}
		}
	})
	if ferr != nil {
		return nil, ferr
	}
	return &sval{sup: sup, rel: bld.Build()}, nil
}

// quantSv applies ∃ or ∀ on one axis. An axis outside the support is a
// no-op: the value is cylindric there and the domain is nonempty.
func (r *spRun) quantSv(kv *sval, axis int, forall bool) *sval {
	i := axesIndex(kv.sup, axis)
	if i < 0 {
		return kv
	}
	rest := make([]int, 0, len(kv.sup)-1)
	for _, ax := range kv.sup {
		if ax != axis {
			rest = append(rest, ax)
		}
	}
	// Under negative polarity the quantifiers swap roles on the stored
	// block: ∃x ¬φ = ¬∀x φ and ∀x ¬φ = ¬∃x φ.
	if forall != kv.neg {
		return &sval{sup: rest, rel: kv.rel.AllAxis(i), neg: kv.neg}
	}
	return &sval{sup: rest, rel: kv.rel.DropAxis(i), neg: kv.neg}
}

func (r *spRun) forallSv(kv *sval, axis int) *sval { return r.quantSv(kv, axis, true) }

// materialize turns an sval into a plain positive Sparse with the given
// distinct columns (in the given order). cols must cover the support; the
// remaining columns become cylinders. A negative sval is complemented here —
// the one place deferred complements are forced — under the budget.
func (r *spRun) materialize(sv *sval, cols []int) (*relation.Sparse, error) {
	sorted := append([]int(nil), cols...)
	sort.Ints(sorted)
	if !containsAxes(sorted, sv.sup) {
		return nil, fmt.Errorf("eval: internal: materialization columns %v do not cover support %v", cols, sv.sup)
	}
	w, err := r.widenTo(sv, sorted)
	if err != nil {
		return nil, err
	}
	rel := w.rel
	if sv.neg {
		need := float64(rel.SpaceSize()) - float64(rel.Count())
		if need > float64(r.budget) {
			return nil, r.overBudget("complement", need)
		}
		rel = rel.Complement()
	}
	if axesEqual(cols, sorted) {
		return rel, nil
	}
	proj := make([]int, len(cols))
	for i, c := range cols {
		proj[i] = axesIndex(w.sup, c)
	}
	return rel.Project(proj), nil
}

// evalFix runs the sparse stage loop for an LFP/IFP node, mirroring the
// dense evalFix stage-for-stage (same initial stage, same extraction, same
// convergence test) so the stage sequences — and answers — are identical.
func (r *spRun) evalFix(nid int) (*sval, error) {
	fx := r.p.Nodes[nid].Fix
	if fx.Op != logic.LFP && fx.Op != logic.IFP {
		return nil, fmt.Errorf("eval: sparse backend cannot evaluate %s fixpoint %s (bottom-up stages only)", fx.Op, fx.Rel)
	}
	b := fx.Binder
	for _, m := range r.p.PreEval[b] {
		if _, err := r.evalNode(m); err != nil {
			return nil, err
		}
	}
	cur, err := relation.NewSparse(fx.ExtArity, r.n)
	if err != nil {
		return nil, err
	}
	var delta *relation.Sparse // non-nil once the semi-naive regime is active
	fail := func(err error) (*sval, error) {
		r.binding[b] = nil
		return nil, err
	}
	tr := tracerOf(r.opts)
	var stage, prevCount int
	trace := func(start time.Time, tuples int) {
		stage++
		tr(TraceEvent{Engine: "compiled", Fixpoint: fx.Rel, Op: fx.Op.String(), Binder: fx.Binder,
			Stage: stage, Tuples: tuples, Delta: tuples - prevCount, Elapsed: time.Since(start)})
		prevCount = tuples
	}
	for {
		if err := checkCtx(r.ctx); err != nil {
			return fail(err)
		}
		r.stats.addFixIterations(1)
		r.stats.addNodesReused(int64(len(r.p.PreEval[b])))
		r.binding[b] = cur
		var stageStart time.Time
		if tr != nil {
			stageStart = time.Now()
		}

		if delta != nil {
			r.stats.addDeltaTuples(int64(delta.Count()))
			nd, err := r.deltaStage(b, delta)
			if err != nil {
				return fail(err)
			}
			if nd == nil || nd.IsEmpty() {
				if tr != nil {
					trace(stageStart, prevCount) // converging stage: delta 0
				}
				break
			}
			cur = cur.Union(nd)
			delta = nd
			if tr != nil {
				trace(stageStart, cur.Count())
			}
			continue
		}

		for _, d := range r.p.Dirty[b] {
			r.invalidate(d)
		}
		bodySv, err := r.evalNode(fx.Body)
		if err != nil {
			return fail(err)
		}
		next, err := r.materialize(bodySv, fx.ExtCols)
		if err != nil {
			return fail(err)
		}
		if fx.Op == logic.IFP {
			next = next.Union(cur)
		}
		if tr != nil {
			trace(stageStart, next.Count())
		}
		if next.Equal(cur) {
			break
		}
		if r.den.DeltaSparse[b] {
			delta = next.Difference(cur)
		}
		cur = next
	}
	r.binding[b] = nil
	axes := make([]int, 0, len(fx.ArgAxes)+len(fx.ParamAxes))
	axes = append(axes, fx.ArgAxes...)
	axes = append(axes, fx.ParamAxes...)
	return r.svalFromTuples(axes, sparseIter(cur))
}

// deltaStage applies one sparse semi-naive pass for binder b, the sval
// analogue of cpRun.deltaStage: push ΔS through the dirty nodes with the
// per-connective delta rules, tighten each node's delta against its current
// value, and return the body delta in stage space minus the current stage.
// Admissibility is the plan's DeltaOK plus all-positive polarity on the
// dirty region (plan.Density.DeltaSparse).
func (r *spRun) deltaStage(b int, deltaExt *relation.Sparse) (*relation.Sparse, error) {
	p := r.p
	fx := p.Nodes[p.FixOf[b]].Fix
	sched := p.Sched[b]
	defer func() {
		for _, nn := range sched {
			r.sdelta[nn] = nil
		}
	}()
	for _, nn := range sched {
		nd := &p.Nodes[nn]
		var dv *sval
		var err error
		switch nd.Op {
		case plan.OpAtom:
			dv, err = r.svalFromTuples(p.AtomAxes(nn), sparseIter(deltaExt))
			if err != nil {
				return nil, err
			}
		case plan.OpOr:
			sup := axesOfMask(r.den.Support[nn])
			for _, kid := range nd.Kids {
				dk := r.sdelta[kid]
				if dk == nil {
					continue
				}
				wk, err := r.widenTo(dk, sup)
				if err != nil {
					return nil, err
				}
				if dv == nil {
					dv = wk
				} else {
					dv = &sval{sup: sup, rel: dv.rel.Union(wk.rel)}
				}
			}
		case plan.OpAnd:
			l, rr := nd.Kids[0], nd.Kids[1]
			if dl := r.sdelta[l]; dl != nil {
				dv, err = r.joinSv(dl, r.val[rr])
				if err != nil {
					return nil, err
				}
			}
			if dr := r.sdelta[rr]; dr != nil {
				j, err := r.joinSv(r.val[l], dr)
				if err != nil {
					return nil, err
				}
				if dv == nil {
					dv = j
				} else {
					dv = &sval{sup: dv.sup, rel: dv.rel.Union(j.rel)}
				}
			}
		case plan.OpExists:
			dk := r.sdelta[nd.Kids[0]]
			if dk == nil {
				continue
			}
			dv = r.quantSv(dk, nd.Axis, false)
		case plan.OpForall:
			if r.sdelta[nd.Kids[0]] == nil {
				continue // child unchanged ⇒ ∀-value unchanged
			}
			dv = r.quantSv(r.val[nd.Kids[0]], nd.Axis, true)
		default:
			return nil, fmt.Errorf("eval: op %d in a sparse delta pass (plan bug)", nd.Op)
		}
		if dv == nil {
			continue
		}
		added := dv.rel.Difference(r.val[nn].rel)
		if added.IsEmpty() {
			continue
		}
		r.val[nn] = &sval{sup: r.val[nn].sup, rel: r.val[nn].rel.Union(added)}
		r.stats.addSubformulaEvals(1)
		r.stats.addTuplesTouched(int64(added.Count()))
		r.stats.observe(len(r.val[nn].sup), r.val[nn].rel.Count())
		r.sdelta[nn] = &sval{sup: r.val[nn].sup, rel: added}
	}
	dB := r.sdelta[fx.Body]
	if dB == nil {
		return nil, nil
	}
	next, err := r.materialize(dB, fx.ExtCols)
	if err != nil {
		return nil, err
	}
	return next.Difference(r.binding[b]), nil
}

// sparseIter adapts a Sparse to the tuple-stream shape svalFromTuples takes.
func sparseIter(s *relation.Sparse) func(func(relation.Tuple)) {
	return s.ForEach
}

// Axis-list helpers. Supports are small (≤ the query width), so linear scans
// beat any clever structure.

func distinctSortedAxes(axes []int) []int {
	out := append([]int(nil), axes...)
	sort.Ints(out)
	j := 0
	for i, ax := range out {
		if i == 0 || ax != out[j-1] {
			out[j] = ax
			j++
		}
	}
	return out[:j]
}

func maskOfAxes(axes []int) uint64 {
	var m uint64
	for _, ax := range axes {
		m |= 1 << uint(ax)
	}
	return m
}

func axesOfMask(m uint64) []int {
	var out []int
	for ax := 0; m != 0; ax++ {
		if m&1 != 0 {
			out = append(out, ax)
		}
		m >>= 1
	}
	return out
}

func mergeAxes(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

func sharedAxes(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func axesIndex(axes []int, axis int) int {
	for i, ax := range axes {
		if ax == axis {
			return i
		}
	}
	return -1
}

func axesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsAxes(outer, inner []int) bool {
	j := 0
	for _, ax := range outer {
		if j < len(inner) && inner[j] == ax {
			j++
		}
	}
	return j == len(inner)
}
