// Streaming differential: for random FP/IFP formulas over random databases,
// draining an Enumerator must reproduce the materialized answer
// byte-identically — same tuples, same (lexicographic) order — on every
// backend route, including the Yannakakis streaming fast path, and
// mid-stream cancellation must stop the stream with a reported error.
package eval

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/database"
	"repro/internal/logic"
	"repro/internal/plan"
	"repro/internal/relation"
)

func drainEnum(t *testing.T, en Enumerator) []relation.Tuple {
	t.Helper()
	var out []relation.Tuple
	for tp, ok := en.Next(); ok; tp, ok = en.Next() {
		out = append(out, tp.Clone())
	}
	return out
}

func sameTuples(a, b []relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

// TestEnumStreamedMatchesMaterialized is the core guarantee of the
// enumeration API: for 200 random formulas × {dense, sparse, auto}, the
// streamed concatenation equals EvalPlanContext's answer exactly, a
// Skip(k) enumerator yields exactly the suffix, and the two paths agree on
// which evaluations fail.
func TestEnumStreamedMatchesMaterialized(t *testing.T) {
	r := rand.New(rand.NewSource(97))
	g := &diffGen{r: r}
	backends := []Backend{BackendDense, BackendSparse, BackendAuto}
	kept := 0
	for trial := 0; trial < 2000 && kept < 200; trial++ {
		f := g.formula(3, nil)
		if logic.Validate(f, nil) != nil {
			continue
		}
		q, err := logic.NewQuery(logic.SortedVars(logic.FreeVars(f)), f)
		if err != nil {
			continue
		}
		kept++
		db := randomGraph(t, r, 2+r.Intn(4))
		p, err := plan.Compile(q)
		if err != nil {
			t.Fatalf("compile %s: %v", q, err)
		}
		for _, b := range backends {
			opts := &Options{Backend: b}
			want, _, wantErr := EvalPlanContext(context.Background(), p, db, opts)
			en, _, enErr := EvalPlanEnum(context.Background(), p, db, opts)
			if (wantErr == nil) != (enErr == nil) {
				t.Fatalf("%s backend %d: materialized err=%v, enum err=%v", q, b, wantErr, enErr)
			}
			if wantErr != nil {
				continue
			}
			wantTuples := want.Tuples()
			if cnt, ok := en.Count(); ok && cnt != len(wantTuples) {
				t.Fatalf("%s backend %d: Count=%d, want %d", q, b, cnt, len(wantTuples))
			}
			got := drainEnum(t, en)
			if en.Err() != nil {
				t.Fatalf("%s backend %d: enum error: %v", q, b, en.Err())
			}
			en.Close()
			if !sameTuples(got, wantTuples) {
				t.Fatalf("%s backend %d: streamed %v != materialized %v", q, b, got, wantTuples)
			}

			// OFFSET pushdown: Skip(k) then drain = the materialized suffix.
			if len(wantTuples) > 0 {
				k := r.Intn(len(wantTuples) + 1)
				en2, _, err := EvalPlanEnum(context.Background(), p, db, opts)
				if err != nil {
					t.Fatalf("%s backend %d: re-enum: %v", q, b, err)
				}
				if sk := en2.Skip(k); sk != k {
					t.Fatalf("%s backend %d: Skip(%d)=%d", q, b, k, sk)
				}
				rest := drainEnum(t, en2)
				en2.Close()
				if !sameTuples(rest, wantTuples[k:]) {
					t.Fatalf("%s backend %d: after Skip(%d) got %v, want %v", q, b, k, rest, wantTuples[k:])
				}
			}
		}
	}
	if kept < 200 {
		t.Fatalf("generator kept only %d/200 formulas; tighten it", kept)
	}
}

// completeGraph returns K_n as a binary relation E plus unary P over the
// full domain — a database whose 2-hop answer has n² tuples.
func completeGraph(t *testing.T, n int) *database.Database {
	t.Helper()
	b := database.NewBuilder()
	b.Relation("E", 2)
	b.Relation("P", 1)
	for i := 0; i < n; i++ {
		b.Domain(i)
		b.Add("P", i)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Add("E", i, j)
		}
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func twoHop(t *testing.T) logic.Query {
	t.Helper()
	f := logic.Exists(logic.And(logic.R("E", "x", "z"), logic.R("E", "z", "y")), "z")
	return logic.MustQuery([]logic.Var{"x", "y"}, f)
}

// TestEnumCancellationMidStream cancels the context after the first tuple on
// each backend route and checks the stream stops with a reported error
// rather than running to exhaustion (the 2-hop answer has 3600 tuples, past
// the enumerators' context-check strides).
func TestEnumCancellationMidStream(t *testing.T) {
	db := completeGraph(t, 60)
	p, err := plan.Compile(twoHop(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Backend{BackendDense, BackendSparse} {
		ctx, cancel := context.WithCancel(context.Background())
		en, _, err := EvalPlanEnum(ctx, p, db, &Options{Backend: b})
		if err != nil {
			t.Fatalf("backend %d: %v", b, err)
		}
		if _, ok := en.Next(); !ok {
			t.Fatalf("backend %d: no first tuple", b)
		}
		cancel()
		yielded := 1
		for _, ok := en.Next(); ok; _, ok = en.Next() {
			yielded++
			if yielded > 3600 {
				break
			}
		}
		if yielded > 3600 {
			t.Fatalf("backend %d: stream ran to exhaustion after cancel", b)
		}
		if en.Err() == nil {
			t.Fatalf("backend %d: Err is nil after cancellation", b)
		}
		en.Close()
	}
}

// TestEnumAcyclicFastPath pins that the sparse enumerator actually takes the
// streaming Yannakakis route for an acyclic ∃∧-CQ (Count unknown, fast-path
// counter set) and still matches the dense materialized answer.
func TestEnumAcyclicFastPath(t *testing.T) {
	db := completeGraph(t, 12)
	p, err := plan.Compile(twoHop(t))
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := EvalPlanContext(context.Background(), p, db, &Options{Backend: BackendDense})
	if err != nil {
		t.Fatal(err)
	}
	en, st, err := EvalPlanEnum(context.Background(), p, db, &Options{Backend: BackendSparse})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := en.Count(); ok {
		t.Fatal("streaming acyclic route reported a Count; expected unknown")
	}
	got := drainEnum(t, en)
	en.Close()
	if st.AcyclicFastPath == 0 {
		t.Fatal("AcyclicFastPath not taken for 2-hop CQ")
	}
	if st.TuplesStreamed != int64(len(got)) {
		t.Fatalf("TuplesStreamed=%d, want %d", st.TuplesStreamed, len(got))
	}
	if !sameTuples(got, want.Tuples()) {
		t.Fatalf("acyclic stream diverged from dense answer")
	}
}
