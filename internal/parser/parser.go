package parser

import (
	"fmt"

	"repro/internal/logic"
)

type parser struct {
	toks []token
	pos  int
}

// ParseFormula parses a formula in the package's concrete syntax.
func ParseFormula(input string) (logic.Formula, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return f, nil
}

// ParseQuery parses "(x, y). formula".
func ParseQuery(input string) (logic.Query, error) {
	toks, err := lex(input)
	if err != nil {
		return logic.Query{}, err
	}
	p := &parser{toks: toks}
	if err := p.expect(tokLParen); err != nil {
		return logic.Query{}, err
	}
	var head []logic.Var
	if p.peek().kind == tokName {
		head, err = p.varlist()
		if err != nil {
			return logic.Query{}, err
		}
	}
	if err := p.expect(tokRParen); err != nil {
		return logic.Query{}, err
	}
	if err := p.expect(tokDot); err != nil {
		return logic.Query{}, err
	}
	body, err := p.formula()
	if err != nil {
		return logic.Query{}, err
	}
	if err := p.expect(tokEOF); err != nil {
		return logic.Query{}, err
	}
	return logic.NewQuery(head, body)
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind) error {
	t := p.peek()
	if t.kind != kind {
		return fmt.Errorf("parser: expected %v, found %v %q at offset %d", kind, t.kind, t.text, t.pos)
	}
	p.next()
	return nil
}

func (p *parser) accept(kind tokenKind) bool {
	if p.peek().kind == kind {
		p.next()
		return true
	}
	return false
}

func (p *parser) formula() (logic.Formula, error) { return p.iff() }

func (p *parser) iff() (logic.Formula, error) {
	l, err := p.impl()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIffOp) {
		r, err := p.impl()
		if err != nil {
			return nil, err
		}
		l = logic.Binary{Op: logic.IffOp, L: l, R: r}
	}
	return l, nil
}

func (p *parser) impl() (logic.Formula, error) {
	l, err := p.or()
	if err != nil {
		return nil, err
	}
	if p.accept(tokArrow) {
		r, err := p.impl() // right associative
		if err != nil {
			return nil, err
		}
		return logic.Binary{Op: logic.ImpliesOp, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) or() (logic.Formula, error) {
	l, err := p.and()
	if err != nil {
		return nil, err
	}
	for p.accept(tokPipe) {
		r, err := p.and()
		if err != nil {
			return nil, err
		}
		l = logic.Binary{Op: logic.OrOp, L: l, R: r}
	}
	return l, nil
}

func (p *parser) and() (logic.Formula, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.accept(tokAmp) {
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = logic.Binary{Op: logic.AndOp, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unary() (logic.Formula, error) {
	switch t := p.peek(); {
	case t.kind == tokBang:
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return logic.Not{F: f}, nil
	case t.kind == tokLBracket:
		return p.fixpoint()
	case t.kind == tokName && (t.text == "exists" || t.text == "forall"):
		return p.quantifier()
	case t.kind == tokName && t.text == "exists2":
		return p.soQuantifier()
	default:
		return p.primary()
	}
}

func (p *parser) quantifier() (logic.Formula, error) {
	kw := p.next().text
	vars, err := p.varlist()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokDot); err != nil {
		return nil, err
	}
	body, err := p.formula()
	if err != nil {
		return nil, err
	}
	if kw == "exists" {
		return logic.Exists(body, vars...), nil
	}
	return logic.Forall(body, vars...), nil
}

func (p *parser) soQuantifier() (logic.Formula, error) {
	p.next() // exists2
	name := p.peek()
	if err := p.expect(tokName); err != nil {
		return nil, err
	}
	if err := p.expect(tokSlash); err != nil {
		return nil, err
	}
	num := p.peek()
	if err := p.expect(tokNumber); err != nil {
		return nil, err
	}
	if err := p.expect(tokDot); err != nil {
		return nil, err
	}
	body, err := p.formula()
	if err != nil {
		return nil, err
	}
	return logic.SOQuant{Rel: name.text, Arity: atoi(num.text), F: body}, nil
}

func (p *parser) fixpoint() (logic.Formula, error) {
	if err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	kw := p.peek()
	if kw.kind != tokName || (kw.text != "lfp" && kw.text != "gfp" && kw.text != "pfp" && kw.text != "ifp") {
		return nil, fmt.Errorf("parser: expected lfp, gfp, pfp or ifp at offset %d", kw.pos)
	}
	p.next()
	var op logic.FixOp
	switch kw.text {
	case "lfp":
		op = logic.LFP
	case "gfp":
		op = logic.GFP
	case "pfp":
		op = logic.PFP
	case "ifp":
		op = logic.IFP
	}
	name := p.peek()
	if err := p.expect(tokName); err != nil {
		return nil, err
	}
	vars, err := p.parenVarlist()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokDot); err != nil {
		return nil, err
	}
	body, err := p.formula()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	args, err := p.parenVarlist()
	if err != nil {
		return nil, err
	}
	return logic.Fix{Op: op, Rel: name.text, Vars: vars, Body: body, Args: args}, nil
}

func (p *parser) primary() (logic.Formula, error) {
	switch t := p.peek(); t.kind {
	case tokLParen:
		p.next()
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return f, nil
	case tokName:
		switch t.text {
		case "true":
			p.next()
			return logic.True, nil
		case "false":
			p.next()
			return logic.False, nil
		}
		p.next()
		switch p.peek().kind {
		case tokLParen:
			args, err := p.parenVarlist()
			if err != nil {
				return nil, err
			}
			return logic.Atom{Rel: t.text, Args: args}, nil
		case tokEquals:
			p.next()
			rhs := p.peek()
			if err := p.expect(tokName); err != nil {
				return nil, err
			}
			return logic.Eq{L: logic.Var(t.text), R: logic.Var(rhs.text)}, nil
		default:
			return nil, fmt.Errorf("parser: expected '(' or '=' after name %q at offset %d", t.text, t.pos)
		}
	default:
		return nil, fmt.Errorf("parser: unexpected %v %q at offset %d", t.kind, t.text, t.pos)
	}
}

// parenVarlist parses '(' varlist? ')'.
func (p *parser) parenVarlist() ([]logic.Var, error) {
	if err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var vars []logic.Var
	if p.peek().kind == tokName {
		var err error
		vars, err = p.varlist()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return vars, nil
}

func (p *parser) varlist() ([]logic.Var, error) {
	var vars []logic.Var
	for {
		t := p.peek()
		if err := p.expect(tokName); err != nil {
			return nil, err
		}
		vars = append(vars, logic.Var(t.text))
		if !p.accept(tokComma) {
			return vars, nil
		}
	}
}
