package parser

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

func mustParse(t *testing.T, s string) logic.Formula {
	t.Helper()
	f, err := ParseFormula(s)
	if err != nil {
		t.Fatalf("ParseFormula(%q): %v", s, err)
	}
	return f
}

func TestParseBasics(t *testing.T) {
	cases := []struct {
		in, out string
	}{
		{"E(x, y)", "E(x, y)"},
		{"P()", "P()"},
		{"x = y", "x = y"},
		{"true", "true"},
		{"false", "false"},
		{"!P(x)", "!(P(x))"},
		{"!!P(x)", "!(!(P(x)))"},
		{"P(x) & Q(x)", "(P(x) & Q(x))"},
		{"P(x) | Q(x) & R(x)", "(P(x) | (Q(x) & R(x)))"},
		{"P(x) -> Q(x) -> S(x)", "(P(x) -> (Q(x) -> S(x)))"},
		{"P(x) <-> Q(x)", "(P(x) <-> Q(x))"},
		{"exists x. P(x)", "(exists x. P(x))"},
		{"exists x, y. E(x, y)", "(exists x. (exists y. E(x, y)))"},
		{"forall x. P(x) & Q(x)", "(forall x. (P(x) & Q(x)))"},
		{"(forall x. P(x)) & Q(y)", "((forall x. P(x)) & Q(y))"},
		{"[lfp S(x). P(x) | S(x)](u)", "[lfp S(x). (P(x) | S(x))](u)"},
		{"[gfp S(x, y). E(x, y)](u, v)", "[gfp S(x, y). E(x, y)](u, v)"},
		{"[pfp W(). !W()]()", "[pfp W(). !(W())]()"},
		{"[ifp S(x). !S(x)](u)", "[ifp S(x). !(S(x))](u)"},
		{"exists2 S/2. forall x. S(x, x)", "(exists2 S/2. (forall x. S(x, x)))"},
		{"!x = y", "!(x = y)"},
	}
	for _, c := range cases {
		f := mustParse(t, c.in)
		if f.String() != c.out {
			t.Errorf("ParseFormula(%q).String() = %q, want %q", c.in, f.String(), c.out)
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	// <-> binds loosest, then ->, |, &, !.
	f := mustParse(t, "!P(x) & Q(x) | S(x) -> T(x) <-> U(x)")
	want := "((((!(P(x)) & Q(x)) | S(x)) -> T(x)) <-> U(x))"
	if f.String() != want {
		t.Fatalf("got %q, want %q", f.String(), want)
	}
}

func TestParseQuery(t *testing.T) {
	q, err := ParseQuery("(x, y). exists z. E(x, z) & E(z, y)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Arity() != 2 || q.Width() != 3 {
		t.Fatalf("arity=%d width=%d", q.Arity(), q.Width())
	}
	if q.String() != "(x, y). (exists z. (E(x, z) & E(z, y)))" {
		t.Fatalf("String = %q", q.String())
	}
	// Boolean query.
	b, err := ParseQuery("(). exists x. P(x)")
	if err != nil {
		t.Fatal(err)
	}
	if b.Arity() != 0 {
		t.Fatalf("Boolean query arity = %d", b.Arity())
	}
}

func TestParseQueryRejectsUnboundVars(t *testing.T) {
	if _, err := ParseQuery("(x). E(x, y)"); err == nil {
		t.Fatal("free body variable not in head accepted")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"P(x",
		"P x",
		"x =",
		"P(x) &",
		"exists . P(x)",
		"exists x P(x)",
		"[lfp S(x). S(x)](u",
		"[foo S(x). S(x)](u)",
		"[lfp S(x). S(x)]",
		"exists2 S. P(x)",
		"exists2 S/two. P(x)",
		"P(x) @ Q(x)",
		"P(x) - Q(x)",
		"P(x) < Q(x)",
		"P(x)) ",
		"(P(x)",
		"x",
	}
	for _, s := range bad {
		if _, err := ParseFormula(s); err == nil {
			t.Errorf("ParseFormula(%q) succeeded", s)
		}
	}
}

func TestParsePaperExample(t *testing.T) {
	// The paper's §2.2 FP sentence: "no infinite E-path from u on which P
	// fails infinitely often":
	// [gfp S(x). [lfp T(z). forall y (E(z,y) -> (S(y) | (P(y) & T(y))))](x)](u)
	in := "[gfp S(x). [lfp T(z). forall y. E(z, y) -> (S(y) | P(y) & T(y))](x)](u)"
	f := mustParse(t, in)
	if err := logic.Validate(f, nil); err != nil {
		t.Fatalf("paper example invalid: %v", err)
	}
	if logic.Classify(f) != logic.FragFP {
		t.Fatalf("Classify = %v", logic.Classify(f))
	}
	if logic.AlternationDepth(f) != 2 {
		t.Fatalf("AlternationDepth = %d, want 2", logic.AlternationDepth(f))
	}
	if logic.Width(f) != 4 {
		t.Fatalf("Width = %d", logic.Width(f))
	}
}

// randFormula generates a random formula over the given variables and
// relation signature, for the round-trip property test.
func randFormula(r *rand.Rand, depth int) logic.Formula {
	vars := []logic.Var{"x", "y", "z"}
	v := func() logic.Var { return vars[r.Intn(len(vars))] }
	if depth == 0 {
		switch r.Intn(4) {
		case 0:
			return logic.R("E", v(), v())
		case 1:
			return logic.R("P", v())
		case 2:
			return logic.Equal(v(), v())
		default:
			return logic.Truth{Value: r.Intn(2) == 0}
		}
	}
	sub := func() logic.Formula { return randFormula(r, depth-1) }
	switch r.Intn(8) {
	case 0:
		return logic.Not{F: sub()}
	case 1, 2:
		return logic.Binary{Op: logic.BinOp(r.Intn(4)), L: sub(), R: sub()}
	case 3:
		return logic.Quant{Kind: logic.QuantKind(r.Intn(2)), V: v(), F: sub()}
	case 4:
		// Positive body for lfp/gfp: S used positively or not at all.
		body := logic.Or(logic.R("P", "x"), logic.R("S", "x"))
		op := logic.LFP
		if r.Intn(2) == 0 {
			op = logic.GFP
		}
		return logic.Fix{Op: op, Rel: "S", Vars: []logic.Var{"x"}, Body: body, Args: []logic.Var{v()}}
	case 5:
		return logic.Fix{Op: logic.PFP, Rel: "W", Vars: []logic.Var{"x"}, Body: sub(), Args: []logic.Var{v()}}
	case 6:
		return logic.SOQuant{Rel: "T", Arity: r.Intn(3), F: sub()}
	default:
		return sub()
	}
}

func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		f := randFormula(r, 4)
		s := f.String()
		g, err := ParseFormula(s)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", s, err)
		}
		if g.String() != s {
			t.Fatalf("round trip changed %q to %q", s, g.String())
		}
	}
}
