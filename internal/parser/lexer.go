// Package parser implements the concrete syntax of the query languages:
// a lexer, a recursive-descent parser for formulas and queries, and (via the
// String methods in package logic) a printer whose output re-parses exactly.
//
// Grammar (fully bracketed forms are what the printer emits; the parser is
// more liberal):
//
//	query   := '(' varlist? ')' '.' formula
//	formula := iff
//	iff     := impl ( '<->' impl )*
//	impl    := or ( '->' impl )?                    (right associative)
//	or      := and ( '|' and )*
//	and     := unary ( '&' unary )*
//	unary   := '!' unary | quant | so | fix | primary
//	quant   := ('exists'|'forall') varlist '.' formula
//	so      := 'exists2' NAME '/' NUMBER '.' formula
//	fix     := '[' ('lfp'|'gfp'|'pfp') NAME '(' varlist? ')' '.' formula ']'
//	           '(' varlist? ')'
//	primary := 'true' | 'false' | '(' formula ')'
//	         | NAME '(' varlist? ')'                (atom)
//	         | NAME '=' NAME                        (equality)
//	varlist := NAME ( ',' NAME )*
//
// Quantifier and fixpoint bodies extend as far to the right as possible.
package parser

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokName
	tokNumber
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokDot
	tokSlash
	tokBang
	tokAmp
	tokPipe
	tokArrow
	tokIffOp
	tokEquals
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokName:
		return "name"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokSlash:
		return "'/'"
	case tokBang:
		return "'!'"
	case tokAmp:
		return "'&'"
	case tokPipe:
		return "'|'"
	case tokArrow:
		return "'->'"
	case tokIffOp:
		return "'<->'"
	case tokEquals:
		return "'='"
	}
	return "?"
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex tokenizes the input. It returns a typed error on an unexpected rune.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	emit := func(k tokenKind, text string, pos int) {
		toks = append(toks, token{kind: k, text: text, pos: pos})
	}
	for i < len(input) {
		c := rune(input[i])
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			emit(tokLParen, "(", i)
			i++
		case c == ')':
			emit(tokRParen, ")", i)
			i++
		case c == '[':
			emit(tokLBracket, "[", i)
			i++
		case c == ']':
			emit(tokRBracket, "]", i)
			i++
		case c == ',':
			emit(tokComma, ",", i)
			i++
		case c == '.':
			emit(tokDot, ".", i)
			i++
		case c == '/':
			emit(tokSlash, "/", i)
			i++
		case c == '!':
			emit(tokBang, "!", i)
			i++
		case c == '&':
			emit(tokAmp, "&", i)
			i++
		case c == '|':
			emit(tokPipe, "|", i)
			i++
		case c == '=':
			emit(tokEquals, "=", i)
			i++
		case c == '-':
			if strings.HasPrefix(input[i:], "->") {
				emit(tokArrow, "->", i)
				i += 2
			} else {
				return nil, fmt.Errorf("parser: unexpected '-' at offset %d", i)
			}
		case c == '<':
			if strings.HasPrefix(input[i:], "<->") {
				emit(tokIffOp, "<->", i)
				i += 3
			} else {
				return nil, fmt.Errorf("parser: unexpected '<' at offset %d", i)
			}
		case unicode.IsDigit(c):
			j := i
			for j < len(input) && unicode.IsDigit(rune(input[j])) {
				j++
			}
			emit(tokNumber, input[i:j], i)
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_' || input[j] == '\'') {
				j++
			}
			emit(tokName, input[i:j], i)
			i = j
		default:
			return nil, fmt.Errorf("parser: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

func atoi(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}
