package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Family is one parsed metric family: its metadata and every sample line
// that belongs to it.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// ParseText reads Prometheus text exposition format (version 0.0.4) and
// validates the structural rules this repository's writer guarantees:
//
//   - every family is announced by a # HELP line followed by a # TYPE line
//     before any of its samples;
//   - family names are unique;
//   - every sample name matches the current family — exactly, or with a
//     _bucket/_sum/_count suffix for histograms;
//   - sample lines parse (name, optional {label="value"} pairs, float
//     value) and no (name, labels) pair repeats;
//   - histogram _bucket series are cumulative (non-decreasing in le order,
//     ending at +Inf) and agree with _count.
//
// It is the verifier behind the /metrics tests and the reader behind
// bvqbench -scrape.
func ParseText(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var fams []Family
	seenFam := make(map[string]bool)
	seenSample := make(map[string]bool)
	var cur *Family
	pendingHelp := "" // HELP seen, TYPE not yet
	var pendingHelpText string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("line %d: HELP without a metric name", lineNo)
			}
			if seenFam[name] {
				return nil, fmt.Errorf("line %d: duplicate metric family %q", lineNo, name)
			}
			pendingHelp, pendingHelpText = name, help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			if pendingHelp != name {
				return nil, fmt.Errorf("line %d: TYPE %s not preceded by its HELP line", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			seenFam[name] = true
			fams = append(fams, Family{Name: name, Help: pendingHelpText, Type: typ})
			cur = &fams[len(fams)-1]
			pendingHelp = ""
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if cur == nil {
			return nil, fmt.Errorf("line %d: sample %s before any # TYPE line", lineNo, s.Name)
		}
		if !sampleBelongs(s.Name, cur.Name, cur.Type) {
			return nil, fmt.Errorf("line %d: sample %s under family %s", lineNo, s.Name, cur.Name)
		}
		id := s.Name + "|" + labelKey(s.Labels)
		if seenSample[id] {
			return nil, fmt.Errorf("line %d: duplicate sample %s{%s}", lineNo, s.Name, labelKey(s.Labels))
		}
		seenSample[id] = true
		cur.Samples = append(cur.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pendingHelp != "" {
		return nil, fmt.Errorf("HELP %s has no TYPE line", pendingHelp)
	}
	for i := range fams {
		if fams[i].Type == "histogram" {
			if err := checkHistogram(&fams[i]); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

func sampleBelongs(sample, fam, typ string) bool {
	if sample == fam {
		return true
	}
	if typ != "histogram" {
		return false
	}
	rest, ok := strings.CutPrefix(sample, fam)
	if !ok {
		return false
	}
	return rest == "_bucket" || rest == "_sum" || rest == "_count"
}

// checkHistogram verifies cumulativity per label set: bucket values are
// non-decreasing in le order, a +Inf bucket exists, and it equals _count.
func checkHistogram(f *Family) error {
	type series struct {
		last    float64
		haveInf bool
		inf     float64
		count   float64
	}
	groups := make(map[string]*series)
	get := func(labels map[string]string) *series {
		base := make(map[string]string, len(labels))
		for k, v := range labels {
			if k != "le" {
				base[k] = v
			}
		}
		key := labelKey(base)
		g, ok := groups[key]
		if !ok {
			g = &series{}
			groups[key] = g
		}
		return g
	}
	for _, s := range f.Samples {
		g := get(s.Labels)
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le := s.Labels["le"]
			if s.Value < g.last {
				return fmt.Errorf("%s: bucket le=%s value %g below previous %g (not cumulative)", f.Name, le, s.Value, g.last)
			}
			g.last = s.Value
			if le == "+Inf" {
				g.haveInf = true
				g.inf = s.Value
			}
		case strings.HasSuffix(s.Name, "_count"):
			g.count = s.Value
		}
	}
	for key, g := range groups {
		if !g.haveInf {
			return fmt.Errorf("%s{%s}: no le=\"+Inf\" bucket", f.Name, key)
		}
		if g.inf != g.count {
			return fmt.Errorf("%s{%s}: +Inf bucket %g != count %g", f.Name, key, g.inf, g.count)
		}
	}
	return nil
}

// parseSample parses one sample line: name[{labels}] value [timestamp].
func parseSample(line string) (Sample, error) {
	var s Sample
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("%s: %w", s.Name, err)
		}
		s.Labels = labels
		rest = rest[end:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return s, fmt.Errorf("%s: want value (and optional timestamp), got %q", s.Name, rest)
	}
	v, err := parseValue(fields[0])
	if err != nil {
		return s, fmt.Errorf("%s: bad value %q: %w", s.Name, fields[0], err)
	}
	s.Value = v
	return s, nil
}

func parseValue(tok string) (float64, error) {
	switch tok {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(tok, 64)
}

// parseLabels parses a {k="v",...} block starting at s[0] == '{' and
// returns the index just past the closing brace.
func parseLabels(s string) (int, map[string]string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, labels, nil
		}
		j := i
		for j < len(s) && isNameChar(s[j], j == i) {
			j++
		}
		if j == i || j >= len(s) || s[j] != '=' || j+1 >= len(s) || s[j+1] != '"' {
			return 0, nil, fmt.Errorf("malformed label at %q", s[i:])
		}
		name := s[i:j]
		k := j + 2 // past ="
		var val strings.Builder
		for k < len(s) && s[k] != '"' {
			if s[k] == '\\' && k+1 < len(s) {
				k++
				switch s[k] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[k])
				default:
					val.WriteByte('\\')
					val.WriteByte(s[k])
				}
			} else {
				val.WriteByte(s[k])
			}
			k++
		}
		if k >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label value for %s", name)
		}
		if _, dup := labels[name]; dup {
			return 0, nil, fmt.Errorf("duplicate label %s", name)
		}
		labels[name] = val.String()
		k++ // past closing quote
		if k < len(s) && s[k] == ',' {
			k++
		}
		i = k
	}
}

func isNameChar(c byte, first bool) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return !first
	}
	return false
}

func labelKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	// insertion sort: label sets are tiny
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}
