package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "ops")
	g := r.NewGauge("test_depth", "depth")
	c.Inc()
	c.Add(4)
	g.Set(7)
	g.Add(-2)
	if c.Value() != 5 || g.Value() != 5 {
		t.Fatalf("counter=%d gauge=%d, want 5 and 5", c.Value(), g.Value())
	}
	fams := mustParse(t, r)
	if v := sampleValue(t, fams, "test_ops_total", nil); v != 5 {
		t.Fatalf("exposed counter = %g", v)
	}
	if v := sampleValue(t, fams, "test_depth", nil); v != 5 {
		t.Fatalf("exposed gauge = %g", v)
	}
}

func TestFuncMetricsReadAtScrapeTime(t *testing.T) {
	r := NewRegistry()
	n := int64(0)
	r.NewCounterFunc("test_live_total", "live", func() int64 { return n })
	n = 42
	if v := sampleValue(t, mustParse(t, r), "test_live_total", nil); v != 42 {
		t.Fatalf("func counter = %g, want 42", v)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	fams := mustParse(t, r)
	f := familyByName(t, fams, "test_latency_seconds")
	wantBuckets := map[string]float64{"0.01": 1, "0.1": 3, "1": 4, "+Inf": 5}
	for _, s := range f.Samples {
		if strings.HasSuffix(s.Name, "_bucket") {
			if want := wantBuckets[s.Labels["le"]]; s.Value != want {
				t.Errorf("bucket le=%s = %g, want %g", s.Labels["le"], s.Value, want)
			}
		}
		if strings.HasSuffix(s.Name, "_count") && s.Value != 5 {
			t.Errorf("count = %g, want 5", s.Value)
		}
		if strings.HasSuffix(s.Name, "_sum") && math.Abs(s.Value-5.605) > 1e-9 {
			t.Errorf("sum = %g, want 5.605", s.Value)
		}
	}
}

func TestVecChildrenAndLabels(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("test_requests_total", "requests", "code")
	cv.With("200").Add(3)
	cv.With("429").Inc()
	hv := r.NewHistogramVec("test_eval_seconds", "eval", "engine", []float64{1})
	hv.With("bottomup").Observe(0.5)
	hv.With(`we"ird\nv`).Observe(2)
	fams := mustParse(t, r)
	if v := sampleValue(t, fams, "test_requests_total", map[string]string{"code": "200"}); v != 3 {
		t.Fatalf("code=200 = %g", v)
	}
	if v := sampleValue(t, fams, "test_requests_total", map[string]string{"code": "429"}); v != 1 {
		t.Fatalf("code=429 = %g", v)
	}
	// The escaped label value must survive a write/parse round trip.
	if v := sampleValue(t, fams, "test_eval_seconds_count", map[string]string{"engine": `we"ird\nv`}); v != 1 {
		t.Fatalf("escaped label lost: %g", v)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_dup_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate family name did not panic")
		}
	}()
	r.NewGauge("test_dup_total", "y")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.NewCounter("9starts_with_digit", "x")
}

// TestExpositionFormat is the format validator: the handler's output must
// carry the scrape content type and parse under the strict rules of
// ParseText (HELP/TYPE before samples, unique families, parseable sample
// lines, cumulative histograms).
func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("app_ops_total", "operations with a \\ backslash and\nnewline in help")
	g := r.NewGauge("app_queue_depth", "queue depth")
	g.Set(3)
	h := r.NewHistogramVec("app_latency_seconds", "latency", "engine", nil)
	h.With("bottomup").Observe(0.002)
	h.With("compiled").Observe(0.2)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	fams, err := ParseText(rec.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	if len(fams) != 3 {
		t.Fatalf("families = %d, want 3", len(fams))
	}
	// Families come out sorted by name.
	for i := 1; i < len(fams); i++ {
		if fams[i-1].Name >= fams[i].Name {
			t.Fatalf("families not sorted: %s >= %s", fams[i-1].Name, fams[i].Name)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":    "foo 1\n",
		"TYPE without HELP":     "# TYPE foo counter\nfoo 1\n",
		"duplicate family":      "# HELP foo x\n# TYPE foo counter\nfoo 1\n# HELP foo x\n# TYPE foo counter\n",
		"foreign sample":        "# HELP foo x\n# TYPE foo counter\nbar 1\n",
		"bad value":             "# HELP foo x\n# TYPE foo counter\nfoo abc\n",
		"duplicate sample":      "# HELP foo x\n# TYPE foo counter\nfoo 1\nfoo 2\n",
		"unknown type":          "# HELP foo x\n# TYPE foo wibble\nfoo 1\n",
		"non-cumulative hist":   "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"inf bucket vs count":   "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 4\n",
		"missing +Inf bucket":   "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_sum 1\nh_count 3\n",
		"unterminated labels":   "# HELP foo x\n# TYPE foo counter\nfoo{a=\"b\n",
		"trailing HELP no TYPE": "# HELP foo x\n",
	}
	for name, text := range cases {
		if _, err := ParseText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

// TestConcurrentInstruments hammers every instrument kind from several
// goroutines; meaningful under -race (make check runs this package so).
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_c_total", "c")
	g := r.NewGauge("test_g", "g")
	h := r.NewHistogram("test_h_seconds", "h", nil)
	cv := r.NewCounterVec("test_cv_total", "cv", "k")
	hv := r.NewHistogramVec("test_hv_seconds", "hv", "k", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / 100)
				cv.With("a").Inc()
				hv.With("b").Observe(0.01)
				if i%100 == 0 {
					var sb strings.Builder
					if _, err := r.WriteTo(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 4000 || h.Count() != 4000 || cv.With("a").Value() != 4000 {
		t.Fatalf("lost updates: c=%d h=%d cv=%d", c.Value(), h.Count(), cv.With("a").Value())
	}
	if _, err := ParseText(strings.NewReader(render(t, r))); err != nil {
		t.Fatalf("post-hammer exposition invalid: %v", err)
	}
}

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func mustParse(t *testing.T, r *Registry) []Family {
	t.Helper()
	fams, err := ParseText(strings.NewReader(render(t, r)))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return fams
}

func familyByName(t *testing.T, fams []Family, name string) Family {
	t.Helper()
	for _, f := range fams {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("family %s not found", name)
	return Family{}
}

func sampleValue(t *testing.T, fams []Family, sample string, labels map[string]string) float64 {
	t.Helper()
	for _, f := range fams {
		for _, s := range f.Samples {
			if s.Name != sample {
				continue
			}
			match := true
			for k, v := range labels {
				if s.Labels[k] != v {
					match = false
					break
				}
			}
			if match {
				return s.Value
			}
		}
	}
	t.Fatalf("sample %s%v not found", sample, labels)
	return 0
}
