// Package metrics is a small, stdlib-only instrumentation registry with
// Prometheus text-format exposition (version 0.0.4). It exists so bvqd can
// expose per-engine latency, cache effectiveness, coalescing, admission
// control and panic-recovery counters on GET /metrics without pulling in a
// client library.
//
// The model is a cut-down prometheus/client_golang:
//
//   - Counter / Gauge — atomic int64 instruments;
//   - Histogram — fixed upper-bound buckets with cumulative exposition
//     (_bucket{le=...}, _sum, _count);
//   - CounterVec / HistogramVec — one child instrument per label value,
//     created on first use;
//   - CounterFunc / GaugeFunc — read-at-scrape-time collectors, so values
//     that already live in atomic counters elsewhere (cache hit counts,
//     in-flight gauges, queue depth) are exposed without double bookkeeping.
//
// All instruments are safe for concurrent use. Registration happens at
// construction time and panics on a duplicate family name — wiring bugs
// should fail at startup, not at scrape time. ParseText (parse.go) is the
// matching reader, used by the exposition-format tests and the bvqbench
// -scrape mode.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency buckets in seconds, spanning the
// sub-millisecond dense-kernel hits through multi-second PFP runs.
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Registry holds metric families and renders them in Prometheus text format.
// Construct with NewRegistry; the zero value is not usable.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

type family struct {
	name, help, typ string
	collect         func() []Sample
}

// Sample is one exposition line: a sample name (the family name, or the
// family name with a _bucket/_sum/_count suffix for histograms), its label
// pairs, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ string, collect func() []Sample) {
	if name == "" || !validMetricName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric family %q", name))
	}
	f := &family{name: name, help: help, typ: typ, collect: collect}
	r.families[name] = f
	r.order = append(r.order, f)
}

func validMetricName(name string) bool {
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d, which must be non-negative.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// NewCounter creates and registers a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func() []Sample {
		return []Sample{{Name: name, Value: float64(c.Value())}}
	})
	return c
}

// NewCounterFunc registers a counter whose value is read at scrape time.
// fn must be monotonically non-decreasing and safe for concurrent use.
func (r *Registry) NewCounterFunc(name, help string, fn func() int64) {
	r.register(name, help, "counter", func() []Sample {
		return []Sample{{Name: name, Value: float64(fn())}}
	})
}

// Gauge is an integer metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// NewGauge creates and registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func() []Sample {
		return []Sample{{Name: name, Value: float64(g.Value())}}
	})
	return g
}

// NewGaugeFunc registers a gauge whose value is read at scrape time.
// fn must be safe for concurrent use.
func (r *Registry) NewGaugeFunc(name, help string, fn func() int64) {
	r.register(name, help, "gauge", func() []Sample {
		return []Sample{{Name: name, Value: float64(fn())}}
	})
}

// Histogram is a fixed-bucket distribution. Buckets are upper bounds in
// ascending order; an implicit +Inf bucket is always present. Observation is
// two atomic adds and a CAS loop for the float sum.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound, plus +Inf at the end
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram buckets not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// samples renders the histogram in cumulative Prometheus form under name
// with the given base labels.
func (h *Histogram) samples(name string, base map[string]string) []Sample {
	out := make([]Sample, 0, len(h.bounds)+3)
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		out = append(out, Sample{Name: name + "_bucket", Labels: withLabel(base, "le", formatFloat(b)), Value: float64(cum)})
	}
	cum += h.counts[len(h.bounds)].Load()
	out = append(out,
		Sample{Name: name + "_bucket", Labels: withLabel(base, "le", "+Inf"), Value: float64(cum)},
		Sample{Name: name + "_sum", Labels: base, Value: math.Float64frombits(h.sum.Load())},
		Sample{Name: name + "_count", Labels: base, Value: float64(h.count.Load())},
	)
	return out
}

// NewHistogram creates and registers a histogram with the given upper
// bounds (nil means DefBuckets).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	h := newHistogram(buckets)
	r.register(name, help, "histogram", func() []Sample {
		return h.samples(name, nil)
	})
	return h
}

// CounterVec is a family of counters keyed by the value of one label.
type CounterVec struct {
	label string
	mu    sync.Mutex
	kids  map[string]*Counter
}

// With returns the child counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[value]
	if !ok {
		c = &Counter{}
		v.kids[value] = c
	}
	return c
}

func (v *CounterVec) sortedKeys() []string {
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// NewCounterVec creates and registers a label-partitioned counter family.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{label: label, kids: make(map[string]*Counter)}
	r.register(name, help, "counter", func() []Sample {
		v.mu.Lock()
		defer v.mu.Unlock()
		out := make([]Sample, 0, len(v.kids))
		for _, k := range v.sortedKeys() {
			out = append(out, Sample{Name: name, Labels: map[string]string{v.label: k}, Value: float64(v.kids[k].Value())})
		}
		return out
	})
	return v
}

// HistogramVec is a family of histograms keyed by the value of one label.
type HistogramVec struct {
	label  string
	bounds []float64
	mu     sync.Mutex
	kids   map[string]*Histogram
}

// With returns the child histogram for the given label value, creating it
// on first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.kids[value]
	if !ok {
		h = newHistogram(v.bounds)
		v.kids[value] = h
	}
	return h
}

// NewHistogramVec creates and registers a label-partitioned histogram
// family (nil buckets means DefBuckets).
func (r *Registry) NewHistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	v := &HistogramVec{label: label, bounds: append([]float64(nil), buckets...), kids: make(map[string]*Histogram)}
	r.register(name, help, "histogram", func() []Sample {
		v.mu.Lock()
		keys := make([]string, 0, len(v.kids))
		for k := range v.kids {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		kids := make([]*Histogram, len(keys))
		for i, k := range keys {
			kids[i] = v.kids[k]
		}
		v.mu.Unlock()
		var out []Sample
		for i, k := range keys {
			out = append(out, kids[i].samples(name, map[string]string{v.label: k})...)
		}
		return out
	})
	return v
}

// Families returns the registered family names in sorted order — the
// ground truth the metrics-documentation lint test compares OPERATIONS.md
// against.
func (r *Registry) Families() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// WriteTo renders every registered family in Prometheus text format,
// families sorted by name, each preceded by its # HELP and # TYPE lines.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	fams := make([]*family, len(r.order))
	copy(fams, r.order)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.collect() {
			b.WriteString(s.Name)
			writeLabels(&b, s.Labels)
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.Value))
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// ServeHTTP exposes the registry as a Prometheus scrape target.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = r.WriteTo(w) // the scraper is gone if this fails; nothing to do
}

func writeLabels(b *strings.Builder, labels map[string]string) {
	if len(labels) == 0 {
		return
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func withLabel(base map[string]string, k, v string) map[string]string {
	out := make(map[string]string, len(base)+1)
	for bk, bv := range base {
		out[bk] = bv
	}
	out[k] = v
	return out
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
