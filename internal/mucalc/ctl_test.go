package mucalc

import (
	"math/rand"
	"testing"
)

func randomCTL(r *rand.Rand, depth int) CTL {
	if depth == 0 || r.Intn(5) == 0 {
		switch r.Intn(3) {
		case 0:
			return CTLProp{Name: "p"}
		case 1:
			return CTLProp{Name: "q"}
		default:
			return CTLLit{Value: r.Intn(2) == 0}
		}
	}
	sub := func() CTL { return randomCTL(r, depth-1) }
	switch r.Intn(11) {
	case 0:
		return CTLNot{F: sub()}
	case 1:
		return CTLAnd{L: sub(), R: sub()}
	case 2:
		return CTLOr{L: sub(), R: sub()}
	case 3:
		return EX{F: sub()}
	case 4:
		return AX{F: sub()}
	case 5:
		return EF_{F: sub()}
	case 6:
		return AF_{F: sub()}
	case 7:
		return EG_{F: sub()}
	case 8:
		return AG_{F: sub()}
	case 9:
		return EU{L: sub(), R: sub()}
	default:
		return AU{L: sub(), R: sub()}
	}
}

func TestCTLTranslationAgreesWithDirectSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	for trial := 0; trial < 60; trial++ {
		k := randomKripke(r, 2+r.Intn(4))
		f := randomCTL(r, 3)
		direct, err := CheckCTL(k, f)
		if err != nil {
			t.Fatalf("CheckCTL(%s): %v", f, err)
		}
		mu, err := CTLToMu(f)
		if err != nil {
			t.Fatalf("CTLToMu(%s): %v", f, err)
		}
		if err := Validate(mu); err != nil {
			t.Fatalf("translation of %s invalid: %v", f, err)
		}
		viaMu, err := Check(k, mu)
		if err != nil {
			t.Fatalf("Check(%s): %v", mu, err)
		}
		if !direct.Equal(viaMu) {
			t.Fatalf("CTL %s: direct %v != µ-translation %v (%s)", f, direct, viaMu, mu)
		}
	}
}

func TestCTLTranslationIsAlternationFree(t *testing.T) {
	// CTL translations may nest fixpoints syntactically, but the nested
	// fixpoints are closed — the Emerson–Lei (dependent) alternation depth
	// stays at 1.
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		f := randomCTL(r, 4)
		mu, err := CTLToMu(f)
		if err != nil {
			t.Fatal(err)
		}
		if d := DependentAlternationDepth(mu); d > 1 {
			t.Fatalf("CTL translation has dependent alternation depth %d: %s → %s", d, f, mu)
		}
	}
}

func TestDependentVsSyntacticAlternation(t *testing.T) {
	// νX.(µY.(p ∨ ◇Y) ∧ □X): the inner µ is closed — dependent depth 1,
	// syntactic depth 2.
	closed := Nu{Var: "X", F: Conj{
		L: Mu{Var: "Y", F: Disj{L: Prop{Name: "p"}, R: Diamond{F: VarRef{"Y"}}}},
		R: Box{F: VarRef{"X"}}}}
	if d := DependentAlternationDepth(closed); d != 1 {
		t.Fatalf("closed nesting: dependent depth %d, want 1", d)
	}
	if d := AlternationDepth(closed); d != 2 {
		t.Fatalf("closed nesting: syntactic depth %d, want 2", d)
	}
	// InfinitelyOften really alternates: both metrics say 2.
	real2 := InfinitelyOften(Prop{Name: "p"})
	if d := DependentAlternationDepth(real2); d != 2 {
		t.Fatalf("νµ with dependency: dependent depth %d, want 2", d)
	}
}

func TestCTLThroughFP2(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 15; trial++ {
		k := randomKripke(r, 2+r.Intn(3))
		f := randomCTL(r, 2)
		direct, err := CheckCTL(k, f)
		if err != nil {
			t.Fatal(err)
		}
		mu, err := CTLToMu(f)
		if err != nil {
			t.Fatal(err)
		}
		viaFP2, err := CheckViaFP2(k, mu)
		if err != nil {
			t.Fatal(err)
		}
		if !direct.Equal(viaFP2) {
			t.Fatalf("CTL %s via FP²: %v != %v", f, viaFP2, direct)
		}
	}
}

func TestCTLNegationDualities(t *testing.T) {
	k := mutex(t)
	pairs := []struct{ a, b CTL }{
		{CTLNot{F: EF_{F: CTLProp{Name: "c0"}}}, AG_{F: CTLNot{F: CTLProp{Name: "c0"}}}},
		{CTLNot{F: AG_{F: CTLProp{Name: "c0"}}}, EF_{F: CTLNot{F: CTLProp{Name: "c0"}}}},
		{CTLNot{F: EX{F: CTLProp{Name: "t0"}}}, AX{F: CTLNot{F: CTLProp{Name: "t0"}}}},
		{CTLNot{F: EG_{F: CTLProp{Name: "t0"}}}, AF_{F: CTLNot{F: CTLProp{Name: "t0"}}}},
	}
	for _, p := range pairs {
		a, err := CheckCTL(k, p.a)
		if err != nil {
			t.Fatal(err)
		}
		b, err := CheckCTL(k, p.b)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Fatalf("duality broken: %s = %v, %s = %v", p.a, a, p.b, b)
		}
	}
}

func TestCTLDeadlockConventions(t *testing.T) {
	k := NewKripke(1) // single deadlocked state
	cases := []struct {
		f    CTL
		want bool
	}{
		{AX{F: CTLLit{false}}, true},
		{EX{F: CTLLit{true}}, false},
		{AF_{F: CTLProp{Name: "p"}}, false}, // no successor, p not labeled
		{AG_{F: CTLLit{true}}, true},
		{AU{L: CTLLit{true}, R: CTLLit{true}}, true}, // ψ already holds
	}
	for _, c := range cases {
		direct, err := CheckCTL(k, c.f)
		if err != nil {
			t.Fatal(err)
		}
		if direct.Test(0) != c.want {
			t.Errorf("%s at deadlock: %v, want %v", c.f, direct.Test(0), c.want)
		}
		mu, err := CTLToMu(c.f)
		if err != nil {
			t.Fatal(err)
		}
		viaMu, err := Check(k, mu)
		if err != nil {
			t.Fatal(err)
		}
		if viaMu.Test(0) != c.want {
			t.Errorf("%s translation at deadlock: %v, want %v", c.f, viaMu.Test(0), c.want)
		}
	}
}

func TestParseMuRoundTrip(t *testing.T) {
	cases := []string{
		"p",
		"!p",
		"tt",
		"ff",
		"(p & q)",
		"(p | (q & !p))",
		"<>p",
		"[]<>p",
		"mu X. (p | <>X)",
		"nu X. (p & []X)",
		"nu X. mu Y. <>((p & X) | Y)",
	}
	for _, s := range cases {
		f, err := ParseMu(s)
		if err != nil {
			t.Fatalf("ParseMu(%q): %v", s, err)
		}
		g, err := ParseMu(f.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", f.String(), err)
		}
		if g.String() != f.String() {
			t.Fatalf("round trip changed %q to %q", f.String(), g.String())
		}
	}
}

func TestParseMuGeneratedRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		f := randomMuFormula(r, 4, nil)
		s := f.String()
		g, err := ParseMu(s)
		if err != nil {
			t.Fatalf("ParseMu(%q): %v", s, err)
		}
		if g.String() != s {
			t.Fatalf("round trip changed %q to %q", s, g.String())
		}
	}
}

func TestParseMuErrors(t *testing.T) {
	bad := []string{
		"",
		"X",      // looks like a prop — fine actually; use genuinely bad ones below
		"mu . p", // missing variable
		"mu X p", // missing dot
		"(p",
		"p)",
		"p &",
		"!X extra", // trailing
		"mu X. !X", // variable under negation
		"mu X. mu X. X",
		"<>",
		"@",
	}
	for _, s := range bad {
		if s == "X" {
			continue // bare identifier is a proposition, legal
		}
		if _, err := ParseMu(s); err == nil {
			t.Errorf("ParseMu(%q) succeeded", s)
		}
	}
}

func TestParseMuNeverPanicsOnGarbage(t *testing.T) {
	tokens := []string{"mu", "nu", "tt", "ff", "p", "q", "X", "<>", "[]", "&", "|", "!", "(", ")", ".", "@", "123abc"}
	r := rand.New(rand.NewSource(2025))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(10)
		var sb []byte
		for i := 0; i < n; i++ {
			sb = append(sb, []byte(tokens[r.Intn(len(tokens))])...)
			sb = append(sb, ' ')
		}
		_, _ = ParseMu(string(sb)) // must not panic
	}
}

func TestParseMuSemantics(t *testing.T) {
	k := mutex(t)
	f, err := ParseMu("mu X. (c0 | <>X)") // EF c0
	if err != nil {
		t.Fatal(err)
	}
	got, err := Check(k, f)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Check(k, EF(Prop{Name: "c0"}))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("parsed EF differs: %v vs %v", got, want)
	}
}
