package mucalc

import (
	"math/rand"
	"testing"

	"repro/internal/logic"
)

// mutex builds a toy two-process mutual-exclusion protocol:
// states (p, q) ∈ {idle, try, crit}², with the scheduler interleaving moves
// and a critical section guard. Propositions: c0, c1 (in critical section),
// t0, t1 (trying).
func mutex(t testing.TB) *Kripke {
	t.Helper()
	const (
		idle = 0
		try  = 1
		crit = 2
	)
	id := func(p, q int) int { return p*3 + q }
	k := NewKripke(9)
	step := func(s int) []int {
		switch s {
		case idle:
			return []int{try}
		case try:
			return []int{crit}
		default:
			return []int{idle}
		}
	}
	for p := 0; p < 3; p++ {
		for q := 0; q < 3; q++ {
			// Process 0 moves, unless it would join process 1 in crit.
			for _, p2 := range step(p) {
				if !(p2 == crit && q == crit) {
					if err := k.AddEdge(id(p, q), id(p2, q)); err != nil {
						t.Fatal(err)
					}
				}
			}
			for _, q2 := range step(q) {
				if !(q2 == crit && p == crit) {
					if err := k.AddEdge(id(p, q), id(p, q2)); err != nil {
						t.Fatal(err)
					}
				}
			}
			if p == crit {
				k.Label(id(p, q), "c0")
			}
			if q == crit {
				k.Label(id(p, q), "c1")
			}
			if p == try {
				k.Label(id(p, q), "t0")
			}
			if q == try {
				k.Label(id(p, q), "t1")
			}
		}
	}
	return k
}

func TestMutexProperties(t *testing.T) {
	k := mutex(t)
	// Safety: AG ¬(c0 ∧ c1) holds at every state except the (unreachable)
	// (crit, crit) state itself, and in particular at the initial state.
	safety := AG(Disj{L: NegProp{"c0"}, R: NegProp{"c1"}})
	set, err := Check(k, safety)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Test(0) {
		t.Fatal("mutual exclusion violated from the initial state")
	}
	if set.Count() != 8 || set.Test(8) {
		t.Fatalf("exactly the (crit,crit) state should be unsafe: %v", set)
	}
	// Possibility: EF c0 from the initial state.
	reach, err := Check(k, EF(Prop{"c0"}))
	if err != nil {
		t.Fatal(err)
	}
	if !reach.Test(0) {
		t.Fatal("critical section unreachable from (idle, idle)")
	}
	// Some path visits c0 infinitely often (the round-robin run).
	io, err := Check(k, InfinitelyOften(Prop{"c0"}))
	if err != nil {
		t.Fatal(err)
	}
	if !io.Test(0) {
		t.Fatal("no run with c0 infinitely often")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(Mu{Var: "X", F: Disj{L: Prop{"p"}, R: VarRef{"X"}}}); err != nil {
		t.Fatal(err)
	}
	if err := Validate(VarRef{"X"}); err == nil {
		t.Fatal("unbound variable accepted")
	}
	if err := Validate(Mu{Var: "X", F: Mu{Var: "X", F: VarRef{"X"}}}); err == nil {
		t.Fatal("double binding accepted")
	}
	if err := Validate(Mu{Var: "", F: Lit{true}}); err == nil {
		t.Fatal("empty variable accepted")
	}
}

func TestAlternationDepth(t *testing.T) {
	p := Prop{"p"}
	cases := []struct {
		f    Formula
		want int
	}{
		{p, 0},
		{EF(p), 1},
		{AG(p), 1},
		{Conj{L: EF(p), R: AG(p)}, 1},
		{InfinitelyOften(p), 2},
		{Nu{Var: "A", F: Mu{Var: "B", F: Nu{Var: "C",
			F: Conj{L: VarRef{"A"}, R: Disj{L: VarRef{"B"}, R: VarRef{"C"}}}}}}, 3},
	}
	for _, c := range cases {
		if got := AlternationDepth(c.f); got != c.want {
			t.Errorf("AlternationDepth(%s) = %d, want %d", c.f, got, c.want)
		}
	}
}

func TestToFP2WidthAndFragment(t *testing.T) {
	for _, f := range []Formula{
		EF(Prop{"p"}),
		AG(Prop{"p"}),
		InfinitelyOften(Prop{"p"}),
		Nu{Var: "X", F: Box{F: Diamond{F: VarRef{"X"}}}},
	} {
		g, err := ToFP2(f)
		if err != nil {
			t.Fatal(err)
		}
		if w := logic.Width(g); w > 2 {
			t.Errorf("translation of %s has width %d > 2", f, w)
		}
		if fr := logic.Classify(g); fr != logic.FragFP {
			t.Errorf("translation of %s is %v, want FP", f, fr)
		}
		if err := logic.Validate(g, nil); err != nil {
			t.Errorf("translation of %s invalid: %v", f, err)
		}
	}
}

func randomKripke(r *rand.Rand, n int) *Kripke {
	k := NewKripke(n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if r.Intn(3) == 0 {
				k.AddEdge(s, t)
			}
		}
		if r.Intn(2) == 0 {
			k.Label(s, "p")
		}
		if r.Intn(3) == 0 {
			k.Label(s, "q")
		}
	}
	return k
}

func randomMuFormula(r *rand.Rand, depth int, bound []string) Formula {
	if depth == 0 || r.Intn(5) == 0 {
		switch r.Intn(4) {
		case 0:
			return Prop{"p"}
		case 1:
			return NegProp{"q"}
		case 2:
			if len(bound) > 0 {
				return VarRef{bound[r.Intn(len(bound))]}
			}
			return Lit{true}
		default:
			return Lit{r.Intn(2) == 0}
		}
	}
	switch r.Intn(6) {
	case 0:
		return Conj{L: randomMuFormula(r, depth-1, bound), R: randomMuFormula(r, depth-1, bound)}
	case 1:
		return Disj{L: randomMuFormula(r, depth-1, bound), R: randomMuFormula(r, depth-1, bound)}
	case 2:
		return Diamond{F: randomMuFormula(r, depth-1, bound)}
	case 3:
		return Box{F: randomMuFormula(r, depth-1, bound)}
	case 4:
		v := "X" + string(rune('a'+len(bound)))
		return Mu{Var: v, F: randomMuFormula(r, depth-1, append(bound, v))}
	default:
		v := "X" + string(rune('a'+len(bound)))
		return Nu{Var: v, F: randomMuFormula(r, depth-1, append(bound, v))}
	}
}

func TestCrossValidateDirectVsFP2(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		k := randomKripke(r, 2+r.Intn(4))
		f := randomMuFormula(r, 3, nil)
		direct, err := Check(k, f)
		if err != nil {
			t.Fatalf("Check(%s): %v", f, err)
		}
		viaFP2, err := CheckViaFP2(k, f)
		if err != nil {
			t.Fatalf("CheckViaFP2(%s): %v", f, err)
		}
		if !direct.Equal(viaFP2) {
			t.Fatalf("direct %v != FP² %v on %s", direct, viaFP2, f)
		}
	}
}

func TestCertifiedModelChecking(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 15; trial++ {
		k := randomKripke(r, 2+r.Intn(3))
		f := InfinitelyOften(Prop{"p"})
		direct, err := Check(k, f)
		if err != nil {
			t.Fatal(err)
		}
		states, cert, err := CheckCertified(k, f)
		if err != nil {
			t.Fatalf("CheckCertified: %v", err)
		}
		if !states.Equal(direct) {
			t.Fatalf("certified %v != direct %v", states, direct)
		}
		if len(cert.Chains) == 0 {
			t.Fatal("certificate has no gfp chains for a ν formula")
		}
	}
}

func TestKripkeValidation(t *testing.T) {
	k := NewKripke(2)
	if err := k.AddEdge(0, 5); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := k.Label(9, "p"); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if err := k.Label(0, ""); err == nil {
		t.Fatal("empty proposition accepted")
	}
}

func TestToDatabase(t *testing.T) {
	k := NewKripke(3)
	k.AddEdge(0, 1)
	k.AddEdge(1, 2)
	k.Label(0, "p")
	db, err := k.ToDatabase()
	if err != nil {
		t.Fatal(err)
	}
	if db.Size() != 3 {
		t.Fatalf("domain size %d", db.Size())
	}
	e, err := db.Rel("E")
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 2 {
		t.Fatalf("E has %d tuples", e.Len())
	}
	p, err := db.Rel("p")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Fatalf("p has %d tuples", p.Len())
	}
}

func TestDeadlockConventions(t *testing.T) {
	// One state, no transitions: □φ is vacuously true, ◇φ false.
	k := NewKripke(1)
	box, err := Check(k, Box{F: Lit{false}})
	if err != nil {
		t.Fatal(err)
	}
	if !box.Test(0) {
		t.Fatal("□false should hold at a deadlocked state")
	}
	dia, err := Check(k, Diamond{F: Lit{true}})
	if err != nil {
		t.Fatal(err)
	}
	if dia.Test(0) {
		t.Fatal("◇true should fail at a deadlocked state")
	}
	// The FP² route agrees on deadlock conventions.
	viaFP2, err := CheckViaFP2(k, Box{F: Lit{false}})
	if err != nil {
		t.Fatal(err)
	}
	if !viaFP2.Equal(box) {
		t.Fatal("FP² deadlock convention differs")
	}
}
