package mucalc

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseMu parses the µ-calculus concrete syntax emitted by the String
// methods:
//
//	formula := disj
//	disj    := conj ('|' conj)*
//	conj    := unary ('&' unary)*
//	unary   := '!' IDENT | '<>' unary | '[]' unary
//	         | ('mu'|'nu') IDENT '.' formula
//	         | 'tt' | 'ff' | '(' formula ')' | IDENT
//
// An identifier is a fixpoint variable if an enclosing µ/ν binds it, and a
// proposition otherwise. Fixpoint bodies extend as far right as possible.
func ParseMu(input string) (Formula, error) {
	toks, err := muLex(input)
	if err != nil {
		return nil, err
	}
	p := &muParser{toks: toks, bound: map[string]bool{}}
	f, err := p.formula()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("mucalc: trailing input at %q", p.toks[p.pos])
	}
	if err := Validate(f); err != nil {
		return nil, err
	}
	return f, nil
}

func muLex(input string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(' || c == ')' || c == '&' || c == '|' || c == '!' || c == '.':
			toks = append(toks, string(c))
			i++
		case strings.HasPrefix(input[i:], "<>"):
			toks = append(toks, "<>")
			i += 2
		case strings.HasPrefix(input[i:], "[]"):
			toks = append(toks, "[]")
			i += 2
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(input) && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			toks = append(toks, input[i:j])
			i = j
		default:
			return nil, fmt.Errorf("mucalc: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

type muParser struct {
	toks  []string
	pos   int
	bound map[string]bool
}

func (p *muParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *muParser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *muParser) expect(tok string) error {
	if p.peek() != tok {
		return fmt.Errorf("mucalc: expected %q, found %q", tok, p.peek())
	}
	p.pos++
	return nil
}

func (p *muParser) formula() (Formula, error) {
	l, err := p.conj()
	if err != nil {
		return nil, err
	}
	for p.peek() == "|" {
		p.next()
		r, err := p.conj()
		if err != nil {
			return nil, err
		}
		l = Disj{L: l, R: r}
	}
	return l, nil
}

func (p *muParser) conj() (Formula, error) {
	l, err := p.unary()
	if err != nil {
		return nil, err
	}
	for p.peek() == "&" {
		p.next()
		r, err := p.unary()
		if err != nil {
			return nil, err
		}
		l = Conj{L: l, R: r}
	}
	return l, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if !(unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r))) {
			return false
		}
	}
	switch s {
	case "mu", "nu", "tt", "ff":
		return false
	}
	return true
}

func (p *muParser) unary() (Formula, error) {
	switch t := p.peek(); t {
	case "!":
		p.next()
		name := p.next()
		if !isIdent(name) {
			return nil, fmt.Errorf("mucalc: '!' must be followed by a proposition, found %q", name)
		}
		if p.bound[name] {
			return nil, fmt.Errorf("mucalc: fixpoint variable %s under negation", name)
		}
		return NegProp{Name: name}, nil
	case "<>":
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Diamond{F: f}, nil
	case "[]":
		p.next()
		f, err := p.unary()
		if err != nil {
			return nil, err
		}
		return Box{F: f}, nil
	case "mu", "nu":
		p.next()
		name := p.next()
		if !isIdent(name) {
			return nil, fmt.Errorf("mucalc: %s must bind an identifier, found %q", t, name)
		}
		if err := p.expect("."); err != nil {
			return nil, err
		}
		if p.bound[name] {
			return nil, fmt.Errorf("mucalc: variable %s bound twice", name)
		}
		p.bound[name] = true
		body, err := p.formula()
		delete(p.bound, name)
		if err != nil {
			return nil, err
		}
		if t == "mu" {
			return Mu{Var: name, F: body}, nil
		}
		return Nu{Var: name, F: body}, nil
	case "tt":
		p.next()
		return Lit{Value: true}, nil
	case "ff":
		p.next()
		return Lit{Value: false}, nil
	case "(":
		p.next()
		f, err := p.formula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	default:
		if !isIdent(t) {
			return nil, fmt.Errorf("mucalc: unexpected token %q", t)
		}
		p.next()
		if p.bound[t] {
			return VarRef{Name: t}, nil
		}
		return Prop{Name: t}, nil
	}
}
