package mucalc

import (
	"fmt"

	"repro/internal/bitset"
)

// CTL is the branching-time logic of Clarke–Emerson–Sistla [CES86], which
// §1 of the paper cites as the origin of "verification = query
// evaluation". Every CTL operator is a one-fixpoint µ-calculus formula, so
// CTL sits inside the alternation-free fragment of Lµ — and hence inside
// FP² with the fast Monotone evaluation path.
//
// Conventions at deadlocked states follow the modal µ-calculus: EX φ is
// false, AX φ vacuously true; AF/AU require a successor at every step
// (they carry a ◇tt conjunct), so a deadlocked state satisfies A[φ U ψ]
// only via ψ.
type CTL interface {
	isCTL()
	String() string
}

// CTLProp is an atomic proposition.
type CTLProp struct{ Name string }

// CTLLit is a constant.
type CTLLit struct{ Value bool }

// CTLNot is negation (allowed anywhere; pushed to propositions during
// translation).
type CTLNot struct{ F CTL }

// CTLAnd and CTLOr are the Boolean connectives.
type CTLAnd struct{ L, R CTL }

// CTLOr is disjunction.
type CTLOr struct{ L, R CTL }

// EX: some successor satisfies F. AX: all successors do.
type EX struct{ F CTL }

// AX: all successors satisfy F.
type AX struct{ F CTL }

// EF: some path eventually reaches F.
type EF_ struct{ F CTL }

// AF: every path eventually reaches F.
type AF_ struct{ F CTL }

// EG: some path satisfies F forever.
type EG_ struct{ F CTL }

// AG: every reachable state satisfies F.
type AG_ struct{ F CTL }

// EU: some path satisfies L until R holds.
type EU struct{ L, R CTL }

// AU: every path satisfies L until R holds.
type AU struct{ L, R CTL }

func (CTLProp) isCTL() {}
func (CTLLit) isCTL()  {}
func (CTLNot) isCTL()  {}
func (CTLAnd) isCTL()  {}
func (CTLOr) isCTL()   {}
func (EX) isCTL()      {}
func (AX) isCTL()      {}
func (EF_) isCTL()     {}
func (AF_) isCTL()     {}
func (EG_) isCTL()     {}
func (AG_) isCTL()     {}
func (EU) isCTL()      {}
func (AU) isCTL()      {}

func (f CTLProp) String() string { return f.Name }
func (f CTLLit) String() string {
	if f.Value {
		return "tt"
	}
	return "ff"
}
func (f CTLNot) String() string { return "!" + f.F.String() }
func (f CTLAnd) String() string { return "(" + f.L.String() + " & " + f.R.String() + ")" }
func (f CTLOr) String() string  { return "(" + f.L.String() + " | " + f.R.String() + ")" }
func (f EX) String() string     { return "EX " + f.F.String() }
func (f AX) String() string     { return "AX " + f.F.String() }
func (f EF_) String() string    { return "EF " + f.F.String() }
func (f AF_) String() string    { return "AF " + f.F.String() }
func (f EG_) String() string    { return "EG " + f.F.String() }
func (f AG_) String() string    { return "AG " + f.F.String() }
func (f EU) String() string     { return "E[" + f.L.String() + " U " + f.R.String() + "]" }
func (f AU) String() string     { return "A[" + f.L.String() + " U " + f.R.String() + "]" }

// CTLToMu translates a CTL formula into the µ-calculus, pushing negations
// to the propositions via the operator dualities; the output is
// alternation-free (depth ≤ 1 per operator, never nested alternation).
func CTLToMu(f CTL) (Formula, error) {
	c := &ctlCtx{}
	return c.tr(f, false)
}

type ctlCtx struct{ fresh int }

func (c *ctlCtx) v() string {
	c.fresh++
	return fmt.Sprintf("Xctl%d", c.fresh)
}

func diamondTT() Formula { return Diamond{F: Lit{true}} }

func (c *ctlCtx) tr(f CTL, neg bool) (Formula, error) {
	switch g := f.(type) {
	case CTLProp:
		if neg {
			return NegProp{Name: g.Name}, nil
		}
		return Prop{Name: g.Name}, nil
	case CTLLit:
		return Lit{Value: g.Value != neg}, nil
	case CTLNot:
		return c.tr(g.F, !neg)
	case CTLAnd:
		l, err := c.tr(g.L, neg)
		if err != nil {
			return nil, err
		}
		r, err := c.tr(g.R, neg)
		if err != nil {
			return nil, err
		}
		if neg {
			return Disj{L: l, R: r}, nil
		}
		return Conj{L: l, R: r}, nil
	case CTLOr:
		l, err := c.tr(g.L, neg)
		if err != nil {
			return nil, err
		}
		r, err := c.tr(g.R, neg)
		if err != nil {
			return nil, err
		}
		if neg {
			return Conj{L: l, R: r}, nil
		}
		return Disj{L: l, R: r}, nil
	case EX:
		sub, err := c.tr(g.F, neg)
		if err != nil {
			return nil, err
		}
		if neg { // ¬EX φ = AX ¬φ
			return Box{F: sub}, nil
		}
		return Diamond{F: sub}, nil
	case AX:
		sub, err := c.tr(g.F, neg)
		if err != nil {
			return nil, err
		}
		if neg {
			return Diamond{F: sub}, nil
		}
		return Box{F: sub}, nil
	case EF_:
		return c.tr(EU{L: CTLLit{true}, R: g.F}, neg)
	case AF_:
		return c.tr(AU{L: CTLLit{true}, R: g.F}, neg)
	case EG_:
		if neg { // ¬EG φ = AF ¬φ
			return c.tr(AF_{F: CTLNot{F: g.F}}, false)
		}
		sub, err := c.tr(g.F, false)
		if err != nil {
			return nil, err
		}
		x := c.v()
		return Nu{Var: x, F: Conj{L: sub, R: Diamond{F: VarRef{x}}}}, nil
	case AG_:
		if neg { // ¬AG φ = EF ¬φ
			return c.tr(EF_{F: CTLNot{F: g.F}}, false)
		}
		sub, err := c.tr(g.F, false)
		if err != nil {
			return nil, err
		}
		x := c.v()
		return Nu{Var: x, F: Conj{L: sub, R: Box{F: VarRef{x}}}}, nil
	case EU:
		l, err := c.tr(g.L, neg)
		if err != nil {
			return nil, err
		}
		r, err := c.tr(g.R, neg)
		if err != nil {
			return nil, err
		}
		x := c.v()
		if neg {
			// ¬E[φ U ψ] = νX. ¬ψ ∧ (¬φ ∨ □X)
			return Nu{Var: x, F: Conj{L: r, R: Disj{L: l, R: Box{F: VarRef{x}}}}}, nil
		}
		// E[φ U ψ] = µX. ψ ∨ (φ ∧ ◇X)
		return Mu{Var: x, F: Disj{L: r, R: Conj{L: l, R: Diamond{F: VarRef{x}}}}}, nil
	case AU:
		l, err := c.tr(g.L, neg)
		if err != nil {
			return nil, err
		}
		r, err := c.tr(g.R, neg)
		if err != nil {
			return nil, err
		}
		x := c.v()
		if neg {
			// ¬A[φ U ψ] = νX. ¬ψ ∧ (¬φ ∨ ◇X ∨ □ff)
			return Nu{Var: x, F: Conj{L: r,
				R: Disj{L: l, R: Disj{L: Diamond{F: VarRef{x}}, R: Box{F: Lit{false}}}}}}, nil
		}
		// A[φ U ψ] = µX. ψ ∨ (φ ∧ □X ∧ ◇tt)
		return Mu{Var: x, F: Disj{L: r,
			R: Conj{L: l, R: Conj{L: Box{F: VarRef{x}}, R: diamondTT()}}}}, nil
	default:
		return nil, fmt.Errorf("mucalc: unknown CTL formula %T", f)
	}
}

// CheckCTL computes the satisfying states of a CTL formula by direct
// semantics — the independent oracle for the translation.
func CheckCTL(k *Kripke, f CTL) (*bitset.Set, error) {
	switch g := f.(type) {
	case CTLProp:
		if set, ok := k.props[g.Name]; ok {
			return set.Clone(), nil
		}
		return bitset.New(k.n), nil
	case CTLLit:
		if g.Value {
			return bitset.Full(k.n), nil
		}
		return bitset.New(k.n), nil
	case CTLNot:
		s, err := CheckCTL(k, g.F)
		if err != nil {
			return nil, err
		}
		s.Not()
		return s, nil
	case CTLAnd:
		l, err := CheckCTL(k, g.L)
		if err != nil {
			return nil, err
		}
		r, err := CheckCTL(k, g.R)
		if err != nil {
			return nil, err
		}
		l.And(r)
		return l, nil
	case CTLOr:
		l, err := CheckCTL(k, g.L)
		if err != nil {
			return nil, err
		}
		r, err := CheckCTL(k, g.R)
		if err != nil {
			return nil, err
		}
		l.Or(r)
		return l, nil
	case EX:
		s, err := CheckCTL(k, g.F)
		if err != nil {
			return nil, err
		}
		return k.preExists(s), nil
	case AX:
		s, err := CheckCTL(k, g.F)
		if err != nil {
			return nil, err
		}
		return k.preForall(s), nil
	case EF_:
		return CheckCTL(k, EU{L: CTLLit{true}, R: g.F})
	case AF_:
		return CheckCTL(k, AU{L: CTLLit{true}, R: g.F})
	case EG_:
		s, err := CheckCTL(k, g.F)
		if err != nil {
			return nil, err
		}
		// Greatest fixpoint: start from ⟦φ⟧ and shrink.
		cur := s
		for {
			next := k.preExists(cur)
			next.And(s)
			if next.Equal(cur) {
				return cur, nil
			}
			cur = next
		}
	case AG_:
		s, err := CheckCTL(k, g.F)
		if err != nil {
			return nil, err
		}
		cur := s
		for {
			next := k.preForall(cur)
			next.And(s)
			if next.Equal(cur) {
				return cur, nil
			}
			cur = next
		}
	case EU:
		l, err := CheckCTL(k, g.L)
		if err != nil {
			return nil, err
		}
		r, err := CheckCTL(k, g.R)
		if err != nil {
			return nil, err
		}
		cur := r.Clone()
		for {
			step := k.preExists(cur)
			step.And(l)
			step.Or(cur)
			if step.Equal(cur) {
				return cur, nil
			}
			cur = step
		}
	case AU:
		l, err := CheckCTL(k, g.L)
		if err != nil {
			return nil, err
		}
		r, err := CheckCTL(k, g.R)
		if err != nil {
			return nil, err
		}
		hasSucc := k.preExists(bitset.Full(k.n))
		cur := r.Clone()
		for {
			step := k.preForall(cur)
			step.And(hasSucc)
			step.And(l)
			step.Or(cur)
			if step.Equal(cur) {
				return cur, nil
			}
			cur = step
		}
	default:
		return nil, fmt.Errorf("mucalc: unknown CTL formula %T", f)
	}
}
